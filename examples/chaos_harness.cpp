// Chaos-invariant harness: sweep randomized gray-failure schedules and
// check the post-convergence invariants (metadata consistency, loss
// honesty, determinism) on every one. Each seed denotes one schedule —
// lossy heartbeats, timed partitions, stragglers and bitrot layered on
// crash-stop churn — so a violation is reproducible by rerunning its
// seed.
//
//   ./chaos_harness [--seeds N] [--base-seed S] [--nodes N] [--blocks M]
//                   [--dump-dir DIR] [--warn-only] [--ci]
//                   [--post-mortem PATH]
//
// On a violation the offending run's schedule and full event trace are
// written under --dump-dir (for CI artifact upload), and block-scoped
// violations print the offending block's causal lineage chain — what
// placed, repaired, wrote off and lost its replicas — instead of
// pointing at the raw trace dump. --warn-only keeps the exit status
// zero; --ci additionally emits GitHub "::warning" annotations.
// --post-mortem PATH appends every seed's loss post-mortem to PATH;
// same seeds must reproduce the file byte-for-byte (CI diffs two
// invocations).
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/config.h"
#include "obs/lineage.h"
#include "obs/replay.h"
#include "sim/chaos.h"

namespace {

using namespace adapt;

// Human-readable dump of the sampled schedule, enough to reconstruct
// the ChurnConfig by hand when replaying a violation.
std::string describe_schedule(const sim::SimJobConfig::ChurnConfig& c) {
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "heartbeat_loss_prob %.6f\ndeparture_rate %.6g\n"
                "heartbeat_interval %.3f\nmiss_threshold %d\n"
                "dead_timeout %.3f\n",
                c.heartbeat_loss_prob, c.departure_rate, c.heartbeat_interval,
                c.heartbeat_miss_threshold, c.dead_timeout);
  out += buf;
  for (const auto& p : c.partitions) {
    std::snprintf(buf, sizeof(buf), "partition at %.3f heal %.3f nodes",
                  p.at, p.heal_at);
    out += buf;
    for (const auto n : p.nodes) {
      std::snprintf(buf, sizeof(buf), " %u", n);
      out += buf;
    }
    out += '\n';
  }
  for (const auto& s : c.stragglers) {
    std::snprintf(buf, sizeof(buf),
                  "straggler node %u at %.3f until %.3f slow %.3f\n", s.node,
                  s.at, s.until, s.slow_factor);
    out += buf;
  }
  for (const auto& corr : c.corruptions) {
    std::snprintf(buf, sizeof(buf), "corruption at %.3f block %u node %lld\n",
                  corr.at, corr.block, static_cast<long long>(corr.node));
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "scan_interval %.3f scan_budget %d\n"
                "safe_mode_threshold %.3f safe_mode_hold %.3f\n",
                c.scan_interval, c.scan_blocks_per_sweep,
                c.safe_mode_threshold, c.safe_mode_hold);
  out += buf;
  return out;
}

void dump_artifacts(const std::string& dir, std::uint64_t seed,
                    const sim::ChaosReport& report) {
  std::filesystem::create_directories(dir);
  const std::string stem = dir + "/seed_" + std::to_string(seed);
  std::ofstream(stem + "_schedule.txt") << describe_schedule(report.schedule);
  std::ofstream(stem + "_trace.jsonl") << report.trace_jsonl;
  std::ofstream(stem + "_postmortem.txt") << report.post_mortem;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace adapt;
  const common::Flags flags(argc, argv);
  const auto seeds = static_cast<std::uint64_t>(flags.get_int("seeds", 20));
  const auto base = static_cast<std::uint64_t>(flags.get_int("base-seed", 1));
  const bool warn_only = flags.get_bool("warn-only", false);
  const bool ci = flags.get_bool("ci", false);
  const std::string dump_dir =
      flags.get_string("dump-dir", "chaos_artifacts");
  const std::string post_mortem_path = flags.get_string("post-mortem", "");
  std::ofstream post_mortem_out;
  if (!post_mortem_path.empty()) {
    post_mortem_out.open(post_mortem_path, std::ios::binary);
    if (!post_mortem_out) {
      std::fprintf(stderr, "cannot open --post-mortem path %s\n",
                   post_mortem_path.c_str());
      return 2;
    }
  }

  sim::ChaosConfig config;
  config.nodes = static_cast<std::size_t>(
      flags.get_int("nodes", static_cast<std::int64_t>(config.nodes)));
  config.blocks =
      static_cast<std::uint32_t>(flags.get_int("blocks", config.blocks));
  config.replication =
      static_cast<int>(flags.get_int("replication", config.replication));
  config.gamma = flags.get_double("gamma", config.gamma);
  config.check_determinism = flags.get_bool("determinism", true);

  std::printf("chaos sweep: %llu seeds, %zu nodes, %u blocks x%d\n\n",
              static_cast<unsigned long long>(seeds), config.nodes,
              config.blocks, config.replication);
  std::printf("%6s  %9s  %5s  %5s  %5s  %5s  %5s  %6s  %s\n", "seed",
              "makespan", "lost", "fdead", "rot", "creads", "safe", "scans",
              "verdict");

  std::size_t violating_seeds = 0;
  for (std::uint64_t i = 0; i < seeds; ++i) {
    config.seed = base + i;
    const sim::ChaosReport report = sim::run_chaos(config);
    const sim::JobResult& job = report.job;
    std::printf("%6llu  %9.2f  %5zu  %5llu  %5llu  %5llu  %5llu  %6llu  %s\n",
                static_cast<unsigned long long>(config.seed), job.elapsed,
                job.lost_blocks.size(),
                static_cast<unsigned long long>(job.false_dead_declarations),
                static_cast<unsigned long long>(job.replicas_corrupted),
                static_cast<unsigned long long>(job.corrupt_reads),
                static_cast<unsigned long long>(job.safe_mode_entries),
                static_cast<unsigned long long>(job.blocks_scanned),
                report.ok() ? "ok" : "VIOLATION");
    if (!post_mortem_path.empty()) {
      post_mortem_out << "=== seed " << config.seed << " ===\n"
                      << report.post_mortem;
    }
    if (!report.ok()) {
      ++violating_seeds;
      // Rebuild the lineage once per violating seed so block-scoped
      // violations can print the offending block's causal chain.
      obs::LineageSnapshot lineage;
      bool have_lineage = false;
      try {
        const std::vector<obs::RunObservations> runs =
            obs::parse_jsonl(report.trace_jsonl);
        if (!runs.empty()) {
          lineage = obs::build_lineage(runs.front().records);
          have_lineage = true;
        }
      } catch (const std::exception&) {
        // Fall back to the detail string alone.
      }
      for (const sim::ChaosViolation& v : report.violations) {
        std::printf("        %s: %s\n", v.invariant.c_str(),
                    v.detail.c_str());
        if (have_lineage && v.block != sim::ChaosViolation::kNoBlock) {
          if (const obs::BlockLineage* b = obs::find_block(lineage, v.block)) {
            std::printf("%s", obs::describe_block(*b).c_str());
          }
        }
        if (ci) {
          std::printf("::warning title=chaos %s (seed %llu)::%s\n",
                      v.invariant.c_str(),
                      static_cast<unsigned long long>(config.seed),
                      v.detail.c_str());
        }
      }
      if (!dump_dir.empty()) dump_artifacts(dump_dir, config.seed, report);
    }
  }

  std::printf("\n%zu/%llu seeds violated an invariant\n", violating_seeds,
              static_cast<unsigned long long>(seeds));
  if (violating_seeds > 0 && !dump_dir.empty()) {
    std::printf("artifacts under %s/\n", dump_dir.c_str());
  }
  return (violating_seeds > 0 && !warn_only) ? 1 : 0;
}
