// Parallel sweep: fan a small policy-comparison grid across a thread
// pool with runner::ExperimentRunner and emit the aggregates as JSON.
//
// The runner's determinism contract means the numbers printed here (and
// the JSON file) are bit-identical for any --threads value: per-run
// seeds derive from the base seed and the run index, never from which
// worker picked the job up.
//
//   ./parallel_sweep [--nodes N] [--runs R] [--seed S] [--threads T]
//                    [--json PATH]
#include <cstdio>
#include <memory>

#include "common/config.h"
#include "common/table.h"
#include "core/adapt.h"
#include "runner/report.h"
#include "runner/runner.h"
#include "workload/terasort.h"

int main(int argc, char** argv) {
  using namespace adapt;
  const common::Flags flags(argc, argv);
  const auto nodes =
      static_cast<std::size_t>(flags.get_int("nodes", 128));
  const int runs = static_cast<int>(flags.get_int("runs", 5));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  const auto threads =
      static_cast<std::size_t>(flags.get_int("threads", 0));
  const std::string json_path = flags.get_string("json", "");

  // 1. One emulated cluster, shared (read-only) by every job.
  cluster::EmulationConfig emu;
  emu.node_count = nodes;
  const auto cluster = std::make_shared<const cluster::Cluster>(
      cluster::emulated_cluster(emu));

  const workload::Workload workload = workload::emulation_workload();
  core::ExperimentConfig config;
  config.blocks = workload.blocks_for(cluster->size());
  config.job.gamma = workload.gamma();
  config.seed = seed;

  // 2. Build the sweep grid: every (policy, replication) cell is `runs`
  //    independent replications, all scheduled as individual pool jobs.
  struct Series {
    core::PolicyKind policy;
    int replication;
  };
  const std::vector<Series> grid = {{core::PolicyKind::kRandom, 1},
                                    {core::PolicyKind::kAdapt, 1},
                                    {core::PolicyKind::kRandom, 2},
                                    {core::PolicyKind::kAdapt, 2}};
  std::vector<runner::ExperimentRunner::SweepCell> cells;
  for (const Series& s : grid) {
    config.policy = s.policy;
    config.replication = s.replication;
    cells.push_back({cluster, config, runs});
  }

  // 3. Run in parallel and render. Results come back in cell order.
  runner::ExperimentRunner exec(threads);
  std::printf("running %zu cells x %d replication(s) on %zu thread(s)\n",
              cells.size(), runs, exec.threads());
  const std::vector<core::RepeatedResult> results = exec.run_sweep(cells);

  runner::Report report("parallel_sweep", seed, runs);
  common::Table table(
      {"series", "elapsed (s)", "ci95", "locality", "total ovh"});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const core::RepeatedResult& r = results[i];
    const std::string label = core::to_string(grid[i].policy) + " r" +
                              std::to_string(grid[i].replication);
    table.add_row({label, common::format_double(r.elapsed.mean, 0),
                   common::format_double(r.elapsed.ci95_half_width, 0),
                   common::format_percent(r.locality.mean),
                   common::format_percent(r.total_ratio)});
    report.add_result("policy comparison", std::to_string(nodes), label, r);
  }
  std::printf("%s", table.to_string().c_str());

  if (!json_path.empty()) {
    try {
      report.write(json_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
