// HDFS-shell scenario: the three ADAPT client interfaces of Section
// IV-A, exercised directly against the mini-HDFS.
//
//  * copyFromLocal (stock)  — blocks land uniformly at random
//  * adapt <file>           — redistribute in place, availability-aware
//  * cp -adapt <src> <dst>  — availability-aware copy
//
// Prints the per-node block distribution after each step, with the
// transfer bill the operation incurred.
//
//   ./rebalance [--nodes N] [--blocks M] [--seed S]
#include <cstdio>

#include "cluster/topology.h"
#include "common/config.h"
#include "core/adapt.h"
#include "hdfs/client.h"
#include "placement/random_policy.h"
#include "workload/terasort.h"

namespace {

using namespace adapt;

void print_distribution(const char* label, const hdfs::NameNode& nn,
                        const std::string& file,
                        const cluster::Cluster& cluster) {
  const auto dist = nn.file_distribution(nn.file_id(file));
  std::printf("%-34s", label);
  std::uint64_t interrupted = 0;
  std::uint64_t dedicated = 0;
  for (std::size_t i = 0; i < dist.size(); ++i) {
    (cluster.nodes[i].interruptible() ? interrupted : dedicated) += dist[i];
  }
  std::printf(" %5llu blocks on volatile nodes, %5llu on dedicated\n",
              static_cast<unsigned long long>(interrupted),
              static_cast<unsigned long long>(dedicated));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace adapt;
  const common::Flags flags(argc, argv);
  cluster::EmulationConfig emu;
  emu.node_count = static_cast<std::size_t>(flags.get_int("nodes", 64));
  emu.interrupted_ratio = 0.5;
  const auto blocks =
      static_cast<std::uint32_t>(flags.get_int("blocks", 1280));
  common::Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 9)));

  const cluster::Cluster cluster = cluster::emulated_cluster(emu);
  const workload::Workload workload = workload::emulation_workload();

  hdfs::NameNode::Options options;
  options.fidelity_cap = true;  // Section IV-C threshold
  hdfs::NameNode namenode(cluster.size(), options);

  cluster::Network::Config net;
  for (const cluster::NodeSpec& node : cluster.nodes) {
    net.uplink_bps.push_back(node.uplink_bps);
    net.downlink_bps.push_back(node.downlink_bps);
  }
  cluster::Network network(net);

  const auto adapt_policy = core::make_policy(
      core::PolicyKind::kAdapt, cluster.params(), workload.gamma(), blocks);
  hdfs::Client client(namenode, placement::make_random_policy(cluster.size()),
                      adapt_policy, &network, cluster.block_size_bytes);

  std::printf("$ hdfs dfs -copyFromLocal big.dat /input   "
              "# stock random placement\n");
  hdfs::TransferSummary load;
  client.copy_from_local("/input", blocks, 1, /*adapt_enabled=*/false, rng,
                         0.0, &load);
  print_distribution("  /input:", namenode, "/input", cluster);
  std::printf("  loaded %llu blocks, last transfer lands at %s\n\n",
              static_cast<unsigned long long>(load.blocks_moved),
              common::format_seconds(load.completion_time).c_str());

  std::printf("$ hdfs dfs -adapt /input                   "
              "# redistribute availability-aware\n");
  const hdfs::TransferSummary moves = client.adapt_rebalance("/input", rng);
  print_distribution("  /input:", namenode, "/input", cluster);
  std::printf("  moved %llu blocks (%s) to reshape the distribution\n\n",
              static_cast<unsigned long long>(moves.blocks_moved),
              common::format_bytes(moves.bytes_moved).c_str());

  std::printf("$ hdfs dfs -cp -adapt /input /input2       "
              "# availability-aware copy\n");
  hdfs::TransferSummary copy;
  client.cp("/input", "/input2", /*adapt_enabled=*/true, rng, 0.0, &copy);
  print_distribution("  /input2:", namenode, "/input2", cluster);
  std::printf("  copied with %llu cross-node transfers\n\n",
              static_cast<unsigned long long>(copy.blocks_moved));

  std::printf("storage skew after all operations: %.2fx the mean "
              "(fidelity cap m(k+1)/n active)\n",
              namenode.datanodes().skew());
  return 0;
}
