// Quickstart: build a volatile cluster, load a dataset with ADAPT
// placement, simulate the map phase, and print the paper's metrics.
//
//   ./quickstart [--nodes N] [--ratio R] [--replication K] [--seed S]
#include <cstdio>

#include "common/config.h"
#include "common/table.h"
#include "core/adapt.h"
#include "workload/terasort.h"

int main(int argc, char** argv) {
  using namespace adapt;
  const common::Flags flags(argc, argv);

  // 1. Describe the environment: an emulated non-dedicated cluster in
  //    the paper's Section V-A configuration — half the nodes are
  //    interrupted, split over the four Table 2 availability groups.
  cluster::EmulationConfig emu;
  emu.node_count = static_cast<std::size_t>(flags.get_int("nodes", 128));
  emu.interrupted_ratio = flags.get_double("ratio", 0.5);
  const cluster::Cluster cluster = cluster::emulated_cluster(emu);

  // 2. Describe the workload: Terasort-style, 20 x 64 MiB blocks per
  //    node, one map task per block.
  const workload::Workload workload = workload::emulation_workload();

  // 3. Configure the experiment. The Performance Predictor receives the
  //    per-node interruption parameters (as its heartbeat collector
  //    would measure them) and Algorithm 1 weights nodes by 1/E[T].
  core::ExperimentConfig config;
  config.policy = core::PolicyKind::kAdapt;
  config.replication = static_cast<int>(flags.get_int("replication", 1));
  config.blocks = workload.blocks_for(cluster.size());
  config.job.gamma = workload.gamma();
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));

  // 4. Run: copyFromLocal with ADAPT enabled, then the map phase.
  const core::ExperimentResult result = core::run_experiment(cluster, config);

  std::printf("cluster: %zu nodes (%.0f%% interrupted), %u blocks x %s, "
              "%d replica(s)\n",
              cluster.size(), emu.interrupted_ratio * 100.0, config.blocks,
              common::format_bytes(cluster.block_size_bytes).c_str(),
              config.replication);
  std::printf("policy : %s\n\n", result.policy_name.c_str());
  std::printf("map phase elapsed : %s\n",
              common::format_seconds(result.job.elapsed).c_str());
  std::printf("data locality     : %s\n",
              common::format_percent(result.job.locality).c_str());
  std::printf("overhead          : %s\n",
              result.job.overhead.describe().c_str());
  std::printf("placement skew    : %.2fx the mean (cap %s)\n",
              result.placement_skew,
              config.fidelity_cap ? "on" : "off");
  std::printf("load completed at : %s (%llu blocks from the origin)\n",
              common::format_seconds(result.load.completion_time).c_str(),
              static_cast<unsigned long long>(result.load.blocks_moved));

  // 5. Compare against stock random placement on the same cluster.
  config.policy = core::PolicyKind::kRandom;
  const core::ExperimentResult baseline =
      core::run_experiment(cluster, config);
  std::printf("\nstock random placement on the same cluster: %s elapsed\n",
              common::format_seconds(baseline.job.elapsed).c_str());
  std::printf("ADAPT improvement: %s\n",
              common::format_percent(
                  1.0 - result.job.elapsed / baseline.job.elapsed)
                  .c_str());
  return 0;
}
