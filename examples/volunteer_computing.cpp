// Volunteer-computing scenario: a SETI@home-like host population.
//
// Generates a synthetic failure trace calibrated to the paper's Table 1,
// derives per-host availability profiles, and compares placement
// policies for a MapReduce job dropped onto that population — the
// Section V-C setting end to end, including the heartbeat-estimation
// path (the NameNode learns (lambda, mu) by observation instead of
// being handed ground truth).
//
//   ./volunteer_computing [--hosts N] [--seed S]
#include <cstdio>

#include "common/config.h"
#include "common/table.h"
#include "core/adapt.h"
#include "trace/generator.h"
#include "trace/trace_stats.h"
#include "workload/terasort.h"

int main(int argc, char** argv) {
  using namespace adapt;
  const common::Flags flags(argc, argv);
  const std::size_t hosts =
      static_cast<std::size_t>(flags.get_int("hosts", 512));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 5));

  // 1. The host population: 14 days of synthetic availability history.
  trace::GeneratorConfig gen_config;
  gen_config.node_count = hosts;
  gen_config.horizon = 14.0 * 24 * 3600;
  gen_config.seed = seed;
  const trace::GeneratedTrace gen =
      trace::generate_seti_like_trace(gen_config);
  const trace::TraceStats stats = trace::compute_trace_stats(gen.trace);
  std::printf("population: %zu hosts, %zu interruptions over 14 days\n",
              hosts, stats.event_count);
  std::printf("per-host MTBI mean %s, repair mean %s\n\n",
              common::format_seconds(stats.mtbi_per_host.mean).c_str(),
              common::format_seconds(stats.duration_per_host.mean).c_str());

  // 2. The cluster: each host an M/G/1 interruption process with its
  //    measured parameters; hosts start in steady state, so the load
  //    only lands on hosts that are actually online.
  std::vector<avail::InterruptionParams> params;
  params.reserve(gen.truth.size());
  for (const trace::HostTruth& host : gen.truth) {
    params.push_back(host.params());
  }
  const cluster::Cluster cluster =
      cluster::model_cluster(params, cluster::TraceClusterConfig{});

  // 3. The job: 100 x 64 MiB blocks per host, 12 s per block (Table 4).
  const workload::Workload workload = workload::simulation_workload();

  core::ExperimentConfig config;
  config.blocks = workload.blocks_for(hosts);
  config.job.gamma = workload.gamma();
  config.job.origin_fetch_delay = 600.0;  // project-server reissue
  config.steady_state_start = true;
  config.seed = seed;

  std::printf("%-28s %12s %10s %10s\n", "policy", "elapsed", "overhead",
              "locality");
  for (const auto kind :
       {core::PolicyKind::kRandom, core::PolicyKind::kNaive,
        core::PolicyKind::kAdapt}) {
    config.policy = kind;
    config.use_estimated_params = false;
    const core::ExperimentResult r = core::run_experiment(cluster, config);
    std::printf("%-28s %12s %10s %10s\n", r.policy_name.c_str(),
                common::format_seconds(r.job.elapsed).c_str(),
                common::format_percent(r.job.overhead.total_ratio()).c_str(),
                common::format_percent(r.job.locality).c_str());
  }

  // 4. The full Fig.-2 pipeline: the predictor only knows what the
  //    heartbeat collector observed during a warm-up window.
  config.policy = core::PolicyKind::kAdapt;
  config.use_estimated_params = true;
  config.observation_window = 2.0 * 24 * 3600;
  const core::ExperimentResult estimated =
      core::run_experiment(cluster, config);
  std::printf("%-28s %12s %10s %10s\n",
              "adapt (heartbeat-estimated)",
              common::format_seconds(estimated.job.elapsed).c_str(),
              common::format_percent(
                  estimated.job.overhead.total_ratio()).c_str(),
              common::format_percent(estimated.job.locality).c_str());
  return 0;
}
