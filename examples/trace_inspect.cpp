// Trace inspector: replay a JSONL event trace written by any bench's
// --trace flag and print summary tables — per-run event counts, the
// busiest per-node timelines, and the trace-derived recovery overhead
// (downtime weighted by slots while a node still held undone home
// tasks), which can be audited against the JobResult accounting in the
// matching --json report.
//
// With --spans it additionally (or instead) folds a span-profile stream
// written by a bench's --spans flag into per-phase self-time tables:
// simulated seconds attributed to each phase with child time subtracted,
// so nested spans never double-count.
//
// Lineage queries rebuild the causal index from the trace and answer
// "what happened to this block/task" directly:
//   --lineage B   print block B's full replica chain (placed → repaired
//                 → written off → …) with the loss verdict
//   --task T      print task T's attempt tree (speculative siblings,
//                 kill reasons, stalls)
//   --why-lost    loss post-mortem: classify every lost block by root
//                 cause and print per-cause counts + one line per loss
//   --perfetto P  export the trace as Perfetto/Chrome trace-event JSON
//                 (open in ui.perfetto.dev or chrome://tracing)
//
//   ./trace_inspect [<trace.jsonl>] [--spans spans.jsonl]
//                   [--nodes N] [--runs R] [--lineage B] [--task T]
//                   [--why-lost] [--perfetto out.json]
//     --spans P   fold span-profile JSONL P into per-phase tables
//     --nodes N   show the N busiest node timelines per run (default 8)
//     --runs R    inspect only the first R runs (default: all)
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/table.h"
#include "obs/lineage.h"
#include "obs/perfetto.h"
#include "obs/replay.h"

namespace {

using namespace adapt;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void print_run(std::uint64_t run_index, const obs::RunObservations& run,
               std::size_t show_nodes) {
  const obs::ReplaySummary summary = obs::replay(run.records);

  // When the ring overflowed, every table below undercounts — stamp the
  // warning on each header so a table screenshotted in isolation still
  // carries it.
  const std::string trunc =
      run.dropped > 0
          ? " [TRUNCATED: ring dropped " + std::to_string(run.dropped) +
                " record(s) — totals undercount; raise --ring-capacity]"
          : std::string();

  std::printf("\n=== run %llu: %zu record(s)",
              static_cast<unsigned long long>(run_index),
              run.records.size());
  if (run.dropped > 0) {
    std::printf(" (%llu dropped — ring too small; raw totals below "
                "undercount)",
                static_cast<unsigned long long>(run.dropped));
  }
  std::printf(" ===\n");
  std::printf("nodes %zu, tasks %llu, elapsed %s\n", summary.node_count,
              static_cast<unsigned long long>(summary.task_count),
              common::format_seconds(summary.elapsed).c_str());

  common::Table events({"event", "count"});
  for (std::size_t i = 0; i < obs::kEventTypeCount; ++i) {
    const auto type = static_cast<obs::EventType>(i);
    if (summary.count(type) == 0) continue;
    events.add_row({obs::to_string(type),
                    std::to_string(summary.count(type))});
  }
  std::printf("event counts%s:\n%s", trunc.c_str(),
              events.to_string().c_str());

  std::printf("\ntotal downtime %s, total busy %s\n",
              common::format_seconds(summary.total_downtime).c_str(),
              common::format_seconds(summary.total_busy).c_str());
  std::printf("recovery (downtime x slots with undone home tasks): "
              "%.17g node-seconds\n",
              summary.recovery_node_seconds);

  // Churn & recovery: only shown when the trace has any churn activity.
  if (summary.nodes_dead > 0 || summary.replicas_lost > 0 ||
      summary.rereplications > 0 || summary.rereplication_retries > 0 ||
      summary.rereplication_giveups > 0) {
    common::Table recovery({"dead nodes", "replicas lost", "re-repl",
                            "retries", "give-ups", "moved"});
    recovery.add_row(
        {std::to_string(summary.nodes_dead),
         std::to_string(summary.replicas_lost),
         std::to_string(summary.rereplications),
         std::to_string(summary.rereplication_retries),
         std::to_string(summary.rereplication_giveups),
         common::format_bytes(
             static_cast<std::uint64_t>(summary.rereplication_bytes))});
    std::printf("\nchurn & recovery%s:\n%s", trunc.c_str(),
                recovery.to_string().c_str());
  }

  // Failure audit: only shown when the trace carries gray-failure
  // activity — false-positive dead declarations (nodes revived by a
  // later beat), checksum catches and their recovery path, safe-mode
  // entries/exits, and re-replication give-ups (repairs abandoned).
  if (summary.false_dead_declarations > 0 || summary.corrupt_reads > 0 ||
      summary.replicas_corrupted > 0 || summary.safe_mode_entries > 0 ||
      summary.partitions_started > 0 || summary.stragglers_started > 0) {
    common::Table audit({"false dead", "revived repl", "corrupt",
                         "caught reads", "by scan", "safe in/out",
                         "deferred w/o", "give-ups"});
    audit.add_row(
        {std::to_string(summary.false_dead_declarations),
         std::to_string(summary.revived_replicas_restored) + "+" +
             std::to_string(summary.revived_replicas_trimmed) + "t",
         std::to_string(summary.replicas_corrupted),
         std::to_string(summary.corrupt_reads),
         std::to_string(summary.corrupt_reads_scan),
         std::to_string(summary.safe_mode_entries) + "/" +
             std::to_string(summary.safe_mode_exits),
         std::to_string(summary.safe_mode_writeoffs),
         std::to_string(summary.rereplication_giveups)});
    std::printf("\nfailure audit%s:\n%s", trunc.c_str(),
                audit.to_string().c_str());
    if (summary.partitions_started > 0 || summary.stragglers_started > 0) {
      std::printf("injected: %llu partition(s) (%llu healed), "
                  "%llu straggler(s)\n",
                  static_cast<unsigned long long>(summary.partitions_started),
                  static_cast<unsigned long long>(summary.partitions_healed),
                  static_cast<unsigned long long>(summary.stragglers_started));
    }
  }

  // Online rebalancing: only shown when the drift→rebalance loop ran.
  if (summary.rebalance_triggers > 0 || summary.migrations_committed > 0 ||
      summary.migration_retries > 0 || summary.migration_giveups > 0) {
    common::Table migration({"triggers", "committed", "retries",
                             "give-ups", "moved"});
    migration.add_row(
        {std::to_string(summary.rebalance_triggers),
         std::to_string(summary.migrations_committed),
         std::to_string(summary.migration_retries),
         std::to_string(summary.migration_giveups),
         common::format_bytes(
             static_cast<std::uint64_t>(summary.migration_bytes))});
    std::printf("\nonline rebalancing%s:\n%s", trunc.c_str(),
                migration.to_string().c_str());
  }

  // Scheduling: only shown when duplicate attempts were launched —
  // speculation or redundant k-launch.
  if (summary.duplicate_launches > 0 || summary.duplicate_wins > 0 ||
      summary.redundant_cancels > 0 || summary.redundant_waste_bytes > 0) {
    common::Table scheduling({"dup launches", "dup wins", "cancels",
                              "waste"});
    scheduling.add_row(
        {std::to_string(summary.duplicate_launches),
         std::to_string(summary.duplicate_wins),
         std::to_string(summary.redundant_cancels),
         common::format_bytes(
             static_cast<std::uint64_t>(summary.redundant_waste_bytes))});
    std::printf("\nscheduling%s:\n%s", trunc.c_str(),
                scheduling.to_string().c_str());
  }

  // Busiest nodes first; ties broken by index for a stable listing.
  std::vector<std::size_t> order(summary.nodes.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&summary](std::size_t a, std::size_t b) {
              const obs::NodeTotals& na = summary.nodes[a];
              const obs::NodeTotals& nb = summary.nodes[b];
              if (na.busy != nb.busy) return na.busy > nb.busy;
              return a < b;
            });
  common::Table timeline(
      {"node", "attempts", "transitions", "busy (s)", "down (s)",
       "utilization"});
  const std::size_t shown = std::min(show_nodes, order.size());
  for (std::size_t i = 0; i < shown; ++i) {
    const std::size_t node = order[i];
    const obs::NodeTotals& totals = summary.nodes[node];
    const double util =
        summary.elapsed > 0 ? totals.busy / summary.elapsed : 0.0;
    timeline.add_row({std::to_string(node),
                      std::to_string(totals.attempts),
                      std::to_string(totals.transitions),
                      common::format_double(totals.busy, 1),
                      common::format_double(totals.downtime, 1),
                      common::format_percent(util)});
  }
  std::printf("\nbusiest %zu of %zu node(s)%s:\n%s", shown,
              summary.nodes.size(), trunc.c_str(),
              timeline.to_string().c_str());
}

void print_phase_table(const char* title,
                       const std::vector<obs::PhaseTotals>& phases) {
  double total_self = 0.0;
  for (const obs::PhaseTotals& p : phases) total_self += p.self_sim;
  common::Table table({"phase", "spans", "total (s)", "self (s)",
                       "self share"});
  for (const obs::PhaseTotals& p : phases) {
    table.add_row({p.name, std::to_string(p.count),
                   common::format_double(p.dur_sim, 3),
                   common::format_double(p.self_sim, 3),
                   common::format_percent(
                       total_self > 0 ? p.self_sim / total_self : 0.0)});
  }
  std::printf("%s\n%s", title, table.to_string().c_str());
}

int inspect_spans(const std::string& path, std::int64_t max_runs) {
  std::vector<std::vector<obs::SpanRecord>> runs;
  try {
    runs = obs::parse_spans_jsonl(read_file(path));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), e.what());
    return 1;
  }
  std::size_t spans = 0;
  std::vector<obs::SpanRecord> all;
  for (const auto& run : runs) {
    spans += run.size();
    all.insert(all.end(), run.begin(), run.end());
  }
  std::printf("\n%s: %zu run(s), %zu span(s)\n", path.c_str(),
              runs.size(), spans);
  print_phase_table("\nper-phase self time, all runs:",
                    obs::fold_spans(all));
  const std::size_t limit =
      max_runs < 0 ? runs.size()
                   : std::min(runs.size(), static_cast<std::size_t>(max_runs));
  if (runs.size() > 1) {
    for (std::size_t i = 0; i < limit; ++i) {
      std::printf("\n=== run %zu: %zu span(s) ===\n", i, runs[i].size());
      print_phase_table("", obs::fold_spans(runs[i]));
    }
  }
  return 0;
}

// Lineage queries: rebuild the causal index from each run's records and
// answer --lineage/--task/--why-lost. Returns nonzero when a queried id
// exists in no run.
int run_queries(const std::vector<obs::RunObservations>& runs,
                std::size_t limit, std::int64_t lineage_block,
                std::int64_t task_id, bool why_lost) {
  bool found_block = lineage_block < 0;
  bool found_task = task_id < 0;
  for (std::size_t i = 0; i < limit; ++i) {
    const obs::RunObservations& run = runs[i];
    if (run.dropped > 0) {
      std::printf("\n=== run %zu === [TRUNCATED: ring dropped %llu "
                  "record(s); chains rebuilt from a partial trace — "
                  "re-export with --lineage/--ring-capacity for exact "
                  "history]\n",
                  i, static_cast<unsigned long long>(run.dropped));
    } else {
      std::printf("\n=== run %zu ===\n", i);
    }
    const obs::LineageSnapshot snapshot = obs::build_lineage(run.records);
    if (lineage_block >= 0) {
      const obs::BlockLineage* b = obs::find_block(
          snapshot, static_cast<std::uint32_t>(lineage_block));
      if (b == nullptr) {
        std::printf("block %lld: no lineage in this run\n",
                    static_cast<long long>(lineage_block));
      } else {
        found_block = true;
        std::printf("%s", obs::describe_block(*b).c_str());
      }
    }
    if (task_id >= 0) {
      const obs::TaskLineage* t =
          obs::find_task(snapshot, static_cast<std::uint32_t>(task_id));
      if (t == nullptr) {
        std::printf("task %lld: no lineage in this run\n",
                    static_cast<long long>(task_id));
      } else {
        found_task = true;
        std::printf("%s", obs::describe_task(*t).c_str());
      }
    }
    if (why_lost) {
      std::printf("%s",
                  obs::post_mortem_text(obs::post_mortem(snapshot)).c_str());
    }
  }
  return found_block && found_task ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace adapt;
  const common::Flags flags(argc, argv);
  const std::string spans_path = flags.get_string("spans", "");
  if (flags.positional().size() != 1 &&
      !(flags.positional().empty() && !spans_path.empty())) {
    std::fprintf(stderr,
                 "usage: trace_inspect [<trace.jsonl>] "
                 "[--spans spans.jsonl] [--nodes N] [--runs R]\n"
                 "       trace_inspect <trace.jsonl> [--lineage B] "
                 "[--task T] [--why-lost] [--perfetto out.json]\n");
    return 2;
  }
  const auto show_nodes =
      static_cast<std::size_t>(flags.get_int("nodes", 8));
  const std::int64_t max_runs = flags.get_int("runs", -1);
  const std::int64_t lineage_block = flags.get_int("lineage", -1);
  const std::int64_t task_id = flags.get_int("task", -1);
  const bool why_lost = flags.get_bool("why-lost", false);
  const std::string perfetto_path = flags.get_string("perfetto", "");
  if (flags.positional().empty()) {
    return inspect_spans(spans_path, max_runs);
  }
  const std::string path = flags.positional()[0];

  std::vector<obs::RunObservations> runs;
  try {
    runs = obs::parse_jsonl(read_file(path));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), e.what());
    return 1;
  }

  std::uint64_t records = 0;
  std::uint64_t dropped = 0;
  for (const obs::RunObservations& run : runs) {
    records += run.records.size();
    dropped += run.dropped;
  }
  std::printf("%s: %zu run(s), %llu record(s), %llu dropped\n",
              path.c_str(), runs.size(),
              static_cast<unsigned long long>(records),
              static_cast<unsigned long long>(dropped));

  const std::size_t limit =
      max_runs < 0 ? runs.size()
                   : std::min(runs.size(), static_cast<std::size_t>(max_runs));

  if (!perfetto_path.empty()) {
    try {
      obs::write_perfetto_json(perfetto_path, runs);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
    std::printf("wrote Perfetto timeline to %s (load in ui.perfetto.dev "
                "or chrome://tracing)\n",
                perfetto_path.c_str());
  }
  // Query mode replaces the summary tables: answer the question asked,
  // nothing else.
  if (lineage_block >= 0 || task_id >= 0 || why_lost) {
    return run_queries(runs, limit, lineage_block, task_id, why_lost);
  }
  if (!perfetto_path.empty()) return 0;

  for (std::size_t i = 0; i < limit; ++i) {
    print_run(i, runs[i], show_nodes);
  }
  if (!spans_path.empty()) {
    return inspect_spans(spans_path, max_runs);
  }
  return 0;
}
