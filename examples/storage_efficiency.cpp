// Storage-efficiency scenario: the paper's central trade-off — can
// availability-aware placement with fewer replicas match the reliability
// cushion of blind replication?
//
// Sweeps replication 1..3 for random and ADAPT placement on the emulated
// volatile cluster and reports elapsed time next to the storage bill.
//
//   ./storage_efficiency [--nodes N] [--runs R] [--seed S]
#include <cstdio>

#include "common/config.h"
#include "common/table.h"
#include "core/adapt.h"
#include "workload/terasort.h"

int main(int argc, char** argv) {
  using namespace adapt;
  const common::Flags flags(argc, argv);
  cluster::EmulationConfig emu;
  emu.node_count = static_cast<std::size_t>(flags.get_int("nodes", 128));
  const int runs = static_cast<int>(flags.get_int("runs", 5));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 3));

  const cluster::Cluster cluster = cluster::emulated_cluster(emu);
  const workload::Workload workload = workload::emulation_workload();

  core::ExperimentConfig config;
  config.blocks = workload.blocks_for(cluster.size());
  config.job.gamma = workload.gamma();
  config.seed = seed;

  const double gib = static_cast<double>(config.blocks) *
                     static_cast<double>(cluster.block_size_bytes) /
                     static_cast<double>(common::kGiB);

  common::Table table({"placement", "replicas", "storage", "elapsed (s)",
                       "locality"});
  struct Row {
    core::PolicyKind policy;
    int replication;
  };
  for (const Row row : {Row{core::PolicyKind::kRandom, 1},
                        Row{core::PolicyKind::kRandom, 2},
                        Row{core::PolicyKind::kRandom, 3},
                        Row{core::PolicyKind::kAdapt, 1},
                        Row{core::PolicyKind::kAdapt, 2}}) {
    config.policy = row.policy;
    config.replication = row.replication;
    const core::RepeatedResult r =
        core::run_repeated(cluster, config, runs);
    char storage[32];
    std::snprintf(storage, sizeof storage, "%.0f GiB",
                  gib * row.replication);
    table.add_row({core::to_string(row.policy),
                   std::to_string(row.replication), storage,
                   common::format_double(r.elapsed.mean, 0) + " ±" +
                       common::format_double(r.elapsed.ci95_half_width, 0),
                   common::format_percent(r.locality.mean)});
  }
  std::printf("Storage/latency trade-off on %zu volatile nodes "
              "(%d runs per row):\n\n%s\n",
              cluster.size(), runs, table.to_string().c_str());
  std::printf(
      "The paper's argument: ADAPT with 1 replica approaches stock "
      "placement\nwith 2 replicas while buying back half the storage "
      "bill.\n");
  return 0;
}
