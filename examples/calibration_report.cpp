// Predictor calibration report: how good were the NameNode's E[T_i]
// quotes, and how fast does the drift detector notice when the cluster
// stops matching them?
//
// Runs one churn scenario (permanent departures on a SETI-like host
// population) with the calibration tracker on: every retired map task
// pairs its realized completion time with the Eq. 5 expectation quoted
// for its node at placement time, per-node and cluster-wide quantile
// sketches accumulate both sides, and a CUSUM detector watches the
// heartbeat estimates drift away from ground truth after each
// departure. Prints the cluster calibration ratio, the
// predicted-vs-realized quantiles for the busiest nodes, and the
// detection latency of every drift alarm.
//
//   ./calibration_report [--nodes N] [--seed S] [--hazard H]
//     --nodes N    host population size            (default 96)
//     --seed S     base RNG seed                   (default 5)
//     --hazard H   per-node departure rate, 1/s    (default 1/1800)
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/config.h"
#include "common/table.h"
#include "core/adapt.h"
#include "trace/generator.h"
#include "workload/terasort.h"

int main(int argc, char** argv) {
  using namespace adapt;
  const common::Flags flags(argc, argv);
  const std::size_t nodes =
      static_cast<std::size_t>(flags.get_int("nodes", 96));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 5));
  const double hazard = flags.get_double("hazard", 1.0 / 1800.0);

  // Host population with heterogeneous (lambda, mu) profiles — the
  // setting where per-node calibration is interesting.
  trace::GeneratorConfig gen_config;
  gen_config.node_count = nodes;
  gen_config.horizon = 14.0 * 24 * 3600;
  gen_config.seed = seed;
  const trace::GeneratedTrace gen =
      trace::generate_seti_like_trace(gen_config);
  std::vector<avail::InterruptionParams> params;
  params.reserve(gen.truth.size());
  for (const trace::HostTruth& host : gen.truth) {
    params.push_back(host.params());
  }
  const cluster::Cluster cluster =
      cluster::model_cluster(params, cluster::TraceClusterConfig{});
  const workload::Workload workload = workload::simulation_workload();

  core::ExperimentConfig config;
  config.policy = core::PolicyKind::kAdapt;
  config.replication = 2;
  config.blocks = workload.blocks_for(nodes);
  config.job.gamma = workload.gamma();
  config.job.allow_origin_fetch = false;
  config.seed = seed;
  config.job.churn.enabled = true;
  config.job.churn.departure_rate = hazard;
  config.job.churn.dead_timeout = 120.0;
  config.obs.calibration.enabled = true;
  config.obs.calibration.per_node = true;
  config.obs.sample_dt = 5.0;  // drives the CUSUM + sampling cadence

  const core::ExperimentResult result =
      core::run_experiment(cluster, config);
  const obs::CalibrationSnapshot& cal = result.obs.calibration;

  std::printf("job: %zu nodes, %u blocks, elapsed %s, "
              "%llu departure(s), %llu dead\n",
              nodes, config.blocks,
              common::format_seconds(result.job.elapsed).c_str(),
              static_cast<unsigned long long>(result.job.nodes_departed),
              static_cast<unsigned long long>(result.job.nodes_dead));
  std::printf("calibration: %llu (predicted, realized) pair(s), "
              "cluster ratio %.3f (realized / predicted)\n",
              static_cast<unsigned long long>(cal.pairs), cal.ratio());
  std::printf("realized completion time: p50 %s  p90 %s  p99 %s\n\n",
              common::format_seconds(cal.realized.quantile(0.5)).c_str(),
              common::format_seconds(cal.realized.quantile(0.9)).c_str(),
              common::format_seconds(cal.realized.quantile(0.99)).c_str());

  // Busiest nodes: the most realized completions, predicted vs realized.
  std::vector<std::size_t> order(cal.nodes.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&cal](std::size_t a, std::size_t b) {
    const std::uint64_t ca = cal.nodes[a].realized.count();
    const std::uint64_t cb = cal.nodes[b].realized.count();
    if (ca != cb) return ca > cb;
    return cal.nodes[a].node < cal.nodes[b].node;
  });
  common::Table table({"node", "tasks", "predicted E[T] (s)",
                       "realized p50 (s)", "realized p90 (s)", "ratio"});
  const std::size_t shown = std::min<std::size_t>(10, order.size());
  for (std::size_t i = 0; i < shown; ++i) {
    const obs::NodeCalibration& nc = cal.nodes[order[i]];
    const double pred = nc.predicted;
    const double real = nc.realized.mean();
    table.add_row({std::to_string(nc.node),
                   std::to_string(nc.realized.count()),
                   common::format_double(pred, 1),
                   common::format_double(nc.realized.quantile(0.5), 1),
                   common::format_double(nc.realized.quantile(0.9), 1),
                   common::format_double(pred > 0 ? real / pred : 0.0, 2)});
  }
  std::printf("busiest %zu of %zu node(s) with completions:\n%s", shown,
              cal.nodes.size(), table.to_string().c_str());

  if (cal.alarms.empty()) {
    std::printf("\nno drift alarms (no departure drifted the estimates "
                "past the CUSUM threshold before the job finished)\n");
    return 0;
  }
  common::Table drift({"node", "alarm at (s)", "score",
                       "detection latency (s)"});
  for (const obs::DriftAlarm& alarm : cal.alarms) {
    drift.add_row({std::to_string(alarm.node),
                   common::format_double(alarm.t, 0),
                   common::format_double(alarm.score, 2),
                   alarm.latency >= 0.0
                       ? common::format_double(alarm.latency, 0)
                       : std::string("false alarm")});
  }
  std::printf("\npredictor drift alarms (CUSUM over heartbeat "
              "estimates vs ground truth):\n%s",
              drift.to_string().c_str());
  return 0;
}
