// Tiny command-line flag parser shared by benches and examples.
//
// Accepts "--name=value", "--name value", and bare "--flag" booleans.
// Unrecognized flags throw, so typos in experiment scripts fail loudly
// instead of silently running the wrong configuration.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace adapt::common {

class Flags {
 public:
  // Parses argv, leaving positional arguments accessible via positional().
  Flags(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

  // Names seen on the command line but never queried; benches call this
  // last and abort on leftovers.
  std::vector<std::string> unused() const;

 private:
  std::optional<std::string> raw(const std::string& name) const;

  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> queried_;
  std::vector<std::string> positional_;
};

}  // namespace adapt::common
