// Streaming and batch descriptive statistics used throughout the
// library: model validation, trace calibration (Table 1), and the
// multi-run averaging the paper applies to every experiment point.
#pragma once

#include <cstddef>
#include <vector>

namespace adapt::common {

// Welford online accumulator: numerically stable mean/variance without
// retaining samples. Suitable for the NameNode-side per-node estimates,
// which the paper requires to be O(1) memory.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  std::size_t count() const { return count_; }
  double mean() const;
  double variance() const;  // sample variance (n - 1 denominator)
  double stddev() const;
  double coefficient_of_variation() const;  // stddev / mean
  double min() const;
  double max() const;
  double sum() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Batch summary over a retained sample, adding order statistics and a
// normal-approximation confidence interval for the mean.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double cov = 0.0;  // coefficient of variation
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double ci95_half_width = 0.0;  // mean +/- this covers ~95%
};

Summary summarize(std::vector<double> samples);

// Percentile of a sample by linear interpolation; q is clamped to
// [0, 1]. Sorts a copy — for several quantiles of the same sample use
// percentiles() (one sort) or percentile_sorted() on presorted data.
double percentile(std::vector<double> samples, double q);

// Percentile of an already ascending-sorted sample; q clamped to [0, 1].
double percentile_sorted(const std::vector<double>& sorted, double q);

// All requested quantiles with a single sort; results align with `qs`.
std::vector<double> percentiles(std::vector<double> samples,
                                const std::vector<double>& qs);

// Relative difference |a - b| / max(|a|, |b|, eps).
double relative_error(double a, double b);

}  // namespace adapt::common
