#include "common/rng.h"

#include <cmath>

namespace adapt::common {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  // Lemire-style rejection to remove modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

double Rng::exponential(double rate) {
  // uniform() can return 0; 1 - u is in (0, 1].
  return -std::log1p(-uniform()) / rate;
}

double Rng::normal() {
  const double u1 = 1.0 - uniform();  // (0, 1]
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

Rng Rng::fork(std::uint64_t stream) const {
  std::uint64_t s = seed_ ^ (0xd1b54a32d192ed03ull * (stream + 1));
  return Rng(splitmix64(s));
}

}  // namespace adapt::common
