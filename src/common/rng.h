// Deterministic pseudo-random number generation for reproducible
// simulations.
//
// All stochastic components of the library draw from an explicitly
// threaded Rng so that every experiment is reproducible from a single
// seed. The generator is xoshiro256**, seeded through splitmix64 as its
// authors recommend; both are tiny, fast, and well studied.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace adapt::common {

// Stateless mixing step used for seeding and for deriving independent
// child seeds from a parent seed plus a stream index.
std::uint64_t splitmix64(std::uint64_t& state);

// xoshiro256** 1.0. Satisfies std::uniform_random_bit_generator, so it
// can also feed <random> distributions where convenient.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()();

  // Uniform in [0, 1). Uses the top 53 bits so every double is exact.
  double uniform();

  // Uniform in [lo, hi).
  double uniform(double lo, double hi);

  // Uniform integer in [0, n). Rejection-sampled, bias free. n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  // Exponential with the given rate (mean 1/rate). rate must be > 0.
  double exponential(double rate);

  // Standard normal via Box-Muller (no cached spare; simple and stateless).
  double normal();
  double normal(double mean, double stddev);

  // Derive an independent generator for a named sub-stream. Two children
  // with different stream indices are statistically independent.
  Rng fork(std::uint64_t stream) const;

 private:
  std::array<std::uint64_t, 4> state_{};
  std::uint64_t seed_;
};

}  // namespace adapt::common
