#include "common/log.h"

#include <atomic>
#include <cstdio>

namespace adapt::common {

namespace {

std::atomic<LogLevel> g_threshold{LogLevel::kWarn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel log_threshold() { return g_threshold.load(std::memory_order_relaxed); }

void set_log_threshold(LogLevel level) {
  g_threshold.store(level, std::memory_order_relaxed);
}

void log_line(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace adapt::common
