#include "common/config.h"

#include <stdexcept>

namespace adapt::common {

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // "--name value" unless the next token is itself a flag (then it is a
    // bare boolean).
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

std::optional<std::string> Flags::raw(const std::string& name) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

bool Flags::has(const std::string& name) const {
  queried_[name] = true;
  return values_.count(name) != 0;
}

std::string Flags::get_string(const std::string& name,
                              const std::string& fallback) const {
  return raw(name).value_or(fallback);
}

std::int64_t Flags::get_int(const std::string& name,
                            std::int64_t fallback) const {
  const auto v = raw(name);
  if (!v) return fallback;
  try {
    return std::stoll(*v);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects an integer, got '" +
                                *v + "'");
  }
}

double Flags::get_double(const std::string& name, double fallback) const {
  const auto v = raw(name);
  if (!v) return fallback;
  try {
    return std::stod(*v);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects a number, got '" +
                                *v + "'");
  }
}

bool Flags::get_bool(const std::string& name, bool fallback) const {
  const auto v = raw(name);
  if (!v) return fallback;
  if (*v == "true" || *v == "1" || *v == "yes" || *v == "on") return true;
  if (*v == "false" || *v == "0" || *v == "no" || *v == "off") return false;
  throw std::invalid_argument("flag --" + name + " expects a boolean, got '" +
                              *v + "'");
}

std::vector<std::string> Flags::unused() const {
  std::vector<std::string> out;
  for (const auto& [name, _] : values_) {
    if (!queried_.count(name)) out.push_back(name);
  }
  return out;
}

}  // namespace adapt::common
