#include "common/jsonfmt.h"

#include <cmath>
#include <cstdio>

namespace adapt::common {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace adapt::common
