#include "common/units.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace adapt::common {

Seconds transfer_time(std::uint64_t bytes, double bits_per_second) {
  if (bits_per_second <= 0.0) {
    throw std::invalid_argument("transfer_time: non-positive bandwidth");
  }
  return static_cast<double>(bytes) * 8.0 / bits_per_second;
}

namespace {

std::string format_with_unit(double value, const char* unit) {
  char buf[64];
  if (value >= 100.0 || value == std::floor(value)) {
    std::snprintf(buf, sizeof buf, "%.0f%s", value, unit);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f%s", value, unit);
  }
  return buf;
}

}  // namespace

std::string format_bytes(std::uint64_t bytes) {
  const double b = static_cast<double>(bytes);
  if (bytes >= kGiB) return format_with_unit(b / static_cast<double>(kGiB), "GiB");
  if (bytes >= kMiB) return format_with_unit(b / static_cast<double>(kMiB), "MiB");
  if (bytes >= kKiB) return format_with_unit(b / static_cast<double>(kKiB), "KiB");
  return format_with_unit(b, "B");
}

std::string format_seconds(Seconds s) {
  char buf[64];
  if (s < 1e-3) {
    std::snprintf(buf, sizeof buf, "%.0fus", s * 1e6);
  } else if (s < 1.0) {
    std::snprintf(buf, sizeof buf, "%.1fms", s * 1e3);
  } else if (s < 120.0) {
    std::snprintf(buf, sizeof buf, "%.1fs", s);
  } else if (s < 7200.0) {
    std::snprintf(buf, sizeof buf, "%.1fmin", s / 60.0);
  } else {
    std::snprintf(buf, sizeof buf, "%.1fh", s / 3600.0);
  }
  return buf;
}

std::string format_bandwidth(double bits_per_second) {
  char buf[64];
  if (bits_per_second >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.1fGb/s", bits_per_second / 1e9);
  } else if (bits_per_second >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.0fMb/s", bits_per_second / 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.0fKb/s", bits_per_second / 1e3);
  }
  return buf;
}

std::uint64_t parse_bytes(const std::string& text) {
  if (text.empty()) throw std::invalid_argument("parse_bytes: empty string");
  std::size_t pos = 0;
  const double value = std::stod(text, &pos);
  if (value < 0) throw std::invalid_argument("parse_bytes: negative size");
  std::string unit;
  for (; pos < text.size(); ++pos) {
    if (!std::isspace(static_cast<unsigned char>(text[pos]))) {
      unit += static_cast<char>(
          std::tolower(static_cast<unsigned char>(text[pos])));
    }
  }
  double scale = 1.0;
  if (unit.empty() || unit == "b") {
    scale = 1.0;
  } else if (unit == "k" || unit == "kb" || unit == "kib") {
    scale = static_cast<double>(kKiB);
  } else if (unit == "m" || unit == "mb" || unit == "mib") {
    scale = static_cast<double>(kMiB);
  } else if (unit == "g" || unit == "gb" || unit == "gib") {
    scale = static_cast<double>(kGiB);
  } else {
    throw std::invalid_argument("parse_bytes: unknown unit '" + unit + "'");
  }
  return static_cast<std::uint64_t>(std::llround(value * scale));
}

}  // namespace adapt::common
