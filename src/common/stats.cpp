#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace adapt::common {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats(); }

double RunningStats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::coefficient_of_variation() const {
  return mean() == 0.0 ? 0.0 : stddev() / mean();
}

double RunningStats::min() const { return min_; }
double RunningStats::max() const { return max_; }
double RunningStats::sum() const { return sum_; }

double percentile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double percentile(std::vector<double> samples, double q) {
  std::sort(samples.begin(), samples.end());
  return percentile_sorted(samples, q);
}

std::vector<double> percentiles(std::vector<double> samples,
                                const std::vector<double>& qs) {
  std::sort(samples.begin(), samples.end());
  std::vector<double> out;
  out.reserve(qs.size());
  for (const double q : qs) out.push_back(percentile_sorted(samples, q));
  return out;
}

Summary summarize(std::vector<double> samples) {
  Summary s;
  if (samples.empty()) return s;
  RunningStats rs;
  for (double x : samples) rs.add(x);
  s.count = rs.count();
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.cov = rs.coefficient_of_variation();
  s.min = rs.min();
  s.max = rs.max();
  std::sort(samples.begin(), samples.end());
  s.median = percentile_sorted(samples, 0.5);
  s.p95 = percentile_sorted(samples, 0.95);
  s.p99 = percentile_sorted(samples, 0.99);
  s.ci95_half_width =
      1.96 * s.stddev / std::sqrt(static_cast<double>(s.count));
  return s;
}

double relative_error(double a, double b) {
  const double scale =
      std::max({std::abs(a), std::abs(b), std::numeric_limits<double>::min()});
  return std::abs(a - b) / scale;
}

}  // namespace adapt::common
