// Leveled logging with a process-wide threshold. Simulation hot paths log
// at Debug and compile down to a cheap branch when the level is higher.
#pragma once

#include <sstream>
#include <string>

namespace adapt::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

LogLevel log_threshold();
void set_log_threshold(LogLevel level);

// Internal: emits one formatted line to stderr.
void log_line(LogLevel level, const std::string& message);

namespace detail {

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { log_line(level_, stream_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace adapt::common

#define ADAPT_LOG(level)                                         \
  if (::adapt::common::log_threshold() <= (level))               \
  ::adapt::common::detail::LogMessage(level)

#define ADAPT_LOG_DEBUG ADAPT_LOG(::adapt::common::LogLevel::kDebug)
#define ADAPT_LOG_INFO ADAPT_LOG(::adapt::common::LogLevel::kInfo)
#define ADAPT_LOG_WARN ADAPT_LOG(::adapt::common::LogLevel::kWarn)
#define ADAPT_LOG_ERROR ADAPT_LOG(::adapt::common::LogLevel::kError)
