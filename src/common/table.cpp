#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace adapt::common {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_row(const std::string& label,
                    const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(format_double(v, precision));
  add_row(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << '|';
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out << ' ' << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    out << '\n';
  };
  auto emit_rule = [&] {
    out << '|';
    for (std::size_t c = 0; c < header_.size(); ++c) {
      out << std::string(widths[c] + 2, '-') << '|';
    }
    out << '\n';
  };

  emit_row(header_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void Table::print(std::ostream& out) const { out << to_string(); }

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string format_percent(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.1f%%", v * 100.0);
  return buf;
}

}  // namespace adapt::common
