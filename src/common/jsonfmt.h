// Deterministic JSON fragment formatting shared by every machine-
// readable emitter (runner reports, observability traces, metrics).
//
// The contract all emitters rely on: fixed key order decided by the
// caller, locale-independent "%.17g" doubles (round-trip exact), and no
// environment-dependent data — so two runs with the same seed produce
// byte-identical files regardless of thread count or host.
#pragma once

#include <string>

namespace adapt::common {

// Backslash-escape quotes, backslashes and control characters.
std::string json_escape(const std::string& s);

// "%.17g" rendering; non-finite values become "null" so consumers fail
// loudly rather than parse garbage (JSON has no Infinity/NaN).
std::string json_number(double v);

}  // namespace adapt::common
