// Minimal ASCII table renderer. Every bench binary prints the rows of the
// paper table/figure it regenerates through this, so outputs line up and
// are easy to diff against EXPERIMENTS.md.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace adapt::common {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  // Adds a row; short rows are padded with empty cells.
  void add_row(std::vector<std::string> cells);

  // Convenience for numeric rows: formatted with the given precision.
  void add_row(const std::string& label, const std::vector<double>& values,
               int precision = 2);

  std::string to_string() const;
  void print(std::ostream& out) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Fixed-precision double -> string without trailing stream state games.
std::string format_double(double v, int precision = 2);

// Renders v as a percentage with one decimal, e.g. 0.873 -> "87.3%".
std::string format_percent(double v);

}  // namespace adapt::common
