// Unit-carrying helpers. Simulated time is double seconds throughout the
// library; data sizes are bytes; link speeds are bits per second, because
// the paper quotes broadband links in Mb/s.
#pragma once

#include <cstdint>
#include <string>

namespace adapt::common {

using Seconds = double;

inline constexpr std::uint64_t kKiB = 1024ull;
inline constexpr std::uint64_t kMiB = 1024ull * kKiB;
inline constexpr std::uint64_t kGiB = 1024ull * kMiB;

// Megabits per second -> bits per second.
constexpr double mbps(double v) { return v * 1e6; }

// Bytes transferred over a link of `bits_per_second`; returns seconds.
Seconds transfer_time(std::uint64_t bytes, double bits_per_second);

// Human-readable rendering, for logs and bench output.
std::string format_bytes(std::uint64_t bytes);
std::string format_seconds(Seconds s);
std::string format_bandwidth(double bits_per_second);

// "64MB", "1.5GiB", "4096" -> bytes. Throws std::invalid_argument on junk.
std::uint64_t parse_bytes(const std::string& text);

}  // namespace adapt::common
