#include "workload/terasort.h"

namespace adapt::workload {

Workload emulation_workload() {
  Workload w;
  w.gamma_per_64mb = 6.0;
  w.blocks_per_node = 20.0;
  return w;
}

Workload simulation_workload() {
  Workload w;
  w.gamma_per_64mb = 12.0;
  w.blocks_per_node = 100.0;
  return w;
}

}  // namespace adapt::workload
