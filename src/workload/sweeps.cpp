#include "workload/sweeps.h"

namespace adapt::workload {

std::vector<double> interrupted_ratio_sweep() { return {0.25, 0.5, 0.75}; }

std::vector<double> bandwidth_sweep() {
  return {common::mbps(4), common::mbps(8), common::mbps(16),
          common::mbps(32)};
}

std::vector<std::size_t> emulation_node_sweep() { return {32, 64, 128, 256}; }

std::vector<std::uint64_t> block_size_sweep() {
  return {16 * common::kMiB, 32 * common::kMiB, 64 * common::kMiB,
          128 * common::kMiB, 256 * common::kMiB};
}

std::vector<std::size_t> simulation_node_sweep() {
  return {1024, 2048, 4096, 8192, 16384};
}

EmulationDefaults emulation_defaults() { return {}; }

SimulationDefaults simulation_defaults() { return {}; }

}  // namespace adapt::workload
