// Parameter grids for every evaluation sweep in the paper, so benches,
// tests and examples agree on the exact points plotted.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.h"

namespace adapt::workload {

// Figure 3(a)/4(a): ratio of interrupted nodes.
std::vector<double> interrupted_ratio_sweep();     // {1/4, 1/2, 3/4}

// Figure 3(b)/4(b)/5(a): network bandwidth (bits/s).
std::vector<double> bandwidth_sweep();             // {4, 8, 16, 32} Mb/s

// Figure 3(c)/4(c): emulation cluster sizes.
std::vector<std::size_t> emulation_node_sweep();   // {32, 64, 128, 256}

// Figure 5(b): block sizes.
std::vector<std::uint64_t> block_size_sweep();     // {16..256} MiB

// Figure 5(c): simulation cluster sizes.
std::vector<std::size_t> simulation_node_sweep();  // {1024..16384}

// Table 3 / Table 4 defaults are provided by cluster::EmulationConfig /
// workload::simulation_workload(); re-exported here for bench headers.
struct EmulationDefaults {
  std::size_t node_count = 128;
  double interrupted_ratio = 0.5;
  double bandwidth_bps = common::mbps(8);
  std::uint64_t block_size_bytes = 64 * common::kMiB;
};
EmulationDefaults emulation_defaults();

struct SimulationDefaults {
  // Table 4 prints "8196"; every sweep in the paper uses powers of two,
  // so we read it as the 8192 typo it almost certainly is.
  std::size_t node_count = 8192;
  double bandwidth_bps = common::mbps(8);
  std::uint64_t block_size_bytes = 64 * common::kMiB;
  double tasks_per_node = 100.0;
  double gamma = 12.0;
};
SimulationDefaults simulation_defaults();

}  // namespace adapt::workload
