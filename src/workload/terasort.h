// Workload model.
//
// The paper benchmarks Terasort's map phase: every 64 MB block is one
// map task with an (approximately constant) failure-free execution time.
// Computation is I/O-bound, so the task length scales linearly with the
// block size (Figure 5(b) varies block size under exactly this
// assumption; Table 4 pins 12 s per 64 MB block for the simulation).
#pragma once

#include <cstdint>
#include <string>

#include "common/units.h"

namespace adapt::workload {

struct Workload {
  std::string name = "terasort";
  std::uint64_t block_size_bytes = 64 * common::kMiB;
  // Failure-free map time for a reference 64 MB block.
  double gamma_per_64mb = 12.0;
  // Blocks per node ("each node had 20 blocks on average", Section V-A;
  // "100 tasks per node", Table 4).
  double blocks_per_node = 20.0;

  double gamma() const {
    return gamma_per_64mb * static_cast<double>(block_size_bytes) /
           static_cast<double>(64 * common::kMiB);
  }
  std::uint32_t blocks_for(std::size_t node_count) const {
    return static_cast<std::uint32_t>(blocks_per_node *
                                      static_cast<double>(node_count));
  }
};

// Section V-A emulation workload: 20 x 64 MB blocks per node. The paper
// does not state gamma for the emulated Terasort; 6 s per block
// reproduces the reported magnitudes (ADAPT r1 within ~1.4x of the
// paper's 234 s at 128 nodes, see EXPERIMENTS.md).
Workload emulation_workload();

// Section V-C simulation workload: 100 tasks per node, 12 s per 64 MB
// block (Table 4).
Workload simulation_workload();

}  // namespace adapt::workload
