// HDFS data model: files are sequences of equal-sized blocks; each block
// has `replication` replicas living on distinct DataNodes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/node.h"

namespace adapt::hdfs {

using BlockId = std::uint64_t;
using FileId = std::uint32_t;

inline constexpr BlockId kInvalidBlock = ~BlockId{0};

struct BlockInfo {
  FileId file = 0;
  std::uint32_t index = 0;                     // position within the file
  std::vector<cluster::NodeIndex> replicas;    // distinct nodes

  bool hosted_on(cluster::NodeIndex node) const {
    for (cluster::NodeIndex r : replicas) {
      if (r == node) return true;
    }
    return false;
  }
};

struct FileInfo {
  std::string name;
  std::vector<BlockId> blocks;
  int replication = 1;
};

}  // namespace adapt::hdfs
