#include "hdfs/client.h"

#include <algorithm>
#include <stdexcept>

namespace adapt::hdfs {

Client::Client(NameNode& namenode, placement::PolicyPtr default_policy,
               placement::PolicyPtr adapt_policy, cluster::Network* network,
               std::uint64_t block_size_bytes)
    : namenode_(namenode),
      default_policy_(std::move(default_policy)),
      adapt_policy_(std::move(adapt_policy)),
      network_(network),
      block_size_(block_size_bytes) {
  if (!default_policy_ || !adapt_policy_) {
    throw std::invalid_argument("client: null policy");
  }
  if (block_size_ == 0) {
    throw std::invalid_argument("client: zero block size");
  }
}

placement::PolicyPtr Client::policy_for(bool adapt_enabled) const {
  return adapt_enabled ? adapt_policy_ : default_policy_;
}

void Client::set_metrics(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  if (metrics_) {
    skipped_dead_ = metrics_->counter("hdfs.transfer_skipped_dead");
  }
}

bool Client::node_live(cluster::NodeIndex node) const {
  if (node == cluster::kOriginEndpoint) return true;
  if (namenode_.is_dead(node)) return false;
  return !liveness_ || liveness_(node);
}

bool Client::charge_transfer(std::uint32_t src, std::uint32_t dst,
                             common::Seconds now, TransferSummary* summary) {
  if (!node_live(src) || !node_live(dst)) {
    // A departed endpoint cannot source or sink bytes; charging the
    // network here would model a full-speed transfer from a ghost.
    if (metrics_) metrics_->add(skipped_dead_);
    return false;
  }
  if (summary) {
    ++summary->blocks_moved;
    summary->bytes_moved += block_size_;
  }
  if (!network_) return true;
  const cluster::TransferGrant grant =
      network_->request(src, dst, block_size_, now);
  network_->on_transfer_complete(block_size_);
  if (summary) {
    summary->completion_time = std::max(summary->completion_time, grant.end);
  }
  return true;
}

FileId Client::copy_from_local(const std::string& name,
                               std::uint32_t num_blocks, int replication,
                               bool adapt_enabled, common::Rng& rng,
                               common::Seconds now, TransferSummary* summary,
                               const NameNode::NodeFilter& filter) {
  const FileId id = namenode_.create_file(
      name, num_blocks, replication, policy_for(adapt_enabled), rng, filter);
  const std::vector<BlockId>& blocks = namenode_.file(id).blocks;
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    const std::vector<cluster::NodeIndex>& replicas =
        namenode_.block(blocks[b]).replicas;
    for (std::size_t ri = 0; ri < replicas.size(); ++ri) {
      charge_transfer(cluster::kOriginEndpoint, replicas[ri], now, summary);
      if (tracer_ != nullptr) {
        obs::TraceRecord r;
        r.t = now;
        r.type = obs::EventType::kPlacement;
        r.task = static_cast<std::uint32_t>(b);
        r.aux = static_cast<std::uint32_t>(ri);
        r.node = replicas[ri];
        if (replicas[ri] < quotes_.size()) r.v0 = quotes_[replicas[ri]];
        tracer_->record(r);
      }
    }
  }
  return id;
}

FileId Client::cp(const std::string& src, const std::string& dst,
                  bool adapt_enabled, common::Rng& rng, common::Seconds now,
                  TransferSummary* summary,
                  const NameNode::NodeFilter& filter) {
  const FileId src_id = namenode_.file_id(src);
  const std::uint32_t src_blocks =
      static_cast<std::uint32_t>(namenode_.file(src_id).blocks.size());
  const int src_replication = namenode_.file(src_id).replication;
  const FileId dst_id =
      namenode_.create_file(dst, src_blocks, src_replication,
                            policy_for(adapt_enabled), rng, filter);

  // Each destination replica pulls from a source replica of the same
  // block (round-robin across the source's *live* holders; when every
  // holder is down the copy falls back to an origin fetch, mirroring
  // the simulator's read path). Both references are taken after
  // create_file: growing the file table can reallocate it, so a
  // reference held across the call would dangle.
  const FileInfo& src_info = namenode_.file(src_id);
  const FileInfo& dst_info = namenode_.file(dst_id);
  for (std::size_t b = 0; b < dst_info.blocks.size(); ++b) {
    const BlockInfo& src_block = namenode_.block(src_info.blocks[b]);
    const BlockInfo& dst_block = namenode_.block(dst_info.blocks[b]);
    std::vector<cluster::NodeIndex> live_sources;
    live_sources.reserve(src_block.replicas.size());
    for (const cluster::NodeIndex holder : src_block.replicas) {
      if (node_live(holder)) live_sources.push_back(holder);
    }
    for (std::size_t r = 0; r < dst_block.replicas.size(); ++r) {
      const cluster::NodeIndex from =
          live_sources.empty() ? cluster::kOriginEndpoint
                               : live_sources[r % live_sources.size()];
      const cluster::NodeIndex to = dst_block.replicas[r];
      if (from != to) charge_transfer(from, to, now, summary);
    }
  }
  return dst_id;
}

TransferSummary Client::adapt_rebalance(const std::string& name,
                                        common::Rng& rng, common::Seconds now,
                                        const NameNode::NodeFilter& filter) {
  const FileId id = namenode_.file_id(name);
  TransferSummary summary;
  const std::vector<ReplicaMove> moves =
      namenode_.rebalance_file(id, adapt_policy_, rng, filter);
  // Data first, metadata second: each pending move only commits once
  // its transfer has been charged. The preferred source is the holder
  // being vacated; if it is down another live holder serves, and with
  // no live holder at all the origin re-seeds the destination.
  for (const ReplicaMove& move : moves) {
    cluster::NodeIndex src = move.from;
    if (!node_live(src)) {
      src = cluster::kOriginEndpoint;
      for (const cluster::NodeIndex holder :
           namenode_.block(move.block).replicas) {
        if (node_live(holder)) {
          src = holder;
          break;
        }
      }
    }
    if (charge_transfer(src, move.to, now, &summary)) {
      namenode_.commit_move(move.block, move.from, move.to);
    } else {
      namenode_.abort_move(move.block, move.from, move.to);
    }
  }
  return summary;
}

}  // namespace adapt::hdfs
