// The NameNode: centralized file/block metadata plus the placement
// decision point ADAPT hooks into (paper Fig. 2, "Data Block
// Distributor").
//
// Placement flow per replica: the NameNode builds the eligibility mask
// (distinct replicas per block, DataNode free space, optional
// caller-supplied mask such as "node currently up"), applies the
// fidelity cap when configured, and delegates the draw to the active
// PlacementPolicy.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/fault_domains.h"
#include "cluster/node_mask.h"
#include "common/rng.h"
#include "hdfs/block.h"
#include "hdfs/datanode.h"
#include "placement/capped_policy.h"
#include "placement/policy.h"

namespace adapt::hdfs {

// A replica move produced by the rebalancer. The move is *pending*
// until the caller streams the bytes and calls commit_move (or gives
// up and calls abort_move); the destination holds reserved space but
// no readable replica while the move is in flight.
struct ReplicaMove {
  BlockId block = 0;
  cluster::NodeIndex from = 0;
  cluster::NodeIndex to = 0;
};

class NameNode {
 public:
  struct Options {
    // Apply the Section IV-C threshold m(k+1)/n per load. The cap is
    // computed per create_file/rebalance call from that call's block
    // count and replication, unless cap_override is non-zero.
    bool fidelity_cap = false;
    std::uint64_t cap_override = 0;
  };

  // Defensive-accounting counters (dedupe guards, revive reclaim);
  // monotonic over the NameNode's lifetime.
  struct Stats {
    std::uint64_t duplicate_replica_inserts = 0;
    std::uint64_t over_replicated_trimmed = 0;
    std::uint64_t replicas_restored = 0;
  };

  explicit NameNode(std::size_t node_count);
  NameNode(std::size_t node_count, Options options);
  NameNode(std::vector<std::uint64_t> capacity_blocks, Options options);

  std::size_t node_count() const { return nodes_.node_count(); }

  // Install the cluster's fault-domain hierarchy. With `anti_affine`
  // set, every eligibility mask additionally excludes domains already
  // holding (or about to receive) a replica of the block, falling back
  // to the fewest-replicas-per-domain rule when every live domain holds
  // one (see FaultDomains::restrict_anti_affine). The hierarchy also
  // steers the excess-replica trim on revive regardless of the flag.
  void set_fault_domains(
      std::shared_ptr<const cluster::FaultDomains> domains,
      bool anti_affine);
  const cluster::FaultDomains* fault_domains() const {
    return domains_.get();
  }

  const Stats& stats() const { return stats_; }

  // Extra eligibility the environment imposes (e.g. only up nodes can
  // receive data during a load). Null = everything eligible.
  using NodeFilter = std::function<bool(cluster::NodeIndex)>;

  // Create a file of `num_blocks` blocks, placing `replication` replicas
  // of each through `policy`. Throws std::runtime_error if some replica
  // cannot be placed at all (no eligible node). Returns the FileId.
  FileId create_file(const std::string& name, std::uint32_t num_blocks,
                     int replication, const placement::PolicyPtr& policy,
                     common::Rng& rng, const NodeFilter& filter = nullptr);

  // Re-place every replica of an existing file through `policy` (the
  // `adapt` shell command / rebalance). Replicas whose new draw equals an
  // existing location stay put; others become *pending* moves: the
  // destination's space is reserved (begin_move) but block metadata is
  // untouched until the caller commits each move after the bytes have
  // actually been transferred. Returns the pending moves.
  std::vector<ReplicaMove> rebalance_file(
      FileId file, const placement::PolicyPtr& policy, common::Rng& rng,
      const NodeFilter& filter = nullptr);

  // -- Pending-move state machine -----------------------------------
  // begin_move reserves destination space for an in-flight migration
  // without making the replica readable there; commit_move flips the
  // metadata (add at `to`, drop at `from`) once the bytes have landed;
  // abort_move releases the reservation with no metadata change.
  // Invariants enforced: `from` must hold the block and `to` must not
  // (nor already be a pending target for it); `to` must be alive with
  // free space. commit_move tolerates `from` having been written off
  // by a node death mid-transfer (the new replica still lands).
  void begin_move(BlockId block, cluster::NodeIndex from,
                  cluster::NodeIndex to);
  void commit_move(BlockId block, cluster::NodeIndex from,
                   cluster::NodeIndex to);
  void abort_move(BlockId block, cluster::NodeIndex from,
                  cluster::NodeIndex to);
  bool has_pending_move(BlockId block, cluster::NodeIndex from,
                        cluster::NodeIndex to) const;
  const std::vector<ReplicaMove>& pending_moves() const {
    return pending_moves_;
  }

  // Eligibility mask for placing a brand-new replica of `block` right
  // now: placeable nodes minus current holders minus pending-move
  // targets (a node already receiving the block must not be drawn
  // again). Shared by re-replication and migration redraws.
  cluster::NodeMask eligibility_for_new_replica(BlockId block) const;

  bool has_file(const std::string& name) const;
  FileId file_id(const std::string& name) const;
  const FileInfo& file(FileId id) const;
  const BlockInfo& block(BlockId id) const;
  std::size_t block_count() const { return blocks_.size(); }

  // Per-node replica counts for a single file (experiment metric).
  std::vector<std::uint64_t> file_distribution(FileId id) const;

  const DataNodeDirectory& datanodes() const { return nodes_; }
  const Options& options() const { return options_; }

  // Replica-level mutation, used by rebalance internally and available
  // for failure-injection tests. add_replica dedupes on insert: asking
  // to register a holder already present is counted
  // (stats().duplicate_replica_inserts) and ignored, so a policy or
  // migration bug can never double-count a holder in locality or loss
  // accounting.
  void add_replica(BlockId block, cluster::NodeIndex node);
  void remove_replica(BlockId block, cluster::NodeIndex node);

  // -- Dead-node registry -------------------------------------------
  // Declare a node dead: every replica it held is written off (the
  // directory forgets them) and the affected blocks are returned, each
  // once, for re-replication. Pending moves *into* the node are
  // aborted (their reservations released); pending moves *out* stay —
  // the migration driver re-sources them from a surviving holder. The
  // node is ineligible for placement until revived. Idempotent: a
  // second call returns nothing.
  std::vector<BlockId> mark_node_dead(cluster::NodeIndex node);

  // What revive_node did: the blocks whose disk copy was re-registered
  // on the revived node, and the excess replicas reclaimed (block +
  // the holder whose copy was dropped — the revived node itself when
  // its disk copy was the redundant one).
  struct ReplicaDrop {
    BlockId block = 0;
    cluster::NodeIndex node = 0;
  };
  struct ReviveReport {
    std::vector<BlockId> restored;
    std::vector<ReplicaDrop> trimmed;
  };

  // A dead node came back. Its disk still holds every replica written
  // off at death (a false dead declaration deletes metadata, not
  // bytes), so the revive acts as an HDFS block report: each surviving
  // copy is re-registered, and any block the restore pushes past its
  // target replication is trimmed back — preferring to drop a holder
  // whose domain holds a duplicate, so the reclaim improves domain
  // spread rather than fighting it. Counted in
  // stats().replicas_restored / stats().over_replicated_trimmed.
  ReviveReport revive_node(cluster::NodeIndex node);

  bool is_dead(cluster::NodeIndex node) const { return dead_.at(node); }

  // Nodes that can receive a replica right now: free space and not dead.
  // Maintained incrementally on every replica mutation, death and
  // revival; per-draw eligibility is this mask AND the caller filter
  // minus the block's current holders.
  const cluster::NodeMask& placement_mask() const { return placeable_; }

 private:
  // One replica draw honoring distinctness/space/filter/anti-affinity;
  // updates the cap counter on success. `filter_mask` is the caller
  // filter materialized once per create/rebalance call (null = no
  // filter). (key, ordinal) identify the draw for consistent-hash
  // policies (block id, replica index).
  std::optional<cluster::NodeIndex> place_replica(
      const BlockInfo& info, const placement::PlacementPolicy& policy,
      placement::CappedPolicy* cap, common::Rng& rng,
      const cluster::NodeMask* filter_mask, std::uint64_t key,
      std::uint32_t ordinal);

  // Per-draw eligibility. `block_id`, when known, additionally
  // excludes the block's pending-move targets (create_file passes
  // nullopt: a brand-new block has none).
  cluster::NodeMask eligibility(const BlockInfo& info,
                                const cluster::NodeMask* filter_mask,
                                std::optional<BlockId> block_id) const;

  // Index of the pending entry for (block, from, to), or npos.
  std::size_t find_pending(BlockId block, cluster::NodeIndex from,
                           cluster::NodeIndex to) const;

  // Evaluate a caller NodeFilter into a mask, once per call (nullopt
  // when there is no filter). Filters are pure within one call: the
  // NameNode is synchronous, so node state cannot change mid-call.
  std::optional<cluster::NodeMask> materialize_filter(
      const NodeFilter& filter) const;

  // Recompute the placeable_ bit for one node after a mutation.
  void sync_placeable(cluster::NodeIndex node);

  // Trim victim when restoring `node`'s disk copy of an over-replicated
  // block: an existing holder sharing a domain with another holder
  // (swapping it for the disk copy improves spread), or nullopt when the
  // disk copy itself is the redundant one.
  std::optional<cluster::NodeIndex> trim_victim(
      const BlockInfo& info, cluster::NodeIndex node) const;

  Options options_;
  DataNodeDirectory nodes_;
  std::vector<FileInfo> files_;
  std::unordered_map<std::string, FileId> files_by_name_;
  std::vector<BlockInfo> blocks_;
  std::vector<bool> dead_;
  cluster::NodeMask placeable_;
  std::vector<ReplicaMove> pending_moves_;
  // Blocks whose replica on node i was written off by mark_node_dead —
  // the "what is still on its disk" ledger revive_node restores from.
  std::vector<std::vector<BlockId>> written_off_;
  std::shared_ptr<const cluster::FaultDomains> domains_;
  bool anti_affine_ = false;
  Stats stats_;
};

}  // namespace adapt::hdfs
