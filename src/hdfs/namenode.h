// The NameNode: centralized file/block metadata plus the placement
// decision point ADAPT hooks into (paper Fig. 2, "Data Block
// Distributor").
//
// Placement flow per replica: the NameNode builds the eligibility mask
// (distinct replicas per block, DataNode free space, optional
// caller-supplied mask such as "node currently up"), applies the
// fidelity cap when configured, and delegates the draw to the active
// PlacementPolicy.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/node_mask.h"
#include "common/rng.h"
#include "hdfs/block.h"
#include "hdfs/datanode.h"
#include "placement/capped_policy.h"
#include "placement/policy.h"

namespace adapt::hdfs {

// A replica move produced by the rebalancer; the caller charges the
// transfer to the network model.
struct ReplicaMove {
  BlockId block = 0;
  cluster::NodeIndex from = 0;
  cluster::NodeIndex to = 0;
};

class NameNode {
 public:
  struct Options {
    // Apply the Section IV-C threshold m(k+1)/n per load. The cap is
    // computed per create_file/rebalance call from that call's block
    // count and replication, unless cap_override is non-zero.
    bool fidelity_cap = false;
    std::uint64_t cap_override = 0;
  };

  explicit NameNode(std::size_t node_count);
  NameNode(std::size_t node_count, Options options);
  NameNode(std::vector<std::uint64_t> capacity_blocks, Options options);

  std::size_t node_count() const { return nodes_.node_count(); }

  // Extra eligibility the environment imposes (e.g. only up nodes can
  // receive data during a load). Null = everything eligible.
  using NodeFilter = std::function<bool(cluster::NodeIndex)>;

  // Create a file of `num_blocks` blocks, placing `replication` replicas
  // of each through `policy`. Throws std::runtime_error if some replica
  // cannot be placed at all (no eligible node). Returns the FileId.
  FileId create_file(const std::string& name, std::uint32_t num_blocks,
                     int replication, const placement::PolicyPtr& policy,
                     common::Rng& rng, const NodeFilter& filter = nullptr);

  // Re-place every replica of an existing file through `policy` (the
  // `adapt` shell command / rebalance). Replicas whose new draw equals an
  // existing location stay put; others move. Returns the moves.
  std::vector<ReplicaMove> rebalance_file(
      FileId file, const placement::PolicyPtr& policy, common::Rng& rng,
      const NodeFilter& filter = nullptr);

  bool has_file(const std::string& name) const;
  FileId file_id(const std::string& name) const;
  const FileInfo& file(FileId id) const;
  const BlockInfo& block(BlockId id) const;
  std::size_t block_count() const { return blocks_.size(); }

  // Per-node replica counts for a single file (experiment metric).
  std::vector<std::uint64_t> file_distribution(FileId id) const;

  const DataNodeDirectory& datanodes() const { return nodes_; }
  const Options& options() const { return options_; }

  // Replica-level mutation, used by rebalance internally and available
  // for failure-injection tests.
  void add_replica(BlockId block, cluster::NodeIndex node);
  void remove_replica(BlockId block, cluster::NodeIndex node);

  // -- Dead-node registry -------------------------------------------
  // Declare a node dead: every replica it held is written off (the
  // directory forgets them) and the affected blocks are returned, each
  // once, for re-replication. The node is ineligible for placement
  // until revived. Idempotent: a second call returns nothing.
  std::vector<BlockId> mark_node_dead(cluster::NodeIndex node);

  // A dead node came back. It rejoins with no replicas (its data was
  // already written off) but becomes eligible for placement again.
  void revive_node(cluster::NodeIndex node);

  bool is_dead(cluster::NodeIndex node) const { return dead_.at(node); }

  // Nodes that can receive a replica right now: free space and not dead.
  // Maintained incrementally on every replica mutation, death and
  // revival; per-draw eligibility is this mask AND the caller filter
  // minus the block's current holders.
  const cluster::NodeMask& placement_mask() const { return placeable_; }

 private:
  // One replica draw honoring distinctness/space/filter; updates the cap
  // counter on success. `filter_mask` is the caller filter materialized
  // once per create/rebalance call (null = no filter).
  std::optional<cluster::NodeIndex> place_replica(
      const BlockInfo& info, const placement::PlacementPolicy& policy,
      placement::CappedPolicy* cap, common::Rng& rng,
      const cluster::NodeMask* filter_mask);

  cluster::NodeMask eligibility(const BlockInfo& info,
                                const cluster::NodeMask* filter_mask) const;

  // Evaluate a caller NodeFilter into a mask, once per call (nullopt
  // when there is no filter). Filters are pure within one call: the
  // NameNode is synchronous, so node state cannot change mid-call.
  std::optional<cluster::NodeMask> materialize_filter(
      const NodeFilter& filter) const;

  // Recompute the placeable_ bit for one node after a mutation.
  void sync_placeable(cluster::NodeIndex node);

  Options options_;
  DataNodeDirectory nodes_;
  std::vector<FileInfo> files_;
  std::unordered_map<std::string, FileId> files_by_name_;
  std::vector<BlockInfo> blocks_;
  std::vector<bool> dead_;
  cluster::NodeMask placeable_;
};

}  // namespace adapt::hdfs
