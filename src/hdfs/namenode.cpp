#include "hdfs/namenode.h"

#include <algorithm>
#include <stdexcept>

namespace adapt::hdfs {

NameNode::NameNode(std::size_t node_count)
    : NameNode(node_count, Options{}) {}

NameNode::NameNode(std::size_t node_count, Options options)
    : options_(options),
      nodes_(node_count),
      dead_(node_count, false),
      placeable_(node_count),
      written_off_(node_count) {
  for (std::size_t i = 0; i < node_count; ++i) {
    sync_placeable(static_cast<cluster::NodeIndex>(i));
  }
}

NameNode::NameNode(std::vector<std::uint64_t> capacity_blocks, Options options)
    : options_(options),
      nodes_(std::move(capacity_blocks)),
      dead_(nodes_.node_count(), false),
      placeable_(nodes_.node_count()),
      written_off_(nodes_.node_count()) {
  for (std::size_t i = 0; i < nodes_.node_count(); ++i) {
    sync_placeable(static_cast<cluster::NodeIndex>(i));
  }
}

void NameNode::set_fault_domains(
    std::shared_ptr<const cluster::FaultDomains> domains, bool anti_affine) {
  if (domains && !domains->empty() &&
      domains->node_count() != node_count()) {
    throw std::invalid_argument("set_fault_domains: node count mismatch");
  }
  domains_ = std::move(domains);
  anti_affine_ = anti_affine && domains_ && !domains_->empty();
}

void NameNode::sync_placeable(cluster::NodeIndex node) {
  placeable_.assign(node, nodes_.has_space(node) && !dead_[node]);
}

std::optional<cluster::NodeMask> NameNode::materialize_filter(
    const NodeFilter& filter) const {
  if (!filter) return std::nullopt;
  cluster::NodeMask mask(node_count());
  for (std::size_t i = 0; i < node_count(); ++i) {
    const auto node = static_cast<cluster::NodeIndex>(i);
    if (filter(node)) mask.set(i);
  }
  return mask;
}

cluster::NodeMask NameNode::eligibility(
    const BlockInfo& info, const cluster::NodeMask* filter_mask,
    std::optional<BlockId> block_id) const {
  cluster::NodeMask eligible = placeable_;
  if (filter_mask) eligible &= *filter_mask;
  for (const cluster::NodeIndex holder : info.replicas) {
    eligible.reset(holder);
  }
  // A brand-new block (create_file) cannot have pending moves; only
  // callers that pass the id pay the pending scan.
  if (block_id && !pending_moves_.empty()) {
    for (const ReplicaMove& move : pending_moves_) {
      if (move.block == *block_id) eligible.reset(move.to);
    }
  }
  if (anti_affine_) {
    // Cross-domain anti-affinity: a pending-move target will hold a
    // copy too, so its domain is as taken as a holder's.
    std::vector<cluster::NodeIndex> taken = info.replicas;
    if (block_id) {
      for (const ReplicaMove& move : pending_moves_) {
        if (move.block == *block_id) taken.push_back(move.to);
      }
    }
    domains_->restrict_anti_affine(eligible, taken);
  }
  return eligible;
}

cluster::NodeMask NameNode::eligibility_for_new_replica(BlockId block) const {
  return eligibility(blocks_.at(block), nullptr, block);
}

std::optional<cluster::NodeIndex> NameNode::place_replica(
    const BlockInfo& info, const placement::PlacementPolicy& policy,
    placement::CappedPolicy* cap, common::Rng& rng,
    const cluster::NodeMask* filter_mask, std::uint64_t key,
    std::uint32_t ordinal) {
  const cluster::NodeMask eligible =
      eligibility(info, filter_mask, std::nullopt);
  std::optional<cluster::NodeIndex> node =
      cap ? cap->choose_keyed(key, ordinal, eligible, rng)
          : policy.choose_keyed(key, ordinal, eligible, rng);
  if (!node && cap) {
    // Every under-cap node is ineligible; the paper's threshold is a
    // fidelity knob, not a correctness constraint, so overflow past it
    // rather than fail the load.
    node = policy.choose_keyed(key, ordinal, eligible, rng);
  }
  if (node && cap) cap->record_placement(*node);
  return node;
}

FileId NameNode::create_file(const std::string& name,
                             std::uint32_t num_blocks, int replication,
                             const placement::PolicyPtr& policy,
                             common::Rng& rng, const NodeFilter& filter) {
  if (!policy) throw std::invalid_argument("create_file: null policy");
  if (num_blocks == 0) throw std::invalid_argument("create_file: no blocks");
  if (replication < 1 ||
      static_cast<std::size_t>(replication) > node_count()) {
    throw std::invalid_argument("create_file: bad replication");
  }
  if (files_by_name_.count(name)) {
    throw std::invalid_argument("create_file: file exists: " + name);
  }

  std::unique_ptr<placement::CappedPolicy> cap;
  if (options_.fidelity_cap) {
    const std::uint64_t limit =
        options_.cap_override
            ? options_.cap_override
            : placement::fidelity_threshold(num_blocks, replication,
                                            node_count());
    cap = std::make_unique<placement::CappedPolicy>(policy, node_count(),
                                                    limit);
  }

  const auto id = static_cast<FileId>(files_.size());
  FileInfo file_info;
  file_info.name = name;
  file_info.replication = replication;
  file_info.blocks.reserve(num_blocks);

  const std::optional<cluster::NodeMask> filter_mask =
      materialize_filter(filter);
  const cluster::NodeMask* filter_ptr =
      filter_mask ? &*filter_mask : nullptr;

  // Everything placed so far must be unwound if a later replica cannot
  // be placed: a failed create must leave no trace in the block map or
  // the per-node usage counters.
  const std::size_t first_block = blocks_.size();
  auto rollback = [&](const BlockInfo& partial) {
    for (const cluster::NodeIndex n : partial.replicas) {
      nodes_.remove_replica(n);
      sync_placeable(n);
    }
    for (std::size_t b = first_block; b < blocks_.size(); ++b) {
      for (const cluster::NodeIndex n : blocks_[b].replicas) {
        nodes_.remove_replica(n);
        sync_placeable(n);
      }
    }
    blocks_.resize(first_block);
  };

  for (std::uint32_t b = 0; b < num_blocks; ++b) {
    const BlockId block_id = blocks_.size();
    BlockInfo info;
    info.file = id;
    info.index = b;
    for (int r = 0; r < replication; ++r) {
      const auto node =
          place_replica(info, *policy, cap.get(), rng, filter_ptr, block_id,
                        static_cast<std::uint32_t>(r));
      if (!node) {
        rollback(info);
        throw std::runtime_error(
            "create_file: no eligible node for a replica of block " +
            std::to_string(block_id));
      }
      info.replicas.push_back(*node);
      nodes_.add_replica(*node);
      sync_placeable(*node);
    }
    blocks_.push_back(std::move(info));
    file_info.blocks.push_back(block_id);
  }

  files_.push_back(std::move(file_info));
  files_by_name_[name] = id;
  return id;
}

std::vector<ReplicaMove> NameNode::rebalance_file(
    FileId file_id, const placement::PolicyPtr& policy, common::Rng& rng,
    const NodeFilter& filter) {
  if (!policy) throw std::invalid_argument("rebalance_file: null policy");
  const FileInfo& info = file(file_id);

  std::unique_ptr<placement::CappedPolicy> cap;
  if (options_.fidelity_cap) {
    const std::uint64_t limit =
        options_.cap_override
            ? options_.cap_override
            : placement::fidelity_threshold(info.blocks.size(),
                                            info.replication, node_count());
    cap = std::make_unique<placement::CappedPolicy>(policy, node_count(),
                                                    limit);
  }

  const std::optional<cluster::NodeMask> filter_mask =
      materialize_filter(filter);
  const cluster::NodeMask* filter_ptr =
      filter_mask ? &*filter_mask : nullptr;

  std::vector<ReplicaMove> moves;
  for (const BlockId block_id : info.blocks) {
    // Redraw each replica; a draw landing on the current holder keeps
    // the replica in place (no transfer). Draws that move become
    // pending: space reserved at the target, metadata untouched until
    // the caller commits the transfer.
    const std::vector<cluster::NodeIndex> old_replicas =
        blocks_.at(block_id).replicas;
    for (std::size_t r = 0; r < old_replicas.size(); ++r) {
      const cluster::NodeIndex old_node = old_replicas[r];
      const auto ordinal = static_cast<std::uint32_t>(r);
      cluster::NodeMask eligible =
          eligibility(blocks_.at(block_id), filter_ptr, block_id);
      eligible.set(old_node);  // staying put is always allowed
      auto target = cap ? cap->choose_keyed(block_id, ordinal, eligible, rng)
                        : policy->choose_keyed(block_id, ordinal, eligible,
                                               rng);
      if (!target) target = old_node;  // over-cap everywhere: keep
      if (cap) cap->record_placement(*target);
      if (*target != old_node) {
        begin_move(block_id, old_node, *target);
        moves.push_back({block_id, old_node, *target});
      }
    }
  }
  return moves;
}

std::size_t NameNode::find_pending(BlockId block, cluster::NodeIndex from,
                                   cluster::NodeIndex to) const {
  for (std::size_t i = 0; i < pending_moves_.size(); ++i) {
    const ReplicaMove& move = pending_moves_[i];
    if (move.block == block && move.from == from && move.to == to) return i;
  }
  return static_cast<std::size_t>(-1);
}

bool NameNode::has_pending_move(BlockId block, cluster::NodeIndex from,
                                cluster::NodeIndex to) const {
  return find_pending(block, from, to) != static_cast<std::size_t>(-1);
}

void NameNode::begin_move(BlockId block, cluster::NodeIndex from,
                          cluster::NodeIndex to) {
  const BlockInfo& info = blocks_.at(block);
  if (!info.hosted_on(from)) {
    throw std::logic_error("begin_move: source does not hold block");
  }
  if (info.hosted_on(to)) {
    throw std::logic_error("begin_move: destination already holds block");
  }
  for (const ReplicaMove& move : pending_moves_) {
    if (move.block == block && move.to == to) {
      throw std::logic_error("begin_move: destination already pending");
    }
  }
  if (dead_.at(to)) throw std::logic_error("begin_move: destination dead");
  if (!nodes_.has_space(to)) {
    throw std::logic_error("begin_move: destination full");
  }
  nodes_.add_replica(to);  // reserve space for the inbound bytes
  sync_placeable(to);
  pending_moves_.push_back({block, from, to});
}

void NameNode::commit_move(BlockId block, cluster::NodeIndex from,
                           cluster::NodeIndex to) {
  const std::size_t idx = find_pending(block, from, to);
  if (idx == static_cast<std::size_t>(-1)) {
    throw std::logic_error("commit_move: no such pending move");
  }
  pending_moves_.erase(pending_moves_.begin() +
                       static_cast<std::ptrdiff_t>(idx));
  if (blocks_.at(block).hosted_on(to)) {
    // Another pipeline (re-replication) landed its own copy at `to`
    // while this move was on the wire. The replica is already real;
    // release the reservation and keep the source copy in place.
    ++stats_.duplicate_replica_inserts;
    nodes_.remove_replica(to);
    sync_placeable(to);
    return;
  }
  // The reservation made by begin_move becomes the real replica; no
  // second usage bump.
  blocks_.at(block).replicas.push_back(to);
  // Drop the source copy. If a node death already wrote it off
  // mid-transfer the new replica simply lands (net replica gain).
  if (blocks_.at(block).hosted_on(from)) {
    remove_replica(block, from);
  }
}

void NameNode::abort_move(BlockId block, cluster::NodeIndex from,
                          cluster::NodeIndex to) {
  const std::size_t idx = find_pending(block, from, to);
  if (idx == static_cast<std::size_t>(-1)) {
    throw std::logic_error("abort_move: no such pending move");
  }
  pending_moves_.erase(pending_moves_.begin() +
                       static_cast<std::ptrdiff_t>(idx));
  nodes_.remove_replica(to);  // release the reservation
  sync_placeable(to);
}

bool NameNode::has_file(const std::string& name) const {
  return files_by_name_.count(name) != 0;
}

FileId NameNode::file_id(const std::string& name) const {
  const auto it = files_by_name_.find(name);
  if (it == files_by_name_.end()) {
    throw std::out_of_range("no such file: " + name);
  }
  return it->second;
}

const FileInfo& NameNode::file(FileId id) const { return files_.at(id); }

const BlockInfo& NameNode::block(BlockId id) const { return blocks_.at(id); }

std::vector<std::uint64_t> NameNode::file_distribution(FileId id) const {
  std::vector<std::uint64_t> counts(node_count(), 0);
  for (const BlockId b : file(id).blocks) {
    for (const cluster::NodeIndex node : blocks_.at(b).replicas) {
      ++counts[node];
    }
  }
  return counts;
}

void NameNode::add_replica(BlockId block, cluster::NodeIndex node) {
  BlockInfo& info = blocks_.at(block);
  if (info.hosted_on(node)) {
    // Dedupe on insert: racing pipelines (re-replication vs migration
    // commit) may both try to register the same holder. Count it and
    // keep the metadata single-entry.
    ++stats_.duplicate_replica_inserts;
    return;
  }
  info.replicas.push_back(node);
  nodes_.add_replica(node);
  sync_placeable(node);
}

void NameNode::remove_replica(BlockId block, cluster::NodeIndex node) {
  BlockInfo& info = blocks_.at(block);
  const auto it =
      std::find(info.replicas.begin(), info.replicas.end(), node);
  if (it == info.replicas.end()) {
    throw std::logic_error("remove_replica: node does not hold block");
  }
  info.replicas.erase(it);
  nodes_.remove_replica(node);
  sync_placeable(node);
}

std::vector<BlockId> NameNode::mark_node_dead(cluster::NodeIndex node) {
  if (node >= node_count()) {
    throw std::out_of_range("mark_node_dead: bad node");
  }
  std::vector<BlockId> affected;
  if (dead_[node]) return affected;
  dead_[node] = true;
  placeable_.reset(node);
  // Pending moves *into* the dead node can never complete: release
  // their reservations here so the space accounting stays exact even
  // if the migration driver learns of the death later. Moves *out*
  // survive — they re-source from a live holder.
  for (std::size_t i = pending_moves_.size(); i-- > 0;) {
    if (pending_moves_[i].to == node) {
      nodes_.remove_replica(node);
      pending_moves_.erase(pending_moves_.begin() +
                           static_cast<std::ptrdiff_t>(i));
    }
  }
  for (BlockId b = 0; b < blocks_.size(); ++b) {
    if (blocks_[b].hosted_on(node)) {
      remove_replica(b, node);
      affected.push_back(b);
    }
  }
  // The disk still holds these copies; revive_node restores from this
  // ledger if the death turns out to have been a false declaration.
  written_off_[node] = affected;
  return affected;
}

NameNode::ReviveReport NameNode::revive_node(cluster::NodeIndex node) {
  if (node >= node_count()) {
    throw std::out_of_range("revive_node: bad node");
  }
  ReviveReport report;
  if (!dead_[node]) return report;
  dead_[node] = false;
  sync_placeable(node);

  // Block report: everything written off at death is still on disk.
  const std::vector<BlockId> ledger = std::move(written_off_[node]);
  written_off_[node].clear();
  for (const BlockId b : ledger) {
    BlockInfo& info = blocks_.at(b);
    if (info.hosted_on(node)) {
      // Should be impossible (the node was dead and thus unplaceable),
      // but a double-registered holder must never happen.
      ++stats_.duplicate_replica_inserts;
      continue;
    }
    const auto target =
        static_cast<std::size_t>(files_.at(info.file).replication);
    if (info.replicas.size() < target) {
      if (!nodes_.has_space(node)) {
        // Disk copy exists but the directory has no room to account
        // for it (should not happen: death freed the space). Treat the
        // copy as discarded.
        report.trimmed.push_back({b, node});
        continue;
      }
      info.replicas.push_back(node);
      nodes_.add_replica(node);
      sync_placeable(node);
      ++stats_.replicas_restored;
      report.restored.push_back(b);
      continue;
    }
    // Re-replication already brought the block back to target: the
    // disk copy is excess. Reclaim it — but if some current holder's
    // domain already has two copies while the revived node's domain
    // has none, swap: the restore then *improves* domain spread.
    ++stats_.over_replicated_trimmed;
    const std::optional<cluster::NodeIndex> victim = trim_victim(info, node);
    if (victim && nodes_.has_space(node)) {
      remove_replica(b, *victim);
      info.replicas.push_back(node);
      nodes_.add_replica(node);
      sync_placeable(node);
      ++stats_.replicas_restored;
      report.restored.push_back(b);
      report.trimmed.push_back({b, *victim});
    } else {
      report.trimmed.push_back({b, node});
    }
  }
  return report;
}

std::optional<cluster::NodeIndex> NameNode::trim_victim(
    const BlockInfo& info, cluster::NodeIndex node) const {
  if (!domains_ || domains_->empty()) return std::nullopt;
  const std::uint32_t my_domain = domains_->domain_of(node);
  std::vector<std::uint32_t> held(domains_->domain_count(), 0);
  for (const cluster::NodeIndex holder : info.replicas) {
    const std::uint32_t d = domains_->domain_of(holder);
    if (d == my_domain) return std::nullopt;  // disk copy is the dup
    ++held[d];
  }
  for (const cluster::NodeIndex holder : info.replicas) {
    if (held[domains_->domain_of(holder)] >= 2) return holder;
  }
  return std::nullopt;
}

}  // namespace adapt::hdfs
