// HDFS client operations — the three ADAPT interfaces of Section IV-A.
//
//  * copy_from_local : load a local file into HDFS; with ADAPT enabled
//    the blocks are distributed availability-aware, otherwise randomly
//    (the stock shell behaviour).
//  * cp              : duplicate an HDFS file under a new name, placing
//    the copy's blocks per the flag.
//  * adapt_rebalance : the new `adapt` shell command, redistributing an
//    existing file's blocks to be availability-aware.
//
// The client also charges the data movement each operation implies to
// the network model, so load/rebalance costs are measurable — the
// "ADAPT potentially increases the data transfer cost" trade-off of
// Section IV-C.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "cluster/network.h"
#include "common/rng.h"
#include "hdfs/namenode.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace adapt::hdfs {

struct TransferSummary {
  std::uint64_t blocks_moved = 0;
  std::uint64_t bytes_moved = 0;
  common::Seconds completion_time = 0.0;  // when the last transfer lands
};

class Client {
 public:
  // `adapt_policy` is used when an operation runs with ADAPT enabled;
  // `default_policy` (stock random) otherwise. The network pointer may
  // be null when transfer costs are not of interest.
  Client(NameNode& namenode, placement::PolicyPtr default_policy,
         placement::PolicyPtr adapt_policy, cluster::Network* network,
         std::uint64_t block_size_bytes);

  // -copyFromLocal [-adapt] <local> <hdfs-name>
  // Every block streams from the origin endpoint to its first replica,
  // then replica-to-replica along the pipeline (charged as origin ->
  // node for each copy, the dominant cost on broadband links).
  FileId copy_from_local(const std::string& name, std::uint32_t num_blocks,
                         int replication, bool adapt_enabled,
                         common::Rng& rng, common::Seconds now = 0.0,
                         TransferSummary* summary = nullptr,
                         const NameNode::NodeFilter& filter = nullptr);

  // -cp [-adapt] <src> <dst>
  FileId cp(const std::string& src, const std::string& dst,
            bool adapt_enabled, common::Rng& rng, common::Seconds now = 0.0,
            TransferSummary* summary = nullptr,
            const NameNode::NodeFilter& filter = nullptr);

  // -adapt <name> : rebalance in place, availability-aware.
  TransferSummary adapt_rebalance(const std::string& name, common::Rng& rng,
                                  common::Seconds now = 0.0,
                                  const NameNode::NodeFilter& filter = nullptr);

  // Emit a placement record per (block, replica) created by
  // copy_from_local (null = off).
  void set_tracer(obs::EventTracer* tracer) { tracer_ = tracer; }

  // Per-node placement-time quotes (Eq. 5 expected task times). When
  // set, each placement record carries the quote of the node it picked,
  // so lineage chains start with what the policy paid for. Empty = off.
  void set_quotes(std::vector<double> quotes) {
    quotes_ = std::move(quotes);
  }

  // Environment-supplied liveness (e.g. "node currently up" in the
  // simulator). Composed with the NameNode dead registry: a node is a
  // usable endpoint only if it is not dead AND the liveness callback
  // (when set) approves it. Null = dead registry only.
  using LivenessFn = std::function<bool(cluster::NodeIndex)>;
  void set_liveness(LivenessFn liveness) { liveness_ = std::move(liveness); }

  // Register the hdfs.transfer_skipped_dead counter (null = off).
  void set_metrics(obs::MetricsRegistry* metrics);

 private:
  placement::PolicyPtr policy_for(bool adapt_enabled) const;
  bool node_live(cluster::NodeIndex node) const;

  // Charge one block transfer to the network model. Returns false —
  // charging nothing — when either endpoint is dead or down (the
  // bytes could not actually have flowed); the origin endpoint is
  // always live.
  bool charge_transfer(std::uint32_t src, std::uint32_t dst,
                       common::Seconds now, TransferSummary* summary);

  NameNode& namenode_;
  placement::PolicyPtr default_policy_;
  placement::PolicyPtr adapt_policy_;
  cluster::Network* network_;
  std::uint64_t block_size_;
  obs::EventTracer* tracer_ = nullptr;
  std::vector<double> quotes_;
  LivenessFn liveness_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::MetricsRegistry::Id skipped_dead_ = 0;
};

}  // namespace adapt::hdfs
