#include "hdfs/datanode.h"

#include <algorithm>
#include <stdexcept>

namespace adapt::hdfs {

DataNodeDirectory::DataNodeDirectory(std::vector<std::uint64_t> capacity)
    : stored_(capacity.size(), 0), capacity_(std::move(capacity)) {
  if (stored_.empty()) {
    throw std::invalid_argument("datanodes: need at least one node");
  }
}

DataNodeDirectory::DataNodeDirectory(std::size_t node_count)
    : DataNodeDirectory(std::vector<std::uint64_t>(node_count, 0)) {}

bool DataNodeDirectory::has_space(cluster::NodeIndex node) const {
  const std::uint64_t cap = capacity_.at(node);
  return cap == 0 || stored_.at(node) < cap;
}

void DataNodeDirectory::add_replica(cluster::NodeIndex node) {
  if (!has_space(node)) {
    throw std::logic_error("datanode: capacity exceeded");
  }
  ++stored_.at(node);
  ++total_;
}

void DataNodeDirectory::remove_replica(cluster::NodeIndex node) {
  auto& count = stored_.at(node);
  if (count == 0) throw std::logic_error("datanode: remove from empty");
  --count;
  --total_;
}

std::uint64_t DataNodeDirectory::stored(cluster::NodeIndex node) const {
  return stored_.at(node);
}

std::uint64_t DataNodeDirectory::capacity(cluster::NodeIndex node) const {
  return capacity_.at(node);
}

double DataNodeDirectory::skew() const {
  if (total_ == 0) return 0.0;
  const std::uint64_t max_stored =
      *std::max_element(stored_.begin(), stored_.end());
  const double mean =
      static_cast<double>(total_) / static_cast<double>(stored_.size());
  return static_cast<double>(max_stored) / mean;
}

}  // namespace adapt::hdfs
