// DataNode storage accounting: how many block replicas each node holds,
// against an optional capacity. The NameNode consults this for placement
// eligibility; experiments read it for the storage-skew metrics of the
// paper's Section IV-C discussion.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/node.h"

namespace adapt::hdfs {

class DataNodeDirectory {
 public:
  // capacities in blocks; 0 = unbounded.
  explicit DataNodeDirectory(std::vector<std::uint64_t> capacity_blocks);
  explicit DataNodeDirectory(std::size_t node_count);

  std::size_t node_count() const { return stored_.size(); }

  bool has_space(cluster::NodeIndex node) const;
  void add_replica(cluster::NodeIndex node);
  void remove_replica(cluster::NodeIndex node);

  std::uint64_t stored(cluster::NodeIndex node) const;
  std::uint64_t capacity(cluster::NodeIndex node) const;
  std::uint64_t total_stored() const { return total_; }

  // max stored / mean stored — the disk-skew statistic the fidelity
  // threshold is designed to bound.
  double skew() const;

 private:
  std::vector<std::uint64_t> stored_;
  std::vector<std::uint64_t> capacity_;
  std::uint64_t total_ = 0;
};

}  // namespace adapt::hdfs
