#include "core/job_stream.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "availability/predictor.h"
#include "placement/random_policy.h"

namespace adapt::core {

JobStreamResult run_job_stream(const cluster::Cluster& initial,
                               const cluster::Cluster& shifted,
                               const JobStreamConfig& config) {
  if (config.blocks == 0) {
    throw std::invalid_argument("job_stream: blocks must be set");
  }
  if (config.jobs < 1) {
    throw std::invalid_argument("job_stream: jobs must be >= 1");
  }
  if (config.arrival_gap < 0) {
    throw std::invalid_argument("job_stream: arrival_gap must be >= 0");
  }
  const bool shifts =
      config.shift_at_job >= 0 && config.shift_at_job < config.jobs;
  if (shifts && shifted.size() != initial.size()) {
    throw std::invalid_argument(
        "job_stream: shifted regime must keep the node count");
  }
  if (config.job.rebalance.enabled && config.obs.sample_dt <= 0.0) {
    throw std::invalid_argument(
        "job_stream: the rebalance loop needs obs.sample_dt > 0 (drift "
        "alarms fire from the sampling tick)");
  }

  // Sinks are owned here and shared by every job on the stream, so
  // traces / metrics / CUSUM state accumulate across jobs. Each job's
  // event clock restarts at zero; trace timestamps are per-job.
  std::unique_ptr<obs::EventTracer> tracer;
  if (config.obs.trace) {
    tracer = std::make_unique<obs::EventTracer>(config.obs.ring_capacity);
  }
  std::unique_ptr<obs::MetricsRegistry> metrics;
  if (config.obs.metrics || config.obs.sample_dt > 0.0) {
    metrics = std::make_unique<obs::MetricsRegistry>();
  }
  std::unique_ptr<obs::SpanProfiler> spans;
  if (config.obs.spans) spans = std::make_unique<obs::SpanProfiler>();
  std::unique_ptr<obs::CalibrationTracker> calibration;
  if (config.obs.calibration.enabled || config.job.rebalance.enabled) {
    obs::CalibrationOptions cal = config.obs.calibration;
    cal.enabled = true;  // the drift loop needs the tracker regardless
    calibration = std::make_unique<obs::CalibrationTracker>(cal);
  }

  // Load once, at t = 0, under the initial regime's beliefs.
  const std::vector<avail::InterruptionParams> params = initial.params();
  const auto domains = std::make_shared<const cluster::FaultDomains>(
      cluster::FaultDomains::from_cluster(initial));
  if (spans) spans->begin("policy_build", 0.0);
  const placement::PolicyPtr policy =
      make_policy(config.policy, params, config.job.gamma, config.blocks,
                  config.weighting, /*task_times=*/nullptr, spans.get(), 0.0,
                  domains.get());
  const placement::PolicyPtr random =
      placement::make_random_policy(initial.size());
  if (spans) spans->end(0.0);

  if (calibration) {
    avail::PerformancePredictor predictor(params.size(), config.job.gamma);
    for (std::size_t i = 0; i < params.size(); ++i) {
      predictor.set_params(i, params[i]);
    }
    calibration->set_predictions(predictor.expected_task_times());
  }

  hdfs::NameNode::Options options;
  options.fidelity_cap = config.fidelity_cap;
  hdfs::NameNode namenode(initial.size(), options);
  if (!domains->empty()) {
    namenode.set_fault_domains(domains, config.domain_anti_affinity);
  }

  cluster::Network::Config net_config;
  for (const cluster::NodeSpec& node : initial.nodes) {
    net_config.uplink_bps.push_back(node.uplink_bps);
    net_config.downlink_bps.push_back(node.downlink_bps);
  }
  net_config.origin_uplink_bps = initial.origin_uplink_bps;
  net_config.fifo_admission = initial.fifo_uplinks;
  cluster::Network load_network(net_config);

  hdfs::Client client(namenode, random, policy, &load_network,
                      initial.block_size_bytes);
  client.set_tracer(tracer.get());

  JobStreamResult result;
  result.policy_name = policy->name();

  common::Rng placement_rng = common::Rng(config.seed).fork(0x91ac);
  if (spans) spans->begin("load", 0.0);
  const hdfs::FileId file = client.copy_from_local(
      "stream-input", config.blocks, config.replication,
      /*adapt_enabled=*/true, placement_rng, /*now=*/0.0, &result.load,
      /*filter=*/nullptr);
  if (spans) spans->end(0.0);

  // Template the per-job config once. Recovery / rebalance placement is
  // rebuilt from live heartbeat estimates through one shared Eq. 5 memo
  // table for the whole stream.
  sim::SimJobConfig job_template = config.job;
  if (job_template.scheduler.kind == sim::SchedulerKind::kCalibrated &&
      job_template.scheduler.node_quotes.empty()) {
    // Placement-time quotes for the calibrated scheduler: pinned to the
    // initial regime's Eq. 5 view, like the drift baseline above.
    avail::PerformancePredictor predictor(params.size(), config.job.gamma);
    for (std::size_t i = 0; i < params.size(); ++i) {
      predictor.set_params(i, params[i]);
    }
    job_template.scheduler.node_quotes = predictor.expected_task_times();
  }
  job_template.tracer = tracer.get();
  job_template.metrics = metrics.get();
  job_template.spans = spans.get();
  job_template.calibration = calibration.get();
  job_template.sample_dt = config.obs.sample_dt;
  // Drift is measured against the *placement-time* beliefs: after the
  // regime shifts these stay pinned to the initial truth, the heartbeat
  // estimates walk away from them, and the CUSUM trips.
  if (calibration) job_template.truth_params = params;
  if (job_template.churn.enabled &&
      job_template.churn.domain_of.empty() && !domains->empty()) {
    job_template.churn.domain_of = domains->domains_of_nodes();
  }
  if (job_template.churn.enabled && !job_template.churn.policy_factory) {
    const PolicyKind kind = config.policy;
    const double gamma = config.job.gamma;
    const std::uint64_t blocks = config.blocks;
    const placement::ChainWeighting weighting = config.weighting;
    const auto task_times = std::make_shared<avail::TaskTimeCache>();
    job_template.churn.policy_factory =
        [kind, gamma, blocks, weighting, task_times, domains](
            const std::vector<avail::InterruptionParams>& estimates) {
          return make_policy(kind, estimates, gamma, blocks, weighting,
                             task_times.get(), /*spans=*/nullptr,
                             /*now=*/0.0, domains.get());
        };
  }

  common::Seconds clock = 0.0;
  std::uint64_t job_seed = config.seed;
  result.jobs.reserve(static_cast<std::size_t>(config.jobs));
  for (int j = 0; j < config.jobs; ++j) {
    const cluster::Cluster& regime =
        (shifts && j >= config.shift_at_job) ? shifted : initial;
    // Membership refresh between jobs: a volunteer machine declared dead
    // during the previous job rejoins the pool. Its disk survived the
    // (false) declaration, so the revive acts as a block report — copies
    // still under target are re-registered, refilled blocks shed the
    // excess replica (NameNode::revive_node).
    for (std::size_t n = 0; n < namenode.node_count(); ++n) {
      const auto node = static_cast<cluster::NodeIndex>(n);
      if (namenode.is_dead(node)) namenode.revive_node(node);
    }
    job_seed = job_seed * 6364136223846793005ull + 1442695040888963407ull;
    sim::SimJobConfig job_config = job_template;
    job_config.seed = job_seed;
    sim::MapReduceSimulation simulation(regime, namenode, file, job_config);
    if (spans) spans->begin("stream_job", clock);
    sim::JobResult r = simulation.run();
    if (spans) spans->end(clock + r.elapsed);

    const common::Seconds start = std::max(
        static_cast<common::Seconds>(j) * config.arrival_gap, clock);
    clock = start + r.elapsed;

    result.failed_jobs += r.failed ? 1 : 0;
    result.blocks_lost += r.blocks_lost;
    result.tasks_lost += r.tasks_lost;
    result.rereplications += r.rereplications;
    result.rebalance_triggers += r.rebalance_triggers;
    result.migrations_submitted += r.migrations_submitted;
    result.migrations_committed += r.migrations_committed;
    result.migration_retries += r.migration_retries;
    result.migration_giveups += r.migration_giveups;
    result.migration_bytes += r.migration_bytes;
    result.jobs.push_back(std::move(r));
  }
  result.makespan = clock;

  if (calibration) result.calibration_ratio = calibration->cluster_ratio();
  if (tracer) {
    result.obs.dropped = tracer->dropped();
    result.obs.records = tracer->take_records();
  }
  if (metrics) {
    result.obs.metrics = metrics->snapshot();
    result.obs.timeseries = metrics->take_timeseries();
  }
  if (spans) result.obs.spans = spans->take_records();
  if (calibration) result.obs.calibration = calibration->take_snapshot();
  return result;
}

}  // namespace adapt::core
