#include "core/adapt.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "obs/lineage.h"
#include "placement/adapt_policy.h"
#include "placement/jump_hash_policy.h"
#include "placement/naive_policy.h"
#include "placement/random_policy.h"
#include "sim/injector.h"

namespace adapt::core {

std::string to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kRandom:
      return "random";
    case PolicyKind::kAdapt:
      return "adapt";
    case PolicyKind::kNaive:
      return "naive";
    case PolicyKind::kJump:
      return "jump";
  }
  return "?";
}

placement::PolicyPtr make_policy(
    PolicyKind kind, const std::vector<avail::InterruptionParams>& params,
    double gamma, std::uint64_t blocks, placement::ChainWeighting weighting,
    avail::TaskTimeCache* task_times, obs::SpanProfiler* spans,
    common::Seconds now, const cluster::FaultDomains* domains) {
  switch (kind) {
    case PolicyKind::kRandom:
      return placement::make_random_policy(params.size());
    case PolicyKind::kAdapt: {
      if (spans != nullptr) spans->begin("predict", now);
      avail::PerformancePredictor predictor(params.size(), gamma);
      predictor.set_shared_cache(task_times);
      for (std::size_t i = 0; i < params.size(); ++i) {
        predictor.set_params(i, params[i]);
      }
      std::vector<double> expected = predictor.expected_task_times();
      if (spans != nullptr) {
        spans->end(now);
        spans->begin("hash_table_build", now);
      }
      placement::PolicyPtr policy =
          placement::make_adapt_policy(std::move(expected), blocks, weighting);
      if (spans != nullptr) spans->end(now);
      return policy;
    }
    case PolicyKind::kNaive:
      return placement::make_naive_policy(params, blocks, weighting);
    case PolicyKind::kJump: {
      std::vector<cluster::NodeIndex> order;
      if (domains != nullptr && !domains->empty()) {
        order = domains->domain_major_order();
      } else {
        order.resize(params.size());
        for (std::size_t i = 0; i < params.size(); ++i) {
          order[i] = static_cast<cluster::NodeIndex>(i);
        }
      }
      return placement::make_jump_hash_policy(std::move(order));
    }
  }
  throw std::invalid_argument("make_policy: unknown kind");
}

std::vector<avail::InterruptionParams> observe_cluster(
    const cluster::Cluster& cluster, common::Seconds window,
    std::uint64_t seed, cluster::HeartbeatCollector::Config heartbeat) {
  cluster::HeartbeatCollector collector(cluster.size(), heartbeat);

  // A minimal listener forwarding injector transitions to the collector.
  class Forwarder : public sim::InterruptionInjector::Listener {
   public:
    Forwarder(cluster::HeartbeatCollector& collector, sim::EventQueue& queue)
        : collector_(collector), queue_(queue) {}
    void on_node_down(cluster::NodeIndex node) override {
      collector_.notify_down(node, queue_.now());
    }
    void on_node_up(cluster::NodeIndex node) override {
      collector_.notify_up(node, queue_.now());
    }

   private:
    cluster::HeartbeatCollector& collector_;
    sim::EventQueue& queue_;
  };

  sim::EventQueue queue;
  Forwarder forwarder(collector, queue);
  sim::InterruptionInjector injector(queue, cluster.nodes, forwarder,
                                     common::Rng(seed).fork(0x0b5e));
  injector.start();
  queue.run_until([&] { return queue.now() >= window; });
  return collector.estimates(window);
}

ExperimentResult run_experiment(const cluster::Cluster& cluster,
                                const ExperimentConfig& config) {
  if (config.blocks == 0) {
    throw std::invalid_argument("experiment: blocks must be set");
  }

  const std::vector<avail::InterruptionParams> params =
      config.use_estimated_params
          ? observe_cluster(cluster, config.observation_window, config.seed)
          : cluster.params();

  // Fault-domain hierarchy shared by the policy builder (jump ring
  // order), the NameNode (anti-affinity, revive trim) and the injector
  // (domain bursts). Empty on flat clusters — everything stays inert.
  const auto domains = std::make_shared<const cluster::FaultDomains>(
      cluster::FaultDomains::from_cluster(cluster));

  // One observability sink of each kind per run, owned here;
  // single-threaded by design, so runs parallelized by the
  // ExperimentRunner never share state.
  std::unique_ptr<obs::SpanProfiler> spans;
  if (config.obs.spans) spans = std::make_unique<obs::SpanProfiler>();
  std::unique_ptr<obs::CalibrationTracker> calibration;
  if (config.obs.calibration.enabled) {
    calibration =
        std::make_unique<obs::CalibrationTracker>(config.obs.calibration);
  }

  if (spans) spans->begin("policy_build", 0.0);
  const placement::PolicyPtr policy = make_policy(
      config.policy, params, config.job.gamma, config.blocks,
      config.weighting, /*task_times=*/nullptr, spans.get(), 0.0,
      domains.get());
  const placement::PolicyPtr random =
      placement::make_random_policy(cluster.size());
  if (spans) spans->end(0.0);

  if (calibration) {
    // Pin the E[T_i] quotes the placement policy saw — the predictor's
    // view over the same `params` (ground truth or heartbeat estimates)
    // at placement time.
    avail::PerformancePredictor predictor(params.size(), config.job.gamma);
    for (std::size_t i = 0; i < params.size(); ++i) {
      predictor.set_params(i, params[i]);
    }
    calibration->set_predictions(predictor.expected_task_times());
  }

  hdfs::NameNode::Options options;
  options.fidelity_cap = config.fidelity_cap;
  hdfs::NameNode namenode(cluster.size(), options);
  if (!domains->empty()) {
    namenode.set_fault_domains(domains, config.domain_anti_affinity);
  }

  cluster::Network::Config net_config;
  for (const cluster::NodeSpec& node : cluster.nodes) {
    net_config.uplink_bps.push_back(node.uplink_bps);
    net_config.downlink_bps.push_back(node.downlink_bps);
  }
  net_config.origin_uplink_bps = cluster.origin_uplink_bps;
  net_config.fifo_admission = cluster.fifo_uplinks;
  cluster::Network load_network(net_config);

  hdfs::Client client(namenode, random, policy, &load_network,
                      cluster.block_size_bytes);

  ExperimentResult result;
  result.policy_name = policy->name();

  // One tracer/registry per run, owned here; single-threaded by design,
  // so runs parallelized by the ExperimentRunner never share state.
  // The lineage index rides the tracer as a streaming sink, so it sees
  // every record even when the ring overwrites.
  std::unique_ptr<obs::EventTracer> tracer;
  std::unique_ptr<obs::LineageIndex> lineage;
  std::unique_ptr<obs::MetricsRegistry> metrics;
  if (config.obs.trace || config.obs.lineage) {
    tracer = std::make_unique<obs::EventTracer>(config.obs.ring_capacity);
    client.set_tracer(tracer.get());
    if (config.obs.lineage) {
      lineage = std::make_unique<obs::LineageIndex>();
      tracer->set_sink(lineage.get());
    }
    // Pin the Eq. 5 quote each placement decision was priced with onto
    // its placement record, so a replica's chain starts with the
    // policy's own expectation.
    avail::PerformancePredictor predictor(params.size(), config.job.gamma);
    for (std::size_t i = 0; i < params.size(); ++i) {
      predictor.set_params(i, params[i]);
    }
    client.set_quotes(predictor.expected_task_times());
  }
  if (config.obs.metrics || config.obs.sample_dt > 0.0) {
    metrics = std::make_unique<obs::MetricsRegistry>();
  }

  // For trace-replay clusters, fix the per-node replay offsets up front
  // so the load can be placed on the nodes actually up at job start
  // (copyFromLocal only writes to live DataNodes).
  sim::SimJobConfig job_config = config.job;
  hdfs::NameNode::NodeFilter filter;
  bool has_replay = false;
  for (const cluster::NodeSpec& node : cluster.nodes) {
    has_replay = has_replay ||
                 node.mode == cluster::AvailabilityMode::kReplay;
  }
  if (has_replay) {
    common::Rng offset_rng = common::Rng(config.seed).fork(0x0ff5);
    common::Seconds horizon = cluster.replay_horizon;
    if (horizon <= 0) {
      for (const cluster::NodeSpec& node : cluster.nodes) {
        for (const trace::DownInterval& iv : node.down_intervals) {
          horizon = std::max(horizon, iv.up);
        }
      }
    }
    job_config.replay_horizon = horizon;
    job_config.replay_offsets =
        sim::draw_replay_offsets(cluster.nodes, horizon, offset_rng);
    auto initially_up = std::make_shared<std::vector<bool>>();
    initially_up->reserve(cluster.size());
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      initially_up->push_back(
          sim::replay_up_at(cluster.nodes[i], job_config.replay_offsets[i]));
    }
    filter = [initially_up](cluster::NodeIndex node) {
      return (*initially_up)[node];
    };
  }
  if (config.steady_state_start) {
    common::Rng init_rng = common::Rng(config.seed).fork(0x57a7);
    job_config.initial_down_until =
        sim::draw_initial_down(cluster.nodes, init_rng);
    auto down = std::make_shared<std::vector<common::Seconds>>(
        job_config.initial_down_until);
    auto prev = filter;
    filter = [down, prev](cluster::NodeIndex node) {
      if ((*down)[node] > 0.0) return false;
      return !prev || prev(node);
    };
  }
  if (job_config.churn.enabled) {
    // The injector's per-domain burst needs the node -> domain map; fill
    // it from the cluster layout unless the caller supplied one.
    if (job_config.churn.domain_of.empty() && !domains->empty()) {
      job_config.churn.domain_of = domains->domains_of_nodes();
    }
    // A late joiner is absent at load time: copyFromLocal cannot write
    // to it.
    if (!job_config.churn.join_at.empty()) {
      auto joins = std::make_shared<std::vector<common::Seconds>>(
          job_config.churn.join_at);
      auto prev = filter;
      filter = [joins, prev](cluster::NodeIndex node) {
        if (node < joins->size() && (*joins)[node] > 0.0) return false;
        return !prev || prev(node);
      };
    }
    // Default re-replication destination policy: rebuild the configured
    // placement kind from the heartbeat collector's live estimates, so
    // recovery placement stays availability-aware as beliefs evolve.
    if (!job_config.churn.policy_factory) {
      const PolicyKind kind = config.policy;
      const double gamma = config.job.gamma;
      const std::uint64_t blocks = config.blocks;
      const placement::ChainWeighting weighting = config.weighting;
      // One memo table across every refresh this run: estimates for
      // nodes whose beliefs did not move between dead-node events hit
      // the cache instead of re-running Eq. 5.
      const auto task_times = std::make_shared<avail::TaskTimeCache>();
      job_config.churn.policy_factory =
          [kind, gamma, blocks, weighting, task_times, domains](
              const std::vector<avail::InterruptionParams>& estimates) {
            return make_policy(kind, estimates, gamma, blocks, weighting,
                               task_times.get(), /*spans=*/nullptr,
                               /*now=*/0.0, domains.get());
          };
    }
  }

  common::Rng placement_rng = common::Rng(config.seed).fork(0x91ac);
  if (spans) spans->begin("load", 0.0);
  const hdfs::FileId file = client.copy_from_local(
      "input", config.blocks, config.replication,
      /*adapt_enabled=*/true, placement_rng, /*now=*/0.0, &result.load,
      filter);
  if (spans) spans->end(0.0);

  result.distribution = namenode.file_distribution(file);
  const std::uint64_t max_blocks =
      *std::max_element(result.distribution.begin(),
                        result.distribution.end());
  const double mean_blocks =
      static_cast<double>(config.blocks) *
      static_cast<double>(config.replication) /
      static_cast<double>(cluster.size());
  result.placement_skew =
      mean_blocks > 0 ? static_cast<double>(max_blocks) / mean_blocks : 0.0;

  if (job_config.scheduler.kind == sim::SchedulerKind::kCalibrated &&
      job_config.scheduler.node_quotes.empty()) {
    // Placement-time quotes for the calibrated scheduler: the same
    // Eq. 5 E[T_i] view of `params` the placement policy priced nodes
    // with, so "overdue" means "slower than what placement paid for".
    avail::PerformancePredictor predictor(params.size(), config.job.gamma);
    for (std::size_t i = 0; i < params.size(); ++i) {
      predictor.set_params(i, params[i]);
    }
    job_config.scheduler.node_quotes = predictor.expected_task_times();
  }

  if (config.run_reduce) job_config.record_completion_times = true;
  job_config.tracer = tracer.get();
  job_config.metrics = metrics.get();
  job_config.spans = spans.get();
  job_config.calibration = calibration.get();
  job_config.sample_dt = config.obs.sample_dt;
  if (calibration) job_config.truth_params = cluster.params();
  sim::MapReduceSimulation simulation(cluster, namenode, file, job_config);
  if (spans) spans->begin("map_phase", 0.0);
  result.job = simulation.run();
  if (spans) spans->end(result.job.elapsed);

  if (config.run_reduce) {
    sim::ReduceConfig reduce = config.reduce;
    reduce.gamma_map = config.job.gamma;
    reduce.availability_aware = config.reduce_availability_aware;
    if (reduce.availability_aware) reduce.params = params;
    reduce.seed = config.seed ^ 0xf00d;
    reduce.replay_horizon = job_config.replay_horizon;
    reduce.replay_offsets = job_config.replay_offsets;
    reduce.initial_down_until = job_config.initial_down_until;
    sim::ReducePhaseSimulation reducer(cluster, result.job.winner_nodes,
                                       reduce);
    if (spans) spans->begin("reduce_phase", result.job.elapsed);
    result.reduce = reducer.run();
    if (spans) {
      spans->end(result.job.elapsed + result.reduce.elapsed);
    }
  }

  if (tracer && config.obs.trace) {
    result.obs.dropped = tracer->dropped();
    result.obs.records = tracer->take_records();
  }
  if (lineage) {
    result.obs.lineage = std::make_shared<const obs::LineageSnapshot>(
        lineage->take_snapshot());
  }
  if (metrics) {
    result.obs.metrics = metrics->snapshot();
    result.obs.timeseries = metrics->take_timeseries();
  }
  if (spans) result.obs.spans = spans->take_records();
  if (calibration) result.obs.calibration = calibration->take_snapshot();
  return result;
}

RepeatedResult run_repeated(const cluster::Cluster& cluster,
                            ExperimentConfig config, int runs) {
  if (runs < 1) throw std::invalid_argument("run_repeated: runs must be >= 1");
  std::vector<double> elapsed;
  std::vector<double> locality;
  RepeatedResult out;
  for (int r = 0; r < runs; ++r) {
    config.seed = config.seed * 6364136223846793005ull + 1442695040888963407ull;
    config.job.seed = config.seed;
    const ExperimentResult result = run_experiment(cluster, config);
    elapsed.push_back(result.job.elapsed);
    locality.push_back(result.job.locality);
    out.rework_ratio += result.job.overhead.rework_ratio();
    out.recovery_ratio += result.job.overhead.recovery_ratio();
    out.migration_ratio += result.job.overhead.migration_ratio();
    out.misc_ratio += result.job.overhead.misc_ratio();
    out.total_ratio += result.job.overhead.total_ratio();
    out.policy_name = result.policy_name;
    out.failed_runs += result.job.failed ? 1 : 0;
    out.nodes_departed += result.job.nodes_departed;
    out.nodes_dead += result.job.nodes_dead;
    out.blocks_lost += result.job.blocks_lost;
    out.tasks_lost += result.job.tasks_lost;
    out.rereplications += result.job.rereplications;
    out.rereplication_giveups += result.job.rereplication_giveups;
    out.rereplication_bytes += result.job.rereplication_bytes;
    out.heartbeats_lost += result.job.heartbeats_lost;
    out.false_dead_declarations += result.job.false_dead_declarations;
    out.replicas_corrupted += result.job.replicas_corrupted;
    out.corrupt_reads += result.job.corrupt_reads;
    out.safe_mode_entries += result.job.safe_mode_entries;
    out.speculative_launches += result.job.speculative_launches;
    out.speculative_wins += result.job.speculative_wins;
    out.redundant_launches += result.job.redundant_launches;
    out.redundant_waste_bytes += result.job.redundant_waste_bytes;
  }
  const double n = runs;
  out.rework_ratio /= n;
  out.recovery_ratio /= n;
  out.migration_ratio /= n;
  out.misc_ratio /= n;
  out.total_ratio /= n;
  out.elapsed = common::summarize(std::move(elapsed));
  out.locality = common::summarize(std::move(locality));
  return out;
}

}  // namespace adapt::core
