// Continuous open-loop workload: a stream of map jobs arriving against
// ONE persistent mini-HDFS. The dataset is placed once, at t = 0, under
// the initial availability regime; every job then reads the same file,
// and whatever churn, data loss, re-replication and rebalancing happened
// during job j is the starting state of job j+1.
//
// The availability regime can shift mid-stream (`shift_at_job`): jobs
// from that index on run against a *different* cluster truth while the
// placement still reflects the original beliefs. With the drift loop on
// (SimJobConfig::rebalance) the CUSUM alarms re-estimate (lambda, mu),
// rebuild the Algorithm-1 weights and migrate the badly-placed replicas;
// with it off the stale placement just keeps paying for the shift. The
// bench_rebalance sweep measures that difference.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/topology.h"
#include "common/units.h"
#include "core/adapt.h"
#include "hdfs/client.h"
#include "obs/trace.h"
#include "sim/mapreduce_sim.h"
#include "sim/sim_config.h"

namespace adapt::core {

struct JobStreamConfig {
  PolicyKind policy = PolicyKind::kAdapt;
  int replication = 2;
  std::uint32_t blocks = 0;  // m; must be set
  bool fidelity_cap = true;
  // Cross-domain anti-affinity (see ExperimentConfig); inert on flat
  // clusters.
  bool domain_anti_affinity = false;
  placement::ChainWeighting weighting = placement::ChainWeighting::kPaper;

  // Template for every job in the stream (gamma, churn, rebalance, ...).
  // Per-job seed / observability pointers are filled in by the runner.
  sim::SimJobConfig job;

  // Open-loop arrival process: job j is submitted at j * arrival_gap and
  // starts as soon as its predecessor finished (FIFO, one job at a
  // time — map-slot contention across jobs is out of scope).
  int jobs = 4;
  common::Seconds arrival_gap = 0.0;

  // Index of the first job that runs under the shifted regime; < 0
  // disables the shift (the `shifted` cluster argument is ignored).
  int shift_at_job = -1;

  std::uint64_t seed = 1;
  obs::Options obs;
};

struct JobStreamResult {
  // End of the last job on the stream timeline (arrival gaps included).
  common::Seconds makespan = 0.0;
  std::vector<sim::JobResult> jobs;
  hdfs::TransferSummary load;  // one-time copyFromLocal cost
  std::string policy_name;

  // Realized / predicted across the whole stream (0 without calibration).
  double calibration_ratio = 0.0;

  // Stream-wide totals.
  std::uint64_t failed_jobs = 0;
  std::uint64_t blocks_lost = 0;
  std::uint64_t tasks_lost = 0;
  std::uint64_t rereplications = 0;
  std::uint64_t rebalance_triggers = 0;
  std::uint64_t migrations_submitted = 0;
  std::uint64_t migrations_committed = 0;
  std::uint64_t migration_retries = 0;
  std::uint64_t migration_giveups = 0;
  std::uint64_t migration_bytes = 0;

  obs::RunObservations obs;
};

// Run `config.jobs` jobs back to back. `initial` is the regime the data
// was placed under; `shifted` (same node count) takes over at
// `config.shift_at_job`. Throws ConfigError / invalid_argument on
// inconsistent configuration.
JobStreamResult run_job_stream(const cluster::Cluster& initial,
                               const cluster::Cluster& shifted,
                               const JobStreamConfig& config);

}  // namespace adapt::core
