// Public facade: run a complete ADAPT experiment — build a policy from
// availability knowledge, load a dataset into the mini-HDFS, simulate
// the map phase on the volatile cluster, report the paper's metrics.
//
// Typical use (see examples/quickstart.cpp):
//
//   auto cluster = adapt::cluster::emulated_cluster({.node_count = 128});
//   adapt::core::ExperimentConfig config;
//   config.policy = adapt::core::PolicyKind::kAdapt;
//   config.replication = 1;
//   config.blocks = 2560;
//   config.job.gamma = 8.0;
//   auto result = adapt::core::run_experiment(cluster, config);
//   std::cout << result.job.elapsed << "\n";
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "availability/predictor.h"
#include "cluster/fault_domains.h"
#include "cluster/heartbeat.h"
#include "cluster/topology.h"
#include "common/stats.h"
#include "hdfs/client.h"
#include "obs/trace.h"
#include "placement/hash_table.h"
#include "placement/policy.h"
#include "sim/mapreduce_sim.h"
#include "sim/reduce_phase.h"

namespace adapt::core {

enum class PolicyKind { kRandom, kAdapt, kNaive, kJump };

std::string to_string(PolicyKind kind);

// Build the placement policy a PolicyKind denotes.
// `params` are per-node interruption parameters (ground truth or
// heartbeat estimates), `gamma` the predicted failure-free task length,
// `blocks` the table size m. `task_times` optionally memoizes Eq. 5
// evaluations across calls — repeated policy rebuilds (churn recovery)
// pass one cache so unchanged (lambda, mu) profiles skip the expm1.
// With a SpanProfiler the Eq. 5 evaluation ("predict") and the weighted
// hash-table construction ("hash_table_build") are profiled as nested
// spans stamped with `now` (setup runs between sim events, so its
// simulated duration is zero; host time carries the real cost).
// `domains` (optional) supplies the fault-domain hierarchy: kJump
// orders its consistent-hash ring domain-major with it so consecutive
// ring positions straddle racks; the availability-driven kinds ignore it
// (anti-affinity is applied by the NameNode's eligibility mask, not the
// policy).
placement::PolicyPtr make_policy(
    PolicyKind kind, const std::vector<avail::InterruptionParams>& params,
    double gamma, std::uint64_t blocks,
    placement::ChainWeighting weighting = placement::ChainWeighting::kPaper,
    avail::TaskTimeCache* task_times = nullptr,
    obs::SpanProfiler* spans = nullptr, common::Seconds now = 0.0,
    const cluster::FaultDomains* domains = nullptr);

struct ExperimentConfig {
  PolicyKind policy = PolicyKind::kAdapt;
  int replication = 1;
  std::uint32_t blocks = 0;  // m; must be set
  bool fidelity_cap = true;  // Section IV-C threshold m(k+1)/n
  // Cross-domain anti-affinity: when the cluster has a DomainLayout,
  // every replica draw (load, re-replication, migration, rebalance)
  // excludes domains already holding a copy of the block. Inert on flat
  // clusters (sites == 0), keeping their runs byte-identical.
  bool domain_anti_affinity = false;
  placement::ChainWeighting weighting = placement::ChainWeighting::kPaper;
  sim::SimJobConfig job;

  // When true, the Performance Predictor learns (lambda, mu) from a
  // heartbeat-observation window instead of receiving ground truth —
  // the full NameNode pipeline of paper Fig. 2.
  bool use_estimated_params = false;
  common::Seconds observation_window = 600.0;

  // Model-driven clusters: start each node in its steady state (down
  // with probability rho, mid-residual-outage) and place data only on
  // the nodes up at load time, the way a real copyFromLocal would. Off
  // reproduces the emulation setting (data loaded on a healthy cluster,
  // interruptions injected afterwards).
  bool steady_state_start = false;

  // Extension (paper future work): also simulate the shuffle + reduce
  // phase after the map phase. reduce.params / replay plumbing are
  // filled in by run_experiment; set the rest as desired.
  bool run_reduce = false;
  sim::ReduceConfig reduce;
  // Availability-aware reducer placement uses the same (lambda, mu)
  // knowledge as the map-side policy when enabled.
  bool reduce_availability_aware = false;

  std::uint64_t seed = 1;

  // Observability: when obs.enabled(), run_experiment owns a tracer and
  // metrics registry for the run and returns what they collected in
  // ExperimentResult::obs.
  obs::Options obs;
};

struct ExperimentResult {
  sim::JobResult job;
  hdfs::TransferSummary load;              // copyFromLocal cost
  std::vector<std::uint64_t> distribution; // replicas per node
  double placement_skew = 0.0;             // max/mean replicas per node
  std::string policy_name;
  // Filled when ExperimentConfig::run_reduce is set.
  sim::ReduceResult reduce;
  // Filled when ExperimentConfig::obs is enabled.
  obs::RunObservations obs;
};

ExperimentResult run_experiment(const cluster::Cluster& cluster,
                                const ExperimentConfig& config);

// Observe the cluster's availability through a heartbeat collector for
// `window` simulated seconds and return the per-node estimates — what
// the NameNode would know instead of ground truth.
std::vector<avail::InterruptionParams> observe_cluster(
    const cluster::Cluster& cluster, common::Seconds window,
    std::uint64_t seed,
    cluster::HeartbeatCollector::Config heartbeat = {});

// The paper averages ten runs per point; this mirrors that.
struct RepeatedResult {
  common::Summary elapsed;
  common::Summary locality;
  // Mean overhead ratios across runs.
  double rework_ratio = 0.0;
  double recovery_ratio = 0.0;
  double migration_ratio = 0.0;
  double misc_ratio = 0.0;
  double total_ratio = 0.0;
  std::string policy_name;
  // Churn & recovery totals across runs (all zero on churn-free sweeps).
  std::uint64_t failed_runs = 0;
  std::uint64_t nodes_departed = 0;
  std::uint64_t nodes_dead = 0;
  std::uint64_t blocks_lost = 0;
  std::uint64_t tasks_lost = 0;
  std::uint64_t rereplications = 0;
  std::uint64_t rereplication_giveups = 0;
  std::uint64_t rereplication_bytes = 0;
  // Gray-failure totals across runs (all zero with the gray knobs off).
  std::uint64_t heartbeats_lost = 0;
  std::uint64_t false_dead_declarations = 0;
  std::uint64_t replicas_corrupted = 0;
  std::uint64_t corrupt_reads = 0;
  std::uint64_t safe_mode_entries = 0;
  // Scheduler totals across runs (all zero when no duplicate attempts
  // were launched).
  std::uint64_t speculative_launches = 0;
  std::uint64_t speculative_wins = 0;
  std::uint64_t redundant_launches = 0;
  std::uint64_t redundant_waste_bytes = 0;
};

RepeatedResult run_repeated(const cluster::Cluster& cluster,
                            ExperimentConfig config, int runs);

}  // namespace adapt::core
