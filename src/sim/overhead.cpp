#include "sim/overhead.h"

#include <cstdio>
#include <stdexcept>

namespace adapt::sim {

void OverheadBreakdown::finalize() {
  const double wall = static_cast<double>(node_count) * elapsed;
  const double accounted = base + rework + recovery + migration;
  misc = wall - accounted;
  // Tolerate float accumulation noise; anything larger is an accounting
  // bug upstream and must not be silently clamped.
  if (misc < 0) {
    if (misc < -1e-6 * std::max(wall, 1.0)) {
      throw std::logic_error(
          "overhead: accounted cost exceeds wall-clock node-seconds");
    }
    misc = 0;
  }
}

std::string OverheadBreakdown::describe() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "elapsed=%.1fs overhead=%.1f%% (rework=%.1f%% recovery=%.1f%% "
                "migration=%.1f%% misc=%.1f%%)",
                elapsed, total_ratio() * 100.0, rework_ratio() * 100.0,
                recovery_ratio() * 100.0, migration_ratio() * 100.0,
                misc_ratio() * 100.0);
  return buf;
}

}  // namespace adapt::sim
