// Interruption injector: drives each node's up/down transitions on the
// event queue, from either the stochastic model (Poisson arrivals +
// sampled service times, queued FCFS as in Section III-A) or a replayed
// failure trace (Section V-C).
//
// Replay starts each node at a random cyclic offset into its recorded
// intervals, so repeated runs sample different alignments of the same
// trace; a node mid-outage at the offset starts the run down.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/node.h"
#include "common/rng.h"
#include "sim/event_queue.h"

namespace adapt::sim {

class InterruptionInjector {
 public:
  class Listener {
   public:
    virtual ~Listener() = default;
    virtual void on_node_down(cluster::NodeIndex node) = 0;
    virtual void on_node_up(cluster::NodeIndex node) = 0;
  };

  struct Config {
    // Horizon for replay wrap-around; 0 = derive from the longest
    // recorded interval end.
    common::Seconds replay_horizon = 0.0;
    bool randomize_replay_offset = true;
    // Per-node cyclic offsets chosen by the caller (e.g. so placement
    // can be filtered to initially-up nodes). Empty = draw internally
    // per randomize_replay_offset.
    std::vector<common::Seconds> replay_offsets;
    // Model-mode initial conditions: > 0 means the node starts the run
    // down and returns at that time (a residual outage drawn from the
    // steady state). Empty = every model node starts up.
    std::vector<common::Seconds> initial_down_until;
  };

  InterruptionInjector(EventQueue& queue,
                       const std::vector<cluster::NodeSpec>& nodes,
                       Listener& listener, common::Rng rng);
  InterruptionInjector(EventQueue& queue,
                       const std::vector<cluster::NodeSpec>& nodes,
                       Listener& listener, common::Rng rng, Config config);

  // Arm all nodes; must be called once, at queue time zero, before the
  // run starts. Nodes starting mid-outage emit on_node_down immediately.
  void start();

  bool is_up(cluster::NodeIndex node) const { return up_.at(node); }
  std::size_t transitions() const { return transitions_; }

  common::Seconds horizon() const { return horizon_; }

 private:
  struct ModelState {
    common::Seconds busy_until = 0.0;  // end of the FCFS repair queue
    EventQueue::Handle up_event;
  };
  struct ReplayState {
    std::size_t next_interval = 0;
    common::Seconds shift = 0.0;       // accumulated wrap shift
    common::Seconds offset = 0.0;      // cyclic start offset
  };

  void arm_model_arrival(cluster::NodeIndex node);
  void on_model_arrival(cluster::NodeIndex node);
  void schedule_replay_next(cluster::NodeIndex node);
  void set_up(cluster::NodeIndex node, bool up);

  // Next recorded interval for a replay node, rotated by its offset and
  // wrapped over the horizon.
  trace::DownInterval replay_peek(cluster::NodeIndex node) const;
  void replay_advance(cluster::NodeIndex node);

  EventQueue& queue_;
  const std::vector<cluster::NodeSpec>& nodes_;
  Listener& listener_;
  common::Rng rng_;
  Config config_;
  common::Seconds horizon_ = 0.0;

  std::vector<bool> up_;
  std::vector<ModelState> model_;
  std::vector<ReplayState> replay_;
  std::size_t transitions_ = 0;
};

// Draw one cyclic replay offset per node (uniform over the horizon; 0
// for non-replay nodes). Lets the caller know each node's initial state
// before constructing the simulation.
std::vector<common::Seconds> draw_replay_offsets(
    const std::vector<cluster::NodeSpec>& nodes, common::Seconds horizon,
    common::Rng& rng);

// Whether a replay node is up at its offset (i.e. at simulated t = 0).
bool replay_up_at(const cluster::NodeSpec& node, common::Seconds offset);

// Steady-state initial conditions for model-mode nodes: node i starts
// down with probability min(rho_i, 1); a down node's return time is a
// residual busy period (exponential with the busy-period mean for stable
// nodes; effectively never, i.e. `unstable_residual`, for rho >= 1).
// Returns 0 for nodes starting up.
std::vector<common::Seconds> draw_initial_down(
    const std::vector<cluster::NodeSpec>& nodes, common::Rng& rng,
    common::Seconds unstable_residual = 30.0 * 24.0 * 3600.0);

}  // namespace adapt::sim
