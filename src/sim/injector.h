// Interruption injector: drives each node's up/down transitions on the
// event queue, from either the stochastic model (Poisson arrivals +
// sampled service times, queued FCFS as in Section III-A) or a replayed
// failure trace (Section V-C).
//
// Replay starts each node at a random cyclic offset into its recorded
// intervals, so repeated runs sample different alignments of the same
// trace; a node mid-outage at the offset starts the run down.
//
// On top of the transient process the injector models volunteer *churn*:
// per-node permanent departures (exponential hazard), an optional
// correlated departure burst (a random fraction of the surviving pool
// leaves at one instant — a campus power cut, a project ending), and
// late arrivals (a node absent until its join time). A departed node
// emits a final on_node_down (if it was up) followed by
// on_node_departed, and never transitions again.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/node.h"
#include "common/rng.h"
#include "sim/event_queue.h"

namespace adapt::sim {

class InterruptionInjector {
 public:
  class Listener {
   public:
    virtual ~Listener() = default;
    virtual void on_node_down(cluster::NodeIndex node) = 0;
    virtual void on_node_up(cluster::NodeIndex node) = 0;
    // The node left the pool permanently; on_node_down was already
    // emitted if it was up. Default: churn-oblivious listeners just see
    // a node that never comes back.
    virtual void on_node_departed(cluster::NodeIndex node) { (void)node; }
  };

  struct Config {
    // Horizon for replay wrap-around; 0 = derive from the longest
    // recorded interval end.
    common::Seconds replay_horizon = 0.0;
    bool randomize_replay_offset = true;
    // Per-node cyclic offsets chosen by the caller (e.g. so placement
    // can be filtered to initially-up nodes). Empty = draw internally
    // per randomize_replay_offset.
    std::vector<common::Seconds> replay_offsets;
    // Model-mode initial conditions: > 0 means the node starts the run
    // down and returns at that time (a residual outage drawn from the
    // steady state). Empty = every model node starts up.
    std::vector<common::Seconds> initial_down_until;

    // -- churn ------------------------------------------------------
    // Permanent-departure hazard (per second); each node's departure
    // time is drawn Exp(rate) at start(). 0 = nobody leaves.
    double departure_rate = 0.0;
    // Per-node override of departure_rate (empty = uniform rate).
    std::vector<double> departure_rates;
    // Correlated burst: at burst_at (>= 0), every not-yet-departed node
    // departs independently with probability burst_fraction.
    common::Seconds burst_at = -1.0;
    double burst_fraction = 0.0;
    // Per-domain correlated burst: at domain_burst_at (>= 0), pick
    // domain_burst_count distinct fault domains uniformly at random and
    // depart *every* not-yet-departed node in them — a rack switch dying,
    // a site-wide power cut. Requires domain_of (node -> leaf domain id).
    common::Seconds domain_burst_at = -1.0;
    std::uint32_t domain_burst_count = 0;
    std::vector<std::uint32_t> domain_of;
    // Node arrivals: join_at[i] > 0 means node i is absent (down, not
    // departed) until that time, then joins and starts its availability
    // process. Empty = everyone present from t = 0.
    std::vector<common::Seconds> join_at;
  };

  InterruptionInjector(EventQueue& queue,
                       const std::vector<cluster::NodeSpec>& nodes,
                       Listener& listener, common::Rng rng);
  InterruptionInjector(EventQueue& queue,
                       const std::vector<cluster::NodeSpec>& nodes,
                       Listener& listener, common::Rng rng, Config config);

  // Arm all nodes; must be called once, at queue time zero, before the
  // run starts. Nodes starting mid-outage emit on_node_down immediately.
  void start();

  bool is_up(cluster::NodeIndex node) const { return up_.at(node); }
  bool is_departed(cluster::NodeIndex node) const {
    return departed_.at(node);
  }
  std::size_t transitions() const { return transitions_; }
  std::size_t departures() const { return departures_; }

  common::Seconds horizon() const { return horizon_; }

 private:
  struct ModelState {
    common::Seconds busy_until = 0.0;  // end of the FCFS repair queue
    EventQueue::Handle up_event;
  };
  struct ReplayState {
    std::size_t next_interval = 0;
    common::Seconds shift = 0.0;       // accumulated wrap shift
    common::Seconds offset = 0.0;      // cyclic start offset
  };

  void arm_model_arrival(cluster::NodeIndex node);
  void on_model_arrival(cluster::NodeIndex node);
  void schedule_replay_next(cluster::NodeIndex node);
  void set_up(cluster::NodeIndex node, bool up);
  void depart(cluster::NodeIndex node);
  void schedule_departure(cluster::NodeIndex node);
  // Arm the node's availability process (model arrivals or replay
  // schedule) starting at the current queue time.
  void arm_node(cluster::NodeIndex node);
  double departure_rate_for(cluster::NodeIndex node) const;

  // Next recorded interval for a replay node, rotated by its offset and
  // wrapped over the horizon.
  trace::DownInterval replay_peek(cluster::NodeIndex node) const;
  void replay_advance(cluster::NodeIndex node);

  EventQueue& queue_;
  const std::vector<cluster::NodeSpec>& nodes_;
  Listener& listener_;
  common::Rng rng_;
  Config config_;
  common::Seconds horizon_ = 0.0;

  std::vector<bool> up_;
  std::vector<bool> departed_;
  std::vector<ModelState> model_;
  std::vector<ReplayState> replay_;
  std::size_t transitions_ = 0;
  std::size_t departures_ = 0;
};

// Draw one cyclic replay offset per node (uniform over the horizon; 0
// for non-replay nodes). Lets the caller know each node's initial state
// before constructing the simulation.
std::vector<common::Seconds> draw_replay_offsets(
    const std::vector<cluster::NodeSpec>& nodes, common::Seconds horizon,
    common::Rng& rng);

// Whether a replay node is up at its offset (i.e. at simulated t = 0).
bool replay_up_at(const cluster::NodeSpec& node, common::Seconds offset);

// Steady-state initial conditions for model-mode nodes: node i starts
// down with probability min(rho_i, 1); a down node's return time is a
// residual busy period (exponential with the busy-period mean for stable
// nodes; effectively never, i.e. `unstable_residual`, for rho >= 1).
// Returns 0 for nodes starting up.
std::vector<common::Seconds> draw_initial_down(
    const std::vector<cluster::NodeSpec>& nodes, common::Rng& rng,
    common::Seconds unstable_residual = 30.0 * 24.0 * 3600.0);

}  // namespace adapt::sim
