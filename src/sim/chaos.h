// Chaos-invariant harness: build a randomized gray-failure schedule from
// a seed, run a full churn + recovery job under it, and check the
// invariants that must hold after convergence no matter how the faults
// interleaved:
//
//  * metadata consistency — every block's replica list has no duplicate
//    holders, no holder the NameNode believes dead, and never more
//    copies than the replication target;
//  * loss honesty — a block reported lost still has no live uncorrupted
//    replica registered (the simulator never wrote off data it could
//    have read);
//  * unwind completeness — a task not reported lost is done, and a lost
//    task's block is empty or corrupt-only;
//  * determinism — the same seed reproduces the run byte-for-byte
//    (JSONL trace compare), so every violation is replayable.
//
// The harness is deliberately self-contained (it owns the cluster, the
// NameNode and the schedule) so tests and the chaos_harness example can
// sweep seeds without run_experiment's policy machinery.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/mapreduce_sim.h"

namespace adapt::sim {

struct ChaosConfig {
  std::size_t nodes = 24;
  std::uint32_t blocks = 96;
  int replication = 2;
  double gamma = 12.0;
  std::uint64_t seed = 1;

  // Crash-stop churn underneath the gray layer.
  double interruption_lambda = 1.0 / 900.0;  // per second
  double interruption_mu = 1.0 / 120.0;      // repairs per second
  double departure_rate = 2e-5;

  // Detection knobs — a short dead timeout makes false positives easy.
  common::Seconds heartbeat_interval = 3.0;
  int heartbeat_miss_threshold = 2;
  common::Seconds dead_timeout = 15.0;

  // Gray-failure intensity ceilings; each run samples its schedule from
  // the seed inside these bounds.
  double max_heartbeat_loss = 0.5;
  int max_partitions = 2;
  int max_stragglers = 3;
  int max_corruptions = 4;
  bool scanner = true;
  bool safe_mode = true;

  // Re-run the same schedule and byte-compare the two traces.
  bool check_determinism = true;
};

struct ChaosViolation {
  static constexpr std::uint32_t kNoBlock = 0xffffffffu;
  std::string invariant;  // short machine-usable name
  std::string detail;     // human-readable specifics
  // Offending block for block-scoped invariants (kNoBlock otherwise) —
  // lets the harness print the block's causal lineage chain instead of
  // pointing at a raw trace dump.
  std::uint32_t block = kNoBlock;
};

struct ChaosReport {
  JobResult job;
  // The schedule actually sampled (for reproducing a violation by hand).
  SimJobConfig::ChurnConfig schedule;
  // Full JSONL event trace of the run — dumped as an artifact when an
  // invariant fails so the violation can be replayed offline.
  std::string trace_jsonl;
  // Deterministic loss post-mortem (obs::post_mortem_text over the
  // run's lineage): per-cause counts plus one line per lost block.
  // Same seed must reproduce this byte-for-byte; the CI chaos job
  // diffs it across repeat invocations.
  std::string post_mortem;
  std::vector<ChaosViolation> violations;
  bool ok() const { return violations.empty(); }
};

// Run one randomized chaos schedule and check the invariants.
ChaosReport run_chaos(const ChaosConfig& config);

}  // namespace adapt::sim
