#include "sim/scheduler_policy.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace adapt::sim {

namespace {

constexpr std::uint32_t kNoTask = std::numeric_limits<std::uint32_t>::max();

// Hadoop-style locality + slack speculation. The scan must stay
// line-for-line equivalent to the historical hardcoded
// MapReduceSimulation::try_speculate: prefer the overdue attempt local
// to the asking node with the most remaining work, else the globally
// worst laggard, and only duplicate when the laggard's remaining time
// beats slack * the fresh cost on the idle node.
class BaselineScheduler : public SchedulerPolicy {
 public:
  BaselineScheduler(const SchedulerConfig& config, double gamma)
      : config_(config), gamma_(gamma) {}

  std::string name() const override { return "baseline"; }
  SchedulerKind kind() const override { return SchedulerKind::kBaseline; }
  int max_attempts() const override {
    return config_.max_concurrent_attempts;
  }
  bool speculation_enabled() const override { return config_.speculation; }
  common::Seconds overdue_threshold() const override {
    return config_.speculation_overdue >= 0.0 ? config_.speculation_overdue
                                              : gamma_;
  }

  std::optional<std::uint32_t> pick_speculative(
      cluster::NodeIndex node, const SchedulerHost& host) const override {
    std::uint32_t best_local = kNoTask;
    double best_local_remaining = 0.0;
    std::uint32_t best_any = kNoTask;
    double best_any_remaining = 0.0;
    const double overdue = overdue_threshold();
    const std::size_t n = host.running_count();
    for (std::size_t i = 0; i < n; ++i) {
      const AttemptView a = host.running_attempt(i);
      if (!a.alive) continue;
      if (a.node == node) continue;
      if (!host.task_running(a.task)) continue;
      if (host.attempt_count(a.task) >=
          static_cast<std::size_t>(config_.max_concurrent_attempts)) {
        continue;
      }
      if (a.projected_finish - a.nominal_end < overdue) continue;
      const double remaining = a.remaining;
      if (host.is_local_to(a.task, node)) {
        if (remaining > best_local_remaining) {
          best_local_remaining = remaining;
          best_local = a.task;
        }
      } else if (remaining > best_any_remaining) {
        best_any_remaining = remaining;
        best_any = a.task;
      }
    }
    const bool use_local = best_local != kNoTask;
    const std::uint32_t best = use_local ? best_local : best_any;
    const double best_remaining =
        use_local ? best_local_remaining : best_any_remaining;
    if (best == kNoTask) return std::nullopt;
    const double fresh_cost = host.estimated_cost_on(node, best);
    if (fresh_cost < 0 ||
        best_remaining <= config_.speculation_slack * fresh_cost) {
      return std::nullopt;
    }
    return best;
  }

 protected:
  SchedulerConfig config_;
  double gamma_;
};

// Eq. 5-driven laggard detection: an attempt is overdue when the task's
// realized running time exceeds the executing node's placement-time
// E[T] quote by the configured margin, scaled by the cluster-wide
// calibration ratio (realized/predicted) so a uniformly mis-calibrated
// predictor does not mark the whole cluster late. Nodes without a
// finite quote fall back to the baseline slip rule.
class CalibratedScheduler : public BaselineScheduler {
 public:
  using BaselineScheduler::BaselineScheduler;

  std::string name() const override { return "calibrated"; }
  SchedulerKind kind() const override { return SchedulerKind::kCalibrated; }

  std::optional<std::uint32_t> pick_speculative(
      cluster::NodeIndex node, const SchedulerHost& host) const override {
    const double ratio = host.cluster_calibration_ratio();
    const double scale =
        config_.calibrated_margin * std::max(1.0, ratio > 0 ? ratio : 1.0);
    const common::Seconds now = host.now();
    const double slip_threshold = overdue_threshold();
    std::uint32_t best_local = kNoTask;
    double best_local_remaining = 0.0;
    std::uint32_t best_any = kNoTask;
    double best_any_remaining = 0.0;
    const std::size_t n = host.running_count();
    for (std::size_t i = 0; i < n; ++i) {
      const AttemptView a = host.running_attempt(i);
      if (!a.alive) continue;
      if (a.node == node) continue;
      if (!host.task_running(a.task)) continue;
      if (host.attempt_count(a.task) >=
          static_cast<std::size_t>(config_.max_concurrent_attempts)) {
        continue;
      }
      const double quote = a.node < config_.node_quotes.size()
                               ? config_.node_quotes[a.node]
                               : std::numeric_limits<double>::infinity();
      bool overdue;
      if (std::isfinite(quote) && a.first_start >= 0.0) {
        // Realized time already exceeds what the predictor promised for
        // this node, with margin: the quote itself was wrong or the
        // node degraded since placement — duplicate.
        overdue = now - a.first_start > scale * quote;
      } else {
        overdue = a.projected_finish - a.nominal_end >= slip_threshold;
      }
      if (!overdue) continue;
      const double remaining = a.remaining;
      if (host.is_local_to(a.task, node)) {
        if (remaining > best_local_remaining) {
          best_local_remaining = remaining;
          best_local = a.task;
        }
      } else if (remaining > best_any_remaining) {
        best_any_remaining = remaining;
        best_any = a.task;
      }
    }
    const bool use_local = best_local != kNoTask;
    const std::uint32_t best = use_local ? best_local : best_any;
    const double best_remaining =
        use_local ? best_local_remaining : best_any_remaining;
    if (best == kNoTask) return std::nullopt;
    const double fresh_cost = host.estimated_cost_on(node, best);
    if (fresh_cost < 0 ||
        best_remaining <= config_.speculation_slack * fresh_cost) {
      return std::nullopt;
    }
    return best;
  }
};

// Up-front redundancy: every fresh task launch is accompanied by k-1
// duplicates (the simulator places them); the existing cancel-on-first-
// finish machinery reaps the losers. No reactive speculation — the
// duplicates already cover stragglers — so stall wake-ups stay off.
class RedundantScheduler : public SchedulerPolicy {
 public:
  RedundantScheduler(const SchedulerConfig& config, double gamma)
      : config_(config), gamma_(gamma) {}

  std::string name() const override { return "redundant"; }
  SchedulerKind kind() const override { return SchedulerKind::kRedundant; }
  int max_attempts() const override {
    return std::max(config_.max_concurrent_attempts, config_.redundancy);
  }
  int extra_initial_launches() const override {
    return config_.redundancy - 1;
  }
  bool speculation_enabled() const override { return false; }
  common::Seconds overdue_threshold() const override {
    return config_.speculation_overdue >= 0.0 ? config_.speculation_overdue
                                              : gamma_;
  }
  std::optional<std::uint32_t> pick_speculative(
      cluster::NodeIndex, const SchedulerHost&) const override {
    return std::nullopt;
  }

 private:
  SchedulerConfig config_;
  double gamma_;
};

}  // namespace

SchedulerPtr make_scheduler(const SchedulerConfig& config, double gamma) {
  config.validate();
  switch (config.kind) {
    case SchedulerKind::kBaseline:
      return std::make_unique<BaselineScheduler>(config, gamma);
    case SchedulerKind::kCalibrated:
      return std::make_unique<CalibratedScheduler>(config, gamma);
    case SchedulerKind::kRedundant:
      return std::make_unique<RedundantScheduler>(config, gamma);
  }
  throw std::invalid_argument("make_scheduler: unknown SchedulerKind");
}

}  // namespace adapt::sim
