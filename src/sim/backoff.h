// Retry backoff shared by the re-replication and migration drivers:
// exponential growth clamped to a maximum both before and after the
// jitter multiplier. The pre-jitter clamp keeps std::pow's saturation
// (+inf for large exponents) from ever reaching the schedule; the
// post-jitter clamp keeps the final delay under the cap too — the
// jitter multiplier can exceed 1, and a long give-up budget would
// otherwise double past any bound.
#pragma once

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/units.h"

namespace adapt::sim {

struct BackoffParams {
  common::Seconds base = 5.0;
  double factor = 2.0;
  double jitter = 0.2;  // multiplier drawn from [1 - jitter, 1 + jitter]
  common::Seconds max = 600.0;
};

// True when the parameters produce sane (positive, finite, bounded)
// delays; drivers reject their config otherwise.
inline bool backoff_params_valid(const BackoffParams& p) {
  return p.base >= 0 && std::isfinite(p.base) && p.factor >= 1.0 &&
         std::isfinite(p.factor) && p.jitter >= 0 && p.jitter <= 1.0 &&
         p.max > 0 && std::isfinite(p.max);
}

// Delay before retry number retries_done + 1. Consumes exactly one
// uniform draw when jitter > 0, and matches the historical
// clamp-before-jitter computation bit for bit whenever the jittered
// delay stays under the cap.
inline common::Seconds backoff_delay(const BackoffParams& p,
                                     int retries_done, common::Rng& rng) {
  double delay = p.base * std::pow(p.factor, retries_done);
  delay = std::min(delay, p.max);
  if (p.jitter > 0.0) {
    delay *= 1.0 - p.jitter + 2.0 * p.jitter * rng.uniform();
    delay = std::min(delay, p.max);
  }
  return delay;
}

}  // namespace adapt::sim
