// Map-phase discrete-event simulation of a Hadoop-like runtime on a
// volatile cluster ("a discrete event simulator ... with mechanism
// analogous to that of Hadoop", paper Section V-C).
//
// Semantics implemented:
//  * one map task per block; a TaskTracker slot runs one attempt;
//  * locality-first scheduling, then remote fetch from a live replica
//    over the bounded-bandwidth network, then origin re-fetch when every
//    replica is offline, then speculative duplicates of slow attempts;
//  * interruptions kill running attempts and in-flight transfers; the
//    host's blocks survive on disk and its interrupted task is re-run
//    locally if still pending when the host returns;
//  * first finished attempt wins; duplicates are killed.
//
// Accounting matches Figure 5's decomposition: rework (lost execution),
// recovery (node downtime during the job), migration (time blocks spent
// on the wire), misc (residual: duplicate execution, queue gaps, idle
// tail).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "cluster/heartbeat.h"
#include "cluster/network.h"
#include "cluster/topology.h"
#include "common/rng.h"
#include "hdfs/namenode.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/event_queue.h"
#include "sim/injector.h"
#include "sim/migration.h"
#include "sim/overhead.h"
#include "sim/rereplication.h"
#include "sim/scheduler.h"
#include "sim/scheduler_policy.h"
#include "sim/sim_config.h"

namespace adapt::sim {

struct JobResult {
  common::Seconds elapsed = 0.0;
  double locality = 0.0;  // winning attempts that ran on a replica holder
  OverheadBreakdown overhead;

  std::uint64_t tasks = 0;
  std::uint64_t local_wins = 0;
  std::uint64_t remote_wins = 0;
  std::uint64_t origin_wins = 0;
  std::uint64_t attempts_started = 0;
  std::uint64_t attempts_failed = 0;   // killed by interruptions
  std::uint64_t attempts_killed = 0;   // redundant duplicates
  std::uint64_t transfers_started = 0;
  std::uint64_t transfers_aborted = 0;
  std::uint64_t aborts_dst_down = 0;      // fetching node died
  std::uint64_t aborts_src_timeout = 0;   // source outage > stall timeout
  std::uint64_t aborts_redundant = 0;     // another attempt won the task
  std::uint64_t node_transitions = 0;
  std::uint64_t events_processed = 0;
  std::uint64_t network_bytes = 0;
  // -- scheduler policy (duplicate-attempt accounting) ---------------
  std::uint64_t speculative_launches = 0;  // duplicates launched
  std::uint64_t speculative_wins = 0;      // duplicates that won
  std::uint64_t redundant_launches = 0;    // kRedundant up-front copies
  // Network bytes spent on fetches for attempts later cancelled because
  // a sibling finished first (pro-rated for in-flight fetches).
  std::uint64_t redundant_waste_bytes = 0;
  // Only filled when SimJobConfig::record_completion_times is set:
  // completion_times[t] and winning node per task.
  std::vector<common::Seconds> completion_times;
  std::vector<cluster::NodeIndex> winner_nodes;

  // -- churn & recovery (all zero/false on churn-free runs) ----------
  bool failed = false;
  std::string failure;  // "data_loss" | "no_live_nodes" when failed
  std::uint64_t nodes_departed = 0;
  std::uint64_t nodes_dead = 0;         // dead declarations
  std::uint64_t nodes_resurrected = 0;  // declared dead, then returned
  std::uint64_t replicas_dropped = 0;   // replicas written off as dead
  std::uint64_t blocks_lost = 0;        // blocks that hit 0 live replicas
  std::uint64_t tasks_lost = 0;         // tasks failed by data loss
  std::uint64_t rereplications = 0;     // replicas restored
  // Revive-as-block-report accounting (NameNode::revive_node): disk
  // copies re-registered after a false dead declaration, and excess
  // replicas reclaimed when re-replication had already refilled the
  // block.
  std::uint64_t replicas_restored = 0;
  std::uint64_t over_replicated_trimmed = 0;
  std::uint64_t duplicate_replica_inserts = 0;
  std::uint64_t rereplication_retries = 0;
  std::uint64_t rereplication_giveups = 0;
  std::uint64_t rereplication_bytes = 0;
  std::uint64_t max_under_replicated = 0;
  // Structured data-loss report: one entry per lost block, with the map
  // task it failed.
  struct LostBlock {
    hdfs::BlockId block = 0;
    std::uint32_t task = 0;
  };
  std::vector<LostBlock> lost_blocks;

  // -- online rebalancing (all zero with the loop off) ---------------
  std::uint64_t rebalance_triggers = 0;    // drift-tripped passes
  std::uint64_t migrations_submitted = 0;
  std::uint64_t migrations_committed = 0;
  std::uint64_t migration_retries = 0;
  std::uint64_t migration_giveups = 0;
  std::uint64_t migration_redraws = 0;
  std::uint64_t migration_bytes = 0;

  // -- gray failures (all zero with the gray knobs off) --------------
  std::uint64_t heartbeats_lost = 0;        // beats dropped by loss/partition
  std::uint64_t false_dead_declarations = 0;  // declared dead while up
  std::uint64_t replicas_corrupted = 0;     // bitrot injections landed
  std::uint64_t corrupt_reads = 0;          // checksum catches (all paths)
  std::uint64_t blocks_scanned = 0;         // scanner verifications
  std::uint64_t safe_mode_entries = 0;
  std::uint64_t safe_mode_deferrals = 0;    // write-offs held back
  std::uint64_t safe_mode_rescues = 0;      // deferred nodes that beat again
  // Replicas still silently corrupt when the job ended (ground truth the
  // chaos harness checks loss reports against).
  struct CorruptReplica {
    hdfs::BlockId block = 0;
    cluster::NodeIndex node = 0;
  };
  std::vector<CorruptReplica> corrupt_remaining;
};

// Simulates the map phase of `file` (already placed in `namenode`) on
// `cluster`. One instance runs one job; construct fresh per run.
// Attempt *choice* (which task to duplicate, how many duplicates) is
// delegated to the SchedulerPolicy named by config.scheduler; the
// simulation implements SchedulerHost to expose the read-only view the
// policy decides from.
class MapReduceSimulation : public InterruptionInjector::Listener,
                            private SchedulerHost {
 public:
  // Churn-free construction: metadata is read-only. Throws if
  // config.churn.enabled (dead declaration mutates the NameNode).
  MapReduceSimulation(const cluster::Cluster& cluster,
                      const hdfs::NameNode& namenode, hdfs::FileId file,
                      SimJobConfig config);
  // Churn-capable construction: dead declarations write off replicas and
  // the re-replication pipeline restores them in `namenode`.
  MapReduceSimulation(const cluster::Cluster& cluster,
                      hdfs::NameNode& namenode, hdfs::FileId file,
                      SimJobConfig config);

  JobResult run();

  // InterruptionInjector::Listener
  void on_node_down(cluster::NodeIndex node) override;
  void on_node_up(cluster::NodeIndex node) override;
  void on_node_departed(cluster::NodeIndex node) override;

 private:
  MapReduceSimulation(const cluster::Cluster& cluster,
                      const hdfs::NameNode& namenode,
                      hdfs::NameNode* mutable_namenode, hdfs::FileId file,
                      SimJobConfig config);

  // A source node's outage outlived the DFS client timeout: abort the
  // transfers stalled on it.
  void on_stall_timeout(cluster::NodeIndex node);
  // Periodic while a source is down: offer idle nodes the chance to
  // speculate rescues of the transfers stalled on it.
  void on_stall_wake(cluster::NodeIndex node);

  // -- churn & recovery ---------------------------------------------
  void init_churn();
  // Rebuilds the re-replication destination policy from the collector's
  // current estimates (or uniform random without a factory).
  void refresh_policy();
  // Dead-check alarm: fires detection latency + dead_timeout after a
  // down transition; declares the node dead if it is still silent.
  void maybe_declare_dead(cluster::NodeIndex node);
  // Write off the node's replicas, re-home its tasks, and feed the
  // under-replicated blocks to the recovery pipeline.
  void declare_dead(cluster::NodeIndex node);
  // A task whose block has zero live replicas, no origin fallback and no
  // attempt still running is unrecoverable: record the data loss.
  void maybe_mark_lost(TaskId task);
  // ReReplicator callback: a restored replica landed on `dst`.
  void on_block_replicated(hdfs::BlockId block, cluster::NodeIndex dst);
  // Map task of `block` (nullopt for blocks of other files).
  std::optional<TaskId> task_of(hdfs::BlockId block) const;

  // -- gray failures ---------------------------------------------------
  // Arms the gray-failure machinery (message-level heartbeats, timed
  // partitions, stragglers, bitrot, scanner, safe mode) from
  // config_.churn; called by init_churn when any gray knob is set.
  void init_gray();
  // Message-level heartbeat round: every up, unpartitioned node delivers
  // a beat unless the per-beat loss draw eats it; silence is what the
  // collector detects. Round 0 doubles as registration — nodes silent at
  // t=0 are armed for transition-style detection so a never-beating node
  // is still eventually declared.
  void on_heartbeat_round();
  // Sweep believed-dead nodes into declarations (through the safe-mode
  // gate) — the message-mode replacement for the per-node dead-check
  // alarm.
  void sweep_believed_dead();
  // Declaration gate: defer the write-off when the believed-dead
  // fraction within one detection window trips safe mode.
  void note_believed_dead(cluster::NodeIndex node);
  void on_safe_mode_expire();
  // A deferred node beat again before the hold expired.
  void rescue_deferred(cluster::NodeIndex node);
  // Undo a dead declaration: re-register surviving disk copies, trim
  // over-replication, re-home restored tasks. Returns {restored,
  // trimmed} for the kNodeRevived trace.
  std::pair<std::uint32_t, std::uint32_t> revive_declared_dead(
      cluster::NodeIndex node);
  void start_partition(std::size_t index);
  void heal_partition(std::size_t index);
  void start_straggler(std::size_t index);
  void end_straggler(std::size_t index);
  // Silently corrupt one replica of `block` (node_hint < 0 = random
  // live holder); no-op when no eligible holder exists.
  void inject_corruption(hdfs::BlockId block, std::int64_t node_hint);
  void on_bitrot();   // Poisson arrival: corrupt a random replica
  void on_scan();     // budgeted background block scanner sweep
  bool replica_corrupt(hdfs::BlockId block, cluster::NodeIndex node) const;
  void clear_corrupt(hdfs::BlockId block, cluster::NodeIndex node);
  // Checksum caught a corrupt replica: trim it from the metadata, re-home
  // the task and feed the block to recovery. path: 0 local read, 1
  // remote fetch, 2 scanner.
  void handle_corrupt_replica(hdfs::BlockId block, cluster::NodeIndex node,
                              std::uint32_t path);
  double slow_factor(cluster::NodeIndex node) const {
    return slow_factor_.empty() ? 1.0 : slow_factor_[node];
  }
  bool is_partitioned(cluster::NodeIndex node) const {
    return !partition_count_.empty() && partition_count_[node] > 0;
  }

  // -- online rebalancing --------------------------------------------
  // Drift alarms fired this sample: re-estimate, refresh the policies,
  // and submit migrations for replicas whose holder's E[T] quote
  // degraded past the hysteresis threshold (cooldown-gated).
  void maybe_rebalance(std::uint32_t alarm_count);
  // MigrationDriver callback: a move committed — the replica left
  // `from` and is now readable (and local) at `to`.
  void on_migration_committed(hdfs::BlockId block, cluster::NodeIndex from,
                              cluster::NodeIndex to);

  // -- time-series sampling & calibration ----------------------------
  // Fires every config_.sample_dt simulated seconds: snapshots the
  // sampler gauges into the metric time-series and steps the
  // calibration CUSUM drift detector.
  void on_sample();

 private:
  using AttemptId = std::uint32_t;
  static constexpr AttemptId kNoAttempt = ~AttemptId{0};

  struct Attempt {
    TaskId task = 0;
    cluster::NodeIndex node = 0;
    bool alive = false;
    bool local = false;
    bool from_origin = false;
    bool speculative = false;  // duplicate of an already-running task
    bool fetching = false;
    bool transfer_stalled = false;  // source down; end shifts on resume
    cluster::TransferGrant fetch;
    common::Seconds exec_start = -1.0;
    // Actual scheduled completion of the execution phase (includes a
    // straggling host's slowdown); equals exec_start + gamma when the
    // host is healthy.
    common::Seconds exec_end = 0.0;
    common::Seconds nominal_end = 0.0;  // projected finish at launch
    EventQueue::Handle event;        // pending fetch-done or completion
    std::uint32_t running_index = 0; // position in running registry
    std::uint32_t outgoing_index = 0;
    cluster::NodeIndex fetch_src = 0;
  };

  struct NodeState {
    bool up = true;
    common::Seconds down_at = -1.0;
    // Downtime is charged to "recovery" only while the node still has
    // undone home tasks (that is the downtime that can delay the job);
    // >= 0 marks an open charging segment.
    common::Seconds recovery_open = -1.0;
    EventQueue::Handle stall_timeout_event;
    std::uint32_t undone_home = 0;  // home tasks not yet completed
    int free_slots = 1;
    std::vector<AttemptId> attempts;           // attempts running here
    std::vector<AttemptId> outgoing_fetches;   // transfers sourced here
    bool idle_flagged = false;
  };

  // -- scheduler host view (read-only queries for the policy) --------
  common::Seconds now() const override;
  std::size_t running_count() const override;
  AttemptView running_attempt(std::size_t i) const override;
  bool task_running(std::uint32_t task) const override;
  std::size_t attempt_count(std::uint32_t task) const override;
  bool is_local_to(std::uint32_t task,
                   cluster::NodeIndex node) const override;
  double cluster_calibration_ratio() const override;

  // -- dispatch ------------------------------------------------------
  void dispatch(cluster::NodeIndex node);
  bool assign_one(cluster::NodeIndex node);
  // Asks the policy for a task worth duplicating on the idle node and
  // launches the duplicate if a data source is reachable.
  bool try_speculate(cluster::NodeIndex node);
  // kRedundant: launch the policy's up-front duplicates of `task` right
  // after its primary attempt started on `primary`.
  void launch_redundant(TaskId task, cluster::NodeIndex primary);
  void mark_idle(cluster::NodeIndex node);
  bool wake_one_idle();
  void wake_for_task(TaskId task);
  // Schedule a wake-up for when the oldest stalled task ripens for an
  // origin re-fetch.
  void arm_ripe_wake();
  void on_ripe_wake();

  // -- attempt lifecycle ----------------------------------------------
  void start_attempt(TaskId task, cluster::NodeIndex node,
                     cluster::NodeIndex src, bool speculative);
  void on_fetch_done(AttemptId id);
  void on_attempt_complete(AttemptId id);
  // Kill paths; kRedundant = another attempt won, the rest are failures.
  enum class KillReason { kNodeDown, kSourceTimeout, kRedundant, kChecksum };
  void kill_attempt(AttemptId id, KillReason reason);
  void detach_attempt(AttemptId id);

  // -- helpers ---------------------------------------------------------
  bool has_live_replica(TaskId task) const;
  // Best replica holder that is up *and* whose uplink queue is short
  // enough to be worth joining; nullopt when none qualifies.
  std::optional<cluster::NodeIndex> usable_source(TaskId task) const;
  // Also the SchedulerHost query of the same name.
  double estimated_cost_on(cluster::NodeIndex node,
                           TaskId task) const override;
  // Fetch end including the not-yet-applied shift of an ongoing stall.
  common::Seconds projected_fetch_end(const Attempt& a) const;
  double remaining_time(const Attempt& a) const;
  AttemptId alloc_attempt();
  void free_attempt(AttemptId id);

  const cluster::Cluster& cluster_;
  const hdfs::NameNode& namenode_;
  hdfs::FileId file_;
  SimJobConfig config_;

  EventQueue queue_;
  cluster::Network network_;
  common::Rng rng_;
  TaskBoard board_;
  InterruptionInjector injector_;

  // Attempt choice policy (built from config_.scheduler's merged view);
  // per-task attempt membership lives on the TaskBoard.
  SchedulerPtr scheduler_;

  std::vector<NodeState> node_state_;
  std::vector<Attempt> attempts_;
  std::vector<AttemptId> attempt_free_list_;
  std::vector<AttemptId> running_;  // alive attempt registry
  std::vector<cluster::NodeIndex> idle_stack_;

  JobResult result_;
  common::Seconds last_done_at_ = 0.0;
  common::Seconds origin_delay_ = 0.0;
  common::Seconds ripe_wake_at_ = -1.0;  // armed wake-up time, < 0 = none

  // -- churn & recovery (engaged only via the mutable-NameNode ctor) --
  hdfs::NameNode* mutable_namenode_ = nullptr;
  std::optional<cluster::HeartbeatCollector> collector_;
  std::optional<ReReplicator> rereplicator_;
  std::optional<MigrationDriver> migration_;
  // The policy refresh_policy last built, shared with the drivers; the
  // rebalance pass draws its migration targets from it.
  placement::PolicyPtr rebalance_policy_;
  common::Rng rebalance_rng_;
  common::Seconds last_rebalance_at_ = -1.0;  // cooldown gate, < 0 = never
  std::vector<EventQueue::Handle> dead_check_;  // armed per down node
  std::vector<bool> declared_dead_;
  std::vector<bool> task_lost_;
  std::size_t tasks_lost_ = 0;
  hdfs::BlockId first_block_ = 0;  // task t <-> block first_block_ + t

  // -- gray failures (engaged only when churn.gray_enabled()) ---------
  bool gray_ = false;          // any gray knob set
  bool message_mode_ = false;  // detection driven by observe_heartbeat
  common::Rng hb_rng_;         // per-beat loss draws (own fork)
  common::Rng corrupt_rng_;    // bitrot arrivals + victim picks (own fork)
  // Per-node count of partitions currently cutting the node off from the
  // NameNode (partitions may overlap).
  std::vector<int> partition_count_;
  // Resolved node sets per configured partition (domain -> members).
  std::vector<std::vector<cluster::NodeIndex>> partition_nodes_;
  // Per-node service-time multiplier; 1.0 = healthy, > 1 = degraded.
  std::vector<double> slow_factor_;
  // Ground truth of silently corrupted replicas, keyed (block, node).
  std::vector<std::pair<hdfs::BlockId, cluster::NodeIndex>> corrupt_;
  // Declared dead while actually up (the trace-worthy false positives).
  std::vector<bool> false_declared_;
  // First heartbeat round doubles as registration; done once.
  bool hb_registered_ = false;
  // Safe mode: write-offs deferred while a mass-death signal is in flight.
  std::vector<bool> deferred_dead_;
  std::size_t deferred_count_ = 0;
  bool safe_mode_ = false;
  EventQueue::Handle safe_mode_event_;
  // Believed-dead declaration times inside the rolling detection window.
  std::vector<common::Seconds> recent_dead_times_;
  std::size_t scan_cursor_ = 0;  // round-robin scanner position

  // Stamps the record with the current sim time and hands it to the
  // tracer; a no-op (one branch) when tracing is off.
  void trace(obs::TraceRecord r) {
    if (config_.tracer != nullptr) {
      r.t = queue_.now();
      config_.tracer->record(r);
    }
  }

  // Span hooks: one predictable branch each when profiling is off.
  void span_begin(const char* name) {
    if (config_.spans != nullptr) config_.spans->begin(name, queue_.now());
  }
  void span_end() {
    if (config_.spans != nullptr) config_.spans->end(queue_.now());
  }

  // Pre-registered histogram ids, valid only when config_.metrics is set.
  obs::MetricsRegistry::Id hist_transfer_ = 0;
  obs::MetricsRegistry::Id hist_outage_ = 0;
  obs::MetricsRegistry::Id hist_wait_ = 0;
  obs::MetricsRegistry::Id hist_task_time_ = 0;
  // Sampler series ids, valid only when sampling is armed.
  obs::MetricsRegistry::Id gauge_nodes_up_ = 0;
  obs::MetricsRegistry::Id gauge_tasks_done_ = 0;
  obs::MetricsRegistry::Id gauge_attempts_running_ = 0;
  obs::MetricsRegistry::Id gauge_under_replicated_ = 0;
  obs::MetricsRegistry::Id gauge_cal_ratio_ = 0;
  obs::MetricsRegistry::Id ctr_drift_alarms_ = 0;

  // First-ever attempt start per task (realized completion time is
  // "done minus first start", attributed to the winning node); sized
  // only when metrics or calibration need it.
  std::vector<common::Seconds> task_first_start_;
  // Sim time each node permanently departed (-1 while resident) — the
  // CUSUM drift detector's ground-truth change points.
  std::vector<common::Seconds> departed_at_;
};

// Convenience: board construction input from HDFS metadata.
std::vector<std::vector<cluster::NodeIndex>> replica_map(
    const hdfs::NameNode& namenode, hdfs::FileId file);

}  // namespace adapt::sim
