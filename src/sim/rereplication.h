// NameNode re-replication pipeline: restores the replication factor of
// blocks whose holders were declared dead (volunteer churn), draining a
// prioritized under-replicated queue over the bounded-bandwidth network.
//
// Queue discipline: fewest live replicas first (ties by block id) — the
// blocks closest to loss are repaired first, matching HDFS's replication
// priority queues. The drain is throttled by a concurrent-transfer cap so
// recovery traffic cannot starve job traffic, and each block retries with
// exponential backoff + jitter when its source or destination goes down
// mid-transfer; after the retry budget the pipeline gives up on the block
// (it may still be readable from its surviving replicas).
//
// Source: the live replica holder whose uplink frees up earliest.
// Destination: drawn from the active placement policy over nodes that are
// up, not dead, not already holding the block, and with free space — the
// caller refreshes the policy with current (lambda, mu) estimates via
// set_policy whenever its availability beliefs change.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "cluster/network.h"
#include "common/rng.h"
#include "hdfs/namenode.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "placement/policy.h"
#include "sim/event_queue.h"

namespace adapt::sim {

class ReReplicator {
 public:
  struct Config {
    bool enabled = true;
    int max_concurrent = 4;  // transfer cap (recovery vs job bandwidth)
    int max_retries = 6;
    common::Seconds backoff_base = 5.0;
    double backoff_factor = 2.0;
    // Multiplicative jitter: each delay is scaled by a uniform draw from
    // [1 - jitter, 1 + jitter]. 0 = deterministic backoff.
    double backoff_jitter = 0.2;
    common::Seconds max_backoff = 600.0;
  };

  struct Stats {
    std::uint64_t enqueued = 0;       // blocks ever admitted to the queue
    std::uint64_t started = 0;        // transfers begun (incl. retries)
    std::uint64_t completed = 0;      // replicas restored
    std::uint64_t retries = 0;
    std::uint64_t giveups = 0;        // retry budget exhausted
    std::uint64_t unrecoverable = 0;  // dropped with zero live replicas
    std::uint64_t bytes_moved = 0;
    std::uint64_t max_under_replicated = 0;  // peak queue + in-flight
  };

  using NodeUpFn = std::function<bool(cluster::NodeIndex)>;
  using ReplicatedFn = std::function<void(hdfs::BlockId, cluster::NodeIndex)>;
  using BlockFn = std::function<void(hdfs::BlockId)>;

  // `node_up` answers whether a node can move data right now; it must
  // stay valid for the ReReplicator's lifetime.
  ReReplicator(EventQueue& queue, hdfs::NameNode& namenode,
               cluster::Network& network, std::uint64_t block_bytes,
               Config config, common::Rng rng, NodeUpFn node_up);

  // Destination sampler; refresh whenever availability estimates change.
  void set_policy(placement::PolicyPtr policy);
  // A replica landed (block, destination) — wire scheduler updates here.
  void set_on_replicated(ReplicatedFn fn) { on_replicated_ = std::move(fn); }
  // The pipeline stopped trying to repair this block.
  void set_on_giveup(BlockFn fn) { on_giveup_ = std::move(fn); }
  void set_tracer(obs::EventTracer* tracer) { tracer_ = tracer; }
  void set_metrics(obs::MetricsRegistry* metrics);
  // Profile each pump() batch as a "rereplication_batch" span; `clock`
  // supplies sim time and must outlive the ReReplicator.
  void set_spans(obs::SpanProfiler* spans, const EventQueue* clock) {
    spans_ = spans;
    span_clock_ = clock;
  }

  // Admit a block that dropped below its target replication. Blocks
  // already queued or in flight are ignored; blocks with zero live
  // replicas are unrecoverable and dropped (the job layer handles data
  // loss). No-op when disabled.
  void enqueue(hdfs::BlockId block);

  // Availability change notifications from the simulation.
  void on_node_up(cluster::NodeIndex node);
  void on_node_down(cluster::NodeIndex node);

  const Stats& stats() const { return stats_; }
  // Blocks still awaiting repair (queued or in flight).
  std::size_t backlog() const { return pending_.size() + in_flight_.size(); }
  bool idle() const { return backlog() == 0; }

 private:
  struct Repair {
    hdfs::BlockId block = 0;
    int retries = 0;
    common::Seconds not_before = 0.0;  // backoff gate
  };
  struct Transfer {
    hdfs::BlockId block = 0;
    cluster::NodeIndex src = 0;
    cluster::NodeIndex dst = 0;
    int retries = 0;
    cluster::TransferGrant grant;
    EventQueue::Handle done;
  };

  // Start transfers while below the concurrency cap and work is ready;
  // profiled as one "rereplication_batch" span when there is a backlog.
  void pump();
  void drain();
  bool start_repair(std::size_t pending_index);
  void on_transfer_done(std::uint64_t ticket);
  void fail_transfer(std::size_t index, obs::TraceReason reason);
  void schedule_retry(hdfs::BlockId block, int retries_done,
                      obs::TraceReason reason);
  void finish_block(hdfs::BlockId block);  // leaves the tracked set

  int target_replication(hdfs::BlockId block) const;
  bool tracked(hdfs::BlockId block) const;
  void note_backlog();

  void trace(obs::TraceRecord r) {
    if (tracer_ != nullptr) {
      r.t = queue_.now();
      tracer_->record(r);
    }
  }

  EventQueue& queue_;
  hdfs::NameNode& namenode_;
  cluster::Network& network_;
  std::uint64_t block_bytes_;
  Config config_;
  common::Rng rng_;
  NodeUpFn node_up_;
  placement::PolicyPtr policy_;
  ReplicatedFn on_replicated_;
  BlockFn on_giveup_;
  obs::EventTracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::SpanProfiler* spans_ = nullptr;
  const EventQueue* span_clock_ = nullptr;

  std::vector<Repair> pending_;
  std::vector<Transfer> in_flight_;
  std::vector<hdfs::BlockId> tracked_;  // pending + in-flight block ids
  Stats stats_;

  obs::MetricsRegistry::Id ctr_started_ = 0;
  obs::MetricsRegistry::Id ctr_completed_ = 0;
  obs::MetricsRegistry::Id ctr_retries_ = 0;
  obs::MetricsRegistry::Id ctr_giveups_ = 0;
  obs::MetricsRegistry::Id ctr_bytes_ = 0;
  obs::MetricsRegistry::Id gauge_backlog_ = 0;
};

}  // namespace adapt::sim
