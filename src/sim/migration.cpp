#include "sim/migration.h"

#include "sim/backoff.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace adapt::sim {

MigrationDriver::MigrationDriver(EventQueue& queue, hdfs::NameNode& namenode,
                                 cluster::Network& network,
                                 std::uint64_t block_bytes, Config config,
                                 common::Rng rng, NodeUpFn node_up)
    : queue_(queue),
      namenode_(namenode),
      network_(network),
      block_bytes_(block_bytes),
      config_(config),
      rng_(rng),
      node_up_(std::move(node_up)) {
  if (config_.max_concurrent < 1) {
    throw std::invalid_argument("migration: max_concurrent must be >= 1");
  }
  if (config_.budget_bytes_per_s < 0 ||
      !std::isfinite(config_.budget_bytes_per_s)) {
    throw std::invalid_argument("migration: bad budget_bytes_per_s");
  }
  if (config_.max_retries < 0 ||
      !backoff_params_valid({config_.backoff_base, config_.backoff_factor,
                             config_.backoff_jitter, config_.max_backoff})) {
    throw std::invalid_argument("migration: bad backoff config");
  }
  if (!node_up_) {
    throw std::invalid_argument("migration: node_up callback required");
  }
}

void MigrationDriver::set_policy(placement::PolicyPtr policy) {
  policy_ = std::move(policy);
}

void MigrationDriver::set_metrics(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  if (metrics_ == nullptr) return;
  ctr_submitted_ = metrics_->counter("migration.submitted");
  ctr_started_ = metrics_->counter("migration.started");
  ctr_committed_ = metrics_->counter("migration.committed");
  ctr_retries_ = metrics_->counter("migration.retries");
  ctr_giveups_ = metrics_->counter("migration.giveups");
  ctr_redraws_ = metrics_->counter("migration.redraws");
  ctr_bytes_ = metrics_->counter("migration.bytes");
  gauge_backlog_ = metrics_->gauge("migration.backlog_max");
}

void MigrationDriver::note_backlog() {
  const auto depth = static_cast<std::uint64_t>(backlog());
  if (depth > stats_.max_backlog) {
    stats_.max_backlog = depth;
    if (metrics_ != nullptr) {
      metrics_->set(gauge_backlog_, static_cast<double>(depth));
    }
  }
}

void MigrationDriver::release_reservation(const hdfs::ReplicaMove& move) {
  // The reservation can already be gone: mark_node_dead sweeps pending
  // moves into a dead node on the NameNode side.
  if (namenode_.has_pending_move(move.block, move.from, move.to)) {
    namenode_.abort_move(move.block, move.from, move.to);
  }
}

void MigrationDriver::submit(const hdfs::ReplicaMove& move) {
  if (!config_.enabled) return;
  if (!namenode_.has_pending_move(move.block, move.from, move.to)) {
    throw std::logic_error("migration: submit without begin_move");
  }
  ++stats_.submitted;
  if (metrics_ != nullptr) metrics_->add(ctr_submitted_);
  pending_.push_back({move, 0, 0.0});
  note_backlog();
  pump();
}

void MigrationDriver::on_node_up(cluster::NodeIndex node) {
  (void)node;  // any returning node may unblock a source
  if (!config_.enabled) return;
  pump();
}

void MigrationDriver::on_node_down(cluster::NodeIndex node) {
  if (!config_.enabled) return;
  // Sweep in-flight transfers touching the node; fail_flight erases by
  // swap, so walk backwards.
  for (std::size_t i = in_flight_.size(); i-- > 0;) {
    const Flight& f = in_flight_[i];
    if (f.src == node || f.move.to == node) {
      fail_flight(i, obs::TraceReason::kNodeDown);
    }
  }
  pump();
}

void MigrationDriver::cancel_all() {
  for (Flight& f : in_flight_) {
    f.done.cancel();
    network_.abort(f.grant, queue_.now());
    release_reservation(f.move);
    ++stats_.cancelled;
  }
  in_flight_.clear();
  for (const Item& item : pending_) {
    release_reservation(item.move);
    ++stats_.cancelled;
  }
  pending_.clear();
}

void MigrationDriver::pump() {
  if (!policy_) return;  // not armed yet
  const bool profile = spans_ != nullptr && !pending_.empty();
  if (profile) spans_->begin("migration_batch", span_clock_->now());
  drain();
  if (profile) spans_->end(span_clock_->now());
}

void MigrationDriver::drain() {
  while (static_cast<int>(in_flight_.size()) < config_.max_concurrent) {
    // FIFO: the earliest-submitted move whose backoff gate has passed.
    const common::Seconds now = queue_.now();
    std::size_t ready = pending_.size();
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      if (pending_[i].not_before <= now) {
        ready = i;
        break;
      }
    }
    if (ready == pending_.size()) return;  // nothing ready
    if (config_.budget_bytes_per_s > 0.0 && budget_free_at_ > now) {
      // Rate budget exhausted: even the head move must wait, keeping
      // starts strictly in submission order under the budget.
      queue_.schedule(budget_free_at_, [this] { pump(); });
      return;
    }
    if (!start_move(ready)) return;
  }
}

bool MigrationDriver::start_move(std::size_t index) {
  const common::Seconds now = queue_.now();
  Item item = pending_[index];
  hdfs::ReplicaMove& move = item.move;

  const hdfs::BlockInfo& info = namenode_.block(move.block);
  if (!info.hosted_on(move.from)) {
    // The holder being vacated no longer holds the block (its death
    // wrote the replica off; re-replication owns restoring the count).
    // The move is moot.
    release_reservation(move);
    ++stats_.cancelled;
    pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(index));
    if (on_aborted_) on_aborted_(move.block, move.from, move.to);
    return true;
  }

  if (!namenode_.has_pending_move(move.block, move.from, move.to) ||
      !node_up_(move.to)) {
    // Destination died (reservation swept) or is down: redraw a fresh
    // target from the active policy.
    release_reservation(move);
    cluster::NodeMask eligible =
        namenode_.eligibility_for_new_replica(move.block);
    eligible.for_each_set([&](std::uint32_t n) {
      if (!node_up_(static_cast<cluster::NodeIndex>(n))) eligible.reset(n);
    });
    std::optional<cluster::NodeIndex> dst;
    if (eligible.any()) {
      // Keyed on (block, replica count): consistent-hash policies land
      // the redraw on their stable bucket for this block.
      dst = policy_->choose_keyed(
          move.block, static_cast<std::uint32_t>(info.replicas.size()),
          eligible, rng_);
    }
    if (!dst) {
      // No landing spot right now: gate behind a flat delay without
      // consuming the retry budget — a full cluster is not a failure.
      pending_[index].not_before = now + std::max(config_.backoff_base, 1.0);
      queue_.schedule(pending_[index].not_before, [this] { pump(); });
      return true;
    }
    namenode_.begin_move(move.block, move.from, *dst);
    move.to = *dst;
    pending_[index].move.to = *dst;
    ++stats_.redraws;
    if (metrics_ != nullptr) metrics_->add(ctr_redraws_);
  }

  // Source: live holder whose uplink frees up earliest (ties by index);
  // any holder has the bytes, so the vacating holder gets no preference.
  cluster::NodeIndex src = 0;
  bool have_src = false;
  common::Seconds src_free = 0.0;
  for (const cluster::NodeIndex holder : info.replicas) {
    if (!node_up_(holder)) continue;
    const common::Seconds free_at = network_.uplink_available_at(holder);
    if (!have_src || free_at < src_free ||
        (free_at == src_free && holder < src)) {
      src = holder;
      src_free = free_at;
      have_src = true;
    }
  }
  if (!have_src) {
    // Every holder is down; gate and keep the reservation.
    pending_[index].not_before = now + std::max(config_.backoff_base, 1.0);
    queue_.schedule(pending_[index].not_before, [this] { pump(); });
    return true;
  }

  pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(index));

  if (config_.budget_bytes_per_s > 0.0) {
    budget_free_at_ = std::max(budget_free_at_, now) +
                      static_cast<double>(block_bytes_) /
                          config_.budget_bytes_per_s;
  }

  Flight f;
  f.move = move;
  f.src = src;
  f.retries = item.retries;
  f.grant = network_.request(src, move.to, block_bytes_, now);
  const std::uint64_t ticket = f.grant.ticket;
  f.done =
      queue_.schedule(f.grant.end, [this, ticket] { on_transfer_done(ticket); });
  ++stats_.started;
  if (metrics_ != nullptr) metrics_->add(ctr_started_);
  trace({.type = obs::EventType::kMigrationStart,
         .node = f.move.to,
         .peer = f.src,
         .task = f.move.block,
         .aux = static_cast<std::uint32_t>(f.retries),
         .ticket = f.grant.ticket,
         .v0 = f.grant.start,
         .v1 = f.grant.end});
  in_flight_.push_back(std::move(f));
  return true;
}

void MigrationDriver::on_transfer_done(std::uint64_t ticket) {
  std::size_t index = in_flight_.size();
  for (std::size_t i = 0; i < in_flight_.size(); ++i) {
    if (in_flight_[i].grant.ticket == ticket) {
      index = i;
      break;
    }
  }
  if (index == in_flight_.size()) return;  // aborted concurrently
  const Flight f = std::move(in_flight_[index]);
  in_flight_[index] = std::move(in_flight_.back());
  in_flight_.pop_back();

  network_.on_transfer_complete(block_bytes_);
  namenode_.commit_move(f.move.block, f.move.from, f.move.to);
  ++stats_.committed;
  stats_.bytes_moved += block_bytes_;
  if (metrics_ != nullptr) {
    metrics_->add(ctr_committed_);
    metrics_->add(ctr_bytes_, static_cast<double>(block_bytes_));
  }
  trace({.type = obs::EventType::kMigrationCommit,
         .node = f.move.to,
         .peer = f.src,
         .task = f.move.block,
         .ticket = f.grant.ticket,
         .v0 = static_cast<double>(block_bytes_)});
  if (on_committed_) on_committed_(f.move.block, f.move.from, f.move.to);
  pump();
}

void MigrationDriver::fail_flight(std::size_t index, obs::TraceReason reason) {
  Flight f = std::move(in_flight_[index]);
  in_flight_[index] = std::move(in_flight_.back());
  in_flight_.pop_back();
  f.done.cancel();
  network_.abort(f.grant, queue_.now());
  // The reservation (when the destination survived) is kept: the next
  // start re-validates it and redraws only if the destination is gone.
  schedule_retry({f.move, f.retries, 0.0}, reason);
}

void MigrationDriver::schedule_retry(Item item, obs::TraceReason reason) {
  const int attempt = item.retries + 1;
  if (attempt > config_.max_retries) {
    ++stats_.giveups;
    if (metrics_ != nullptr) metrics_->add(ctr_giveups_);
    release_reservation(item.move);
    trace({.type = obs::EventType::kMigrationGiveup,
           .task = item.move.block,
           .aux = static_cast<std::uint32_t>(attempt)});
    if (on_aborted_) {
      on_aborted_(item.move.block, item.move.from, item.move.to);
    }
    return;
  }
  ++stats_.retries;
  if (metrics_ != nullptr) metrics_->add(ctr_retries_);
  const double delay = backoff_delay(
      {config_.backoff_base, config_.backoff_factor, config_.backoff_jitter,
       config_.max_backoff},
      item.retries, rng_);
  const common::Seconds next = queue_.now() + delay;
  trace({.type = obs::EventType::kMigrationRetry,
         .reason = reason,
         .task = item.move.block,
         .aux = static_cast<std::uint32_t>(attempt),
         .v0 = next});
  item.retries = attempt;
  item.not_before = next;
  pending_.push_back(item);
  note_backlog();
  queue_.schedule(next, [this] { pump(); });
}

}  // namespace adapt::sim
