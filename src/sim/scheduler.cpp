#include "sim/scheduler.h"

#include <algorithm>
#include <stdexcept>

namespace adapt::sim {

TaskBoard::TaskBoard(std::vector<std::vector<cluster::NodeIndex>> home_nodes,
                     std::size_t node_count)
    : home_nodes_(std::move(home_nodes)),
      node_tasks_(node_count),
      node_pending_(node_count, 0),
      node_cursor_(node_count, 0),
      status_(home_nodes_.size(), TaskStatus::kPending),
      flags_(home_nodes_.size()),
      attempts_(home_nodes_.size()),
      stalled_since_(home_nodes_.size(), 0.0) {
  for (TaskId t = 0; t < home_nodes_.size(); ++t) {
    for (const cluster::NodeIndex n : home_nodes_[t]) {
      node_tasks_.at(n).push_back(t);
      ++node_pending_.at(n);
    }
    push_global(t);
  }
  pending_ = home_nodes_.size();
}

bool TaskBoard::is_local_to(TaskId task, cluster::NodeIndex node) const {
  for (const cluster::NodeIndex n : home_nodes_.at(task)) {
    if (n == node) return true;
  }
  return false;
}

void TaskBoard::push_global(TaskId task) {
  if (!flags_[task].in_global) {
    flags_[task].in_global = true;
    global_.push_back(task);
  }
}

void TaskBoard::mark_running(TaskId task) {
  if (status_.at(task) != TaskStatus::kPending) {
    throw std::logic_error("mark_running: task not pending");
  }
  status_[task] = TaskStatus::kRunning;
  --pending_;
  for (const cluster::NodeIndex n : home_nodes_[task]) {
    --node_pending_[n];
  }
}

void TaskBoard::mark_pending(TaskId task) {
  if (status_.at(task) != TaskStatus::kRunning) {
    throw std::logic_error("mark_pending: task not running");
  }
  status_[task] = TaskStatus::kPending;
  ++pending_;
  for (const cluster::NodeIndex n : home_nodes_[task]) {
    ++node_pending_[n];
    // The task may sit before the scan cursor; rewind so locality is not
    // lost for re-execution on its home node.
    node_cursor_[n] = 0;
  }
  push_global(task);
}

void TaskBoard::mark_done(TaskId task) {
  if (status_.at(task) != TaskStatus::kRunning) {
    throw std::logic_error("mark_done: task not running");
  }
  status_[task] = TaskStatus::kDone;
  ++done_;
}

std::optional<TaskId> TaskBoard::take_local(cluster::NodeIndex node) {
  if (node_pending_.at(node) == 0) return std::nullopt;
  auto& tasks = node_tasks_[node];
  for (std::size_t& cursor = node_cursor_[node]; cursor < tasks.size();
       ++cursor) {
    const TaskId task = tasks[cursor];
    // remove_home leaves stale entries behind; skip tasks no longer
    // homed here.
    if (status_[task] == TaskStatus::kPending && is_local_to(task, node)) {
      return task;
    }
  }
  // Counter said pending > 0 but the scan found none: corruption.
  throw std::logic_error("take_local: pending counter out of sync");
}

std::optional<TaskId> TaskBoard::take_stalled(common::Seconds now,
                                              common::Seconds min_age) {
  while (!stalled_.empty()) {
    const auto [task, parked_at] = stalled_.front();
    if (flags_[task].in_stalled && status_[task] == TaskStatus::kPending &&
        parked_at == stalled_since_[task]) {
      // Live entries are park-time ordered, so an unripe head means
      // nothing behind it is ripe either.
      if (now - stalled_since_[task] < min_age) return std::nullopt;
      stalled_.pop_front();
      flags_[task].in_stalled = false;
      return task;
    }
    // Stale entry (task revived into the global queue, re-parked later
    // with a newer stamp, or no longer pending): drop it.
    stalled_.pop_front();
    if (status_[task] != TaskStatus::kPending) {
      flags_[task].in_stalled = false;
    }
  }
  return std::nullopt;
}

std::optional<common::Seconds> TaskBoard::next_stalled_park() {
  while (!stalled_.empty()) {
    const auto [task, parked_at] = stalled_.front();
    if (flags_[task].in_stalled && status_[task] == TaskStatus::kPending &&
        parked_at == stalled_since_[task]) {
      return stalled_since_[task];
    }
    stalled_.pop_front();
    if (status_[task] != TaskStatus::kPending) {
      flags_[task].in_stalled = false;
    }
  }
  return std::nullopt;
}

std::size_t TaskBoard::revive_stalled_for(cluster::NodeIndex node,
                                          common::Seconds now) {
  std::size_t revived = 0;
  for (const TaskId task : node_tasks_.at(node)) {
    if (status_[task] == TaskStatus::kPending && flags_[task].in_stalled &&
        is_local_to(task, node)) {
      // Move back to the global queue; the stalled entry is skipped
      // lazily when popped.
      flags_[task].in_stalled = false;
      push_global(task);
      ++revived;
      if (tracer_ != nullptr) {
        obs::TraceRecord r;
        r.t = now;
        r.type = obs::EventType::kTaskRevive;
        r.task = task;
        r.node = node;
        tracer_->record(r);
      }
    }
  }
  return revived;
}

void TaskBoard::register_attempt(TaskId task, std::uint32_t attempt) {
  attempts_.at(task).push_back(attempt);
}

void TaskBoard::unregister_attempt(TaskId task, std::uint32_t attempt) {
  auto& ids = attempts_.at(task);
  const auto it = std::find(ids.begin(), ids.end(), attempt);
  if (it == ids.end()) {
    throw std::logic_error("unregister_attempt: attempt not registered");
  }
  // Erase preserving launch order: sibling-cancel iteration depends on it.
  ids.erase(it);
}

void TaskBoard::add_home(TaskId task, cluster::NodeIndex node) {
  if (is_local_to(task, node)) {
    throw std::logic_error("add_home: task already homed on node");
  }
  home_nodes_.at(task).push_back(node);
  // Appended past any cursor position, so the local scan still reaches
  // it without a rewind.
  node_tasks_.at(node).push_back(task);
  if (status_[task] == TaskStatus::kPending) ++node_pending_[node];
}

void TaskBoard::remove_home(TaskId task, cluster::NodeIndex node) {
  auto& homes = home_nodes_.at(task);
  const auto it = std::find(homes.begin(), homes.end(), node);
  if (it == homes.end()) {
    throw std::logic_error("remove_home: task not homed on node");
  }
  homes.erase(it);
  if (status_[task] == TaskStatus::kPending) --node_pending_.at(node);
}

}  // namespace adapt::sim
