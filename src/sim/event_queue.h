// Discrete-event engine: a time-ordered queue of cancellable callbacks.
//
// Ties are broken by insertion order so runs are deterministic.
//
// Storage is pooled: callbacks live in a slab of reusable slots threaded
// on a free list, and the heap orders plain-data entries (when, seq,
// slot, generation). Scheduling therefore allocates nothing once the
// slab has warmed up — the old implementation paid a make_shared per
// schedule and a std::function copy per pop. Handles are (slot,
// generation) tickets: releasing a slot bumps its generation, so a
// stale handle — or a stale heap entry for a cancelled event — simply
// stops matching. Cancelling is O(1) and cancel/active on a handle
// whose event already ran are safe no-ops.
//
// Handles hold a plain pointer to their queue; they must not outlive
// it. Every user in this codebase stores handles next to the queue in
// the same simulation object, which satisfies that by construction.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/units.h"

namespace adapt::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  class Handle {
   public:
    Handle() = default;
    void cancel() {
      if (queue_ != nullptr) queue_->cancel(slot_, generation_);
    }
    bool active() const {
      return queue_ != nullptr && queue_->armed(slot_, generation_);
    }

   private:
    friend class EventQueue;
    Handle(EventQueue* queue, std::uint32_t slot, std::uint32_t generation)
        : queue_(queue), slot_(slot), generation_(generation) {}
    EventQueue* queue_ = nullptr;
    std::uint32_t slot_ = 0;
    std::uint32_t generation_ = 0;
  };

  common::Seconds now() const { return now_; }
  bool empty() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }
  std::uint64_t processed() const { return processed_; }

  // Slots currently holding a scheduled callback (cancelled events drop
  // out immediately even though their heap entry lingers until popped).
  std::size_t live_slots() const { return live_; }
  std::size_t slab_size() const { return slots_.size(); }

  // Schedule `callback` at absolute time `when` (>= now).
  Handle schedule(common::Seconds when, Callback callback);

  // Pop and run the next non-cancelled event. Returns false when the
  // queue is exhausted.
  bool run_next();

  // Run until `done()` returns true or the queue drains. Returns true if
  // the predicate was satisfied.
  bool run_until(const std::function<bool()>& done);

 private:
  struct Slot {
    Callback callback;
    std::uint32_t generation = 0;
    std::uint32_t next_free = 0;
  };
  // Plain data on the heap; the callback stays in its slot.
  struct Entry {
    common::Seconds when;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t generation;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  bool armed(std::uint32_t slot, std::uint32_t generation) const {
    return slot < slots_.size() && slots_[slot].generation == generation;
  }
  void cancel(std::uint32_t slot, std::uint32_t generation) {
    if (armed(slot, generation)) release(slot);
  }
  // Bump the generation (invalidating handles and heap entries) and
  // return the slot to the free list.
  void release(std::uint32_t slot);

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
  std::size_t live_ = 0;
  common::Seconds now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;

  static constexpr std::uint32_t kNoSlot = 0xffffffffu;
};

}  // namespace adapt::sim
