// Discrete-event engine: a time-ordered queue of cancellable callbacks.
//
// Ties are broken by insertion order so runs are deterministic. Handles
// are cheap shared tokens; cancelling is O(1) (the event is skipped when
// popped).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/units.h"

namespace adapt::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  class Handle {
   public:
    Handle() = default;
    void cancel() {
      if (alive_) *alive_ = false;
    }
    bool active() const { return alive_ && *alive_; }

   private:
    friend class EventQueue;
    explicit Handle(std::shared_ptr<bool> alive) : alive_(std::move(alive)) {}
    std::shared_ptr<bool> alive_;
  };

  common::Seconds now() const { return now_; }
  bool empty() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }
  std::uint64_t processed() const { return processed_; }

  // Schedule `callback` at absolute time `when` (>= now).
  Handle schedule(common::Seconds when, Callback callback);

  // Pop and run the next non-cancelled event. Returns false when the
  // queue is exhausted.
  bool run_next();

  // Run until `done()` returns true or the queue drains. Returns true if
  // the predicate was satisfied.
  bool run_until(const std::function<bool()>& done);

 private:
  struct Event {
    common::Seconds when;
    std::uint64_t seq;
    Callback callback;
    std::shared_ptr<bool> alive;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  common::Seconds now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace adapt::sim
