// Pluggable map-phase scheduler policies.
//
// Mirrors placement/policy.h's shape: an abstract interface, a kind
// enum + per-kind config (SchedulerConfig, in sim_config.h), and a
// make_scheduler factory. The simulator owns attempt *state* (launch,
// transfer, cancellation mechanics); the policy owns attempt *choice* —
// which running task an idle node should duplicate, how many duplicates
// a task may have, and whether duplicates launch up-front.
//
// Determinism contract: policies are pure functions of the host view
// passed in. They hold no mutable state, never draw randomness, and
// observe running attempts in the host's (deterministic) launch order,
// so a given event sequence always yields the same decisions and
// exports stay byte-identical across thread counts.
//
// Three kinds:
//  - kBaseline   Hadoop-style: duplicate the laggard with the most
//                remaining work once it is overdue, preferring tasks
//                local to the asking node, gated by a global slack
//                profitability test. Byte-identical to the historical
//                hardcoded scheduler at default config.
//  - kCalibrated Eq. 5-driven: a task is a laggard when its realized
//                running time exceeds the executing node's
//                placement-time E[T] quote by a learned margin scaled
//                with the cluster calibration ratio (PR 5's
//                CalibrationTracker). Falls back to the baseline
//                overdue rule for nodes without a finite quote.
//  - kRedundant  Launch every task on k nodes up-front, cancel the
//                losers on first finish (Behrouzi-Far & Soljanin);
//                wasted transfer bytes are charged to the run.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "cluster/node.h"
#include "common/units.h"
#include "sim/sim_config.h"

namespace adapt::sim {

// Read-only snapshot of one running attempt, in simulator launch order.
struct AttemptView {
  std::uint32_t task = 0;
  cluster::NodeIndex node = 0;
  bool alive = false;
  bool fetching = false;
  // Current projected finish (includes accumulated transfer stall).
  common::Seconds projected_finish = 0.0;
  // What the attempt projected when it was launched.
  common::Seconds nominal_end = 0.0;
  // Time left if the attempt is left alone.
  common::Seconds remaining = 0.0;
  // When the task's first attempt started; negative = not tracked.
  common::Seconds first_start = -1.0;
};

// What a policy may ask the simulator. Implemented privately by
// MapReduceSimulation; all queries are O(1) or O(replicas).
class SchedulerHost {
 public:
  virtual ~SchedulerHost() = default;

  virtual common::Seconds now() const = 0;
  // Running attempts, enumerated in deterministic order.
  virtual std::size_t running_count() const = 0;
  virtual AttemptView running_attempt(std::size_t i) const = 0;
  // True while the task is running (not pending, not done).
  virtual bool task_running(std::uint32_t task) const = 0;
  // Concurrent attempts currently executing the task.
  virtual std::size_t attempt_count(std::uint32_t task) const = 0;
  virtual bool is_local_to(std::uint32_t task,
                           cluster::NodeIndex node) const = 0;
  // Expected cost of running `task` fresh on `node` (fetch + execute);
  // negative when the node cannot run it.
  virtual double estimated_cost_on(cluster::NodeIndex node,
                                   std::uint32_t task) const = 0;
  // Cluster-wide realized/predicted ratio from the CalibrationTracker;
  // <= 0 when unknown (no tracker, or no pairs yet).
  virtual double cluster_calibration_ratio() const = 0;
};

class SchedulerPolicy {
 public:
  virtual ~SchedulerPolicy() = default;

  virtual std::string name() const = 0;
  virtual SchedulerKind kind() const = 0;

  // Hard cap on concurrent attempts per task; the simulator sizes its
  // per-task bookkeeping with this.
  virtual int max_attempts() const = 0;

  // Duplicates to launch alongside each fresh primary attempt; only
  // kRedundant returns nonzero.
  virtual int extra_initial_launches() const { return 0; }

  // Whether the reactive speculation path (idle-node duplication and
  // the stall wake-ups that feed it) is active at all.
  virtual bool speculation_enabled() const = 0;

  // How far past its launch-time projection an attempt must slip before
  // the simulator schedules post-outage stall wake-ups for it.
  virtual common::Seconds overdue_threshold() const = 0;

  // Idle `node` asks for a running task worth duplicating; nullopt =
  // nothing qualifies. The simulator resolves the data source and
  // launches the duplicate (or declines if no source is reachable).
  virtual std::optional<std::uint32_t> pick_speculative(
      cluster::NodeIndex node, const SchedulerHost& host) const = 0;
};

using SchedulerPtr = std::unique_ptr<const SchedulerPolicy>;

// Build the policy a SchedulerConfig denotes. `gamma` is the
// failure-free task time (auto overdue threshold = one gamma).
SchedulerPtr make_scheduler(const SchedulerConfig& config, double gamma);

}  // namespace adapt::sim
