#include "sim/mapreduce_sim.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "availability/predictor.h"
#include "placement/random_policy.h"

namespace adapt::sim {

namespace {

InterruptionInjector::Config injector_config(const SimJobConfig& config) {
  InterruptionInjector::Config c;
  c.replay_horizon = config.replay_horizon;
  c.randomize_replay_offset = config.randomize_replay_offset;
  c.replay_offsets = config.replay_offsets;
  c.initial_down_until = config.initial_down_until;
  if (config.churn.enabled) {
    c.departure_rate = config.churn.departure_rate;
    c.departure_rates = config.churn.departure_rates;
    c.burst_at = config.churn.burst_at;
    c.burst_fraction = config.churn.burst_fraction;
    c.domain_burst_at = config.churn.domain_burst_at;
    c.domain_burst_count = config.churn.domain_burst_count;
    c.domain_of = config.churn.domain_of;
    c.join_at = config.churn.join_at;
  }
  return c;
}

cluster::Network::Config network_config(const cluster::Cluster& cluster) {
  cluster::Network::Config config;
  config.uplink_bps.reserve(cluster.size());
  config.downlink_bps.reserve(cluster.size());
  for (const cluster::NodeSpec& node : cluster.nodes) {
    config.uplink_bps.push_back(node.uplink_bps);
    config.downlink_bps.push_back(node.downlink_bps);
  }
  config.origin_uplink_bps = cluster.origin_uplink_bps;
  config.fifo_admission = cluster.fifo_uplinks;
  return config;
}

}  // namespace

std::vector<std::vector<cluster::NodeIndex>> replica_map(
    const hdfs::NameNode& namenode, hdfs::FileId file) {
  std::vector<std::vector<cluster::NodeIndex>> out;
  const hdfs::FileInfo& info = namenode.file(file);
  out.reserve(info.blocks.size());
  for (const hdfs::BlockId block : info.blocks) {
    out.push_back(namenode.block(block).replicas);
  }
  return out;
}

MapReduceSimulation::MapReduceSimulation(const cluster::Cluster& cluster,
                                         const hdfs::NameNode& namenode,
                                         hdfs::FileId file,
                                         SimJobConfig config)
    : MapReduceSimulation(cluster, namenode, nullptr, file,
                          std::move(config)) {}

MapReduceSimulation::MapReduceSimulation(const cluster::Cluster& cluster,
                                         hdfs::NameNode& namenode,
                                         hdfs::FileId file,
                                         SimJobConfig config)
    : MapReduceSimulation(cluster, namenode, &namenode, file,
                          std::move(config)) {}

MapReduceSimulation::MapReduceSimulation(const cluster::Cluster& cluster,
                                         const hdfs::NameNode& namenode,
                                         hdfs::NameNode* mutable_namenode,
                                         hdfs::FileId file,
                                         SimJobConfig config)
    : cluster_(cluster),
      namenode_(namenode),
      file_(file),
      config_(config),
      network_(network_config(cluster)),
      rng_(common::Rng(config.seed).fork(0x5157)),
      board_(replica_map(namenode, file), cluster.size()),
      injector_(queue_, cluster.nodes, *this,
                common::Rng(config.seed).fork(0x1417),
                injector_config(config)),
      mutable_namenode_(mutable_namenode) {
  config_.validate();  // throws ConfigError naming the bad field
  // Collapse the deprecated flat speculation knobs into the scheduler
  // sub-struct once; every internal read goes through config_.scheduler.
  config_.scheduler = config_.effective_scheduler();
  scheduler_ = make_scheduler(config_.scheduler, config_.gamma);
  node_state_.resize(cluster.size());
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    node_state_[i].free_slots = cluster.nodes[i].slots;
  }
  for (TaskId t = 0; t < board_.task_count(); ++t) {
    for (const cluster::NodeIndex home : board_.home_nodes(t)) {
      ++node_state_[home].undone_home;
    }
  }
  board_.set_tracer(config_.tracer);
  if (config_.metrics != nullptr) {
    hist_transfer_ = config_.metrics->histogram(
        "sim.transfer_duration_s",
        obs::MetricsRegistry::exponential_bounds(1.0, 2.0, 14));
    hist_outage_ = config_.metrics->histogram(
        "sim.outage_duration_s",
        obs::MetricsRegistry::exponential_bounds(1.0, 2.0, 18));
    hist_wait_ = config_.metrics->histogram(
        "net.admission_wait_s",
        obs::MetricsRegistry::exponential_bounds(0.5, 2.0, 14));
    // Realized task completion times are heavy-tailed (a single outage
    // multiplies them); log-spaced bounds keep the tail out of the
    // overflow bucket.
    hist_task_time_ = config_.metrics->histogram(
        "sim.task_completion_s",
        obs::MetricsRegistry::log_bounds(8.0, 8192.0, 21));
    if (config_.sample_dt > 0.0) {
      gauge_nodes_up_ = config_.metrics->gauge("sim.nodes_up");
      gauge_tasks_done_ = config_.metrics->gauge("sim.tasks_done");
      gauge_attempts_running_ =
          config_.metrics->gauge("sim.attempts_running");
      if (config_.churn.enabled) {
        gauge_under_replicated_ =
            config_.metrics->gauge("sim.under_replicated");
      }
      if (config_.calibration != nullptr) {
        gauge_cal_ratio_ = config_.metrics->gauge("calibration.ratio");
      }
    }
    if (config_.calibration != nullptr) {
      ctr_drift_alarms_ = config_.metrics->counter("calibration.drift_alarms");
    }
  }
  // The calibrated scheduler compares realized running time against the
  // placement-time quote, so it needs first-start stamps even without a
  // metrics registry or calibration tracker.
  if (config_.metrics != nullptr || config_.calibration != nullptr ||
      config_.scheduler.kind == SchedulerKind::kCalibrated) {
    task_first_start_.assign(board_.task_count(), -1.0);
  }
  departed_at_.assign(node_state_.size(), -1.0);

  if (config_.origin_fetch_delay >= 0) {
    origin_delay_ = config_.origin_fetch_delay;
  } else {
    double max_down = 0.0;
    for (const cluster::NodeSpec& node : cluster.nodes) {
      max_down = std::max(max_down, node.downlink_bps);
    }
    origin_delay_ = common::transfer_time(
        cluster.block_size_bytes,
        std::min(network_.origin_uplink_bps(), max_down));
  }

  if (config_.rebalance.enabled &&
      (config_.calibration == nullptr || config_.sample_dt <= 0.0 ||
       config_.truth_params.empty())) {
    throw std::invalid_argument(
        "simulation: rebalance requires calibration, sample_dt > 0 and "
        "truth_params (the loop is driven by CUSUM drift alarms)");
  }
  if (config_.churn.enabled) {
    if (mutable_namenode_ == nullptr) {
      throw std::invalid_argument(
          "simulation: churn requires the mutable-NameNode constructor");
    }
    init_churn();
  }
}

// ---------------------------------------------------------------------
// Churn & recovery
// ---------------------------------------------------------------------

void MapReduceSimulation::init_churn() {
  const SimJobConfig::ChurnConfig& churn = config_.churn;
  collector_.emplace(node_state_.size(),
                     cluster::HeartbeatCollector::Config{
                         churn.heartbeat_interval,
                         churn.heartbeat_miss_threshold, churn.dead_timeout});
  declared_dead_.assign(node_state_.size(), false);
  dead_check_.resize(node_state_.size());
  task_lost_.assign(board_.task_count(), false);

  // task t <-> block first_block_ + t; create_file allocates contiguous
  // block ids, which the loss bookkeeping relies on.
  const hdfs::FileInfo& info = namenode_.file(file_);
  first_block_ = info.blocks.empty() ? 0 : info.blocks.front();
  for (std::size_t i = 0; i < info.blocks.size(); ++i) {
    if (info.blocks[i] != first_block_ + i) {
      throw std::logic_error("churn: file blocks are not contiguous");
    }
  }

  rereplicator_.emplace(
      queue_, *mutable_namenode_, network_, cluster_.block_size_bytes,
      churn.rereplication, common::Rng(config_.seed).fork(0xDEAD),
      [this](cluster::NodeIndex n) { return node_state_[n].up; });
  rereplicator_->set_tracer(config_.tracer);
  rereplicator_->set_metrics(config_.metrics);
  rereplicator_->set_spans(config_.spans, &queue_);
  rereplicator_->set_on_replicated(
      [this](hdfs::BlockId block, cluster::NodeIndex dst) {
        on_block_replicated(block, dst);
      });
  if (config_.rebalance.enabled) {
    migration_.emplace(
        queue_, *mutable_namenode_, network_, cluster_.block_size_bytes,
        config_.rebalance.migration, common::Rng(config_.seed).fork(0xBEEF),
        [this](cluster::NodeIndex n) { return node_state_[n].up; });
    migration_->set_tracer(config_.tracer);
    migration_->set_metrics(config_.metrics);
    migration_->set_spans(config_.spans, &queue_);
    migration_->set_on_committed([this](hdfs::BlockId block,
                                        cluster::NodeIndex from,
                                        cluster::NodeIndex to) {
      on_migration_committed(block, from, to);
    });
    rebalance_rng_ = common::Rng(config_.seed).fork(0x0b1e);
  }
  refresh_policy();
  if (churn.gray_enabled()) init_gray();
}

void MapReduceSimulation::refresh_policy() {
  if (!rereplicator_) return;
  span_begin("policy_refresh");
  placement::PolicyPtr policy;
  if (config_.churn.policy_factory) {
    policy = config_.churn.policy_factory(collector_->estimates(queue_.now()));
  } else {
    policy = placement::make_random_policy(node_state_.size());
  }
  rereplicator_->set_policy(policy);
  if (migration_) {
    migration_->set_policy(policy);
    rebalance_policy_ = std::move(policy);
  }
  span_end();
}

std::optional<TaskId> MapReduceSimulation::task_of(
    hdfs::BlockId block) const {
  if (block < first_block_) return std::nullopt;
  const hdfs::BlockId offset = block - first_block_;
  if (offset >= board_.task_count()) return std::nullopt;
  return static_cast<TaskId>(offset);
}

void MapReduceSimulation::maybe_declare_dead(cluster::NodeIndex node) {
  if (!collector_) return;
  if (node_state_[node].up || declared_dead_[node]) return;
  if (!collector_->believed_dead(node, queue_.now())) return;
  declare_dead(node);
}

void MapReduceSimulation::declare_dead(cluster::NodeIndex node) {
  NodeState& ns = node_state_[node];
  declared_dead_[node] = true;
  ++result_.nodes_dead;
  const common::Seconds now = queue_.now();

  // Message-level detection can be wrong: a node behind a partition or a
  // lossy link is declared dead while it keeps running. Only the
  // NameNode's metadata is written off — the node's attempts (and the
  // transfers it is serving) continue and may still win.
  if (ns.up) {
    ++result_.false_dead_declarations;
    if (!false_declared_.empty()) false_declared_[node] = true;
  } else {
    // The DFS client gives up the moment the NameNode declares the
    // source dead: abort transfers still stalled on it (they would
    // otherwise wait out the full client timeout for a node that is not
    // coming back).
    const std::vector<AttemptId> outgoing = ns.outgoing_fetches;
    for (const AttemptId id : outgoing) {
      const Attempt& a = attempts_[id];
      if (!a.alive) continue;
      const cluster::NodeIndex dst = a.node;
      kill_attempt(id, KillReason::kSourceTimeout);
      dispatch(dst);
    }
    ns.stall_timeout_event.cancel();
    network_.reset_uplink(node, now);
  }

  // Its downtime can no longer delay the job once the replicas are
  // written off and the tasks re-homed; stop charging recovery.
  if (ns.recovery_open >= 0.0) {
    result_.overhead.recovery +=
        (now - ns.recovery_open) * cluster_.nodes[node].slots;
    ns.recovery_open = -1.0;
  }
  ns.undone_home = 0;

  const std::vector<hdfs::BlockId> affected =
      mutable_namenode_->mark_node_dead(node);
  result_.replicas_dropped += affected.size();
  {
    obs::TraceRecord r;
    r.type = obs::EventType::kNodeDead;
    r.node = node;
    r.aux = static_cast<std::uint32_t>(affected.size());
    trace(r);
  }

  for (const hdfs::BlockId block : affected) {
    {
      // Per-replica write-off detail: which copy was dropped, and
      // whether the holder was actually still up (false positive).
      obs::TraceRecord r;
      r.type = obs::EventType::kReplicaWriteoff;
      r.task = block;
      r.node = node;
      r.aux = ns.up ? 1 : 0;
      trace(r);
    }
    const std::optional<TaskId> task = task_of(block);
    // A re-replica placed after the task finished was never registered
    // with the board (on_block_replicated skips Done tasks).
    if (task && board_.is_local_to(*task, node)) {
      board_.remove_home(*task, node);
    }
    if (mutable_namenode_->block(block).replicas.empty()) {
      ++result_.blocks_lost;
      const bool recoverable = config_.allow_origin_fetch;
      obs::TraceRecord r;
      r.type = obs::EventType::kReplicaLost;
      r.task = block;
      r.aux = recoverable ? 1 : 0;
      trace(r);
      if (task) maybe_mark_lost(*task);
    } else if (rereplicator_) {
      rereplicator_->enqueue(block);
    }
  }
  refresh_policy();
}

void MapReduceSimulation::maybe_mark_lost(TaskId task) {
  if (!collector_ || config_.allow_origin_fetch) return;
  if (task_lost_[task]) return;
  if (board_.status(task) == TaskStatus::kDone) return;
  // A live attempt that already holds the block's bytes can still win.
  if (board_.attempt_count(task) > 0) return;
  const hdfs::BlockId block = first_block_ + task;
  if (!mutable_namenode_->block(block).replicas.empty()) return;
  task_lost_[task] = true;
  ++tasks_lost_;
  result_.lost_blocks.push_back({block, task});
}

void MapReduceSimulation::on_block_replicated(hdfs::BlockId block,
                                              cluster::NodeIndex dst) {
  // A restored copy is streamed from a verified survivor: fresh bytes
  // overwrite any rot the destination disk previously held.
  clear_corrupt(block, dst);
  const std::optional<TaskId> task = task_of(block);
  if (!task) return;
  if (board_.status(*task) == TaskStatus::kDone) return;
  board_.add_home(*task, dst);
  ++node_state_[dst].undone_home;
  {
    obs::TraceRecord r;
    r.type = obs::EventType::kPlacement;
    r.task = block;
    r.node = dst;
    r.aux = static_cast<std::uint32_t>(
        mutable_namenode_->block(block).replicas.size() - 1);
    trace(r);
  }
  // The task may sit parked with every other replica offline; the new
  // copy makes it schedulable again.
  board_.revive_stalled_for(dst, queue_.now());
  if (node_state_[dst].up && node_state_[dst].free_slots > 0) {
    dispatch(dst);
  } else {
    wake_for_task(*task);
  }
}

// ---------------------------------------------------------------------
// Gray failures
// ---------------------------------------------------------------------

void MapReduceSimulation::init_gray() {
  const SimJobConfig::ChurnConfig& churn = config_.churn;
  gray_ = true;
  message_mode_ = churn.message_level();
  hb_rng_ = common::Rng(config_.seed).fork(0xb347);
  corrupt_rng_ = common::Rng(config_.seed).fork(0xb17f);
  slow_factor_.assign(node_state_.size(), 1.0);

  if (message_mode_) {
    partition_count_.assign(node_state_.size(), 0);
    deferred_dead_.assign(node_state_.size(), false);
    false_declared_.assign(node_state_.size(), false);
    partition_nodes_.resize(churn.partitions.size());
    for (std::size_t p = 0; p < churn.partitions.size(); ++p) {
      const SimJobConfig::ChurnConfig::Partition& part = churn.partitions[p];
      std::vector<cluster::NodeIndex>& members = partition_nodes_[p];
      if (part.domain >= 0) {
        if (churn.domain_of.empty()) {
          throw std::invalid_argument(
              "simulation: domain partition requires churn.domain_of");
        }
        for (cluster::NodeIndex n = 0; n < node_state_.size(); ++n) {
          if (n < churn.domain_of.size() &&
              churn.domain_of[n] == static_cast<std::uint32_t>(part.domain)) {
            members.push_back(n);
          }
        }
      } else {
        for (const std::uint32_t n : part.nodes) {
          if (n >= node_state_.size()) {
            throw std::invalid_argument(
                "simulation: partition node out of range");
          }
          members.push_back(n);
        }
      }
      queue_.schedule(part.at, [this, p] { start_partition(p); });
      queue_.schedule(part.heal_at, [this, p] { heal_partition(p); });
    }
    // Round 0 doubles as registration (see on_heartbeat_round).
    queue_.schedule(0.0, [this] { on_heartbeat_round(); });
  }

  for (std::size_t s = 0; s < churn.stragglers.size(); ++s) {
    const SimJobConfig::ChurnConfig::Straggler& st = churn.stragglers[s];
    if (st.node >= node_state_.size()) {
      throw std::invalid_argument("simulation: straggler node out of range");
    }
    queue_.schedule(st.at, [this, s] { start_straggler(s); });
    queue_.schedule(st.until, [this, s] { end_straggler(s); });
  }

  for (const SimJobConfig::ChurnConfig::Corruption& c : churn.corruptions) {
    if (c.block >= board_.task_count()) {
      throw std::invalid_argument("simulation: corruption block out of range");
    }
    const hdfs::BlockId block = first_block_ + c.block;
    const std::int64_t hint = c.node;
    queue_.schedule(c.at, [this, block, hint] {
      inject_corruption(block, hint);
    });
  }
  if (churn.bitrot_rate > 0.0) {
    queue_.schedule(corrupt_rng_.exponential(churn.bitrot_rate),
                    [this] { on_bitrot(); });
  }
  if (churn.scan_interval > 0.0) {
    queue_.schedule(churn.scan_interval, [this] { on_scan(); });
  }
}

void MapReduceSimulation::on_heartbeat_round() {
  const common::Seconds now = queue_.now();
  for (cluster::NodeIndex i = 0; i < node_state_.size(); ++i) {
    bool delivered = false;
    if (node_state_[i].up && !is_partitioned(i)) {
      bool lost = false;
      if (config_.churn.heartbeat_loss_prob > 0.0) {
        lost = hb_rng_.uniform() < config_.churn.heartbeat_loss_prob;
      }
      if (lost) {
        ++result_.heartbeats_lost;
      } else {
        delivered = true;
      }
    }
    if (delivered) {
      const bool was_declared = declared_dead_[i];
      const bool was_deferred = deferred_dead_[i];
      collector_->observe_heartbeat(i, now);
      if (was_declared) {
        const auto [restored, trimmed] = revive_declared_dead(i);
        if (false_declared_[i]) {
          false_declared_[i] = false;
          obs::TraceRecord r;
          r.type = obs::EventType::kNodeRevived;
          r.node = i;
          r.task = restored;
          r.aux = trimmed;
          trace(r);
        }
        // Restored homes may unpark tasks whose every other holder was
        // written off; the node is up (it just beat), so let it pull.
        board_.revive_stalled_for(i, now);
        if (node_state_[i].free_slots > 0) dispatch(i);
      } else if (was_deferred) {
        rescue_deferred(i);
      }
    } else if (!hb_registered_) {
      // Registration round: a node silent at t = 0 would otherwise stay
      // in the collector's transition-mode default (believed up forever)
      // since only delivered beats flip a node to message mode. Arm
      // transition-style detection so a permanently absent node is still
      // declared eventually.
      collector_->notify_down(i, now);
    }
  }
  hb_registered_ = true;
  sweep_believed_dead();
  // Keep beating unless the whole pool permanently departed — then the
  // queue must drain so run() can declare no_live_nodes.
  if (!(injector_.departures() >= node_state_.size())) {
    queue_.schedule(now + config_.churn.heartbeat_interval,
                    [this] { on_heartbeat_round(); });
  }
}

void MapReduceSimulation::sweep_believed_dead() {
  const common::Seconds now = queue_.now();
  for (cluster::NodeIndex i = 0; i < node_state_.size(); ++i) {
    if (declared_dead_[i] || deferred_dead_[i]) continue;
    if (!collector_->believed_dead(i, now)) continue;
    note_believed_dead(i);
  }
}

void MapReduceSimulation::note_believed_dead(cluster::NodeIndex node) {
  const common::Seconds now = queue_.now();
  if (config_.churn.safe_mode_threshold > 0.0) {
    // A mass of believed-dead declarations inside one detection window
    // smells like a partition, not real deaths: hold the write-offs.
    const common::Seconds window = collector_->detection_latency();
    auto& times = recent_dead_times_;
    times.erase(
        std::remove_if(times.begin(), times.end(),
                       [&](common::Seconds t) { return now - t > window; }),
        times.end());
    times.push_back(now);
    if (!safe_mode_) {
      std::size_t fleet = 0;
      for (cluster::NodeIndex i = 0; i < node_state_.size(); ++i) {
        if (!declared_dead_[i]) ++fleet;
      }
      const double fraction =
          fleet > 0 ? static_cast<double>(times.size()) /
                          static_cast<double>(fleet)
                    : 1.0;
      if (fraction >= config_.churn.safe_mode_threshold) {
        safe_mode_ = true;
        ++result_.safe_mode_entries;
        obs::TraceRecord r;
        r.type = obs::EventType::kSafeModeEnter;
        r.aux = static_cast<std::uint32_t>(times.size());
        r.v0 = fraction;
        trace(r);
        safe_mode_event_.cancel();
        safe_mode_event_ = queue_.schedule(
            now + config_.churn.safe_mode_hold,
            [this] { on_safe_mode_expire(); });
      }
    }
    if (safe_mode_) {
      deferred_dead_[node] = true;
      ++deferred_count_;
      ++result_.safe_mode_deferrals;
      return;
    }
  }
  declare_dead(node);
}

void MapReduceSimulation::on_safe_mode_expire() {
  if (!safe_mode_) return;
  safe_mode_ = false;
  std::uint32_t applied = 0;
  for (cluster::NodeIndex i = 0; i < node_state_.size(); ++i) {
    if (!deferred_dead_[i]) continue;
    deferred_dead_[i] = false;
    ++applied;
    declare_dead(i);
  }
  deferred_count_ = 0;
  obs::TraceRecord r;
  r.type = obs::EventType::kSafeModeExit;
  r.task = applied;
  r.aux = applied == 0 ? 1 : 0;
  trace(r);
}

void MapReduceSimulation::rescue_deferred(cluster::NodeIndex node) {
  deferred_dead_[node] = false;
  if (deferred_count_ > 0) --deferred_count_;
  ++result_.safe_mode_rescues;
  if (safe_mode_ && deferred_count_ == 0) {
    // Everyone the window suspected has reported back: heal out early
    // with no write-off at all.
    safe_mode_ = false;
    safe_mode_event_.cancel();
    obs::TraceRecord r;
    r.type = obs::EventType::kSafeModeExit;
    r.task = 0;
    r.aux = 1;
    trace(r);
  }
}

std::pair<std::uint32_t, std::uint32_t>
MapReduceSimulation::revive_declared_dead(cluster::NodeIndex node) {
  // Declared dead, then heard from again: the node's disk still holds
  // every written-off replica. revive_node acts as a block report —
  // copies of blocks still under target are re-registered; blocks
  // re-replication already refilled shed their excess copy (preferring a
  // holder whose domain held a duplicate).
  NodeState& ns = node_state_[node];
  declared_dead_[node] = false;
  ++result_.nodes_resurrected;
  const hdfs::NameNode::ReviveReport report =
      mutable_namenode_->revive_node(node);
  const common::Seconds now = queue_.now();
  for (const hdfs::BlockId block : report.restored) {
    {
      obs::TraceRecord r;
      r.type = obs::EventType::kReplicaRestore;
      r.task = block;
      r.node = node;
      trace(r);
    }
    const std::optional<TaskId> task = task_of(block);
    if (!task || board_.status(*task) == TaskStatus::kDone) continue;
    if (!board_.is_local_to(*task, node)) {
      board_.add_home(*task, node);
      ++ns.undone_home;
    }
    if (task_lost_[*task]) {
      // The block was unrecoverable; its returned disk copy makes
      // the task runnable again.
      task_lost_[*task] = false;
      --tasks_lost_;
      auto& lost = result_.lost_blocks;
      lost.erase(std::remove_if(lost.begin(), lost.end(),
                                [&](const JobResult::LostBlock& lb) {
                                  return lb.block == block;
                                }),
                 lost.end());
    }
  }
  for (const hdfs::NameNode::ReplicaDrop& drop : report.trimmed) {
    {
      obs::TraceRecord r;
      r.type = obs::EventType::kReplicaTrim;
      r.task = drop.block;
      r.node = drop.node;
      trace(r);
    }
    // Trimming deletes the physical copy, and any rot on it.
    clear_corrupt(drop.block, drop.node);
    // drop.node == node means the disk copy itself was discarded:
    // it never reached the board, nothing to unwind.
    if (drop.node == node) continue;
    const std::optional<TaskId> task = task_of(drop.block);
    if (!task || board_.status(*task) == TaskStatus::kDone) continue;
    if (!board_.is_local_to(*task, drop.node)) continue;
    board_.remove_home(*task, drop.node);
    NodeState& vs = node_state_[drop.node];
    if (vs.undone_home > 0 && --vs.undone_home == 0 &&
        vs.recovery_open >= 0.0) {
      result_.overhead.recovery +=
          (now - vs.recovery_open) * cluster_.nodes[drop.node].slots;
      vs.recovery_open = -1.0;
    }
  }
  refresh_policy();
  return {static_cast<std::uint32_t>(report.restored.size()),
          static_cast<std::uint32_t>(report.trimmed.size())};
}

void MapReduceSimulation::start_partition(std::size_t index) {
  for (const cluster::NodeIndex n : partition_nodes_[index]) {
    ++partition_count_[n];
  }
  obs::TraceRecord r;
  r.type = obs::EventType::kPartitionStart;
  r.aux = static_cast<std::uint32_t>(partition_nodes_[index].size());
  trace(r);
}

void MapReduceSimulation::heal_partition(std::size_t index) {
  for (const cluster::NodeIndex n : partition_nodes_[index]) {
    --partition_count_[n];
  }
  obs::TraceRecord r;
  r.type = obs::EventType::kPartitionHeal;
  r.aux = static_cast<std::uint32_t>(partition_nodes_[index].size());
  trace(r);
}

void MapReduceSimulation::start_straggler(std::size_t index) {
  const SimJobConfig::ChurnConfig::Straggler& st =
      config_.churn.stragglers[index];
  // Overlapping degradations: the worst factor wins until its end event.
  slow_factor_[st.node] = std::max(slow_factor_[st.node], st.slow_factor);
  obs::TraceRecord r;
  r.type = obs::EventType::kStragglerStart;
  r.node = st.node;
  r.v0 = st.slow_factor;
  trace(r);
}

void MapReduceSimulation::end_straggler(std::size_t index) {
  const SimJobConfig::ChurnConfig::Straggler& st =
      config_.churn.stragglers[index];
  slow_factor_[st.node] = 1.0;
  obs::TraceRecord r;
  r.type = obs::EventType::kStragglerEnd;
  r.node = st.node;
  trace(r);
}

bool MapReduceSimulation::replica_corrupt(hdfs::BlockId block,
                                          cluster::NodeIndex node) const {
  for (const auto& [b, n] : corrupt_) {
    if (b == block && n == node) return true;
  }
  return false;
}

void MapReduceSimulation::clear_corrupt(hdfs::BlockId block,
                                        cluster::NodeIndex node) {
  for (auto it = corrupt_.begin(); it != corrupt_.end(); ++it) {
    if (it->first == block && it->second == node) {
      corrupt_.erase(it);
      return;
    }
  }
}

void MapReduceSimulation::inject_corruption(hdfs::BlockId block,
                                            std::int64_t node_hint) {
  const std::vector<cluster::NodeIndex>& replicas =
      namenode_.block(block).replicas;
  cluster::NodeIndex victim;
  if (node_hint >= 0) {
    victim = static_cast<cluster::NodeIndex>(node_hint);
    if (std::find(replicas.begin(), replicas.end(), victim) ==
        replicas.end()) {
      return;  // the targeted copy no longer exists
    }
  } else {
    if (replicas.empty()) return;
    victim = replicas[corrupt_rng_.uniform_index(replicas.size())];
  }
  if (replica_corrupt(block, victim)) return;
  corrupt_.push_back({block, victim});
  ++result_.replicas_corrupted;
  obs::TraceRecord r;
  r.type = obs::EventType::kReplicaCorrupt;
  r.task = block;
  r.node = victim;
  trace(r);
}

void MapReduceSimulation::on_bitrot() {
  const std::size_t tasks = board_.task_count();
  if (tasks > 0) {
    const hdfs::BlockId block =
        first_block_ + corrupt_rng_.uniform_index(tasks);
    inject_corruption(block, /*node_hint=*/-1);
  }
  if (!(injector_.departures() >= node_state_.size())) {
    queue_.schedule(
        queue_.now() + corrupt_rng_.exponential(config_.churn.bitrot_rate),
        [this] { on_bitrot(); });
  }
}

void MapReduceSimulation::on_scan() {
  const std::size_t tasks = board_.task_count();
  const int budget = config_.churn.scan_blocks_per_sweep;
  for (int k = 0; k < budget && tasks > 0; ++k) {
    const hdfs::BlockId block = first_block_ + scan_cursor_;
    scan_cursor_ = (scan_cursor_ + 1) % tasks;
    ++result_.blocks_scanned;
    if (corrupt_.empty()) continue;
    // Copy: handle_corrupt_replica mutates the replica list.
    const std::vector<cluster::NodeIndex> holders =
        namenode_.block(block).replicas;
    for (const cluster::NodeIndex n : holders) {
      if (!node_state_[n].up) continue;  // can't read a down disk
      if (replica_corrupt(block, n)) handle_corrupt_replica(block, n, 2);
    }
  }
  if (!(injector_.departures() >= node_state_.size())) {
    queue_.schedule(queue_.now() + config_.churn.scan_interval,
                    [this] { on_scan(); });
  }
}

void MapReduceSimulation::handle_corrupt_replica(hdfs::BlockId block,
                                                 cluster::NodeIndex node,
                                                 std::uint32_t path) {
  clear_corrupt(block, node);
  ++result_.corrupt_reads;
  {
    obs::TraceRecord r;
    r.type = obs::EventType::kCorruptRead;
    r.reason = obs::TraceReason::kChecksum;
    r.task = block;
    r.node = node;
    r.aux = path;
    trace(r);
  }
  // The copy is useless: trim it from the metadata so no later read
  // picks it, re-home the task, and feed the block to recovery.
  mutable_namenode_->remove_replica(block, node);
  const std::optional<TaskId> task = task_of(block);
  if (task && board_.is_local_to(*task, node)) {
    board_.remove_home(*task, node);
    NodeState& hs = node_state_[node];
    if (hs.undone_home > 0 && --hs.undone_home == 0 &&
        hs.recovery_open >= 0.0) {
      result_.overhead.recovery +=
          (queue_.now() - hs.recovery_open) * cluster_.nodes[node].slots;
      hs.recovery_open = -1.0;
    }
  }
  if (mutable_namenode_->block(block).replicas.empty()) {
    ++result_.blocks_lost;
    const bool recoverable = config_.allow_origin_fetch;
    obs::TraceRecord r;
    r.type = obs::EventType::kReplicaLost;
    r.task = block;
    r.aux = recoverable ? 1 : 0;
    trace(r);
    if (task) maybe_mark_lost(*task);
  } else if (rereplicator_) {
    rereplicator_->enqueue(block);
  }
}

// ---------------------------------------------------------------------
// Online rebalancing
// ---------------------------------------------------------------------

void MapReduceSimulation::maybe_rebalance(std::uint32_t alarm_count) {
  const common::Seconds now = queue_.now();
  if (last_rebalance_at_ >= 0.0 &&
      now - last_rebalance_at_ < config_.rebalance.cooldown) {
    return;
  }
  last_rebalance_at_ = now;
  span_begin("rebalance_pass");
  ++result_.rebalance_triggers;

  // Re-estimate and rebuild the placement policies from the collector's
  // current (lambda, mu) beliefs — the drift alarm means the old
  // weights quote the wrong cluster.
  refresh_policy();

  // Eq. 5 quotes under the refreshed beliefs decide which replicas are
  // now badly placed: a holder quoting worse than hysteresis * the
  // median of live nodes has degraded enough to vacate.
  const std::vector<avail::InterruptionParams> est =
      collector_->estimates(now);
  avail::PerformancePredictor predictor(node_state_.size(), config_.gamma);
  for (std::size_t i = 0; i < est.size() && i < node_state_.size(); ++i) {
    predictor.set_params(i, est[i]);
  }
  const std::vector<double> quote = predictor.expected_task_times();
  std::vector<double> live_quotes;
  live_quotes.reserve(quote.size());
  for (std::size_t i = 0; i < quote.size(); ++i) {
    if (node_state_[i].up && !declared_dead_[i] &&
        std::isfinite(quote[i])) {
      live_quotes.push_back(quote[i]);
    }
  }
  std::uint32_t submitted = 0;
  if (!live_quotes.empty()) {
    std::sort(live_quotes.begin(), live_quotes.end());
    const double median = live_quotes[live_quotes.size() / 2];
    const double threshold = config_.rebalance.hysteresis * median;
    // The loop is symmetric: nodes whose refreshed quote dropped below
    // the live median are *preferred* destinations for the redraw, so
    // improved nodes attract data instead of merely no longer repelling
    // it. Falls back to the full eligible mask when no improved node is
    // eligible for a given block.
    cluster::NodeMask improved(node_state_.size());
    for (std::size_t i = 0; i < quote.size() && i < node_state_.size();
         ++i) {
      if (node_state_[i].up && !declared_dead_[i] &&
          std::isfinite(quote[i]) && quote[i] < median) {
        improved.set(i);
      }
    }
    const hdfs::FileInfo& info = namenode_.file(file_);
    for (const hdfs::BlockId block : info.blocks) {
      const std::optional<TaskId> task = task_of(block);
      if (task && board_.status(*task) == TaskStatus::kDone) continue;
      // One in-flight move per block: a holder being vacated by an
      // earlier pass is still listed in replicas, and vacating it a
      // second time would inflate the replica count on commit.
      bool block_pending = false;
      for (const hdfs::ReplicaMove& m : namenode_.pending_moves()) {
        if (m.block == block) {
          block_pending = true;
          break;
        }
      }
      if (block_pending) continue;
      const std::vector<cluster::NodeIndex> holders =
          namenode_.block(block).replicas;
      for (std::size_t r = 0; r < holders.size(); ++r) {
        const cluster::NodeIndex holder = holders[r];
        const bool degraded =
            std::isfinite(quote[holder])
                ? quote[holder] > threshold
                : true;  // +inf quote: the node looks unusable
        if (!degraded) continue;
        cluster::NodeMask eligible =
            mutable_namenode_->eligibility_for_new_replica(block);
        eligible.for_each_set([&](std::uint32_t n) {
          if (!node_state_[n].up) eligible.reset(n);
        });
        if (eligible.intersects(improved)) eligible &= improved;
        std::optional<cluster::NodeIndex> dst;
        if (eligible.any()) {
          dst = rebalance_policy_->choose_keyed(
              block, static_cast<std::uint32_t>(r), eligible,
              rebalance_rng_);
        }
        if (!dst) continue;  // nowhere better to put it right now
        mutable_namenode_->begin_move(block, holder, *dst);
        migration_->submit({block, holder, *dst});
        ++submitted;
      }
    }
  }
  result_.migrations_submitted += submitted;
  trace({.type = obs::EventType::kRebalanceTrigger,
         .task = submitted,
         .aux = alarm_count});
  span_end();
}

void MapReduceSimulation::on_migration_committed(hdfs::BlockId block,
                                                 cluster::NodeIndex from,
                                                 cluster::NodeIndex to) {
  // The source copy is deleted and the destination got fresh verified
  // bytes — any rot on either side of the move is gone.
  clear_corrupt(block, from);
  clear_corrupt(block, to);
  const std::optional<TaskId> task = task_of(block);
  if (!task || board_.status(*task) == TaskStatus::kDone) return;
  const common::Seconds now = queue_.now();
  if (board_.is_local_to(*task, from)) {
    board_.remove_home(*task, from);
    NodeState& fs = node_state_[from];
    if (fs.undone_home > 0 && --fs.undone_home == 0 &&
        fs.recovery_open >= 0.0) {
      // The vacated node is down but nothing of the job depends on it
      // anymore; stop charging its downtime to recovery.
      result_.overhead.recovery +=
          (now - fs.recovery_open) * cluster_.nodes[from].slots;
      fs.recovery_open = -1.0;
    }
  }
  board_.add_home(*task, to);
  ++node_state_[to].undone_home;
  {
    obs::TraceRecord r;
    r.type = obs::EventType::kPlacement;
    r.task = block;
    r.node = to;
    r.aux = static_cast<std::uint32_t>(
        mutable_namenode_->block(block).replicas.size() - 1);
    trace(r);
  }
  board_.revive_stalled_for(to, now);
  if (node_state_[to].up && node_state_[to].free_slots > 0) {
    dispatch(to);
  } else {
    wake_for_task(*task);
  }
}

// ---------------------------------------------------------------------
// Time-series sampling & calibration
// ---------------------------------------------------------------------

void MapReduceSimulation::on_sample() {
  span_begin("heartbeat_sweep");
  const common::Seconds now = queue_.now();
  if (config_.metrics != nullptr) {
    obs::MetricsRegistry& m = *config_.metrics;
    std::size_t up = 0;
    for (const NodeState& ns : node_state_) up += ns.up ? 1u : 0u;
    m.set(gauge_nodes_up_, static_cast<double>(up));
    m.set(gauge_tasks_done_, static_cast<double>(board_.done_count()));
    m.set(gauge_attempts_running_, static_cast<double>(running_.size()));
    if (rereplicator_) {
      m.set(gauge_under_replicated_,
            static_cast<double>(rereplicator_->backlog()));
    }
    if (config_.calibration != nullptr) {
      m.set(gauge_cal_ratio_, config_.calibration->cluster_ratio());
    }
  }
  if (config_.calibration != nullptr && collector_ &&
      !config_.truth_params.empty()) {
    const std::vector<avail::InterruptionParams> est =
        collector_->estimates(now);
    const std::size_t n = std::min(est.size(), config_.truth_params.size());
    std::vector<double> lambda_hat(n);
    std::vector<double> mu_hat(n);
    std::vector<double> lambda_truth(n);
    std::vector<double> mu_truth(n);
    std::vector<common::Seconds> changed(n, -1.0);
    for (std::size_t i = 0; i < n; ++i) {
      lambda_hat[i] = est[i].lambda;
      mu_hat[i] = est[i].mu;
      lambda_truth[i] = config_.truth_params[i].lambda;
      mu_truth[i] = config_.truth_params[i].mu;
      changed[i] = departed_at_[i];
    }
    const std::vector<obs::DriftAlarm> alarms =
        config_.calibration->cusum_step(now, lambda_hat, mu_hat,
                                        lambda_truth, mu_truth, changed);
    for (const obs::DriftAlarm& alarm : alarms) {
      obs::TraceRecord r;
      r.type = obs::EventType::kPredictorDrift;
      r.node = alarm.node;
      r.v0 = alarm.score;
      r.v1 = alarm.latency;
      trace(r);
      if (config_.metrics != nullptr) {
        config_.metrics->add(ctr_drift_alarms_);
      }
    }
    if (migration_ && !alarms.empty()) {
      maybe_rebalance(static_cast<std::uint32_t>(alarms.size()));
    }
  }
  if (config_.metrics != nullptr) config_.metrics->sample(now);
  span_end();
  // Keep ticking unless the whole pool permanently departed — then the
  // queue must be allowed to drain so run() can declare no_live_nodes
  // instead of sampling forever.
  if (!(collector_ && injector_.departures() >= node_state_.size())) {
    queue_.schedule(now + config_.sample_dt, [this] { on_sample(); });
  }
}

void MapReduceSimulation::on_node_departed(cluster::NodeIndex node) {
  departed_at_[node] = queue_.now();
}

JobResult MapReduceSimulation::run() {
  result_ = JobResult{};
  result_.tasks = board_.task_count();
  if (config_.record_completion_times) {
    result_.completion_times.assign(board_.task_count(), -1.0);
    result_.winner_nodes.assign(board_.task_count(), 0);
  }

  {
    obs::TraceRecord r;
    r.type = obs::EventType::kJobStart;
    r.node = static_cast<std::uint32_t>(node_state_.size());
    r.task = static_cast<std::uint32_t>(board_.task_count());
    trace(r);
  }

  injector_.start();
  queue_.schedule(0.0, [this] {
    for (cluster::NodeIndex i = 0; i < node_state_.size(); ++i) {
      if (node_state_[i].up) dispatch(i);
    }
  });
  if (config_.sample_dt > 0.0 &&
      (config_.metrics != nullptr || config_.calibration != nullptr)) {
    queue_.schedule(config_.sample_dt, [this] { on_sample(); });
  }

  const bool done = queue_.run_until([this] {
    return board_.done_count() + tasks_lost_ >= board_.task_count();
  });
  if (!done) {
    if (!collector_) {
      throw std::logic_error(
          "simulation stalled: event queue drained before job completion");
    }
    // Churn run ran out of events with tasks unfinished: no live node can
    // make progress anymore (typically the whole pool departed). Report
    // the leftovers as lost instead of spinning.
    result_.failed = true;
    result_.failure = "no_live_nodes";
    for (TaskId t = 0; t < board_.task_count(); ++t) {
      if (board_.status(t) == TaskStatus::kDone || task_lost_[t]) continue;
      task_lost_[t] = true;
      ++tasks_lost_;
      result_.lost_blocks.push_back(
          {static_cast<hdfs::BlockId>(first_block_ + t), t});
    }
  } else if (tasks_lost_ > 0) {
    result_.failed = true;
    result_.failure = "data_loss";
  }
  result_.tasks_lost = tasks_lost_;

  result_.elapsed =
      result_.failed ? std::max(last_done_at_, queue_.now()) : last_done_at_;
  result_.locality =
      result_.tasks > 0
          ? static_cast<double>(result_.local_wins) /
                static_cast<double>(result_.tasks)
          : 0.0;
  result_.node_transitions = injector_.transitions();
  result_.events_processed = queue_.processed();
  result_.network_bytes = network_.bytes_transferred();
  if (collector_) {
    result_.nodes_departed = injector_.departures();
    const hdfs::NameNode::Stats& hs = mutable_namenode_->stats();
    result_.replicas_restored = hs.replicas_restored;
    result_.over_replicated_trimmed = hs.over_replicated_trimmed;
    result_.duplicate_replica_inserts = hs.duplicate_replica_inserts;
    const ReReplicator::Stats& rs = rereplicator_->stats();
    result_.rereplications = rs.completed;
    result_.rereplication_retries = rs.retries;
    result_.rereplication_giveups = rs.giveups;
    result_.rereplication_bytes = rs.bytes_moved;
    result_.max_under_replicated = rs.max_under_replicated;
  }
  for (const auto& [block, node] : corrupt_) {
    result_.corrupt_remaining.push_back({block, node});
  }
  if (migration_) {
    // Drop moves still queued or on the wire so a NameNode that
    // outlives this job carries no orphan space reservations.
    migration_->cancel_all();
    const MigrationDriver::Stats& ms = migration_->stats();
    result_.migrations_submitted = ms.submitted;
    result_.migrations_committed = ms.committed;
    result_.migration_retries = ms.retries;
    result_.migration_giveups = ms.giveups;
    result_.migration_redraws = ms.redraws;
    result_.migration_bytes = ms.bytes_moved;
  }

  // Close out costs still open at the instant the job finished.
  for (cluster::NodeIndex i = 0; i < node_state_.size(); ++i) {
    const NodeState& ns = node_state_[i];
    if (ns.recovery_open >= 0.0) {
      result_.overhead.recovery +=
          std::max(0.0, result_.elapsed - ns.recovery_open) *
          cluster_.nodes[i].slots;
    }
    for (const AttemptId id : ns.attempts) {
      const Attempt& a = attempts_[id];
      if (a.alive && a.fetching) {
        // A still-stalled transfer stopped moving bytes when its source
        // went down; that span is the source's downtime, not migration
        // (mirrors the shift projected_fetch_end applies on resume).
        common::Seconds until = result_.elapsed;
        if (a.transfer_stalled) {
          const common::Seconds down_at = node_state_[a.fetch_src].down_at;
          if (down_at >= 0.0) until = std::min(until, down_at);
        }
        result_.overhead.migration += std::max(0.0, until - a.fetch.start);
      }
    }
  }

  // Lost tasks never delivered their payload: only completed tasks count
  // as base work (== tasks * gamma whenever the job succeeds).
  result_.overhead.base =
      static_cast<double>(board_.done_count()) * config_.gamma;
  result_.overhead.elapsed = result_.elapsed;
  // Capacity is slot-seconds: a node with s slots contributes s units of
  // wall-clock per second.
  std::size_t total_slots = 0;
  for (const cluster::NodeSpec& node : cluster_.nodes) {
    total_slots += static_cast<std::size_t>(node.slots);
  }
  result_.overhead.node_count = total_slots;
  result_.overhead.finalize();

  if (config_.tracer != nullptr) {
    obs::TraceRecord r;
    r.t = result_.elapsed;
    r.type = obs::EventType::kJobEnd;
    r.task = static_cast<std::uint32_t>(result_.tasks);
    config_.tracer->record(r);
  }
  if (config_.metrics != nullptr) {
    obs::MetricsRegistry& m = *config_.metrics;
    const auto add = [&m](const char* name, double v) {
      m.add(m.counter(name), v);
    };
    add("sim.tasks", static_cast<double>(result_.tasks));
    add("sim.attempts_started",
        static_cast<double>(result_.attempts_started));
    add("sim.attempts_failed", static_cast<double>(result_.attempts_failed));
    add("sim.attempts_killed", static_cast<double>(result_.attempts_killed));
    add("sim.local_wins", static_cast<double>(result_.local_wins));
    add("sim.remote_wins", static_cast<double>(result_.remote_wins));
    add("sim.origin_wins", static_cast<double>(result_.origin_wins));
    add("sim.transfers_started",
        static_cast<double>(result_.transfers_started));
    add("sim.transfers_aborted",
        static_cast<double>(result_.transfers_aborted));
    add("sim.node_transitions",
        static_cast<double>(result_.node_transitions));
    add("sim.events_processed",
        static_cast<double>(result_.events_processed));
    const cluster::Network::Stats& net = network_.stats();
    add("net.requests", static_cast<double>(net.requests));
    add("net.aborts", static_cast<double>(net.aborts));
    add("net.admission_wait_s_total", net.admission_wait);
    add("net.reclaimed_s_total", net.reclaimed);
    add("net.bytes_transferred",
        static_cast<double>(network_.bytes_transferred()));
    m.set(m.gauge("sim.elapsed_s_max"), result_.elapsed);
    // Churn counters appear only on churn runs so churn-free metric
    // output stays byte-identical to before.
    if (collector_) {
      add("sim.jobs_failed", result_.failed ? 1.0 : 0.0);
      add("sim.nodes_departed", static_cast<double>(result_.nodes_departed));
      add("sim.nodes_dead", static_cast<double>(result_.nodes_dead));
      add("sim.nodes_resurrected",
          static_cast<double>(result_.nodes_resurrected));
      add("sim.replicas_dropped",
          static_cast<double>(result_.replicas_dropped));
      add("sim.blocks_lost", static_cast<double>(result_.blocks_lost));
      add("sim.tasks_lost", static_cast<double>(result_.tasks_lost));
      add("hdfs.replicas_restored",
          static_cast<double>(result_.replicas_restored));
      add("hdfs.over_replicated_trimmed",
          static_cast<double>(result_.over_replicated_trimmed));
      add("hdfs.duplicate_replica_inserts",
          static_cast<double>(result_.duplicate_replica_inserts));
    }
    // Gray counters appear only when a gray knob is set, so crash-stop
    // churn metric output stays byte-identical to before.
    if (gray_) {
      add("sim.heartbeats_lost", static_cast<double>(result_.heartbeats_lost));
      add("sim.false_dead_declarations",
          static_cast<double>(result_.false_dead_declarations));
      add("sim.replicas_corrupted",
          static_cast<double>(result_.replicas_corrupted));
      add("sim.corrupt_reads", static_cast<double>(result_.corrupt_reads));
      add("sim.blocks_scanned", static_cast<double>(result_.blocks_scanned));
      add("sim.safe_mode_entries",
          static_cast<double>(result_.safe_mode_entries));
      add("sim.safe_mode_deferrals",
          static_cast<double>(result_.safe_mode_deferrals));
      add("sim.safe_mode_rescues",
          static_cast<double>(result_.safe_mode_rescues));
    }
    // Rebalance counters appear only with the loop on, so loop-off
    // metric output stays byte-identical to before.
    if (migration_) {
      add("sim.rebalance_triggers",
          static_cast<double>(result_.rebalance_triggers));
    }
    // Scheduler counters appear only with a non-baseline policy, so
    // default-scheduler metric output stays byte-identical to before.
    if (scheduler_->kind() != SchedulerKind::kBaseline) {
      add("scheduler.speculative_launches",
          static_cast<double>(result_.speculative_launches));
      add("scheduler.speculative_wins",
          static_cast<double>(result_.speculative_wins));
      add("scheduler.redundant_launches",
          static_cast<double>(result_.redundant_launches));
      add("scheduler.redundant_waste_bytes",
          static_cast<double>(result_.redundant_waste_bytes));
    }
  }
  return result_;
}

// ---------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------

void MapReduceSimulation::dispatch(cluster::NodeIndex node) {
  NodeState& ns = node_state_[node];
  if (!ns.up) return;
  ns.idle_flagged = false;
  while (ns.up && ns.free_slots > 0) {
    if (!assign_one(node)) {
      mark_idle(node);
      break;
    }
  }
  arm_ripe_wake();
}

bool MapReduceSimulation::assign_one(cluster::NodeIndex node) {
  const int extra = scheduler_->extra_initial_launches();
  if (auto task = board_.take_local(node)) {
    start_attempt(*task, node, node, /*speculative=*/false);
    if (extra > 0) launch_redundant(*task, node);
    return true;
  }
  if (config_.remote_execution) {
    std::optional<cluster::NodeIndex> src;
    if (auto task = board_.take_remote(
            queue_.now(), [this, &src](TaskId t) {
              src = usable_source(t);
              return src.has_value();
            })) {
      start_attempt(*task, node, *src, /*speculative=*/false);
      if (extra > 0) launch_redundant(*task, node);
      return true;
    }
  }
  if (config_.allow_origin_fetch) {
    if (auto task = board_.take_stalled(queue_.now(), origin_delay_)) {
      // A parked task can have regained a usable replica since it was
      // parked; prefer it over the origin.
      const auto src = usable_source(*task);
      start_attempt(*task, node, src.value_or(cluster::kOriginEndpoint),
                    /*speculative=*/false);
      if (extra > 0) launch_redundant(*task, node);
      return true;
    }
  }
  if (config_.scheduler.speculation && try_speculate(node)) return true;
  return false;
}

bool MapReduceSimulation::try_speculate(cluster::NodeIndex node) {
  // The policy prefers duplicating a slow attempt whose block already
  // lives here — this is both the paper's "interrupted task re-executed
  // on the same node" path and the rescue of local tasks held by remote
  // thieves stuck behind congested uplinks — falling back to the
  // globally slowest laggard. The simulator only resolves where the
  // duplicate reads its block from.
  const auto pick = scheduler_->pick_speculative(node, *this);
  if (!pick) return false;
  const TaskId task = *pick;
  cluster::NodeIndex src;
  if (board_.is_local_to(task, node)) {
    src = node;
  } else if (const auto remote = usable_source(task)) {
    src = *remote;
  } else if (config_.allow_origin_fetch) {
    src = cluster::kOriginEndpoint;
  } else {
    return false;
  }
  start_attempt(task, node, src, /*speculative=*/true);
  return true;
}

void MapReduceSimulation::launch_redundant(TaskId task,
                                           cluster::NodeIndex primary) {
  // The primary launch can dead-end (corrupt local read with no
  // fallback); duplicating a task that never started would run ahead of
  // its own board state.
  if (board_.status(task) != TaskStatus::kRunning ||
      board_.attempt_count(task) == 0) {
    return;
  }
  const std::size_t want = static_cast<std::size_t>(
      1 + scheduler_->extra_initial_launches());
  // Replica holders first (the duplicate reads locally), then any other
  // up node with a free slot, in index order — deterministic and
  // independent of dispatch history.
  const auto running_here = [&](cluster::NodeIndex n) {
    for (const AttemptId id : board_.attempts_of(task)) {
      if (attempts_[id].node == n) return true;
    }
    return false;
  };
  const auto try_launch = [&](cluster::NodeIndex cand) {
    const NodeState& ns = node_state_[cand];
    if (!ns.up || ns.free_slots <= 0) return;
    if (cand == primary || running_here(cand)) return;
    cluster::NodeIndex src;
    if (board_.is_local_to(task, cand)) {
      src = cand;
    } else if (const auto remote = usable_source(task)) {
      src = *remote;
    } else {
      // No reachable replica and duplicates never burn origin
      // bandwidth: degrade to fewer copies.
      return;
    }
    // start_attempt can dead-end (corrupt local read, nowhere to fall
    // back to) without launching; only a real launch is re-labelled
    // from the reactive-speculation counter to the up-front one.
    const std::uint64_t before = result_.speculative_launches;
    start_attempt(task, cand, src, /*speculative=*/true);
    if (result_.speculative_launches > before) {
      --result_.speculative_launches;
      ++result_.redundant_launches;
    }
  };
  for (const cluster::NodeIndex home : board_.home_nodes(task)) {
    if (board_.attempt_count(task) >= want) return;
    try_launch(home);
  }
  for (cluster::NodeIndex n = 0; n < node_state_.size(); ++n) {
    if (board_.attempt_count(task) >= want) return;
    try_launch(n);
  }
}

void MapReduceSimulation::mark_idle(cluster::NodeIndex node) {
  NodeState& ns = node_state_[node];
  if (!ns.idle_flagged) {
    ns.idle_flagged = true;
    idle_stack_.push_back(node);
  }
}

bool MapReduceSimulation::wake_one_idle() {
  while (!idle_stack_.empty()) {
    const cluster::NodeIndex node = idle_stack_.back();
    idle_stack_.pop_back();
    NodeState& ns = node_state_[node];
    if (!ns.idle_flagged) continue;
    ns.idle_flagged = false;
    if (ns.up && ns.free_slots > 0) {
      dispatch(node);
      return true;
    }
  }
  return false;
}

void MapReduceSimulation::arm_ripe_wake() {
  if (!config_.allow_origin_fetch) return;
  const auto park = board_.next_stalled_park();
  if (!park) return;
  const common::Seconds ripe_at = *park + origin_delay_;
  // Already-ripe tasks are picked up by take_stalled on the next regular
  // dispatch; arming for them would spin the event loop in place.
  if (ripe_at <= queue_.now()) return;
  if (ripe_wake_at_ >= 0.0 && ripe_wake_at_ <= ripe_at) return;
  ripe_wake_at_ = ripe_at;
  queue_.schedule(ripe_at, [this] { on_ripe_wake(); });
}

void MapReduceSimulation::on_ripe_wake() {
  ripe_wake_at_ = -1.0;
  // Hand ripe stalled tasks to idle nodes until either runs out; the
  // dispatched nodes pull the tasks through the normal assign path.
  while (true) {
    const auto park = board_.next_stalled_park();
    if (!park || queue_.now() - *park < origin_delay_) break;
    if (!wake_one_idle()) break;
  }
  arm_ripe_wake();
}

void MapReduceSimulation::wake_for_task(TaskId task) {
  for (const cluster::NodeIndex home : board_.home_nodes(task)) {
    NodeState& ns = node_state_[home];
    if (ns.up && ns.free_slots > 0) {
      dispatch(home);
      return;
    }
  }
  wake_one_idle();
}

// ---------------------------------------------------------------------
// Attempt lifecycle
// ---------------------------------------------------------------------

MapReduceSimulation::AttemptId MapReduceSimulation::alloc_attempt() {
  if (!attempt_free_list_.empty()) {
    const AttemptId id = attempt_free_list_.back();
    attempt_free_list_.pop_back();
    attempts_[id] = Attempt{};
    return id;
  }
  attempts_.emplace_back();
  return static_cast<AttemptId>(attempts_.size() - 1);
}

void MapReduceSimulation::free_attempt(AttemptId id) {
  attempt_free_list_.push_back(id);
}

void MapReduceSimulation::start_attempt(TaskId task, cluster::NodeIndex node,
                                        cluster::NodeIndex src,
                                        bool speculative) {
  NodeState& ns = node_state_[node];
  if (!ns.up || ns.free_slots <= 0) {
    throw std::logic_error("start_attempt: node cannot take work");
  }
  if (!corrupt_.empty() && src == node &&
      replica_corrupt(first_block_ + task, node)) {
    // The local read's checksum fails before any work starts: trim the
    // rotten copy and fall back to a remote holder, then the origin.
    handle_corrupt_replica(first_block_ + task, node, /*path=*/0);
    std::optional<cluster::NodeIndex> alt;
    if (config_.remote_execution) alt = usable_source(task);
    if (alt) {
      src = *alt;
    } else if (config_.allow_origin_fetch) {
      src = cluster::kOriginEndpoint;
    } else {
      // Nowhere to read from right now; the task stays pending and is
      // revived by recovery (or reported lost by handle_corrupt_replica).
      return;
    }
  }
  if (!speculative) {
    board_.mark_running(task);
  }

  const AttemptId id = alloc_attempt();
  Attempt& a = attempts_[id];
  a.task = task;
  a.node = node;
  a.alive = true;
  a.local = (src == node);
  a.speculative = speculative;
  --ns.free_slots;
  ns.attempts.push_back(id);
  a.running_index = static_cast<std::uint32_t>(running_.size());
  running_.push_back(id);
  board_.register_attempt(task, id);
  ++result_.attempts_started;
  if (speculative) ++result_.speculative_launches;

  const common::Seconds now = queue_.now();
  if (!task_first_start_.empty() && task_first_start_[task] < 0.0) {
    task_first_start_[task] = now;
  }
  if (a.local) {
    a.exec_start = now;
    // A degraded host executes slower; the launch projection keeps the
    // healthy rate so speculation sees the slippage.
    a.exec_end = now + config_.gamma * slow_factor(node);
    a.nominal_end = now + config_.gamma;
    a.event = queue_.schedule(a.exec_end,
                              [this, id] { on_attempt_complete(id); });
    {
      obs::TraceRecord r;
      r.type = obs::EventType::kAttemptStart;
      r.task = task;
      r.node = node;
      r.peer = node;
      r.aux = speculative ? 1 : 0;
      trace(r);
    }
    return;
  }

  a.from_origin = (src == cluster::kOriginEndpoint);
  a.fetch_src = src;
  a.fetching = true;
  a.fetch = network_.request(src, node, cluster_.block_size_bytes, now);
  a.nominal_end = a.fetch.end + config_.gamma;
  ++result_.transfers_started;
  if (config_.tracer != nullptr) {
    obs::TraceRecord r;
    r.type = obs::EventType::kAttemptStart;
    r.task = task;
    r.node = node;
    r.peer = src;
    r.aux = speculative ? 1 : 0;
    r.ticket = a.fetch.ticket;
    trace(r);
    r = obs::TraceRecord{};
    r.type = obs::EventType::kTransferRequest;
    r.task = task;
    r.node = node;
    r.peer = src;
    r.ticket = a.fetch.ticket;
    r.v0 = a.fetch.start;
    r.v1 = a.fetch.end;
    trace(r);
  }
  if (config_.metrics != nullptr) {
    config_.metrics->observe(hist_wait_, a.fetch.start - now);
  }
  if (!a.from_origin) {
    NodeState& src_state = node_state_[src];
    a.outgoing_index = static_cast<std::uint32_t>(
        src_state.outgoing_fetches.size());
    src_state.outgoing_fetches.push_back(id);
  }
  a.event = queue_.schedule(a.fetch.end, [this, id] { on_fetch_done(id); });
}

void MapReduceSimulation::on_fetch_done(AttemptId id) {
  Attempt& a = attempts_[id];
  if (!a.alive || !a.fetching) {
    throw std::logic_error("on_fetch_done: stale event");
  }
  result_.overhead.migration += a.fetch.duration();
  network_.on_transfer_complete(cluster_.block_size_bytes);
  if (config_.metrics != nullptr) {
    config_.metrics->observe(hist_transfer_, a.fetch.duration());
  }
  if (!a.from_origin) {
    // Unregister from the source's outgoing list.
    NodeState& src_state = node_state_[a.fetch_src];
    auto& list = src_state.outgoing_fetches;
    const std::uint32_t idx = a.outgoing_index;
    list[idx] = list.back();
    attempts_[list[idx]].outgoing_index = idx;
    list.pop_back();
  }
  if (!corrupt_.empty() && !a.from_origin &&
      replica_corrupt(first_block_ + a.task, a.fetch_src)) {
    // The received bytes fail their checksum: trim the rotten source
    // copy and restart the read inside the same attempt — next live
    // holder first, origin as the last resort. The launch projection is
    // untouched, so the repeated fetch reads as overdue to speculation.
    handle_corrupt_replica(first_block_ + a.task, a.fetch_src, /*path=*/1);
    std::optional<cluster::NodeIndex> alt = usable_source(a.task);
    cluster::NodeIndex src;
    if (alt) {
      src = *alt;
    } else if (config_.allow_origin_fetch) {
      src = cluster::kOriginEndpoint;
    } else {
      a.fetching = false;
      const cluster::NodeIndex dst = a.node;
      kill_attempt(id, KillReason::kChecksum);
      dispatch(dst);
      return;
    }
    a.from_origin = (src == cluster::kOriginEndpoint);
    a.fetch_src = src;
    a.fetch = network_.request(src, a.node, cluster_.block_size_bytes,
                               queue_.now());
    ++result_.transfers_started;
    {
      obs::TraceRecord r;
      r.type = obs::EventType::kTransferRequest;
      r.task = a.task;
      r.node = a.node;
      r.peer = src;
      r.ticket = a.fetch.ticket;
      r.v0 = a.fetch.start;
      r.v1 = a.fetch.end;
      trace(r);
    }
    if (!a.from_origin) {
      NodeState& alt_state = node_state_[src];
      a.outgoing_index =
          static_cast<std::uint32_t>(alt_state.outgoing_fetches.size());
      alt_state.outgoing_fetches.push_back(id);
    }
    a.event =
        queue_.schedule(a.fetch.end, [this, id] { on_fetch_done(id); });
    return;
  }
  a.fetching = false;
  a.exec_start = queue_.now();
  a.exec_end = queue_.now() + config_.gamma * slow_factor(a.node);
  a.event = queue_.schedule(a.exec_end,
                            [this, id] { on_attempt_complete(id); });
}

void MapReduceSimulation::on_attempt_complete(AttemptId id) {
  Attempt& a = attempts_[id];
  if (!a.alive || a.fetching) {
    throw std::logic_error("on_attempt_complete: stale event");
  }
  const TaskId task = a.task;
  const cluster::NodeIndex node = a.node;

  board_.mark_done(task);
  last_done_at_ = queue_.now();
  if (config_.record_completion_times) {
    result_.completion_times[task] = queue_.now();
    result_.winner_nodes[task] = node;
  }
  if (!task_first_start_.empty() && task_first_start_[task] >= 0.0) {
    // Realized completion time: winning finish minus the task's
    // first-ever attempt start, attributed to the winning node (an
    // approximation when a speculative duplicate wins, documented in
    // DESIGN.md §6d).
    const common::Seconds realized = queue_.now() - task_first_start_[task];
    if (config_.metrics != nullptr) {
      config_.metrics->observe(hist_task_time_, realized);
    }
    if (config_.calibration != nullptr) {
      config_.calibration->record_completion(node, realized);
    }
  }
  for (const cluster::NodeIndex home : board_.home_nodes(task)) {
    NodeState& hs = node_state_[home];
    if (--hs.undone_home == 0 && hs.recovery_open >= 0.0) {
      // The node is down but nothing of the job depends on it anymore.
      result_.overhead.recovery +=
          (queue_.now() - hs.recovery_open) * cluster_.nodes[home].slots;
      hs.recovery_open = -1.0;
    }
  }
  if (a.local) {
    ++result_.local_wins;
  } else if (a.from_origin) {
    ++result_.origin_wins;
  } else {
    ++result_.remote_wins;
  }
  if (a.speculative) ++result_.speculative_wins;
  {
    obs::TraceRecord r;
    r.type = obs::EventType::kAttemptFinish;
    r.task = task;
    r.node = node;
    r.aux = a.local ? 0 : a.from_origin ? 2 : 1;
    trace(r);
  }

  detach_attempt(id);

  // Kill the losing duplicates, if any (kill_attempt unregisters each
  // from the board, so iterate a copy).
  const std::vector<AttemptId> losers = board_.attempts_of(task);
  for (const AttemptId sibling : losers) {
    const cluster::NodeIndex sib_node = attempts_[sibling].node;
    kill_attempt(sibling, KillReason::kRedundant);
    dispatch(sib_node);
  }

  dispatch(node);
}

void MapReduceSimulation::detach_attempt(AttemptId id) {
  Attempt& a = attempts_[id];
  a.alive = false;
  a.event.cancel();

  // Remove from the running registry (swap-remove).
  const std::uint32_t ridx = a.running_index;
  running_[ridx] = running_.back();
  attempts_[running_[ridx]].running_index = ridx;
  running_.pop_back();

  // Remove from the hosting node.
  NodeState& ns = node_state_[a.node];
  const auto it = std::find(ns.attempts.begin(), ns.attempts.end(), id);
  if (it == ns.attempts.end()) {
    throw std::logic_error("detach_attempt: not registered on node");
  }
  *it = ns.attempts.back();
  ns.attempts.pop_back();
  if (ns.up) ++ns.free_slots;

  board_.unregister_attempt(a.task, id);

  free_attempt(id);
}

void MapReduceSimulation::kill_attempt(AttemptId id, KillReason reason) {
  const bool failed = reason != KillReason::kRedundant;
  Attempt& a = attempts_[id];
  if (!a.alive) throw std::logic_error("kill_attempt: already dead");
  const TaskId task = a.task;
  const common::Seconds now = queue_.now();

  const obs::TraceReason trace_reason =
      reason == KillReason::kNodeDown      ? obs::TraceReason::kNodeDown
      : reason == KillReason::kSourceTimeout
          ? obs::TraceReason::kSourceTimeout
      : reason == KillReason::kChecksum ? obs::TraceReason::kChecksum
                                        : obs::TraceReason::kRedundant;

  if (a.fetching) {
    result_.overhead.migration += std::max(0.0, now - a.fetch.start);
    ++result_.transfers_aborted;
    switch (reason) {
      case KillReason::kNodeDown:
        ++result_.aborts_dst_down;
        break;
      case KillReason::kSourceTimeout:
        ++result_.aborts_src_timeout;
        break;
      case KillReason::kRedundant:
        ++result_.aborts_redundant;
        break;
      case KillReason::kChecksum:
        // A checksum kill never aborts a live transfer: the fetch had
        // already completed when the corrupt bytes were detected.
        break;
    }
    const common::Seconds reclaimed = network_.abort(a.fetch, now);
    {
      obs::TraceRecord r;
      r.type = obs::EventType::kTransferAbort;
      r.reason = trace_reason;
      r.task = task;
      r.peer = a.fetch_src;
      r.ticket = a.fetch.ticket;
      r.v0 = reclaimed;
      trace(r);
    }
    if (!a.from_origin) {
      NodeState& src_state = node_state_[a.fetch_src];
      auto& list = src_state.outgoing_fetches;
      const std::uint32_t idx = a.outgoing_index;
      list[idx] = list.back();
      attempts_[list[idx]].outgoing_index = idx;
      list.pop_back();
    }
  } else if (failed && a.exec_start >= 0.0) {
    result_.overhead.rework += now - a.exec_start;
  }

  if (failed) {
    ++result_.attempts_failed;
  } else {
    ++result_.attempts_killed;
  }
  {
    obs::TraceRecord r;
    r.type = obs::EventType::kAttemptKill;
    r.reason = trace_reason;
    r.task = task;
    r.node = a.node;
    trace(r);
  }

  if (reason == KillReason::kRedundant && !a.local) {
    // Network bytes this losing duplicate burned: the whole block when
    // its fetch had completed, the transferred prefix (pro-rated by
    // elapsed transfer time) when it was still on the wire.
    const double block = static_cast<double>(cluster_.block_size_bytes);
    double waste = 0.0;
    if (!a.fetching) {
      waste = block;
    } else if (a.fetch.end > a.fetch.start) {
      const double frac =
          (now - a.fetch.start) / (a.fetch.end - a.fetch.start);
      waste = block * std::clamp(frac, 0.0, 1.0);
    }
    const std::uint64_t bytes = static_cast<std::uint64_t>(waste);
    result_.redundant_waste_bytes += bytes;
    // The waste event appears only under non-baseline schedulers so
    // default-scheduler traces stay byte-identical to before.
    if (bytes > 0 && scheduler_->kind() != SchedulerKind::kBaseline) {
      obs::TraceRecord r;
      r.type = obs::EventType::kRedundantWaste;
      r.reason = trace_reason;
      r.task = task;
      r.node = a.node;
      r.v0 = waste;
      trace(r);
    }
  }

  detach_attempt(id);

  if (failed && board_.attempt_count(task) == 0 &&
      board_.status(task) == TaskStatus::kRunning) {
    board_.mark_pending(task);
    // The attempt may have been the last carrier of a block with zero
    // live replicas; with no origin fallback the task is now lost.
    maybe_mark_lost(task);
    wake_for_task(task);
  }
}

// ---------------------------------------------------------------------
// Interruption listener
// ---------------------------------------------------------------------

void MapReduceSimulation::on_node_down(cluster::NodeIndex node) {
  NodeState& ns = node_state_[node];
  ns.up = false;
  ns.down_at = queue_.now();
  if (ns.undone_home > 0) ns.recovery_open = queue_.now();
  ns.free_slots = 0;
  {
    obs::TraceRecord r;
    r.type = obs::EventType::kNodeDown;
    r.node = node;
    r.aux = static_cast<std::uint32_t>(cluster_.nodes[node].slots);
    trace(r);
  }

  if (collector_ && !message_mode_) {
    // Message mode never gets these oracle notifications — the collector
    // learns about the outage from the silence that follows, and the
    // heartbeat round sweeps believed-dead nodes into declarations.
    collector_->notify_down(node, queue_.now());
    if (!declared_dead_[node]) {
      // Arm the dead-check alarm: fires once the heartbeat protocol has
      // both detected the outage and waited out the dead timeout (the
      // epsilon shields the >= comparison from float round-off).
      dead_check_[node].cancel();
      dead_check_[node] = queue_.schedule(
          queue_.now() + collector_->detection_latency() +
              config_.churn.dead_timeout + 1e-9,
          [this, node] { maybe_declare_dead(node); });
    }
  }

  // Attempts running here fail.
  const std::vector<AttemptId> local = ns.attempts;
  for (const AttemptId id : local) {
    if (attempts_[id].alive) kill_attempt(id, KillReason::kNodeDown);
  }

  // Recovery transfers touching the node abort and go through the
  // pipeline's retry/backoff.
  if (rereplicator_) rereplicator_->on_node_down(node);
  if (migration_) migration_->on_node_down(node);

  if (config_.transfer_stall_timeout > 0.0) {
    // Transfers sourced here stall; they resume (shifted) when the node
    // returns, or abort when the outage outlives the client timeout.
    for (const AttemptId id : ns.outgoing_fetches) {
      Attempt& a = attempts_[id];
      if (!a.alive || !a.fetching) continue;
      a.transfer_stalled = true;
      a.event.cancel();
      obs::TraceRecord r;
      r.type = obs::EventType::kTransferStall;
      r.task = a.task;
      r.peer = node;
      r.ticket = a.fetch.ticket;
      trace(r);
    }
    if (!ns.outgoing_fetches.empty()) {
      ns.stall_timeout_event = queue_.schedule(
          queue_.now() + config_.transfer_stall_timeout,
          [this, node] { on_stall_timeout(node); });
      // Once the stall makes those transfers overdue, idle nodes should
      // get a chance to speculate rescues; re-check periodically while
      // the outage lasts (the rescue economics improve as it drags on).
      if (scheduler_->speculation_enabled()) {
        const double overdue = scheduler_->overdue_threshold();
        queue_.schedule(queue_.now() + overdue + 1e-9,
                        [this, node] { on_stall_wake(node); });
      }
    }
  } else {
    // Immediate-abort semantics: destinations fail their attempts.
    const std::vector<AttemptId> outgoing = ns.outgoing_fetches;
    for (const AttemptId id : outgoing) {
      const Attempt& a = attempts_[id];
      if (!a.alive) continue;
      const cluster::NodeIndex dst = a.node;
      kill_attempt(id, KillReason::kSourceTimeout);
      dispatch(dst);
    }
    network_.reset_uplink(node, queue_.now());
  }
}

void MapReduceSimulation::on_stall_wake(cluster::NodeIndex node) {
  const NodeState& ns = node_state_[node];
  if (ns.up) return;  // outage over; resumes handled the rest
  std::size_t stalled = 0;
  for (const AttemptId id : ns.outgoing_fetches) {
    const Attempt& a = attempts_[id];
    if (a.alive && a.transfer_stalled) ++stalled;
  }
  if (stalled == 0) return;
  for (std::size_t i = 0; i < stalled; ++i) {
    if (!wake_one_idle()) break;
  }
  const double overdue = scheduler_->overdue_threshold();
  queue_.schedule(queue_.now() + std::max(overdue, config_.gamma),
                  [this, node] { on_stall_wake(node); });
}

void MapReduceSimulation::on_stall_timeout(cluster::NodeIndex node) {
  NodeState& ns = node_state_[node];
  if (ns.up) return;  // stale event
  const std::vector<AttemptId> outgoing = ns.outgoing_fetches;
  for (const AttemptId id : outgoing) {
    const Attempt& a = attempts_[id];
    if (!a.alive || !a.transfer_stalled) continue;
    const cluster::NodeIndex dst = a.node;
    kill_attempt(id, KillReason::kSourceTimeout);
    dispatch(dst);
  }
  network_.reset_uplink(node, queue_.now());
}

void MapReduceSimulation::on_node_up(cluster::NodeIndex node) {
  const bool was_declared = collector_ && declared_dead_[node];
  // In message mode the NameNode cannot know the node returned until a
  // beat arrives: the revive happens in the next heartbeat round, not
  // here.
  const bool resurrected = was_declared && !message_mode_;
  NodeState& ns = node_state_[node];
  if (ns.recovery_open >= 0.0) {
    result_.overhead.recovery +=
        (queue_.now() - ns.recovery_open) * cluster_.nodes[node].slots;
    ns.recovery_open = -1.0;
  }
  ns.up = true;
  ns.stall_timeout_event.cancel();
  const common::Seconds outage =
      ns.down_at >= 0.0 ? queue_.now() - ns.down_at : 0.0;
  ns.down_at = -1.0;
  ns.free_slots = cluster_.nodes[node].slots;
  {
    obs::TraceRecord r;
    r.type = obs::EventType::kNodeUp;
    r.node = node;
    trace(r);
  }
  if (config_.metrics != nullptr && outage > 0.0) {
    config_.metrics->observe(hist_outage_, outage);
  }

  if (collector_ && !message_mode_) {
    collector_->notify_up(node, queue_.now());
    dead_check_[node].cancel();
    if (resurrected) revive_declared_dead(node);
  }

  if (config_.transfer_stall_timeout > 0.0 && outage > 0.0 &&
      !was_declared) {
    // Resume stalled transfers, shifted by the outage; the uplink's
    // admission clock shifts with them.
    network_.shift_uplink(node, outage, queue_.now());
    for (const AttemptId id : ns.outgoing_fetches) {
      Attempt& a = attempts_[id];
      if (!a.alive || !a.fetching || !a.transfer_stalled) continue;
      a.transfer_stalled = false;
      a.fetch.start += outage;
      a.fetch.end += outage;
      a.event =
          queue_.schedule(a.fetch.end, [this, id] { on_fetch_done(id); });
      obs::TraceRecord r;
      r.type = obs::EventType::kTransferResume;
      r.task = a.task;
      r.peer = node;
      r.ticket = a.fetch.ticket;
      r.v0 = a.fetch.end;
      trace(r);
    }
  } else {
    network_.reset_uplink(node, queue_.now());
  }

  // A returning node may unblock a recovery source or destination.
  if (rereplicator_) rereplicator_->on_node_up(node);
  if (migration_) migration_->on_node_up(node);

  const std::size_t revived =
      board_.revive_stalled_for(node, queue_.now());
  dispatch(node);
  for (std::size_t i = 0; i < revived; ++i) wake_one_idle();
}

// ---------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------

bool MapReduceSimulation::has_live_replica(TaskId task) const {
  for (const cluster::NodeIndex home : board_.home_nodes(task)) {
    if (node_state_[home].up) return true;
  }
  return false;
}

std::optional<cluster::NodeIndex> MapReduceSimulation::usable_source(
    TaskId task) const {
  std::optional<cluster::NodeIndex> best;
  common::Seconds best_free = 0.0;
  for (const cluster::NodeIndex home : board_.home_nodes(task)) {
    if (!node_state_[home].up) continue;
    const common::Seconds free_at = network_.uplink_available_at(home);
    const common::Seconds wait = free_at - queue_.now();
    const common::Seconds limit =
        config_.max_source_queue_wait >= 0.0
            ? config_.max_source_queue_wait
            : common::transfer_time(cluster_.block_size_bytes,
                                    cluster_.nodes[home].uplink_bps);
    if (wait > limit) continue;
    if (!best || free_at < best_free) {
      best = home;
      best_free = free_at;
    }
  }
  return best;
}

double MapReduceSimulation::estimated_cost_on(cluster::NodeIndex node,
                                              TaskId task) const {
  if (board_.is_local_to(task, node) && node_state_[node].up) {
    return config_.gamma * slow_factor(node);
  }
  double uplink = 0.0;
  common::Seconds queue_wait = 0.0;
  if (const auto src = usable_source(task)) {
    uplink = cluster_.nodes[*src].uplink_bps;
    queue_wait =
        std::max(0.0, network_.uplink_available_at(*src) - queue_.now());
  } else if (config_.allow_origin_fetch) {
    uplink = network_.origin_uplink_bps();
    queue_wait = std::max(
        0.0, network_.uplink_available_at(cluster::kOriginEndpoint) -
                 queue_.now());
  } else {
    return -1.0;  // cannot run it here at all
  }
  const double rate = std::min(uplink, cluster_.nodes[node].downlink_bps);
  return queue_wait +
         common::transfer_time(cluster_.block_size_bytes, rate) +
         config_.gamma * slow_factor(node);
}

common::Seconds MapReduceSimulation::projected_fetch_end(
    const Attempt& a) const {
  common::Seconds end = a.fetch.end;
  if (a.transfer_stalled) {
    // The resume will shift the end by the outage length accumulated so
    // far; project that shift now so the attempt reads as overdue.
    const common::Seconds down_at = node_state_[a.fetch_src].down_at;
    if (down_at >= 0.0) end += queue_.now() - down_at;
  }
  return end;
}

double MapReduceSimulation::remaining_time(const Attempt& a) const {
  if (a.fetching) {
    if (a.transfer_stalled) {
      // The resume time is unknown; project the stall observed so far as
      // the estimate of what is still to come (a renewal-style guess),
      // so rescue economics improve the longer the outage persists.
      const common::Seconds down_at = node_state_[a.fetch_src].down_at;
      const common::Seconds stall =
          down_at >= 0.0 ? queue_.now() - down_at : 0.0;
      return (projected_fetch_end(a) - queue_.now()) + config_.gamma +
             stall;
    }
    return (a.fetch.end - queue_.now()) + config_.gamma;
  }
  return std::max(0.0, a.exec_end - queue_.now());
}

// ---------------------------------------------------------------------
// SchedulerHost view
// ---------------------------------------------------------------------

common::Seconds MapReduceSimulation::now() const { return queue_.now(); }

std::size_t MapReduceSimulation::running_count() const {
  return running_.size();
}

AttemptView MapReduceSimulation::running_attempt(std::size_t i) const {
  const Attempt& a = attempts_[running_[i]];
  AttemptView v;
  v.task = a.task;
  v.node = a.node;
  v.alive = a.alive;
  v.fetching = a.fetching;
  v.projected_finish =
      a.fetching ? projected_fetch_end(a) + config_.gamma : a.exec_end;
  v.nominal_end = a.nominal_end;
  v.remaining = remaining_time(a);
  v.first_start =
      task_first_start_.empty() ? -1.0 : task_first_start_[a.task];
  return v;
}

bool MapReduceSimulation::task_running(std::uint32_t task) const {
  return board_.status(task) == TaskStatus::kRunning;
}

std::size_t MapReduceSimulation::attempt_count(std::uint32_t task) const {
  return board_.attempt_count(task);
}

bool MapReduceSimulation::is_local_to(std::uint32_t task,
                                      cluster::NodeIndex node) const {
  return board_.is_local_to(task, node);
}

double MapReduceSimulation::cluster_calibration_ratio() const {
  return config_.calibration != nullptr
             ? config_.calibration->cluster_ratio()
             : 0.0;
}

}  // namespace adapt::sim
