#include "sim/sim_config.h"

#include <cmath>

namespace adapt::sim {

namespace {

void check_gamma(double value) {
  if (!(value > 0) || !std::isfinite(value)) {
    throw ConfigError("gamma", "must be positive and finite");
  }
}

void check_speculation_slack(double value) {
  if (!(value > 0) || !std::isfinite(value)) {
    throw ConfigError("speculation_slack", "must be positive and finite");
  }
}

void check_max_concurrent_attempts(int value) {
  if (value < 1 || value > 2) {
    throw ConfigError("max_concurrent_attempts", "must be 1 or 2");
  }
}

void check_transfer_stall_timeout(common::Seconds value) {
  if (value < 0 || !std::isfinite(value)) {
    throw ConfigError("transfer_stall_timeout",
                      "must be >= 0 and finite (0 = abort immediately)");
  }
}

void check_departure_rate(double value) {
  if (value < 0 || !std::isfinite(value)) {
    throw ConfigError("churn.departure_rate", "must be >= 0 and finite");
  }
}

void check_burst_fraction(double value) {
  if (value < 0 || value > 1) {
    throw ConfigError("churn.burst_fraction", "must be in [0, 1]");
  }
}

void check_heartbeat_interval(common::Seconds value) {
  if (!(value > 0) || !std::isfinite(value)) {
    throw ConfigError("churn.heartbeat_interval",
                      "must be positive and finite");
  }
}

void check_heartbeat_miss_threshold(int value) {
  if (value < 1) {
    throw ConfigError("churn.heartbeat_miss_threshold", "must be >= 1");
  }
}

void check_dead_timeout(common::Seconds value) {
  if (!(value > 0) || !std::isfinite(value)) {
    throw ConfigError("churn.dead_timeout",
                      "must be > 0 (departed nodes must eventually be "
                      "declared dead)");
  }
}

void check_hysteresis(double value) {
  if (!(value >= 1.0) || !std::isfinite(value)) {
    throw ConfigError("rebalance.hysteresis",
                      "must be >= 1 and finite (a quote at the median "
                      "must never trigger a move)");
  }
}

void check_cooldown(common::Seconds value) {
  if (value < 0 || !std::isfinite(value)) {
    throw ConfigError("rebalance.cooldown", "must be >= 0 and finite");
  }
}

}  // namespace

void SimJobConfig::validate() const {
  check_gamma(gamma);
  if (speculation) check_speculation_slack(speculation_slack);
  check_max_concurrent_attempts(max_concurrent_attempts);
  check_transfer_stall_timeout(transfer_stall_timeout);
  if (sample_dt < 0 || !std::isfinite(sample_dt)) {
    throw ConfigError("sample_dt", "must be >= 0 and finite");
  }
  if (churn.enabled) {
    check_departure_rate(churn.departure_rate);
    for (const double rate : churn.departure_rates) {
      check_departure_rate(rate);
    }
    check_burst_fraction(churn.burst_fraction);
    if (churn.domain_burst_at >= 0.0 && churn.domain_burst_count > 0 &&
        churn.domain_of.empty()) {
      throw ConfigError("churn.domain_of",
                        "domain burst needs a node -> domain map (give the "
                        "cluster a DomainLayout)");
    }
    check_heartbeat_interval(churn.heartbeat_interval);
    check_heartbeat_miss_threshold(churn.heartbeat_miss_threshold);
    check_dead_timeout(churn.dead_timeout);
  }
  if (rebalance.enabled) {
    if (!churn.enabled) {
      throw ConfigError("rebalance.enabled",
                        "requires churn (drift alarms need the heartbeat "
                        "estimator)");
    }
    check_hysteresis(rebalance.hysteresis);
    check_cooldown(rebalance.cooldown);
    if (rebalance.migration.max_concurrent < 1) {
      throw ConfigError("rebalance.migration.max_concurrent",
                        "must be >= 1");
    }
    if (rebalance.migration.budget_bytes_per_s < 0 ||
        !std::isfinite(rebalance.migration.budget_bytes_per_s)) {
      throw ConfigError("rebalance.migration.budget_bytes_per_s",
                        "must be >= 0 and finite (0 = unlimited)");
    }
  }
}

SimJobConfig::Builder& SimJobConfig::Builder::gamma(double value) {
  check_gamma(value);
  config_.gamma = value;
  return *this;
}

SimJobConfig::Builder& SimJobConfig::Builder::speculation(
    bool enabled, double slack, common::Seconds overdue) {
  if (enabled) check_speculation_slack(slack);
  config_.speculation = enabled;
  config_.speculation_slack = slack;
  config_.speculation_overdue = overdue;
  return *this;
}

SimJobConfig::Builder& SimJobConfig::Builder::max_concurrent_attempts(
    int value) {
  check_max_concurrent_attempts(value);
  config_.max_concurrent_attempts = value;
  return *this;
}

SimJobConfig::Builder& SimJobConfig::Builder::origin_fetch(
    bool allowed, common::Seconds delay) {
  config_.allow_origin_fetch = allowed;
  config_.origin_fetch_delay = delay;
  return *this;
}

SimJobConfig::Builder& SimJobConfig::Builder::transfer_stall_timeout(
    common::Seconds value) {
  check_transfer_stall_timeout(value);
  config_.transfer_stall_timeout = value;
  return *this;
}

SimJobConfig::Builder& SimJobConfig::Builder::seed(std::uint64_t value) {
  config_.seed = value;
  return *this;
}

SimJobConfig::Builder& SimJobConfig::Builder::churn(bool enabled) {
  config_.churn.enabled = enabled;
  return *this;
}

SimJobConfig::Builder& SimJobConfig::Builder::departure_rate(double value) {
  check_departure_rate(value);
  config_.churn.departure_rate = value;
  return *this;
}

SimJobConfig::Builder& SimJobConfig::Builder::burst(common::Seconds at,
                                                    double fraction) {
  check_burst_fraction(fraction);
  config_.churn.burst_at = at;
  config_.churn.burst_fraction = fraction;
  return *this;
}

SimJobConfig::Builder& SimJobConfig::Builder::domain_burst(
    common::Seconds at, std::uint32_t count) {
  config_.churn.domain_burst_at = at;
  config_.churn.domain_burst_count = count;
  return *this;
}

SimJobConfig::Builder& SimJobConfig::Builder::heartbeat(
    common::Seconds interval, int miss_threshold) {
  check_heartbeat_interval(interval);
  check_heartbeat_miss_threshold(miss_threshold);
  config_.churn.heartbeat_interval = interval;
  config_.churn.heartbeat_miss_threshold = miss_threshold;
  return *this;
}

SimJobConfig::Builder& SimJobConfig::Builder::dead_timeout(
    common::Seconds value) {
  check_dead_timeout(value);
  config_.churn.dead_timeout = value;
  return *this;
}

SimJobConfig::Builder& SimJobConfig::Builder::rebalance(
    bool enabled, double hysteresis, common::Seconds cooldown) {
  if (enabled) {
    check_hysteresis(hysteresis);
    check_cooldown(cooldown);
  }
  config_.rebalance.enabled = enabled;
  config_.rebalance.hysteresis = hysteresis;
  config_.rebalance.cooldown = cooldown;
  return *this;
}

SimJobConfig SimJobConfig::Builder::build() const {
  config_.validate();
  return config_;
}

}  // namespace adapt::sim
