#include "sim/sim_config.h"

#include <cmath>

namespace adapt::sim {

namespace {

void check_gamma(double value) {
  if (!(value > 0) || !std::isfinite(value)) {
    throw ConfigError("gamma", "must be positive and finite");
  }
}

void check_speculation_slack(double value) {
  if (!(value > 0) || !std::isfinite(value)) {
    throw ConfigError("speculation_slack", "must be positive and finite");
  }
}

void check_max_concurrent_attempts(int value) {
  if (value < 1 || value > 2) {
    throw ConfigError("max_concurrent_attempts", "must be 1 or 2");
  }
}

void check_transfer_stall_timeout(common::Seconds value) {
  if (value < 0 || !std::isfinite(value)) {
    throw ConfigError("transfer_stall_timeout",
                      "must be >= 0 and finite (0 = abort immediately)");
  }
}

void check_departure_rate(double value) {
  if (value < 0 || !std::isfinite(value)) {
    throw ConfigError("churn.departure_rate", "must be >= 0 and finite");
  }
}

void check_burst_fraction(double value) {
  if (value < 0 || value > 1) {
    throw ConfigError("churn.burst_fraction", "must be in [0, 1]");
  }
}

void check_heartbeat_interval(common::Seconds value) {
  if (!(value > 0) || !std::isfinite(value)) {
    throw ConfigError("churn.heartbeat_interval",
                      "must be positive and finite");
  }
}

void check_heartbeat_miss_threshold(int value) {
  if (value < 1) {
    throw ConfigError("churn.heartbeat_miss_threshold", "must be >= 1");
  }
}

void check_dead_timeout(common::Seconds value) {
  if (!(value > 0) || !std::isfinite(value)) {
    throw ConfigError("churn.dead_timeout",
                      "must be > 0 (departed nodes must eventually be "
                      "declared dead)");
  }
}

void check_heartbeat_loss_prob(double value) {
  if (value < 0 || value >= 1 || !std::isfinite(value)) {
    throw ConfigError("churn.heartbeat_loss_prob",
                      "must be in [0, 1) (a node losing every beat is a "
                      "departure, not a gray failure)");
  }
}

void check_partition(const SimJobConfig::ChurnConfig::Partition& p,
                     bool have_domain_of) {
  if (p.at < 0 || !std::isfinite(p.at) || !std::isfinite(p.heal_at)) {
    throw ConfigError("churn.partitions.at", "must be >= 0 and finite");
  }
  if (!(p.heal_at > p.at)) {
    throw ConfigError("churn.partitions.heal_at",
                      "must be strictly after the partition start");
  }
  if (p.domain >= 0 && !have_domain_of) {
    throw ConfigError("churn.partitions.domain",
                      "domain partition needs a node -> domain map (give "
                      "the cluster a DomainLayout)");
  }
  if (p.domain < 0 && p.nodes.empty()) {
    throw ConfigError("churn.partitions.nodes",
                      "must list nodes or name a fault domain");
  }
}

void check_straggler(const SimJobConfig::ChurnConfig::Straggler& s) {
  if (s.at < 0 || !std::isfinite(s.at) || !std::isfinite(s.until)) {
    throw ConfigError("churn.stragglers.at", "must be >= 0 and finite");
  }
  if (!(s.until > s.at)) {
    throw ConfigError("churn.stragglers.until",
                      "must be strictly after the slowdown start");
  }
  if (!(s.slow_factor >= 1.0) || !std::isfinite(s.slow_factor)) {
    throw ConfigError("churn.stragglers.slow_factor",
                      "must be >= 1 and finite");
  }
}

void check_bitrot_rate(double value) {
  if (value < 0 || !std::isfinite(value)) {
    throw ConfigError("churn.bitrot_rate", "must be >= 0 and finite");
  }
}

void check_scan(common::Seconds interval, int blocks_per_sweep) {
  if (interval < 0 || !std::isfinite(interval)) {
    throw ConfigError("churn.scan_interval",
                      "must be >= 0 and finite (0 = scanner off)");
  }
  if (interval > 0 && blocks_per_sweep < 1) {
    throw ConfigError("churn.scan_blocks_per_sweep", "must be >= 1");
  }
}

void check_safe_mode(double threshold, common::Seconds hold) {
  if (threshold < 0 || threshold > 1 || !std::isfinite(threshold)) {
    throw ConfigError("churn.safe_mode_threshold",
                      "must be in [0, 1] (0 = safe mode off)");
  }
  if (threshold > 0 && (!(hold > 0) || !std::isfinite(hold))) {
    throw ConfigError("churn.safe_mode_hold",
                      "must be positive and finite");
  }
}

void check_scheduler_max_attempts(int value) {
  if (value < 1 || value > 8) {
    throw ConfigError("scheduler.max_concurrent_attempts",
                      "must be in [1, 8]");
  }
}

void check_calibrated_margin(double value) {
  if (!(value > 0) || !std::isfinite(value)) {
    throw ConfigError("scheduler.calibrated_margin",
                      "must be positive and finite");
  }
}

void check_redundancy(int value) {
  if (value < 1 || value > 8) {
    throw ConfigError("scheduler.redundancy", "must be in [1, 8]");
  }
}

void check_hysteresis(double value) {
  if (!(value >= 1.0) || !std::isfinite(value)) {
    throw ConfigError("rebalance.hysteresis",
                      "must be >= 1 and finite (a quote at the median "
                      "must never trigger a move)");
  }
}

void check_cooldown(common::Seconds value) {
  if (value < 0 || !std::isfinite(value)) {
    throw ConfigError("rebalance.cooldown", "must be >= 0 and finite");
  }
}

}  // namespace

std::string to_string(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kBaseline:
      return "baseline";
    case SchedulerKind::kCalibrated:
      return "calibrated";
    case SchedulerKind::kRedundant:
      return "redundant";
  }
  return "unknown";
}

void SchedulerConfig::validate() const {
  if (speculation && (!(speculation_slack > 0) ||
                      !std::isfinite(speculation_slack))) {
    throw ConfigError("scheduler.speculation_slack",
                      "must be positive and finite");
  }
  check_scheduler_max_attempts(max_concurrent_attempts);
  check_calibrated_margin(calibrated_margin);
  check_redundancy(redundancy);
  for (const double quote : node_quotes) {
    // +inf marks an unusable node, so only NaN / negatives are invalid.
    if (quote < 0 || std::isnan(quote)) {
      throw ConfigError("scheduler.node_quotes",
                        "quotes must be >= 0 (+inf = unusable node)");
    }
  }
}

SchedulerConfig SimJobConfig::effective_scheduler() const {
  SchedulerConfig merged = scheduler;
  const SimJobConfig defaults;
  if (speculation != defaults.speculation) merged.speculation = speculation;
  if (speculation_slack != defaults.speculation_slack) {
    merged.speculation_slack = speculation_slack;
  }
  if (speculation_overdue != defaults.speculation_overdue) {
    merged.speculation_overdue = speculation_overdue;
  }
  if (max_concurrent_attempts != defaults.max_concurrent_attempts) {
    merged.max_concurrent_attempts = max_concurrent_attempts;
  }
  return merged;
}

void SimJobConfig::validate() const {
  check_gamma(gamma);
  if (speculation) check_speculation_slack(speculation_slack);
  check_max_concurrent_attempts(max_concurrent_attempts);
  scheduler.validate();
  check_transfer_stall_timeout(transfer_stall_timeout);
  if (sample_dt < 0 || !std::isfinite(sample_dt)) {
    throw ConfigError("sample_dt", "must be >= 0 and finite");
  }
  if (churn.enabled) {
    check_departure_rate(churn.departure_rate);
    for (const double rate : churn.departure_rates) {
      check_departure_rate(rate);
    }
    check_burst_fraction(churn.burst_fraction);
    if (churn.domain_burst_at >= 0.0 && churn.domain_burst_count > 0 &&
        churn.domain_of.empty()) {
      throw ConfigError("churn.domain_of",
                        "domain burst needs a node -> domain map (give the "
                        "cluster a DomainLayout)");
    }
    check_heartbeat_interval(churn.heartbeat_interval);
    check_heartbeat_miss_threshold(churn.heartbeat_miss_threshold);
    check_dead_timeout(churn.dead_timeout);
    check_heartbeat_loss_prob(churn.heartbeat_loss_prob);
    for (const ChurnConfig::Partition& p : churn.partitions) {
      check_partition(p, !churn.domain_of.empty());
    }
    for (const ChurnConfig::Straggler& s : churn.stragglers) {
      check_straggler(s);
    }
    check_bitrot_rate(churn.bitrot_rate);
    for (const ChurnConfig::Corruption& c : churn.corruptions) {
      if (c.at < 0 || !std::isfinite(c.at)) {
        throw ConfigError("churn.corruptions.at",
                          "must be >= 0 and finite");
      }
    }
    check_scan(churn.scan_interval, churn.scan_blocks_per_sweep);
    check_safe_mode(churn.safe_mode_threshold, churn.safe_mode_hold);
  } else if (churn.gray_enabled()) {
    throw ConfigError("churn.enabled",
                      "gray-failure knobs require churn (the heartbeat "
                      "collector drives detection)");
  }
  if (rebalance.enabled) {
    if (!churn.enabled) {
      throw ConfigError("rebalance.enabled",
                        "requires churn (drift alarms need the heartbeat "
                        "estimator)");
    }
    check_hysteresis(rebalance.hysteresis);
    check_cooldown(rebalance.cooldown);
    if (rebalance.migration.max_concurrent < 1) {
      throw ConfigError("rebalance.migration.max_concurrent",
                        "must be >= 1");
    }
    if (rebalance.migration.budget_bytes_per_s < 0 ||
        !std::isfinite(rebalance.migration.budget_bytes_per_s)) {
      throw ConfigError("rebalance.migration.budget_bytes_per_s",
                        "must be >= 0 and finite (0 = unlimited)");
    }
  }
}

SimJobConfig::Builder& SimJobConfig::Builder::gamma(double value) {
  check_gamma(value);
  config_.gamma = value;
  return *this;
}

SimJobConfig::Builder& SimJobConfig::Builder::speculation(
    bool enabled, double slack, common::Seconds overdue) {
  if (enabled) check_speculation_slack(slack);
  config_.speculation = enabled;
  config_.speculation_slack = slack;
  config_.speculation_overdue = overdue;
  config_.scheduler.speculation = enabled;
  config_.scheduler.speculation_slack = slack;
  config_.scheduler.speculation_overdue = overdue;
  return *this;
}

SimJobConfig::Builder& SimJobConfig::Builder::max_concurrent_attempts(
    int value) {
  check_max_concurrent_attempts(value);
  config_.max_concurrent_attempts = value;
  config_.scheduler.max_concurrent_attempts = value;
  return *this;
}

SimJobConfig::Builder& SimJobConfig::Builder::scheduler_kind(
    SchedulerKind kind) {
  config_.scheduler.kind = kind;
  return *this;
}

SimJobConfig::Builder& SimJobConfig::Builder::calibrated_margin(
    double value) {
  check_calibrated_margin(value);
  config_.scheduler.calibrated_margin = value;
  return *this;
}

SimJobConfig::Builder& SimJobConfig::Builder::redundancy(int value) {
  check_redundancy(value);
  config_.scheduler.redundancy = value;
  return *this;
}

SimJobConfig::Builder& SimJobConfig::Builder::origin_fetch(
    bool allowed, common::Seconds delay) {
  config_.allow_origin_fetch = allowed;
  config_.origin_fetch_delay = delay;
  return *this;
}

SimJobConfig::Builder& SimJobConfig::Builder::transfer_stall_timeout(
    common::Seconds value) {
  check_transfer_stall_timeout(value);
  config_.transfer_stall_timeout = value;
  return *this;
}

SimJobConfig::Builder& SimJobConfig::Builder::seed(std::uint64_t value) {
  config_.seed = value;
  return *this;
}

SimJobConfig::Builder& SimJobConfig::Builder::churn(bool enabled) {
  config_.churn.enabled = enabled;
  return *this;
}

SimJobConfig::Builder& SimJobConfig::Builder::departure_rate(double value) {
  check_departure_rate(value);
  config_.churn.departure_rate = value;
  return *this;
}

SimJobConfig::Builder& SimJobConfig::Builder::burst(common::Seconds at,
                                                    double fraction) {
  check_burst_fraction(fraction);
  config_.churn.burst_at = at;
  config_.churn.burst_fraction = fraction;
  return *this;
}

SimJobConfig::Builder& SimJobConfig::Builder::domain_burst(
    common::Seconds at, std::uint32_t count) {
  config_.churn.domain_burst_at = at;
  config_.churn.domain_burst_count = count;
  return *this;
}

SimJobConfig::Builder& SimJobConfig::Builder::heartbeat(
    common::Seconds interval, int miss_threshold) {
  check_heartbeat_interval(interval);
  check_heartbeat_miss_threshold(miss_threshold);
  config_.churn.heartbeat_interval = interval;
  config_.churn.heartbeat_miss_threshold = miss_threshold;
  return *this;
}

SimJobConfig::Builder& SimJobConfig::Builder::dead_timeout(
    common::Seconds value) {
  check_dead_timeout(value);
  config_.churn.dead_timeout = value;
  return *this;
}

SimJobConfig::Builder& SimJobConfig::Builder::heartbeat_loss(double prob) {
  check_heartbeat_loss_prob(prob);
  config_.churn.heartbeat_loss_prob = prob;
  return *this;
}

SimJobConfig::Builder& SimJobConfig::Builder::partition(
    common::Seconds at, common::Seconds heal_at,
    std::vector<std::uint32_t> nodes) {
  ChurnConfig::Partition p;
  p.at = at;
  p.heal_at = heal_at;
  p.nodes = std::move(nodes);
  check_partition(p, /*have_domain_of=*/true);
  config_.churn.partitions.push_back(std::move(p));
  return *this;
}

SimJobConfig::Builder& SimJobConfig::Builder::domain_partition(
    common::Seconds at, common::Seconds heal_at, std::uint32_t domain) {
  ChurnConfig::Partition p;
  p.at = at;
  p.heal_at = heal_at;
  p.domain = static_cast<std::int64_t>(domain);
  check_partition(p, /*have_domain_of=*/true);
  config_.churn.partitions.push_back(std::move(p));
  return *this;
}

SimJobConfig::Builder& SimJobConfig::Builder::straggler(
    std::uint32_t node, common::Seconds at, common::Seconds until,
    double slow_factor) {
  ChurnConfig::Straggler s;
  s.node = node;
  s.at = at;
  s.until = until;
  s.slow_factor = slow_factor;
  check_straggler(s);
  config_.churn.stragglers.push_back(s);
  return *this;
}

SimJobConfig::Builder& SimJobConfig::Builder::bitrot(double rate) {
  check_bitrot_rate(rate);
  config_.churn.bitrot_rate = rate;
  return *this;
}

SimJobConfig::Builder& SimJobConfig::Builder::corruption(
    common::Seconds at, std::uint32_t block, std::int64_t node) {
  if (at < 0 || !std::isfinite(at)) {
    throw ConfigError("churn.corruptions.at", "must be >= 0 and finite");
  }
  config_.churn.corruptions.push_back({at, block, node});
  return *this;
}

SimJobConfig::Builder& SimJobConfig::Builder::block_scanner(
    common::Seconds interval, int blocks_per_sweep) {
  check_scan(interval, blocks_per_sweep);
  config_.churn.scan_interval = interval;
  config_.churn.scan_blocks_per_sweep = blocks_per_sweep;
  return *this;
}

SimJobConfig::Builder& SimJobConfig::Builder::safe_mode(
    double threshold, common::Seconds hold) {
  check_safe_mode(threshold, hold);
  config_.churn.safe_mode_threshold = threshold;
  config_.churn.safe_mode_hold = hold;
  return *this;
}

SimJobConfig::Builder& SimJobConfig::Builder::rebalance(
    bool enabled, double hysteresis, common::Seconds cooldown) {
  if (enabled) {
    check_hysteresis(hysteresis);
    check_cooldown(cooldown);
  }
  config_.rebalance.enabled = enabled;
  config_.rebalance.hysteresis = hysteresis;
  config_.rebalance.cooldown = cooldown;
  return *this;
}

SimJobConfig SimJobConfig::Builder::build() const {
  config_.validate();
  return config_;
}

}  // namespace adapt::sim
