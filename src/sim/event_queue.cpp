#include "sim/event_queue.h"

#include <stdexcept>

namespace adapt::sim {

EventQueue::Handle EventQueue::schedule(common::Seconds when,
                                        Callback callback) {
  if (when < now_) {
    throw std::invalid_argument("schedule: time travels backwards");
  }
  auto alive = std::make_shared<bool>(true);
  queue_.push(Event{when, next_seq_++, std::move(callback), alive});
  return Handle(std::move(alive));
}

bool EventQueue::run_next() {
  while (!queue_.empty()) {
    // priority_queue::top is const; the event is copied cheaply (the
    // callback is moved out after the pop via a const_cast-free path).
    Event event = queue_.top();
    queue_.pop();
    if (!*event.alive) continue;
    now_ = event.when;
    ++processed_;
    event.callback();
    return true;
  }
  return false;
}

bool EventQueue::run_until(const std::function<bool()>& done) {
  while (!done()) {
    if (!run_next()) return done();
  }
  return true;
}

}  // namespace adapt::sim
