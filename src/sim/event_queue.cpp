#include "sim/event_queue.h"

#include <stdexcept>
#include <utility>

namespace adapt::sim {

void EventQueue::release(std::uint32_t slot) {
  Slot& s = slots_[slot];
  ++s.generation;   // invalidates outstanding handles and heap entries
  s.callback = {};  // drop captured state now, not at slot reuse
  s.next_free = free_head_;
  free_head_ = slot;
  --live_;
}

EventQueue::Handle EventQueue::schedule(common::Seconds when,
                                        Callback callback) {
  if (when < now_) {
    throw std::invalid_argument("schedule: time travels backwards");
  }
  std::uint32_t slot;
  if (free_head_ != kNoSlot) {
    slot = free_head_;
    free_head_ = slots_[slot].next_free;
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  slots_[slot].callback = std::move(callback);
  ++live_;
  const std::uint32_t generation = slots_[slot].generation;
  queue_.push(Entry{when, next_seq_++, slot, generation});
  return Handle(this, slot, generation);
}

bool EventQueue::run_next() {
  while (!queue_.empty()) {
    const Entry entry = queue_.top();
    queue_.pop();
    if (!armed(entry.slot, entry.generation)) continue;  // cancelled
    // Free the slot before invoking: the callback may schedule (and
    // even reuse this slot, under a new generation) or cancel freely.
    Callback callback = std::move(slots_[entry.slot].callback);
    release(entry.slot);
    now_ = entry.when;
    ++processed_;
    callback();
    return true;
  }
  return false;
}

bool EventQueue::run_until(const std::function<bool()>& done) {
  while (!done()) {
    if (!run_next()) return done();
  }
  return true;
}

}  // namespace adapt::sim
