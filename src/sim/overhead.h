// Overhead decomposition of a map phase (paper Section V-C, Figure 5).
//
// The base cost is the aggregate failure-free execution time m * gamma.
// Everything else the cluster spent — node-seconds over the makespan —
// is attributed to:
//   rework    : execution lost to interrupted attempts
//   recovery  : node downtime while the job was running
//   migration : time spent moving blocks (remote fetches, origin
//               re-fetches, rebalance moves)
//   misc      : residual — scheduling gaps, duplicated straggler
//               execution, idle tail at the end of the map phase
#pragma once

#include <cstdint>
#include <string>

#include "common/units.h"

namespace adapt::sim {

struct OverheadBreakdown {
  double base = 0.0;       // m * gamma, node-seconds
  double rework = 0.0;
  double recovery = 0.0;
  double migration = 0.0;
  double misc = 0.0;       // derived residual, never negative

  common::Seconds elapsed = 0.0;  // map phase makespan
  std::size_t node_count = 0;

  // Derive misc from the conservation identity
  //   node_count * elapsed = base + rework + recovery + migration + misc
  // clamping tiny negative residue from floating-point accumulation.
  void finalize();

  double total_overhead() const {
    return rework + recovery + migration + misc;
  }

  // Ratios relative to base, as plotted in Figure 5.
  double rework_ratio() const { return base > 0 ? rework / base : 0; }
  double recovery_ratio() const { return base > 0 ? recovery / base : 0; }
  double migration_ratio() const { return base > 0 ? migration / base : 0; }
  double misc_ratio() const { return base > 0 ? misc / base : 0; }
  double total_ratio() const { return base > 0 ? total_overhead() / base : 0; }

  std::string describe() const;
};

}  // namespace adapt::sim
