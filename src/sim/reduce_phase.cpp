#include "sim/reduce_phase.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace adapt::sim {

namespace {

cluster::Network::Config network_config(const cluster::Cluster& cluster) {
  cluster::Network::Config config;
  for (const cluster::NodeSpec& node : cluster.nodes) {
    config.uplink_bps.push_back(node.uplink_bps);
    config.downlink_bps.push_back(node.downlink_bps);
  }
  config.origin_uplink_bps = cluster.origin_uplink_bps;
  config.fifo_admission = cluster.fifo_uplinks;
  return config;
}

}  // namespace

ReducePhaseSimulation::ReducePhaseSimulation(
    const cluster::Cluster& cluster,
    const std::vector<cluster::NodeIndex>& map_winners, ReduceConfig config)
    : cluster_(cluster),
      config_(std::move(config)),
      network_(network_config(cluster)),
      rng_(common::Rng(config_.seed).fork(0x2ed0)),
      injector_(queue_, cluster.nodes, *this,
                common::Rng(config_.seed).fork(0x2ed1),
                InterruptionInjector::Config{config_.replay_horizon,
                                             config_.randomize_replay_offset,
                                             config_.replay_offsets,
                                             config_.initial_down_until}),
      up_(cluster.size(), true) {
  if (map_winners.empty()) {
    throw std::invalid_argument("reduce: no map outputs");
  }
  if (config_.output_ratio <= 0) {
    throw std::invalid_argument("reduce: output ratio must be positive");
  }
  const std::uint32_t reducer_count =
      config_.reducers > 0 ? config_.reducers
                           : static_cast<std::uint32_t>(cluster.size());

  // Aggregate map outputs per winner node; each reducer pulls its
  // 1/R share of every node's aggregate.
  std::vector<std::uint64_t> per_node(cluster.size(), 0);
  const double out_bytes =
      static_cast<double>(cluster.block_size_bytes) * config_.output_ratio;
  for (const cluster::NodeIndex winner : map_winners) {
    per_node.at(winner) +=
        static_cast<std::uint64_t>(out_bytes / reducer_count);
  }
  for (cluster::NodeIndex n = 0; n < per_node.size(); ++n) {
    if (per_node[n] > 0) sources_.push_back({n, per_node[n]});
  }
  if (sources_.empty()) {
    throw std::invalid_argument("reduce: empty shuffle");
  }

  if (config_.availability_aware) {
    if (config_.params.size() != cluster.size()) {
      throw std::invalid_argument(
          "reduce: availability-aware placement needs per-node params");
    }
    weights_.reserve(cluster.size());
    for (const avail::InterruptionParams& p : config_.params) {
      const double et = avail::expected_task_time(
          p, std::max(1e-9, config_.gamma_map));
      weights_.push_back(std::isfinite(et) ? 1.0 / et : 0.0);
    }
  }

  if (config_.gamma_reduce >= 0) {
    gamma_reduce_ = config_.gamma_reduce;
  } else {
    // Auto: reduce computation proportional to the bytes it ingests, at
    // the map rate (gamma_map per input block).
    std::uint64_t total = 0;
    for (const auto& [node, bytes] : sources_) total += bytes;
    gamma_reduce_ = config_.gamma_map * static_cast<double>(total) /
                    static_cast<double>(cluster.block_size_bytes);
  }

  reducers_.resize(reducer_count);
}

ReduceResult ReducePhaseSimulation::run() {
  result_ = ReduceResult{};
  result_.reducers = reducers_.size();
  injector_.start();
  queue_.schedule(0.0, [this] {
    for (std::uint32_t r = 0; r < reducers_.size(); ++r) {
      assign_reducer(r);
    }
  });
  const bool done = queue_.run_until([this] { return all_done(); });
  if (!done) {
    throw std::logic_error("reduce phase stalled");
  }
  return result_;
}

std::optional<cluster::NodeIndex> ReducePhaseSimulation::pick_host(
    common::Rng& rng) const {
  // Weighted (availability-aware) or uniform draw over live hosts.
  if (config_.availability_aware) {
    double total = 0.0;
    for (std::size_t i = 0; i < up_.size(); ++i) {
      if (up_[i]) total += weights_[i];
    }
    if (total > 0) {
      double r = rng.uniform() * total;
      for (std::size_t i = 0; i < up_.size(); ++i) {
        if (!up_[i]) continue;
        r -= weights_[i];
        if (r <= 0) return static_cast<cluster::NodeIndex>(i);
      }
    }
  }
  std::vector<cluster::NodeIndex> live;
  for (std::size_t i = 0; i < up_.size(); ++i) {
    if (up_[i]) live.push_back(static_cast<cluster::NodeIndex>(i));
  }
  if (live.empty()) return std::nullopt;
  return live[rng.uniform_index(live.size())];
}

void ReducePhaseSimulation::assign_reducer(std::uint32_t r) {
  Reducer& red = reducers_[r];
  const auto host = pick_host(rng_);
  if (!host) {
    // Whole cluster down: retry when something comes back.
    queue_.schedule(queue_.now() + 1.0, [this, r] { assign_reducer(r); });
    return;
  }
  red = Reducer{};
  red.assigned = true;
  red.node = *host;
  advance(r);
}

void ReducePhaseSimulation::advance(std::uint32_t r) {
  Reducer& red = reducers_[r];
  if (red.next_source >= sources_.size()) {
    // Shuffle complete: run the reduce computation.
    red.executing = true;
    red.event = queue_.schedule(queue_.now() + gamma_reduce_,
                                [this, r] { on_reduce_done(r); });
    return;
  }
  const auto [src, bytes] = sources_[red.next_source];
  if (src == red.node) {
    // Local partition: no transfer.
    ++red.next_source;
    advance(r);
    return;
  }
  if (!up_[src]) {
    // Source down: wait for it, or take the partition from the origin
    // after the reissue delay (the runtime can re-create map output).
    red.stalled = true;
    if (red.stall_since < 0) red.stall_since = queue_.now();
    const common::Seconds ripe = red.stall_since + config_.reissue_delay;
    if (queue_.now() >= ripe) {
      ++result_.origin_refetches;
      begin_fetch(r, /*from_origin=*/true);
      return;
    }
    red.event = queue_.schedule(
        std::min(ripe, queue_.now() + 5.0), [this, r] {
          reducers_[r].event = EventQueue::Handle();
          advance(r);
        });
    return;
  }
  red.stalled = false;
  red.stall_since = -1.0;
  begin_fetch(r, /*from_origin=*/false);
}

void ReducePhaseSimulation::begin_fetch(std::uint32_t r, bool from_origin) {
  Reducer& red = reducers_[r];
  const auto [src, bytes] = sources_[red.next_source];
  red.fetching = true;
  red.stalled = false;
  red.stall_since = -1.0;
  red.fetch_src = from_origin ? cluster::kOriginEndpoint : src;
  red.fetch = network_.request(red.fetch_src, red.node, bytes, queue_.now());
  ++result_.shuffle_fetches;
  red.event = queue_.schedule(red.fetch.end,
                              [this, r] { on_fetch_done(r); });
}

void ReducePhaseSimulation::on_fetch_done(std::uint32_t r) {
  Reducer& red = reducers_[r];
  red.fetching = false;
  result_.shuffle_bytes += sources_[red.next_source].second;
  network_.on_transfer_complete(sources_[red.next_source].second);
  ++red.next_source;
  advance(r);
}

void ReducePhaseSimulation::on_reduce_done(std::uint32_t r) {
  Reducer& red = reducers_[r];
  red.executing = false;
  red.done = true;
  ++done_count_;
  result_.elapsed = queue_.now();
}

void ReducePhaseSimulation::on_node_down(cluster::NodeIndex node) {
  up_[node] = false;
  for (std::uint32_t r = 0; r < reducers_.size(); ++r) {
    Reducer& red = reducers_[r];
    if (!red.assigned || red.done) continue;
    if (red.node == node) {
      // Host died: reassign the attempt and restart its shuffle.
      red.event.cancel();
      if (red.fetching) network_.abort(red.fetch, queue_.now());
      red.assigned = false;
      ++result_.reducer_reassignments;
      const std::uint32_t id = r;
      queue_.schedule(queue_.now(), [this, id] { assign_reducer(id); });
      continue;
    }
    if (red.fetching && red.fetch_src == node) {
      // Source died mid-fetch: stall and retry via advance() (which
      // waits for the node or falls back to the origin).
      red.event.cancel();
      red.fetching = false;
      network_.abort(red.fetch, queue_.now());
      red.stall_since = queue_.now();
      red.stalled = true;
      const std::uint32_t id = r;
      queue_.schedule(queue_.now(), [this, id] {
        reducers_[id].event = EventQueue::Handle();
        advance(id);
      });
    }
  }
  network_.reset_uplink(node, queue_.now());
}

void ReducePhaseSimulation::on_node_up(cluster::NodeIndex node) {
  up_[node] = true;
  network_.reset_uplink(node, queue_.now());
  // Stalled reducers waiting on this source will notice at their next
  // scheduled retry (<= 5 s away).
}

}  // namespace adapt::sim
