#include "sim/injector.h"

#include <algorithm>
#include <stdexcept>

namespace adapt::sim {

InterruptionInjector::InterruptionInjector(
    EventQueue& queue, const std::vector<cluster::NodeSpec>& nodes,
    Listener& listener, common::Rng rng)
    : InterruptionInjector(queue, nodes, listener, rng, Config{}) {}

InterruptionInjector::InterruptionInjector(
    EventQueue& queue, const std::vector<cluster::NodeSpec>& nodes,
    Listener& listener, common::Rng rng, Config config)
    : queue_(queue),
      nodes_(nodes),
      listener_(listener),
      rng_(rng),
      config_(config),
      up_(nodes.size(), true),
      departed_(nodes.size(), false),
      model_(nodes.size()),
      replay_(nodes.size()) {
  if (nodes_.empty()) throw std::invalid_argument("injector: no nodes");
  horizon_ = config_.replay_horizon;
  if (horizon_ <= 0) {
    for (const cluster::NodeSpec& node : nodes_) {
      for (const trace::DownInterval& iv : node.down_intervals) {
        horizon_ = std::max(horizon_, iv.up);
      }
    }
  }
}

void InterruptionInjector::set_up(cluster::NodeIndex node, bool up) {
  // A departed node never comes back; stale up-events (e.g. an
  // uncancellable uptime-clock recovery) are dropped here.
  if (up && departed_.at(node)) return;
  if (up_.at(node) == up) return;
  up_[node] = up;
  ++transitions_;
  if (up) {
    listener_.on_node_up(node);
  } else {
    listener_.on_node_down(node);
  }
}

void InterruptionInjector::start() {
  if (queue_.now() != 0.0) {
    throw std::logic_error("injector: start() must run at time zero");
  }
  for (cluster::NodeIndex i = 0; i < nodes_.size(); ++i) {
    const cluster::NodeSpec& spec = nodes_[i];
    // Replay cursors are positioned up front whether the node is present
    // now or joins later; arming is what is deferred for late joiners.
    if (spec.mode == cluster::AvailabilityMode::kReplay &&
        !spec.down_intervals.empty()) {
      ReplayState& rs = replay_[i];
      if (!config_.replay_offsets.empty()) {
        rs.offset = config_.replay_offsets.at(i);
      } else {
        rs.offset = config_.randomize_replay_offset
                        ? rng_.uniform(0.0, horizon_)
                        : 0.0;
      }
      // Skip intervals that ended before the offset.
      while (rs.next_interval < spec.down_intervals.size() &&
             spec.down_intervals[rs.next_interval].up <= rs.offset) {
        ++rs.next_interval;
      }
      if (rs.next_interval == spec.down_intervals.size()) {
        rs.next_interval = 0;
        rs.shift = horizon_;
      }
    }

    const bool joins_late =
        i < config_.join_at.size() && config_.join_at[i] > 0.0;
    if (joins_late) {
      // Absent until its join time: down (not departed) from t = 0, then
      // joins up and starts its availability process from there.
      queue_.schedule(0.0, [this, i] { set_up(i, false); });
      const common::Seconds join = config_.join_at[i];
      queue_.schedule(join, [this, i] {
        if (departed_[i]) return;  // left before ever joining
        set_up(i, true);
        arm_node(i);
      });
      schedule_departure(i);
      continue;
    }

    switch (spec.mode) {
      case cluster::AvailabilityMode::kAlwaysUp:
        break;
      case cluster::AvailabilityMode::kModel: {
        if (spec.params.lambda <= 0) break;
        if (!config_.initial_down_until.empty() &&
            config_.initial_down_until[i] > 0.0) {
          // Start mid-outage; the node returns when the residual busy
          // period ends. Fresh arrivals keep queueing onto it for the
          // absolute clock; for the uptime clock the next arrival is
          // armed on recovery.
          ModelState& ms = model_[i];
          ms.busy_until = config_.initial_down_until[i];
          queue_.schedule(0.0, [this, i] { set_up(i, false); });
          if (spec.arrival_clock == cluster::ArrivalClock::kUptime) {
            queue_.schedule(ms.busy_until, [this, i] {
              set_up(i, true);
              arm_model_arrival(i);
            });
          } else {
            ms.up_event = queue_.schedule(ms.busy_until, [this, i] {
              set_up(i, true);
            });
            arm_model_arrival(i);
          }
          break;
        }
        arm_model_arrival(i);
        break;
      }
      case cluster::AvailabilityMode::kReplay: {
        if (spec.down_intervals.empty()) break;
        schedule_replay_next(i);
        break;
      }
    }
    schedule_departure(i);
  }

  if (config_.burst_at >= 0.0 && config_.burst_fraction > 0.0) {
    // Correlated burst: each survivor departs independently with
    // probability burst_fraction at one instant.
    queue_.schedule(config_.burst_at, [this] {
      for (cluster::NodeIndex i = 0; i < nodes_.size(); ++i) {
        if (departed_[i]) continue;
        if (rng_.uniform() < config_.burst_fraction) depart(i);
      }
    });
  }

  if (config_.domain_burst_at >= 0.0 && config_.domain_burst_count > 0) {
    if (config_.domain_of.size() != nodes_.size()) {
      throw std::invalid_argument(
          "injector: domain burst needs domain_of for every node");
    }
    queue_.schedule(config_.domain_burst_at, [this] {
      // Draw domain_burst_count distinct domains without replacement
      // (partial Fisher-Yates), then kill every survivor inside them.
      std::uint32_t domain_count = 0;
      for (const std::uint32_t d : config_.domain_of) {
        domain_count = std::max(domain_count, d + 1);
      }
      std::vector<std::uint32_t> pool(domain_count);
      for (std::uint32_t d = 0; d < domain_count; ++d) pool[d] = d;
      const std::uint32_t picks =
          std::min(config_.domain_burst_count, domain_count);
      std::vector<bool> hit(domain_count, false);
      for (std::uint32_t k = 0; k < picks; ++k) {
        const std::size_t j =
            k + rng_.uniform_index(pool.size() - k);
        std::swap(pool[k], pool[j]);
        hit[pool[k]] = true;
      }
      for (cluster::NodeIndex i = 0; i < nodes_.size(); ++i) {
        if (departed_[i]) continue;
        if (hit[config_.domain_of[i]]) depart(i);
      }
    });
  }
}

double InterruptionInjector::departure_rate_for(
    cluster::NodeIndex node) const {
  if (!config_.departure_rates.empty()) {
    return config_.departure_rates.at(node);
  }
  return config_.departure_rate;
}

void InterruptionInjector::schedule_departure(cluster::NodeIndex node) {
  const double rate = departure_rate_for(node);
  if (rate <= 0.0) return;  // no draw: unconfigured runs stay untouched
  const common::Seconds at = rng_.exponential(rate);
  queue_.schedule(at, [this, node] { depart(node); });
}

void InterruptionInjector::depart(cluster::NodeIndex node) {
  if (departed_.at(node)) return;
  departed_[node] = true;  // before the down event, so listeners that
                           // query is_departed() during on_node_down see
                           // the final state
  ++departures_;
  model_[node].up_event.cancel();
  set_up(node, false);  // no-op if already down (or never joined)
  listener_.on_node_departed(node);
}

void InterruptionInjector::arm_node(cluster::NodeIndex node) {
  const cluster::NodeSpec& spec = nodes_[node];
  switch (spec.mode) {
    case cluster::AvailabilityMode::kAlwaysUp:
      break;
    case cluster::AvailabilityMode::kModel:
      if (spec.params.lambda > 0) arm_model_arrival(node);
      break;
    case cluster::AvailabilityMode::kReplay:
      if (!spec.down_intervals.empty()) schedule_replay_next(node);
      break;
  }
}

void InterruptionInjector::arm_model_arrival(cluster::NodeIndex node) {
  if (departed_.at(node)) return;
  const double lambda = nodes_[node].params.lambda;
  const common::Seconds at = queue_.now() + rng_.exponential(lambda);
  queue_.schedule(at, [this, node] { on_model_arrival(node); });
}

void InterruptionInjector::on_model_arrival(cluster::NodeIndex node) {
  if (departed_.at(node)) return;
  const cluster::NodeSpec& spec = nodes_[node];
  const double service = spec.service_time
                             ? spec.service_time->sample(rng_)
                             : rng_.exponential(1.0 / spec.params.mu);
  ModelState& ms = model_[node];
  const common::Seconds now = queue_.now();

  if (spec.arrival_clock == cluster::ArrivalClock::kUptime) {
    // The interruption clock pauses during repair: no overlapping
    // arrivals; the next one is armed only once the node is back.
    set_up(node, false);
    ms.busy_until = now + service;
    queue_.schedule(ms.busy_until, [this, node] {
      set_up(node, true);
      arm_model_arrival(node);
    });
    return;
  }

  // Absolute-time clock: FCFS repair queue, an arrival during an outage
  // extends it (M/G/1).
  ms.busy_until = std::max(ms.busy_until, now) + service;
  set_up(node, false);
  ms.up_event.cancel();
  ms.up_event = queue_.schedule(ms.busy_until, [this, node] {
    // Only the newest up-event survives, so the queue is drained here.
    set_up(node, true);
  });
  arm_model_arrival(node);
}

trace::DownInterval InterruptionInjector::replay_peek(
    cluster::NodeIndex node) const {
  const ReplayState& rs = replay_[node];
  const trace::DownInterval& iv =
      nodes_[node].down_intervals[rs.next_interval];
  return {iv.down - rs.offset + rs.shift, iv.up - rs.offset + rs.shift};
}

void InterruptionInjector::replay_advance(cluster::NodeIndex node) {
  ReplayState& rs = replay_[node];
  ++rs.next_interval;
  if (rs.next_interval >= nodes_[node].down_intervals.size()) {
    rs.next_interval = 0;
    rs.shift += horizon_;
  }
}

void InterruptionInjector::schedule_replay_next(cluster::NodeIndex node) {
  if (departed_.at(node)) return;
  const common::Seconds now = queue_.now();
  // Find the next interval still (partially) ahead of now; intervals
  // swallowed by a long repair that ran past them are skipped.
  for (int guard = 0; guard < 1 << 20; ++guard) {
    const trace::DownInterval iv = replay_peek(node);
    if (iv.up <= now) {
      replay_advance(node);
      continue;
    }
    const common::Seconds down_at = std::max(iv.down, now);
    queue_.schedule(down_at, [this, node] { set_up(node, false); });
    queue_.schedule(iv.up, [this, node] {
      if (departed_[node]) return;  // chain ends with the node
      set_up(node, true);
      replay_advance(node);
      schedule_replay_next(node);
    });
    return;
  }
  throw std::logic_error("injector: replay interval scan diverged");
}

std::vector<common::Seconds> draw_initial_down(
    const std::vector<cluster::NodeSpec>& nodes, common::Rng& rng,
    common::Seconds unstable_residual) {
  std::vector<common::Seconds> out(nodes.size(), 0.0);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const cluster::NodeSpec& node = nodes[i];
    if (node.mode != cluster::AvailabilityMode::kModel ||
        node.params.lambda <= 0 || node.params.mu <= 0) {
      continue;
    }
    const double rho = node.params.utilization();
    if (rng.uniform() >= std::min(rho, 1.0)) continue;  // starts up
    if (node.params.stable()) {
      const double busy_mean = node.params.mu / (1.0 - rho);
      out[i] = rng.exponential(1.0 / busy_mean);
    } else {
      // Unstable queue: the backlog only grows; the node is effectively
      // gone for any job-length horizon.
      out[i] = unstable_residual * (0.5 + rng.uniform());
    }
    if (out[i] <= 0.0) out[i] = 1e-9;
  }
  return out;
}

std::vector<common::Seconds> draw_replay_offsets(
    const std::vector<cluster::NodeSpec>& nodes, common::Seconds horizon,
    common::Rng& rng) {
  std::vector<common::Seconds> offsets(nodes.size(), 0.0);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].mode == cluster::AvailabilityMode::kReplay &&
        !nodes[i].down_intervals.empty()) {
      offsets[i] = rng.uniform(0.0, horizon);
    }
  }
  return offsets;
}

bool replay_up_at(const cluster::NodeSpec& node, common::Seconds offset) {
  // Intervals are sorted and non-overlapping: find the last one starting
  // at or before the offset.
  const auto& ivs = node.down_intervals;
  const auto it = std::upper_bound(
      ivs.begin(), ivs.end(), offset,
      [](common::Seconds t, const trace::DownInterval& iv) {
        return t < iv.down;
      });
  if (it == ivs.begin()) return true;
  return offset >= std::prev(it)->up;
}

}  // namespace adapt::sim
