// Reduce-phase extension (the paper's Section VII future work: "optimize
// the reduce phase performance").
//
// Model: when the map phase ends, every map task's output (a configurable
// fraction of its input block) sits on the node that won the task. Each
// reducer is assigned to a host, pulls its partition of every map output
// over the bounded-bandwidth network (one fetch per distinct source,
// sized as that source's aggregate contribution), then runs its reduce
// computation. Interruptions follow the same injector as the map phase:
//
//  * a source that goes down stalls the fetch (resume on return), and
//    after `reissue_delay` the missing partition is re-served by the
//    origin (map outputs are re-creatable: the runtime can re-run maps);
//  * a reducer whose host dies is reassigned to another live host and
//    starts its shuffle from scratch — Hadoop's reduce-attempt retry.
//
// Reducer placement is pluggable: uniform-random over live hosts (stock
// Hadoop) or availability-aware (weights proportional to 1/E[T], ADAPT's
// idea applied to reducers).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cluster/network.h"
#include "cluster/topology.h"
#include "common/rng.h"
#include "sim/event_queue.h"
#include "sim/injector.h"

namespace adapt::sim {

struct ReduceConfig {
  std::uint32_t reducers = 0;   // 0 = one per cluster node
  // Map output bytes as a fraction of map input bytes (Terasort
  // shuffles its whole input; aggregation jobs far less).
  double output_ratio = 1.0;
  // Reduce computation time per reducer; < 0 = auto, proportional to
  // the shuffled bytes at the map task rate (gamma_map per block).
  common::Seconds gamma_reduce = -1.0;
  double gamma_map = 12.0;      // only for the auto rule above
  // Availability-aware reducer placement: weight hosts by 1/E[T]
  // computed from `params` (else uniform over live hosts).
  bool availability_aware = false;
  std::vector<avail::InterruptionParams> params;  // for the weights
  common::Seconds reissue_delay = 600.0;
  std::uint64_t seed = 1;
  bool randomize_replay_offset = true;
  common::Seconds replay_horizon = 0.0;
  std::vector<common::Seconds> replay_offsets;
  std::vector<common::Seconds> initial_down_until;
};

struct ReduceResult {
  common::Seconds elapsed = 0.0;  // map end -> last reducer done
  std::uint64_t reducers = 0;
  std::uint64_t shuffle_fetches = 0;
  std::uint64_t origin_refetches = 0;   // partitions re-served by origin
  std::uint64_t reducer_reassignments = 0;  // host died mid-reduce
  std::uint64_t shuffle_bytes = 0;
};

// Simulates the shuffle + reduce phase. `map_winners[t]` is the node
// that executed map task t (JobResult::winner_nodes, recorded when
// SimJobConfig::record_completion_times is set).
class ReducePhaseSimulation : public InterruptionInjector::Listener {
 public:
  ReducePhaseSimulation(const cluster::Cluster& cluster,
                        const std::vector<cluster::NodeIndex>& map_winners,
                        ReduceConfig config);

  ReduceResult run();

  // InterruptionInjector::Listener
  void on_node_down(cluster::NodeIndex node) override;
  void on_node_up(cluster::NodeIndex node) override;

 private:
  struct Reducer {
    bool assigned = false;
    cluster::NodeIndex node = 0;
    std::size_t next_source = 0;   // index into sources_
    bool fetching = false;
    bool executing = false;
    bool stalled = false;          // current fetch's source is down
    bool done = false;
    cluster::TransferGrant fetch;
    cluster::NodeIndex fetch_src = 0;
    common::Seconds stall_since = -1.0;
    EventQueue::Handle event;
  };

  void assign_reducer(std::uint32_t r);
  void advance(std::uint32_t r);
  void begin_fetch(std::uint32_t r, bool from_origin);
  void on_fetch_done(std::uint32_t r);
  void on_reduce_done(std::uint32_t r);
  std::optional<cluster::NodeIndex> pick_host(common::Rng& rng) const;
  bool all_done() const { return done_count_ == reducers_.size(); }

  const cluster::Cluster& cluster_;
  ReduceConfig config_;
  EventQueue queue_;
  cluster::Network network_;
  common::Rng rng_;
  InterruptionInjector injector_;

  // sources_[i] = (node, bytes) pairs every reducer pulls from.
  std::vector<std::pair<cluster::NodeIndex, std::uint64_t>> sources_;
  std::vector<double> weights_;  // reducer-placement weights
  std::vector<Reducer> reducers_;
  std::vector<bool> up_;
  double gamma_reduce_ = 0.0;
  std::size_t done_count_ = 0;
  ReduceResult result_;
};

// Convenience: run map then reduce and return both results.
struct MapReduceJobResult;

}  // namespace adapt::sim
