#include "sim/rereplication.h"

#include "sim/backoff.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace adapt::sim {

ReReplicator::ReReplicator(EventQueue& queue, hdfs::NameNode& namenode,
                           cluster::Network& network,
                           std::uint64_t block_bytes, Config config,
                           common::Rng rng, NodeUpFn node_up)
    : queue_(queue),
      namenode_(namenode),
      network_(network),
      block_bytes_(block_bytes),
      config_(config),
      rng_(rng),
      node_up_(std::move(node_up)) {
  if (config_.max_concurrent < 1) {
    throw std::invalid_argument("rereplication: max_concurrent must be >= 1");
  }
  if (config_.max_retries < 0 ||
      !backoff_params_valid({config_.backoff_base, config_.backoff_factor,
                             config_.backoff_jitter, config_.max_backoff})) {
    throw std::invalid_argument("rereplication: bad backoff config");
  }
  if (!node_up_) {
    throw std::invalid_argument("rereplication: node_up callback required");
  }
}

void ReReplicator::set_policy(placement::PolicyPtr policy) {
  policy_ = std::move(policy);
}

void ReReplicator::set_metrics(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  if (metrics_ == nullptr) return;
  ctr_started_ = metrics_->counter("rereplication.started");
  ctr_completed_ = metrics_->counter("rereplication.completed");
  ctr_retries_ = metrics_->counter("rereplication.retries");
  ctr_giveups_ = metrics_->counter("rereplication.giveups");
  ctr_bytes_ = metrics_->counter("rereplication.bytes");
  gauge_backlog_ = metrics_->gauge("rereplication.under_replicated_max");
}

int ReReplicator::target_replication(hdfs::BlockId block) const {
  return namenode_.file(namenode_.block(block).file).replication;
}

bool ReReplicator::tracked(hdfs::BlockId block) const {
  return std::find(tracked_.begin(), tracked_.end(), block) !=
         tracked_.end();
}

void ReReplicator::finish_block(hdfs::BlockId block) {
  const auto it = std::find(tracked_.begin(), tracked_.end(), block);
  if (it != tracked_.end()) tracked_.erase(it);
}

void ReReplicator::note_backlog() {
  const auto depth = static_cast<std::uint64_t>(backlog());
  if (depth > stats_.max_under_replicated) {
    stats_.max_under_replicated = depth;
    if (metrics_ != nullptr) {
      metrics_->set(gauge_backlog_, static_cast<double>(depth));
    }
  }
}

void ReReplicator::enqueue(hdfs::BlockId block) {
  if (!config_.enabled) return;
  if (tracked(block)) return;
  const hdfs::BlockInfo& info = namenode_.block(block);
  if (info.replicas.empty()) {
    // Nothing to copy from: the data is gone. The job layer decides what
    // that means (origin re-fetch or a structured loss report).
    ++stats_.unrecoverable;
    return;
  }
  if (static_cast<int>(info.replicas.size()) >= target_replication(block)) {
    return;  // already at target
  }
  ++stats_.enqueued;
  tracked_.push_back(block);
  pending_.push_back({block, 0, 0.0});
  note_backlog();
  pump();
}

void ReReplicator::on_node_up(cluster::NodeIndex node) {
  (void)node;  // any returning node may unblock a source or destination
  if (!config_.enabled) return;
  pump();
}

void ReReplicator::on_node_down(cluster::NodeIndex node) {
  if (!config_.enabled) return;
  // Sweep in-flight transfers touching the node; fail_transfer erases by
  // swap, so walk backwards.
  for (std::size_t i = in_flight_.size(); i-- > 0;) {
    const Transfer& t = in_flight_[i];
    if (t.src == node || t.dst == node) {
      fail_transfer(i, obs::TraceReason::kNodeDown);
    }
  }
  pump();
}

void ReReplicator::pump() {
  if (!policy_) return;  // not armed yet
  const bool profile = spans_ != nullptr && !pending_.empty();
  if (profile) spans_->begin("rereplication_batch", span_clock_->now());
  drain();
  if (profile) spans_->end(span_clock_->now());
}

void ReReplicator::drain() {
  // The scan below erases entries as it goes, so "no candidate" needs a
  // sentinel that can never collide with a shrunken pending_.size().
  constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
  while (static_cast<int>(in_flight_.size()) < config_.max_concurrent) {
    // Pick the ready block with the fewest live replicas (ties by id).
    const common::Seconds now = queue_.now();
    std::size_t best = kNone;
    std::size_t best_replicas = std::numeric_limits<std::size_t>::max();
    for (std::size_t i = 0; i < pending_.size();) {
      const Repair& rep = pending_[i];
      const hdfs::BlockInfo& info = namenode_.block(rep.block);
      if (info.replicas.empty()) {
        // Lost while waiting (its last holder died too).
        ++stats_.unrecoverable;
        finish_block(rep.block);
        pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
        continue;
      }
      if (static_cast<int>(info.replicas.size()) >=
          target_replication(rep.block)) {
        finish_block(rep.block);  // repaired by other means
        pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
        continue;
      }
      const bool has_source =
          std::any_of(info.replicas.begin(), info.replicas.end(),
                      [this](cluster::NodeIndex n) { return node_up_(n); });
      if (rep.not_before <= now && has_source &&
          (info.replicas.size() < best_replicas ||
           (info.replicas.size() == best_replicas &&
            rep.block < pending_[best].block))) {
        best = i;
        best_replicas = info.replicas.size();
      }
      ++i;
    }
    if (best == kNone) return;        // nothing ready
    if (!start_repair(best)) return;  // no destination available now
  }
}

bool ReReplicator::start_repair(std::size_t pending_index) {
  const Repair rep = pending_[pending_index];
  const common::Seconds now = queue_.now();
  const hdfs::BlockInfo& info = namenode_.block(rep.block);

  // Source: live holder whose uplink frees up earliest (ties by index).
  cluster::NodeIndex src = 0;
  bool have_src = false;
  common::Seconds src_free = 0.0;
  for (const cluster::NodeIndex holder : info.replicas) {
    if (!node_up_(holder)) continue;
    const common::Seconds free_at = network_.uplink_available_at(holder);
    if (!have_src || free_at < src_free ||
        (free_at == src_free && holder < src)) {
      src = holder;
      src_free = free_at;
      have_src = true;
    }
  }
  if (!have_src) return false;  // raced with an outage; pump again later

  // Destination: active policy over up, non-dead, non-holder nodes with
  // space that aren't already receiving the block as a pending-move
  // target. The NameNode builds that mask incrementally; only nodes
  // that pass it consult the node_up_ callback.
  cluster::NodeMask eligible =
      namenode_.eligibility_for_new_replica(rep.block);
  eligible.for_each_set([&](std::uint32_t n) {
    if (!node_up_(static_cast<cluster::NodeIndex>(n))) eligible.reset(n);
  });
  std::optional<cluster::NodeIndex> dst;
  if (eligible.any()) {
    // Keyed draw (block, replica ordinal being recreated): consistent-
    // hash policies recover their original bucket; sampling policies
    // consume the rng exactly as before.
    dst = policy_->choose_keyed(
        rep.block, static_cast<std::uint32_t>(info.replicas.size()),
        eligible, rng_);
  }
  if (!dst) {
    // No landing spot right now (everything up is full or a holder).
    // Gate this block behind a flat delay and let the pump move on; the
    // retry budget is not consumed — a full cluster is not a transfer
    // failure.
    Repair& entry = pending_[pending_index];
    entry.not_before = now + std::max(config_.backoff_base, 1.0);
    queue_.schedule(entry.not_before, [this] { pump(); });
    return true;
  }

  pending_.erase(pending_.begin() +
                 static_cast<std::ptrdiff_t>(pending_index));

  Transfer t;
  t.block = rep.block;
  t.src = src;
  t.dst = *dst;
  t.retries = rep.retries;
  t.grant = network_.request(src, *dst, block_bytes_, now);
  const std::uint64_t ticket = t.grant.ticket;
  t.done =
      queue_.schedule(t.grant.end, [this, ticket] { on_transfer_done(ticket); });
  ++stats_.started;
  if (metrics_ != nullptr) metrics_->add(ctr_started_);
  trace({.type = obs::EventType::kRereplicationStart,
         .node = t.dst,
         .peer = t.src,
         .task = t.block,
         .aux = static_cast<std::uint32_t>(t.retries),
         .ticket = t.grant.ticket,
         .v0 = t.grant.start,
         .v1 = t.grant.end});
  in_flight_.push_back(std::move(t));
  return true;
}

void ReReplicator::on_transfer_done(std::uint64_t ticket) {
  std::size_t index = in_flight_.size();
  for (std::size_t i = 0; i < in_flight_.size(); ++i) {
    if (in_flight_[i].grant.ticket == ticket) {
      index = i;
      break;
    }
  }
  if (index == in_flight_.size()) return;  // aborted concurrently
  const Transfer t = std::move(in_flight_[index]);
  in_flight_[index] = std::move(in_flight_.back());
  in_flight_.pop_back();

  network_.on_transfer_complete(block_bytes_);
  // A migration commit can beat this transfer to the same destination
  // (the replica is then already registered there), and a revive block
  // report can refill the block mid-transfer — never push the replica
  // count past target, and only announce a copy that actually landed.
  bool added = false;
  {
    const hdfs::BlockInfo& pre = namenode_.block(t.block);
    if (!pre.hosted_on(t.dst) &&
        static_cast<int>(pre.replicas.size()) <
            target_replication(t.block)) {
      namenode_.add_replica(t.block, t.dst);
      added = true;
    }
  }
  ++stats_.completed;
  stats_.bytes_moved += block_bytes_;
  if (metrics_ != nullptr) {
    metrics_->add(ctr_completed_);
    metrics_->add(ctr_bytes_, static_cast<double>(block_bytes_));
  }
  trace({.type = obs::EventType::kRereplicationDone,
         .node = t.dst,
         .peer = t.src,
         .task = t.block,
         .ticket = t.grant.ticket,
         .v0 = static_cast<double>(block_bytes_)});

  const hdfs::BlockInfo& info = namenode_.block(t.block);
  if (static_cast<int>(info.replicas.size()) < target_replication(t.block)) {
    // Still short (the block lost more than one holder): queue the next
    // copy with a fresh retry budget.
    pending_.push_back({t.block, 0, 0.0});
  } else {
    finish_block(t.block);
  }
  if (added && on_replicated_) on_replicated_(t.block, t.dst);
  pump();
}

void ReReplicator::fail_transfer(std::size_t index, obs::TraceReason reason) {
  Transfer t = std::move(in_flight_[index]);
  in_flight_[index] = std::move(in_flight_.back());
  in_flight_.pop_back();
  t.done.cancel();
  network_.abort(t.grant, queue_.now());
  schedule_retry(t.block, t.retries, reason);
}

void ReReplicator::schedule_retry(hdfs::BlockId block, int retries_done,
                                  obs::TraceReason reason) {
  const int attempt = retries_done + 1;
  if (attempt > config_.max_retries) {
    ++stats_.giveups;
    if (metrics_ != nullptr) metrics_->add(ctr_giveups_);
    trace({.type = obs::EventType::kRereplicationGiveup,
           .task = block,
           .aux = static_cast<std::uint32_t>(attempt)});
    finish_block(block);
    if (on_giveup_) on_giveup_(block);
    return;
  }
  ++stats_.retries;
  if (metrics_ != nullptr) metrics_->add(ctr_retries_);
  const double delay = backoff_delay(
      {config_.backoff_base, config_.backoff_factor, config_.backoff_jitter,
       config_.max_backoff},
      retries_done, rng_);
  const common::Seconds next = queue_.now() + delay;
  trace({.type = obs::EventType::kRereplicationRetry,
         .reason = reason,
         .task = block,
         .aux = static_cast<std::uint32_t>(attempt),
         .v0 = next});
  pending_.push_back({block, attempt, next});
  queue_.schedule(next, [this] { pump(); });
}

}  // namespace adapt::sim
