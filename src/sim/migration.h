// Migration driver: streams pending rebalance moves over the bounded-
// bandwidth network and flips replica metadata only when the bytes have
// actually landed — the data-before-metadata discipline the one-shot
// `adapt` command never needed but online rebalancing must have.
//
// Each submitted move must already be *pending* in the NameNode
// (begin_move reserved destination space). The driver serves moves in
// submission order (FIFO) under two throttles: a concurrent-transfer
// cap and an optional bytes/s budget share, so rebalance traffic can
// never starve foreground job or recovery traffic. A transfer whose
// source departs retries from another live holder with exponential
// backoff + jitter; a departed destination aborts the reservation and
// redraws a fresh target from the active placement policy. After the
// retry budget the move is abandoned (the source replica is intact, so
// giving up is always safe).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "cluster/network.h"
#include "common/rng.h"
#include "hdfs/namenode.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "placement/policy.h"
#include "sim/event_queue.h"

namespace adapt::sim {

class MigrationDriver {
 public:
  struct Config {
    bool enabled = true;
    int max_concurrent = 2;  // transfer cap (rebalance vs everything else)
    // Token-bucket style rate share: a new transfer may only start once
    // block_bytes / budget_bytes_per_s seconds have elapsed since the
    // previous start. 0 = unlimited.
    double budget_bytes_per_s = 0.0;
    int max_retries = 4;
    common::Seconds backoff_base = 5.0;
    double backoff_factor = 2.0;
    // Multiplicative jitter: each delay is scaled by a uniform draw from
    // [1 - jitter, 1 + jitter]. 0 = deterministic backoff.
    double backoff_jitter = 0.2;
    common::Seconds max_backoff = 600.0;
  };

  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t started = 0;    // transfers begun (incl. retries)
    std::uint64_t committed = 0;  // moves whose metadata flipped
    std::uint64_t retries = 0;
    std::uint64_t giveups = 0;    // retry budget exhausted
    std::uint64_t redraws = 0;    // destination replaced mid-move
    std::uint64_t cancelled = 0;  // dropped by cancel_all
    std::uint64_t bytes_moved = 0;
    std::uint64_t max_backlog = 0;  // peak pending + in-flight
  };

  using NodeUpFn = std::function<bool(cluster::NodeIndex)>;
  using MoveFn = std::function<void(hdfs::BlockId, cluster::NodeIndex,
                                    cluster::NodeIndex)>;

  // `node_up` answers whether a node can move data right now; it must
  // stay valid for the driver's lifetime.
  MigrationDriver(EventQueue& queue, hdfs::NameNode& namenode,
                  cluster::Network& network, std::uint64_t block_bytes,
                  Config config, common::Rng rng, NodeUpFn node_up);

  // Destination sampler for redraws; refresh alongside the scheduler's
  // policy whenever availability estimates change.
  void set_policy(placement::PolicyPtr policy);
  // A move committed (block, vacated holder, new holder) — wire
  // scheduler locality updates here.
  void set_on_committed(MoveFn fn) { on_committed_ = std::move(fn); }
  // The driver stopped trying to execute this move.
  void set_on_aborted(MoveFn fn) { on_aborted_ = std::move(fn); }
  void set_tracer(obs::EventTracer* tracer) { tracer_ = tracer; }
  void set_metrics(obs::MetricsRegistry* metrics);
  // Profile each pump() batch as a "migration_batch" span; `clock`
  // supplies sim time and must outlive the driver.
  void set_spans(obs::SpanProfiler* spans, const EventQueue* clock) {
    spans_ = spans;
    span_clock_ = clock;
  }

  // Admit a move begin_move already reserved. No-op when disabled (the
  // caller should then abort the pending move itself).
  void submit(const hdfs::ReplicaMove& move);

  // Availability change notifications from the simulation.
  void on_node_up(cluster::NodeIndex node);
  void on_node_down(cluster::NodeIndex node);

  // Abandon all queued and in-flight moves, releasing every reservation
  // still held — called at job teardown so a NameNode that outlives the
  // simulation carries no orphan reservations.
  void cancel_all();

  const Stats& stats() const { return stats_; }
  std::size_t backlog() const { return pending_.size() + in_flight_.size(); }
  bool idle() const { return backlog() == 0; }

 private:
  struct Item {
    hdfs::ReplicaMove move;
    int retries = 0;
    common::Seconds not_before = 0.0;  // backoff gate
  };
  struct Flight {
    hdfs::ReplicaMove move;
    cluster::NodeIndex src = 0;  // actual byte source (may differ from from)
    int retries = 0;
    cluster::TransferGrant grant;
    EventQueue::Handle done;
  };

  void pump();
  void drain();
  // Start the pending item at `index`. Returns false when the pump
  // should stop scanning (budget gate or nothing startable).
  bool start_move(std::size_t index);
  void on_transfer_done(std::uint64_t ticket);
  void fail_flight(std::size_t index, obs::TraceReason reason);
  void schedule_retry(Item item, obs::TraceReason reason);
  void release_reservation(const hdfs::ReplicaMove& move);
  void note_backlog();

  void trace(obs::TraceRecord r) {
    if (tracer_ != nullptr) {
      r.t = queue_.now();
      tracer_->record(r);
    }
  }

  EventQueue& queue_;
  hdfs::NameNode& namenode_;
  cluster::Network& network_;
  std::uint64_t block_bytes_;
  Config config_;
  common::Rng rng_;
  NodeUpFn node_up_;
  placement::PolicyPtr policy_;
  MoveFn on_committed_;
  MoveFn on_aborted_;
  obs::EventTracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::SpanProfiler* spans_ = nullptr;
  const EventQueue* span_clock_ = nullptr;

  std::vector<Item> pending_;    // FIFO in submission order
  std::vector<Flight> in_flight_;
  common::Seconds budget_free_at_ = 0.0;  // next start the budget permits
  Stats stats_;

  obs::MetricsRegistry::Id ctr_submitted_ = 0;
  obs::MetricsRegistry::Id ctr_started_ = 0;
  obs::MetricsRegistry::Id ctr_committed_ = 0;
  obs::MetricsRegistry::Id ctr_retries_ = 0;
  obs::MetricsRegistry::Id ctr_giveups_ = 0;
  obs::MetricsRegistry::Id ctr_redraws_ = 0;
  obs::MetricsRegistry::Id ctr_bytes_ = 0;
  obs::MetricsRegistry::Id gauge_backlog_ = 0;
};

}  // namespace adapt::sim
