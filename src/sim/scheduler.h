// Task-selection bookkeeping for the map-phase scheduler.
//
// Mirrors Hadoop's JobTracker view of a map wave: every block is one map
// task; a TaskTracker asking for work is served, in order of preference,
//   1. a pending task with a replica on that node       (data-local)
//   2. any pending task with a live replica             (remote fetch)
//   3. a pending task whose replicas are all offline    (origin re-fetch)
//   4. a duplicate of a slow running attempt            (speculation —
//      handled by the simulator, which owns attempt state)
//
// The board tracks task status plus the queues serving (1)-(3) with lazy
// deletion, so every operation is amortized O(replica count).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "cluster/node.h"
#include "obs/trace.h"

namespace adapt::sim {

using TaskId = std::uint32_t;

enum class TaskStatus : std::uint8_t { kPending, kRunning, kDone };

class TaskBoard {
 public:
  // home_nodes[t] = nodes holding a replica of task t's block.
  explicit TaskBoard(
      std::vector<std::vector<cluster::NodeIndex>> home_nodes,
      std::size_t node_count);

  std::size_t task_count() const { return status_.size(); }
  std::size_t done_count() const { return done_; }
  bool all_done() const { return done_ == status_.size(); }
  std::size_t pending_count() const { return pending_; }

  TaskStatus status(TaskId task) const { return status_.at(task); }
  const std::vector<cluster::NodeIndex>& home_nodes(TaskId task) const {
    return home_nodes_.at(task);
  }
  bool is_local_to(TaskId task, cluster::NodeIndex node) const;

  // -- status transitions -------------------------------------------
  // All tasks start pending (done by the constructor).
  void mark_running(TaskId task);
  // A failed attempt puts the task back; it re-enters the global queue.
  void mark_pending(TaskId task);
  void mark_done(TaskId task);

  // -- the three take paths -----------------------------------------
  // (1) A pending task local to `node`, if any.
  std::optional<TaskId> take_local(cluster::NodeIndex node);
  // (2) The next globally pending task for which `has_live_replica`
  // holds; tasks failing the predicate are parked on the stalled queue,
  // stamped with the park time `now`.
  template <typename Pred>
  std::optional<TaskId> take_remote(common::Seconds now,
                                    const Pred& has_live_replica);
  // (3) A parked task that has been stalled for at least `min_age`
  // seconds (ripe for an origin re-fetch).
  std::optional<TaskId> take_stalled(common::Seconds now,
                                     common::Seconds min_age);
  // Park time of the oldest genuinely stalled task, if any.
  std::optional<common::Seconds> next_stalled_park();

  // A node recovered: its pending home tasks parked as stalled become
  // fetchable again. Returns how many were revived; `now` only stamps
  // the trace records.
  std::size_t revive_stalled_for(cluster::NodeIndex node,
                                 common::Seconds now = 0.0);

  // -- multi-attempt awareness --------------------------------------
  // The board tracks which attempt ids currently execute each task so
  // scheduler policies can reason about duplicates (speculation caps,
  // redundant launches, sibling cancellation) without the simulator
  // owning a parallel side table. Ids are opaque to the board.
  void register_attempt(TaskId task, std::uint32_t attempt);
  void unregister_attempt(TaskId task, std::uint32_t attempt);
  std::size_t attempt_count(TaskId task) const {
    return attempts_.at(task).size();
  }
  // Launch-ordered; invalidated by register/unregister.
  const std::vector<std::uint32_t>& attempts_of(TaskId task) const {
    return attempts_.at(task);
  }

  // -- replica-set churn --------------------------------------------
  // A re-replicated copy landed on `node`: the task becomes local there.
  void add_home(TaskId task, cluster::NodeIndex node);
  // `node` lost its copy (declared dead): the task is no longer local
  // there. The node's task list keeps a lazily-skipped stale entry.
  void remove_home(TaskId task, cluster::NodeIndex node);

  // Emit park/revive records to `tracer` (null = off).
  void set_tracer(obs::EventTracer* tracer) { tracer_ = tracer; }

 private:
  struct Flags {
    bool in_global = false;
    bool in_stalled = false;
  };

  void push_global(TaskId task);

  std::vector<std::vector<cluster::NodeIndex>> home_nodes_;
  // node -> tasks homed there (immutable lists, scanned with a cursor).
  std::vector<std::vector<TaskId>> node_tasks_;
  std::vector<std::size_t> node_pending_;  // pending tasks homed per node
  std::vector<std::size_t> node_cursor_;   // take_local scan position

  // A stalled entry remembers the park time it was queued with; after a
  // revive + re-park the task's stalled_since_ moves forward and the old
  // entry (now a stale duplicate) is recognized by the mismatch.
  struct StalledEntry {
    TaskId task;
    common::Seconds parked_at;
  };

  std::vector<TaskStatus> status_;
  std::vector<Flags> flags_;
  // task -> attempt ids currently executing it (launch order).
  std::vector<std::vector<std::uint32_t>> attempts_;
  std::vector<common::Seconds> stalled_since_;
  std::deque<TaskId> global_;
  std::deque<StalledEntry> stalled_;
  std::size_t done_ = 0;
  std::size_t pending_ = 0;
  obs::EventTracer* tracer_ = nullptr;
};

template <typename Pred>
std::optional<TaskId> TaskBoard::take_remote(common::Seconds now,
                                             const Pred& has_live_replica) {
  while (!global_.empty()) {
    const TaskId task = global_.front();
    global_.pop_front();
    flags_[task].in_global = false;
    if (status_[task] != TaskStatus::kPending) continue;
    if (has_live_replica(task)) return task;
    if (!flags_[task].in_stalled) {
      flags_[task].in_stalled = true;
      stalled_since_[task] = now;
      stalled_.push_back({task, now});
      if (tracer_ != nullptr) {
        obs::TraceRecord r;
        r.t = now;
        r.type = obs::EventType::kTaskPark;
        r.task = task;
        tracer_->record(r);
      }
    }
  }
  return std::nullopt;
}

}  // namespace adapt::sim
