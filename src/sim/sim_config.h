// Simulation job configuration, its validation, and a checked builder.
//
// SimJobConfig is a plain aggregate so experiment code can fill fields
// directly; validate() centralizes every range check the simulation
// relies on (previously scattered across the MapReduceSimulation and
// ReReplicator constructors). The Builder wraps the same checks behind
// fluent setters that fail eagerly, at the call that supplied the bad
// value, with a structured ConfigError naming the offending field.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "availability/interruption_model.h"
#include "common/units.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "placement/policy.h"
#include "sim/migration.h"
#include "sim/rereplication.h"

namespace adapt::sim {

// A configuration value out of range. Derives std::invalid_argument so
// existing catch sites keep working; field() names the bad field for
// structured reporting (CLI flag mapping, test assertions).
class ConfigError : public std::invalid_argument {
 public:
  ConfigError(std::string field, const std::string& message)
      : std::invalid_argument("config." + field + ": " + message),
        field_(std::move(field)) {}

  const std::string& field() const { return field_; }

 private:
  std::string field_;
};

// Which SchedulerPolicy drives attempt launch / speculation decisions
// (see sim/scheduler_policy.h — this enum lives here so SchedulerConfig
// can be validated alongside the rest of the job config).
enum class SchedulerKind {
  kBaseline,    // Hadoop-style locality + global slack speculation
  kCalibrated,  // Eq. 5 quote + learned per-node margin speculation
  kRedundant,   // launch each task on k nodes, cancel on first finish
};

std::string to_string(SchedulerKind kind);

// Scheduling knobs, grouped. The flat SimJobConfig fields of the same
// names are a one-release deprecation shim: a flat field set away from
// its default overrides the sub-struct (effective_scheduler() merges),
// so pre-existing callers keep their behavior byte-identical.
struct SchedulerConfig {
  SchedulerKind kind = SchedulerKind::kBaseline;
  bool speculation = true;
  // Duplicate a running attempt when its remaining time exceeds
  // slack * (expected cost of running it fresh on the idle node).
  double speculation_slack = 1.2;
  // ... and only when the attempt is *overdue*: its projected finish has
  // slipped at least this many seconds past what it projected when it
  // was launched (Hadoop speculates laggards, not attempts progressing
  // at their normal rate). Negative = auto: one gamma.
  common::Seconds speculation_overdue = -1.0;
  int max_concurrent_attempts = 2;  // original + one speculative copy
  // kCalibrated: speculate when a task's realized running time exceeds
  // margin * max(1, cluster calibration ratio) * the placement-time
  // Eq. 5 quote of the node executing it.
  double calibrated_margin = 1.5;
  // kCalibrated: per-node placement-time E[T_i] quotes (Eq. 5), indexed
  // by node. Filled by run_experiment / JobStream from the Performance
  // Predictor; +inf marks an unusable node. Empty = fall back to the
  // baseline overdue rule.
  std::vector<double> node_quotes;
  // kRedundant: launch every task on this many nodes up-front; degrades
  // gracefully when fewer eligible nodes exist.
  int redundancy = 2;

  // Throws ConfigError naming "scheduler.<field>".
  void validate() const;
};

struct SimJobConfig {
  double gamma = 12.0;  // failure-free map task time, seconds (Table 4)
  // -- deprecated flat speculation knobs ----------------------------
  // Superseded by SchedulerConfig (the `scheduler` member below); kept
  // one release so existing aggregates / Builder calls keep working.
  // A flat field set away from its default wins over the sub-struct
  // (see effective_scheduler()).
  bool speculation = true;
  double speculation_slack = 1.2;
  common::Seconds speculation_overdue = -1.0;
  int max_concurrent_attempts = 2;  // original + one speculative copy
  // -----------------------------------------------------------------
  bool allow_origin_fetch = true;   // last resort when all replicas down
  // A task whose replicas are all offline is re-fetched from the origin
  // only after stalling this long (waiting out a short outage is cheaper
  // than a broadband transfer). Negative = auto: one block's transfer
  // time from the origin.
  common::Seconds origin_fetch_delay = -1.0;
  std::uint64_t seed = 1;
  bool randomize_replay_offset = true;
  common::Seconds replay_horizon = 0.0;  // 0 = derive from trace
  // Per-node replay offsets (see InterruptionInjector::Config); lets the
  // caller filter placement to nodes up at t = 0.
  std::vector<common::Seconds> replay_offsets;
  // Model-mode steady-state initial outages (see draw_initial_down).
  std::vector<common::Seconds> initial_down_until;
  // Allow idle nodes to run pending tasks of other nodes (with the block
  // migrated). Off = strictly local execution, an ablation knob.
  bool remote_execution = true;
  // A block transfer whose *source* goes down stalls (TCP rides out a
  // short outage) and resumes when the source returns, shifted by the
  // downtime; it aborts only when the outage exceeds this timeout
  // (Hadoop DFS client behaviour). 0 = abort immediately. Transfers
  // whose destination dies always abort (the task fails with its host).
  common::Seconds transfer_stall_timeout = 60.0;
  // A replica source whose uplink is backed up further than this is not
  // worth queueing on (the fetch would sit as a zombie attempt); the
  // task parks instead and is resolved by its home node or the origin.
  // Negative = auto: one block's transfer time on the source uplink.
  common::Seconds max_source_queue_wait = -1.0;
  // Record per-task completion times into JobResult (diagnostics).
  bool record_completion_times = false;
  // -- churn & recovery ---------------------------------------------
  // Permanent departures, dead-node declaration and re-replication.
  // Requires the mutable-NameNode constructor when enabled; everything
  // below is inert (and the run byte-identical to before) otherwise.
  struct ChurnConfig {
    bool enabled = false;
    // Injector: permanent-departure hazard / correlated burst / late
    // joins (see InterruptionInjector::Config).
    double departure_rate = 0.0;
    std::vector<double> departure_rates;
    common::Seconds burst_at = -1.0;
    double burst_fraction = 0.0;
    // Per-domain correlated burst: at domain_burst_at, domain_burst_count
    // random fault domains lose every surviving node at once. domain_of
    // maps node -> leaf domain id (filled automatically by
    // run_experiment when the cluster has a domain layout).
    common::Seconds domain_burst_at = -1.0;
    std::uint32_t domain_burst_count = 0;
    std::vector<std::uint32_t> domain_of;
    std::vector<common::Seconds> join_at;
    // Dead declaration: heartbeat cadence and how long a node must stay
    // believed-down past detection before its replicas are written off.
    common::Seconds heartbeat_interval = 3.0;
    int heartbeat_miss_threshold = 2;
    common::Seconds dead_timeout = 60.0;
    // -- gray failures ----------------------------------------------
    // Anything below switches the simulation from transition-level
    // heartbeat notifications ("the collector knows transitions
    // exactly") to message-level delivery: nodes emit beats every
    // heartbeat_interval and the collector infers state from what
    // arrives, so lost or partitioned beats cause genuine false
    // positives. All knobs are inert at their defaults.
    //
    // Per-beat Bernoulli loss probability (control plane only; the
    // node keeps running its tasks).
    double heartbeat_loss_prob = 0.0;
    // Timed control-plane partitions: every listed node (or every node
    // of the listed fault domain, resolved through domain_of) is
    // unreachable from the NameNode in [at, heal_at) while its tasks
    // keep running. domain >= 0 requires domain_of.
    struct Partition {
      common::Seconds at = 0.0;
      common::Seconds heal_at = 0.0;
      std::vector<std::uint32_t> nodes;
      std::int64_t domain = -1;
    };
    std::vector<Partition> partitions;
    // Degraded-mode stragglers: node's service rate is divided by
    // slow_factor during [at, until) with no down transition.
    struct Straggler {
      std::uint32_t node = 0;
      common::Seconds at = 0.0;
      common::Seconds until = 0.0;
      double slow_factor = 1.0;
    };
    std::vector<Straggler> stragglers;
    // Silent replica corruption (bitrot). bitrot_rate is a cluster-wide
    // Poisson hazard (events/s) corrupting one random live replica per
    // event, drawn on a dedicated RNG fork; corruptions lists scheduled
    // deterministic corruption events for seeded tests (node < 0 =
    // pick a random live holder of the block).
    double bitrot_rate = 0.0;
    struct Corruption {
      common::Seconds at = 0.0;
      std::uint32_t block = 0;
      std::int64_t node = -1;
    };
    std::vector<Corruption> corruptions;
    // Budgeted background block scanner: every scan_interval seconds,
    // verify checksums of scan_blocks_per_sweep blocks (round-robin).
    // 0 = scanner off; corruption is then only caught on reads.
    common::Seconds scan_interval = 0.0;
    int scan_blocks_per_sweep = 8;
    // NameNode safe mode (partition heuristic): when the fraction of
    // live nodes newly believed dead within one detection window
    // reaches this threshold, defer mass replica write-off for
    // safe_mode_hold seconds; nodes heard from again during the hold
    // are rescued, the rest are written off when it expires. 0 = off.
    double safe_mode_threshold = 0.0;
    common::Seconds safe_mode_hold = 30.0;
    // True when any knob forces message-level heartbeat delivery.
    bool message_level() const {
      return heartbeat_loss_prob > 0.0 || !partitions.empty();
    }
    // True when any gray-failure machinery is active at all (gray
    // metrics/traces are gated on this to keep crash-stop-only runs
    // byte-identical to the pre-gray simulator).
    bool gray_enabled() const {
      return message_level() || !stragglers.empty() ||
             bitrot_rate > 0.0 || !corruptions.empty() ||
             scan_interval > 0.0 || safe_mode_threshold > 0.0;
    }
    // Recovery pipeline knobs (rereplication.enabled switches the
    // pipeline off while keeping dead declaration on).
    ReReplicator::Config rereplication;
    // Builds the re-replication destination policy from the heartbeat
    // collector's current (lambda, mu) estimates; called at start and
    // after every dead declaration / recovery. Null = uniform random
    // over eligible nodes.
    std::function<placement::PolicyPtr(
        const std::vector<avail::InterruptionParams>&)>
        policy_factory;
  };
  ChurnConfig churn;
  // -- online rebalancing -------------------------------------------
  // Close the drift→rebalance loop: predictor-drift alarms trigger a
  // policy refresh and incremental migration of replicas whose
  // placement quality degraded past the hysteresis threshold. Requires
  // churn and calibration (the alarms come from the CUSUM detector).
  struct RebalanceConfig {
    bool enabled = false;
    // Migrate a replica only when its holder's E[T] quote exceeds
    // hysteresis * the cluster median quote — small estimate wobbles
    // must not thrash data around.
    double hysteresis = 2.0;
    // Minimum spacing between rebalance passes.
    common::Seconds cooldown = 120.0;
    // Transfer pipeline throttles (concurrency cap + bytes/s share).
    MigrationDriver::Config migration;
  };
  RebalanceConfig rebalance;
  // -- scheduling ---------------------------------------------------
  // Pluggable attempt/speculation policy (see sim/scheduler_policy.h).
  // Defaults reproduce the historical hardcoded behavior exactly.
  SchedulerConfig scheduler;
  // Optional observability sinks, owned by the caller; null = off. Each
  // instrumented site is a single null check on the disabled path.
  obs::EventTracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  obs::SpanProfiler* spans = nullptr;
  obs::CalibrationTracker* calibration = nullptr;
  // > 0 (and metrics set): sample the metric time-series every this many
  // simulated seconds; the calibration CUSUM steps on the same cadence.
  common::Seconds sample_dt = 0.0;
  // Ground truth the calibration drift detector compares estimates to
  // (per-node injector parameters); empty = skip CUSUM stepping.
  std::vector<avail::InterruptionParams> truth_params;

  // Throws ConfigError on the first out-of-range field. The simulation
  // constructor calls this, so hand-filled aggregates are still checked;
  // the Builder calls the same predicates per setter.
  void validate() const;

  // Deprecation merge: returns `scheduler` with any flat speculation
  // knob that was moved off its default value overriding the matching
  // sub-struct field. The simulation reads only the merged view, so
  // legacy flat-knob callers and new SchedulerConfig callers agree.
  SchedulerConfig effective_scheduler() const;

  class Builder;
};

// Checked construction: each setter validates its value immediately and
// throws ConfigError naming the field, so a bad knob fails at the line
// that set it instead of deep inside the simulation constructor.
//
//   auto config = SimJobConfig::Builder()
//                     .gamma(8.0)
//                     .speculation(true, /*slack=*/1.5)
//                     .dead_timeout(120.0)
//                     .build();
class SimJobConfig::Builder {
 public:
  Builder() = default;
  // Start from an existing aggregate (its values are re-checked by
  // build()).
  explicit Builder(SimJobConfig base) : config_(std::move(base)) {}

  Builder& gamma(double value);
  // Writes both the deprecated flat knobs and scheduler.* so either
  // read path sees the same values.
  Builder& speculation(bool enabled, double slack = 1.2,
                       common::Seconds overdue = -1.0);
  Builder& max_concurrent_attempts(int value);
  Builder& scheduler_kind(SchedulerKind kind);
  Builder& calibrated_margin(double value);
  Builder& redundancy(int value);
  Builder& origin_fetch(bool allowed, common::Seconds delay = -1.0);
  Builder& transfer_stall_timeout(common::Seconds value);
  Builder& seed(std::uint64_t value);
  Builder& churn(bool enabled);
  Builder& departure_rate(double value);
  Builder& burst(common::Seconds at, double fraction);
  Builder& domain_burst(common::Seconds at, std::uint32_t count);
  Builder& heartbeat(common::Seconds interval, int miss_threshold);
  Builder& dead_timeout(common::Seconds value);
  Builder& heartbeat_loss(double prob);
  Builder& partition(common::Seconds at, common::Seconds heal_at,
                     std::vector<std::uint32_t> nodes);
  Builder& domain_partition(common::Seconds at, common::Seconds heal_at,
                            std::uint32_t domain);
  Builder& straggler(std::uint32_t node, common::Seconds at,
                     common::Seconds until, double slow_factor);
  Builder& bitrot(double rate);
  Builder& corruption(common::Seconds at, std::uint32_t block,
                      std::int64_t node = -1);
  Builder& block_scanner(common::Seconds interval,
                         int blocks_per_sweep = 8);
  Builder& safe_mode(double threshold, common::Seconds hold = 30.0);
  Builder& rebalance(bool enabled, double hysteresis = 2.0,
                     common::Seconds cooldown = 120.0);

  // Final cross-field validation, then the finished config.
  SimJobConfig build() const;

 private:
  SimJobConfig config_;
};

}  // namespace adapt::sim
