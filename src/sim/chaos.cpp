#include "sim/chaos.h"

#include <algorithm>
#include <sstream>

#include "cluster/topology.h"
#include "common/rng.h"
#include "common/units.h"
#include "hdfs/namenode.h"
#include "obs/lineage.h"
#include "obs/trace.h"
#include "placement/random_policy.h"

namespace adapt::sim {
namespace {

cluster::Cluster build_cluster(const ChaosConfig& config) {
  cluster::Cluster c;
  c.block_size_bytes = 4 * common::kMiB;
  c.nodes.resize(config.nodes);
  for (cluster::NodeSpec& node : c.nodes) {
    node.mode = cluster::AvailabilityMode::kModel;
    node.params.lambda = config.interruption_lambda;
    node.params.mu = config.interruption_mu;
    node.uplink_bps = common::mbps(16);
    node.downlink_bps = common::mbps(16);
  }
  return c;
}

// Sample the gray-failure schedule the seed denotes. Every draw comes
// from one dedicated fork so the schedule is a pure function of the
// seed, independent of what the simulation itself consumes.
SimJobConfig::ChurnConfig build_schedule(const ChaosConfig& config) {
  common::Rng rng = common::Rng(config.seed).fork(0xc405);
  SimJobConfig::ChurnConfig churn;
  churn.enabled = true;
  churn.departure_rate = config.departure_rate;
  churn.heartbeat_interval = config.heartbeat_interval;
  churn.heartbeat_miss_threshold = config.heartbeat_miss_threshold;
  churn.dead_timeout = config.dead_timeout;

  churn.heartbeat_loss_prob = rng.uniform() * config.max_heartbeat_loss;

  const std::size_t partitions =
      config.max_partitions > 0
          ? rng.uniform_index(
                static_cast<std::size_t>(config.max_partitions) + 1)
          : 0;
  for (std::size_t p = 0; p < partitions; ++p) {
    SimJobConfig::ChurnConfig::Partition part;
    part.at = 5.0 + 60.0 * rng.uniform();
    part.heal_at = part.at + 12.0 + 40.0 * rng.uniform();
    const std::size_t cut = 1 + rng.uniform_index(config.nodes / 3 + 1);
    for (std::size_t i = 0; i < cut; ++i) {
      const std::uint32_t n =
          static_cast<std::uint32_t>(rng.uniform_index(config.nodes));
      if (std::find(part.nodes.begin(), part.nodes.end(), n) ==
          part.nodes.end()) {
        part.nodes.push_back(n);
      }
    }
    churn.partitions.push_back(std::move(part));
  }

  const std::size_t stragglers =
      config.max_stragglers > 0
          ? rng.uniform_index(
                static_cast<std::size_t>(config.max_stragglers) + 1)
          : 0;
  for (std::size_t s = 0; s < stragglers; ++s) {
    SimJobConfig::ChurnConfig::Straggler st;
    st.node = static_cast<std::uint32_t>(rng.uniform_index(config.nodes));
    st.at = 5.0 + 60.0 * rng.uniform();
    st.until = st.at + 15.0 + 60.0 * rng.uniform();
    st.slow_factor = 2.0 + 6.0 * rng.uniform();
    churn.stragglers.push_back(st);
  }

  const std::size_t corruptions =
      config.max_corruptions > 0
          ? 1 + rng.uniform_index(
                    static_cast<std::size_t>(config.max_corruptions))
          : 0;
  for (std::size_t c = 0; c < corruptions; ++c) {
    SimJobConfig::ChurnConfig::Corruption corr;
    corr.at = 3.0 + 60.0 * rng.uniform();
    corr.block = static_cast<std::uint32_t>(rng.uniform_index(config.blocks));
    corr.node = -1;
    churn.corruptions.push_back(corr);
  }

  if (config.scanner) {
    churn.scan_interval = 20.0;
    churn.scan_blocks_per_sweep = 8;
  }
  if (config.safe_mode) {
    churn.safe_mode_threshold = 0.25;
    churn.safe_mode_hold = 20.0;
  }
  return churn;
}

struct RunOutput {
  JobResult job;
  std::string trace_jsonl;
  std::string post_mortem;
};

RunOutput run_once(const ChaosConfig& config,
                   const SimJobConfig::ChurnConfig& schedule,
                   hdfs::NameNode& nn, hdfs::FileId& file_out) {
  const cluster::Cluster cluster = build_cluster(config);
  common::Rng place_rng = common::Rng(config.seed).fork(0x91ac);
  const hdfs::FileId file = nn.create_file(
      "chaos", config.blocks, config.replication,
      placement::make_random_policy(config.nodes), place_rng);
  file_out = file;

  obs::EventTracer tracer;
  // Online lineage: streams from the tracer, so the post-mortem stays
  // exact even if the ring were to overwrite.
  obs::LineageIndex lineage;
  tracer.set_sink(&lineage);
  SimJobConfig job_config;
  job_config.gamma = config.gamma;
  job_config.seed = config.seed;
  job_config.allow_origin_fetch = false;
  job_config.churn = schedule;
  job_config.tracer = &tracer;

  MapReduceSimulation sim(cluster, nn, file, job_config);
  RunOutput out;
  out.job = sim.run();
  out.post_mortem =
      obs::post_mortem_text(obs::post_mortem(lineage.take_snapshot()));
  obs::RunObservations obs;
  obs.records = tracer.take_records();
  obs.dropped = tracer.dropped();
  out.trace_jsonl = obs::to_jsonl({std::move(obs)});
  return out;
}

void check_invariants(const hdfs::NameNode& nn, hdfs::FileId file,
                      const ChaosConfig& config, const JobResult& job,
                      std::vector<ChaosViolation>& out) {
  const auto violation =
      [&out](const char* name, std::string detail,
             std::uint32_t block = ChaosViolation::kNoBlock) {
        out.push_back({name, std::move(detail), block});
      };

  // Metadata consistency over every block of the file.
  for (const hdfs::BlockId block : nn.file(file).blocks) {
    std::vector<cluster::NodeIndex> holders = nn.block(block).replicas;
    std::sort(holders.begin(), holders.end());
    if (std::adjacent_find(holders.begin(), holders.end()) !=
        holders.end()) {
      std::ostringstream os;
      os << "block " << block << " lists a holder twice";
      violation("duplicate_replica", os.str(), block);
    }
    for (const cluster::NodeIndex n : holders) {
      if (nn.is_dead(n)) {
        std::ostringstream os;
        os << "block " << block << " registered on written-off node " << n;
        violation("replica_on_dead_node", os.str(), block);
      }
    }
    if (static_cast<int>(holders.size()) > config.replication) {
      std::ostringstream os;
      os << "block " << block << " has " << holders.size()
         << " replicas, target " << config.replication;
      violation("over_replicated", os.str(), block);
    }
  }

  // Pending-move ledger must be empty: chaos runs no rebalancer, and
  // nothing else may leak a reservation.
  if (!nn.pending_moves().empty()) {
    std::ostringstream os;
    os << nn.pending_moves().size() << " pending move(s) leaked";
    violation("pending_moves_leaked", os.str());
  }

  // Loss honesty: a lost block must have no live uncorrupted replica
  // still registered — the job never writes off data it could read.
  const auto corrupt = [&job](hdfs::BlockId block, cluster::NodeIndex node) {
    for (const JobResult::CorruptReplica& c : job.corrupt_remaining) {
      if (c.block == block && c.node == node) return true;
    }
    return false;
  };
  for (const JobResult::LostBlock& lb : job.lost_blocks) {
    for (const cluster::NodeIndex n : nn.block(lb.block).replicas) {
      if (!nn.is_dead(n) && !corrupt(lb.block, n)) {
        std::ostringstream os;
        os << "lost block " << lb.block << " still has live clean replica on "
           << n;
        violation("lost_with_live_replica", os.str(), lb.block);
      }
    }
  }

  // Accounting ties out.
  if (job.tasks_lost != job.lost_blocks.size()) {
    std::ostringstream os;
    os << "tasks_lost " << job.tasks_lost << " != lost_blocks "
       << job.lost_blocks.size();
    violation("loss_accounting", os.str());
  }
  if (job.failed && job.failure.empty()) {
    violation("failure_label", "failed run carries no failure reason");
  }
  if (!job.failed && !job.lost_blocks.empty()) {
    violation("loss_accounting", "lost blocks on a run not marked failed");
  }
}

}  // namespace

ChaosReport run_chaos(const ChaosConfig& config) {
  ChaosReport report;
  report.schedule = build_schedule(config);

  hdfs::NameNode nn(config.nodes);
  hdfs::FileId file = 0;
  RunOutput first = run_once(config, report.schedule, nn, file);
  report.job = first.job;
  report.trace_jsonl = first.trace_jsonl;
  report.post_mortem = first.post_mortem;
  check_invariants(nn, file, config, first.job, report.violations);

  if (config.check_determinism) {
    hdfs::NameNode nn2(config.nodes);
    hdfs::FileId file2 = 0;
    RunOutput second = run_once(config, report.schedule, nn2, file2);
    if (second.trace_jsonl != first.trace_jsonl) {
      report.violations.push_back(
          {"nondeterminism",
           "same seed produced a different event trace on re-run"});
    }
    if (second.post_mortem != first.post_mortem) {
      report.violations.push_back(
          {"post_mortem_nondeterminism",
           "same seed produced a different loss classification on re-run"});
    }
  }
  return report;
}

}  // namespace adapt::sim
