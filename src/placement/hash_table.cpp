#include "placement/hash_table.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace adapt::placement {

std::string to_string(ChainWeighting weighting) {
  switch (weighting) {
    case ChainWeighting::kPaper:
      return "paper";
    case ChainWeighting::kOverlap:
      return "overlap";
  }
  return "?";
}

BlockHashTable::BlockHashTable(const std::vector<double>& weights,
                               std::uint64_t cells, ChainWeighting weighting)
    : cells_(cells), weighting_(weighting) {
  if (cells == 0) throw std::invalid_argument("hash table: zero cells");
  if (weights.empty()) throw std::invalid_argument("hash table: no nodes");

  double total = 0.0;
  for (double w : weights) {
    if (w < 0 || !std::isfinite(w)) {
      throw std::invalid_argument("hash table: weights must be finite, >= 0");
    }
    total += w;
  }
  if (total <= 0) {
    throw std::invalid_argument("hash table: all weights are zero");
  }

  shares_.resize(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    shares_[i] = weights[i] / total;
  }

  // Interval [a_i, b_i) per node in units of cells; chains built per
  // integer cell from interval overlaps.
  struct Segment {
    std::uint32_t node;
    double begin;
    double end;
    double rate;  // normalized share; the paper's chain-resolution weight
  };
  std::vector<Segment> segments;
  segments.reserve(weights.size());
  double cursor = 0.0;
  const double m = static_cast<double>(cells);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double width = shares_[i] * m;
    if (width <= 0.0) continue;
    // Clamp every boundary to [0, m]: the cumulative cursor accumulates
    // rounding drift, and upward drift can push a later segment's begin
    // past m, which would silently give that node zero selection
    // probability (its cell range would be empty).
    const double begin = std::min(cursor, m);
    cursor += width;
    segments.push_back({static_cast<std::uint32_t>(i), begin,
                        std::min(cursor, m), shares_[i]});
  }
  // Guard the accumulated rounding drift at the top end: only stretch
  // the last segment when downward drift left a gap below m. When the
  // cursor overshot, the segment is already clamped to m and the
  // assignment must not widen an interval that ended early.
  if (cursor < m) segments.back().end = m;

  // A resolution weight must survive the float narrowing: a subnormal
  // double share would otherwise round to 0.0f and vanish in the chain
  // normalization.
  const auto entry_weight = [](double w) {
    return std::max(static_cast<float>(w),
                    std::numeric_limits<float>::min());
  };
  std::vector<std::vector<Entry>> chains(cells);
  for (const Segment& seg : segments) {
    const auto anchor = std::min(
        static_cast<std::uint64_t>(seg.begin), cells - 1);
    const auto last = static_cast<std::uint64_t>(
        std::min(m - 1.0, std::ceil(seg.end) - 1.0));
    bool inserted = false;
    for (std::uint64_t j = anchor; j <= last && j < cells; ++j) {
      const double cell_lo = static_cast<double>(j);
      const double cell_hi = cell_lo + 1.0;
      const double overlap =
          std::min(seg.end, cell_hi) - std::max(seg.begin, cell_lo);
      if (overlap <= 0.0) continue;
      const double w = weighting_ == ChainWeighting::kPaper
                           ? seg.rate
                           : overlap;
      chains[j].push_back({seg.node, entry_weight(w)});
      inserted = true;
    }
    if (!inserted) {
      // Rounding squeezed the segment to zero width (tiny share, or a
      // clamped boundary at m). Every positive-weight node must keep a
      // positive selection probability, so force one chain entry at the
      // segment's anchor cell.
      chains[anchor].push_back({seg.node, entry_weight(seg.rate)});
    }
  }

  offsets_.resize(cells + 1);
  std::size_t count = 0;
  for (std::uint64_t j = 0; j < cells; ++j) {
    offsets_[j] = static_cast<std::uint32_t>(count);
    count += chains[j].size();
  }
  offsets_[cells] = static_cast<std::uint32_t>(count);
  entries_.reserve(count);
  for (std::uint64_t j = 0; j < cells; ++j) {
    if (chains[j].empty()) {
      throw std::logic_error("hash table: empty chain (rounding bug)");
    }
    // Normalize resolution weights within the chain.
    double sum = 0.0;
    for (const Entry& e : chains[j]) sum += e.weight;
    for (Entry e : chains[j]) {
      e.weight = static_cast<float>(e.weight / sum);
      entries_.push_back(e);
    }
  }
}

std::uint32_t BlockHashTable::sample(common::Rng& rng) const {
  const std::uint64_t r = rng.uniform_index(cells_);
  const std::uint32_t begin = offsets_[r];
  const std::uint32_t end = offsets_[r + 1];
  if (end - begin == 1) return entries_[begin].node;
  const double r1 = rng.uniform();
  double low = 0.0;
  for (std::uint32_t k = begin; k < end; ++k) {
    const double high = low + entries_[k].weight;
    if (r1 < high || k + 1 == end) return entries_[k].node;
    low = high;
  }
  return entries_[end - 1].node;
}

std::vector<double> BlockHashTable::selection_probabilities() const {
  std::vector<double> probs(shares_.size(), 0.0);
  const double cell_prob = 1.0 / static_cast<double>(cells_);
  for (std::uint64_t j = 0; j < cells_; ++j) {
    for (std::uint32_t k = offsets_[j]; k < offsets_[j + 1]; ++k) {
      probs[entries_[k].node] += cell_prob * entries_[k].weight;
    }
  }
  return probs;
}

std::vector<std::size_t> BlockHashTable::chain_length_histogram() const {
  std::vector<std::size_t> hist;
  for (std::uint64_t j = 0; j < cells_; ++j) {
    const std::size_t len = offsets_[j + 1] - offsets_[j];
    if (hist.size() <= len) hist.resize(len + 1, 0);
    ++hist[len];
  }
  return hist;
}

}  // namespace adapt::placement
