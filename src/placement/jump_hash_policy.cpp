#include "placement/jump_hash_policy.h"

#include <stdexcept>

namespace adapt::placement {

std::uint32_t jump_consistent_hash(std::uint64_t key,
                                   std::uint32_t buckets) {
  if (buckets == 0) throw std::invalid_argument("jump hash: no buckets");
  std::int64_t b = -1;
  std::int64_t j = 0;
  while (j < static_cast<std::int64_t>(buckets)) {
    b = j;
    key = key * 2862933555777941757ull + 1;
    j = static_cast<std::int64_t>(
        static_cast<double>(b + 1) *
        (static_cast<double>(std::int64_t{1} << 31) /
         static_cast<double>((key >> 33) + 1)));
  }
  return static_cast<std::uint32_t>(b);
}

namespace {

// splitmix64 finalizer: decorrelates (key, ordinal) pairs before the
// jump hash walks its multiplicative sequence, so replica 0 and
// replica 1 of one block start from unrelated buckets.
std::uint64_t mix(std::uint64_t key, std::uint32_t ordinal) {
  std::uint64_t z = key + 0x9e3779b97f4a7c15ull * (ordinal + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

JumpHashPolicy::JumpHashPolicy(std::vector<cluster::NodeIndex> order)
    : order_(std::move(order)) {
  if (order_.empty()) {
    throw std::invalid_argument("jump policy: empty node order");
  }
  std::vector<bool> seen(order_.size(), false);
  for (const cluster::NodeIndex node : order_) {
    if (node >= order_.size() || seen[node]) {
      throw std::invalid_argument("jump policy: order is not a permutation");
    }
    seen[node] = true;
  }
}

std::optional<cluster::NodeIndex> JumpHashPolicy::choose(
    const cluster::NodeMask& eligible, common::Rng& rng) const {
  if (eligible.size() != order_.size()) {
    throw std::invalid_argument("choose: eligibility mask size mismatch");
  }
  const std::size_t candidates = eligible.count();
  if (candidates == 0) return std::nullopt;
  return static_cast<cluster::NodeIndex>(
      eligible.nth_set(rng.uniform_index(candidates)));
}

std::optional<cluster::NodeIndex> JumpHashPolicy::choose_keyed(
    std::uint64_t key, std::uint32_t ordinal,
    const cluster::NodeMask& eligible, common::Rng& rng) const {
  (void)rng;
  if (eligible.size() != order_.size()) {
    throw std::invalid_argument("choose: eligibility mask size mismatch");
  }
  if (eligible.none()) return std::nullopt;
  const std::uint32_t n = static_cast<std::uint32_t>(order_.size());
  const std::uint32_t start = jump_consistent_hash(mix(key, ordinal), n);
  // Probe forward in ring order past ineligible nodes; bounded by n, and
  // eligible.any() guarantees a hit.
  for (std::uint32_t step = 0; step < n; ++step) {
    const cluster::NodeIndex node = order_[(start + step) % n];
    if (eligible.test(node)) return node;
  }
  return std::nullopt;  // unreachable
}

std::vector<double> JumpHashPolicy::target_shares() const {
  return std::vector<double>(order_.size(),
                             1.0 / static_cast<double>(order_.size()));
}

PolicyPtr make_jump_hash_policy(std::vector<cluster::NodeIndex> order) {
  return std::make_shared<JumpHashPolicy>(std::move(order));
}

}  // namespace adapt::placement
