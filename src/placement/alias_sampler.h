// Walker/Vose alias method: exact weighted sampling in O(1) per draw
// with O(n) construction.
//
// This is the textbook alternative to Algorithm 1's block hash table:
// the paper's structure spends O(m) cells to approximate the weights
// (with the rate/Omega collision rule distorting them slightly), while
// the alias table is exact, O(n) memory, independent of the block count,
// and a little faster per draw. Provided both as a drop-in policy for
// the ablation in bench_placement_micro and for downstream users who do
// not need bug-for-bug fidelity with the paper.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "placement/policy.h"

namespace adapt::placement {

class AliasSampler {
 public:
  // Weights must be non-negative, finite, with a positive sum.
  explicit AliasSampler(const std::vector<double>& weights);

  std::uint32_t sample(common::Rng& rng) const;

  std::size_t size() const { return probability_.size(); }
  const std::vector<double>& shares() const { return shares_; }

 private:
  std::vector<double> probability_;  // acceptance threshold per bucket
  std::vector<std::uint32_t> alias_;
  std::vector<double> shares_;
};

// A placement policy backed by the alias sampler; same eligibility
// semantics as WeightedHashPolicy.
class AliasPolicy : public PlacementPolicy {
 public:
  AliasPolicy(std::string name, std::vector<double> weights);

  using PlacementPolicy::choose;
  std::optional<cluster::NodeIndex> choose(const cluster::NodeMask& eligible,
                                           common::Rng& rng) const override;
  std::string name() const override { return name_; }
  std::vector<double> target_shares() const override {
    return sampler_.shares();
  }

 private:
  std::string name_;
  std::vector<double> weights_;
  AliasSampler sampler_;
};

// ADAPT weights (1/E[T]) on the alias sampler.
PolicyPtr make_adapt_alias_policy(
    const std::vector<double>& expected_task_times);

}  // namespace adapt::placement
