#include "placement/naive_policy.h"

namespace adapt::placement {

PolicyPtr make_naive_policy(
    const std::vector<avail::InterruptionParams>& params,
    std::uint64_t blocks, ChainWeighting weighting) {
  std::vector<double> weights;
  weights.reserve(params.size());
  for (const avail::InterruptionParams& p : params) {
    weights.push_back(p.steady_state_availability());
  }
  return std::make_shared<WeightedHashPolicy>("naive", std::move(weights),
                                              blocks, weighting);
}

}  // namespace adapt::placement
