#include "placement/alias_sampler.h"

#include <cmath>
#include <stdexcept>

#include "placement/masked_draw.h"

namespace adapt::placement {

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  if (weights.empty()) {
    throw std::invalid_argument("alias: no weights");
  }
  double total = 0.0;
  for (const double w : weights) {
    if (w < 0 || !std::isfinite(w)) {
      throw std::invalid_argument("alias: weights must be finite, >= 0");
    }
    total += w;
  }
  if (total <= 0) throw std::invalid_argument("alias: all weights zero");

  const std::size_t n = weights.size();
  shares_.resize(n);
  probability_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Vose's stable construction: scale to mean 1, split into the small
  // and large worklists, pair them off.
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    shares_[i] = weights[i] / total;
    scaled[i] = shares_[i] * static_cast<double>(n);
  }
  std::vector<std::uint32_t> small;
  std::vector<std::uint32_t> large;
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(
        static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    large.pop_back();
    probability_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Numerical leftovers saturate at probability 1 (self-alias).
  for (const std::uint32_t i : small) {
    probability_[i] = 1.0;
    alias_[i] = i;
  }
  for (const std::uint32_t i : large) {
    probability_[i] = 1.0;
    alias_[i] = i;
  }
}

std::uint32_t AliasSampler::sample(common::Rng& rng) const {
  const std::uint64_t bucket = rng.uniform_index(probability_.size());
  return rng.uniform() < probability_[bucket]
             ? static_cast<std::uint32_t>(bucket)
             : alias_[bucket];
}

AliasPolicy::AliasPolicy(std::string name, std::vector<double> weights)
    : name_(std::move(name)),
      weights_(std::move(weights)),
      sampler_(weights_) {}

std::optional<cluster::NodeIndex> AliasPolicy::choose(
    const cluster::NodeMask& eligible, common::Rng& rng) const {
  if (eligible.size() != weights_.size()) {
    throw std::invalid_argument("choose: eligibility mask size mismatch");
  }
  // The alias table realizes its normalized shares exactly, so the
  // fallback draws from shares() rather than the raw weights.
  return masked_choose(
      [this](common::Rng& r) { return sampler_.sample(r); },
      sampler_.shares(), eligible, rng);
}

PolicyPtr make_adapt_alias_policy(
    const std::vector<double>& expected_task_times) {
  std::vector<double> weights;
  weights.reserve(expected_task_times.size());
  for (const double et : expected_task_times) {
    if (et <= 0) {
      throw std::invalid_argument("alias policy: E[T] must be positive");
    }
    weights.push_back(std::isfinite(et) ? 1.0 / et : 0.0);
  }
  return std::make_shared<AliasPolicy>("adapt-alias", std::move(weights));
}

}  // namespace adapt::placement
