// Block-placement policy interface.
//
// The NameNode asks the policy for one node per replica; eligibility
// masking (capacity caps, replicas already placed on a node, node
// currently offline during a load) is the NameNode's job, so policies
// stay pure sampling strategies.
//
// Eligibility travels as a cluster::NodeMask: the NameNode maintains it
// incrementally on liveness/capacity changes and hands policies a
// word-packed view instead of materializing a std::vector<bool> per
// draw.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/node.h"
#include "cluster/node_mask.h"
#include "common/rng.h"

namespace adapt::placement {

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  // Pick a node with eligible.test(i) == true, or nullopt when none
  // exists. Implementations must honor the mask exactly; they may bias
  // the draw however they like among eligible nodes.
  virtual std::optional<cluster::NodeIndex> choose(
      const cluster::NodeMask& eligible, common::Rng& rng) const = 0;

  // Keyed variant: `key` identifies the object being placed (block id)
  // and `ordinal` which replica of it this draw is. Consistent-hash
  // policies use the pair to make the draw a pure function of
  // (key, ordinal, membership) so node join/leave remaps O(1/n) of
  // placements; sampling policies ignore both and fall through to
  // choose(), consuming the rng stream identically — callers may switch
  // to the keyed entry point without perturbing existing byte-exact
  // runs.
  virtual std::optional<cluster::NodeIndex> choose_keyed(
      std::uint64_t key, std::uint32_t ordinal,
      const cluster::NodeMask& eligible, common::Rng& rng) const {
    (void)key;
    (void)ordinal;
    return choose(eligible, rng);
  }

  virtual std::string name() const = 0;

  // Per-node target share of blocks (sums to ~1); diagnostics and tests.
  virtual std::vector<double> target_shares() const = 0;
};

using PolicyPtr = std::shared_ptr<const PlacementPolicy>;

}  // namespace adapt::placement
