// Block-placement policy interface.
//
// The NameNode asks the policy for one node per replica; eligibility
// masking (capacity caps, replicas already placed on a node, node
// currently offline during a load) is the NameNode's job, so policies
// stay pure sampling strategies.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/node.h"
#include "common/rng.h"

namespace adapt::placement {

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  // Pick a node with eligible[i] == true, or nullopt when none exists.
  // Implementations must honor the mask exactly; they may bias the draw
  // however they like among eligible nodes.
  virtual std::optional<cluster::NodeIndex> choose(
      const std::vector<bool>& eligible, common::Rng& rng) const = 0;

  virtual std::string name() const = 0;

  // Per-node target share of blocks (sums to ~1); diagnostics and tests.
  virtual std::vector<double> target_shares() const = 0;
};

using PolicyPtr = std::shared_ptr<const PlacementPolicy>;

}  // namespace adapt::placement
