// The ADAPT placement policy (Algorithm 1) and the generic
// weighted-hash-table policy it is built on.
#pragma once

#include <cstdint>

#include "placement/hash_table.h"
#include "placement/policy.h"

namespace adapt::placement {

// A policy that draws from a BlockHashTable built over per-node weights.
// Ineligible draws are rejected and retried; after a bounded number of
// rejections it falls back to an exact weighted draw over the eligible
// set, so `choose` terminates even under heavy masking.
class WeightedHashPolicy : public PlacementPolicy {
 public:
  WeightedHashPolicy(std::string name, std::vector<double> weights,
                     std::uint64_t blocks, ChainWeighting weighting);

  using PlacementPolicy::choose;
  std::optional<cluster::NodeIndex> choose(const cluster::NodeMask& eligible,
                                           common::Rng& rng) const override;
  std::string name() const override { return name_; }
  std::vector<double> target_shares() const override {
    return table_.shares();
  }

  const BlockHashTable& table() const { return table_; }

 private:
  std::string name_;
  std::vector<double> weights_;
  BlockHashTable table_;
  // Cached table_.selection_probabilities(); the masked-draw fallback
  // must match the distribution the rejection loop realizes.
  std::vector<double> realized_;
};

// ADAPT: weight_i = 1 / E[T_i] (zero for unstable nodes, whose expected
// task time is infinite). `expected_task_times` is Eq. 5 output per node,
// typically from avail::PerformancePredictor.
PolicyPtr make_adapt_policy(const std::vector<double>& expected_task_times,
                            std::uint64_t blocks,
                            ChainWeighting weighting = ChainWeighting::kPaper);

}  // namespace adapt::placement
