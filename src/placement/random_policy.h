// Stock HDFS placement: every node equally likely (the paper's
// "existing approach" / "traditional Hadoop").
#pragma once

#include "placement/policy.h"

namespace adapt::placement {

class RandomPolicy : public PlacementPolicy {
 public:
  explicit RandomPolicy(std::size_t node_count);

  using PlacementPolicy::choose;
  std::optional<cluster::NodeIndex> choose(const cluster::NodeMask& eligible,
                                           common::Rng& rng) const override;
  std::string name() const override { return "random"; }
  std::vector<double> target_shares() const override;

 private:
  std::size_t node_count_;
};

PolicyPtr make_random_policy(std::size_t node_count);

}  // namespace adapt::placement
