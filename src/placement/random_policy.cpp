#include "placement/random_policy.h"

#include <stdexcept>

namespace adapt::placement {

RandomPolicy::RandomPolicy(std::size_t node_count) : node_count_(node_count) {
  if (node_count == 0) {
    throw std::invalid_argument("random policy: need nodes");
  }
}

std::optional<cluster::NodeIndex> RandomPolicy::choose(
    const std::vector<bool>& eligible, common::Rng& rng) const {
  if (eligible.size() != node_count_) {
    throw std::invalid_argument("choose: eligibility mask size mismatch");
  }
  // Rejection sampling is overwhelmingly the common path (few nodes are
  // masked); bounded, with an exact fallback.
  constexpr int kMaxRejections = 32;
  for (int attempt = 0; attempt < kMaxRejections; ++attempt) {
    const auto node =
        static_cast<cluster::NodeIndex>(rng.uniform_index(node_count_));
    if (eligible[node]) return node;
  }
  std::vector<cluster::NodeIndex> candidates;
  for (std::size_t i = 0; i < eligible.size(); ++i) {
    if (eligible[i]) candidates.push_back(static_cast<cluster::NodeIndex>(i));
  }
  if (candidates.empty()) return std::nullopt;
  return candidates[rng.uniform_index(candidates.size())];
}

std::vector<double> RandomPolicy::target_shares() const {
  return std::vector<double>(node_count_, 1.0 / static_cast<double>(node_count_));
}

PolicyPtr make_random_policy(std::size_t node_count) {
  return std::make_shared<RandomPolicy>(node_count);
}

}  // namespace adapt::placement
