#include "placement/random_policy.h"

#include <stdexcept>

namespace adapt::placement {

RandomPolicy::RandomPolicy(std::size_t node_count) : node_count_(node_count) {
  if (node_count == 0) {
    throw std::invalid_argument("random policy: need nodes");
  }
}

std::optional<cluster::NodeIndex> RandomPolicy::choose(
    const cluster::NodeMask& eligible, common::Rng& rng) const {
  if (eligible.size() != node_count_) {
    throw std::invalid_argument("choose: eligibility mask size mismatch");
  }
  // Rejection sampling is overwhelmingly the common path (few nodes are
  // masked); bounded, with an exact fallback.
  constexpr int kMaxRejections = 32;
  for (int attempt = 0; attempt < kMaxRejections; ++attempt) {
    const auto node =
        static_cast<cluster::NodeIndex>(rng.uniform_index(node_count_));
    if (eligible.test(node)) return node;
  }
  const std::size_t candidates = eligible.count();
  if (candidates == 0) return std::nullopt;
  return static_cast<cluster::NodeIndex>(
      eligible.nth_set(rng.uniform_index(candidates)));
}

std::vector<double> RandomPolicy::target_shares() const {
  return std::vector<double>(node_count_, 1.0 / static_cast<double>(node_count_));
}

PolicyPtr make_random_policy(std::size_t node_count) {
  return std::make_shared<RandomPolicy>(node_count);
}

}  // namespace adapt::placement
