// Jump-consistent-hash placement (Lamping & Veach) over a domain-major
// node ordering — the DAOS "jump placement map" idea adapted to block
// replicas.
//
// Algorithm 1 rebuilds an m-entry weighted hash table whenever the node
// set or the weights change, and every rebuild remaps an arbitrary
// fraction of blocks. jump_consistent_hash(key, n) moves exactly the
// keys whose bucket is the one added or removed: growing from n to n+1
// buckets remaps a 1/(n+1) fraction, so a node join or leave touches
// O(1/n) of blocks instead of all of them.
//
// Buckets map to nodes through a fixed domain-major ordering
// (site, rack, node), so consecutive replica ordinals of one block —
// which start from differently-mixed keys — land across the hierarchy
// rather than in one rack's index range. Ineligible nodes (down, full,
// already holding the block, anti-affine domains) are skipped by probing
// forward in ring order from the hashed bucket: a masked node only
// displaces its own keys, one step each, preserving the O(1/n) remap.
#pragma once

#include <cstdint>
#include <vector>

#include "placement/policy.h"

namespace adapt::placement {

// The Lamping–Veach jump consistent hash: maps key uniformly onto
// [0, buckets) such that going from n to n+1 buckets remaps only the
// keys landing in the new bucket.
std::uint32_t jump_consistent_hash(std::uint64_t key, std::uint32_t buckets);

class JumpHashPolicy : public PlacementPolicy {
 public:
  // `order` is the bucket -> node table (a permutation of [0, n));
  // domain-major from FaultDomains::domain_major_order(), or identity
  // on flat clusters.
  explicit JumpHashPolicy(std::vector<cluster::NodeIndex> order);

  using PlacementPolicy::choose;
  // Unkeyed entry point (legacy callers): uniform draw over the mask —
  // there is no key to be consistent about.
  std::optional<cluster::NodeIndex> choose(const cluster::NodeMask& eligible,
                                           common::Rng& rng) const override;
  // The real draw: pure function of (key, ordinal, order, mask); the
  // rng is untouched.
  std::optional<cluster::NodeIndex> choose_keyed(
      std::uint64_t key, std::uint32_t ordinal,
      const cluster::NodeMask& eligible, common::Rng& rng) const override;

  std::string name() const override { return "jump"; }
  std::vector<double> target_shares() const override;

  const std::vector<cluster::NodeIndex>& order() const { return order_; }

 private:
  std::vector<cluster::NodeIndex> order_;
};

PolicyPtr make_jump_hash_policy(std::vector<cluster::NodeIndex> order);

}  // namespace adapt::placement
