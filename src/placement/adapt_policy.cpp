#include "placement/adapt_policy.h"

#include <cmath>
#include <stdexcept>

namespace adapt::placement {

WeightedHashPolicy::WeightedHashPolicy(std::string name,
                                       std::vector<double> weights,
                                       std::uint64_t blocks,
                                       ChainWeighting weighting)
    : name_(std::move(name)),
      weights_(std::move(weights)),
      table_(weights_, blocks, weighting) {}

std::optional<cluster::NodeIndex> WeightedHashPolicy::choose(
    const std::vector<bool>& eligible, common::Rng& rng) const {
  if (eligible.size() != weights_.size()) {
    throw std::invalid_argument("choose: eligibility mask size mismatch");
  }

  // Fast path: rejection-sample the hash table.
  constexpr int kMaxRejections = 32;
  for (int attempt = 0; attempt < kMaxRejections; ++attempt) {
    const std::uint32_t node = table_.sample(rng);
    if (eligible[node]) return node;
  }

  // Exact fallback: weighted draw restricted to the eligible set.
  double total = 0.0;
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    if (eligible[i]) total += weights_[i];
  }
  if (total > 0.0) {
    double r = rng.uniform() * total;
    for (std::size_t i = 0; i < weights_.size(); ++i) {
      if (!eligible[i]) continue;
      r -= weights_[i];
      if (r <= 0.0) return static_cast<cluster::NodeIndex>(i);
    }
  }

  // All eligible nodes have zero weight: fall back to uniform so a load
  // can still complete (e.g. only capped-out unstable nodes remain).
  std::vector<cluster::NodeIndex> candidates;
  for (std::size_t i = 0; i < eligible.size(); ++i) {
    if (eligible[i]) candidates.push_back(static_cast<cluster::NodeIndex>(i));
  }
  if (candidates.empty()) return std::nullopt;
  return candidates[rng.uniform_index(candidates.size())];
}

PolicyPtr make_adapt_policy(const std::vector<double>& expected_task_times,
                            std::uint64_t blocks, ChainWeighting weighting) {
  std::vector<double> weights;
  weights.reserve(expected_task_times.size());
  for (double et : expected_task_times) {
    if (et <= 0) {
      throw std::invalid_argument("adapt policy: E[T] must be positive");
    }
    weights.push_back(std::isfinite(et) ? 1.0 / et : 0.0);
  }
  return std::make_shared<WeightedHashPolicy>("adapt", std::move(weights),
                                              blocks, weighting);
}

}  // namespace adapt::placement
