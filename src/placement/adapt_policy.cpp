#include "placement/adapt_policy.h"

#include <cmath>
#include <stdexcept>

#include "placement/masked_draw.h"

namespace adapt::placement {

WeightedHashPolicy::WeightedHashPolicy(std::string name,
                                       std::vector<double> weights,
                                       std::uint64_t blocks,
                                       ChainWeighting weighting)
    : name_(std::move(name)),
      weights_(std::move(weights)),
      table_(weights_, blocks, weighting),
      realized_(table_.selection_probabilities()) {}

std::optional<cluster::NodeIndex> WeightedHashPolicy::choose(
    const cluster::NodeMask& eligible, common::Rng& rng) const {
  if (eligible.size() != weights_.size()) {
    throw std::invalid_argument("choose: eligibility mask size mismatch");
  }
  // Rejection-sample the hash table; the bounded fallback draws from the
  // table's realized selection probabilities (not the raw weights, which
  // the paper's chain normalization distorts).
  return masked_choose(
      [this](common::Rng& r) { return table_.sample(r); }, realized_,
      eligible, rng);
}

PolicyPtr make_adapt_policy(const std::vector<double>& expected_task_times,
                            std::uint64_t blocks, ChainWeighting weighting) {
  std::vector<double> weights;
  weights.reserve(expected_task_times.size());
  for (double et : expected_task_times) {
    if (et <= 0) {
      throw std::invalid_argument("adapt policy: E[T] must be positive");
    }
    weights.push_back(std::isfinite(et) ? 1.0 / et : 0.0);
  }
  return std::make_shared<WeightedHashPolicy>("adapt", std::move(weights),
                                              blocks, weighting);
}

}  // namespace adapt::placement
