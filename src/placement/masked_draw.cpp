#include "placement/masked_draw.h"

namespace adapt::placement {

std::optional<cluster::NodeIndex> masked_exact_draw(
    const std::vector<double>& realized, const std::vector<bool>& eligible,
    common::Rng& rng) {
  double total = 0.0;
  for (std::size_t i = 0; i < realized.size(); ++i) {
    if (eligible[i]) total += realized[i];
  }
  if (total > 0.0) {
    double r = rng.uniform() * total;
    for (std::size_t i = 0; i < realized.size(); ++i) {
      if (!eligible[i]) continue;
      r -= realized[i];
      if (r <= 0.0) return static_cast<cluster::NodeIndex>(i);
    }
    // Rounding left r marginally positive: return the last eligible node.
    for (std::size_t i = realized.size(); i-- > 0;) {
      if (eligible[i] && realized[i] > 0.0) {
        return static_cast<cluster::NodeIndex>(i);
      }
    }
  }
  std::vector<cluster::NodeIndex> candidates;
  for (std::size_t i = 0; i < eligible.size(); ++i) {
    if (eligible[i]) candidates.push_back(static_cast<cluster::NodeIndex>(i));
  }
  if (candidates.empty()) return std::nullopt;
  return candidates[rng.uniform_index(candidates.size())];
}

}  // namespace adapt::placement
