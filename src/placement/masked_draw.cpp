#include "placement/masked_draw.h"

namespace adapt::placement {

std::optional<cluster::NodeIndex> masked_exact_draw(
    const std::vector<double>& realized, const cluster::NodeMask& eligible,
    common::Rng& rng) {
  double total = 0.0;
  eligible.for_each_set([&](std::uint32_t i) { total += realized[i]; });
  if (total > 0.0) {
    double r = rng.uniform() * total;
    std::optional<cluster::NodeIndex> hit;
    eligible.for_each_set([&](std::uint32_t i) {
      if (hit) return;
      r -= realized[i];
      if (r <= 0.0) hit = static_cast<cluster::NodeIndex>(i);
    });
    if (hit) return hit;
    // Rounding left r marginally positive: return the last eligible node
    // with positive realized probability.
    cluster::NodeMask positive = eligible;
    positive.for_each_set([&](std::uint32_t i) {
      if (realized[i] <= 0.0) positive.reset(i);
    });
    const std::size_t last = positive.last_set();
    if (last < positive.size()) return static_cast<cluster::NodeIndex>(last);
  }
  const std::size_t candidates = eligible.count();
  if (candidates == 0) return std::nullopt;
  return static_cast<cluster::NodeIndex>(
      eligible.nth_set(rng.uniform_index(candidates)));
}

}  // namespace adapt::placement
