// The paper's "naive" alternative (Section V-C): dispatch blocks in
// proportion to steady-state availability (MTBI - mu) / MTBI = 1 - rho,
// clamped at zero for unstable hosts. Ignores the task length gamma and
// the rework amplification e^{gamma*lambda}, which is exactly what ADAPT
// adds on top.
#pragma once

#include "availability/interruption_model.h"
#include "placement/adapt_policy.h"

namespace adapt::placement {

PolicyPtr make_naive_policy(
    const std::vector<avail::InterruptionParams>& params,
    std::uint64_t blocks, ChainWeighting weighting = ChainWeighting::kPaper);

}  // namespace adapt::placement
