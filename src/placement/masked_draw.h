// Shared eligibility-mask sampling for weighted placement policies.
//
// Policies built on a fast unconditional sampler (Algorithm 1's hash
// table, the alias table) handle the NameNode's eligibility mask by
// rejection: draw, retry while the draw is masked out. Under heavy
// masking the loop is cut off after a bounded number of attempts and an
// exact draw finishes the job. That exact draw must come from the same
// distribution the rejection loop realizes — the sampler's *realized*
// per-node selection probabilities, conditioned on the mask — not from
// the raw construction weights: the hash table's chain normalization
// shifts realized shares away from the weights (ChainWeighting::kPaper),
// so falling back to the weights would sample a subtly different
// distribution on exactly the heavily-masked draws.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cluster/node.h"
#include "cluster/node_mask.h"
#include "common/rng.h"

namespace adapt::placement {

// Exact weighted draw over `realized` restricted to the eligible set.
// When every eligible node has zero realized probability, falls back to
// a uniform draw over the eligible set (a load must still complete when
// only capped-out or unstable nodes remain); nullopt when no node is
// eligible at all.
std::optional<cluster::NodeIndex> masked_exact_draw(
    const std::vector<double>& realized, const cluster::NodeMask& eligible,
    common::Rng& rng);

// The common choose() body: rejection-sample `sample` against the mask,
// then finish with masked_exact_draw over the sampler's realized
// selection probabilities.
template <typename SampleFn>
std::optional<cluster::NodeIndex> masked_choose(
    const SampleFn& sample, const std::vector<double>& realized,
    const cluster::NodeMask& eligible, common::Rng& rng) {
  constexpr int kMaxRejections = 32;
  for (int attempt = 0; attempt < kMaxRejections; ++attempt) {
    const std::uint32_t node = sample(rng);
    if (eligible.test(node)) return node;
  }
  return masked_exact_draw(realized, eligible, rng);
}

}  // namespace adapt::placement
