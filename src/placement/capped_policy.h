// The paper's disk-space fidelity threshold (Section IV-C): no node may
// receive more than m * (k + 1) / n blocks; a node at the threshold "will
// not be considered for future data block placement".
//
// Implemented as a stateful decorator the NameNode drives: it masks
// capped-out nodes before delegating to the wrapped policy and counts
// placements as they are committed.
#pragma once

#include <cstdint>

#include "placement/policy.h"

namespace adapt::placement {

// ceil(m * (k + 1) / n) — the threshold from Section IV-C.
std::uint64_t fidelity_threshold(std::uint64_t blocks, int replication,
                                 std::size_t node_count);

class CappedPolicy : public PlacementPolicy {
 public:
  // `max_blocks_per_node` of 0 disables the cap (pass-through).
  CappedPolicy(PolicyPtr inner, std::size_t node_count,
               std::uint64_t max_blocks_per_node);

  using PlacementPolicy::choose;
  std::optional<cluster::NodeIndex> choose(const cluster::NodeMask& eligible,
                                           common::Rng& rng) const override;
  // Masks capped-out nodes, then forwards the key so a consistent-hash
  // inner policy keeps its remap guarantee under the cap.
  std::optional<cluster::NodeIndex> choose_keyed(
      std::uint64_t key, std::uint32_t ordinal,
      const cluster::NodeMask& eligible, common::Rng& rng) const override;
  std::string name() const override;
  std::vector<double> target_shares() const override {
    return inner_->target_shares();
  }

  // The NameNode commits each successful placement here.
  void record_placement(cluster::NodeIndex node);
  void record_removal(cluster::NodeIndex node);

  std::uint64_t placed(cluster::NodeIndex node) const;
  std::uint64_t cap() const { return cap_; }

 private:
  PolicyPtr inner_;
  std::uint64_t cap_;
  std::vector<std::uint64_t> placed_;
  // Nodes at/over the cap, kept in sync by record_placement/
  // record_removal so choose() masks them with one word-parallel
  // and_not instead of an O(n) scan of placed_.
  cluster::NodeMask over_cap_;
};

}  // namespace adapt::placement
