// The block->node hash table of Algorithm 1 (subroutines buildHashTable
// and dataPlacement).
//
// Node i is given w_i = m * rate_i consecutive "keys" (table cells);
// fractional boundaries make some cells map to more than one node — the
// paper's collision chains. dataPlacement draws a uniform key r in
// [0, m); a singleton cell returns its node, a collision chain is
// resolved by a second draw.
//
// The paper resolves collisions with weights rate_i / Omega (Omega = sum
// of chain members' rates), which slightly distorts the achieved shares;
// weighting by each member's *overlap* with the cell instead is exact.
// Both are implemented (ChainWeighting) because the difference is one of
// the design points DESIGN.md calls out for ablation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace adapt::placement {

enum class ChainWeighting {
  kPaper,    // rate_i / Omega over chain members (Algorithm 1 as printed)
  kOverlap,  // overlap length within the cell: exact proportionality
};

std::string to_string(ChainWeighting weighting);

class BlockHashTable {
 public:
  // `weights` are the per-node rates; they are normalized internally, so
  // any non-negative scale works (1/E[T_i] for ADAPT, availability for
  // the naive policy, all-ones for uniform). `cells` is m, the number of
  // blocks. At least one weight must be positive.
  BlockHashTable(const std::vector<double>& weights, std::uint64_t cells,
                 ChainWeighting weighting);

  std::uint32_t sample(common::Rng& rng) const;

  std::uint64_t cell_count() const { return cells_; }
  std::size_t node_count() const { return shares_.size(); }
  ChainWeighting weighting() const { return weighting_; }

  // Normalized target share per node (w_i / m).
  const std::vector<double>& shares() const { return shares_; }

  // Exact selection probability per node under the configured chain
  // weighting; tests compare this with shares() to quantify the paper
  // scheme's distortion.
  std::vector<double> selection_probabilities() const;

  // Distribution of chain lengths (diagnostics; index = length).
  std::vector<std::size_t> chain_length_histogram() const;

 private:
  struct Entry {
    std::uint32_t node = 0;
    float weight = 0.0f;  // resolution weight, normalized within chain
  };

  // Cells are stored flat: cell j owns entries_[offsets_[j] ..
  // offsets_[j+1]).
  std::vector<std::uint32_t> offsets_;
  std::vector<Entry> entries_;
  std::vector<double> shares_;
  std::uint64_t cells_;
  ChainWeighting weighting_;
};

}  // namespace adapt::placement
