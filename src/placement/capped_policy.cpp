#include "placement/capped_policy.h"

#include <stdexcept>

namespace adapt::placement {

std::uint64_t fidelity_threshold(std::uint64_t blocks, int replication,
                                 std::size_t node_count) {
  if (node_count == 0) throw std::invalid_argument("threshold: no nodes");
  if (replication < 1) throw std::invalid_argument("threshold: bad k");
  const auto numerator =
      blocks * (static_cast<std::uint64_t>(replication) + 1);
  return (numerator + node_count - 1) / node_count;  // ceil
}

CappedPolicy::CappedPolicy(PolicyPtr inner, std::size_t node_count,
                           std::uint64_t max_blocks_per_node)
    : inner_(std::move(inner)),
      cap_(max_blocks_per_node),
      placed_(node_count, 0),
      over_cap_(node_count) {
  if (!inner_) throw std::invalid_argument("capped policy: null inner");
  // cap_ == 0 disables the cap; over_cap_ stays empty in that mode.
  if (cap_ == 0) return;
  for (std::size_t i = 0; i < node_count; ++i) {
    if (placed_[i] >= cap_) over_cap_.set(i);
  }
}

std::optional<cluster::NodeIndex> CappedPolicy::choose(
    const cluster::NodeMask& eligible, common::Rng& rng) const {
  if (eligible.size() != placed_.size()) {
    throw std::invalid_argument("choose: eligibility mask size mismatch");
  }
  if (cap_ == 0) return inner_->choose(eligible, rng);
  cluster::NodeMask masked = eligible;
  masked.and_not(over_cap_);
  if (masked.none()) return std::nullopt;
  return inner_->choose(masked, rng);
}

std::optional<cluster::NodeIndex> CappedPolicy::choose_keyed(
    std::uint64_t key, std::uint32_t ordinal,
    const cluster::NodeMask& eligible, common::Rng& rng) const {
  if (eligible.size() != placed_.size()) {
    throw std::invalid_argument("choose: eligibility mask size mismatch");
  }
  if (cap_ == 0) return inner_->choose_keyed(key, ordinal, eligible, rng);
  cluster::NodeMask masked = eligible;
  masked.and_not(over_cap_);
  if (masked.none()) return std::nullopt;
  return inner_->choose_keyed(key, ordinal, masked, rng);
}

std::string CappedPolicy::name() const {
  return cap_ == 0 ? inner_->name() : inner_->name() + "+cap";
}

void CappedPolicy::record_placement(cluster::NodeIndex node) {
  auto& count = placed_.at(node);
  ++count;
  if (cap_ != 0 && count >= cap_) over_cap_.set(node);
}

void CappedPolicy::record_removal(cluster::NodeIndex node) {
  auto& count = placed_.at(node);
  if (count == 0) throw std::logic_error("record_removal: underflow");
  --count;
  if (cap_ != 0 && count < cap_) over_cap_.reset(node);
}

std::uint64_t CappedPolicy::placed(cluster::NodeIndex node) const {
  return placed_.at(node);
}

}  // namespace adapt::placement
