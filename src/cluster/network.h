// Bounded-bandwidth network model.
//
// Non-dedicated hosts sit behind broadband links, so block migration is
// expensive: a transfer runs at min(source uplink, destination downlink).
// Uplink sharing uses FIFO *admission*: each transfer consumes
// bytes/uplink_bps of uplink time (its fair share of the pipe), and a new
// transfer starts once the uplink has that capacity free. A source whose
// uplink is faster than its clients' downlinks therefore serves several
// clients concurrently at their downlink rate while its aggregate
// throughput stays capped — important for the well-provisioned origin
// endpoint. Equal-speed links degenerate to plain FIFO serialization.
//
// The model is reservation-based so it composes with a discrete-event
// simulator without callbacks: `request` returns the start/end times of
// the transfer; the caller schedules its own completion event.
//
// Approximations (documented in DESIGN.md): destination downlink is not
// queued (a TaskTracker with one map slot fetches at most one block at a
// time, which is the evaluated configuration). Every uplink tracks the
// admission span of each outstanding reservation, so an aborted transfer
// returns its unused share no matter where it sits in the queue.
//
// A distinguished "origin" endpoint models the data source the input was
// loaded from (the paper's copyFromLocal source; for volunteer computing,
// the project server). It is the last-resort source when every replica
// of a block is offline.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/units.h"

namespace adapt::cluster {

// Source index for the origin server.
inline constexpr std::uint32_t kOriginEndpoint =
    std::numeric_limits<std::uint32_t>::max();

struct TransferGrant {
  common::Seconds start = 0.0;  // when the uplink begins serving us
  common::Seconds end = 0.0;    // completion time
  std::uint32_t src = 0;
  std::uint64_t ticket = 0;     // identifies the reservation for release

  common::Seconds duration() const { return end - start; }
};

class Network {
 public:
  struct Config {
    std::vector<double> uplink_bps;    // per node
    std::vector<double> downlink_bps;  // per node
    double origin_uplink_bps = 0.0;
    // true: FIFO admission on each uplink (aggregate throughput capped,
    // the broadband-host model used for the emulation experiments).
    // false: flat per-transfer latency with unlimited concurrency per
    // link — the simpler discrete-event-simulator model the paper's
    // large-scale Figure 5 numbers are consistent with.
    bool fifo_admission = true;
  };

  explicit Network(Config config);

  std::size_t node_count() const { return uplink_bps_.size(); }

  // Reserve a block transfer src -> dst starting no earlier than `now`.
  // src may be kOriginEndpoint. src and dst must differ.
  TransferGrant request(std::uint32_t src, std::uint32_t dst,
                        std::uint64_t bytes, common::Seconds now);

  // Abort a transfer at `now`; returns the unused admission share handed
  // back to the uplink (0 when the share was already consumed). Works for
  // any outstanding reservation, not just the newest.
  common::Seconds abort(const TransferGrant& grant, common::Seconds now);

  // Forget all reservations on a node's uplink (the node went down or
  // came back; everything queued there is void).
  void reset_uplink(std::uint32_t node, common::Seconds now);

  // Push the uplink's admission clock out by `delta` (the node was down
  // that long and its pending transfers resumed shifted).
  void shift_uplink(std::uint32_t node, common::Seconds delta,
                    common::Seconds now);

  // Time the uplink of `node` frees up, for scheduling heuristics.
  common::Seconds uplink_available_at(std::uint32_t node) const;

  double origin_uplink_bps() const { return origin_uplink_bps_; }

  // Aggregate bytes that finished transferring, for traffic accounting.
  std::uint64_t bytes_transferred() const { return bytes_transferred_; }
  void on_transfer_complete(std::uint64_t bytes) {
    bytes_transferred_ += bytes;
  }

  // Lifetime totals, for the observability layer.
  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t aborts = 0;
    common::Seconds admission_wait = 0.0;  // sum of (start - now) at request
    common::Seconds reclaimed = 0.0;       // sum of shares returned by abort
  };
  const Stats& stats() const { return stats_; }

  // Outstanding admission spans across all uplinks, for observability.
  std::size_t outstanding_spans() const { return span_count_; }
  std::size_t span_arena_size() const { return spans_.size(); }

 private:
  static constexpr std::uint32_t kNilSpan =
      std::numeric_limits<std::uint32_t>::max();

  // One outstanding reservation's share of the uplink: it occupies
  // [begin, end) of admission time. Spans live in a free-list arena
  // shared by every uplink (stable indices, no per-reservation heap
  // traffic); each uplink threads its spans oldest-first through
  // `next`. Consumed spans (end <= now) are pruned lazily.
  struct Span {
    std::uint64_t ticket = 0;
    common::Seconds begin = 0.0;
    common::Seconds end = 0.0;
    std::uint32_t next = kNilSpan;  // younger neighbor on the same uplink
  };

  struct Uplink {
    common::Seconds admit_at = 0.0;   // when the next transfer may start
    std::uint32_t head = kNilSpan;    // oldest outstanding span
    std::uint32_t tail = kNilSpan;    // newest outstanding span
  };

  Uplink& uplink(std::uint32_t src);
  std::uint32_t alloc_span(std::uint64_t ticket, common::Seconds begin,
                           common::Seconds end);
  void free_span(std::uint32_t index);
  void append_span(Uplink& link, std::uint32_t index);
  void prune(Uplink& link, common::Seconds now);
  void clear_spans(Uplink& link);

  std::vector<double> uplink_bps_;
  std::vector<double> downlink_bps_;
  double origin_uplink_bps_;
  bool fifo_admission_ = true;
  std::vector<Uplink> uplinks_;
  Uplink origin_;
  std::vector<Span> spans_;         // arena backing every uplink's list
  std::uint32_t free_span_ = kNilSpan;
  std::size_t span_count_ = 0;
  std::uint64_t next_ticket_ = 1;
  std::uint64_t bytes_transferred_ = 0;
  Stats stats_;
};

}  // namespace adapt::cluster
