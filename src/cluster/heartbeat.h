// Heartbeat collector — the NameNode's availability sensor (paper
// Fig. 2: "heart beat collector").
//
// Two feeding modes:
//  * message level: `observe_heartbeat(node, now)` for every heartbeat;
//    a node is declared down after `miss_threshold` missed intervals
//    (checked lazily at query time), and up again on the next beat.
//  * transition level: `notify_down` / `notify_up`, used by the simulator
//    which knows transitions exactly; the collector adds the detection
//    latency a heartbeat protocol would incur.
//
// Either way, per-node AvailabilityEstimators accumulate the (lambda,
// mu) pairs the Performance Predictor consumes.
#pragma once

#include <cstddef>
#include <vector>

#include "availability/estimator.h"
#include "availability/interruption_model.h"
#include "common/units.h"

namespace adapt::cluster {

class HeartbeatCollector {
 public:
  struct Config {
    common::Seconds interval = 3.0;  // Hadoop default heartbeat cadence
    int miss_threshold = 2;          // beats missed before declaring down
    // How long a node must stay believed-down before it is declared
    // *dead* (left the pool, replicas lost) rather than transiently
    // down. 0 disables dead declaration entirely.
    common::Seconds dead_timeout = 0.0;
  };

  HeartbeatCollector(std::size_t node_count, Config config,
                     common::Seconds start = 0.0);

  std::size_t node_count() const { return nodes_.size(); }
  common::Seconds detection_latency() const {
    return config_.interval * config_.miss_threshold;
  }

  // -- Message-level interface --------------------------------------
  void observe_heartbeat(std::size_t node, common::Seconds now);

  // -- Transition-level interface -----------------------------------
  void notify_down(std::size_t node, common::Seconds now);
  void notify_up(std::size_t node, common::Seconds now);

  // Current belief about a node, evaluating pending heartbeat misses.
  bool believed_up(std::size_t node, common::Seconds now) const;

  // Whether the node has been believed-down for at least dead_timeout.
  // Sticky until the node is heard from again (a beat or notify_up
  // resurrects it). Always false when dead_timeout is 0.
  bool believed_dead(std::size_t node, common::Seconds now) const;

  common::Seconds dead_timeout() const { return config_.dead_timeout; }

  // Current (lambda, mu) estimate for a node.
  avail::InterruptionParams estimate(std::size_t node,
                                     common::Seconds now) const;
  std::vector<avail::InterruptionParams> estimates(common::Seconds now) const;

 private:
  struct PerNode {
    avail::AvailabilityEstimator estimator;
    common::Seconds last_beat = 0.0;
    common::Seconds pending_down_at = -1.0;  // transition mode; < 0 = none
    common::Seconds down_since = -1.0;       // believed-down start; < 0 = up
    bool believed_up = true;
    bool dead = false;
    bool message_mode = false;  // set once observe_heartbeat is used
    explicit PerNode(common::Seconds start)
        : estimator(start), last_beat(start) {}
  };

  // Applies any overdue miss-detection for message-mode nodes.
  void refresh(std::size_t node, common::Seconds now) const;

  Config config_;
  mutable std::vector<PerNode> nodes_;
};

}  // namespace adapt::cluster
