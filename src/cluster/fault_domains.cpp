#include "cluster/fault_domains.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "cluster/topology.h"

namespace adapt::cluster {

FaultDomains::FaultDomains(std::vector<std::uint32_t> rack_of,
                           std::vector<std::uint32_t> site_of_rack)
    : rack_of_(std::move(rack_of)), site_of_rack_(std::move(site_of_rack)) {
  if (rack_of_.empty()) {
    throw std::invalid_argument("fault domains: no nodes");
  }
  std::uint32_t max_rack = 0;
  for (const std::uint32_t rack : rack_of_) {
    max_rack = std::max(max_rack, rack);
  }
  const std::size_t racks = static_cast<std::size_t>(max_rack) + 1;
  if (site_of_rack_.empty()) {
    site_of_rack_.assign(racks, 0);
  }
  if (site_of_rack_.size() < racks) {
    throw std::invalid_argument("fault domains: rack without a site");
  }
  domain_masks_.assign(racks, NodeMask(rack_of_.size()));
  for (std::size_t i = 0; i < rack_of_.size(); ++i) {
    domain_masks_[rack_of_[i]].set(i);
  }
}

FaultDomains FaultDomains::from_cluster(const Cluster& cluster) {
  if (cluster.domains.sites == 0) return {};
  std::vector<std::uint32_t> rack_of;
  std::vector<std::uint32_t> site_of_rack;
  rack_of.reserve(cluster.nodes.size());
  for (const NodeSpec& node : cluster.nodes) {
    rack_of.push_back(node.rack);
    if (node.rack >= site_of_rack.size()) {
      site_of_rack.resize(node.rack + 1, 0);
    }
    site_of_rack[node.rack] = node.site;
  }
  return FaultDomains(std::move(rack_of), std::move(site_of_rack));
}

void FaultDomains::restrict_anti_affine(
    NodeMask& eligible, const std::vector<NodeIndex>& holders) const {
  if (empty() || holders.empty() || eligible.none()) return;

  // Count holder replicas per domain; small vectors, so a linear scan
  // per holder beats allocating a full per-domain count array only when
  // the hierarchy is tiny — and it never is, so count directly.
  std::vector<std::uint32_t> held(domain_masks_.size(), 0);
  NodeMask strict = eligible;
  for (const NodeIndex holder : holders) {
    const std::uint32_t d = rack_of_.at(holder);
    if (held[d]++ == 0) strict.and_not(domain_masks_[d]);
  }
  if (strict.any()) {
    eligible = std::move(strict);
    return;
  }

  // Every eligible node is co-located with a holder (fewer live domains
  // than the replication factor wants). Keep the eligible domains with
  // the fewest holder-replicas, so extra copies spread as evenly as the
  // hierarchy allows.
  std::uint32_t fewest = std::numeric_limits<std::uint32_t>::max();
  for (std::uint32_t d = 0; d < domain_masks_.size(); ++d) {
    if (!eligible.intersects(domain_masks_[d])) continue;
    fewest = std::min(fewest, held[d]);
  }
  NodeMask keep(eligible.size());
  for (std::uint32_t d = 0; d < domain_masks_.size(); ++d) {
    if (held[d] != fewest) continue;
    if (!eligible.intersects(domain_masks_[d])) continue;
    keep |= domain_masks_[d];
  }
  eligible &= keep;
}

bool FaultDomains::distinct_domains(
    const std::vector<NodeIndex>& holders) const {
  if (empty()) return true;
  std::vector<bool> seen(domain_masks_.size(), false);
  for (const NodeIndex holder : holders) {
    const std::uint32_t d = rack_of_.at(holder);
    if (seen[d]) return false;
    seen[d] = true;
  }
  return true;
}

std::vector<NodeIndex> FaultDomains::domain_major_order() const {
  std::vector<NodeIndex> order(rack_of_.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<NodeIndex>(i);
  }
  if (empty()) return order;
  std::stable_sort(order.begin(), order.end(),
                   [this](NodeIndex a, NodeIndex b) {
                     const std::uint32_t ra = rack_of_[a];
                     const std::uint32_t rb = rack_of_[b];
                     if (site_of_rack_[ra] != site_of_rack_[rb]) {
                       return site_of_rack_[ra] < site_of_rack_[rb];
                     }
                     return ra < rb;  // stable: node order within a rack
                   });
  return order;
}

}  // namespace adapt::cluster
