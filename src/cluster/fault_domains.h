// Site/rack/node fault-domain hierarchy and the anti-affine eligibility
// step (DAOS-style hierarchical pool map).
//
// A fault domain is the unit of correlated failure: a rack losing power
// takes every node in it down at once. Replica placement that ignores
// domains can put all copies of a block behind one failure — exactly the
// correlated-loss weakness bench_churn measured for ADAPT's
// availability-weighted concentration. The fix is eligibility algebra,
// not a new policy: before a draw, intersect the eligible mask with
// "nodes in domains not yet holding a replica of this block", so the
// policy stays availability-weighted *within* the surviving domains but
// anti-affine *across* them. When fewer distinct domains remain than the
// replication factor asks for, fall back to the domains currently
// holding the fewest replicas (even spread, never an empty mask).
//
// The leaf domain is the rack; sites group racks so the domain-major
// node ordering (site, rack, node) gives consistent-hash placement maps
// a stable, hierarchy-aware bucket order.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/node.h"
#include "cluster/node_mask.h"

namespace adapt::cluster {

struct Cluster;

class FaultDomains {
 public:
  // Flat topology: no hierarchy, every restriction is a no-op.
  FaultDomains() = default;

  // Build from per-node leaf-domain (rack) ids; sites_of[i] groups rack
  // i into a site for the domain-major ordering (empty = one site).
  FaultDomains(std::vector<std::uint32_t> rack_of,
               std::vector<std::uint32_t> site_of_rack);

  // Reads the NodeSpec site/rack fields filled by the cluster builders;
  // returns a flat (empty) hierarchy when the cluster has no layout.
  static FaultDomains from_cluster(const Cluster& cluster);

  bool empty() const { return domain_masks_.empty(); }
  std::size_t node_count() const { return rack_of_.size(); }
  std::size_t domain_count() const { return domain_masks_.size(); }

  std::uint32_t domain_of(NodeIndex node) const { return rack_of_.at(node); }
  const std::vector<std::uint32_t>& domains_of_nodes() const {
    return rack_of_;
  }
  const NodeMask& domain_mask(std::uint32_t domain) const {
    return domain_masks_.at(domain);
  }

  // The anti-affine eligibility step. Removes every holder's domain from
  // `eligible`; if that empties the mask (domains < replication, or the
  // survivors are all co-located with holders), falls back to keeping
  // only the domains with the fewest holder-replicas among those that
  // still intersect the original mask. Never turns a non-empty mask
  // empty. No-op on a flat hierarchy.
  void restrict_anti_affine(NodeMask& eligible,
                            const std::vector<NodeIndex>& holders) const;

  // True when no two of `holders` share a leaf domain (vacuously true on
  // a flat hierarchy).
  bool distinct_domains(const std::vector<NodeIndex>& holders) const;

  // Nodes ordered by (site, rack, node index) — the bucket order for
  // jump-consistent-hash placement, stable under node joins appended at
  // the tail of their rack's range.
  std::vector<NodeIndex> domain_major_order() const;

 private:
  std::vector<std::uint32_t> rack_of_;       // node -> leaf domain
  std::vector<std::uint32_t> site_of_rack_;  // leaf domain -> site
  std::vector<NodeMask> domain_masks_;       // leaf domain -> members
};

}  // namespace adapt::cluster
