#include "cluster/node.h"

#include <sstream>

namespace adapt::cluster {

avail::InterruptionParams NodeSpec::observed_params() const {
  if (mode != AvailabilityMode::kModel ||
      arrival_clock == ArrivalClock::kAbsoluteTime || params.lambda <= 0) {
    return params;
  }
  const double cycle = 1.0 / params.lambda + params.mu;
  return {1.0 / cycle, params.mu};
}

std::string describe(const NodeSpec& spec) {
  std::ostringstream out;
  switch (spec.mode) {
    case AvailabilityMode::kAlwaysUp:
      out << "always-up";
      break;
    case AvailabilityMode::kModel:
      out << "model[" << spec.params.describe();
      if (spec.service_time) out << ", service=" << spec.service_time->describe();
      out << "]";
      break;
    case AvailabilityMode::kReplay:
      out << "replay[" << spec.down_intervals.size() << " intervals, "
          << spec.params.describe() << "]";
      break;
  }
  out << " up=" << common::format_bandwidth(spec.uplink_bps)
      << " down=" << common::format_bandwidth(spec.downlink_bps)
      << " slots=" << spec.slots;
  if (spec.capacity_blocks > 0) out << " cap=" << spec.capacity_blocks;
  return out.str();
}

}  // namespace adapt::cluster
