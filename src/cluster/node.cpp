#include "cluster/node.h"

#include <sstream>

namespace adapt::cluster {

avail::InterruptionParams NodeSpec::observed_params() const {
  // The estimator measures lambda as interruptions per *uptime* second,
  // which recovers the injection-model rate under either arrival clock:
  // uptime-clock inter-arrivals are Exp(lambda) of uptime by
  // construction, and absolute-clock busy periods start at lambda(1-rho)
  // per wall-clock second = lambda per uptime second. So the converged
  // observation is the ground-truth parameters themselves.
  return params;
}

std::string describe(const NodeSpec& spec) {
  std::ostringstream out;
  switch (spec.mode) {
    case AvailabilityMode::kAlwaysUp:
      out << "always-up";
      break;
    case AvailabilityMode::kModel:
      out << "model[" << spec.params.describe();
      if (spec.service_time) out << ", service=" << spec.service_time->describe();
      out << "]";
      break;
    case AvailabilityMode::kReplay:
      out << "replay[" << spec.down_intervals.size() << " intervals, "
          << spec.params.describe() << "]";
      break;
  }
  out << " up=" << common::format_bandwidth(spec.uplink_bps)
      << " down=" << common::format_bandwidth(spec.downlink_bps)
      << " slots=" << spec.slots;
  if (spec.capacity_blocks > 0) out << " cap=" << spec.capacity_blocks;
  return out.str();
}

}  // namespace adapt::cluster
