// Cluster builders for the paper's two evaluation settings.
//
// `emulated_cluster` reproduces Section V-A: n hosts, a configurable
// fraction interrupted, the interrupted hosts split evenly into the four
// availability groups of Table 2, all links capped at the same broadband
// bandwidth.
//
// `trace_cluster` reproduces Section V-C: hosts replay failure-trace
// down intervals; the NameNode-visible parameters are the measured
// (lambda, mu) extracted from the same trace.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/node.h"
#include "trace/event.h"

namespace adapt::cluster {

// Fault-domain assignment the cluster builders apply: nodes are split
// into sites * racks_per_site racks (the leaf fault domain) in
// contiguous index ranges, as evenly as the division allows. sites == 0
// means no hierarchy — every domain-aware mechanism stays inert and the
// cluster behaves exactly as before the hierarchy existed.
struct DomainLayout {
  std::uint32_t sites = 0;
  std::uint32_t racks_per_site = 1;

  bool enabled() const { return sites > 0; }
  std::uint32_t rack_count() const { return sites * racks_per_site; }
};

// Fill NodeSpec::site/rack for an already-built node list.
void assign_domains(std::vector<NodeSpec>& nodes,
                    const DomainLayout& layout);

struct Cluster {
  std::vector<NodeSpec> nodes;
  double origin_uplink_bps = 0.0;  // data source for loads / last-resort
                                   // re-fetch; 0 = unconstrained (each
                                   // fetch runs at the client's downlink)
  std::uint64_t block_size_bytes = 64 * common::kMiB;
  // Replay wrap-around horizon (the source trace's window); 0 when the
  // cluster is model-driven.
  common::Seconds replay_horizon = 0.0;
  // Uplink sharing model (see cluster::Network::Config::fifo_admission).
  bool fifo_uplinks = true;
  // Fault-domain hierarchy the nodes were assigned under (disabled =
  // flat; NodeSpec::site/rack are all zero).
  DomainLayout domains;

  std::size_t size() const { return nodes.size(); }
  // Wall-clock-observable interruption parameters, node-indexed — what a
  // converged heartbeat collector would report, and the input the
  // experiment hands the Performance Predictor as "ground truth".
  std::vector<avail::InterruptionParams> params() const;
};

// Table 2: the four (MTBI, mean service time) groups, in seconds.
struct AvailabilityGroup {
  double mtbi = 0.0;
  double mean_service = 0.0;
};
const std::vector<AvailabilityGroup>& table2_groups();

struct EmulationConfig {
  std::size_t node_count = 128;           // Table 3 default
  double interrupted_ratio = 0.5;         // Table 3 default
  double bandwidth_bps = common::mbps(8); // Table 3 default
  std::uint64_t block_size_bytes = 64 * common::kMiB;
  // "Interruptions are injected based on the assumed distributions":
  // exponential inter-arrivals; service distribution spec, with mean
  // scaled per group ("exp" -> exponential(group mean)).
  bool deterministic_service = false;
  // Uptime-clock injection by default (see ArrivalClock); flip for the
  // strict-M/G/1 ablation.
  bool absolute_arrival_clock = false;
  int slots_per_node = 1;
  // Optional fault-domain hierarchy (disabled = flat, the historical
  // behavior).
  DomainLayout domains;
};

Cluster emulated_cluster(const EmulationConfig& config);

struct TraceClusterConfig {
  double bandwidth_bps = common::mbps(8);  // Table 4 default
  std::uint64_t block_size_bytes = 64 * common::kMiB;
  int slots_per_node = 1;
  // Large-scale simulation default: flat per-transfer latency (the
  // paper's Figure 5 bandwidth sensitivity is consistent with no
  // per-uplink queueing).
  bool fifo_uplinks = false;
  // Optional fault-domain hierarchy (disabled = flat, the historical
  // behavior).
  DomainLayout domains;
};

Cluster trace_cluster(const trace::Trace& trace,
                      const TraceClusterConfig& config);

// Model-driven variant of the Section V-C environment: every host is an
// M/G/1 interruption process (absolute-time Poisson arrivals, exponential
// service) with per-host parameters taken from the trace population —
// the injection semantics of the paper's own Section III model. This is
// the default substrate for the Figure 5 benches; `trace_cluster`
// (interval replay) is kept as the reality-check ablation.
Cluster model_cluster(const std::vector<avail::InterruptionParams>& params,
                      const TraceClusterConfig& config);

}  // namespace adapt::cluster
