// Static description of the hosts an experiment runs on.
//
// Runtime state (up/down, running attempts) lives in the simulator; this
// header describes what a host *is*: its availability process, its link
// speeds, and its storage capacity — the three properties the paper's
// non-dedicated environment varies.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "availability/distribution.h"
#include "availability/interruption_model.h"
#include "common/units.h"
#include "trace/profile.h"

namespace adapt::cluster {

using NodeIndex = std::uint32_t;

// How a host's unavailability is driven during simulation.
enum class AvailabilityMode {
  kAlwaysUp,   // dedicated host, never interrupted
  kModel,      // Poisson arrivals (params.lambda) + service_time samples
  kReplay,     // replay recorded down intervals
};

// What clock the model-mode Poisson arrivals run on.
//  * kAbsoluteTime — arrivals occur in wall time, including during an
//    outage, and queue FCFS: the exact M/G/1 process of Section III-A.
//  * kUptime — the interruption clock pauses during repair (the next
//    interruption arrives Exp(1/lambda) of *uptime* after recovery), the
//    way fault injectors sleep-then-kill. The paper's emulated Table 2
//    numbers are only reachable under this semantics (see DESIGN.md);
//    the M/G/1 model remains the predictor's approximation of it.
enum class ArrivalClock { kAbsoluteTime, kUptime };

struct NodeSpec {
  AvailabilityMode mode = AvailabilityMode::kAlwaysUp;

  // Ground-truth parameters; for kModel these drive the injector, for
  // kReplay they are the measured values extracted from the trace.
  avail::InterruptionParams params;
  ArrivalClock arrival_clock = ArrivalClock::kAbsoluteTime;

  // What a converged heartbeat collector would report. The estimator
  // divides interruption counts by observed *uptime*, which recovers the
  // injection-model lambda under either arrival clock, so this is the
  // ground-truth parameters.
  avail::InterruptionParams observed_params() const;

  // Service-time distribution for kModel. Null means exponential(mu).
  avail::DistributionPtr service_time;

  // Down intervals for kReplay, sorted, non-overlapping.
  std::vector<trace::DownInterval> down_intervals;

  // Link speeds (bits/second).
  double uplink_bps = common::mbps(8);
  double downlink_bps = common::mbps(8);

  // Map slots (concurrent tasks). Emulated VMs had one core.
  int slots = 1;

  // Storage capacity in blocks; 0 means unbounded.
  std::uint64_t capacity_blocks = 0;

  // Fault-domain path (site ⊃ rack ⊃ node). Racks are globally numbered
  // (the leaf fault domain); all zero on clusters built without a
  // DomainLayout, which FaultDomains::from_cluster treats as flat.
  std::uint32_t site = 0;
  std::uint32_t rack = 0;

  bool interruptible() const { return mode != AvailabilityMode::kAlwaysUp; }
};

std::string describe(const NodeSpec& spec);

}  // namespace adapt::cluster
