#include "cluster/network.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace adapt::cluster {

Network::Network(Config config)
    : uplink_bps_(std::move(config.uplink_bps)),
      downlink_bps_(std::move(config.downlink_bps)),
      origin_uplink_bps_(config.origin_uplink_bps),
      fifo_admission_(config.fifo_admission) {
  if (uplink_bps_.empty()) {
    throw std::invalid_argument("network: need at least one node");
  }
  if (uplink_bps_.size() != downlink_bps_.size()) {
    throw std::invalid_argument("network: uplink/downlink size mismatch");
  }
  for (double b : uplink_bps_) {
    if (b <= 0) throw std::invalid_argument("network: non-positive uplink");
  }
  for (double b : downlink_bps_) {
    if (b <= 0) throw std::invalid_argument("network: non-positive downlink");
  }
  if (origin_uplink_bps_ <= 0) {
    // Default: an unconstrained source. The origin models the data's
    // provider (the project server in volunteer computing), provisioned
    // to serve its whole member base; each re-fetch is then limited by
    // the client's own downlink. Pass a finite value to ablate a
    // bandwidth-constrained origin.
    origin_uplink_bps_ = std::numeric_limits<double>::infinity();
  }
  uplinks_.resize(uplink_bps_.size());
}

Network::Uplink& Network::uplink(std::uint32_t src) {
  if (src == kOriginEndpoint) return origin_;
  return uplinks_.at(src);
}

TransferGrant Network::request(std::uint32_t src, std::uint32_t dst,
                               std::uint64_t bytes, common::Seconds now) {
  if (src == dst) throw std::invalid_argument("network: src == dst");
  const double up =
      src == kOriginEndpoint ? origin_uplink_bps_ : uplink_bps_.at(src);
  const double rate = std::min(up, downlink_bps_.at(dst));

  Uplink& link = uplink(src);
  TransferGrant grant;
  grant.src = src;
  grant.start = fifo_admission_ ? std::max(now, link.admit_at) : now;
  grant.end = grant.start + common::transfer_time(bytes, rate);
  grant.ticket = next_ticket_++;
  if (fifo_admission_) {
    // The transfer's fair share of the uplink gates the next admission.
    link.newest_prev_admit = link.admit_at;
    link.admit_at = grant.start + common::transfer_time(bytes, up);
    link.newest_ticket = grant.ticket;
  }
  return grant;
}

void Network::abort(const TransferGrant& grant, common::Seconds now) {
  Uplink& link = uplink(grant.src);
  if (link.newest_ticket == grant.ticket) {
    // Newest reservation: hand back its unused admission share.
    link.admit_at = std::min(link.admit_at,
                             std::max(now, link.newest_prev_admit));
    link.newest_ticket = 0;
  }
}

void Network::shift_uplink(std::uint32_t node, common::Seconds delta,
                           common::Seconds now) {
  Uplink& link = uplink(node);
  if (link.admit_at > now - delta) {
    link.admit_at += delta;
    link.newest_prev_admit += delta;
  }
}

void Network::reset_uplink(std::uint32_t node, common::Seconds now) {
  Uplink& link = uplink(node);
  link.admit_at = now;
  link.newest_ticket = 0;
  link.newest_prev_admit = now;
}

common::Seconds Network::uplink_available_at(std::uint32_t node) const {
  if (!fifo_admission_) return 0.0;  // always free
  if (node == kOriginEndpoint) return origin_.admit_at;
  return uplinks_.at(node).admit_at;
}

}  // namespace adapt::cluster
