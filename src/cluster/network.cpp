#include "cluster/network.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace adapt::cluster {

Network::Network(Config config)
    : uplink_bps_(std::move(config.uplink_bps)),
      downlink_bps_(std::move(config.downlink_bps)),
      origin_uplink_bps_(config.origin_uplink_bps),
      fifo_admission_(config.fifo_admission) {
  if (uplink_bps_.empty()) {
    throw std::invalid_argument("network: need at least one node");
  }
  if (uplink_bps_.size() != downlink_bps_.size()) {
    throw std::invalid_argument("network: uplink/downlink size mismatch");
  }
  for (double b : uplink_bps_) {
    if (b <= 0) throw std::invalid_argument("network: non-positive uplink");
  }
  for (double b : downlink_bps_) {
    if (b <= 0) throw std::invalid_argument("network: non-positive downlink");
  }
  if (origin_uplink_bps_ <= 0) {
    // Default: an unconstrained source. The origin models the data's
    // provider (the project server in volunteer computing), provisioned
    // to serve its whole member base; each re-fetch is then limited by
    // the client's own downlink. Pass a finite value to ablate a
    // bandwidth-constrained origin.
    origin_uplink_bps_ = std::numeric_limits<double>::infinity();
  }
  uplinks_.resize(uplink_bps_.size());
}

Network::Uplink& Network::uplink(std::uint32_t src) {
  if (src == kOriginEndpoint) return origin_;
  return uplinks_.at(src);
}

std::uint32_t Network::alloc_span(std::uint64_t ticket,
                                  common::Seconds begin,
                                  common::Seconds end) {
  std::uint32_t index;
  if (free_span_ != kNilSpan) {
    index = free_span_;
    free_span_ = spans_[index].next;
  } else {
    index = static_cast<std::uint32_t>(spans_.size());
    spans_.emplace_back();
  }
  spans_[index] = {ticket, begin, end, kNilSpan};
  ++span_count_;
  return index;
}

void Network::free_span(std::uint32_t index) {
  spans_[index].next = free_span_;
  free_span_ = index;
  --span_count_;
}

void Network::append_span(Uplink& link, std::uint32_t index) {
  if (link.tail == kNilSpan) {
    link.head = index;
  } else {
    spans_[link.tail].next = index;
  }
  link.tail = index;
}

// Drop spans whose admission share is already fully consumed; the
// survivors stay oldest-first.
void Network::prune(Uplink& link, common::Seconds now) {
  while (link.head != kNilSpan && spans_[link.head].end <= now) {
    const std::uint32_t next = spans_[link.head].next;
    free_span(link.head);
    link.head = next;
  }
  if (link.head == kNilSpan) link.tail = kNilSpan;
}

void Network::clear_spans(Uplink& link) {
  while (link.head != kNilSpan) {
    const std::uint32_t next = spans_[link.head].next;
    free_span(link.head);
    link.head = next;
  }
  link.tail = kNilSpan;
}

TransferGrant Network::request(std::uint32_t src, std::uint32_t dst,
                               std::uint64_t bytes, common::Seconds now) {
  if (src == dst) throw std::invalid_argument("network: src == dst");
  const double up =
      src == kOriginEndpoint ? origin_uplink_bps_ : uplink_bps_.at(src);
  const double rate = std::min(up, downlink_bps_.at(dst));

  Uplink& link = uplink(src);
  TransferGrant grant;
  grant.src = src;
  grant.start = fifo_admission_ ? std::max(now, link.admit_at) : now;
  grant.end = grant.start + common::transfer_time(bytes, rate);
  grant.ticket = next_ticket_++;
  ++stats_.requests;
  stats_.admission_wait += grant.start - now;
  if (fifo_admission_) {
    // The transfer's fair share of the uplink gates the next admission;
    // remember the span so an abort can return the unused part.
    prune(link, now);
    const common::Seconds next =
        grant.start + common::transfer_time(bytes, up);
    append_span(link, alloc_span(grant.ticket, grant.start, next));
    link.admit_at = next;
  }
  return grant;
}

common::Seconds Network::abort(const TransferGrant& grant,
                               common::Seconds now) {
  ++stats_.aborts;
  if (!fifo_admission_) return 0.0;
  Uplink& link = uplink(grant.src);
  std::uint32_t prev = kNilSpan;
  for (std::uint32_t i = link.head; i != kNilSpan; i = spans_[i].next) {
    if (spans_[i].ticket != grant.ticket) {
      prev = i;
      continue;
    }
    const Span span = spans_[i];
    const common::Seconds reclaimed =
        std::max(0.0, span.end - std::max(now, span.begin));
    // Unlink and recycle the aborted span.
    if (prev == kNilSpan) {
      link.head = span.next;
    } else {
      spans_[prev].next = span.next;
    }
    if (link.tail == i) link.tail = prev;
    free_span(i);
    if (reclaimed > 0.0) {
      // Everything admitted after the aborted transfer moves up by its
      // unused share. Later spans are contiguous whenever reclaimed > 0
      // (a gap would need a reservation made in the future), so the
      // uniform shift is exact, and no span's begin drops below `now`.
      for (std::uint32_t j = span.next; j != kNilSpan; j = spans_[j].next) {
        spans_[j].begin -= reclaimed;
        spans_[j].end -= reclaimed;
      }
      link.admit_at -= reclaimed;
      stats_.reclaimed += reclaimed;
    }
    return reclaimed;
  }
  return 0.0;  // already consumed and pruned, or voided by reset_uplink
}

void Network::shift_uplink(std::uint32_t node, common::Seconds delta,
                           common::Seconds now) {
  Uplink& link = uplink(node);
  const common::Seconds down_at = now - delta;
  for (std::uint32_t i = link.head; i != kNilSpan; i = spans_[i].next) {
    Span& span = spans_[i];
    // Shares not fully consumed when the node went down resume shifted
    // by the outage; a straddling span keeps its consumed prefix.
    if (span.end > down_at) span.end += delta;
    if (span.begin > down_at) span.begin += delta;
  }
  if (link.admit_at > down_at) link.admit_at += delta;
}

void Network::reset_uplink(std::uint32_t node, common::Seconds now) {
  Uplink& link = uplink(node);
  link.admit_at = now;
  clear_spans(link);
}

common::Seconds Network::uplink_available_at(std::uint32_t node) const {
  if (!fifo_admission_) return 0.0;  // always free
  if (node == kOriginEndpoint) return origin_.admit_at;
  return uplinks_.at(node).admit_at;
}

}  // namespace adapt::cluster
