#include "cluster/topology.h"

#include <stdexcept>

#include "trace/profile.h"

namespace adapt::cluster {

void assign_domains(std::vector<NodeSpec>& nodes,
                    const DomainLayout& layout) {
  if (!layout.enabled()) return;
  if (layout.racks_per_site == 0) {
    throw std::invalid_argument("assign_domains: racks_per_site must be > 0");
  }
  const std::uint32_t racks = layout.rack_count();
  if (racks > nodes.size()) {
    throw std::invalid_argument("assign_domains: more racks than nodes");
  }
  // Contiguous split: rack r holds nodes [r*n/R, (r+1)*n/R), so every
  // rack gets floor(n/R) or ceil(n/R) members.
  const std::size_t n = nodes.size();
  for (std::size_t i = 0; i < n; ++i) {
    const auto rack = static_cast<std::uint32_t>(
        (i * racks) / n);
    nodes[i].rack = rack;
    nodes[i].site = rack / layout.racks_per_site;
  }
}

std::vector<avail::InterruptionParams> Cluster::params() const {
  std::vector<avail::InterruptionParams> out;
  out.reserve(nodes.size());
  for (const NodeSpec& n : nodes) {
    out.push_back(n.interruptible() ? n.observed_params()
                                    : avail::InterruptionParams{});
  }
  return out;
}

const std::vector<AvailabilityGroup>& table2_groups() {
  static const std::vector<AvailabilityGroup> groups = {
      {10.0, 4.0},
      {10.0, 8.0},
      {20.0, 4.0},
      {20.0, 8.0},
  };
  return groups;
}

Cluster emulated_cluster(const EmulationConfig& config) {
  if (config.node_count == 0) {
    throw std::invalid_argument("emulated_cluster: need nodes");
  }
  if (config.interrupted_ratio < 0 || config.interrupted_ratio > 1) {
    throw std::invalid_argument("emulated_cluster: ratio must be in [0,1]");
  }

  Cluster cluster;
  cluster.block_size_bytes = config.block_size_bytes;
  cluster.nodes.resize(config.node_count);

  const auto& groups = table2_groups();
  const std::size_t interrupted = static_cast<std::size_t>(
      static_cast<double>(config.node_count) * config.interrupted_ratio +
      0.5);

  for (std::size_t i = 0; i < config.node_count; ++i) {
    NodeSpec& node = cluster.nodes[i];
    node.uplink_bps = config.bandwidth_bps;
    node.downlink_bps = config.bandwidth_bps;
    node.slots = config.slots_per_node;
    if (i < interrupted) {
      // Interrupted nodes are "divided evenly into four groups".
      const AvailabilityGroup& g = groups[i % groups.size()];
      node.mode = AvailabilityMode::kModel;
      node.params = {1.0 / g.mtbi, g.mean_service};
      node.arrival_clock = config.absolute_arrival_clock
                               ? ArrivalClock::kAbsoluteTime
                               : ArrivalClock::kUptime;
      node.service_time = config.deterministic_service
                              ? avail::deterministic(g.mean_service)
                              : avail::exponential(g.mean_service);
    } else {
      node.mode = AvailabilityMode::kAlwaysUp;
    }
  }
  cluster.domains = config.domains;
  assign_domains(cluster.nodes, cluster.domains);
  return cluster;
}

Cluster trace_cluster(const trace::Trace& trace,
                      const TraceClusterConfig& config) {
  if (trace.node_count == 0) {
    throw std::invalid_argument("trace_cluster: empty trace");
  }

  Cluster cluster;
  cluster.block_size_bytes = config.block_size_bytes;
  cluster.replay_horizon = trace.horizon;
  cluster.fifo_uplinks = config.fifo_uplinks;
  cluster.nodes.resize(trace.node_count);

  const auto params = trace::extract_params(trace);
  auto intervals = trace::extract_down_intervals(trace);

  for (std::size_t i = 0; i < trace.node_count; ++i) {
    NodeSpec& node = cluster.nodes[i];
    node.uplink_bps = config.bandwidth_bps;
    node.downlink_bps = config.bandwidth_bps;
    node.slots = config.slots_per_node;
    if (intervals[i].empty()) {
      node.mode = AvailabilityMode::kAlwaysUp;
    } else {
      node.mode = AvailabilityMode::kReplay;
      node.params = params[i];
      node.down_intervals = std::move(intervals[i]);
    }
  }
  cluster.domains = config.domains;
  assign_domains(cluster.nodes, cluster.domains);
  return cluster;
}

Cluster model_cluster(const std::vector<avail::InterruptionParams>& params,
                      const TraceClusterConfig& config) {
  if (params.empty()) {
    throw std::invalid_argument("model_cluster: no nodes");
  }
  Cluster cluster;
  cluster.block_size_bytes = config.block_size_bytes;
  cluster.fifo_uplinks = config.fifo_uplinks;
  cluster.nodes.resize(params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    NodeSpec& node = cluster.nodes[i];
    node.uplink_bps = config.bandwidth_bps;
    node.downlink_bps = config.bandwidth_bps;
    node.slots = config.slots_per_node;
    if (params[i].lambda > 0 && params[i].mu > 0) {
      node.mode = AvailabilityMode::kModel;
      node.arrival_clock = ArrivalClock::kAbsoluteTime;
      node.params = params[i];
      node.service_time = avail::exponential(params[i].mu);
    } else {
      node.mode = AvailabilityMode::kAlwaysUp;
    }
  }
  cluster.domains = config.domains;
  assign_domains(cluster.nodes, cluster.domains);
  return cluster;
}

}  // namespace adapt::cluster
