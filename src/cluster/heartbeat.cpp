#include "cluster/heartbeat.h"

#include <stdexcept>

namespace adapt::cluster {

HeartbeatCollector::HeartbeatCollector(std::size_t node_count, Config config,
                                       common::Seconds start)
    : config_(config) {
  if (node_count == 0) {
    throw std::invalid_argument("heartbeat: need at least one node");
  }
  if (config_.interval <= 0 || config_.miss_threshold < 1) {
    throw std::invalid_argument("heartbeat: bad config");
  }
  nodes_.reserve(node_count);
  for (std::size_t i = 0; i < node_count; ++i) nodes_.emplace_back(start);
}

void HeartbeatCollector::refresh(std::size_t node, common::Seconds now) const {
  PerNode& state = nodes_.at(node);
  if (!state.believed_up) return;
  // Message mode: silence since the last beat counts as a pending down.
  // Transition mode: only an explicit notify_down arms detection.
  common::Seconds down_at;
  if (state.pending_down_at >= 0.0) {
    down_at = state.pending_down_at;
  } else if (state.message_mode) {
    down_at = state.last_beat + detection_latency();
  } else {
    return;
  }
  if (now >= down_at) {
    state.believed_up = false;
    state.down_since = down_at;
    state.estimator.record_down(down_at);
    state.pending_down_at = -1.0;
  }
}

void HeartbeatCollector::observe_heartbeat(std::size_t node,
                                           common::Seconds now) {
  nodes_.at(node).message_mode = true;
  refresh(node, now);
  PerNode& state = nodes_.at(node);
  if (!state.believed_up) {
    state.believed_up = true;
    state.estimator.record_up(now);
  }
  state.pending_down_at = -1.0;
  state.down_since = -1.0;
  state.dead = false;  // heard from again: resurrection
  state.last_beat = now;
}

void HeartbeatCollector::notify_down(std::size_t node, common::Seconds now) {
  refresh(node, now);
  PerNode& state = nodes_.at(node);
  if (!state.believed_up) return;
  // The collector only notices after the configured number of silent
  // intervals; applied lazily so an outage shorter than the detection
  // latency is (correctly) never observed at all.
  state.pending_down_at = now + detection_latency();
}

void HeartbeatCollector::notify_up(std::size_t node, common::Seconds now) {
  refresh(node, now);
  PerNode& state = nodes_.at(node);
  if (state.believed_up) {
    // Outage ended before detection fired: drop the pending miss.
    state.pending_down_at = -1.0;
    state.last_beat = now;
    return;
  }
  state.believed_up = true;
  state.estimator.record_up(now);
  state.pending_down_at = -1.0;
  state.down_since = -1.0;
  state.dead = false;  // heard from again: resurrection
  state.last_beat = now;
}

bool HeartbeatCollector::believed_up(std::size_t node,
                                     common::Seconds now) const {
  refresh(node, now);
  return nodes_.at(node).believed_up;
}

bool HeartbeatCollector::believed_dead(std::size_t node,
                                       common::Seconds now) const {
  if (config_.dead_timeout <= 0.0) return false;
  refresh(node, now);
  PerNode& state = nodes_.at(node);
  if (state.dead) return true;
  if (!state.believed_up && state.down_since >= 0.0 &&
      now >= state.down_since + config_.dead_timeout) {
    state.dead = true;
  }
  return state.dead;
}

avail::InterruptionParams HeartbeatCollector::estimate(
    std::size_t node, common::Seconds now) const {
  refresh(node, now);
  return nodes_.at(node).estimator.estimate(now);
}

std::vector<avail::InterruptionParams> HeartbeatCollector::estimates(
    common::Seconds now) const {
  std::vector<avail::InterruptionParams> out;
  out.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    out.push_back(estimate(i, now));
  }
  return out;
}

}  // namespace adapt::cluster
