// Fixed-size bitset over node indices, the eligibility currency of the
// placement hot path.
//
// Placement draws, the fidelity cap, and re-replication all reason about
// "which nodes qualify right now". A std::vector<bool> answers that one
// bit at a time and has to be rebuilt O(n) per draw; NodeMask packs the
// set into 64-bit words so the NameNode can maintain it incrementally
// (flip one bit when a node fills up or dies) and combine masks
// word-parallel (eligible = placeable & filter, minus the cap mask).
// Tail bits past size() are kept zero as a class invariant, so count(),
// any() and the word-wise combines never need per-bit masking.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace adapt::cluster {

class NodeMask {
 public:
  using Word = std::uint64_t;
  static constexpr std::size_t kWordBits = 64;

  NodeMask() = default;
  explicit NodeMask(std::size_t size, bool value = false)
      : size_(size), words_((size + kWordBits - 1) / kWordBits, 0) {
    if (value) set_all();
  }

  static NodeMask from_vector(const std::vector<bool>& bits) {
    NodeMask mask(bits.size());
    for (std::size_t i = 0; i < bits.size(); ++i) {
      if (bits[i]) mask.set(i);
    }
    return mask;
  }

  std::vector<bool> to_vector() const {
    std::vector<bool> bits(size_, false);
    for_each_set([&bits](std::uint32_t i) { bits[i] = true; });
    return bits;
  }

  std::size_t size() const { return size_; }

  bool test(std::size_t i) const {
    return (words_[i / kWordBits] >> (i % kWordBits)) & 1u;
  }
  bool operator[](std::size_t i) const { return test(i); }

  void set(std::size_t i) { words_[i / kWordBits] |= Word{1} << (i % kWordBits); }
  void reset(std::size_t i) {
    words_[i / kWordBits] &= ~(Word{1} << (i % kWordBits));
  }
  void assign(std::size_t i, bool value) {
    if (value) {
      set(i);
    } else {
      reset(i);
    }
  }

  void set_all() {
    if (size_ == 0) return;
    for (Word& w : words_) w = ~Word{0};
    trim_tail();
  }
  void reset_all() {
    for (Word& w : words_) w = 0;
  }

  std::size_t count() const {
    std::size_t n = 0;
    for (const Word w : words_) n += static_cast<std::size_t>(std::popcount(w));
    return n;
  }

  bool any() const {
    for (const Word w : words_) {
      if (w != 0) return true;
    }
    return false;
  }
  bool none() const { return !any(); }

  NodeMask& operator&=(const NodeMask& other) {
    check_size(other);
    for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= other.words_[w];
    return *this;
  }
  NodeMask& operator|=(const NodeMask& other) {
    check_size(other);
    for (std::size_t w = 0; w < words_.size(); ++w) words_[w] |= other.words_[w];
    return *this;
  }
  // Word-parallel "do the two sets share a node" test — the fault-domain
  // eligibility step asks this per domain, so it must not materialize
  // the intersection.
  bool intersects(const NodeMask& other) const {
    check_size(other);
    for (std::size_t w = 0; w < words_.size(); ++w) {
      if ((words_[w] & other.words_[w]) != 0) return true;
    }
    return false;
  }

  // this &= ~other; the word-parallel "remove these nodes" combine.
  NodeMask& and_not(const NodeMask& other) {
    check_size(other);
    for (std::size_t w = 0; w < words_.size(); ++w) {
      words_[w] &= ~other.words_[w];
    }
    return *this;
  }

  bool operator==(const NodeMask&) const = default;

  // Visit set bits in ascending index order.
  template <typename Fn>
  void for_each_set(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      Word word = words_[w];
      while (word != 0) {
        const auto bit = static_cast<std::size_t>(std::countr_zero(word));
        fn(static_cast<std::uint32_t>(w * kWordBits + bit));
        word &= word - 1;
      }
    }
  }

  // Index of the n-th (0-based) set bit, or size() when fewer are set.
  std::size_t nth_set(std::size_t n) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      Word word = words_[w];
      const auto in_word = static_cast<std::size_t>(std::popcount(word));
      if (n >= in_word) {
        n -= in_word;
        continue;
      }
      while (n-- > 0) word &= word - 1;  // drop the n lowest set bits
      return w * kWordBits + static_cast<std::size_t>(std::countr_zero(word));
    }
    return size_;
  }

  // Highest set index, or size() when empty.
  std::size_t last_set() const {
    for (std::size_t w = words_.size(); w-- > 0;) {
      if (words_[w] == 0) continue;
      return w * kWordBits + (kWordBits - 1) -
             static_cast<std::size_t>(std::countl_zero(words_[w]));
    }
    return size_;
  }

  const std::vector<Word>& words() const { return words_; }

 private:
  void check_size(const NodeMask& other) const {
    if (other.size_ != size_) {
      throw std::invalid_argument("NodeMask: size mismatch");
    }
  }
  void trim_tail() {
    const std::size_t tail = size_ % kWordBits;
    if (tail != 0) words_.back() &= (Word{1} << tail) - 1;
  }

  std::size_t size_ = 0;
  std::vector<Word> words_;  // invariant: bits >= size_ are zero
};

}  // namespace adapt::cluster
