// Trace replay: reconstruct per-node timelines and job-level accounting
// from a recorded event stream, independently of the simulator.
//
// The replayer re-derives the paper's "recovery" overhead (node downtime
// while the node still holds undone home tasks, weighted by slots) from
// nothing but placement decisions, node up/down transitions and attempt
// completions — so a trace can be audited against JobResult without
// trusting the simulator's own bookkeeping. Used by the trace_inspect
// example and the observability tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace adapt::obs {

// Per-node totals over one replayed run.
struct NodeTotals {
  std::uint64_t transitions = 0;      // down + up events
  std::uint64_t attempts = 0;         // attempts started here
  common::Seconds downtime = 0.0;     // clipped to [0, elapsed]
  common::Seconds busy = 0.0;         // >= 1 attempt held a slot here
};

struct ReplaySummary {
  std::size_t node_count = 0;
  std::uint64_t task_count = 0;
  common::Seconds elapsed = 0.0;

  std::vector<std::uint64_t> event_counts;  // indexed by EventType
  std::vector<NodeTotals> nodes;

  common::Seconds total_downtime = 0.0;
  common::Seconds total_busy = 0.0;
  // Downtime while the node still had undone home tasks, in
  // slot-seconds — the trace-derived equivalent of
  // JobResult::overhead.recovery.
  double recovery_node_seconds = 0.0;

  // Churn & recovery accounting (zero on churn-free traces).
  std::uint64_t nodes_dead = 0;             // dead declarations
  std::uint64_t replicas_lost = 0;          // blocks that hit 0 live replicas
  std::uint64_t rereplications = 0;         // completed re-replications
  std::uint64_t rereplication_retries = 0;
  std::uint64_t rereplication_giveups = 0;
  double rereplication_bytes = 0.0;         // bytes moved by recovery

  // Predictor drift accounting (zero without calibration).
  std::uint64_t drift_alarms = 0;
  std::uint64_t drift_latency_count = 0;    // alarms with known latency
  common::Seconds drift_latency_sum = 0.0;

  // Online rebalancing accounting (zero with the loop off).
  std::uint64_t rebalance_triggers = 0;
  std::uint64_t migrations_committed = 0;
  std::uint64_t migration_retries = 0;
  std::uint64_t migration_giveups = 0;
  double migration_bytes = 0.0;             // bytes moved by rebalancing

  // Gray-failure accounting (zero on crash-stop-only traces).
  std::uint64_t partitions_started = 0;
  std::uint64_t partitions_healed = 0;
  std::uint64_t stragglers_started = 0;
  std::uint64_t replicas_corrupted = 0;     // bitrot injections
  std::uint64_t corrupt_reads = 0;          // checksum catches (all paths)
  std::uint64_t corrupt_reads_scan = 0;     // ... caught by the scanner
  std::uint64_t safe_mode_entries = 0;
  std::uint64_t safe_mode_exits = 0;
  std::uint64_t safe_mode_healed = 0;       // exits with no write-off
  std::uint64_t safe_mode_writeoffs = 0;    // deferred write-offs applied
  std::uint64_t false_dead_declarations = 0;  // node_revived events
  std::uint64_t revived_replicas_restored = 0;
  std::uint64_t revived_replicas_trimmed = 0;

  // Scheduling accounting (zero with the baseline scheduler when no
  // duplicates were launched). The trace marks duplicate attempts but
  // not which policy launched them, so these aggregate speculative and
  // redundant copies alike.
  std::uint64_t duplicate_launches = 0;     // attempt_start with dup mark
  std::uint64_t duplicate_wins = 0;         // finishes by a duplicate copy
  std::uint64_t redundant_cancels = 0;      // attempt_kill reason=redundant
  double redundant_waste_bytes = 0.0;       // redundant_waste bytes summed

  std::uint64_t count(EventType type) const {
    return event_counts[static_cast<std::size_t>(type)];
  }
};

// Replay one run's records (in recorded order).
ReplaySummary replay(const std::vector<TraceRecord>& records);

// Parse JSONL produced by to_jsonl back into per-run record lists,
// indexed by run. {"ev": "dropped"} marker lines set the run's dropped
// count. Throws std::runtime_error on malformed input.
std::vector<RunObservations> parse_jsonl(const std::string& text);

// Parse a span stream produced by spans_to_jsonl back into per-run span
// lists, indexed by run. Host-time fields parse when present and stay
// zero otherwise. Throws std::runtime_error on malformed input.
std::vector<std::vector<SpanRecord>> parse_spans_jsonl(
    const std::string& text);

// Per-phase span totals: fold a run's span records by name.
struct PhaseTotals {
  std::string name;
  std::uint64_t count = 0;
  common::Seconds dur_sim = 0.0;   // summed span durations
  common::Seconds self_sim = 0.0;  // summed self-times (no double count)
};

// Aggregate spans by name, sorted by name — the per-phase self-time
// table trace_inspect prints.
std::vector<PhaseTotals> fold_spans(const std::vector<SpanRecord>& spans);

}  // namespace adapt::obs
