#include "obs/lineage.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <stdexcept>

#include "common/jsonfmt.h"

namespace adapt::obs {

namespace {

using common::json_number;

constexpr std::uint32_t kOrigin = std::numeric_limits<std::uint32_t>::max();

std::string endpoint_str(std::uint32_t node) {
  return node == kOrigin ? "-1" : std::to_string(node);
}

std::string fmt_t(common::Seconds t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", t);
  return buf;
}

}  // namespace

const char* to_string(LineageStepKind kind) {
  switch (kind) {
    case LineageStepKind::kPlaced:
      return "placed";
    case LineageStepKind::kRereplicated:
      return "rereplicated";
    case LineageStepKind::kMigrated:
      return "migrated";
    case LineageStepKind::kWriteoff:
      return "writeoff";
    case LineageStepKind::kRestored:
      return "restored";
    case LineageStepKind::kTrimmed:
      return "trimmed";
    case LineageStepKind::kCorrupted:
      return "corrupted";
    case LineageStepKind::kCorruptDropped:
      return "corrupt_dropped";
    case LineageStepKind::kLost:
      return "lost";
    case LineageStepKind::kRepairStart:
      return "repair_start";
    case LineageStepKind::kRepairRetry:
      return "repair_retry";
    case LineageStepKind::kRepairGiveup:
      return "repair_giveup";
  }
  return "?";
}

const char* to_string(LossCause cause) {
  switch (cause) {
    case LossCause::kCorruptionNoSurvivor:
      return "corruption_no_survivor";
    case LossCause::kFalsePositiveWriteoff:
      return "false_positive_writeoff";
    case LossCause::kRetryExhaustion:
      return "retry_exhaustion";
    case LossCause::kAllHoldersDeadWithinWindow:
      return "all_holders_dead_within_window";
    case LossCause::kUnclassified:
      return "unclassified";
  }
  return "?";
}

// ---------------------------------------------------------------------
// LineageIndex
// ---------------------------------------------------------------------

BlockLineage& LineageIndex::touch_block(std::uint32_t block) {
  if (blocks_.size() <= block) blocks_.resize(block + 1);
  BlockState& s = blocks_[block];
  if (!s.touched) {
    s.touched = true;
    s.lineage.block = block;
  }
  return s.lineage;
}

TaskLineage& LineageIndex::touch_task(std::uint32_t task) {
  if (tasks_.size() <= task) tasks_.resize(task + 1);
  TaskState& s = tasks_[task];
  if (!s.touched) {
    s.touched = true;
    s.lineage.task = task;
  }
  return s.lineage;
}

void LineageIndex::push_step(BlockLineage& b, const LineageStep& step) {
  if (b.steps.size() < kMaxStepsPerBlock) {
    b.steps.push_back(step);
  } else {
    ++b.truncated_steps;
  }
}

bool LineageIndex::add_holder(BlockLineage& b, std::uint32_t node) {
  if (std::find(b.holders.begin(), b.holders.end(), node) !=
      b.holders.end()) {
    return false;
  }
  b.holders.push_back(node);
  b.had_holders = true;
  // A live copy exists again: any standing zero-replica verdict is void.
  b.lost = false;
  b.emptied_by_corruption = false;
  return true;
}

void LineageIndex::remove_holder(BlockLineage& b, std::uint32_t node) {
  b.holders.erase(std::remove(b.holders.begin(), b.holders.end(), node),
                  b.holders.end());
}

void LineageIndex::observe(const TraceRecord& r) {
  ++records_seen_;
  if (r.t > last_t_) last_t_ = r.t;
  switch (r.type) {
    case EventType::kJobStart: {
      if (node_up_.size() < r.node) node_up_.resize(r.node, 1);
      break;
    }
    case EventType::kJobEnd:
      elapsed_ = r.t;
      break;
    case EventType::kNodeDown: {
      if (node_up_.size() <= r.node) node_up_.resize(r.node + 1, 1);
      node_up_[r.node] = 0;
      break;
    }
    case EventType::kNodeUp: {
      if (node_up_.size() <= r.node) node_up_.resize(r.node + 1, 1);
      node_up_[r.node] = 1;
      break;
    }
    case EventType::kPlacement: {
      BlockLineage& b = touch_block(r.task);
      // Re-replication and migration landings echo a placement record
      // for the board; the holder is already registered then, so only a
      // genuinely new holder becomes a "placed" hop.
      if (add_holder(b, r.node)) {
        push_step(b, {r.t, LineageStepKind::kPlaced, r.node, r.aux, r.v0});
      }
      break;
    }
    case EventType::kReplicaWriteoff: {
      BlockLineage& b = touch_block(r.task);
      remove_holder(b, r.node);
      push_step(b, {r.t, LineageStepKind::kWriteoff, r.node, r.aux, 0.0});
      if (r.aux != 0) b.false_writeoff = true;
      break;
    }
    case EventType::kReplicaRestore: {
      BlockLineage& b = touch_block(r.task);
      if (add_holder(b, r.node)) {
        push_step(b, {r.t, LineageStepKind::kRestored, r.node, 0, 0.0});
      }
      break;
    }
    case EventType::kReplicaTrim: {
      BlockLineage& b = touch_block(r.task);
      remove_holder(b, r.node);
      push_step(b, {r.t, LineageStepKind::kTrimmed, r.node, 0, 0.0});
      break;
    }
    case EventType::kReplicaCorrupt: {
      BlockLineage& b = touch_block(r.task);
      push_step(b, {r.t, LineageStepKind::kCorrupted, r.node, 0, 0.0});
      break;
    }
    case EventType::kCorruptRead: {
      BlockLineage& b = touch_block(r.task);
      remove_holder(b, r.node);
      push_step(b,
                {r.t, LineageStepKind::kCorruptDropped, r.node, r.aux, 0.0});
      if (b.holders.empty()) b.emptied_by_corruption = true;
      break;
    }
    case EventType::kReplicaLost: {
      BlockLineage& b = touch_block(r.task);
      push_step(b, {r.t, LineageStepKind::kLost, 0, r.aux, 0.0});
      b.saw_loss_event = true;
      if (r.aux == 0) {  // not origin-recoverable
        b.lost = true;
        b.lost_at = r.t;
      }
      break;
    }
    case EventType::kRereplicationStart: {
      BlockLineage& b = touch_block(r.task);
      push_step(b, {r.t, LineageStepKind::kRepairStart, r.node, r.aux, 0.0});
      b.repair_attempted = true;
      break;
    }
    case EventType::kRereplicationDone: {
      BlockLineage& b = touch_block(r.task);
      if (add_holder(b, r.node)) {
        push_step(b,
                  {r.t, LineageStepKind::kRereplicated, r.node, r.peer, r.v0});
      }
      break;
    }
    case EventType::kRereplicationRetry: {
      BlockLineage& b = touch_block(r.task);
      push_step(b, {r.t, LineageStepKind::kRepairRetry, 0, r.aux, 0.0});
      b.repair_attempted = true;
      break;
    }
    case EventType::kRereplicationGiveup: {
      BlockLineage& b = touch_block(r.task);
      push_step(b, {r.t, LineageStepKind::kRepairGiveup, 0, r.aux, 0.0});
      b.repair_attempted = true;
      b.repair_gaveup = true;
      break;
    }
    case EventType::kMigrationCommit: {
      BlockLineage& b = touch_block(r.task);
      if (add_holder(b, r.node)) {
        push_step(b, {r.t, LineageStepKind::kMigrated, r.node, r.peer, r.v0});
      }
      remove_holder(b, r.peer);
      break;
    }
    case EventType::kAttemptStart: {
      TaskLineage& t = touch_task(r.task);
      if (t.attempts.size() < kMaxAttemptsPerTask) {
        AttemptNode a;
        a.start = r.t;
        a.node = r.node;
        a.src = r.peer;
        a.ticket = r.ticket;
        a.speculative = r.aux != 0;
        t.attempts.push_back(a);
      } else {
        ++t.truncated_attempts;
      }
      break;
    }
    case EventType::kAttemptFinish: {
      TaskLineage& t = touch_task(r.task);
      t.done = true;
      t.done_at = r.t;
      for (auto it = t.attempts.rbegin(); it != t.attempts.rend(); ++it) {
        if (it->end < 0.0 && it->node == r.node) {
          it->end = r.t;
          it->finished = true;
          break;
        }
      }
      break;
    }
    case EventType::kAttemptKill: {
      TaskLineage& t = touch_task(r.task);
      for (auto it = t.attempts.rbegin(); it != t.attempts.rend(); ++it) {
        if (it->end < 0.0 && it->node == r.node) {
          it->end = r.t;
          it->killed = true;
          it->kill_reason = r.reason;
          break;
        }
      }
      break;
    }
    case EventType::kTransferStall: {
      TaskLineage& t = touch_task(r.task);
      for (auto it = t.attempts.rbegin(); it != t.attempts.rend(); ++it) {
        if (it->end < 0.0 && it->ticket == r.ticket) {
          ++it->stalls;
          break;
        }
      }
      break;
    }
    case EventType::kTaskPark: {
      ++touch_task(r.task).parks;
      break;
    }
    default:
      break;
  }
}

LineageSnapshot LineageIndex::take_snapshot() const {
  LineageSnapshot out;
  out.records_seen = records_seen_;
  out.elapsed = elapsed_ >= 0.0 ? elapsed_ : last_t_;

  const auto node_down = [this](std::uint32_t node) {
    return node < node_up_.size() && node_up_[node] == 0;
  };

  for (const BlockState& s : blocks_) {
    if (!s.touched) continue;
    BlockLineage b = s.lineage;
    std::sort(b.holders.begin(), b.holders.end());

    const bool task_done = b.block < tasks_.size() &&
                           tasks_[b.block].touched &&
                           tasks_[b.block].lineage.done;
    if (task_done) {
      // A finished task cannot lose its input, whatever the metadata
      // says (a live attempt already held the bytes and won).
      b.lost = false;
    } else if (!b.lost && b.had_holders) {
      // End-state verdict: the run ended with this task undone and no
      // holder able to serve it — covers the no-live-nodes shutdown,
      // which writes tasks off without a zero-replica event.
      bool all_down = true;
      for (const std::uint32_t n : b.holders) {
        if (!node_down(n)) {
          all_down = false;
          break;
        }
      }
      if (b.holders.empty() || all_down) {
        b.lost = true;
        b.lost_at = out.elapsed;
      }
    }
    out.blocks.push_back(std::move(b));
  }

  for (const TaskState& s : tasks_) {
    if (!s.touched) continue;
    out.tasks.push_back(s.lineage);
  }
  return out;
}

LineageSnapshot build_lineage(const std::vector<TraceRecord>& records) {
  LineageIndex index;
  for (const TraceRecord& r : records) index.observe(r);
  return index.take_snapshot();
}

namespace {

template <typename T>
const T* find_by_id(const std::vector<T>& sorted, std::uint32_t id,
                    std::uint32_t T::*key) {
  const auto it = std::lower_bound(
      sorted.begin(), sorted.end(), id,
      [key](const T& entry, std::uint32_t value) {
        return entry.*key < value;
      });
  if (it == sorted.end() || (*it).*key != id) return nullptr;
  return &*it;
}

}  // namespace

const BlockLineage* find_block(const LineageSnapshot& snapshot,
                               std::uint32_t block) {
  return find_by_id(snapshot.blocks, block, &BlockLineage::block);
}

const TaskLineage* find_task(const LineageSnapshot& snapshot,
                             std::uint32_t task) {
  return find_by_id(snapshot.tasks, task, &TaskLineage::task);
}

// ---------------------------------------------------------------------
// Loss post-mortems
// ---------------------------------------------------------------------

LossCause classify_loss(const BlockLineage& b) {
  // Fixed precedence, most specific evidence first (see lineage.h).
  if (b.emptied_by_corruption) return LossCause::kCorruptionNoSurvivor;
  if (b.false_writeoff) return LossCause::kFalsePositiveWriteoff;
  if (b.repair_attempted) return LossCause::kRetryExhaustion;
  // No repair ever started: every holder was written off before a
  // recovery transfer could even be reserved, i.e. all of them died
  // within one detection window of each other.
  if (b.had_holders) return LossCause::kAllHoldersDeadWithinWindow;
  return LossCause::kUnclassified;
}

LossReport post_mortem(const LineageSnapshot& snapshot) {
  LossReport out;
  for (const BlockLineage& b : snapshot.blocks) {
    if (!b.lost) continue;
    LossPostMortem pm;
    pm.block = b.block;
    pm.cause = classify_loss(b);
    pm.lost_at = b.lost_at;
    for (const LineageStep& s : b.steps) {
      switch (s.kind) {
        case LineageStepKind::kWriteoff:
          ++pm.writeoffs;
          break;
        case LineageStepKind::kRepairStart:
        case LineageStepKind::kRepairRetry:
          ++pm.repair_attempts;
          break;
        default:
          break;
      }
    }
    ++out.counts[static_cast<std::size_t>(pm.cause)];
    ++out.total;
    out.losses.push_back(pm);
  }
  return out;
}

// ---------------------------------------------------------------------
// Rendering & export
// ---------------------------------------------------------------------

std::string describe_block(const BlockLineage& b) {
  std::string out = "block " + std::to_string(b.block) + ": ";
  if (b.lost) {
    out += "LOST at " + fmt_t(b.lost_at) + "s (cause: " +
           to_string(classify_loss(b)) + ")";
  } else {
    out += "alive";
  }
  out += ", holders {";
  for (std::size_t i = 0; i < b.holders.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(b.holders[i]);
  }
  out += "}, " + std::to_string(b.steps.size()) + " step(s)";
  if (b.truncated_steps > 0) {
    out += " (+" + std::to_string(b.truncated_steps) + " truncated)";
  }
  out += "\n";
  for (const LineageStep& s : b.steps) {
    out += "  " + fmt_t(s.t) + "s  " + to_string(s.kind);
    switch (s.kind) {
      case LineageStepKind::kPlaced:
        out += " on node " + std::to_string(s.node) + " (replica " +
               std::to_string(s.detail) + ")";
        if (s.v0 > 0.0) out += " quote " + fmt_t(s.v0) + "s";
        break;
      case LineageStepKind::kRereplicated:
      case LineageStepKind::kMigrated:
        out += " to node " + std::to_string(s.node) + " from " +
               endpoint_str(s.detail);
        break;
      case LineageStepKind::kWriteoff:
        out += " node " + std::to_string(s.node);
        if (s.detail != 0) out += " (FALSE POSITIVE: holder was up)";
        break;
      case LineageStepKind::kRestored:
      case LineageStepKind::kTrimmed:
      case LineageStepKind::kCorrupted:
        out += " node " + std::to_string(s.node);
        break;
      case LineageStepKind::kCorruptDropped:
        out += " node " + std::to_string(s.node) + " (caught by " +
               (s.detail == 0   ? "local read"
                : s.detail == 1 ? "remote fetch"
                                : "scanner") +
               ")";
        break;
      case LineageStepKind::kLost:
        out += s.detail != 0 ? " (origin-recoverable)"
                             : " (zero live replicas)";
        break;
      case LineageStepKind::kRepairStart:
      case LineageStepKind::kRepairRetry:
        out += " attempt " + std::to_string(s.detail);
        if (s.kind == LineageStepKind::kRepairStart) {
          out += " to node " + std::to_string(s.node);
        }
        break;
      case LineageStepKind::kRepairGiveup:
        out += " after " + std::to_string(s.detail) + " attempt(s)";
        break;
    }
    out += "\n";
  }
  return out;
}

std::string describe_task(const TaskLineage& t) {
  std::string out = "task " + std::to_string(t.task) + ": ";
  out += t.done ? "done at " + fmt_t(t.done_at) + "s" : "undone";
  out += ", " + std::to_string(t.attempts.size()) + " attempt(s)";
  if (t.truncated_attempts > 0) {
    out += " (+" + std::to_string(t.truncated_attempts) + " truncated)";
  }
  if (t.parks > 0) out += ", parked " + std::to_string(t.parks) + "x";
  out += "\n";
  for (const AttemptNode& a : t.attempts) {
    out += "  " + fmt_t(a.start) + "s  node " + std::to_string(a.node) +
           " src " + endpoint_str(a.src);
    if (a.speculative) out += " [dup]";
    if (a.stalls > 0) {
      out += " stalls " + std::to_string(a.stalls);
    }
    if (a.finished) {
      out += " -> finished at " + fmt_t(a.end) + "s";
    } else if (a.killed) {
      out += " -> killed at " + fmt_t(a.end) + "s (" +
             to_string(a.kill_reason) + ")";
    } else {
      out += " -> open";
    }
    out += "\n";
  }
  return out;
}

std::string post_mortem_text(const LossReport& report) {
  std::string out =
      "loss post-mortem: " + std::to_string(report.total) + " lost block(s)\n";
  for (std::size_t i = 0; i < kLossCauseCount; ++i) {
    out += "  " + std::string(to_string(static_cast<LossCause>(i))) + " " +
           std::to_string(report.counts[i]) + "\n";
  }
  for (const LossPostMortem& pm : report.losses) {
    out += "block " + std::to_string(pm.block) + " lost at " +
           fmt_t(pm.lost_at) + "s: " + to_string(pm.cause) + " (writeoffs " +
           std::to_string(pm.writeoffs) + ", repair attempts " +
           std::to_string(pm.repair_attempts) + ")\n";
  }
  return out;
}

namespace {

void append_block_line(std::string& out, std::uint64_t run,
                       const BlockLineage& b) {
  out += "{\"run\": " + std::to_string(run) +
         ", \"lineage\": \"block\", \"block\": " + std::to_string(b.block) +
         ", \"lost\": " + (b.lost ? "1" : "0");
  if (b.lost) {
    out += ", \"cause\": \"" + std::string(to_string(classify_loss(b))) +
           "\", \"lost_at\": " + json_number(b.lost_at);
  }
  out += ", \"holders\": [";
  for (std::size_t i = 0; i < b.holders.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(b.holders[i]);
  }
  out += "]";
  if (b.truncated_steps > 0) {
    out += ", \"truncated\": " + std::to_string(b.truncated_steps);
  }
  out += ", \"steps\": [";
  for (std::size_t i = 0; i < b.steps.size(); ++i) {
    const LineageStep& s = b.steps[i];
    if (i > 0) out += ", ";
    out += "{\"t\": " + json_number(s.t) + ", \"k\": \"" +
           to_string(s.kind) + "\", \"node\": " + std::to_string(s.node) +
           ", \"detail\": " + endpoint_str(s.detail) +
           ", \"v0\": " + json_number(s.v0) + "}";
  }
  out += "]}\n";
}

void append_task_line(std::string& out, std::uint64_t run,
                      const TaskLineage& t) {
  out += "{\"run\": " + std::to_string(run) +
         ", \"lineage\": \"task\", \"task\": " + std::to_string(t.task) +
         ", \"done\": " + (t.done ? "1" : "0");
  if (t.done) out += ", \"done_at\": " + json_number(t.done_at);
  out += ", \"parks\": " + std::to_string(t.parks);
  if (t.truncated_attempts > 0) {
    out += ", \"truncated\": " + std::to_string(t.truncated_attempts);
  }
  out += ", \"attempts\": [";
  for (std::size_t i = 0; i < t.attempts.size(); ++i) {
    const AttemptNode& a = t.attempts[i];
    if (i > 0) out += ", ";
    out += "{\"t0\": " + json_number(a.start) +
           ", \"t1\": " + json_number(a.end) + ", \"node\": " +
           std::to_string(a.node) + ", \"src\": " + endpoint_str(a.src) +
           ", \"spec\": " + (a.speculative ? "1" : "0") +
           ", \"outcome\": \"" +
           (a.finished ? "finished" : a.killed ? "killed" : "open") + "\"";
    if (a.killed) {
      out += ", \"reason\": \"" + std::string(to_string(a.kill_reason)) +
             "\"";
    }
    out += ", \"stalls\": " + std::to_string(a.stalls) + "}";
  }
  out += "]}\n";
}

void write_text(const std::string& path, const std::string& text) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    throw std::runtime_error("lineage: cannot open " + path);
  }
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), file);
  const int close_rc = std::fclose(file);
  if (written != text.size() || close_rc != 0) {
    throw std::runtime_error("lineage: short write to " + path);
  }
}

}  // namespace

std::string lineage_to_jsonl(const std::vector<RunObservations>& runs) {
  std::string out;
  for (std::size_t run = 0; run < runs.size(); ++run) {
    LineageSnapshot rebuilt;
    const LineageSnapshot* snapshot = runs[run].lineage.get();
    if (snapshot == nullptr) {
      rebuilt = build_lineage(runs[run].records);
      snapshot = &rebuilt;
    }
    const LossReport report = post_mortem(*snapshot);
    out += "{\"run\": " + std::to_string(run) +
           ", \"lineage\": \"summary\", \"blocks\": " +
           std::to_string(snapshot->blocks.size()) +
           ", \"tasks\": " + std::to_string(snapshot->tasks.size()) +
           ", \"lost\": " + std::to_string(report.total) +
           ", \"elapsed\": " + json_number(snapshot->elapsed) +
           ", \"records\": " + std::to_string(snapshot->records_seen) +
           "}\n";
    for (const BlockLineage& b : snapshot->blocks) {
      append_block_line(out, run, b);
    }
    for (const TaskLineage& t : snapshot->tasks) {
      append_task_line(out, run, t);
    }
  }
  return out;
}

void write_lineage_jsonl(const std::string& path,
                         const std::vector<RunObservations>& runs) {
  write_text(path, lineage_to_jsonl(runs));
}

}  // namespace adapt::obs
