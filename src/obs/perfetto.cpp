#include "obs/perfetto.h"

#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

namespace adapt::obs {

namespace {

constexpr std::uint32_t kOrigin = std::numeric_limits<std::uint32_t>::max();

std::int64_t micros(common::Seconds t) {
  return static_cast<std::int64_t>(std::llround(t * 1e6));
}

std::string num(std::int64_t v) { return std::to_string(v); }

// One trace event as a single JSON line (keys in fixed order).
struct EventWriter {
  std::string& out;
  std::uint64_t run;

  void meta(std::int64_t tid, const char* what, const std::string& name) {
    out += "{\"ph\": \"M\", \"pid\": " + std::to_string(run) +
           ", \"tid\": " + num(tid) + ", \"name\": \"" + what +
           "\", \"args\": {\"name\": \"" + name + "\"}},\n";
  }

  void slice(std::int64_t tid, common::Seconds t0, common::Seconds t1,
             const std::string& name, const char* cat,
             const std::string& args_json) {
    const std::int64_t ts = micros(t0);
    const std::int64_t dur = micros(t1) - ts;
    out += "{\"ph\": \"X\", \"pid\": " + std::to_string(run) +
           ", \"tid\": " + num(tid) + ", \"ts\": " + num(ts) +
           ", \"dur\": " + num(dur < 0 ? 0 : dur) + ", \"name\": \"" +
           name + "\", \"cat\": \"" + cat + "\"";
    if (!args_json.empty()) out += ", \"args\": {" + args_json + "}";
    out += "},\n";
  }

  void instant(std::int64_t tid, common::Seconds t, const std::string& name,
               const char* cat) {
    out += "{\"ph\": \"i\", \"pid\": " + std::to_string(run) +
           ", \"tid\": " + num(tid) + ", \"ts\": " + num(micros(t)) +
           ", \"name\": \"" + name + "\", \"cat\": \"" + cat +
           "\", \"s\": \"t\"},\n";
  }

  void flow(const char* ph, std::int64_t tid, common::Seconds t,
            const std::string& id, const char* cat) {
    out += "{\"ph\": \"" + std::string(ph) +
           "\", \"pid\": " + std::to_string(run) + ", \"tid\": " + num(tid) +
           ", \"ts\": " + num(micros(t)) + ", \"name\": \"transfer\"" +
           ", \"cat\": \"" + cat + "\", \"id\": \"" + id + "\"";
    if (ph[0] == 'f') out += ", \"bp\": \"e\"";
    out += "},\n";
  }
};

struct OpenAttempt {
  std::uint32_t task = 0;
  common::Seconds start = 0.0;
  std::uint32_t src = 0;
  bool dup = false;
  bool open = true;
};

std::string src_str(std::uint32_t src) {
  return src == kOrigin ? "-1" : std::to_string(src);
}

void export_run(std::string& out, std::uint64_t run,
                const std::vector<TraceRecord>& records) {
  EventWriter w{out, run};

  // Node count from the job-start record (fall back to the max node id
  // touched, scanned up front so metadata can lead the run's events).
  std::uint32_t node_count = 0;
  common::Seconds end_t = 0.0;
  for (const TraceRecord& r : records) {
    if (r.type == EventType::kJobStart) {
      node_count = std::max(node_count, r.node);
    } else if (r.node != kOrigin && r.node + 1 > node_count &&
               r.type != EventType::kJobEnd) {
      node_count = r.node + 1;
    }
    if (r.t > end_t) end_t = r.t;
  }
  const std::int64_t control = node_count;

  w.meta(0, "process_name", "run " + std::to_string(run));
  for (std::uint32_t n = 0; n < node_count; ++n) {
    w.meta(n, "thread_name", "node " + std::to_string(n));
  }
  w.meta(control, "thread_name", "control");

  // Per-node open state: attempts (stacked per node) and down spans.
  std::vector<std::vector<OpenAttempt>> open_attempts(node_count);
  std::vector<common::Seconds> down_since(node_count, -1.0);

  const auto close_attempt = [&](const TraceRecord& r, const char* outcome) {
    if (r.node >= node_count) return;
    std::vector<OpenAttempt>& stack = open_attempts[r.node];
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      if (it->open && it->task == r.task) {
        std::string args = "\"task\": " + std::to_string(it->task) +
                           ", \"src\": " + src_str(it->src) +
                           ", \"dup\": " + (it->dup ? "1" : "0") +
                           ", \"outcome\": \"" + outcome + "\"";
        if (r.type == EventType::kAttemptKill) {
          args += ", \"reason\": \"" + std::string(to_string(r.reason)) +
                  "\"";
        }
        w.slice(r.node, it->start, r.t,
                "task " + std::to_string(it->task), "attempt", args);
        it->open = false;
        return;
      }
    }
  };

  for (const TraceRecord& r : records) {
    switch (r.type) {
      case EventType::kAttemptStart: {
        if (r.node >= node_count) break;
        OpenAttempt a;
        a.task = r.task;
        a.start = r.t;
        a.src = r.peer;
        a.dup = r.aux != 0;
        open_attempts[r.node].push_back(a);
        break;
      }
      case EventType::kAttemptFinish:
        close_attempt(r, "finished");
        break;
      case EventType::kAttemptKill:
        close_attempt(r, "killed");
        break;
      case EventType::kNodeDown:
        if (r.node < node_count) down_since[r.node] = r.t;
        break;
      case EventType::kNodeUp:
        if (r.node < node_count && down_since[r.node] >= 0.0) {
          w.slice(r.node, down_since[r.node], r.t, "down", "node", "");
          down_since[r.node] = -1.0;
        }
        break;
      case EventType::kNodeDead:
        w.instant(r.node < node_count ? r.node : control, r.t,
                  "declared dead", "churn");
        break;
      case EventType::kRereplicationStart:
      case EventType::kMigrationStart: {
        const bool repair = r.type == EventType::kRereplicationStart;
        const char* cat = repair ? "rereplication" : "migration";
        const std::string name =
            std::string(repair ? "rerepl b" : "migrate b") +
            std::to_string(r.task);
        const std::string id =
            std::to_string(run) + "." + std::to_string(r.ticket);
        const std::int64_t src_tid =
            (r.peer == kOrigin || r.peer >= node_count) ? control : r.peer;
        // Arrow from the serving source to the destination grant window.
        w.instant(src_tid, r.v0, "serve b" + std::to_string(r.task), cat);
        w.flow("s", src_tid, r.v0, id, cat);
        w.slice(r.node < node_count ? r.node : control, r.v0, r.v1, name,
                cat,
                "\"block\": " + std::to_string(r.task) +
                    ", \"src\": " + src_str(r.peer) +
                    ", \"attempt\": " + std::to_string(r.aux));
        w.flow("f", r.node < node_count ? r.node : control, r.v1, id, cat);
        break;
      }
      case EventType::kRereplicationDone:
        w.instant(r.node < node_count ? r.node : control, r.t,
                  "landed b" + std::to_string(r.task), "rereplication");
        break;
      case EventType::kRereplicationGiveup:
        w.instant(control, r.t, "giveup b" + std::to_string(r.task),
                  "rereplication");
        break;
      case EventType::kMigrationCommit:
        w.instant(r.node < node_count ? r.node : control, r.t,
                  "committed b" + std::to_string(r.task), "migration");
        break;
      case EventType::kReplicaLost:
        w.instant(control, r.t, "lost b" + std::to_string(r.task), "churn");
        break;
      case EventType::kSafeModeEnter:
        w.instant(control, r.t, "safe mode enter", "churn");
        break;
      case EventType::kSafeModeExit:
        w.instant(control, r.t, "safe mode exit", "churn");
        break;
      case EventType::kPartitionStart:
        w.instant(control, r.t, "partition start", "gray");
        break;
      case EventType::kPartitionHeal:
        w.instant(control, r.t, "partition heal", "gray");
        break;
      default:
        break;
    }
  }

  // Close anything still open at the end of the run so every span
  // renders (an unclosed slice is dropped by the viewer).
  for (std::uint32_t n = 0; n < node_count; ++n) {
    for (const OpenAttempt& a : open_attempts[n]) {
      if (!a.open) continue;
      w.slice(n, a.start, end_t, "task " + std::to_string(a.task),
              "attempt",
              "\"task\": " + std::to_string(a.task) +
                  ", \"src\": " + src_str(a.src) +
                  ", \"dup\": " + (a.dup ? "1" : "0") +
                  ", \"outcome\": \"open\"");
    }
    if (down_since[n] >= 0.0) {
      w.slice(n, down_since[n], end_t, "down", "node", "");
    }
  }
}

void write_text(const std::string& path, const std::string& text) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    throw std::runtime_error("perfetto: cannot open " + path);
  }
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), file);
  const int close_rc = std::fclose(file);
  if (written != text.size() || close_rc != 0) {
    throw std::runtime_error("perfetto: short write to " + path);
  }
}

}  // namespace

std::string perfetto_json(const std::vector<RunObservations>& runs) {
  std::string out = "{\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
  for (std::size_t run = 0; run < runs.size(); ++run) {
    export_run(out, run, runs[run].records);
  }
  // Strip the trailing ",\n" left by the last event (JSON forbids it).
  if (out.size() >= 2 && out[out.size() - 2] == ',') {
    out.erase(out.size() - 2, 1);
  }
  out += "]}\n";
  return out;
}

void write_perfetto_json(const std::string& path,
                         const std::vector<RunObservations>& runs) {
  write_text(path, perfetto_json(runs));
}

}  // namespace adapt::obs
