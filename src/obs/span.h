// Nested span profiler: where the event tracer answers "what happened",
// spans answer "where did the time go" — placement build, hash-table
// construction, heartbeat sweeps, re-replication batches, the reduce
// phase — as a begin/end nesting recorded in both simulated time and
// host (wall-clock) time.
//
// The disabled path matches EventTracer: instrumented code holds a
// `SpanProfiler*` that is null when profiling is off, so every site is a
// single predictable branch. Spans are explicit begin/end pairs rather
// than RAII guards because the simulated clock lives in the event queue;
// a destructor has no way to read "sim now".
//
// Determinism contract: simulated-time fields are a pure function of the
// event stream, so the span JSONL export is byte-identical across
// `--threads` values. Host-time fields are measured with
// std::chrono::steady_clock and are inherently nondeterministic; they
// are always recorded but only serialized when the caller opts in
// (`include_host`), keeping the default export byte-comparable in CI.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"

namespace adapt::obs {

// One closed span. `self_*` durations subtract the time spent in child
// spans, so a per-phase table can sum self-times without double counting.
struct SpanRecord {
  std::string name;
  std::uint32_t depth = 0;          // 0 = top-level
  common::Seconds start = 0.0;      // sim time at begin()
  common::Seconds dur_sim = 0.0;    // sim time between begin() and end()
  common::Seconds self_sim = 0.0;   // dur_sim minus child span durations
  std::uint64_t dur_host_ns = 0;    // host time between begin() and end()
  std::uint64_t self_host_ns = 0;   // dur_host_ns minus child durations
};

class SpanProfiler {
 public:
  // Open a span. `name` must outlive the call (string literals at the
  // instrumentation sites). Spans must be strictly nested.
  void begin(const char* name, common::Seconds sim_now);

  // Close the innermost open span. Throws std::logic_error if no span
  // is open (an unbalanced instrumentation site is a bug, not data).
  void end(common::Seconds sim_now);

  std::size_t open_depth() const { return open_.size(); }

  // Closed spans in close order (children before their parent), leaving
  // the profiler empty. Throws std::logic_error if spans are still open.
  std::vector<SpanRecord> take_records();

 private:
  struct OpenSpan {
    const char* name;
    common::Seconds start_sim;
    std::uint64_t start_host_ns;
    common::Seconds child_sim = 0.0;  // accumulated child durations
    std::uint64_t child_host_ns = 0;
  };

  std::vector<OpenSpan> open_;
  std::vector<SpanRecord> records_;
};

}  // namespace adapt::obs
