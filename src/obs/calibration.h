// Prediction calibration: was the Performance Predictor right, and when
// did it stop being right?
//
// The tracker pairs each retired map task's realized completion time
// with the E[T_i] the predictor quoted for the winning node *at
// placement time* (the caller pins those quotes with set_predictions
// before the run starts), maintains per-node and cluster-wide
// calibration ratios (realized / predicted), and runs a one-sided
// CUSUM drift detector over the λ̂/μ̂ estimator outputs against the
// ground-truth injector parameters.
//
// CUSUM scoring: per node, x = pos(log((μ̂+ε)/(μ+ε))) +
// pos(log((λ̂+ε)/(λ+ε))), g = max(0, g + x − slack), alarm once when
// g > threshold. Only over-estimation accumulates — a node looking
// *worse* than its ground truth is the drift direction that matters
// (the estimator's censored-outage floor makes μ̂ of a permanently
// departed node grow without bound, which is exactly the signal);
// under-estimation early in a run (λ̂ ≈ 0 before the first observed
// interruption) must not fire. A warmup window suppresses accumulation
// entirely while the estimators are still cold.
//
// Detection latency is measurable: an alarm raised at time t for a node
// whose ground truth changed at time c reports latency t − c; alarms
// with no preceding truth change report −1 (a false positive).
//
// The tracker takes plain double vectors, not estimator types, so
// adapt_obs stays independent of adapt_availability.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "obs/quantile_sketch.h"

namespace adapt::obs {

struct CalibrationOptions {
  bool enabled = false;
  std::size_t sketch_capacity = QuantileSketch::kDefaultCapacity;
  bool per_node = false;            // keep per-node realized-time sketches
  std::size_t per_node_capacity = 64;
  double cusum_threshold = 5.0;     // alarm when g exceeds this
  double cusum_slack = 0.5;         // per-step drift allowance
  common::Seconds warmup = 60.0;    // no accumulation before this sim time
  double eps = 1e-6;                // log-ratio regularizer
};

// A drift alarm: node's CUSUM score crossed the threshold at sim time t.
struct DriftAlarm {
  std::uint32_t node = 0;
  common::Seconds t = 0.0;
  double score = 0.0;     // g at the moment of the alarm
  double latency = -1.0;  // t − truth_changed_at, or −1 (false positive)
};

// Per-node calibration state exported for reports and examples.
struct NodeCalibration {
  std::uint32_t node = 0;
  double predicted = 0.0;  // E[T] quoted at placement time
  QuantileSketch realized; // realized completion times on this node
};

// What one instrumented run hands back: cluster-wide sketches, pairing
// totals, per-node state (when enabled) and the drift alarms raised.
struct CalibrationSnapshot {
  QuantileSketch realized;  // realized completion times, all nodes
  QuantileSketch error;     // realized / predicted ratios
  std::uint64_t pairs = 0;
  double predicted_sum = 0.0;
  double realized_sum = 0.0;
  std::vector<NodeCalibration> nodes;  // empty unless per_node
  std::vector<DriftAlarm> alarms;

  double ratio() const {
    return predicted_sum > 0.0 ? realized_sum / predicted_sum : 0.0;
  }
  bool empty() const { return pairs == 0 && alarms.empty(); }

  // Fixed-key-order JSON object:
  // {"pairs": N, "predicted_sum": ..., "realized_sum": ..., "ratio": ...,
  //  "realized": <sketch>, "error": <sketch>, "alarms": [...]}
  void append_json(std::string& out) const;
};

class CalibrationTracker {
 public:
  explicit CalibrationTracker(const CalibrationOptions& options);

  // Pin the per-node E[T] quotes the placement policy saw. Must be
  // called before completions are recorded; tasks finishing on a node
  // with no quote (or a non-positive or non-finite one — Eq. 5 quotes
  // +inf for unstable nodes) still feed the realized sketches but not
  // the error sketch or ratio sums.
  void set_predictions(std::vector<double> expected_task_time);

  // Pair a retired task's realized completion time with the winning
  // node's placement-time quote.
  void record_completion(std::uint32_t node, common::Seconds realized);

  // One CUSUM step over the estimator outputs. All vectors are indexed
  // by node; `truth_changed_at[i]` is the sim time node i's ground truth
  // changed (its permanent departure), or −1 if it never did. Returns
  // the alarms newly raised this step (each node alarms at most once).
  std::vector<DriftAlarm> cusum_step(
      common::Seconds now, const std::vector<double>& lambda_hat,
      const std::vector<double>& mu_hat,
      const std::vector<double>& lambda_truth,
      const std::vector<double>& mu_truth,
      const std::vector<common::Seconds>& truth_changed_at);

  // Cluster-wide realized/predicted ratio so far (0 until the first
  // pairing with a positive quote) — sampled as a time-series gauge.
  double cluster_ratio() const {
    return predicted_sum_ > 0.0 ? realized_sum_ / predicted_sum_ : 0.0;
  }
  std::uint64_t pairs() const { return pairs_; }
  const std::vector<DriftAlarm>& alarms() const { return alarms_; }
  const CalibrationOptions& options() const { return options_; }

  // Drain the tracker into a snapshot, leaving it reset.
  CalibrationSnapshot take_snapshot();

 private:
  CalibrationOptions options_;
  std::vector<double> predictions_;
  QuantileSketch realized_;
  QuantileSketch error_;
  std::uint64_t pairs_ = 0;
  double predicted_sum_ = 0.0;
  double realized_sum_ = 0.0;
  std::vector<QuantileSketch> node_realized_;  // per_node only
  std::vector<double> cusum_g_;
  std::vector<bool> alarmed_;
  std::vector<DriftAlarm> alarms_;
};

}  // namespace adapt::obs
