#include "obs/calibration.h"

#include <algorithm>
#include <cmath>

#include "common/jsonfmt.h"

namespace adapt::obs {

void CalibrationSnapshot::append_json(std::string& out) const {
  using common::json_number;
  out += "{\"pairs\": " + std::to_string(pairs) +
         ", \"predicted_sum\": " + json_number(predicted_sum) +
         ", \"realized_sum\": " + json_number(realized_sum) +
         ", \"ratio\": " + json_number(ratio()) + ", \"realized\": ";
  realized.append_json(out);
  out += ", \"error\": ";
  error.append_json(out);
  out += ", \"alarms\": [";
  for (std::size_t i = 0; i < alarms.size(); ++i) {
    if (i != 0) out += ", ";
    const DriftAlarm& a = alarms[i];
    out += "{\"node\": " + std::to_string(a.node) +
           ", \"t\": " + json_number(a.t) +
           ", \"score\": " + json_number(a.score) +
           ", \"latency\": " + json_number(a.latency) + "}";
  }
  out += "]}";
}

CalibrationTracker::CalibrationTracker(const CalibrationOptions& options)
    : options_(options),
      realized_(options.sketch_capacity),
      error_(options.sketch_capacity) {}

void CalibrationTracker::set_predictions(
    std::vector<double> expected_task_time) {
  predictions_ = std::move(expected_task_time);
}

void CalibrationTracker::record_completion(std::uint32_t node,
                                           common::Seconds realized) {
  realized_.observe(realized);
  if (options_.per_node) {
    while (node_realized_.size() <= node) {
      node_realized_.emplace_back(options_.per_node_capacity);
    }
    node_realized_[node].observe(realized);
  }
  const double predicted =
      node < predictions_.size() ? predictions_[node] : 0.0;
  // Eq. 5 quotes +inf for unstable nodes (lambda * mu >= 1): a valid
  // "never finishes" prediction for placement, but pairing it would
  // poison the ratio sums, so such completions only feed the sketches.
  if (predicted > 0.0 && std::isfinite(predicted)) {
    ++pairs_;
    predicted_sum_ += predicted;
    realized_sum_ += realized;
    error_.observe(realized / predicted);
  }
}

std::vector<DriftAlarm> CalibrationTracker::cusum_step(
    common::Seconds now, const std::vector<double>& lambda_hat,
    const std::vector<double>& mu_hat,
    const std::vector<double>& lambda_truth,
    const std::vector<double>& mu_truth,
    const std::vector<common::Seconds>& truth_changed_at) {
  std::vector<DriftAlarm> raised;
  const std::size_t n =
      std::min({lambda_hat.size(), mu_hat.size(), lambda_truth.size(),
                mu_truth.size(), truth_changed_at.size()});
  if (cusum_g_.size() < n) {
    cusum_g_.resize(n, 0.0);
    alarmed_.resize(n, false);
  }
  if (now < options_.warmup) return raised;

  const double eps = options_.eps;
  for (std::size_t i = 0; i < n; ++i) {
    if (alarmed_[i]) continue;
    const double x_mu =
        std::max(0.0, std::log((mu_hat[i] + eps) / (mu_truth[i] + eps)));
    const double x_lambda = std::max(
        0.0, std::log((lambda_hat[i] + eps) / (lambda_truth[i] + eps)));
    double& g = cusum_g_[i];
    g = std::max(0.0, g + x_mu + x_lambda - options_.cusum_slack);
    if (g > options_.cusum_threshold) {
      alarmed_[i] = true;
      DriftAlarm a;
      a.node = static_cast<std::uint32_t>(i);
      a.t = now;
      a.score = g;
      const common::Seconds changed = truth_changed_at[i];
      a.latency = (changed >= 0.0 && now >= changed) ? now - changed : -1.0;
      alarms_.push_back(a);
      raised.push_back(a);
    }
  }
  return raised;
}

CalibrationSnapshot CalibrationTracker::take_snapshot() {
  CalibrationSnapshot snap;
  snap.realized = std::move(realized_);
  snap.error = std::move(error_);
  snap.pairs = pairs_;
  snap.predicted_sum = predicted_sum_;
  snap.realized_sum = realized_sum_;
  for (std::size_t i = 0; i < node_realized_.size(); ++i) {
    if (node_realized_[i].empty()) continue;
    NodeCalibration nc;
    nc.node = static_cast<std::uint32_t>(i);
    nc.predicted = i < predictions_.size() ? predictions_[i] : 0.0;
    nc.realized = std::move(node_realized_[i]);
    snap.nodes.push_back(std::move(nc));
  }
  snap.alarms = std::move(alarms_);

  realized_ = QuantileSketch(options_.sketch_capacity);
  error_ = QuantileSketch(options_.sketch_capacity);
  pairs_ = 0;
  predicted_sum_ = 0.0;
  realized_sum_ = 0.0;
  node_realized_.clear();
  cusum_g_.clear();
  alarmed_.clear();
  alarms_.clear();
  return snap;
}

}  // namespace adapt::obs
