#include "obs/span.h"

#include <chrono>
#include <stdexcept>

namespace adapt::obs {

namespace {

std::uint64_t host_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

void SpanProfiler::begin(const char* name, common::Seconds sim_now) {
  open_.push_back(OpenSpan{name, sim_now, host_now_ns()});
}

void SpanProfiler::end(common::Seconds sim_now) {
  if (open_.empty()) {
    throw std::logic_error("span profiler: end() without a matching begin()");
  }
  const OpenSpan top = open_.back();
  open_.pop_back();

  SpanRecord r;
  r.name = top.name;
  r.depth = static_cast<std::uint32_t>(open_.size());
  r.start = top.start_sim;
  r.dur_sim = sim_now - top.start_sim;
  r.self_sim = r.dur_sim - top.child_sim;
  const std::uint64_t host_end = host_now_ns();
  r.dur_host_ns = host_end - top.start_host_ns;
  r.self_host_ns = r.dur_host_ns - top.child_host_ns;

  if (!open_.empty()) {
    open_.back().child_sim += r.dur_sim;
    open_.back().child_host_ns += r.dur_host_ns;
  }
  records_.push_back(std::move(r));
}

std::vector<SpanRecord> SpanProfiler::take_records() {
  if (!open_.empty()) {
    throw std::logic_error("span profiler: take_records() with open spans");
  }
  std::vector<SpanRecord> out;
  out.swap(records_);
  return out;
}

}  // namespace adapt::obs
