#include "obs/replay.h"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <map>
#include <stdexcept>
#include <utility>

namespace adapt::obs {

namespace {

constexpr std::uint32_t kOrigin = std::numeric_limits<std::uint32_t>::max();

template <typename T>
void grow_to(std::vector<T>& v, std::size_t index) {
  if (v.size() <= index) v.resize(index + 1);
}

struct NodeState {
  bool down = false;
  common::Seconds down_since = 0.0;
  common::Seconds recovery_open = -1.0;
  std::uint32_t slots = 1;
  std::uint32_t undone_home = 0;
  std::uint32_t running = 0;        // attempts currently holding a slot
  common::Seconds busy_from = 0.0;
};

}  // namespace

ReplaySummary replay(const std::vector<TraceRecord>& records) {
  ReplaySummary out;
  out.event_counts.assign(kEventTypeCount, 0);

  std::vector<NodeState> nodes;
  std::vector<std::vector<std::uint32_t>> task_homes;
  std::vector<bool> task_done;
  // Spec flag of the most recent attempt_start per (task, node), so a
  // finish can be attributed to a speculative copy without attempt ids.
  std::map<std::pair<std::uint32_t, std::uint32_t>, bool> attempt_spec;

  const auto close_recovery = [&](NodeState& ns, common::Seconds now) {
    if (ns.recovery_open >= 0.0) {
      out.recovery_node_seconds +=
          std::max(0.0, now - ns.recovery_open) * ns.slots;
      ns.recovery_open = -1.0;
    }
  };

  for (const TraceRecord& r : records) {
    ++out.event_counts[static_cast<std::size_t>(r.type)];
    switch (r.type) {
      case EventType::kPlacement: {
        grow_to(nodes, r.node);
        grow_to(task_homes, r.task);
        grow_to(task_done, r.task);
        task_homes[r.task].push_back(r.node);
        ++nodes[r.node].undone_home;
        break;
      }
      case EventType::kJobStart:
        grow_to(nodes, r.node > 0 ? r.node - 1 : 0);
        out.task_count = std::max<std::uint64_t>(out.task_count, r.task);
        break;
      case EventType::kNodeDown: {
        grow_to(nodes, r.node);
        NodeState& ns = nodes[r.node];
        ns.down = true;
        ns.down_since = r.t;
        ns.slots = r.aux > 0 ? r.aux : 1;
        if (ns.undone_home > 0) ns.recovery_open = r.t;
        grow_to(out.nodes, r.node);
        ++out.nodes[r.node].transitions;
        break;
      }
      case EventType::kNodeUp: {
        grow_to(nodes, r.node);
        NodeState& ns = nodes[r.node];
        close_recovery(ns, r.t);
        if (ns.down) {
          grow_to(out.nodes, r.node);
          out.nodes[r.node].downtime += r.t - ns.down_since;
          ns.down = false;
        }
        grow_to(out.nodes, r.node);
        ++out.nodes[r.node].transitions;
        break;
      }
      case EventType::kAttemptStart: {
        grow_to(nodes, r.node);
        NodeState& ns = nodes[r.node];
        if (ns.running++ == 0) ns.busy_from = r.t;
        grow_to(out.nodes, r.node);
        ++out.nodes[r.node].attempts;
        if (r.aux != 0) ++out.duplicate_launches;
        attempt_spec[{r.task, r.node}] = r.aux != 0;
        break;
      }
      case EventType::kAttemptFinish: {
        grow_to(nodes, r.node);
        NodeState& ns = nodes[r.node];
        if (ns.running > 0 && --ns.running == 0) {
          grow_to(out.nodes, r.node);
          out.nodes[r.node].busy += r.t - ns.busy_from;
        }
        const auto spec = attempt_spec.find({r.task, r.node});
        if (spec != attempt_spec.end() && spec->second) {
          ++out.duplicate_wins;
        }
        grow_to(task_done, r.task);
        grow_to(task_homes, r.task);
        if (!task_done[r.task]) {
          task_done[r.task] = true;
          for (const std::uint32_t home : task_homes[r.task]) {
            NodeState& hs = nodes[home];
            if (--hs.undone_home == 0) close_recovery(hs, r.t);
          }
        }
        break;
      }
      case EventType::kAttemptKill: {
        grow_to(nodes, r.node);
        NodeState& ns = nodes[r.node];
        if (ns.running > 0 && --ns.running == 0) {
          grow_to(out.nodes, r.node);
          out.nodes[r.node].busy += r.t - ns.busy_from;
        }
        if (r.reason == TraceReason::kRedundant) ++out.redundant_cancels;
        break;
      }
      case EventType::kJobEnd: {
        out.elapsed = r.t;
        for (std::size_t i = 0; i < nodes.size(); ++i) {
          NodeState& ns = nodes[i];
          close_recovery(ns, r.t);
          grow_to(out.nodes, i);
          if (ns.down) {
            out.nodes[i].downtime += r.t - ns.down_since;
            ns.down = false;
          }
          if (ns.running > 0) {
            out.nodes[i].busy += r.t - ns.busy_from;
            ns.running = 0;
          }
        }
        break;
      }
      case EventType::kNodeDead:
        ++out.nodes_dead;
        break;
      case EventType::kReplicaLost:
        ++out.replicas_lost;
        break;
      case EventType::kRereplicationDone:
        ++out.rereplications;
        out.rereplication_bytes += r.v0;
        break;
      case EventType::kRereplicationRetry:
        ++out.rereplication_retries;
        break;
      case EventType::kRereplicationGiveup:
        ++out.rereplication_giveups;
        break;
      case EventType::kPredictorDrift:
        ++out.drift_alarms;
        if (r.v1 >= 0.0) {
          out.drift_latency_sum += r.v1;
          ++out.drift_latency_count;
        }
        break;
      case EventType::kRebalanceTrigger:
        ++out.rebalance_triggers;
        break;
      case EventType::kMigrationCommit:
        ++out.migrations_committed;
        out.migration_bytes += r.v0;
        break;
      case EventType::kMigrationRetry:
        ++out.migration_retries;
        break;
      case EventType::kMigrationGiveup:
        ++out.migration_giveups;
        break;
      case EventType::kPartitionStart:
        ++out.partitions_started;
        break;
      case EventType::kPartitionHeal:
        ++out.partitions_healed;
        break;
      case EventType::kStragglerStart:
        ++out.stragglers_started;
        break;
      case EventType::kReplicaCorrupt:
        ++out.replicas_corrupted;
        break;
      case EventType::kCorruptRead:
        ++out.corrupt_reads;
        if (r.aux == 2) ++out.corrupt_reads_scan;
        break;
      case EventType::kSafeModeEnter:
        ++out.safe_mode_entries;
        break;
      case EventType::kSafeModeExit:
        ++out.safe_mode_exits;
        if (r.aux != 0) ++out.safe_mode_healed;
        out.safe_mode_writeoffs += r.task;
        break;
      case EventType::kNodeRevived:
        ++out.false_dead_declarations;
        out.revived_replicas_restored += r.task;
        out.revived_replicas_trimmed += r.aux;
        break;
      case EventType::kRedundantWaste:
        out.redundant_waste_bytes += r.v0;
        break;
      default:
        break;
    }
  }

  out.node_count = std::max(nodes.size(), out.nodes.size());
  out.nodes.resize(out.node_count);
  if (out.task_count == 0) out.task_count = task_homes.size();
  for (const NodeTotals& n : out.nodes) {
    out.total_downtime += n.downtime;
    out.total_busy += n.busy;
  }
  return out;
}

// ---------------------------------------------------------------------
// JSONL parsing (the subset to_jsonl emits: one flat object per line,
// string values without escapes, integer and %.17g number values).
// ---------------------------------------------------------------------

namespace {

struct LineFields {
  // Parallel key/value lists in line order.
  std::vector<std::pair<std::string, std::string>> fields;

  const std::string* find(const char* key) const {
    for (const auto& [k, v] : fields) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

LineFields parse_line(const std::string& line, std::size_t line_no) {
  LineFields out;
  std::size_t i = 0;
  const auto fail = [line_no](const std::string& what) -> void {
    throw std::runtime_error("trace parse error on line " +
                             std::to_string(line_no) + ": " + what);
  };
  const auto skip_ws = [&] {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  };
  skip_ws();
  if (i >= line.size() || line[i] != '{') fail("expected '{'");
  ++i;
  while (true) {
    skip_ws();
    if (i < line.size() && line[i] == '}') break;
    if (i >= line.size() || line[i] != '"') fail("expected key");
    const std::size_t key_end = line.find('"', i + 1);
    if (key_end == std::string::npos) fail("unterminated key");
    std::string key = line.substr(i + 1, key_end - i - 1);
    i = key_end + 1;
    skip_ws();
    if (i >= line.size() || line[i] != ':') fail("expected ':'");
    ++i;
    skip_ws();
    std::string value;
    if (i < line.size() && line[i] == '"') {
      const std::size_t val_end = line.find('"', i + 1);
      if (val_end == std::string::npos) fail("unterminated value");
      value = line.substr(i + 1, val_end - i - 1);
      i = val_end + 1;
    } else {
      const std::size_t start = i;
      while (i < line.size() && line[i] != ',' && line[i] != '}') ++i;
      value = line.substr(start, i - start);
      while (!value.empty() && value.back() == ' ') value.pop_back();
      if (value.empty()) fail("empty value");
    }
    out.fields.emplace_back(std::move(key), std::move(value));
    skip_ws();
    if (i < line.size() && line[i] == ',') {
      ++i;
      continue;
    }
    if (i < line.size() && line[i] == '}') break;
    fail("expected ',' or '}'");
  }
  return out;
}

double as_double(const std::string& s) { return std::strtod(s.c_str(), nullptr); }

std::uint64_t as_u64(const std::string& s) {
  return std::strtoull(s.c_str(), nullptr, 10);
}

// src fields serialize the origin endpoint as -1.
std::uint32_t as_endpoint(const std::string& s) {
  if (!s.empty() && s[0] == '-') return kOrigin;
  return static_cast<std::uint32_t>(as_u64(s));
}

EventType event_from_name(const std::string& name, std::size_t line_no) {
  for (std::size_t i = 0; i < kEventTypeCount; ++i) {
    const auto type = static_cast<EventType>(i);
    if (name == to_string(type)) return type;
  }
  throw std::runtime_error("trace parse error on line " +
                           std::to_string(line_no) +
                           ": unknown event '" + name + "'");
}

TraceReason reason_from_name(const std::string& name) {
  for (const auto reason :
       {TraceReason::kNone, TraceReason::kNodeDown,
        TraceReason::kSourceTimeout, TraceReason::kRedundant,
        TraceReason::kChecksum}) {
    if (name == to_string(reason)) return reason;
  }
  return TraceReason::kNone;
}

}  // namespace

std::vector<RunObservations> parse_jsonl(const std::string& text) {
  std::vector<RunObservations> runs;
  std::size_t pos = 0;
  std::size_t line_no = 0;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(pos, end - pos);
    pos = end + 1;
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;

    const LineFields fields = parse_line(line, line_no);
    const std::string* run_str = fields.find("run");
    const std::string* ev = fields.find("ev");
    if (run_str == nullptr || ev == nullptr) {
      throw std::runtime_error("trace parse error on line " +
                               std::to_string(line_no) +
                               ": missing run/ev");
    }
    const auto run = static_cast<std::size_t>(as_u64(*run_str));
    if (runs.size() <= run) runs.resize(run + 1);
    if (*ev == "dropped") {
      if (const std::string* count = fields.find("count")) {
        runs[run].dropped = as_u64(*count);
      }
      continue;
    }

    TraceRecord r;
    r.type = event_from_name(*ev, line_no);
    const auto get = [&fields](const char* key) -> const std::string* {
      return fields.find(key);
    };
    if (const auto* v = get("t")) r.t = as_double(*v);
    if (const auto* v = get("node")) r.node = static_cast<std::uint32_t>(as_u64(*v));
    if (const auto* v = get("dst")) r.node = static_cast<std::uint32_t>(as_u64(*v));
    if (const auto* v = get("src")) r.peer = as_endpoint(*v);
    if (const auto* v = get("task")) r.task = static_cast<std::uint32_t>(as_u64(*v));
    if (const auto* v = get("block")) r.task = static_cast<std::uint32_t>(as_u64(*v));
    if (const auto* v = get("ticket")) r.ticket = as_u64(*v);
    if (const auto* v = get("reason")) r.reason = reason_from_name(*v);
    switch (r.type) {
      case EventType::kPlacement:
        if (const auto* v = get("replica")) {
          r.aux = static_cast<std::uint32_t>(as_u64(*v));
        }
        if (const auto* v = get("quote")) r.v0 = as_double(*v);
        break;
      case EventType::kJobStart:
        if (const auto* v = get("nodes")) {
          r.node = static_cast<std::uint32_t>(as_u64(*v));
        }
        if (const auto* v = get("tasks")) {
          r.task = static_cast<std::uint32_t>(as_u64(*v));
        }
        break;
      case EventType::kNodeDown:
        if (const auto* v = get("slots")) {
          r.aux = static_cast<std::uint32_t>(as_u64(*v));
        }
        break;
      case EventType::kAttemptStart:
        if (const auto* v = get("spec")) {
          r.aux = static_cast<std::uint32_t>(as_u64(*v));
        }
        break;
      case EventType::kAttemptFinish:
        if (const auto* v = get("kind")) {
          r.aux = *v == "local" ? 0u : *v == "remote" ? 1u : 2u;
        }
        break;
      case EventType::kTransferRequest:
        if (const auto* v = get("start")) r.v0 = as_double(*v);
        if (const auto* v = get("end")) r.v1 = as_double(*v);
        break;
      case EventType::kTransferResume:
        if (const auto* v = get("end")) r.v0 = as_double(*v);
        break;
      case EventType::kTransferAbort:
        if (const auto* v = get("reclaimed")) r.v0 = as_double(*v);
        break;
      case EventType::kJobEnd:
        if (const auto* v = get("tasks")) {
          r.task = static_cast<std::uint32_t>(as_u64(*v));
        }
        break;
      case EventType::kNodeDead:
        if (const auto* v = get("replicas")) {
          r.aux = static_cast<std::uint32_t>(as_u64(*v));
        }
        break;
      case EventType::kReplicaLost:
        if (const auto* v = get("recoverable")) {
          r.aux = static_cast<std::uint32_t>(as_u64(*v));
        }
        break;
      case EventType::kRereplicationStart:
        if (const auto* v = get("attempt")) {
          r.aux = static_cast<std::uint32_t>(as_u64(*v));
        }
        if (const auto* v = get("start")) r.v0 = as_double(*v);
        if (const auto* v = get("end")) r.v1 = as_double(*v);
        break;
      case EventType::kRereplicationDone:
        if (const auto* v = get("bytes")) r.v0 = as_double(*v);
        break;
      case EventType::kRereplicationRetry:
        if (const auto* v = get("attempt")) {
          r.aux = static_cast<std::uint32_t>(as_u64(*v));
        }
        if (const auto* v = get("next")) r.v0 = as_double(*v);
        break;
      case EventType::kRereplicationGiveup:
        if (const auto* v = get("attempts")) {
          r.aux = static_cast<std::uint32_t>(as_u64(*v));
        }
        break;
      case EventType::kPredictorDrift:
        if (const auto* v = get("score")) r.v0 = as_double(*v);
        if (const auto* v = get("latency")) r.v1 = as_double(*v);
        break;
      case EventType::kRebalanceTrigger:
        if (const auto* v = get("moves")) {
          r.task = static_cast<std::uint32_t>(as_u64(*v));
        }
        if (const auto* v = get("alarms")) {
          r.aux = static_cast<std::uint32_t>(as_u64(*v));
        }
        break;
      case EventType::kMigrationStart:
        if (const auto* v = get("attempt")) {
          r.aux = static_cast<std::uint32_t>(as_u64(*v));
        }
        if (const auto* v = get("start")) r.v0 = as_double(*v);
        if (const auto* v = get("end")) r.v1 = as_double(*v);
        break;
      case EventType::kMigrationCommit:
        if (const auto* v = get("bytes")) r.v0 = as_double(*v);
        break;
      case EventType::kMigrationRetry:
        if (const auto* v = get("attempt")) {
          r.aux = static_cast<std::uint32_t>(as_u64(*v));
        }
        if (const auto* v = get("next")) r.v0 = as_double(*v);
        break;
      case EventType::kMigrationGiveup:
        if (const auto* v = get("attempts")) {
          r.aux = static_cast<std::uint32_t>(as_u64(*v));
        }
        break;
      case EventType::kPartitionStart:
      case EventType::kPartitionHeal:
        if (const auto* v = get("nodes")) {
          r.aux = static_cast<std::uint32_t>(as_u64(*v));
        }
        break;
      case EventType::kStragglerStart:
        if (const auto* v = get("slow")) r.v0 = as_double(*v);
        break;
      case EventType::kCorruptRead:
        if (const auto* v = get("path")) {
          r.aux = *v == "local" ? 0u : *v == "remote" ? 1u : 2u;
        }
        break;
      case EventType::kSafeModeEnter:
        if (const auto* v = get("deferred")) {
          r.aux = static_cast<std::uint32_t>(as_u64(*v));
        }
        if (const auto* v = get("fraction")) r.v0 = as_double(*v);
        break;
      case EventType::kSafeModeExit:
        if (const auto* v = get("writeoffs")) {
          r.task = static_cast<std::uint32_t>(as_u64(*v));
        }
        if (const auto* v = get("healed")) {
          r.aux = static_cast<std::uint32_t>(as_u64(*v));
        }
        break;
      case EventType::kNodeRevived:
        if (const auto* v = get("restored")) {
          r.task = static_cast<std::uint32_t>(as_u64(*v));
        }
        if (const auto* v = get("trimmed")) {
          r.aux = static_cast<std::uint32_t>(as_u64(*v));
        }
        break;
      case EventType::kRedundantWaste:
        if (const auto* v = get("bytes")) r.v0 = as_double(*v);
        break;
      case EventType::kReplicaWriteoff:
        if (const auto* v = get("false_positive")) {
          r.aux = static_cast<std::uint32_t>(as_u64(*v));
        }
        break;
      default:
        break;
    }
    runs[run].records.push_back(r);
  }
  return runs;
}

std::vector<std::vector<SpanRecord>> parse_spans_jsonl(
    const std::string& text) {
  std::vector<std::vector<SpanRecord>> runs;
  std::size_t pos = 0;
  std::size_t line_no = 0;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(pos, end - pos);
    pos = end + 1;
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;

    const LineFields fields = parse_line(line, line_no);
    const std::string* run_str = fields.find("run");
    const std::string* name = fields.find("span");
    if (run_str == nullptr || name == nullptr) {
      throw std::runtime_error("span parse error on line " +
                               std::to_string(line_no) +
                               ": missing run/span");
    }
    const auto run = static_cast<std::size_t>(as_u64(*run_str));
    if (runs.size() <= run) runs.resize(run + 1);

    SpanRecord s;
    s.name = *name;
    if (const auto* v = fields.find("depth")) {
      s.depth = static_cast<std::uint32_t>(as_u64(*v));
    }
    if (const auto* v = fields.find("t0")) s.start = as_double(*v);
    if (const auto* v = fields.find("dur")) s.dur_sim = as_double(*v);
    if (const auto* v = fields.find("self")) s.self_sim = as_double(*v);
    if (const auto* v = fields.find("host_ns")) s.dur_host_ns = as_u64(*v);
    if (const auto* v = fields.find("host_self_ns")) {
      s.self_host_ns = as_u64(*v);
    }
    runs[run].push_back(std::move(s));
  }
  return runs;
}

std::vector<PhaseTotals> fold_spans(const std::vector<SpanRecord>& spans) {
  std::vector<PhaseTotals> out;
  for (const SpanRecord& s : spans) {
    auto it = std::find_if(
        out.begin(), out.end(),
        [&](const PhaseTotals& p) { return p.name == s.name; });
    if (it == out.end()) {
      out.push_back(PhaseTotals{s.name, 0, 0.0, 0.0});
      it = out.end() - 1;
    }
    ++it->count;
    it->dur_sim += s.dur_sim;
    it->self_sim += s.self_sim;
  }
  std::sort(out.begin(), out.end(),
            [](const PhaseTotals& a, const PhaseTotals& b) {
              return a.name < b.name;
            });
  return out;
}

}  // namespace adapt::obs
