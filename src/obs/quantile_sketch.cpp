#include "obs/quantile_sketch.h"

#include <algorithm>
#include <stdexcept>

#include "common/jsonfmt.h"

namespace adapt::obs {

QuantileSketch::QuantileSketch(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ < 4) {
    throw std::invalid_argument("quantile sketch: capacity must be >= 4");
  }
  entries_.reserve(capacity_ + 1);
}

void QuantileSketch::observe(double v) {
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;

  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), v,
      [](const Entry& e, double x) { return e.value < x; });
  if (it != entries_.end() && it->value == v) {
    ++it->weight;  // exact duplicate: coalesce instead of growing
  } else {
    entries_.insert(it, Entry{v, 1});
    if (entries_.size() > capacity_) compact();
  }
}

void QuantileSketch::merge(const QuantileSketch& other) {
  if (other.capacity_ != capacity_) {
    throw std::invalid_argument(
        "quantile sketch: merging sketches with different capacities");
  }
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;

  // Classic sorted merge, coalescing equal values; then recompress once
  // if the union outgrew the capacity.
  std::vector<Entry> merged;
  merged.reserve(entries_.size() + other.entries_.size());
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < entries_.size() || j < other.entries_.size()) {
    if (j == other.entries_.size() ||
        (i < entries_.size() &&
         entries_[i].value < other.entries_[j].value)) {
      merged.push_back(entries_[i++]);
    } else if (i == entries_.size() ||
               other.entries_[j].value < entries_[i].value) {
      merged.push_back(other.entries_[j++]);
    } else {
      merged.push_back(
          Entry{entries_[i].value,
                entries_[i].weight + other.entries_[j].weight});
      ++i;
      ++j;
    }
  }
  entries_ = std::move(merged);
  if (entries_.size() > capacity_) compact();
}

void QuantileSketch::compact() {
  const std::size_t m = capacity_ / 2;
  std::uint64_t total = 0;
  for (const Entry& e : entries_) total += e.weight;

  std::vector<Entry> out;
  out.reserve(m);
  const std::uint64_t base = total / m;
  const std::uint64_t extra = total % m;
  // Each surviving entry takes the value at its own future midrank
  // (weight already assigned + half its own), read off the same midrank
  // polyline quantile() interpolates along. Sampling anywhere else —
  // e.g. snapping to the nearest retained value, or at the idealized
  // rank (j + 0.5) * W / m that ignores where the W mod m remainder
  // weights land — leaves each value slightly below the rank it will be
  // quoted at, a bias that compounds across recompressions.
  std::size_t src = 0;
  double before = 0.0;  // cumulative weight of entries before `src`
  double prev_mid = 0.0;
  double prev_value = min_;
  std::uint64_t assigned = 0;
  for (std::size_t j = 0; j < m; ++j) {
    const std::uint64_t weight = base + (j < extra ? 1 : 0);
    const double rank = static_cast<double>(assigned) +
                        static_cast<double>(weight) / 2.0;
    assigned += weight;
    while (src < entries_.size() &&
           before + static_cast<double>(entries_[src].weight) / 2.0 < rank) {
      prev_mid = before + static_cast<double>(entries_[src].weight) / 2.0;
      prev_value = entries_[src].value;
      before += static_cast<double>(entries_[src].weight);
      ++src;
    }
    double value;
    if (src == entries_.size()) {
      const double span = static_cast<double>(total) - prev_mid;
      value = span <= 0.0
                  ? max_
                  : prev_value +
                        (rank - prev_mid) / span * (max_ - prev_value);
    } else {
      const double mid =
          before + static_cast<double>(entries_[src].weight) / 2.0;
      const double span = mid - prev_mid;
      value = span <= 0.0
                  ? entries_[src].value
                  : prev_value + (rank - prev_mid) / span *
                                     (entries_[src].value - prev_value);
    }
    if (!out.empty() && out.back().value == value) {
      out.back().weight += weight;  // keep values strictly increasing
    } else {
      out.push_back(Entry{value, weight});
    }
  }
  entries_ = std::move(out);
}

double QuantileSketch::quantile(double q) const {
  if (count_ == 0) return 0.0;
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  const double target = q * static_cast<double>(count_);

  // Midpoint convention: entry i covers cumulative weight
  // (before_i, before_i + w_i] and sits at rank before_i + w_i / 2.
  double before = 0.0;
  double prev_mid = 0.0;
  double prev_value = min_;
  for (const Entry& e : entries_) {
    const double mid = before + static_cast<double>(e.weight) / 2.0;
    if (target <= mid) {
      const double span = mid - prev_mid;
      if (span <= 0.0) return e.value;
      const double frac = (target - prev_mid) / span;
      return prev_value + frac * (e.value - prev_value);
    }
    prev_mid = mid;
    prev_value = e.value;
    before += static_cast<double>(e.weight);
  }
  // Past the last midpoint: interpolate toward the exact maximum.
  const double span = static_cast<double>(count_) - prev_mid;
  if (span <= 0.0) return max_;
  const double frac = (target - prev_mid) / span;
  return prev_value + frac * (max_ - prev_value);
}

void QuantileSketch::append_json(std::string& out) const {
  using common::json_number;
  out += "{\"count\": " + std::to_string(count_) +
         ", \"sum\": " + json_number(sum_) +
         ", \"min\": " + json_number(min()) +
         ", \"max\": " + json_number(max()) +
         ", \"p50\": " + json_number(quantile(0.50)) +
         ", \"p90\": " + json_number(quantile(0.90)) +
         ", \"p95\": " + json_number(quantile(0.95)) +
         ", \"p99\": " + json_number(quantile(0.99)) + "}";
}

}  // namespace adapt::obs
