#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/jsonfmt.h"

namespace adapt::obs {

namespace {

using common::json_escape;
using common::json_number;

template <typename Series>
std::uint32_t find_or_append(std::vector<Series>& store,
                             const std::string& name) {
  for (std::uint32_t i = 0; i < store.size(); ++i) {
    if (store[i].name == name) return i;
  }
  store.push_back({});
  store.back().name = name;
  return static_cast<std::uint32_t>(store.size() - 1);
}

void append_scalar_object(
    std::string& out,
    const std::vector<std::pair<std::string, double>>& series) {
  out += "{";
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (i > 0) out += ", ";
    out += "\"" + json_escape(series[i].first) +
           "\": " + json_number(series[i].second);
  }
  out += "}";
}

}  // namespace

MetricsRegistry::Id MetricsRegistry::counter(const std::string& name) {
  return find_or_append(counters_, name);
}

MetricsRegistry::Id MetricsRegistry::gauge(const std::string& name) {
  return find_or_append(gauges_, name);
}

MetricsRegistry::Id MetricsRegistry::histogram(const std::string& name,
                                               std::vector<double> bounds) {
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    if (!(bounds[i] > bounds[i - 1])) {
      throw std::invalid_argument(
          "metrics: histogram bounds must be strictly increasing");
    }
  }
  for (std::uint32_t i = 0; i < histograms_.size(); ++i) {
    if (histograms_[i].name == name) return i;
  }
  Histogram h;
  h.name = name;
  h.counts.assign(bounds.size() + 1, 0);
  h.bounds = std::move(bounds);
  histograms_.push_back(std::move(h));
  return static_cast<std::uint32_t>(histograms_.size() - 1);
}

MetricsRegistry::Id MetricsRegistry::sketch(const std::string& name,
                                            std::size_t capacity) {
  for (std::uint32_t i = 0; i < sketches_.size(); ++i) {
    if (sketches_[i].name == name) return i;
  }
  sketches_.push_back(NamedSketch{name, QuantileSketch(capacity)});
  return static_cast<std::uint32_t>(sketches_.size() - 1);
}

void MetricsRegistry::observe(Id id, double v) {
  Histogram& h = histograms_[id];
  const auto it = std::lower_bound(h.bounds.begin(), h.bounds.end(), v);
  ++h.counts[static_cast<std::size_t>(it - h.bounds.begin())];
  ++h.total;
  h.sum += v;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const Scalar& c : counters_) snap.counters.emplace_back(c.name, c.value);
  snap.gauges.reserve(gauges_.size());
  for (const Scalar& g : gauges_) snap.gauges.emplace_back(g.name, g.value);
  snap.histograms.reserve(histograms_.size());
  for (const Histogram& h : histograms_) {
    snap.histograms.push_back({h.name, h.bounds, h.counts, h.total, h.sum});
  }
  const auto by_name = [](const auto& a, const auto& b) {
    return a.first < b.first;
  };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(),
            [](const HistogramSnapshot& a, const HistogramSnapshot& b) {
              return a.name < b.name;
            });
  snap.sketches.reserve(sketches_.size());
  for (const NamedSketch& s : sketches_) {
    snap.sketches.push_back({s.name, s.sketch});
  }
  std::sort(snap.sketches.begin(), snap.sketches.end(),
            [](const SketchSnapshot& a, const SketchSnapshot& b) {
              return a.name < b.name;
            });
  return snap;
}

void MetricsRegistry::sample(common::Seconds t) {
  RawSample row;
  row.t = t;
  row.counter_values.reserve(counters_.size());
  for (const Scalar& c : counters_) row.counter_values.push_back(c.value);
  row.gauge_values.reserve(gauges_.size());
  for (const Scalar& g : gauges_) row.gauge_values.push_back(g.value);
  samples_.push_back(std::move(row));
}

TimeSeriesSnapshot MetricsRegistry::take_timeseries() {
  TimeSeriesSnapshot ts;
  if (samples_.empty()) return ts;
  ts.times.reserve(samples_.size());
  for (const RawSample& row : samples_) ts.times.push_back(row.t);

  // One column per scalar series; rows taken before a series was
  // registered pad with 0.
  const auto column = [&](std::size_t idx, bool is_counter) {
    std::vector<double> col;
    col.reserve(samples_.size());
    for (const RawSample& row : samples_) {
      const std::vector<double>& values =
          is_counter ? row.counter_values : row.gauge_values;
      col.push_back(idx < values.size() ? values[idx] : 0.0);
    }
    return col;
  };
  ts.series.reserve(counters_.size() + gauges_.size());
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    ts.series.emplace_back(counters_[i].name, column(i, true));
  }
  for (std::size_t i = 0; i < gauges_.size(); ++i) {
    ts.series.emplace_back(gauges_[i].name, column(i, false));
  }
  std::sort(ts.series.begin(), ts.series.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  samples_.clear();
  return ts;
}

std::vector<double> MetricsRegistry::exponential_bounds(double start,
                                                        double factor,
                                                        std::size_t count) {
  if (start <= 0 || factor <= 1.0) {
    throw std::invalid_argument("metrics: need start > 0, factor > 1");
  }
  std::vector<double> bounds;
  bounds.reserve(count);
  double b = start;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

std::vector<double> MetricsRegistry::log_bounds(double lo, double hi,
                                                std::size_t count) {
  if (!(lo > 0.0) || !(hi > lo) || count < 2) {
    throw std::invalid_argument(
        "metrics: log bounds need 0 < lo < hi and count >= 2");
  }
  std::vector<double> bounds;
  bounds.reserve(count);
  const double ratio = hi / lo;
  for (std::size_t i = 0; i < count; ++i) {
    const double frac =
        static_cast<double>(i) / static_cast<double>(count - 1);
    bounds.push_back(i + 1 == count ? hi : lo * std::pow(ratio, frac));
  }
  return bounds;
}

namespace {

void merge_scalars(std::vector<std::pair<std::string, double>>& into,
                   const std::vector<std::pair<std::string, double>>& from,
                   bool sum) {
  // Both sides are name-sorted; classic merge keeps the result sorted.
  std::vector<std::pair<std::string, double>> merged;
  merged.reserve(into.size() + from.size());
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < into.size() || j < from.size()) {
    if (j == from.size() ||
        (i < into.size() && into[i].first < from[j].first)) {
      merged.push_back(into[i++]);
    } else if (i == into.size() || from[j].first < into[i].first) {
      merged.push_back(from[j++]);
    } else {
      merged.emplace_back(into[i].first,
                          sum ? into[i].second + from[j].second
                              : std::max(into[i].second, from[j].second));
      ++i;
      ++j;
    }
  }
  into = std::move(merged);
}

}  // namespace

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  merge_scalars(counters, other.counters, /*sum=*/true);
  merge_scalars(gauges, other.gauges, /*sum=*/false);
  for (const HistogramSnapshot& h : other.histograms) {
    auto it = std::find_if(histograms.begin(), histograms.end(),
                           [&](const HistogramSnapshot& mine) {
                             return mine.name == h.name;
                           });
    if (it == histograms.end()) {
      const auto pos = std::find_if(histograms.begin(), histograms.end(),
                                    [&](const HistogramSnapshot& mine) {
                                      return mine.name > h.name;
                                    });
      histograms.insert(pos, h);
      continue;
    }
    if (it->bounds != h.bounds) {
      throw std::invalid_argument("metrics: merging histogram '" + h.name +
                                  "' with a different bucket layout");
    }
    for (std::size_t b = 0; b < it->counts.size(); ++b) {
      it->counts[b] += h.counts[b];
    }
    it->total += h.total;
    it->sum += h.sum;
  }
  for (const SketchSnapshot& s : other.sketches) {
    auto it = std::find_if(
        sketches.begin(), sketches.end(),
        [&](const SketchSnapshot& mine) { return mine.name == s.name; });
    if (it == sketches.end()) {
      const auto pos = std::find_if(
          sketches.begin(), sketches.end(),
          [&](const SketchSnapshot& mine) { return mine.name > s.name; });
      sketches.insert(pos, s);
      continue;
    }
    it->sketch.merge(s.sketch);  // throws on capacity mismatch
  }
}

void MetricsSnapshot::append_json(std::string& out,
                                  const std::string& indent) const {
  out += "{\n" + indent + "  \"counters\": ";
  append_scalar_object(out, counters);
  out += ",\n" + indent + "  \"gauges\": ";
  append_scalar_object(out, gauges);
  out += ",\n" + indent + "  \"histograms\": [";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSnapshot& h = histograms[i];
    out += i > 0 ? ",\n" : "\n";
    out += indent + "    {\"name\": \"" + json_escape(h.name) + "\", ";
    out += "\"bounds\": [";
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      if (b > 0) out += ", ";
      out += json_number(h.bounds[b]);
    }
    out += "], \"counts\": [";
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      if (b > 0) out += ", ";
      out += std::to_string(h.counts[b]);
    }
    out += "], \"total\": " + std::to_string(h.total);
    out += ", \"sum\": " + json_number(h.sum) + "}";
  }
  out += histograms.empty() ? "]\n" : "\n" + indent + "  ]\n";
  if (!sketches.empty()) {
    // Trailing-key form so pre-sketch outputs stay byte-identical.
    out.back() = ',';
    out += "\n" + indent + "  \"sketches\": [";
    for (std::size_t i = 0; i < sketches.size(); ++i) {
      out += i > 0 ? ",\n" : "\n";
      out += indent + "    {\"name\": \"" + json_escape(sketches[i].name) +
             "\", \"summary\": ";
      sketches[i].sketch.append_json(out);
      out += "}";
    }
    out += "\n" + indent + "  ]\n";
  }
  out += indent + "}";
}

MetricsSnapshot merge_snapshots(const std::vector<MetricsSnapshot>& runs) {
  MetricsSnapshot merged;
  for (const MetricsSnapshot& run : runs) merged.merge(run);
  return merged;
}

}  // namespace adapt::obs
