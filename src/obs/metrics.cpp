#include "obs/metrics.h"

#include <algorithm>
#include <stdexcept>

#include "common/jsonfmt.h"

namespace adapt::obs {

namespace {

using common::json_escape;
using common::json_number;

template <typename Series>
std::uint32_t find_or_append(std::vector<Series>& store,
                             const std::string& name) {
  for (std::uint32_t i = 0; i < store.size(); ++i) {
    if (store[i].name == name) return i;
  }
  store.push_back({});
  store.back().name = name;
  return static_cast<std::uint32_t>(store.size() - 1);
}

void append_scalar_object(
    std::string& out,
    const std::vector<std::pair<std::string, double>>& series) {
  out += "{";
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (i > 0) out += ", ";
    out += "\"" + json_escape(series[i].first) +
           "\": " + json_number(series[i].second);
  }
  out += "}";
}

}  // namespace

MetricsRegistry::Id MetricsRegistry::counter(const std::string& name) {
  return find_or_append(counters_, name);
}

MetricsRegistry::Id MetricsRegistry::gauge(const std::string& name) {
  return find_or_append(gauges_, name);
}

MetricsRegistry::Id MetricsRegistry::histogram(const std::string& name,
                                               std::vector<double> bounds) {
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    if (!(bounds[i] > bounds[i - 1])) {
      throw std::invalid_argument(
          "metrics: histogram bounds must be strictly increasing");
    }
  }
  for (std::uint32_t i = 0; i < histograms_.size(); ++i) {
    if (histograms_[i].name == name) return i;
  }
  Histogram h;
  h.name = name;
  h.counts.assign(bounds.size() + 1, 0);
  h.bounds = std::move(bounds);
  histograms_.push_back(std::move(h));
  return static_cast<std::uint32_t>(histograms_.size() - 1);
}

void MetricsRegistry::observe(Id id, double v) {
  Histogram& h = histograms_[id];
  const auto it = std::lower_bound(h.bounds.begin(), h.bounds.end(), v);
  ++h.counts[static_cast<std::size_t>(it - h.bounds.begin())];
  ++h.total;
  h.sum += v;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const Scalar& c : counters_) snap.counters.emplace_back(c.name, c.value);
  snap.gauges.reserve(gauges_.size());
  for (const Scalar& g : gauges_) snap.gauges.emplace_back(g.name, g.value);
  snap.histograms.reserve(histograms_.size());
  for (const Histogram& h : histograms_) {
    snap.histograms.push_back({h.name, h.bounds, h.counts, h.total, h.sum});
  }
  const auto by_name = [](const auto& a, const auto& b) {
    return a.first < b.first;
  };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(),
            [](const HistogramSnapshot& a, const HistogramSnapshot& b) {
              return a.name < b.name;
            });
  return snap;
}

std::vector<double> MetricsRegistry::exponential_bounds(double start,
                                                        double factor,
                                                        std::size_t count) {
  if (start <= 0 || factor <= 1.0) {
    throw std::invalid_argument("metrics: need start > 0, factor > 1");
  }
  std::vector<double> bounds;
  bounds.reserve(count);
  double b = start;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

namespace {

void merge_scalars(std::vector<std::pair<std::string, double>>& into,
                   const std::vector<std::pair<std::string, double>>& from,
                   bool sum) {
  // Both sides are name-sorted; classic merge keeps the result sorted.
  std::vector<std::pair<std::string, double>> merged;
  merged.reserve(into.size() + from.size());
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < into.size() || j < from.size()) {
    if (j == from.size() ||
        (i < into.size() && into[i].first < from[j].first)) {
      merged.push_back(into[i++]);
    } else if (i == into.size() || from[j].first < into[i].first) {
      merged.push_back(from[j++]);
    } else {
      merged.emplace_back(into[i].first,
                          sum ? into[i].second + from[j].second
                              : std::max(into[i].second, from[j].second));
      ++i;
      ++j;
    }
  }
  into = std::move(merged);
}

}  // namespace

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  merge_scalars(counters, other.counters, /*sum=*/true);
  merge_scalars(gauges, other.gauges, /*sum=*/false);
  for (const HistogramSnapshot& h : other.histograms) {
    auto it = std::find_if(histograms.begin(), histograms.end(),
                           [&](const HistogramSnapshot& mine) {
                             return mine.name == h.name;
                           });
    if (it == histograms.end()) {
      const auto pos = std::find_if(histograms.begin(), histograms.end(),
                                    [&](const HistogramSnapshot& mine) {
                                      return mine.name > h.name;
                                    });
      histograms.insert(pos, h);
      continue;
    }
    if (it->bounds != h.bounds) {
      throw std::invalid_argument("metrics: merging histogram '" + h.name +
                                  "' with a different bucket layout");
    }
    for (std::size_t b = 0; b < it->counts.size(); ++b) {
      it->counts[b] += h.counts[b];
    }
    it->total += h.total;
    it->sum += h.sum;
  }
}

void MetricsSnapshot::append_json(std::string& out,
                                  const std::string& indent) const {
  out += "{\n" + indent + "  \"counters\": ";
  append_scalar_object(out, counters);
  out += ",\n" + indent + "  \"gauges\": ";
  append_scalar_object(out, gauges);
  out += ",\n" + indent + "  \"histograms\": [";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSnapshot& h = histograms[i];
    out += i > 0 ? ",\n" : "\n";
    out += indent + "    {\"name\": \"" + json_escape(h.name) + "\", ";
    out += "\"bounds\": [";
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      if (b > 0) out += ", ";
      out += json_number(h.bounds[b]);
    }
    out += "], \"counts\": [";
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      if (b > 0) out += ", ";
      out += std::to_string(h.counts[b]);
    }
    out += "], \"total\": " + std::to_string(h.total);
    out += ", \"sum\": " + json_number(h.sum) + "}";
  }
  out += histograms.empty() ? "]\n" : "\n" + indent + "  ]\n";
  out += indent + "}";
}

MetricsSnapshot merge_snapshots(const std::vector<MetricsSnapshot>& runs) {
  MetricsSnapshot merged;
  for (const MetricsSnapshot& run : runs) merged.merge(run);
  return merged;
}

}  // namespace adapt::obs
