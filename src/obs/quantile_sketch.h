// Streaming quantile sketch: a fixed-size, mergeable summary of a value
// distribution with deterministic compaction.
//
// Design: the sketch keeps at most `capacity` (value, weight) entries
// sorted by value. Inserts splice unit-weight entries into the sorted
// list (coalescing exact duplicates); once the list outgrows the
// capacity it is recompressed to capacity/2 equi-depth entries — entry j
// gets an integer weight of W/m (the first W mod m entries take one
// extra, conserving total weight exactly) and the midrank-interpolated
// value at the rank it will occupy after recompression, so the summary
// stays unbiased across repeated compactions. Interpolated values need
// not be observed values. Compaction is a pure function
// of the sorted retained summary: no RNG, no arrival-position
// tie-breaking, no host state. Two replays of the same stream — and any
// cross-run merge performed in run-index order — therefore produce
// byte-identical serialized sketches for any `--threads` value, the same
// contract the metrics registry and event tracer already honor.
//
// Below the compaction threshold the sketch is exact (it still holds
// every observation), which the tests lean on; past it, quantiles are
// equi-depth approximations with error that shrinks as capacity grows.
// min/max are tracked exactly and pin the q = 0 / q = 1 endpoints.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace adapt::obs {

class QuantileSketch {
 public:
  static constexpr std::size_t kDefaultCapacity = 256;

  // Throws std::invalid_argument when capacity < 4 (equi-depth
  // recompression needs at least two surviving entries).
  explicit QuantileSketch(std::size_t capacity = kDefaultCapacity);

  void observe(double v);

  // Merge another sketch of the same capacity (throws
  // std::invalid_argument otherwise — mirrors the histogram bucket
  // layout rule, so cross-run aggregation is always apples-to-apples).
  void merge(const QuantileSketch& other);

  // Weighted percentile with midpoint interpolation; q clamped to
  // [0, 1]. q = 0 returns the exact minimum, q = 1 the exact maximum.
  // Returns 0.0 on an empty sketch.
  double quantile(double q) const;

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return count_ == 0; }

  struct Entry {
    double value = 0.0;
    std::uint64_t weight = 0;
  };
  // Retained entries, sorted by value; weights sum to count(). Exposed
  // for merging and for tests.
  const std::vector<Entry>& entries() const { return entries_; }

  // Fixed-key-order JSON object appended to `out`:
  // {"count": N, "sum": ..., "min": ..., "max": ...,
  //  "p50": ..., "p90": ..., "p95": ..., "p99": ...}
  // using the shared %.17g convention (common/jsonfmt.h).
  void append_json(std::string& out) const;

 private:
  void compact();

  std::size_t capacity_;
  std::vector<Entry> entries_;  // sorted by value
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace adapt::obs
