#include "obs/trace.h"

#include <cstdio>
#include <limits>
#include <stdexcept>

#include "common/jsonfmt.h"

namespace adapt::obs {

namespace {

using common::json_number;

// Matches cluster::kOriginEndpoint without pulling in the cluster
// library; the origin is serialized as src = -1.
constexpr std::uint32_t kOrigin = std::numeric_limits<std::uint32_t>::max();

void append_src(std::string& out, std::uint32_t peer) {
  out += "\"src\": ";
  out += peer == kOrigin ? "-1" : std::to_string(peer);
}

}  // namespace

const char* to_string(EventType type) {
  switch (type) {
    case EventType::kPlacement:
      return "placement";
    case EventType::kJobStart:
      return "job_start";
    case EventType::kNodeDown:
      return "node_down";
    case EventType::kNodeUp:
      return "node_up";
    case EventType::kAttemptStart:
      return "attempt_start";
    case EventType::kAttemptFinish:
      return "attempt_finish";
    case EventType::kAttemptKill:
      return "attempt_kill";
    case EventType::kTransferRequest:
      return "transfer_request";
    case EventType::kTransferStall:
      return "transfer_stall";
    case EventType::kTransferResume:
      return "transfer_resume";
    case EventType::kTransferAbort:
      return "transfer_abort";
    case EventType::kTaskPark:
      return "task_park";
    case EventType::kTaskRevive:
      return "task_revive";
    case EventType::kJobEnd:
      return "job_end";
    case EventType::kNodeDead:
      return "node_dead";
    case EventType::kReplicaLost:
      return "replica_lost";
    case EventType::kRereplicationStart:
      return "rereplication_start";
    case EventType::kRereplicationDone:
      return "rereplication_done";
    case EventType::kRereplicationRetry:
      return "rereplication_retry";
    case EventType::kRereplicationGiveup:
      return "rereplication_giveup";
    case EventType::kPredictorDrift:
      return "predictor_drift";
    case EventType::kRebalanceTrigger:
      return "rebalance_trigger";
    case EventType::kMigrationStart:
      return "migration_start";
    case EventType::kMigrationCommit:
      return "migration_commit";
    case EventType::kMigrationRetry:
      return "migration_retry";
    case EventType::kMigrationGiveup:
      return "migration_giveup";
    case EventType::kPartitionStart:
      return "partition_start";
    case EventType::kPartitionHeal:
      return "partition_heal";
    case EventType::kStragglerStart:
      return "straggler_start";
    case EventType::kStragglerEnd:
      return "straggler_end";
    case EventType::kReplicaCorrupt:
      return "replica_corrupt";
    case EventType::kCorruptRead:
      return "corrupt_read";
    case EventType::kSafeModeEnter:
      return "safe_mode_enter";
    case EventType::kSafeModeExit:
      return "safe_mode_exit";
    case EventType::kNodeRevived:
      return "node_revived";
    case EventType::kRedundantWaste:
      return "redundant_waste";
    case EventType::kReplicaWriteoff:
      return "replica_writeoff";
    case EventType::kReplicaRestore:
      return "replica_restore";
    case EventType::kReplicaTrim:
      return "replica_trim";
  }
  return "?";
}

const char* to_string(TraceReason reason) {
  switch (reason) {
    case TraceReason::kNone:
      return "none";
    case TraceReason::kNodeDown:
      return "node_down";
    case TraceReason::kSourceTimeout:
      return "source_timeout";
    case TraceReason::kRedundant:
      return "redundant";
    case TraceReason::kChecksum:
      return "checksum";
  }
  return "?";
}

EventTracer::EventTracer(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(std::min<std::size_t>(capacity_, 4096));
}

void EventTracer::record(const TraceRecord& r) {
  if (sink_ != nullptr) sink_->observe(r);
  ++recorded_;
  if (ring_.size() < capacity_) {
    ring_.push_back(r);
    return;
  }
  ring_[head_] = r;
  head_ = (head_ + 1) % capacity_;
}

std::vector<TraceRecord> EventTracer::take_records() {
  std::vector<TraceRecord> out;
  out.reserve(ring_.size());
  // head_ is the oldest record once the ring wrapped; 0 otherwise.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  ring_.clear();
  head_ = 0;
  return out;
}

void append_jsonl(std::string& out, std::uint64_t run_index,
                  const TraceRecord& r) {
  out += "{\"run\": " + std::to_string(run_index) +
         ", \"t\": " + json_number(r.t) + ", \"ev\": \"" +
         to_string(r.type) + "\"";
  switch (r.type) {
    case EventType::kPlacement:
      out += ", \"block\": " + std::to_string(r.task) +
             ", \"replica\": " + std::to_string(r.aux) +
             ", \"node\": " + std::to_string(r.node);
      // Placement-time quote (expected task time on this node) when the
      // caller supplied one; omitted otherwise so pre-quote traces stay
      // byte-identical.
      if (r.v0 > 0.0) out += ", \"quote\": " + json_number(r.v0);
      break;
    case EventType::kJobStart:
      out += ", \"nodes\": " + std::to_string(r.node) +
             ", \"tasks\": " + std::to_string(r.task);
      break;
    case EventType::kNodeDown:
      out += ", \"node\": " + std::to_string(r.node) +
             ", \"slots\": " + std::to_string(r.aux);
      break;
    case EventType::kNodeUp:
      out += ", \"node\": " + std::to_string(r.node);
      break;
    case EventType::kAttemptStart:
      out += ", \"task\": " + std::to_string(r.task) +
             ", \"node\": " + std::to_string(r.node) + ", ";
      append_src(out, r.peer);
      out += ", \"spec\": " + std::to_string(r.aux) +
             ", \"ticket\": " + std::to_string(r.ticket);
      break;
    case EventType::kAttemptFinish:
      out += ", \"task\": " + std::to_string(r.task) +
             ", \"node\": " + std::to_string(r.node) + ", \"kind\": \"" +
             (r.aux == 0 ? "local" : r.aux == 1 ? "remote" : "origin") +
             "\"";
      break;
    case EventType::kAttemptKill:
      out += ", \"task\": " + std::to_string(r.task) +
             ", \"node\": " + std::to_string(r.node) + ", \"reason\": \"" +
             to_string(r.reason) + "\"";
      break;
    case EventType::kTransferRequest:
      out += ", \"task\": " + std::to_string(r.task) + ", ";
      append_src(out, r.peer);
      out += ", \"dst\": " + std::to_string(r.node) +
             ", \"ticket\": " + std::to_string(r.ticket) +
             ", \"start\": " + json_number(r.v0) +
             ", \"end\": " + json_number(r.v1);
      break;
    case EventType::kTransferStall:
      out += ", \"task\": " + std::to_string(r.task) + ", ";
      append_src(out, r.peer);
      out += ", \"ticket\": " + std::to_string(r.ticket);
      break;
    case EventType::kTransferResume:
      out += ", \"task\": " + std::to_string(r.task) + ", ";
      append_src(out, r.peer);
      out += ", \"ticket\": " + std::to_string(r.ticket) +
             ", \"end\": " + json_number(r.v0);
      break;
    case EventType::kTransferAbort:
      out += ", \"task\": " + std::to_string(r.task) + ", ";
      append_src(out, r.peer);
      out += ", \"ticket\": " + std::to_string(r.ticket) +
             ", \"reason\": \"" + to_string(r.reason) +
             "\", \"reclaimed\": " + json_number(r.v0);
      break;
    case EventType::kTaskPark:
      out += ", \"task\": " + std::to_string(r.task);
      break;
    case EventType::kTaskRevive:
      out += ", \"task\": " + std::to_string(r.task) +
             ", \"node\": " + std::to_string(r.node);
      break;
    case EventType::kJobEnd:
      out += ", \"tasks\": " + std::to_string(r.task);
      break;
    case EventType::kNodeDead:
      out += ", \"node\": " + std::to_string(r.node) +
             ", \"replicas\": " + std::to_string(r.aux);
      break;
    case EventType::kReplicaLost:
      out += ", \"block\": " + std::to_string(r.task) +
             ", \"recoverable\": " + std::to_string(r.aux);
      break;
    case EventType::kRereplicationStart:
      out += ", \"block\": " + std::to_string(r.task) + ", ";
      append_src(out, r.peer);
      out += ", \"dst\": " + std::to_string(r.node) +
             ", \"ticket\": " + std::to_string(r.ticket) +
             ", \"attempt\": " + std::to_string(r.aux) +
             ", \"start\": " + json_number(r.v0) +
             ", \"end\": " + json_number(r.v1);
      break;
    case EventType::kRereplicationDone:
      out += ", \"block\": " + std::to_string(r.task) + ", ";
      append_src(out, r.peer);
      out += ", \"dst\": " + std::to_string(r.node) +
             ", \"ticket\": " + std::to_string(r.ticket) +
             ", \"bytes\": " + json_number(r.v0);
      break;
    case EventType::kRereplicationRetry:
      out += ", \"block\": " + std::to_string(r.task) + ", \"reason\": \"" +
             to_string(r.reason) +
             "\", \"attempt\": " + std::to_string(r.aux) +
             ", \"next\": " + json_number(r.v0);
      break;
    case EventType::kRereplicationGiveup:
      out += ", \"block\": " + std::to_string(r.task) +
             ", \"attempts\": " + std::to_string(r.aux);
      break;
    case EventType::kPredictorDrift:
      out += ", \"node\": " + std::to_string(r.node) +
             ", \"score\": " + json_number(r.v0) +
             ", \"latency\": " + json_number(r.v1);
      break;
    case EventType::kRebalanceTrigger:
      out += ", \"moves\": " + std::to_string(r.task) +
             ", \"alarms\": " + std::to_string(r.aux);
      break;
    case EventType::kMigrationStart:
      out += ", \"block\": " + std::to_string(r.task) + ", ";
      append_src(out, r.peer);
      out += ", \"dst\": " + std::to_string(r.node) +
             ", \"ticket\": " + std::to_string(r.ticket) +
             ", \"attempt\": " + std::to_string(r.aux) +
             ", \"start\": " + json_number(r.v0) +
             ", \"end\": " + json_number(r.v1);
      break;
    case EventType::kMigrationCommit:
      out += ", \"block\": " + std::to_string(r.task) + ", ";
      append_src(out, r.peer);
      out += ", \"dst\": " + std::to_string(r.node) +
             ", \"ticket\": " + std::to_string(r.ticket) +
             ", \"bytes\": " + json_number(r.v0);
      break;
    case EventType::kMigrationRetry:
      out += ", \"block\": " + std::to_string(r.task) + ", \"reason\": \"" +
             to_string(r.reason) +
             "\", \"attempt\": " + std::to_string(r.aux) +
             ", \"next\": " + json_number(r.v0);
      break;
    case EventType::kMigrationGiveup:
      out += ", \"block\": " + std::to_string(r.task) +
             ", \"attempts\": " + std::to_string(r.aux);
      break;
    case EventType::kPartitionStart:
    case EventType::kPartitionHeal:
      out += ", \"nodes\": " + std::to_string(r.aux);
      break;
    case EventType::kStragglerStart:
      out += ", \"node\": " + std::to_string(r.node) +
             ", \"slow\": " + json_number(r.v0);
      break;
    case EventType::kStragglerEnd:
      out += ", \"node\": " + std::to_string(r.node);
      break;
    case EventType::kReplicaCorrupt:
      out += ", \"block\": " + std::to_string(r.task) +
             ", \"node\": " + std::to_string(r.node);
      break;
    case EventType::kCorruptRead:
      out += ", \"block\": " + std::to_string(r.task) +
             ", \"node\": " + std::to_string(r.node) + ", \"path\": \"" +
             (r.aux == 0 ? "local" : r.aux == 1 ? "remote" : "scan") +
             "\"";
      break;
    case EventType::kSafeModeEnter:
      out += ", \"deferred\": " + std::to_string(r.aux) +
             ", \"fraction\": " + json_number(r.v0);
      break;
    case EventType::kSafeModeExit:
      out += ", \"writeoffs\": " + std::to_string(r.task) +
             ", \"healed\": " + std::to_string(r.aux);
      break;
    case EventType::kNodeRevived:
      out += ", \"node\": " + std::to_string(r.node) +
             ", \"restored\": " + std::to_string(r.task) +
             ", \"trimmed\": " + std::to_string(r.aux);
      break;
    case EventType::kRedundantWaste:
      out += ", \"task\": " + std::to_string(r.task) +
             ", \"node\": " + std::to_string(r.node) +
             ", \"bytes\": " + json_number(r.v0);
      break;
    case EventType::kReplicaWriteoff:
      out += ", \"block\": " + std::to_string(r.task) +
             ", \"node\": " + std::to_string(r.node) +
             ", \"false_positive\": " + std::to_string(r.aux);
      break;
    case EventType::kReplicaRestore:
    case EventType::kReplicaTrim:
      out += ", \"block\": " + std::to_string(r.task) +
             ", \"node\": " + std::to_string(r.node);
      break;
  }
  out += "}";
}

std::string to_jsonl(const std::vector<RunObservations>& runs) {
  std::string out;
  for (std::size_t run = 0; run < runs.size(); ++run) {
    if (runs[run].dropped > 0) {
      out += "{\"run\": " + std::to_string(run) +
             ", \"ev\": \"dropped\", \"count\": " +
             std::to_string(runs[run].dropped) + "}\n";
    }
    for (const TraceRecord& r : runs[run].records) {
      append_jsonl(out, run, r);
      out += "\n";
    }
  }
  return out;
}

namespace {

void write_text(const std::string& path, const std::string& text) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    throw std::runtime_error("trace: cannot open " + path);
  }
  const std::size_t written =
      std::fwrite(text.data(), 1, text.size(), file);
  const int close_rc = std::fclose(file);
  if (written != text.size() || close_rc != 0) {
    throw std::runtime_error("trace: short write to " + path);
  }
}

}  // namespace

void write_jsonl(const std::string& path,
                 const std::vector<RunObservations>& runs) {
  write_text(path, to_jsonl(runs));
}

std::string spans_to_jsonl(const std::vector<RunObservations>& runs,
                           bool include_host) {
  std::string out;
  for (std::size_t run = 0; run < runs.size(); ++run) {
    for (const SpanRecord& s : runs[run].spans) {
      out += "{\"run\": " + std::to_string(run) + ", \"span\": \"" +
             common::json_escape(s.name) +
             "\", \"depth\": " + std::to_string(s.depth) +
             ", \"t0\": " + json_number(s.start) +
             ", \"dur\": " + json_number(s.dur_sim) +
             ", \"self\": " + json_number(s.self_sim);
      if (include_host) {
        out += ", \"host_ns\": " + std::to_string(s.dur_host_ns) +
               ", \"host_self_ns\": " + std::to_string(s.self_host_ns);
      }
      out += "}\n";
    }
  }
  return out;
}

void write_spans_jsonl(const std::string& path,
                       const std::vector<RunObservations>& runs,
                       bool include_host) {
  write_text(path, spans_to_jsonl(runs, include_host));
}

std::string timeseries_to_jsonl(const std::vector<RunObservations>& runs) {
  std::string out;
  for (std::size_t run = 0; run < runs.size(); ++run) {
    const TimeSeriesSnapshot& ts = runs[run].timeseries;
    for (std::size_t row = 0; row < ts.times.size(); ++row) {
      out += "{\"run\": " + std::to_string(run) +
             ", \"t\": " + json_number(ts.times[row]) + ", \"series\": {";
      for (std::size_t col = 0; col < ts.series.size(); ++col) {
        if (col > 0) out += ", ";
        out += "\"" + common::json_escape(ts.series[col].first) +
               "\": " + json_number(ts.series[col].second[row]);
      }
      out += "}}\n";
    }
  }
  return out;
}

void write_timeseries_jsonl(const std::string& path,
                            const std::vector<RunObservations>& runs) {
  write_text(path, timeseries_to_jsonl(runs));
}

}  // namespace adapt::obs
