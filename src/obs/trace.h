// Structured event tracer for the simulator: a ring buffer of typed
// records covering the full task/node/transfer lifecycle, with a JSONL
// export that is byte-identical across `--threads` values.
//
// Determinism contract (same as runner::Report): each simulation run is
// single-threaded and records events in event-queue order; each run owns
// its own tracer; the caller concatenates runs in job-index order; the
// serializer uses fixed per-type key order and "%.17g" doubles. Two
// invocations with the same seed therefore produce byte-identical trace
// files no matter how runs were scheduled across worker threads.
//
// The disabled path is near-zero cost: instrumented code holds a tracer
// pointer that is null when tracing is off, so every site is a single
// predictable branch.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/units.h"
#include "obs/calibration.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace adapt::obs {

enum class EventType : std::uint8_t {
  kPlacement,        // replica placement decision during a load
  kJobStart,         // map phase begins (node/task counts)
  kNodeDown,         // interruption begins (aux = slots)
  kNodeUp,           // interruption ends
  kAttemptStart,     // a slot starts executing or fetching
  kAttemptFinish,    // winning attempt completed (aux = kind)
  kAttemptKill,      // attempt killed (reason set)
  kTransferRequest,  // block fetch reserved on the network
  kTransferStall,    // source outage paused an in-flight fetch
  kTransferResume,   // source returned; fetch end shifted (v0 = new end)
  kTransferAbort,    // fetch aborted (reason set, v0 = reclaimed share)
  kTaskPark,         // all replicas offline; task parked as stalled
  kTaskRevive,       // a replica holder returned; task fetchable again
  kJobEnd,           // map phase done (t = elapsed)
  // -- churn & recovery --
  kNodeDead,            // declared dead after dead-timeout (aux = replicas lost)
  kReplicaLost,         // a block dropped to zero live replicas (aux = recoverable)
  kRereplicationStart,  // re-replication transfer reserved (aux = attempt#)
  kRereplicationDone,   // re-replication transfer landed (v0 = bytes)
  kRereplicationRetry,  // transfer failed; backing off (v0 = next try)
  kRereplicationGiveup, // retry budget exhausted (aux = attempts)
  // -- calibration --
  kPredictorDrift,      // CUSUM alarm: estimate departed from ground
                        // truth (v0 = score, v1 = detection latency or -1)
  // -- online rebalancing --
  kRebalanceTrigger,    // drift alarms tripped a rebalance pass
                        // (task = moves submitted, aux = alarms)
  kMigrationStart,      // migration transfer reserved (aux = attempt#)
  kMigrationCommit,     // migration landed; metadata flipped (v0 = bytes)
  kMigrationRetry,      // migration failed; backing off (v0 = next try)
  kMigrationGiveup,     // migration retry budget exhausted (aux = attempts)
  // -- gray failures --
  kPartitionStart,      // control-plane partition begins (aux = nodes cut)
  kPartitionHeal,       // partition heals (aux = nodes restored)
  kStragglerStart,      // degraded mode begins (v0 = slow factor)
  kStragglerEnd,        // degraded mode ends
  kReplicaCorrupt,      // bitrot: replica silently corrupted (task = block)
  kCorruptRead,         // checksum caught a corrupt replica (aux = path:
                        // 0 local read, 1 remote fetch, 2 scanner)
  kSafeModeEnter,       // mass-death heuristic tripped (aux = deferred,
                        // v0 = believed-dead fraction)
  kSafeModeExit,        // hold expired or healed (task = write-offs
                        // applied, aux = 1 when healed with no write-off)
  kNodeRevived,         // false-positive dead declaration undone by a
                        // heartbeat (task = replicas restored,
                        // aux = stale replicas trimmed)
  // -- scheduler policies --
  kRedundantWaste,      // losing duplicate's fetch bytes written off
                        // when a sibling won (v0 = wasted bytes)
  // -- per-replica churn detail (lineage) --
  kReplicaWriteoff,     // a dead-declared holder's copy was dropped
                        // (task = block, node = holder, aux = 1 when the
                        // holder was actually up — false positive)
  kReplicaRestore,      // revive block report re-registered a copy
                        // (task = block, node = holder)
  kReplicaTrim,         // revive-time over-replica discarded
                        // (task = block, node = holder)
};
inline constexpr std::size_t kEventTypeCount = 39;

// Why an attempt/transfer was killed; mirrors the simulator's kill paths.
enum class TraceReason : std::uint8_t {
  kNone,
  kNodeDown,        // hosting node went down
  kSourceTimeout,   // source outage outlived the stall timeout
  kRedundant,       // another attempt won the task
  kChecksum,        // read returned corrupt data (bitrot caught)
};

const char* to_string(EventType type);
const char* to_string(TraceReason reason);

// One fixed-size record; field meaning depends on `type` (see the JSONL
// schema in DESIGN.md). Unused fields stay zero.
struct TraceRecord {
  common::Seconds t = 0.0;
  EventType type = EventType::kJobStart;
  TraceReason reason = TraceReason::kNone;
  std::uint32_t node = 0;    // acting node: destination / transitioning
  std::uint32_t peer = 0;    // transfer source (kOriginEndpoint = origin)
  std::uint32_t task = 0;    // task == block index within the job's file
  std::uint32_t aux = 0;     // slots / replica index / spec flag / kind
  std::uint64_t ticket = 0;  // network reservation ticket
  double v0 = 0.0;           // grant start / new end / reclaimed share
  double v1 = 0.0;           // grant end
};

// Streaming observer: sees every record at record() time, before the
// ring can overwrite it. This is how accumulating consumers (the
// lineage index) stay exact when the ring is smaller than the run.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void observe(const TraceRecord& r) = 0;
};

// Bounded ring: overwrites the oldest record when full and counts the
// overwritten records, so a too-small buffer is detectable rather than
// silently misleading.
class EventTracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 20;

  explicit EventTracer(std::size_t capacity = kDefaultCapacity);

  // Attach a streaming observer (nullptr detaches). Not owned; must
  // outlive the tracer or be detached first.
  void set_sink(TraceSink* sink) { sink_ = sink; }

  void record(const TraceRecord& r);

  std::uint64_t recorded() const { return recorded_; }
  std::uint64_t dropped() const {
    return recorded_ - static_cast<std::uint64_t>(ring_.size());
  }

  // The retained records in chronological (insertion) order.
  std::vector<TraceRecord> take_records();

 private:
  std::vector<TraceRecord> ring_;
  std::size_t capacity_;
  std::size_t head_ = 0;  // next overwrite position once wrapped
  std::uint64_t recorded_ = 0;
  TraceSink* sink_ = nullptr;
};

// Built by obs::LineageIndex (obs/lineage.h); forward-declared here so
// RunObservations can carry one without an include cycle.
struct LineageSnapshot;

// What one instrumented run hands back to its caller.
struct RunObservations {
  std::vector<TraceRecord> records;
  std::uint64_t dropped = 0;
  MetricsSnapshot metrics;
  std::vector<SpanRecord> spans;
  TimeSeriesSnapshot timeseries;
  CalibrationSnapshot calibration;
  // Present when Options::lineage was set; exact even when the ring
  // overwrote (the index streams from the tracer, not the ring).
  std::shared_ptr<const LineageSnapshot> lineage;

  bool empty() const {
    return records.empty() && metrics.empty() && spans.empty() &&
           timeseries.empty() && calibration.empty() && lineage == nullptr;
  }
};

// Observability knobs carried by experiment configs. Everything is off
// by default; enabling costs one owned tracer/registry per run.
struct Options {
  bool trace = false;    // collect trace records
  bool metrics = false;  // collect metrics
  bool spans = false;    // collect profiler spans
  bool span_host = false;  // include (nondeterministic) host time in exports
  bool lineage = false;  // build the causal lineage index (obs/lineage.h)
  common::Seconds sample_dt = 0.0;  // >0: sample metric time-series
  CalibrationOptions calibration;   // prediction calibration / drift
  std::size_t ring_capacity = EventTracer::kDefaultCapacity;

  bool enabled() const {
    return trace || metrics || spans || lineage || sample_dt > 0.0 ||
           calibration.enabled;
  }
};

// One record as a JSONL line (no trailing newline), prefixed with the
// run index: {"run": 3, "t": ..., "ev": "...", ...}.
void append_jsonl(std::string& out, std::uint64_t run_index,
                  const TraceRecord& r);

// Serialize runs in index order; emits a {"ev": "dropped"} marker line
// for any run whose ring overflowed.
std::string to_jsonl(const std::vector<RunObservations>& runs);

// Write to_jsonl(runs) to `path`; throws std::runtime_error on failure.
void write_jsonl(const std::string& path,
                 const std::vector<RunObservations>& runs);

// Span stream, one JSONL line per closed span in close order:
// {"run": N, "span": "...", "depth": D, "t0": ..., "dur": ...,
//  "self": ...} — plus "host_ns"/"host_self_ns" when `include_host`
// (host time is nondeterministic, so CI byte-compares leave it off).
std::string spans_to_jsonl(const std::vector<RunObservations>& runs,
                           bool include_host);
void write_spans_jsonl(const std::string& path,
                       const std::vector<RunObservations>& runs,
                       bool include_host);

// Time-series stream, one JSONL line per sample:
// {"run": N, "t": ..., "series": {"name": value, ...}} (name-sorted).
std::string timeseries_to_jsonl(const std::vector<RunObservations>& runs);
void write_timeseries_jsonl(const std::string& path,
                            const std::vector<RunObservations>& runs);

}  // namespace adapt::obs
