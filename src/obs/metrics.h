// Metrics registry: counters, gauges and fixed-bucket histograms with a
// deterministic export format.
//
// Design rules that make the output reproducible:
//  * bucket layouts are fixed at registration time (no dynamic
//    resizing from observed data), so two runs always produce
//    structurally identical histograms;
//  * snapshots sort series by name, and serialization uses the shared
//    fixed-key-order/"%.17g" conventions (common/jsonfmt.h);
//  * every simulation run owns its own registry, and cross-run merging
//    walks runs in index order — so aggregates are bit-identical for
//    any `--threads` value.
//
// The registry is not thread-safe by design: one registry per
// single-threaded simulation run, merged afterwards.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "obs/quantile_sketch.h"

namespace adapt::obs {

struct HistogramSnapshot {
  std::string name;
  // Upper bounds of the finite buckets, strictly increasing; counts has
  // bounds.size() + 1 entries, the last being the overflow bucket.
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;
  std::uint64_t total = 0;
  double sum = 0.0;
};

struct SketchSnapshot {
  std::string name;
  QuantileSketch sketch;
};

// Metric trajectories: one row per sample() call, one column per scalar
// series (counters and gauges together, name-sorted). Columns are
// aligned with `times`; series registered after a sample was taken pad
// the earlier rows with 0.
struct TimeSeriesSnapshot {
  std::vector<common::Seconds> times;
  std::vector<std::pair<std::string, std::vector<double>>> series;

  bool empty() const { return times.empty(); }
};

// A frozen copy of a registry's state; mergeable across runs.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, double>> counters;  // sorted by name
  std::vector<std::pair<std::string, double>> gauges;    // sorted by name
  std::vector<HistogramSnapshot> histograms;             // sorted by name
  std::vector<SketchSnapshot> sketches;                  // sorted by name

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty() &&
           sketches.empty();
  }

  // Merge another run into this one: counters and histogram buckets add
  // up; gauges keep the maximum (they record run-level quantities like
  // elapsed time, where the max across runs is the useful aggregate);
  // sketches merge (same capacity required — mirrors the histogram
  // layout rule). Histograms with the same name must share a bucket
  // layout.
  void merge(const MetricsSnapshot& other);

  // Deterministic JSON object ({"counters": {...}, "gauges": {...},
  // "histograms": [...]}), appended to `out`. A "sketches" key follows
  // "histograms" only when sketches exist, so pre-sketch outputs stay
  // byte-identical.
  void append_json(std::string& out, const std::string& indent) const;
};

class MetricsRegistry {
 public:
  using Id = std::uint32_t;

  // Registration returns a stable id for cheap updates; re-registering
  // a name returns the existing id. Ids are per-kind (a counter id is
  // only valid with add()).
  Id counter(const std::string& name);
  Id gauge(const std::string& name);
  Id histogram(const std::string& name, std::vector<double> bounds);
  Id sketch(const std::string& name,
            std::size_t capacity = QuantileSketch::kDefaultCapacity);

  void add(Id id, double v = 1.0) { counters_[id].value += v; }
  void set(Id id, double v) { gauges_[id].value = v; }
  void observe(Id id, double v);
  void sketch_observe(Id id, double v) { sketches_[id].sketch.observe(v); }

  MetricsSnapshot snapshot() const;

  // Record one time-series row: the current value of every registered
  // counter and gauge, stamped with simulated time `t`.
  void sample(common::Seconds t);

  // Materialize and drain the sampled rows (empty if sample() was never
  // called).
  TimeSeriesSnapshot take_timeseries();

  // Helper for a deterministic fixed layout: `count` bounds starting at
  // `start`, each `factor` times the previous.
  static std::vector<double> exponential_bounds(double start, double factor,
                                                std::size_t count);

  // `count` log-spaced bounds from `lo` to `hi` inclusive — the right
  // shape for heavy-tailed durations, where a fixed linear layout clips
  // the tail into the overflow bucket. Requires 0 < lo < hi, count >= 2.
  static std::vector<double> log_bounds(double lo, double hi,
                                        std::size_t count);

 private:
  struct Scalar {
    std::string name;
    double value = 0.0;
  };
  struct Histogram {
    std::string name;
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;  // bounds.size() + 1
    std::uint64_t total = 0;
    double sum = 0.0;
  };

  struct NamedSketch {
    std::string name;
    QuantileSketch sketch;
  };
  struct RawSample {
    common::Seconds t = 0.0;
    std::vector<double> counter_values;
    std::vector<double> gauge_values;
  };

  std::vector<Scalar> counters_;
  std::vector<Scalar> gauges_;
  std::vector<Histogram> histograms_;
  std::vector<NamedSketch> sketches_;
  std::vector<RawSample> samples_;
};

// Merge per-run snapshots in run order (deterministic for any thread
// count, since the caller collected them in job-index order).
MetricsSnapshot merge_snapshots(const std::vector<MetricsSnapshot>& runs);

}  // namespace adapt::obs
