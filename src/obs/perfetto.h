// Perfetto / Chrome trace-event JSON exporter: renders a recorded run
// as per-node tracks loadable in chrome://tracing or ui.perfetto.dev.
//
// Mapping (documented in DESIGN.md §12):
//   process (pid)  = run index, named "run N"
//   thread (tid)   = node index, named "node K"; one extra "control"
//                    track (tid = node count) carries cluster-wide
//                    instants (losses, safe mode, partitions)
//   "X" slices     = attempt executions (args: src/dup/outcome/reason),
//                    node down spans, and re-replication / migration
//                    grant windows on the destination node's track
//   "s"/"f" flows  = transfer arrows from the serving source track to
//                    the destination slice (id = "run.ticket")
//   "i" instants   = declared-dead marks, replica losses, repair
//                    landings/give-ups, safe-mode and partition edges
//
// Determinism: timestamps are integer microseconds (llround(t * 1e6)),
// events are emitted in record order, runs concatenate in index order —
// the export is byte-identical across --threads values.
#pragma once

#include <string>
#include <vector>

#include "obs/trace.h"

namespace adapt::obs {

// Serialize all runs into one trace-event JSON document.
std::string perfetto_json(const std::vector<RunObservations>& runs);

// Write perfetto_json(runs) to `path`; throws std::runtime_error on
// failure.
void write_perfetto_json(const std::string& path,
                         const std::vector<RunObservations>& runs);

}  // namespace adapt::obs
