// Causal lineage index: chains every replica's history (placed-by
// policy+quote → re-replicated → migrated → written-off → restored by a
// revive block report → corrupted → trimmed) and every task's attempt
// tree (speculative/redundant siblings, kill reasons, transfer stalls)
// from the event stream, plus a loss post-mortem engine that classifies
// every lost block by root cause.
//
// The index is a streaming TraceSink, NOT a ring consumer: it observes
// every record at record() time with bounded per-block/per-task state,
// so it stays exact even when the EventTracer ring overwrites. The same
// accumulation can be replayed offline from a parsed trace
// (build_lineage), which matches the online snapshot exactly whenever
// the ring dropped nothing.
//
// Block ↔ task identity: the index assumes task id == block id, which
// holds for every single-file run (run_experiment starts from a fresh
// NameNode, so first_block == 0). Multi-file job streams reuse block
// ids across files; lineage chains there merge per-id and the loss
// verdict keys off the *latest* file's task — acceptable for debugging,
// documented in DESIGN.md §12.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace adapt::obs {

// One hop in a replica chain. `detail` and `v0` are kind-specific.
enum class LineageStepKind : std::uint8_t {
  kPlaced,         // replica placed (detail = replica index, v0 = quote)
  kRereplicated,   // recovery copy landed (detail = source, v0 = bytes)
  kMigrated,       // rebalance moved the copy (detail = source, v0 = bytes)
  kWriteoff,       // holder declared dead (detail = 1 when false positive)
  kRestored,       // revive block report re-registered the copy
  kTrimmed,        // revive-time over-replica discarded
  kCorrupted,      // bitrot injected (copy silently bad)
  kCorruptDropped, // checksum caught it; copy removed (detail = path)
  kLost,           // zero live replicas (detail = 1 when origin-recoverable)
  kRepairStart,    // re-replication reserved (detail = attempt#)
  kRepairRetry,    // re-replication failed; backing off (detail = attempt#)
  kRepairGiveup,   // retry budget exhausted (detail = attempts)
};
inline constexpr std::size_t kLineageStepKindCount = 12;
const char* to_string(LineageStepKind kind);

struct LineageStep {
  common::Seconds t = 0.0;
  LineageStepKind kind = LineageStepKind::kPlaced;
  std::uint32_t node = 0;    // acting holder / destination
  std::uint32_t detail = 0;  // see LineageStepKind
  double v0 = 0.0;           // quote or bytes (0 when unknown)
};

// Full causal chain of one block, with the derived loss verdict.
struct BlockLineage {
  std::uint32_t block = 0;
  std::vector<LineageStep> steps;     // capped; excess only counted
  std::uint32_t truncated_steps = 0;  // steps beyond the cap
  std::vector<std::uint32_t> holders;  // final live holder set (sorted)

  bool lost = false;  // final verdict (task undone, no copy survives)
  common::Seconds lost_at = 0.0;

  // Classification evidence accumulated along the chain.
  bool saw_loss_event = false;       // any kReplicaLost observed
  bool repair_attempted = false;     // any re-replication activity
  bool repair_gaveup = false;        // retry budget exhausted
  bool false_writeoff = false;       // a holder was written off while up
  bool emptied_by_corruption = false;  // last copy died to a checksum drop
  bool had_holders = false;          // ever held at least one replica
};

// One node of a task's attempt tree (siblings = duplicate attempts).
struct AttemptNode {
  common::Seconds start = 0.0;
  common::Seconds end = -1.0;  // < 0 while still open
  std::uint32_t node = 0;
  std::uint32_t src = 0;       // fetch source (kOriginEndpoint = origin)
  std::uint64_t ticket = 0;    // network reservation (stall matching)
  bool speculative = false;    // duplicate launch (spec or redundant)
  bool finished = false;
  bool killed = false;
  TraceReason kill_reason = TraceReason::kNone;
  std::uint32_t stalls = 0;    // transfer stalls hit while fetching
};

struct TaskLineage {
  std::uint32_t task = 0;
  std::vector<AttemptNode> attempts;     // capped; excess only counted
  std::uint32_t truncated_attempts = 0;
  bool done = false;
  common::Seconds done_at = 0.0;
  std::uint32_t parks = 0;  // times every replica was offline at once
};

// Deterministic, finalized view: blocks and tasks ascending by id,
// holding only entries the run actually touched.
struct LineageSnapshot {
  std::vector<BlockLineage> blocks;
  std::vector<TaskLineage> tasks;
  common::Seconds elapsed = 0.0;  // kJobEnd time (last record time if none)
  std::uint64_t records_seen = 0;
};

// Streaming accumulator. Attach to a tracer with set_sink(); state is
// bounded per block (kMaxStepsPerBlock) and per task
// (kMaxAttemptsPerTask) so a pathological run cannot grow one chain
// without bound — truncation is counted, never silent.
class LineageIndex : public TraceSink {
 public:
  static constexpr std::size_t kMaxStepsPerBlock = 96;
  static constexpr std::size_t kMaxAttemptsPerTask = 64;

  void observe(const TraceRecord& r) override;

  // Finalize and export: sorts holder sets, resolves each touched
  // block's loss verdict (a block is lost iff its task is undone and
  // either an unrecoverable zero-replica event stands un-restored or
  // every remaining holder is down at the end). Callable repeatedly.
  LineageSnapshot take_snapshot() const;

 private:
  struct BlockState {
    BlockLineage lineage;
    bool touched = false;
  };
  struct TaskState {
    TaskLineage lineage;
    bool touched = false;
  };

  BlockLineage& touch_block(std::uint32_t block);
  TaskLineage& touch_task(std::uint32_t task);
  void push_step(BlockLineage& b, const LineageStep& step);
  // Returns true when the holder was absent and got added.
  bool add_holder(BlockLineage& b, std::uint32_t node);
  void remove_holder(BlockLineage& b, std::uint32_t node);

  std::vector<BlockState> blocks_;  // dense, indexed by block id
  std::vector<TaskState> tasks_;    // dense, indexed by task id
  std::vector<char> node_up_;       // 1 = up (default); kNodeDown flips
  common::Seconds last_t_ = 0.0;
  common::Seconds elapsed_ = -1.0;  // < 0 until kJobEnd
  std::uint64_t records_seen_ = 0;
};

// Offline rebuild from a parsed trace; identical to the online snapshot
// whenever the ring dropped nothing.
LineageSnapshot build_lineage(const std::vector<TraceRecord>& records);

// nullptr when the snapshot holds no entry for the id.
const BlockLineage* find_block(const LineageSnapshot& snapshot,
                               std::uint32_t block);
const TaskLineage* find_task(const LineageSnapshot& snapshot,
                             std::uint32_t task);

// ---------------------------------------------------------------------
// Loss post-mortems
// ---------------------------------------------------------------------

// Root-cause taxonomy for a lost block, decided from its chain with
// fixed precedence (first match wins, top to bottom):
enum class LossCause : std::uint8_t {
  kCorruptionNoSurvivor,   // last live copy removed by a checksum catch
  kFalsePositiveWriteoff,  // a copy on a *live* node was written off
                           // (partition/heartbeat loss) and the block
                           // never recovered
  kRetryExhaustion,        // re-replication ran and could not refill it
  kAllHoldersDeadWithinWindow,  // no repair ever started: every holder
                           // was written off in one detection batch —
                           // i.e. all died within one detection window
  kUnclassified,           // safety bucket; expected to stay empty
};
inline constexpr std::size_t kLossCauseCount = 5;
const char* to_string(LossCause cause);

LossCause classify_loss(const BlockLineage& b);

struct LossPostMortem {
  std::uint32_t block = 0;
  LossCause cause = LossCause::kUnclassified;
  common::Seconds lost_at = 0.0;
  std::uint32_t writeoffs = 0;        // holder write-offs along the chain
  std::uint32_t repair_attempts = 0;  // repair starts + retries
};

struct LossReport {
  std::vector<LossPostMortem> losses;  // ascending block id
  std::array<std::uint64_t, kLossCauseCount> counts{};
  std::uint64_t total = 0;
};

LossReport post_mortem(const LineageSnapshot& snapshot);

// ---------------------------------------------------------------------
// Rendering & export
// ---------------------------------------------------------------------

// Human-readable multi-line chain / attempt tree (used by
// trace_inspect and chaos_harness violation reports).
std::string describe_block(const BlockLineage& b);
std::string describe_task(const TaskLineage& t);

// Deterministic post-mortem rendering: per-cause counts then one line
// per lost block, ascending by block id. Byte-identical across
// --threads; the chaos CI job diffs it across same-seed runs.
std::string post_mortem_text(const LossReport& report);

// JSONL export: per run a "summary" line, then one "block" line per
// chain and one "task" line per attempt tree, ascending by id. Uses
// the run's online snapshot when present, else rebuilds from records.
// Byte-identical across --threads (runs concatenate in index order).
std::string lineage_to_jsonl(const std::vector<RunObservations>& runs);
void write_lineage_jsonl(const std::string& path,
                         const std::vector<RunObservations>& runs);

}  // namespace adapt::obs
