#include "trace/trace_io.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace adapt::trace {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw std::runtime_error("trace parse error at line " +
                           std::to_string(line) + ": " + message);
}

}  // namespace

void write_trace(std::ostream& out, const Trace& trace) {
  out << "# adapt-trace v1 nodes=" << trace.node_count
      << " horizon=" << trace.horizon << '\n';
  out << "node,start,duration\n";
  char buf[96];
  for (const TraceEvent& e : trace.events) {
    std::snprintf(buf, sizeof buf, "%" PRIu32 ",%.6f,%.6f\n", e.node, e.start,
                  e.duration);
    out << buf;
  }
}

void write_trace_file(const std::string& path, const Trace& trace) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  write_trace(out, trace);
  if (!out) throw std::runtime_error("write failed: " + path);
}

Trace read_trace(std::istream& in) {
  Trace trace;
  std::string line;
  std::size_t line_no = 0;

  if (!std::getline(in, line)) fail(1, "empty input");
  ++line_no;
  {
    std::size_t nodes = 0;
    double horizon = 0.0;
    if (std::sscanf(line.c_str(), "# adapt-trace v1 nodes=%zu horizon=%lf",
                    &nodes, &horizon) != 2) {
      fail(line_no, "bad header, expected '# adapt-trace v1 nodes=N "
                    "horizon=H'");
    }
    trace.node_count = nodes;
    trace.horizon = horizon;
  }

  if (!std::getline(in, line)) fail(2, "missing column header");
  ++line_no;
  if (line != "node,start,duration") fail(line_no, "bad column header");

  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    TraceEvent e;
    if (std::sscanf(line.c_str(), "%" SCNu32 ",%lf,%lf", &e.node, &e.start,
                    &e.duration) != 3) {
      fail(line_no, "bad event row: " + line);
    }
    if (e.node >= trace.node_count) fail(line_no, "node id out of range");
    if (e.start < 0 || e.duration < 0) fail(line_no, "negative time");
    if (!trace.events.empty() && e.start < trace.events.back().start) {
      fail(line_no, "events out of order");
    }
    trace.events.push_back(e);
  }
  return trace;
}

Trace read_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  return read_trace(in);
}

}  // namespace adapt::trace
