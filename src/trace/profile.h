// Per-host views of a trace: measured interruption parameters (what the
// NameNode's predictor would learn) and merged unavailability intervals
// (what the simulator replays).
#pragma once

#include <vector>

#include "availability/interruption_model.h"
#include "common/units.h"
#include "trace/event.h"

namespace adapt::trace {

// A maximal closed period of unavailability [down, up).
struct DownInterval {
  common::Seconds down = 0.0;
  common::Seconds up = 0.0;

  common::Seconds length() const { return up - down; }
  friend bool operator==(const DownInterval&, const DownInterval&) = default;
};

// FCFS busy-period merge of one host's interruption events: an arrival
// during an outage queues and extends it (paper Section III-A). Events
// must be sorted by start time. Intervals may extend past the trace
// horizon (long repairs near the end).
std::vector<DownInterval> merge_busy_periods(
    const std::vector<TraceEvent>& host_events);

// Per-host measurement over the whole trace window:
//   lambda = arrivals / horizon, mu = mean event duration.
// Hosts without events get lambda = mu = 0.
std::vector<avail::InterruptionParams> extract_params(const Trace& trace);

// Per-host merged downtime intervals, node-indexed.
std::vector<std::vector<DownInterval>> extract_down_intervals(
    const Trace& trace);

// Fraction of [0, horizon) each host is available under FCFS merging.
std::vector<double> extract_availability(const Trace& trace);

}  // namespace adapt::trace
