#include "trace/trace_stats.h"

#include <vector>

namespace adapt::trace {

TraceStats compute_trace_stats(const Trace& trace) {
  // Previous arrival per node; < 0 means none seen yet.
  std::vector<double> last_arrival(trace.node_count, -1.0);
  std::vector<bool> seen(trace.node_count, false);
  std::vector<double> gap_sum(trace.node_count, 0.0);
  std::vector<std::size_t> gap_count(trace.node_count, 0);
  std::vector<double> duration_sum(trace.node_count, 0.0);
  std::vector<std::size_t> duration_count(trace.node_count, 0);

  std::vector<double> gaps;
  std::vector<double> durations;
  gaps.reserve(trace.events.size());
  durations.reserve(trace.events.size());

  for (const TraceEvent& e : trace.events) {
    durations.push_back(e.duration);
    duration_sum[e.node] += e.duration;
    ++duration_count[e.node];
    double gap;
    if (seen[e.node]) {
      gap = e.start - last_arrival[e.node];
    } else {
      // First gap measured from observation start, matching how a trace
      // collector sees it.
      gap = e.start;
      seen[e.node] = true;
    }
    gaps.push_back(gap);
    gap_sum[e.node] += gap;
    ++gap_count[e.node];
    last_arrival[e.node] = e.start;
  }

  TraceStats stats;
  stats.event_count = trace.events.size();
  std::vector<double> host_mtbi;
  std::vector<double> host_duration;
  for (std::size_t i = 0; i < trace.node_count; ++i) {
    if (!seen[i]) continue;
    ++stats.hosts_with_events;
    host_mtbi.push_back(gap_sum[i] / static_cast<double>(gap_count[i]));
    host_duration.push_back(duration_sum[i] /
                            static_cast<double>(duration_count[i]));
  }
  stats.mtbi = common::summarize(std::move(gaps));
  stats.duration = common::summarize(std::move(durations));
  stats.mtbi_per_host = common::summarize(std::move(host_mtbi));
  stats.duration_per_host = common::summarize(std::move(host_duration));
  return stats;
}

}  // namespace adapt::trace
