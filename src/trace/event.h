// Failure-trace data model.
//
// A trace is what the Failure Trace Archive gives the paper for its
// large-scale simulation: for each host, a sequence of interruption
// arrivals with repair durations. Arrivals may land while the host is
// already down; per the paper's M/G/1 assumption they queue FCFS, so the
// host's unavailability intervals are derived by busy-period merging
// (see trace/profile.h).
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.h"

namespace adapt::trace {

using NodeId = std::uint32_t;

struct TraceEvent {
  NodeId node = 0;
  common::Seconds start = 0.0;     // interruption arrival time
  common::Seconds duration = 0.0;  // service (repair) time of this event

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

struct Trace {
  std::size_t node_count = 0;
  common::Seconds horizon = 0.0;    // observation window [0, horizon)
  std::vector<TraceEvent> events;   // sorted by (start, node)
};

}  // namespace adapt::trace
