// Pooled trace statistics — the numbers the paper reports in Table 1.
//
// MTBI samples are the gaps between successive interruption arrivals of
// the same host, pooled over all hosts (so flaky hosts weigh in
// proportionally to their event counts, as in the Failure Trace Archive
// summaries). Duration samples are every event's repair time.
#pragma once

#include "common/stats.h"
#include "trace/event.h"

namespace adapt::trace {

struct TraceStats {
  common::Summary mtbi;      // inter-arrival gaps, pooled over events
  common::Summary duration;  // repair durations, pooled over events
  // Population view: one sample per host (its mean gap / mean duration),
  // the reading of Table 1 the generator calibrates to by default.
  common::Summary mtbi_per_host;
  common::Summary duration_per_host;
  std::size_t hosts_with_events = 0;
  std::size_t event_count = 0;
};

TraceStats compute_trace_stats(const Trace& trace);

}  // namespace adapt::trace
