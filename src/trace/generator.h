// Synthetic SETI@home-like failure trace generator.
//
// Substitution note (see DESIGN.md §2): the paper replays Failure Trace
// Archive data from 226 208 SETI@home hosts; that data set is not
// available here, so we synthesize traces whose *pooled event
// statistics* match the paper's Table 1:
//
//             mean (s)   std dev (s)   CoV
//   MTBI       160290      701419      4.376
//   duration   109380      807983      7.3869
//
// Model: host i draws a personal mean-time-between-interruptions M_i and
// a personal mean repair duration D_i from population lognormals;
// within a host, inter-arrivals are Exp(M_i) (the paper's model
// assumption) and durations are lognormal(D_i, cov_within).
//
// Two readings of Table 1 are supported (see DESIGN.md):
//
//  * kPerHost (default): the summary describes the *population of
//    hosts* — M_i ~ LogNormal(mean, cov) and D_i ~ LogNormal(mean, cov)
//    directly. This leaves a sizable volatile subpopulation (about 9%
//    of hosts interrupt more often than hourly), which is what the
//    paper's simulation results require and what per-host FTA summaries
//    describe.
//
//  * kPooledEvents: the summary describes the pooled *event* samples.
//    Pooled inter-arrival samples are event-weighted (a flaky host
//    contributes many more gaps), giving, for M_i ~ LogNormal(m, s),
//      E[gap]   = exp(m - s^2/2)   (harmonic mean of M_i)
//      E[gap^2] = 2 exp(2m)
//    hence CoV^2 = 2 e^{s^2} - 1. Durations are unbiased by event
//    weighting, giving 1 + CoV^2 = (1 + cov_pop^2)(1 + cov_within^2).
//    Note this reading concentrates nearly all events on a tiny host
//    fraction and leaves almost no within-job volatility.
#pragma once

#include "availability/interruption_model.h"
#include "common/rng.h"
#include "trace/event.h"

#include <vector>

namespace adapt::trace {

enum class Table1Reading { kPerHost, kPooledEvents };

struct GeneratorConfig {
  std::size_t node_count = 16384;
  common::Seconds horizon = 1.5 * 365.0 * 24.0 * 3600.0;  // 1.5 years
  Table1Reading reading = Table1Reading::kPerHost;

  // Table 1 targets.
  double mtbi_mean = 160290.0;
  double mtbi_cov = 4.376;
  double duration_mean = 109380.0;
  double duration_cov = 7.3869;

  // Within-host duration variability; the remainder of duration_cov is
  // assigned to cross-host spread.
  double duration_cov_within = 2.0;

  // Joint structure of per-host repair time vs MTBI (kPerHost reading):
  //   ln D_i = a + coupling * ln M_i + eps,  eps ~ N(0, sigma_eps^2),
  // with (a, sigma_eps) solved so D's population moments match Table 1
  // exactly for any coupling in [0, ~1.15].
  //   coupling = 1: D proportional to M (rho independent of M; every
  //     host has the same utilization distribution, so frequent
  //     interrupters have proportionally short repairs);
  //   coupling = 0: D independent of M (frequent interrupters also have
  //     typical-length repairs, so rho and the interruption rate are
  //     strongly positively correlated — the volatile minority is both
  //     flaky and slow to return, which is what availability-aware
  //     placement exploits).
  // The default sits between the extremes.
  double duration_mtbi_coupling = 0.5;

  // Guards against pathological hosts that would flood the trace.
  common::Seconds min_host_mtbi = 30.0;
  common::Seconds min_duration = 1.0;

  std::uint64_t seed = 42;
};

// Per-host ground-truth parameters drawn by the generator; kept so tests
// and experiments can compare extraction against truth.
struct HostTruth {
  double mtbi = 0.0;           // M_i
  double mean_duration = 0.0;  // D_i
  avail::InterruptionParams params() const {
    return {1.0 / mtbi, mean_duration};
  }
};

struct GeneratedTrace {
  Trace trace;
  std::vector<HostTruth> truth;  // node_count entries
};

GeneratedTrace generate_seti_like_trace(const GeneratorConfig& config);

// Calibration helpers, exposed for tests.
// Lognormal (m, s) for per-host MTBI such that pooled event-weighted
// gaps hit (mean, cov).
void calibrate_mtbi_population(double mean, double cov, double& log_mean,
                               double& log_sigma);
// Cross-host CoV of D_i given the pooled duration CoV and within-host CoV.
double calibrate_duration_population_cov(double pooled_cov,
                                         double within_cov);

// CoV of the utilization ratio rho_i = D_i / M_i such that, with
// independent rho and M, D = rho * M hits (duration_mean, duration_cov)
// given (mtbi_mean, mtbi_cov). Throws when the duration spread is too
// small to decompose this way.
double calibrate_rho_cov(double mtbi_cov, double duration_cov);

}  // namespace adapt::trace
