#include "trace/profile.h"

#include <algorithm>
#include <stdexcept>

namespace adapt::trace {

std::vector<DownInterval> merge_busy_periods(
    const std::vector<TraceEvent>& host_events) {
  std::vector<DownInterval> out;
  for (const TraceEvent& e : host_events) {
    if (!out.empty() && e.start < out.back().down) {
      throw std::invalid_argument("merge_busy_periods: events not sorted");
    }
    if (!out.empty() && e.start < out.back().up) {
      // Arrival during an outage: queued FCFS, service appended.
      out.back().up += e.duration;
    } else {
      out.push_back({e.start, e.start + e.duration});
    }
  }
  return out;
}

namespace {

std::vector<std::vector<TraceEvent>> split_by_node(const Trace& trace) {
  std::vector<std::vector<TraceEvent>> per_node(trace.node_count);
  for (const TraceEvent& e : trace.events) {
    per_node[e.node].push_back(e);
  }
  for (auto& events : per_node) {
    std::sort(events.begin(), events.end(),
              [](const TraceEvent& a, const TraceEvent& b) {
                return a.start < b.start;
              });
  }
  return per_node;
}

}  // namespace

std::vector<avail::InterruptionParams> extract_params(const Trace& trace) {
  if (trace.horizon <= 0) {
    throw std::invalid_argument("extract_params: non-positive horizon");
  }
  std::vector<avail::InterruptionParams> params(trace.node_count);
  std::vector<std::size_t> counts(trace.node_count, 0);
  for (const TraceEvent& e : trace.events) {
    params[e.node].mu += e.duration;
    ++counts[e.node];
  }
  for (std::size_t i = 0; i < trace.node_count; ++i) {
    if (counts[i] == 0) continue;
    params[i].mu /= static_cast<double>(counts[i]);
    params[i].lambda = static_cast<double>(counts[i]) / trace.horizon;
  }
  return params;
}

std::vector<std::vector<DownInterval>> extract_down_intervals(
    const Trace& trace) {
  const auto per_node = split_by_node(trace);
  std::vector<std::vector<DownInterval>> out;
  out.reserve(per_node.size());
  for (const auto& events : per_node) {
    out.push_back(merge_busy_periods(events));
  }
  return out;
}

std::vector<double> extract_availability(const Trace& trace) {
  if (trace.horizon <= 0) {
    throw std::invalid_argument("extract_availability: non-positive horizon");
  }
  const auto intervals = extract_down_intervals(trace);
  std::vector<double> out(trace.node_count, 1.0);
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    common::Seconds down = 0.0;
    for (const DownInterval& iv : intervals[i]) {
      down += std::min(iv.up, trace.horizon) - std::min(iv.down, trace.horizon);
    }
    out[i] = std::max(0.0, 1.0 - down / trace.horizon);
  }
  return out;
}

}  // namespace adapt::trace
