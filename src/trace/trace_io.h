// Trace serialization: a small CSV dialect so traces can be generated
// once, inspected with standard tools, and replayed across experiments.
//
// Format:
//   # adapt-trace v1 nodes=<n> horizon=<seconds>
//   node,start,duration
//   0,1234.5,60.0
//   ...
#pragma once

#include <iosfwd>
#include <string>

#include "trace/event.h"

namespace adapt::trace {

void write_trace(std::ostream& out, const Trace& trace);
void write_trace_file(const std::string& path, const Trace& trace);

// Throws std::runtime_error with a line number on malformed input.
Trace read_trace(std::istream& in);
Trace read_trace_file(const std::string& path);

}  // namespace adapt::trace
