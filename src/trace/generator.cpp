#include "trace/generator.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "availability/distribution.h"

namespace adapt::trace {

void calibrate_mtbi_population(double mean, double cov, double& log_mean,
                               double& log_sigma) {
  if (mean <= 0 || cov <= 0) {
    throw std::invalid_argument("calibrate_mtbi_population: bad targets");
  }
  // Pooled CoV^2 = 2 e^{s^2} - 1  =>  s^2 = ln((CoV^2 + 1) / 2).
  const double s2 = std::log((cov * cov + 1.0) / 2.0);
  if (s2 <= 0) {
    throw std::invalid_argument(
        "calibrate_mtbi_population: pooled CoV must exceed 1 (the "
        "exponential floor)");
  }
  log_sigma = std::sqrt(s2);
  // Pooled mean = harmonic mean = exp(m - s^2/2).
  log_mean = std::log(mean) + s2 / 2.0;
}

double calibrate_rho_cov(double mtbi_cov, double duration_cov) {
  const double ratio =
      (1.0 + duration_cov * duration_cov) / (1.0 + mtbi_cov * mtbi_cov);
  if (ratio <= 1.0) {
    throw std::invalid_argument(
        "calibrate_rho_cov: duration CoV must exceed MTBI CoV to "
        "decompose D = rho * M");
  }
  return std::sqrt(ratio - 1.0);
}

double calibrate_duration_population_cov(double pooled_cov,
                                         double within_cov) {
  const double ratio =
      (1.0 + pooled_cov * pooled_cov) / (1.0 + within_cov * within_cov);
  if (ratio <= 1.0) {
    throw std::invalid_argument(
        "calibrate_duration_population_cov: within-host CoV already "
        "exceeds the pooled target");
  }
  return std::sqrt(ratio - 1.0);
}

GeneratedTrace generate_seti_like_trace(const GeneratorConfig& config) {
  if (config.node_count == 0 || config.horizon <= 0) {
    throw std::invalid_argument("generator: empty configuration");
  }

  double mtbi_log_mean = 0.0;
  double mtbi_log_sigma = 0.0;
  double duration_pop_cov = 0.0;
  if (config.reading == Table1Reading::kPooledEvents) {
    calibrate_mtbi_population(config.mtbi_mean, config.mtbi_cov,
                              mtbi_log_mean, mtbi_log_sigma);
    duration_pop_cov = calibrate_duration_population_cov(
        config.duration_cov, config.duration_cov_within);
  } else {
    // Per-host reading: Table 1 gives the host population's moments.
    const double s2 = std::log1p(config.mtbi_cov * config.mtbi_cov);
    mtbi_log_sigma = std::sqrt(s2);
    mtbi_log_mean = std::log(config.mtbi_mean) - s2 / 2.0;
    duration_pop_cov = config.duration_cov;
  }

  const bool coupled = config.reading == Table1Reading::kPerHost;
  avail::DistributionPtr host_duration_means;
  double dur_a = 0.0;          // intercept of ln D on ln M
  double dur_eps_sigma = 0.0;  // residual sigma
  if (coupled) {
    // ln D = a + c ln M + eps with D's lognormal moments at the targets.
    const double c = config.duration_mtbi_coupling;
    const double s2_d = std::log1p(config.duration_cov * config.duration_cov);
    const double mean_ln_d = std::log(config.duration_mean) - s2_d / 2.0;
    const double resid = s2_d - c * c * mtbi_log_sigma * mtbi_log_sigma;
    if (resid < 0) {
      throw std::invalid_argument(
          "generator: duration_mtbi_coupling too large for the requested "
          "duration CoV");
    }
    dur_eps_sigma = std::sqrt(resid);
    dur_a = mean_ln_d - c * mtbi_log_mean;
  } else {
    host_duration_means =
        avail::lognormal_mean_cov(config.duration_mean, duration_pop_cov);
  }

  common::Rng master(config.seed);
  GeneratedTrace out;
  out.trace.node_count = config.node_count;
  out.trace.horizon = config.horizon;
  out.truth.resize(config.node_count);

  for (std::size_t i = 0; i < config.node_count; ++i) {
    common::Rng rng = master.fork(i);

    HostTruth& truth = out.truth[i];
    const double ln_mtbi = mtbi_log_mean + mtbi_log_sigma * rng.normal();
    truth.mtbi = std::max(config.min_host_mtbi, std::exp(ln_mtbi));
    truth.mean_duration = std::max(
        config.min_duration,
        coupled ? std::exp(dur_a +
                           config.duration_mtbi_coupling * ln_mtbi +
                           dur_eps_sigma * rng.normal())
                : host_duration_means->sample(rng));

    const auto durations = avail::lognormal_mean_cov(
        truth.mean_duration, config.duration_cov_within);

    common::Seconds t = rng.exponential(1.0 / truth.mtbi);
    while (t < config.horizon) {
      const double d =
          std::max(config.min_duration, durations->sample(rng));
      out.trace.events.push_back(
          {static_cast<NodeId>(i), t, d});
      t += rng.exponential(1.0 / truth.mtbi);
    }
  }

  std::sort(out.trace.events.begin(), out.trace.events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.node < b.node;
            });
  return out;
}

}  // namespace adapt::trace
