#include "availability/distribution.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace adapt::avail {

namespace {

std::string fmt(const char* name, double a) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%s(%.4g)", name, a);
  return buf;
}

std::string fmt(const char* name, double a, double b) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%s(%.4g, %.4g)", name, a, b);
  return buf;
}

void require(bool ok, const char* message) {
  if (!ok) throw std::invalid_argument(message);
}

class Exponential final : public Distribution {
 public:
  explicit Exponential(double mean) : mean_(mean) {
    require(mean > 0, "exponential: mean must be > 0");
  }
  double sample(common::Rng& rng) const override {
    return rng.exponential(1.0 / mean_);
  }
  double mean() const override { return mean_; }
  double variance() const override { return mean_ * mean_; }
  std::string describe() const override { return fmt("exp", mean_); }

 private:
  double mean_;
};

class Deterministic final : public Distribution {
 public:
  explicit Deterministic(double value) : value_(value) {
    require(value >= 0, "deterministic: value must be >= 0");
  }
  double sample(common::Rng&) const override { return value_; }
  double mean() const override { return value_; }
  double variance() const override { return 0.0; }
  std::string describe() const override { return fmt("det", value_); }

 private:
  double value_;
};

class LogNormal final : public Distribution {
 public:
  // mean/cov are the moments of the distribution itself:
  //   sigma^2 = ln(1 + cov^2),  mu = ln(mean) - sigma^2 / 2.
  LogNormal(double mean, double cov) : target_mean_(mean), target_cov_(cov) {
    require(mean > 0, "lognormal: mean must be > 0");
    require(cov > 0, "lognormal: cov must be > 0");
    sigma2_ = std::log1p(cov * cov);
    mu_ = std::log(mean) - sigma2_ / 2.0;
  }
  double sample(common::Rng& rng) const override {
    return std::exp(mu_ + std::sqrt(sigma2_) * rng.normal());
  }
  double mean() const override { return target_mean_; }
  double variance() const override {
    const double m = target_mean_;
    return m * m * target_cov_ * target_cov_;
  }
  std::string describe() const override {
    return fmt("lognormal", target_mean_, target_cov_);
  }

 private:
  double target_mean_;
  double target_cov_;
  double mu_;
  double sigma2_;
};

class Weibull final : public Distribution {
 public:
  Weibull(double shape, double scale) : shape_(shape), scale_(scale) {
    require(shape > 0, "weibull: shape must be > 0");
    require(scale > 0, "weibull: scale must be > 0");
  }
  double sample(common::Rng& rng) const override {
    // Inverse CDF: scale * (-ln(1 - u))^(1/shape).
    const double u = rng.uniform();
    return scale_ * std::pow(-std::log1p(-u), 1.0 / shape_);
  }
  double mean() const override {
    return scale_ * std::tgamma(1.0 + 1.0 / shape_);
  }
  double variance() const override {
    const double g1 = std::tgamma(1.0 + 1.0 / shape_);
    const double g2 = std::tgamma(1.0 + 2.0 / shape_);
    return scale_ * scale_ * (g2 - g1 * g1);
  }
  std::string describe() const override {
    return fmt("weibull", shape_, scale_);
  }

 private:
  double shape_;
  double scale_;
};

class Pareto final : public Distribution {
 public:
  // Lomax: pdf alpha * lambda^alpha / (x + lambda)^(alpha+1), mean
  // lambda / (alpha - 1). Given a target mean we solve for lambda.
  Pareto(double mean, double alpha) : alpha_(alpha) {
    require(mean > 0, "pareto: mean must be > 0");
    require(alpha > 2, "pareto: alpha must be > 2 for finite variance");
    lambda_ = mean * (alpha - 1.0);
  }
  double sample(common::Rng& rng) const override {
    const double u = rng.uniform();
    return lambda_ * (std::pow(1.0 - u, -1.0 / alpha_) - 1.0);
  }
  double mean() const override { return lambda_ / (alpha_ - 1.0); }
  double variance() const override {
    const double m = mean();
    return m * m * alpha_ / (alpha_ - 2.0);
  }
  std::string describe() const override {
    return fmt("pareto", mean(), alpha_);
  }

 private:
  double alpha_;
  double lambda_;
};

class UniformRange final : public Distribution {
 public:
  UniformRange(double lo, double hi) : lo_(lo), hi_(hi) {
    require(lo >= 0 && hi > lo, "uniform: requires 0 <= lo < hi");
  }
  double sample(common::Rng& rng) const override {
    return rng.uniform(lo_, hi_);
  }
  double mean() const override { return (lo_ + hi_) / 2.0; }
  double variance() const override {
    const double w = hi_ - lo_;
    return w * w / 12.0;
  }
  std::string describe() const override { return fmt("uniform", lo_, hi_); }

 private:
  double lo_;
  double hi_;
};

class Empirical final : public Distribution {
 public:
  explicit Empirical(std::vector<double> samples)
      : samples_(std::move(samples)) {
    require(!samples_.empty(), "empirical: needs at least one sample");
    double sum = 0.0;
    for (double s : samples_) {
      require(s >= 0, "empirical: samples must be >= 0");
      sum += s;
    }
    mean_ = sum / static_cast<double>(samples_.size());
    double sq = 0.0;
    for (double s : samples_) sq += (s - mean_) * (s - mean_);
    variance_ = samples_.size() > 1
                    ? sq / static_cast<double>(samples_.size() - 1)
                    : 0.0;
  }
  double sample(common::Rng& rng) const override {
    return samples_[rng.uniform_index(samples_.size())];
  }
  double mean() const override { return mean_; }
  double variance() const override { return variance_; }
  std::string describe() const override {
    return fmt("empirical[n]", static_cast<double>(samples_.size()));
  }

 private:
  std::vector<double> samples_;
  double mean_;
  double variance_;
};

std::vector<double> split_numbers(const std::string& spec, std::size_t from) {
  std::vector<double> out;
  std::size_t pos = from;
  while (pos < spec.size()) {
    std::size_t next = spec.find(':', pos);
    if (next == std::string::npos) next = spec.size();
    out.push_back(std::stod(spec.substr(pos, next - pos)));
    pos = next + 1;
  }
  return out;
}

}  // namespace

DistributionPtr exponential(double mean) {
  return std::make_shared<Exponential>(mean);
}

DistributionPtr deterministic(double value) {
  return std::make_shared<Deterministic>(value);
}

DistributionPtr lognormal_mean_cov(double mean, double cov) {
  return std::make_shared<LogNormal>(mean, cov);
}

DistributionPtr weibull(double shape, double scale) {
  return std::make_shared<Weibull>(shape, scale);
}

DistributionPtr pareto_mean_shape(double mean, double alpha) {
  return std::make_shared<Pareto>(mean, alpha);
}

DistributionPtr uniform_range(double lo, double hi) {
  return std::make_shared<UniformRange>(lo, hi);
}

DistributionPtr empirical(std::vector<double> samples) {
  return std::make_shared<Empirical>(std::move(samples));
}

DistributionPtr parse_distribution(const std::string& spec) {
  const auto colon = spec.find(':');
  if (colon == std::string::npos) {
    throw std::invalid_argument("distribution spec needs 'name:params': " +
                                spec);
  }
  const std::string name = spec.substr(0, colon);
  const std::vector<double> p = split_numbers(spec, colon + 1);
  auto arity = [&](std::size_t n) {
    if (p.size() != n) {
      throw std::invalid_argument("distribution '" + name + "' expects " +
                                  std::to_string(n) + " parameter(s): " + spec);
    }
  };
  if (name == "exp" || name == "exponential") {
    arity(1);
    return exponential(p[0]);
  }
  if (name == "det" || name == "deterministic") {
    arity(1);
    return deterministic(p[0]);
  }
  if (name == "lognormal") {
    arity(2);
    return lognormal_mean_cov(p[0], p[1]);
  }
  if (name == "weibull") {
    arity(2);
    return weibull(p[0], p[1]);
  }
  if (name == "pareto") {
    arity(2);
    return pareto_mean_shape(p[0], p[1]);
  }
  if (name == "uniform") {
    arity(2);
    return uniform_range(p[0], p[1]);
  }
  throw std::invalid_argument("unknown distribution: " + spec);
}

}  // namespace adapt::avail
