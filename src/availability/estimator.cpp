#include "availability/estimator.h"

#include <algorithm>
#include <stdexcept>

namespace adapt::avail {

AvailabilityEstimator::AvailabilityEstimator(common::Seconds start)
    : start_(start) {}

void AvailabilityEstimator::record_down(common::Seconds now) {
  if (currently_down()) {
    throw std::logic_error("record_down: host already down");
  }
  if (now < start_) throw std::invalid_argument("record_down: time reversed");
  ++downs_;
  down_since_ = now;
}

void AvailabilityEstimator::record_up(common::Seconds now) {
  if (!currently_down()) {
    throw std::logic_error("record_up: host already up");
  }
  if (now < down_since_) {
    throw std::invalid_argument("record_up: time reversed");
  }
  total_downtime_ += now - down_since_;
  ++recoveries_;
  down_since_ = -1.0;
}

InterruptionParams AvailabilityEstimator::estimate(common::Seconds now) const {
  InterruptionParams p;
  // A down-transition is an M/G/1 busy-period *start*: arrivals landing
  // while the host is already down only extend the outage and are never
  // observed as transitions. Transition starts happen at rate
  // lambda*(1-rho) per wall-clock second but at rate lambda per *uptime*
  // second, so uptime — wall clock minus accumulated downtime, including
  // an in-progress outage — is the exposure to divide by. Dividing by
  // wall clock would bias lambda low by exactly the factor (1-rho),
  // under-penalizing the flaky hosts Eq. 5 exists to down-weight.
  double downtime = total_downtime_;
  if (currently_down()) downtime += now - down_since_;
  const double uptime = (now - start_) - downtime;
  if (uptime > 0 && downs_ > 0) {
    p.lambda = static_cast<double>(downs_) / uptime;
  }
  if (recoveries_ > 0) {
    // An in-progress outage contributes its elapsed portion so that a
    // host stuck down is not scored by its historic short repairs alone.
    double downtime = total_downtime_;
    std::size_t n = recoveries_;
    common::Seconds elapsed = 0.0;
    if (currently_down()) {
      elapsed = now - down_since_;
      downtime += elapsed;
      ++n;
    }
    p.mu = downtime / static_cast<double>(n);
    // The ongoing outage is a *censored* observation: its true length is
    // at least `elapsed`, so the mean repair time cannot honestly be
    // reported below that floor. Without it a host with a history of
    // short repairs that has now been down for hours keeps advertising
    // its old small mu, and the predictor keeps over-weighting a node
    // that is effectively gone.
    p.mu = std::max(p.mu, elapsed);
  } else if (currently_down()) {
    p.mu = now - down_since_;
  }
  return p;
}

}  // namespace adapt::avail
