// Memoization of Eq. 5 evaluations on the placement hot path.
//
// E[T](lambda, mu, gamma) is a pure function, but costs an expm1 plus a
// handful of divides per call, and the NameNode evaluates it for every
// node on every predictor refresh — while real clusters have far fewer
// *distinct* (lambda, mu) profiles than nodes (availability classes,
// repeated heartbeat estimates). The cache keys on the exact bit
// patterns of the three doubles, so a hit returns the identical double
// the direct computation would produce and staleness is structurally
// impossible: a changed parameter is a changed key, never a wrong value.
//
// invalidate() exists for hygiene, not correctness — the predictor
// flushes when gamma moves (every prior entry's key just became
// unreachable dead weight) and the cache self-flushes at a size bound
// so an adversarial key stream cannot grow it without limit.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "availability/interruption_model.h"

namespace adapt::avail {

class TaskTimeCache {
 public:
  TaskTimeCache();

  // Memoized expected_task_time(p, gamma); bit-exact vs the direct call.
  double expected_task_time(const InterruptionParams& p, double gamma);

  // Drop every entry (size/stats for hits and misses are kept).
  void invalidate();

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t invalidations = 0;
  };
  const Stats& stats() const { return stats_; }
  std::size_t size() const { return used_; }

 private:
  struct Entry {
    std::uint64_t lambda_bits = 0;
    std::uint64_t mu_bits = 0;
    std::uint64_t gamma_bits = 0;
    double value = 0.0;
    bool occupied = false;
  };

  static std::uint64_t mix(std::uint64_t a, std::uint64_t b,
                           std::uint64_t c);
  Entry* find_slot(std::uint64_t lambda_bits, std::uint64_t mu_bits,
                   std::uint64_t gamma_bits);
  void grow();

  std::vector<Entry> slots_;  // power-of-two, linear probing
  std::size_t used_ = 0;
  Stats stats_;
};

}  // namespace adapt::avail
