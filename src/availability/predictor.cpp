#include "availability/predictor.h"

#include <stdexcept>

namespace adapt::avail {

PerformancePredictor::PerformancePredictor(std::size_t node_count,
                                           double gamma_prior)
    : params_(node_count), gamma_prior_(gamma_prior) {
  if (node_count == 0) {
    throw std::invalid_argument("predictor: need at least one node");
  }
  if (gamma_prior <= 0) {
    throw std::invalid_argument("predictor: gamma prior must be > 0");
  }
}

void PerformancePredictor::set_params(std::size_t node,
                                      const InterruptionParams& p) {
  params_.at(node) = p;
}

const InterruptionParams& PerformancePredictor::params(
    std::size_t node) const {
  return params_.at(node);
}

void PerformancePredictor::record_task_length(double gamma_observed) {
  if (gamma_observed <= 0) {
    throw std::invalid_argument("predictor: observed gamma must be > 0");
  }
  const double before = gamma();
  gamma_samples_.add(gamma_observed);
  // A moved gamma re-keys every lookup; the old entries are dead weight.
  if (gamma() != before) active_cache()->invalidate();
}

void PerformancePredictor::set_shared_cache(TaskTimeCache* shared) {
  shared_cache_ = shared;
}

double PerformancePredictor::gamma() const {
  return gamma_samples_.count() > 0 ? gamma_samples_.mean() : gamma_prior_;
}

double PerformancePredictor::expected_task_time(std::size_t node) const {
  return active_cache()->expected_task_time(params_.at(node), gamma());
}

std::vector<double> PerformancePredictor::expected_task_times() const {
  std::vector<double> out;
  out.reserve(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    out.push_back(expected_task_time(i));
  }
  return out;
}

}  // namespace adapt::avail
