// Online estimation of a host's interruption parameters from observed
// up/down transitions.
//
// The paper's NameNode keeps only "a data structure with two double data
// types ... the interruption arrival rate and recovery time for each
// node", updated from heartbeat arrivals/misses. This estimator is that
// data structure: O(1) memory, fed by transition events, queryable at any
// time for the current (lambda, mu) estimate.
#pragma once

#include "availability/interruption_model.h"
#include "common/units.h"

namespace adapt::avail {

class AvailabilityEstimator {
 public:
  // `now` timestamps are simulation seconds and must be non-decreasing.
  // Constructed at the moment observation starts (host assumed up).
  explicit AvailabilityEstimator(common::Seconds start = 0.0);

  // Host transitioned up -> down (first missed heartbeat) at `now`.
  void record_down(common::Seconds now);

  // Host transitioned down -> up (heartbeats resumed) at `now`.
  void record_up(common::Seconds now);

  // Current estimate. lambda = interruptions / observed *uptime* (the
  // exposure during which a new interruption can arrive; wall-clock time
  // would bias lambda low by (1-rho) on flaky hosts);
  // mu = mean downtime, counting an ongoing outage as a censored
  // observation: its elapsed length both joins the average and floors
  // the estimate (mu >= elapsed), so a host that has been down for hours
  // stops advertising its historic short repairs. Before the first
  // interruption completes, falls back to `prior` (a host with no
  // observed interruptions is treated as reliable: lambda estimate 0).
  InterruptionParams estimate(common::Seconds now) const;

  std::size_t interruptions_observed() const { return downs_; }
  bool currently_down() const { return down_since_ >= 0.0; }

 private:
  common::Seconds start_;
  std::size_t downs_ = 0;
  std::size_t recoveries_ = 0;
  double total_downtime_ = 0.0;
  common::Seconds down_since_ = -1.0;  // < 0 when up
};

}  // namespace adapt::avail
