#include "availability/interruption_model.h"

#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

namespace adapt::avail {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

void validate(const InterruptionParams& p, double gamma) {
  if (p.lambda < 0) throw std::invalid_argument("lambda must be >= 0");
  if (p.mu < 0) throw std::invalid_argument("mu must be >= 0");
  if (gamma <= 0) throw std::invalid_argument("gamma must be > 0");
}

}  // namespace

double InterruptionParams::mtbi() const {
  return lambda > 0 ? 1.0 / lambda : kInf;
}

double InterruptionParams::utilization() const { return lambda * mu; }

double InterruptionParams::steady_state_availability() const {
  const double rho = utilization();
  return rho < 1.0 ? 1.0 - rho : 0.0;
}

bool InterruptionParams::stable() const { return utilization() < 1.0; }

std::string InterruptionParams::describe() const {
  char buf[128];
  std::snprintf(buf, sizeof buf, "lambda=%.6g mu=%.6g (rho=%.4g)", lambda, mu,
                utilization());
  return buf;
}

double expected_rework(const InterruptionParams& p, double gamma) {
  validate(p, gamma);
  if (p.lambda == 0) return 0.0;
  // 1/lambda - gamma / (e^{gamma*lambda} - 1), written with expm1 for
  // accuracy at small gamma*lambda.
  return 1.0 / p.lambda - gamma / std::expm1(gamma * p.lambda);
}

double expected_downtime(const InterruptionParams& p) {
  if (p.lambda < 0 || p.mu < 0) {
    throw std::invalid_argument("negative interruption parameters");
  }
  if (!p.stable()) return kInf;
  return p.mu / (1.0 - p.lambda * p.mu);
}

double expected_failed_attempts(const InterruptionParams& p, double gamma) {
  validate(p, gamma);
  return std::expm1(gamma * p.lambda);
}

double expected_task_time(const InterruptionParams& p, double gamma) {
  validate(p, gamma);
  if (p.lambda == 0) return gamma;
  if (!p.stable()) return kInf;
  return std::expm1(gamma * p.lambda) *
         (1.0 / p.lambda + expected_downtime(p));
}

double expected_task_time_recomposed(const InterruptionParams& p,
                                     double gamma) {
  validate(p, gamma);
  if (p.lambda == 0) return gamma;
  if (!p.stable()) return kInf;
  const double ex = expected_rework(p, gamma);
  const double ey = expected_downtime(p);
  const double es = expected_failed_attempts(p, gamma);
  return gamma + es * (ex + ey);
}

}  // namespace adapt::avail
