#include "availability/task_time_cache.h"

namespace adapt::avail {

namespace {

constexpr std::size_t kInitialSlots = 64;  // power of two
// Beyond this many live entries the key stream is clearly not a set of
// node availability classes; flush rather than grow without bound.
constexpr std::size_t kMaxEntries = 1u << 16;

std::uint64_t splitmix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

TaskTimeCache::TaskTimeCache() : slots_(kInitialSlots) {}

std::uint64_t TaskTimeCache::mix(std::uint64_t a, std::uint64_t b,
                                 std::uint64_t c) {
  return splitmix(splitmix(splitmix(a) ^ b) ^ c);
}

TaskTimeCache::Entry* TaskTimeCache::find_slot(std::uint64_t lambda_bits,
                                               std::uint64_t mu_bits,
                                               std::uint64_t gamma_bits) {
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = mix(lambda_bits, mu_bits, gamma_bits) & mask;
  while (slots_[i].occupied &&
         (slots_[i].lambda_bits != lambda_bits ||
          slots_[i].mu_bits != mu_bits ||
          slots_[i].gamma_bits != gamma_bits)) {
    i = (i + 1) & mask;
  }
  return &slots_[i];
}

void TaskTimeCache::grow() {
  std::vector<Entry> old = std::move(slots_);
  slots_.assign(old.size() * 2, Entry{});
  for (const Entry& e : old) {
    if (e.occupied) {
      *find_slot(e.lambda_bits, e.mu_bits, e.gamma_bits) = e;
    }
  }
}

double TaskTimeCache::expected_task_time(const InterruptionParams& p,
                                         double gamma) {
  const auto lambda_bits = std::bit_cast<std::uint64_t>(p.lambda);
  const auto mu_bits = std::bit_cast<std::uint64_t>(p.mu);
  const auto gamma_bits = std::bit_cast<std::uint64_t>(gamma);
  Entry* slot = find_slot(lambda_bits, mu_bits, gamma_bits);
  if (slot->occupied) {
    ++stats_.hits;
    return slot->value;
  }
  ++stats_.misses;
  // Compute before inserting: avail::expected_task_time throws on
  // invalid parameters and the cache must not remember a key it never
  // produced a value for.
  const double value = avail::expected_task_time(p, gamma);
  slot->occupied = true;
  slot->lambda_bits = lambda_bits;
  slot->mu_bits = mu_bits;
  slot->gamma_bits = gamma_bits;
  slot->value = value;
  ++used_;
  if (used_ >= kMaxEntries) {
    invalidate();
  } else if (used_ * 4 >= slots_.size() * 3) {  // load factor 0.75
    grow();
  }
  return value;
}

void TaskTimeCache::invalidate() {
  slots_.assign(kInitialSlots, Entry{});
  used_ = 0;
  ++stats_.invalidations;
}

}  // namespace adapt::avail
