// The paper's Section III stochastic model.
//
// Each host is an M/G/1 queue of interruptions: inter-arrivals are
// exponential with rate lambda (= 1/MTBI); interruption service (repair)
// times follow a general distribution with mean mu; overlapping
// interruptions queue FCFS, so the downtime an interruption starts is the
// M/G/1 busy period. For a map task whose failure-free length is gamma:
//
//   E[X] = 1/lambda + gamma / (1 - e^{gamma*lambda})        (Eq. 2)
//   E[Y] = mu / (1 - lambda*mu)                             (Eq. 3)
//   E[S] = e^{gamma*lambda} - 1                             (Eq. 4)
//   E[T] = (e^{gamma*lambda} - 1)(1/lambda + E[Y])          (Eq. 5)
//
// with E[T] -> gamma as lambda -> 0 and E[T] -> infinity as the
// utilization rho = lambda*mu -> 1.
#pragma once

#include <string>

namespace adapt::avail {

// Availability parameters of one host, as the NameNode's Performance
// Predictor sees them.
struct InterruptionParams {
  double lambda = 0.0;  // interruption arrival rate, 1/seconds
  double mu = 0.0;      // mean interruption service (repair) time, seconds

  double mtbi() const;         // 1/lambda; +inf when lambda == 0
  double utilization() const;  // rho = lambda * mu
  // Fraction of time the host is up in steady state: 1 - rho (0 if
  // unstable). This is also the paper's "naive" weight (MTBI - mu)/MTBI.
  double steady_state_availability() const;
  bool stable() const;  // rho < 1

  std::string describe() const;
};

// Expected rework lost to one interrupted attempt (Eq. 2).
double expected_rework(const InterruptionParams& p, double gamma);

// Expected downtime per interruption, the M/G/1 busy period (Eq. 3).
// +inf when the queue is unstable.
double expected_downtime(const InterruptionParams& p);

// Expected number of failed attempts before a success (Eq. 4).
double expected_failed_attempts(const InterruptionParams& p, double gamma);

// Expected completion time of a task of failure-free length gamma
// (Eq. 5). Returns gamma when lambda == 0 and +inf when unstable.
double expected_task_time(const InterruptionParams& p, double gamma);

// Variance helpers used by tests to check model self-consistency.
// E[T] recomposed as gamma + E[S] * (E[X] + E[Y]); equal to Eq. 5
// analytically, so any drift flags an implementation bug.
double expected_task_time_recomposed(const InterruptionParams& p,
                                     double gamma);

}  // namespace adapt::avail
