// The ADAPT Performance Predictor (paper Fig. 2).
//
// Lives on the NameNode. Combines (a) per-node interruption parameters —
// either ground truth supplied by an experiment or estimates from the
// heartbeat collector — with (b) the failure-free map-task length gamma
// learned from completed-task logs, and produces the per-node expected
// task time E[T_i] that drives Algorithm 1.
#pragma once

#include <cstddef>
#include <vector>

#include "availability/interruption_model.h"
#include "common/stats.h"

namespace adapt::avail {

class PerformancePredictor {
 public:
  // n nodes, all initially assumed perfectly available (lambda = mu = 0),
  // with a prior failure-free task length.
  PerformancePredictor(std::size_t node_count, double gamma_prior);

  std::size_t node_count() const { return params_.size(); }

  // Replace the availability parameters of one node (heartbeat-collector
  // update path, or experiment ground truth).
  void set_params(std::size_t node, const InterruptionParams& p);
  const InterruptionParams& params(std::size_t node) const;

  // Feed one completed local task's failure-free execution time (the
  // "logging services of Hadoop" input). The gamma used for prediction
  // is the running mean, falling back to the prior until data arrives.
  void record_task_length(double gamma_observed);
  double gamma() const;

  // E[T_i] for a task of the current gamma on node i (Eq. 5).
  double expected_task_time(std::size_t node) const;

  // All nodes' E[T], in node order.
  std::vector<double> expected_task_times() const;

 private:
  std::vector<InterruptionParams> params_;
  double gamma_prior_;
  common::RunningStats gamma_samples_;
};

}  // namespace adapt::avail
