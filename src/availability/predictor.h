// The ADAPT Performance Predictor (paper Fig. 2).
//
// Lives on the NameNode. Combines (a) per-node interruption parameters —
// either ground truth supplied by an experiment or estimates from the
// heartbeat collector — with (b) the failure-free map-task length gamma
// learned from completed-task logs, and produces the per-node expected
// task time E[T_i] that drives Algorithm 1.
#pragma once

#include <cstddef>
#include <vector>

#include "availability/interruption_model.h"
#include "availability/task_time_cache.h"
#include "common/stats.h"

namespace adapt::avail {

class PerformancePredictor {
 public:
  // n nodes, all initially assumed perfectly available (lambda = mu = 0),
  // with a prior failure-free task length.
  PerformancePredictor(std::size_t node_count, double gamma_prior);

  std::size_t node_count() const { return params_.size(); }

  // Replace the availability parameters of one node (heartbeat-collector
  // update path, or experiment ground truth).
  void set_params(std::size_t node, const InterruptionParams& p);
  const InterruptionParams& params(std::size_t node) const;

  // Feed one completed local task's failure-free execution time (the
  // "logging services of Hadoop" input). The gamma used for prediction
  // is the running mean, falling back to the prior until data arrives.
  void record_task_length(double gamma_observed);
  double gamma() const;

  // E[T_i] for a task of the current gamma on node i (Eq. 5). Memoized
  // through a TaskTimeCache; bit-exact vs the direct Eq. 5 evaluation.
  double expected_task_time(std::size_t node) const;

  // All nodes' E[T], in node order.
  std::vector<double> expected_task_times() const;

  // Route E[T] evaluations through an external cache instead of the
  // predictor's own — lets repeated policy rebuilds (churn recovery
  // refreshing its destination policy per dead-node event) reuse one
  // memo table. Pass nullptr to return to the internal cache. The
  // caller keeps `shared` alive for the predictor's lifetime.
  void set_shared_cache(TaskTimeCache* shared);

  // The cache currently in effect (internal unless shared).
  const TaskTimeCache& task_time_cache() const { return *active_cache(); }

 private:
  TaskTimeCache* active_cache() const {
    return shared_cache_ != nullptr ? shared_cache_ : &own_cache_;
  }

  std::vector<InterruptionParams> params_;
  double gamma_prior_;
  common::RunningStats gamma_samples_;
  // Memoizes (lambda, mu, gamma) -> E[T]. Keys are value bit patterns,
  // so set_params never stales it; gamma refreshes flush it because
  // every old key becomes unreachable.
  mutable TaskTimeCache own_cache_;
  TaskTimeCache* shared_cache_ = nullptr;
};

}  // namespace adapt::avail
