// Probability distributions for interruption inter-arrival and service
// (recovery) times.
//
// The paper's model assumes exponential inter-arrivals and a *general*
// service distribution (M/G/1); the evaluation injects from "the assumed
// distributions". This library supplies the standard candidates so both
// the injector and the trace generator can be configured per experiment,
// and so tests can verify the model against service distributions with
// very different tail behaviour.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"

namespace adapt::avail {

// A positive continuous distribution. Implementations are immutable and
// cheap to share.
class Distribution {
 public:
  virtual ~Distribution() = default;

  virtual double sample(common::Rng& rng) const = 0;
  virtual double mean() const = 0;
  virtual double variance() const = 0;
  virtual std::string describe() const = 0;
};

using DistributionPtr = std::shared_ptr<const Distribution>;

// Exponential with given mean (rate = 1/mean).
DistributionPtr exponential(double mean);

// Deterministic point mass; handy for tests and for a D/…/1 ablation.
DistributionPtr deterministic(double value);

// Lognormal parameterized by its *target* mean and coefficient of
// variation, the form in which the SETI@home summary (Table 1) is given.
DistributionPtr lognormal_mean_cov(double mean, double cov);

// Weibull parameterized by shape k and scale lambda.
DistributionPtr weibull(double shape, double scale);

// Pareto (Lomax, shifted to start at 0) with given mean and shape alpha.
// alpha must exceed 2 for a finite variance.
DistributionPtr pareto_mean_shape(double mean, double alpha);

// Uniform on [lo, hi].
DistributionPtr uniform_range(double lo, double hi);

// Resamples from an observed data set (with replacement). Used to drive
// the simulator directly from trace measurements.
DistributionPtr empirical(std::vector<double> samples);

// Parses "exp:4", "det:8", "lognormal:109380:7.39", "weibull:0.5:100",
// "pareto:100:2.5", "uniform:2:10". Throws std::invalid_argument on junk.
DistributionPtr parse_distribution(const std::string& spec);

}  // namespace adapt::avail
