#include "runner/report.h"

#include <cstdio>
#include <stdexcept>

#include "common/jsonfmt.h"

namespace adapt::runner {

namespace {

using common::json_escape;
using common::json_number;

void append_metrics(
    std::string& out,
    const std::vector<std::pair<std::string, double>>& metrics) {
  out += "{";
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    if (i > 0) out += ", ";
    out += "\"" + json_escape(metrics[i].first) +
           "\": " + json_number(metrics[i].second);
  }
  out += "}";
}

}  // namespace

Report::Report(std::string bench, std::uint64_t seed, int runs)
    : bench_(std::move(bench)), seed_(seed), runs_(runs) {}

void Report::add_result(const std::string& sweep, const std::string& point,
                        const std::string& series,
                        const core::RepeatedResult& result) {
  Row row;
  row.sweep = sweep;
  row.point = point;
  row.series = series;
  row.metrics = {
      {"elapsed_mean", result.elapsed.mean},
      {"elapsed_stddev", result.elapsed.stddev},
      {"elapsed_p95", result.elapsed.p95},
      {"elapsed_ci95", result.elapsed.ci95_half_width},
      {"locality_mean", result.locality.mean},
      {"rework_ratio", result.rework_ratio},
      {"recovery_ratio", result.recovery_ratio},
      {"migration_ratio", result.migration_ratio},
      {"misc_ratio", result.misc_ratio},
      {"total_ratio", result.total_ratio},
      {"samples", static_cast<double>(result.elapsed.count)},
      {"failed_runs", static_cast<double>(result.failed_runs)},
      {"nodes_departed", static_cast<double>(result.nodes_departed)},
      {"nodes_dead", static_cast<double>(result.nodes_dead)},
      {"blocks_lost", static_cast<double>(result.blocks_lost)},
      {"tasks_lost", static_cast<double>(result.tasks_lost)},
      {"rereplications", static_cast<double>(result.rereplications)},
      {"rereplication_giveups",
       static_cast<double>(result.rereplication_giveups)},
      {"rereplication_bytes",
       static_cast<double>(result.rereplication_bytes)},
  };
  rows_.push_back(std::move(row));
}

void Report::add_row(const std::string& sweep, const std::string& point,
                     const std::string& series,
                     std::vector<std::pair<std::string, double>> metrics) {
  Row row;
  row.sweep = sweep;
  row.point = point;
  row.series = series;
  row.metrics = std::move(metrics);
  rows_.push_back(std::move(row));
}

void Report::set_config(const std::string& key, double value) {
  config_.emplace_back(key, value);
}

void Report::set_observability(
    const std::vector<obs::RunObservations>& runs) {
  have_obs_ = true;
  obs_metrics_ = obs::MetricsSnapshot{};
  obs_records_.clear();
  obs_dropped_.clear();
  obs_replays_.clear();
  obs_span_counts_.clear();
  obs_sample_counts_.clear();
  obs_calibrations_.clear();
  bool any_spans = false;
  bool any_samples = false;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const obs::RunObservations& run = runs[i];
    obs_metrics_.merge(run.metrics);
    obs_records_.push_back(run.records.size());
    obs_dropped_.push_back(run.dropped);
    if (!run.records.empty()) {
      obs_replays_.push_back(obs::replay(run.records));
    }
    obs_span_counts_.push_back(run.spans.size());
    obs_sample_counts_.push_back(run.timeseries.times.size());
    any_spans = any_spans || !run.spans.empty();
    any_samples = any_samples || !run.timeseries.empty();
    if (!run.calibration.empty()) {
      obs_calibrations_.emplace_back(i, run.calibration);
    }
  }
  if (!any_spans) obs_span_counts_.clear();
  if (!any_samples) obs_sample_counts_.clear();
}

std::string Report::to_json() const {
  std::string out;
  out += "{\n";
  out += "  \"bench\": \"" + json_escape(bench_) + "\",\n";
  out += "  \"seed\": " + std::to_string(seed_) + ",\n";
  out += "  \"runs\": " + std::to_string(runs_) + ",\n";
  out += "  \"config\": ";
  append_metrics(out, config_);
  if (have_obs_) {
    out += ",\n  \"observability\": {\n    \"metrics\": ";
    obs_metrics_.append_json(out, "    ");
    out += ",\n    \"trace_records\": [";
    for (std::size_t i = 0; i < obs_records_.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(obs_records_[i]);
    }
    out += "],\n    \"trace_dropped\": [";
    for (std::size_t i = 0; i < obs_dropped_.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(obs_dropped_[i]);
    }
    out += "],\n    \"timelines\": [";
    for (std::size_t i = 0; i < obs_replays_.size(); ++i) {
      const obs::ReplaySummary& rs = obs_replays_[i];
      out += i > 0 ? ",\n" : "\n";
      out += "      {\"run\": " + std::to_string(i) +
             ", \"elapsed\": " + json_number(rs.elapsed) +
             ", \"downtime\": " + json_number(rs.total_downtime) +
             ", \"busy\": " + json_number(rs.total_busy) +
             ", \"recovery\": " + json_number(rs.recovery_node_seconds) +
             ", \"nodes\": [";
      for (std::size_t n = 0; n < rs.nodes.size(); ++n) {
        const obs::NodeTotals& nt = rs.nodes[n];
        if (n > 0) out += ", ";
        out += "{\"node\": " + std::to_string(n) +
               ", \"transitions\": " + std::to_string(nt.transitions) +
               ", \"attempts\": " + std::to_string(nt.attempts) +
               ", \"downtime\": " + json_number(nt.downtime) +
               ", \"busy\": " + json_number(nt.busy) + "}";
      }
      out += "]}";
    }
    out += obs_replays_.empty() ? "]" : "\n    ]";
    if (!obs_span_counts_.empty()) {
      out += ",\n    \"spans\": [";
      for (std::size_t i = 0; i < obs_span_counts_.size(); ++i) {
        if (i > 0) out += ", ";
        out += std::to_string(obs_span_counts_[i]);
      }
      out += "]";
    }
    if (!obs_sample_counts_.empty()) {
      out += ",\n    \"samples\": [";
      for (std::size_t i = 0; i < obs_sample_counts_.size(); ++i) {
        if (i > 0) out += ", ";
        out += std::to_string(obs_sample_counts_[i]);
      }
      out += "]";
    }
    if (!obs_calibrations_.empty()) {
      out += ",\n    \"calibration\": [";
      for (std::size_t i = 0; i < obs_calibrations_.size(); ++i) {
        out += i > 0 ? ",\n" : "\n";
        out += "      {\"run\": " +
               std::to_string(obs_calibrations_[i].first) +
               ", \"summary\": ";
        obs_calibrations_[i].second.append_json(out);
        out += "}";
      }
      out += "\n    ]";
    }
    out += "\n  }";
  }
  out += ",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const Row& row = rows_[i];
    out += "    {\"sweep\": \"" + json_escape(row.sweep) + "\", ";
    out += "\"point\": \"" + json_escape(row.point) + "\", ";
    out += "\"series\": \"" + json_escape(row.series) + "\", ";
    out += "\"metrics\": ";
    append_metrics(out, row.metrics);
    out += i + 1 < rows_.size() ? "},\n" : "}\n";
  }
  out += "  ]\n}\n";
  return out;
}

void Report::write(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    throw std::runtime_error("report: cannot open " + path);
  }
  const std::string json = to_json();
  const std::size_t written =
      std::fwrite(json.data(), 1, json.size(), file);
  const int close_rc = std::fclose(file);
  if (written != json.size() || close_rc != 0) {
    throw std::runtime_error("report: short write to " + path);
  }
}

}  // namespace adapt::runner
