#include "runner/report.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace adapt::runner {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  // JSON has no Infinity/NaN; emit null so consumers fail loudly rather
  // than parse garbage.
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void append_metrics(
    std::string& out,
    const std::vector<std::pair<std::string, double>>& metrics) {
  out += "{";
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    if (i > 0) out += ", ";
    out += "\"" + json_escape(metrics[i].first) +
           "\": " + json_number(metrics[i].second);
  }
  out += "}";
}

}  // namespace

Report::Report(std::string bench, std::uint64_t seed, int runs)
    : bench_(std::move(bench)), seed_(seed), runs_(runs) {}

void Report::add_result(const std::string& sweep, const std::string& point,
                        const std::string& series,
                        const core::RepeatedResult& result) {
  Row row;
  row.sweep = sweep;
  row.point = point;
  row.series = series;
  row.metrics = {
      {"elapsed_mean", result.elapsed.mean},
      {"elapsed_stddev", result.elapsed.stddev},
      {"elapsed_p95", result.elapsed.p95},
      {"elapsed_ci95", result.elapsed.ci95_half_width},
      {"locality_mean", result.locality.mean},
      {"rework_ratio", result.rework_ratio},
      {"recovery_ratio", result.recovery_ratio},
      {"migration_ratio", result.migration_ratio},
      {"misc_ratio", result.misc_ratio},
      {"total_ratio", result.total_ratio},
      {"samples", static_cast<double>(result.elapsed.count)},
  };
  rows_.push_back(std::move(row));
}

void Report::set_config(const std::string& key, double value) {
  config_.emplace_back(key, value);
}

std::string Report::to_json() const {
  std::string out;
  out += "{\n";
  out += "  \"bench\": \"" + json_escape(bench_) + "\",\n";
  out += "  \"seed\": " + std::to_string(seed_) + ",\n";
  out += "  \"runs\": " + std::to_string(runs_) + ",\n";
  out += "  \"config\": ";
  append_metrics(out, config_);
  out += ",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const Row& row = rows_[i];
    out += "    {\"sweep\": \"" + json_escape(row.sweep) + "\", ";
    out += "\"point\": \"" + json_escape(row.point) + "\", ";
    out += "\"series\": \"" + json_escape(row.series) + "\", ";
    out += "\"metrics\": ";
    append_metrics(out, row.metrics);
    out += i + 1 < rows_.size() ? "},\n" : "}\n";
  }
  out += "  ]\n}\n";
  return out;
}

void Report::write(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    throw std::runtime_error("report: cannot open " + path);
  }
  const std::string json = to_json();
  const std::size_t written =
      std::fwrite(json.data(), 1, json.size(), file);
  const int close_rc = std::fclose(file);
  if (written != json.size() || close_rc != 0) {
    throw std::runtime_error("report: short write to " + path);
  }
}

}  // namespace adapt::runner
