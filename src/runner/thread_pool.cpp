#include "runner/thread_pool.h"

#include <algorithm>

namespace adapt::runner {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::run_all(std::vector<std::function<void()>> jobs) {
  if (jobs.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& job : jobs) queue_.push_back(std::move(job));
    in_flight_ += jobs.size();
  }
  work_ready_.notify_all();
  std::unique_lock<std::mutex> lock(mutex_);
  batch_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(error);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock,
                       [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    std::exception_ptr error;
    try {
      job();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (error && !first_error_) first_error_ = error;
      if (--in_flight_ == 0) batch_done_.notify_all();
    }
  }
}

}  // namespace adapt::runner
