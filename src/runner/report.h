// Machine-readable results emitter for the bench binaries.
//
// Collects one row per (sweep, point, series) cell and serializes the
// lot as JSON so CI can record a BENCH_*.json perf/fidelity trajectory
// next to the human-readable tables. Serialization is deterministic:
// fixed key order, locale-independent "%.17g" doubles (round-trip
// exact), no timestamps and no environment data — two runs with the
// same seed produce byte-identical files regardless of thread count.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/adapt.h"
#include "obs/replay.h"

namespace adapt::runner {

class Report {
 public:
  Report(std::string bench, std::uint64_t seed, int runs);

  // Append one aggregate cell. Row order is preserved in the output.
  void add_result(const std::string& sweep, const std::string& point,
                  const std::string& series,
                  const core::RepeatedResult& result);

  // Append one cell with caller-provided metrics, for benches whose
  // aggregate doesn't fit the RepeatedResult shape (e.g. job streams).
  // Key order is preserved in the output.
  void add_row(const std::string& sweep, const std::string& point,
               const std::string& series,
               std::vector<std::pair<std::string, double>> metrics);

  // Extra scalar attached to a row-less context (e.g. a config knob
  // worth recording); emitted in the "config" object.
  void set_config(const std::string& key, double value);

  // Attach per-run observations (from ExperimentRunner). Emits an
  // "observability" object: merged metrics plus per-run record counts
  // and trace overhead summary. Runs that carried spans, time-series
  // samples or calibration data additionally get "spans" (per-run span
  // counts), "samples" (per-run sample counts) and "calibration"
  // (per-run snapshot) keys — omitted entirely otherwise so pre-existing
  // outputs stay byte-identical. Deterministic like the rest: runs are
  // already in job order, metrics snapshots are name-sorted.
  void set_observability(const std::vector<obs::RunObservations>& runs);

  std::size_t rows() const { return rows_.size(); }

  std::string to_json() const;

  // Serialize to `path`; throws std::runtime_error on I/O failure.
  void write(const std::string& path) const;

 private:
  struct Row {
    std::string sweep;
    std::string point;
    std::string series;
    std::vector<std::pair<std::string, double>> metrics;
  };

  std::string bench_;
  std::uint64_t seed_;
  int runs_;
  std::vector<std::pair<std::string, double>> config_;
  std::vector<Row> rows_;

  bool have_obs_ = false;
  obs::MetricsSnapshot obs_metrics_;          // merged across runs
  std::vector<std::uint64_t> obs_records_;    // per run
  std::vector<std::uint64_t> obs_dropped_;    // per run
  // Replayed per-node timelines, one summary per traced run.
  std::vector<obs::ReplaySummary> obs_replays_;
  // Per-run span record and time-series sample counts (the full streams
  // go to JSONL side files); all-zero vectors are not emitted.
  std::vector<std::uint64_t> obs_span_counts_;
  std::vector<std::uint64_t> obs_sample_counts_;
  // (run index, snapshot) for runs that tracked calibration.
  std::vector<std::pair<std::size_t, obs::CalibrationSnapshot>>
      obs_calibrations_;
};

}  // namespace adapt::runner
