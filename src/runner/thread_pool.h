// A small fixed-size thread pool for fanning independent simulation
// runs across hardware threads.
//
// Deliberately minimal: a shared FIFO of std::function jobs, a fixed set
// of worker threads, and a blocking run_all() that executes a batch and
// propagates the first exception. Determinism is the caller's job —
// every experiment run derives its own RNG stream and writes into its
// own result slot, so completion order never matters.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace adapt::runner {

class ThreadPool {
 public:
  // 0 = one worker per hardware thread.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Run every job, block until all finish. Jobs may run in any order and
  // on any worker. If one or more jobs throw, the first exception (in
  // job submission order of completion handling) is rethrown after the
  // whole batch has drained.
  void run_all(std::vector<std::function<void()>> jobs);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable batch_done_;
  std::size_t in_flight_ = 0;
  std::exception_ptr first_error_;
  bool shutting_down_ = false;
};

}  // namespace adapt::runner
