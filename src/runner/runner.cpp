#include "runner/runner.h"

#include <stdexcept>
#include <utility>

#include "common/rng.h"

namespace adapt::runner {

std::uint64_t derive_run_seed(std::uint64_t base_seed,
                              std::uint64_t run_index) {
  // Same stream-keyed splitmix64 derivation as Rng::fork: statistically
  // independent streams for distinct run indices, reproducible from the
  // base seed alone.
  std::uint64_t s = base_seed ^ (0xd1b54a32d192ed03ull * (run_index + 1));
  return common::splitmix64(s);
}

core::RepeatedResult merge_results(
    const std::vector<core::ExperimentResult>& results) {
  if (results.empty()) {
    throw std::invalid_argument("merge_results: no runs");
  }
  std::vector<double> elapsed;
  std::vector<double> locality;
  elapsed.reserve(results.size());
  locality.reserve(results.size());
  core::RepeatedResult out;
  for (const core::ExperimentResult& result : results) {
    elapsed.push_back(result.job.elapsed);
    locality.push_back(result.job.locality);
    out.rework_ratio += result.job.overhead.rework_ratio();
    out.recovery_ratio += result.job.overhead.recovery_ratio();
    out.migration_ratio += result.job.overhead.migration_ratio();
    out.misc_ratio += result.job.overhead.misc_ratio();
    out.total_ratio += result.job.overhead.total_ratio();
    out.policy_name = result.policy_name;
    out.failed_runs += result.job.failed ? 1 : 0;
    out.nodes_departed += result.job.nodes_departed;
    out.nodes_dead += result.job.nodes_dead;
    out.blocks_lost += result.job.blocks_lost;
    out.tasks_lost += result.job.tasks_lost;
    out.rereplications += result.job.rereplications;
    out.rereplication_giveups += result.job.rereplication_giveups;
    out.rereplication_bytes += result.job.rereplication_bytes;
    out.heartbeats_lost += result.job.heartbeats_lost;
    out.false_dead_declarations += result.job.false_dead_declarations;
    out.replicas_corrupted += result.job.replicas_corrupted;
    out.corrupt_reads += result.job.corrupt_reads;
    out.safe_mode_entries += result.job.safe_mode_entries;
    out.speculative_launches += result.job.speculative_launches;
    out.speculative_wins += result.job.speculative_wins;
    out.redundant_launches += result.job.redundant_launches;
    out.redundant_waste_bytes += result.job.redundant_waste_bytes;
  }
  const double n = static_cast<double>(results.size());
  out.rework_ratio /= n;
  out.recovery_ratio /= n;
  out.migration_ratio /= n;
  out.misc_ratio /= n;
  out.total_ratio /= n;
  out.elapsed = common::summarize(std::move(elapsed));
  out.locality = common::summarize(std::move(locality));
  return out;
}

ExperimentRunner::ExperimentRunner(std::size_t threads) : pool_(threads) {}

std::vector<core::ExperimentResult> ExperimentRunner::run_all(
    const std::vector<Job>& jobs) {
  std::vector<core::ExperimentResult> results(jobs.size());
  std::vector<std::function<void()>> tasks;
  tasks.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const Job& job = jobs[i];
    if (job.cluster == nullptr) {
      throw std::invalid_argument("run_all: job without a cluster");
    }
    tasks.push_back([&results, &job, i] {
      results[i] = core::run_experiment(*job.cluster, job.config);
    });
  }
  pool_.run_all(std::move(tasks));
  return results;
}

namespace {

// Move each run's observations out of the results (in run order) so the
// caller can serialize them deterministically.
void drain_observations(std::vector<core::ExperimentResult>& results,
                        std::vector<obs::RunObservations>* obs) {
  if (obs == nullptr) return;
  obs->reserve(obs->size() + results.size());
  for (core::ExperimentResult& result : results) {
    obs->push_back(std::move(result.obs));
  }
}

}  // namespace

core::RepeatedResult ExperimentRunner::run_replications(
    const cluster::Cluster& cluster, core::ExperimentConfig config,
    int runs, std::vector<obs::RunObservations>* obs) {
  if (runs < 1) {
    throw std::invalid_argument("run_replications: runs must be >= 1");
  }
  std::vector<Job> jobs;
  jobs.reserve(static_cast<std::size_t>(runs));
  for (int r = 0; r < runs; ++r) {
    Job job;
    job.cluster = &cluster;
    job.config = config;
    job.config.seed =
        derive_run_seed(config.seed, static_cast<std::uint64_t>(r));
    job.config.job.seed = job.config.seed;
    jobs.push_back(std::move(job));
  }
  std::vector<core::ExperimentResult> results = run_all(jobs);
  drain_observations(results, obs);
  return merge_results(results);
}

std::vector<core::RepeatedResult> ExperimentRunner::run_sweep(
    const std::vector<SweepCell>& cells,
    std::vector<obs::RunObservations>* obs) {
  std::vector<Job> jobs;
  std::vector<std::size_t> cell_begin;  // job index of each cell's run 0
  cell_begin.reserve(cells.size());
  for (const SweepCell& cell : cells) {
    if (!cell.cluster) {
      throw std::invalid_argument("run_sweep: cell without a cluster");
    }
    if (cell.runs < 1) {
      throw std::invalid_argument("run_sweep: cell runs must be >= 1");
    }
    cell_begin.push_back(jobs.size());
    for (int r = 0; r < cell.runs; ++r) {
      Job job;
      job.cluster = cell.cluster.get();
      job.config = cell.config;
      job.config.seed =
          derive_run_seed(cell.config.seed, static_cast<std::uint64_t>(r));
      job.config.job.seed = job.config.seed;
      jobs.push_back(std::move(job));
    }
  }
  std::vector<core::ExperimentResult> results = run_all(jobs);
  // Drain before merging: the per-cell merge copies its result slice,
  // and traces can be large.
  drain_observations(results, obs);
  std::vector<core::RepeatedResult> merged;
  merged.reserve(cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    const auto begin = results.begin() + static_cast<std::ptrdiff_t>(cell_begin[c]);
    merged.push_back(merge_results(std::vector<core::ExperimentResult>(
        begin, begin + cells[c].runs)));
  }
  return merged;
}

std::shared_ptr<const cluster::Cluster> borrow(
    const cluster::Cluster& cluster) {
  // Aliasing constructor: shared_ptr semantics without ownership.
  return std::shared_ptr<const cluster::Cluster>(
      std::shared_ptr<const cluster::Cluster>(), &cluster);
}

}  // namespace adapt::runner
