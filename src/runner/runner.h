// Parallel experiment runner: fans independent MapReduceSimulation runs
// (via core::run_experiment) across a thread pool and merges the results
// into the paper's multi-run aggregates.
//
// Determinism contract: every run's RNG seed is derived from the
// configured base seed and the run's index through the library's
// splitmix64 stream derivation, and every run writes into its own
// pre-allocated result slot. Aggregation then walks the slots in index
// order, so the merged output is bit-identical for any thread count and
// any completion order — `--threads 8` reproduces `--threads 1` exactly.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/adapt.h"
#include "runner/thread_pool.h"

namespace adapt::runner {

// Independent per-run seed: splitmix64 over the base seed and a
// run-index-keyed stream constant (the same derivation Rng::fork uses
// for named sub-streams).
std::uint64_t derive_run_seed(std::uint64_t base_seed,
                              std::uint64_t run_index);

// Merge per-run results (in run order) into the paper's per-point
// aggregate; shared by run_replications / run_sweep and usable on
// results produced elsewhere.
core::RepeatedResult merge_results(
    const std::vector<core::ExperimentResult>& results);

class ExperimentRunner {
 public:
  // threads = 0: one worker per hardware thread.
  explicit ExperimentRunner(std::size_t threads = 0);

  std::size_t threads() const { return pool_.size(); }

  // One experiment job: a cluster (not owned; must outlive the call) and
  // a fully-specified config, seed included.
  struct Job {
    const cluster::Cluster* cluster = nullptr;
    core::ExperimentConfig config;
  };

  // Lowest-level fan-out: run every job, results in job order.
  std::vector<core::ExperimentResult> run_all(const std::vector<Job>& jobs);

  // `runs` replications of one experiment point. Per-run seeds derive
  // from config.seed; the aggregate is identical for any thread count.
  // When `obs` is non-null and config.obs is enabled, each run's
  // observations are appended to it in run order (the same order for any
  // thread count, so trace exports stay byte-identical).
  core::RepeatedResult run_replications(
      const cluster::Cluster& cluster, core::ExperimentConfig config,
      int runs, std::vector<obs::RunObservations>* obs = nullptr);

  // One cell of a sweep grid: an experiment point (cluster x config)
  // replicated `runs` times.
  struct SweepCell {
    std::shared_ptr<const cluster::Cluster> cluster;
    core::ExperimentConfig config;
    int runs = 1;
  };

  // Run a whole sweep grid with *every* individual replication as an
  // independent pool job (so a sweep of P points x S series x R runs
  // keeps all workers busy even when single cells are small). Returns
  // one aggregate per cell, in cell order. When `obs` is non-null, the
  // per-run observations are appended in job (cell-major, run-minor)
  // order.
  std::vector<core::RepeatedResult> run_sweep(
      const std::vector<SweepCell>& cells,
      std::vector<obs::RunObservations>* obs = nullptr);

 private:
  ThreadPool pool_;
};

// Wrap a stack- or caller-owned cluster for SweepCell without taking
// ownership. The caller must keep the cluster alive until run_sweep
// returns.
std::shared_ptr<const cluster::Cluster> borrow(
    const cluster::Cluster& cluster);

}  // namespace adapt::runner
