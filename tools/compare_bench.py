#!/usr/bin/env python3
"""Compare a bench JSON report against the committed baseline.

Warn-only by design: perf on shared CI runners is noisy, so a regression
past the threshold prints a ::warning:: annotation (picked up by GitHub
Actions) and the script still exits 0. Pass --strict to exit 1 instead,
for local use on quiet reference hardware.

Two report schemas are understood:

- bench_hotpath's flat {"bench": "hotpath", "metrics": [...]} report.
  Metrics are matched by name; each metric's "better" field says which
  direction is a regression: "lower" (timings), "higher" (throughput),
  or "info" (reported, never compared).
- runner::Report sweeps ({"bench": ..., "rows": [...]}, e.g.
  bench_rebalance): rows flatten to "point/series/metric" names.
  Simulated-time metrics are deterministic for a fixed seed, so any
  drift there is a behavioral change, not runner noise. Makespan/elapsed
  means compare as "lower"; count-like loop metrics (triggers,
  migrations committed, bytes) compare as "higher" so a silently
  dead loop shows up; the rest are informational.

Usage:
  tools/compare_bench.py BASELINE.json CURRENT.json [--threshold 0.25]
                         [--strict]
"""

import argparse
import json
import sys


# Direction for flattened runner::Report row metrics (suffix match).
_ROW_LOWER = ("makespan_mean", "elapsed_mean")
_ROW_HIGHER = ("rebalance_triggers", "migrations_committed",
               "migration_bytes")


def _row_direction(metric):
    if metric in _ROW_LOWER:
        return "lower"
    if metric in _ROW_HIGHER:
        return "higher"
    return "info"


def load_metrics(path):
    with open(path) as f:
        report = json.load(f)
    if report.get("bench") == "hotpath":
        return report.get("mode", "?"), {
            m["name"]: m for m in report.get("metrics", [])
        }
    if "rows" in report:
        metrics = {}
        for row in report["rows"]:
            for metric, value in row.get("metrics", {}).items():
                name = f"{row['point']}/{row['series']}/{metric}"
                metrics[name] = {"name": name, "value": value,
                                 "better": _row_direction(metric)}
        return report.get("bench", "?"), metrics
    raise SystemExit(f"{path}: neither a bench_hotpath report nor a "
                     "runner sweep report")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="relative regression that triggers a warning"
                             " (default 0.25 = 25%%)")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 on regression instead of warn-only")
    args = parser.parse_args()

    base_mode, baseline = load_metrics(args.baseline)
    cur_mode, current = load_metrics(args.current)
    if base_mode != cur_mode:
        print(f"::warning::bench mode mismatch: baseline is {base_mode},"
              f" current is {cur_mode}; comparison may be meaningless")

    regressions = []
    for name, base in baseline.items():
        direction = base.get("better", "info")
        if direction == "info":
            continue
        cur = current.get(name)
        if cur is None:
            print(f"::warning::metric {name} missing from {args.current}")
            continue
        b, c = float(base["value"]), float(cur["value"])
        if b == 0:
            continue
        # Positive delta = worse, regardless of direction.
        delta = (c - b) / b if direction == "lower" else (b - c) / b
        marker = " <-- REGRESSION" if delta > args.threshold else ""
        print(f"{name:40s} base {b:12.4g}  now {c:12.4g}  "
              f"{'+' if delta >= 0 else ''}{delta * 100:.1f}% worse"
              f"{marker}")
        if delta > args.threshold:
            regressions.append((name, delta))

    for name, delta in regressions:
        print(f"::warning::perf regression in {name}: "
              f"{delta * 100:.1f}% worse than the committed baseline")
    if regressions:
        print(f"{len(regressions)} metric(s) regressed past "
              f"{args.threshold * 100:.0f}% (warn-only"
              f"{'' if not args.strict else ', strict'})")
        return 1 if args.strict else 0
    print("no regressions past threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
