#include <gtest/gtest.h>

#include <stdexcept>

#include "common/units.h"

namespace {

using namespace adapt::common;

TEST(Units, TransferTime) {
  // 64 MiB over 8 Mb/s: 64 * 2^20 * 8 / 8e6 s.
  const double expected = 64.0 * 1024 * 1024 * 8.0 / 8e6;
  EXPECT_NEAR(transfer_time(64 * kMiB, mbps(8)), expected, 1e-9);
  EXPECT_THROW(transfer_time(1, 0.0), std::invalid_argument);
  EXPECT_THROW(transfer_time(1, -5.0), std::invalid_argument);
}

TEST(Units, Mbps) {
  EXPECT_DOUBLE_EQ(mbps(8), 8e6);
  EXPECT_DOUBLE_EQ(mbps(0.5), 5e5);
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512B");
  EXPECT_EQ(format_bytes(64 * kMiB), "64MiB");
  EXPECT_EQ(format_bytes(kGiB), "1GiB");
  EXPECT_EQ(format_bytes(1536), "1.50KiB");
}

TEST(Units, FormatSeconds) {
  EXPECT_EQ(format_seconds(0.5), "500.0ms");
  EXPECT_EQ(format_seconds(12.0), "12.0s");
  EXPECT_EQ(format_seconds(600.0), "10.0min");
  EXPECT_EQ(format_seconds(7200.0), "2.0h");
}

TEST(Units, FormatBandwidth) {
  EXPECT_EQ(format_bandwidth(mbps(8)), "8Mb/s");
  EXPECT_EQ(format_bandwidth(1.5e9), "1.5Gb/s");
  EXPECT_EQ(format_bandwidth(512e3), "512Kb/s");
}

TEST(Units, ParseBytes) {
  EXPECT_EQ(parse_bytes("4096"), 4096u);
  EXPECT_EQ(parse_bytes("64MB"), 64 * kMiB);
  EXPECT_EQ(parse_bytes("64 MiB"), 64 * kMiB);
  EXPECT_EQ(parse_bytes("2g"), 2 * kGiB);
  EXPECT_EQ(parse_bytes("1.5k"), 1536u);
  EXPECT_THROW(parse_bytes(""), std::invalid_argument);
  EXPECT_THROW(parse_bytes("64xb"), std::invalid_argument);
  EXPECT_THROW(parse_bytes("-3MB"), std::invalid_argument);
}

}  // namespace
