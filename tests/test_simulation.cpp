// Map-phase simulator: deterministic micro-scenarios, failure injection,
// and property sweeps (conservation, completeness) across policies,
// replication levels and seeds.
#include <gtest/gtest.h>

#include "cluster/topology.h"
#include "hdfs/namenode.h"
#include "placement/random_policy.h"
#include "sim/mapreduce_sim.h"

namespace {

using namespace adapt;
using namespace adapt::sim;
using cluster::AvailabilityMode;
using cluster::Cluster;
using cluster::NodeSpec;
using common::kMiB;
using common::mbps;

Cluster bare_cluster(std::size_t n, double bps = mbps(8)) {
  Cluster cluster;
  cluster.nodes.resize(n);
  for (NodeSpec& node : cluster.nodes) {
    node.uplink_bps = bps;
    node.downlink_bps = bps;
  }
  return cluster;
}

// Places `blocks` blocks with explicit replica lists.
hdfs::FileId plant_file(hdfs::NameNode& nn,
                        const std::vector<std::vector<cluster::NodeIndex>>&
                            replicas) {
  common::Rng rng(1);
  const hdfs::FileId id = nn.create_file(
      "f", static_cast<std::uint32_t>(replicas.size()),
      static_cast<int>(replicas[0].size()),
      placement::make_random_policy(nn.node_count()), rng);
  // Rewrite the random placement with the requested one.
  for (std::size_t b = 0; b < replicas.size(); ++b) {
    const hdfs::BlockId block = nn.file(id).blocks[b];
    const auto old_replicas = nn.block(block).replicas;
    for (const auto node : old_replicas) nn.remove_replica(block, node);
    for (const auto node : replicas[b]) nn.add_replica(block, node);
  }
  return id;
}

TEST(Simulation, FailureFreeSingleNodeIsSerial) {
  const Cluster cluster = bare_cluster(1);
  hdfs::NameNode nn(1);
  const auto file = plant_file(nn, {{0}, {0}, {0}, {0}});
  SimJobConfig config;
  config.gamma = 10.0;
  MapReduceSimulation sim(cluster, nn, file, config);
  const JobResult r = sim.run();
  EXPECT_DOUBLE_EQ(r.elapsed, 40.0);
  EXPECT_DOUBLE_EQ(r.locality, 1.0);
  EXPECT_EQ(r.local_wins, 4u);
  EXPECT_EQ(r.attempts_failed, 0u);
  EXPECT_DOUBLE_EQ(r.overhead.misc, 0.0);
}

TEST(Simulation, SlotsRunConcurrently) {
  Cluster cluster = bare_cluster(1);
  cluster.nodes[0].slots = 2;
  hdfs::NameNode nn(1);
  const auto file = plant_file(nn, {{0}, {0}, {0}, {0}});
  SimJobConfig config;
  config.gamma = 10.0;
  MapReduceSimulation sim(cluster, nn, file, config);
  EXPECT_DOUBLE_EQ(sim.run().elapsed, 20.0);
}

TEST(Simulation, RemoteExecutionPaysMigration) {
  // All blocks on node 0; node 1 helps by fetching over the network.
  const Cluster cluster = bare_cluster(2);
  hdfs::NameNode nn(2);
  const auto file = plant_file(nn, {{0}, {0}, {0}, {0}});
  SimJobConfig config;
  config.gamma = 30.0;
  MapReduceSimulation sim(cluster, nn, file, config);
  const JobResult r = sim.run();
  // One 64 MiB block at 8 Mb/s is ~67 s; stealing must have happened.
  EXPECT_GT(r.remote_wins, 0u);
  EXPECT_LT(r.elapsed, 4 * 30.0);
  EXPECT_GT(r.overhead.migration, 0.0);
  EXPECT_LT(r.locality, 1.0);
}

TEST(Simulation, RemoteExecutionCanBeDisabled) {
  const Cluster cluster = bare_cluster(2);
  hdfs::NameNode nn(2);
  const auto file = plant_file(nn, {{0}, {0}, {0}, {0}});
  SimJobConfig config;
  config.gamma = 30.0;
  config.remote_execution = false;
  config.speculation = false;
  config.allow_origin_fetch = false;
  MapReduceSimulation sim(cluster, nn, file, config);
  const JobResult r = sim.run();
  EXPECT_DOUBLE_EQ(r.elapsed, 120.0);
  EXPECT_EQ(r.remote_wins, 0u);
  EXPECT_DOUBLE_EQ(r.locality, 1.0);
}

TEST(Simulation, InterruptionCausesReworkAndRecovery) {
  // Node 0 is down [15, 35): its second task (started at 10) is killed
  // 5 s in, re-run after recovery.
  Cluster cluster = bare_cluster(1);
  cluster.nodes[0].mode = AvailabilityMode::kReplay;
  cluster.nodes[0].down_intervals = {{15.0, 35.0}};
  hdfs::NameNode nn(1);
  const auto file = plant_file(nn, {{0}, {0}});
  SimJobConfig config;
  config.gamma = 10.0;
  config.randomize_replay_offset = false;
  config.allow_origin_fetch = false;
  config.replay_horizon = 1e6;
  MapReduceSimulation sim(cluster, nn, file, config);
  const JobResult r = sim.run();
  // Timeline: task A [0,10], task B starts 10, killed at 15 (5 s
  // rework), node back 35, B re-runs [35,45].
  EXPECT_DOUBLE_EQ(r.elapsed, 45.0);
  EXPECT_DOUBLE_EQ(r.overhead.rework, 5.0);
  EXPECT_DOUBLE_EQ(r.overhead.recovery, 20.0);
  EXPECT_EQ(r.attempts_failed, 1u);
}

TEST(Simulation, AllReplicasDownTriggersOriginFetch) {
  // Node 0 holds the only replica and is down the whole job; node 1
  // must re-fetch from the origin after the reissue delay.
  Cluster cluster = bare_cluster(2);
  cluster.nodes[0].mode = AvailabilityMode::kReplay;
  cluster.nodes[0].down_intervals = {{0.0, 1e5}};
  hdfs::NameNode nn(2);
  const auto file = plant_file(nn, {{0}});
  SimJobConfig config;
  config.gamma = 10.0;
  config.randomize_replay_offset = false;
  config.origin_fetch_delay = 50.0;
  config.replay_horizon = 2e5;
  MapReduceSimulation sim(cluster, nn, file, config);
  const JobResult r = sim.run();
  EXPECT_EQ(r.origin_wins, 1u);
  // Ripens at 50, transfer ~67 s, execute 10 s.
  const double transfer = common::transfer_time(64 * kMiB, mbps(8));
  EXPECT_NEAR(r.elapsed, 50.0 + transfer + 10.0, 1.0);
}

TEST(Simulation, WithoutOriginTheJobWaitsForTheNode) {
  Cluster cluster = bare_cluster(2);
  cluster.nodes[0].mode = AvailabilityMode::kReplay;
  cluster.nodes[0].down_intervals = {{0.0, 500.0}};
  hdfs::NameNode nn(2);
  const auto file = plant_file(nn, {{0}});
  SimJobConfig config;
  config.gamma = 10.0;
  config.randomize_replay_offset = false;
  config.allow_origin_fetch = false;
  config.replay_horizon = 1e4;
  MapReduceSimulation sim(cluster, nn, file, config);
  const JobResult r = sim.run();
  EXPECT_DOUBLE_EQ(r.elapsed, 510.0);
  EXPECT_EQ(r.local_wins, 1u);
}

TEST(Simulation, SecondReplicaAvoidsTheWait) {
  Cluster cluster = bare_cluster(2);
  cluster.nodes[0].mode = AvailabilityMode::kReplay;
  cluster.nodes[0].down_intervals = {{0.0, 500.0}};
  hdfs::NameNode nn(2);
  const auto file = plant_file(nn, {{0, 1}});
  SimJobConfig config;
  config.gamma = 10.0;
  config.randomize_replay_offset = false;
  config.allow_origin_fetch = false;
  config.replay_horizon = 1e4;
  MapReduceSimulation sim(cluster, nn, file, config);
  const JobResult r = sim.run();
  EXPECT_DOUBLE_EQ(r.elapsed, 10.0);  // node 1 runs it locally
}

TEST(Simulation, TransferStallsThroughShortSourceOutage) {
  // Node 0 holds the block and goes down briefly mid-transfer; node 1's
  // fetch resumes shifted instead of aborting.
  Cluster cluster = bare_cluster(2);
  cluster.nodes[0].mode = AvailabilityMode::kReplay;
  // Node 0 executes its task [0,1] then its outage [30, 40).
  cluster.nodes[0].down_intervals = {{30.0, 40.0}};
  hdfs::NameNode nn(2);
  const auto file = plant_file(nn, {{0}, {0}});
  SimJobConfig config;
  config.gamma = 1.0;
  config.randomize_replay_offset = false;
  config.transfer_stall_timeout = 60.0;
  config.replay_horizon = 1e4;
  config.speculation = false;
  MapReduceSimulation sim(cluster, nn, file, config);
  const JobResult r = sim.run();
  const double transfer = common::transfer_time(64 * kMiB, mbps(8));
  // Node 1 fetches the second block starting at 0; the 10 s outage
  // shifts completion: transfer + 10 + gamma... unless node 0 finished
  // both locally first. Node 0: task A [0,1], then B is already running
  // remotely; it completes at transfer + 10 + 1 ~ 78 s unless node 0's
  // local speculation is disabled (it is) and B is remote-only.
  EXPECT_EQ(r.transfers_aborted, 0u);
  EXPECT_NEAR(r.elapsed, transfer + 10.0 + 1.0, 1.5);
}

TEST(Simulation, SourceDeathBeyondTimeoutAbortsTransfer) {
  Cluster cluster = bare_cluster(2);
  cluster.nodes[0].mode = AvailabilityMode::kReplay;
  cluster.nodes[0].down_intervals = {{5.0, 5000.0}};
  hdfs::NameNode nn(2);
  const auto file = plant_file(nn, {{0}, {0}});
  SimJobConfig config;
  config.gamma = 1.0;
  config.randomize_replay_offset = false;
  config.transfer_stall_timeout = 30.0;
  config.origin_fetch_delay = 100.0;
  config.replay_horizon = 1e4;
  MapReduceSimulation sim(cluster, nn, file, config);
  const JobResult r = sim.run();
  EXPECT_GE(r.aborts_src_timeout, 1u);
  EXPECT_GE(r.origin_wins, 1u);
  EXPECT_LT(r.elapsed, 500.0);  // rescued well before the node returns
}

TEST(Simulation, SpeculationRescuesStalledTransfer) {
  // Node 1 fetches from node 0; node 0 dies for a long time; node 2
  // (which also has a replica... no — node 2 is idle) the task's origin
  // rescue is slower than node 0's own return here, so instead check
  // that a duplicate eventually wins and duplicates are accounted.
  Cluster cluster = bare_cluster(3);
  cluster.nodes[0].mode = AvailabilityMode::kReplay;
  cluster.nodes[0].down_intervals = {{2.0, 400.0}};
  hdfs::NameNode nn(3);
  // Two blocks on node 0 so node 1 starts a remote fetch immediately.
  const auto file = plant_file(nn, {{0}, {0}});
  SimJobConfig config;
  config.gamma = 1.0;
  config.randomize_replay_offset = false;
  config.transfer_stall_timeout = 1e4;  // never aborts on its own
  config.origin_fetch_delay = 20.0;
  config.replay_horizon = 1e4;
  MapReduceSimulation sim(cluster, nn, file, config);
  const JobResult r = sim.run();
  // The stalled fetch is overdue; an idle node re-fetches from the
  // origin and wins; the stalled duplicate is killed.
  EXPECT_GE(r.origin_wins, 1u);
  EXPECT_GE(r.attempts_killed + r.attempts_failed, 1u);
  EXPECT_LT(r.elapsed, 400.0);
}

// ---------------------------------------------------------------------
// Property sweeps
// ---------------------------------------------------------------------

struct SweepCase {
  std::size_t nodes;
  int replication;
  std::uint64_t seed;
  bool speculation;
  bool origin;
};

class SimulationProperties : public ::testing::TestWithParam<SweepCase> {};

TEST_P(SimulationProperties, InvariantsHold) {
  const SweepCase param = GetParam();
  cluster::EmulationConfig emu;
  emu.node_count = param.nodes;
  emu.interrupted_ratio = 0.5;
  const Cluster cluster = cluster::emulated_cluster(emu);

  hdfs::NameNode nn(cluster.size());
  common::Rng rng(param.seed);
  const auto file = nn.create_file(
      "f", static_cast<std::uint32_t>(cluster.size() * 10),
      param.replication, placement::make_random_policy(cluster.size()), rng);

  SimJobConfig config;
  config.gamma = 6.0;
  config.seed = param.seed;
  config.speculation = param.speculation;
  config.allow_origin_fetch = param.origin;
  MapReduceSimulation sim(cluster, nn, file, config);
  const JobResult r = sim.run();

  // Every task completed exactly once.
  EXPECT_EQ(r.tasks, cluster.size() * 10);
  EXPECT_EQ(r.local_wins + r.remote_wins + r.origin_wins, r.tasks);
  // Locality is a proper fraction.
  EXPECT_GE(r.locality, 0.0);
  EXPECT_LE(r.locality, 1.0);
  // Conservation: finalize() already threw if the components exceeded
  // wall-clock node-seconds; misc is the non-negative residual.
  EXPECT_GE(r.overhead.misc, 0.0);
  const double wall = r.elapsed * static_cast<double>(cluster.size());
  EXPECT_NEAR(r.overhead.base + r.overhead.total_overhead(), wall,
              1e-6 * wall);
  // Attempt bookkeeping: starts = wins + failures + kills.
  EXPECT_EQ(r.attempts_started,
            r.tasks + r.attempts_failed + r.attempts_killed);
  // Abort reasons partition the aborted set.
  EXPECT_EQ(r.transfers_aborted,
            r.aborts_dst_down + r.aborts_src_timeout + r.aborts_redundant);
  EXPECT_GT(r.elapsed, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SimulationProperties,
    ::testing::Values(SweepCase{16, 1, 11, true, true},
                      SweepCase{16, 2, 12, true, true},
                      SweepCase{32, 1, 13, false, true},
                      SweepCase{32, 2, 14, true, false},
                      SweepCase{64, 1, 15, true, true},
                      SweepCase{64, 3, 16, false, false},
                      SweepCase{32, 1, 17, true, true},
                      SweepCase{32, 1, 18, true, true}),
    [](const auto& info) {
      const SweepCase& c = info.param;
      return "n" + std::to_string(c.nodes) + "_r" +
             std::to_string(c.replication) + "_s" +
             std::to_string(c.seed) + (c.speculation ? "_spec" : "_nospec") +
             (c.origin ? "_origin" : "_noorigin");
    });

TEST(Simulation, DeterministicAcrossRuns) {
  cluster::EmulationConfig emu;
  emu.node_count = 32;
  const Cluster cluster = cluster::emulated_cluster(emu);
  auto run_once = [&] {
    hdfs::NameNode nn(cluster.size());
    common::Rng rng(42);
    const auto file = nn.create_file(
        "f", 320, 1, placement::make_random_policy(cluster.size()), rng);
    SimJobConfig config;
    config.gamma = 6.0;
    config.seed = 99;
    MapReduceSimulation sim(cluster, nn, file, config);
    return sim.run();
  };
  const JobResult a = run_once();
  const JobResult b = run_once();
  EXPECT_DOUBLE_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.local_wins, b.local_wins);
  EXPECT_EQ(a.events_processed, b.events_processed);
}

TEST(Simulation, ValidatesConfig) {
  const Cluster cluster = bare_cluster(1);
  hdfs::NameNode nn(1);
  const auto file = plant_file(nn, {{0}});
  SimJobConfig config;
  config.gamma = 0.0;
  EXPECT_THROW(MapReduceSimulation(cluster, nn, file, config),
               std::invalid_argument);
  config.gamma = 1.0;
  config.max_concurrent_attempts = 3;
  EXPECT_THROW(MapReduceSimulation(cluster, nn, file, config),
               std::invalid_argument);
}

}  // namespace
