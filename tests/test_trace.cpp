// Trace generator, I/O, statistics, and per-host profile extraction.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "trace/generator.h"
#include "trace/profile.h"
#include "trace/trace_io.h"
#include "trace/trace_stats.h"

namespace {

using namespace adapt;
using namespace adapt::trace;

TEST(GeneratorCalibration, PooledMtbiInversion) {
  double m = 0.0;
  double s = 0.0;
  calibrate_mtbi_population(160290.0, 4.376, m, s);
  // Harmonic mean check: exp(m - s^2/2) == target mean.
  EXPECT_NEAR(std::exp(m - s * s / 2.0), 160290.0, 1.0);
  // CoV identity: 2 e^{s^2} - 1 == cov^2.
  EXPECT_NEAR(2.0 * std::exp(s * s) - 1.0, 4.376 * 4.376, 1e-6);
  EXPECT_THROW(calibrate_mtbi_population(100.0, 0.5, m, s),
               std::invalid_argument);
}

TEST(GeneratorCalibration, DurationDecomposition) {
  const double pop = calibrate_duration_population_cov(7.3869, 2.0);
  EXPECT_NEAR((1 + pop * pop) * (1 + 4.0), 1 + 7.3869 * 7.3869, 1e-9);
  EXPECT_THROW(calibrate_duration_population_cov(1.0, 2.0),
               std::invalid_argument);
}

TEST(GeneratorCalibration, RhoDecomposition) {
  const double c = calibrate_rho_cov(4.376, 7.3869);
  EXPECT_NEAR((1 + c * c) * (1 + 4.376 * 4.376), 1 + 7.3869 * 7.3869, 1e-9);
  EXPECT_THROW(calibrate_rho_cov(7.0, 2.0), std::invalid_argument);
}

GeneratorConfig small_config() {
  GeneratorConfig config;
  config.node_count = 2000;
  config.horizon = 30.0 * 24 * 3600;
  config.seed = 7;
  return config;
}

TEST(Generator, DeterministicForSeed) {
  const auto a = generate_seti_like_trace(small_config());
  const auto b = generate_seti_like_trace(small_config());
  ASSERT_EQ(a.trace.events.size(), b.trace.events.size());
  EXPECT_EQ(a.trace.events, b.trace.events);
}

TEST(Generator, EventsSortedAndInRange) {
  const auto gen = generate_seti_like_trace(small_config());
  ASSERT_FALSE(gen.trace.events.empty());
  for (std::size_t i = 0; i < gen.trace.events.size(); ++i) {
    const TraceEvent& e = gen.trace.events[i];
    EXPECT_LT(e.node, gen.trace.node_count);
    EXPECT_GE(e.start, 0.0);
    EXPECT_LT(e.start, gen.trace.horizon);
    EXPECT_GT(e.duration, 0.0);
    if (i > 0) EXPECT_GE(e.start, gen.trace.events[i - 1].start);
  }
}

TEST(Generator, PerHostPopulationHitsTable1) {
  // Larger population for tight population-moment comparison. The
  // per-host summary is the Table 1 reading the generator calibrates to.
  GeneratorConfig config = small_config();
  config.node_count = 20000;
  const auto gen = generate_seti_like_trace(config);

  // Compare the drawn truth against targets (sampling error only).
  common::RunningStats mtbi;
  common::RunningStats duration;
  for (const HostTruth& h : gen.truth) {
    mtbi.add(h.mtbi);
    duration.add(h.mean_duration);
  }
  EXPECT_NEAR(mtbi.mean(), config.mtbi_mean, 0.15 * config.mtbi_mean);
  EXPECT_NEAR(duration.mean(), config.duration_mean,
              0.25 * config.duration_mean);
  // Heavy-tailed CoVs converge slowly; require the right magnitude.
  EXPECT_GT(mtbi.coefficient_of_variation(), 2.0);
  EXPECT_GT(duration.coefficient_of_variation(), 3.0);
}

TEST(Generator, CouplingControlsUnstableFraction) {
  GeneratorConfig config = small_config();
  config.node_count = 5000;
  config.duration_mtbi_coupling = 1.0;  // rho independent of M
  const auto coupled = generate_seti_like_trace(config);
  config.duration_mtbi_coupling = 0.0;  // D independent of M
  const auto uncoupled = generate_seti_like_trace(config);

  auto unstable_fraction = [](const GeneratedTrace& g) {
    std::size_t count = 0;
    for (const HostTruth& h : g.truth) {
      if (!h.params().stable()) ++count;
    }
    return static_cast<double>(count) / static_cast<double>(g.truth.size());
  };
  // More coupling -> fewer unstable hosts.
  EXPECT_LT(unstable_fraction(coupled), unstable_fraction(uncoupled));
  EXPECT_GT(unstable_fraction(coupled), 0.05);
}

TEST(TraceStats, HandComputedExample) {
  Trace trace;
  trace.node_count = 2;
  trace.horizon = 100.0;
  trace.events = {
      {0, 10.0, 5.0}, {1, 20.0, 3.0}, {0, 40.0, 7.0},
  };
  const TraceStats stats = compute_trace_stats(trace);
  EXPECT_EQ(stats.event_count, 3u);
  EXPECT_EQ(stats.hosts_with_events, 2u);
  // Gaps: node0 -> 10 and 30; node1 -> 20. Durations: 5, 3, 7.
  EXPECT_DOUBLE_EQ(stats.mtbi.mean, 20.0);
  EXPECT_DOUBLE_EQ(stats.duration.mean, 5.0);
  // Per-host means: node0 gap (10+30)/2 = 20, node1 gap 20.
  EXPECT_DOUBLE_EQ(stats.mtbi_per_host.mean, 20.0);
  EXPECT_DOUBLE_EQ(stats.duration_per_host.mean, (6.0 + 3.0) / 2.0);
}

TEST(TraceIo, RoundTrip) {
  Trace trace;
  trace.node_count = 3;
  trace.horizon = 1000.0;
  trace.events = {{0, 1.5, 2.25}, {2, 10.0, 0.5}, {1, 20.0, 100.0}};
  std::stringstream buffer;
  write_trace(buffer, trace);
  const Trace round = read_trace(buffer);
  EXPECT_EQ(round.node_count, trace.node_count);
  EXPECT_DOUBLE_EQ(round.horizon, trace.horizon);
  ASSERT_EQ(round.events.size(), trace.events.size());
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    EXPECT_EQ(round.events[i].node, trace.events[i].node);
    EXPECT_NEAR(round.events[i].start, trace.events[i].start, 1e-6);
    EXPECT_NEAR(round.events[i].duration, trace.events[i].duration, 1e-6);
  }
}

TEST(TraceIo, RejectsMalformedInput) {
  auto parse = [](const std::string& text) {
    std::stringstream in(text);
    return read_trace(in);
  };
  EXPECT_THROW(parse(""), std::runtime_error);
  EXPECT_THROW(parse("junk\n"), std::runtime_error);
  EXPECT_THROW(parse("# adapt-trace v1 nodes=2 horizon=10\nbad header\n"),
               std::runtime_error);
  const std::string header =
      "# adapt-trace v1 nodes=2 horizon=10\nnode,start,duration\n";
  EXPECT_THROW(parse(header + "5,1,1\n"), std::runtime_error);   // node oob
  EXPECT_THROW(parse(header + "0,-1,1\n"), std::runtime_error);  // negative
  EXPECT_THROW(parse(header + "0,5,1\n0,2,1\n"), std::runtime_error);
  EXPECT_THROW(parse(header + "0,x,1\n"), std::runtime_error);
}

TEST(Profile, BusyPeriodMerging) {
  // Second arrival lands during the first outage: FCFS extends it.
  const std::vector<TraceEvent> events = {
      {0, 10.0, 20.0},  // down [10, 30)
      {0, 25.0, 5.0},   // queued -> up extends to 35
      {0, 50.0, 2.0},   // separate outage [50, 52)
  };
  const auto merged = merge_busy_periods(events);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0], (DownInterval{10.0, 35.0}));
  EXPECT_EQ(merged[1], (DownInterval{50.0, 52.0}));
}

TEST(Profile, ExtractParamsAndAvailability) {
  Trace trace;
  trace.node_count = 2;
  trace.horizon = 100.0;
  trace.events = {{0, 10.0, 10.0}, {0, 50.0, 10.0}};
  const auto params = extract_params(trace);
  ASSERT_EQ(params.size(), 2u);
  EXPECT_DOUBLE_EQ(params[0].lambda, 2.0 / 100.0);
  EXPECT_DOUBLE_EQ(params[0].mu, 10.0);
  EXPECT_DOUBLE_EQ(params[1].lambda, 0.0);

  const auto avail = extract_availability(trace);
  EXPECT_DOUBLE_EQ(avail[0], 0.8);
  EXPECT_DOUBLE_EQ(avail[1], 1.0);
}

TEST(Profile, AvailabilityClampsAtHorizon) {
  Trace trace;
  trace.node_count = 1;
  trace.horizon = 100.0;
  trace.events = {{0, 90.0, 50.0}};  // outage runs past the horizon
  const auto avail = extract_availability(trace);
  EXPECT_DOUBLE_EQ(avail[0], 0.9);
}

}  // namespace
