#include <gtest/gtest.h>

#include <numeric>

#include "placement/alias_sampler.h"

namespace {

using namespace adapt::placement;
using adapt::common::Rng;

TEST(AliasSampler, SharesNormalized) {
  const AliasSampler sampler({1.0, 3.0, 4.0});
  EXPECT_NEAR(sampler.shares()[0], 0.125, 1e-12);
  EXPECT_NEAR(sampler.shares()[1], 0.375, 1e-12);
  EXPECT_NEAR(sampler.shares()[2], 0.5, 1e-12);
}

TEST(AliasSampler, EmpiricalFrequenciesMatch) {
  const std::vector<double> weights = {0.1, 2.0, 0.0, 5.0, 1.3};
  const AliasSampler sampler(weights);
  Rng rng(77);
  std::vector<std::size_t> counts(weights.size(), 0);
  constexpr int kDraws = 400000;
  for (int i = 0; i < kDraws; ++i) ++counts[sampler.sample(rng)];
  const double total =
      std::accumulate(weights.begin(), weights.end(), 0.0);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / kDraws,
                weights[i] / total, 0.005)
        << "node " << i;
  }
  EXPECT_EQ(counts[2], 0u);
}

TEST(AliasSampler, SingleBucket) {
  const AliasSampler sampler({42.0});
  Rng rng(1);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(sampler.sample(rng), 0u);
}

TEST(AliasSampler, UniformWeights) {
  const AliasSampler sampler(std::vector<double>(10, 1.0));
  Rng rng(2);
  std::vector<std::size_t> counts(10, 0);
  for (int i = 0; i < 100000; ++i) ++counts[sampler.sample(rng)];
  for (const std::size_t c : counts) EXPECT_NEAR(c, 10000.0, 600.0);
}

TEST(AliasSampler, Validation) {
  EXPECT_THROW(AliasSampler({}), std::invalid_argument);
  EXPECT_THROW(AliasSampler({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(AliasSampler({-1.0, 2.0}), std::invalid_argument);
}

TEST(AliasPolicy, MatchesHashTablePolicyStatistically) {
  // Same ADAPT weights through the alias policy: shares agree with the
  // Algorithm 1 targets exactly.
  const std::vector<double> et = {8.0, 16.0, 32.0};
  const auto policy = make_adapt_alias_policy(et);
  const auto shares = policy->target_shares();
  EXPECT_NEAR(shares[0], 4.0 / 7.0, 1e-12);
  EXPECT_NEAR(shares[1], 2.0 / 7.0, 1e-12);
  EXPECT_NEAR(shares[2], 1.0 / 7.0, 1e-12);
  EXPECT_EQ(policy->name(), "adapt-alias");
}

TEST(AliasPolicy, HonorsEligibility) {
  const auto policy = make_adapt_alias_policy({1.0, 1000.0, 1000.0});
  Rng rng(3);
  const auto eligible =
      adapt::cluster::NodeMask::from_vector({true, false, false});
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(policy->choose(eligible, rng).value(), 0u);
  }
  EXPECT_FALSE(policy->choose(adapt::cluster::NodeMask(3, false), rng));
}

}  // namespace
