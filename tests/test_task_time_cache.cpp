// TaskTimeCache: bit-exactness vs the direct Eq. 5 evaluation, hit/miss
// accounting, growth, and the predictor's invalidate-on-gamma-change
// contract (value-keyed entries cannot go stale; invalidation is
// hygiene).
#include <gtest/gtest.h>

#include <vector>

#include "availability/interruption_model.h"
#include "availability/predictor.h"
#include "availability/task_time_cache.h"
#include "common/rng.h"

namespace {

using adapt::avail::InterruptionParams;
using adapt::avail::PerformancePredictor;
using adapt::avail::TaskTimeCache;

InterruptionParams random_params(adapt::common::Rng& rng) {
  return {0.001 + rng.uniform() * 0.02, 10.0 + rng.uniform() * 120.0};
}

TEST(TaskTimeCacheTest, BitExactAgainstDirectEvaluation) {
  TaskTimeCache cache;
  adapt::common::Rng rng(21);
  for (int i = 0; i < 200; ++i) {
    const InterruptionParams p = random_params(rng);
    const double gamma = 1.0 + rng.uniform() * 30.0;
    const double direct = adapt::avail::expected_task_time(p, gamma);
    // Exact equality on purpose: a hit must return the identical double.
    EXPECT_EQ(cache.expected_task_time(p, gamma), direct);
    EXPECT_EQ(cache.expected_task_time(p, gamma), direct) << "cached hit";
  }
}

TEST(TaskTimeCacheTest, CountsHitsAndMisses) {
  TaskTimeCache cache;
  const InterruptionParams p{0.01, 60.0};
  cache.expected_task_time(p, 12.0);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.size(), 1u);

  cache.expected_task_time(p, 12.0);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.size(), 1u);

  // Any changed parameter is a different key, not a stale value.
  cache.expected_task_time(p, 13.0);
  cache.expected_task_time({0.02, 60.0}, 12.0);
  EXPECT_EQ(cache.stats().misses, 3u);
  EXPECT_EQ(cache.size(), 3u);
}

TEST(TaskTimeCacheTest, InvalidateDropsEntriesKeepsStats) {
  TaskTimeCache cache;
  const InterruptionParams p{0.01, 60.0};
  cache.expected_task_time(p, 12.0);
  cache.expected_task_time(p, 12.0);
  cache.invalidate();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_EQ(cache.stats().hits, 1u) << "history survives invalidation";

  // The dropped key misses again and recomputes the same value.
  const double direct = adapt::avail::expected_task_time(p, 12.0);
  EXPECT_EQ(cache.expected_task_time(p, 12.0), direct);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(TaskTimeCacheTest, GrowsPastInitialCapacityWithoutLosingEntries) {
  TaskTimeCache cache;
  adapt::common::Rng rng(22);
  std::vector<InterruptionParams> keys;
  std::vector<double> values;
  // Well past the initial table; every insert is a distinct key.
  for (int i = 0; i < 500; ++i) {
    keys.push_back(random_params(rng));
    values.push_back(cache.expected_task_time(keys.back(), 12.0));
  }
  EXPECT_EQ(cache.size(), keys.size());
  const auto misses_before = cache.stats().misses;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(cache.expected_task_time(keys[i], 12.0), values[i]);
  }
  EXPECT_EQ(cache.stats().misses, misses_before)
      << "re-queries after growth must all hit";
}

TEST(PredictorCacheTest, RepeatEvaluationsHitTheCache) {
  PerformancePredictor predictor(32, 12.0);
  adapt::common::Rng rng(23);
  for (std::size_t i = 0; i < predictor.node_count(); ++i) {
    predictor.set_params(i, random_params(rng));
  }
  const std::vector<double> first = predictor.expected_task_times();
  const auto misses = predictor.task_time_cache().stats().misses;
  const std::vector<double> second = predictor.expected_task_times();
  EXPECT_EQ(first, second);
  EXPECT_EQ(predictor.task_time_cache().stats().misses, misses)
      << "second sweep must be all hits";
  EXPECT_GE(predictor.task_time_cache().stats().hits,
            predictor.node_count());
}

TEST(PredictorCacheTest, GammaChangeInvalidates) {
  PerformancePredictor predictor(8, 12.0);
  predictor.set_params(0, {0.01, 60.0});
  predictor.expected_task_times();
  EXPECT_GT(predictor.task_time_cache().size(), 0u);

  // New observed task length moves the running-mean gamma: every cached
  // key is now unreachable, so the predictor flushes.
  predictor.record_task_length(20.0);
  EXPECT_EQ(predictor.task_time_cache().size(), 0u);
  EXPECT_EQ(predictor.task_time_cache().stats().invalidations, 1u);

  // Values after the flush equal the direct evaluation at the new gamma.
  EXPECT_EQ(predictor.expected_task_time(0),
            adapt::avail::expected_task_time({0.01, 60.0},
                                             predictor.gamma()));
}

TEST(PredictorCacheTest, SharedCacheIsReusedAcrossPredictors) {
  TaskTimeCache shared;
  PerformancePredictor first(4, 12.0);
  PerformancePredictor second(4, 12.0);
  first.set_shared_cache(&shared);
  second.set_shared_cache(&shared);
  const InterruptionParams p{0.01, 60.0};
  for (std::size_t i = 0; i < 4; ++i) {
    first.set_params(i, p);
    second.set_params(i, p);
  }
  first.expected_task_times();
  const auto misses = shared.stats().misses;
  second.expected_task_times();  // identical keys -> all hits
  EXPECT_EQ(shared.stats().misses, misses);
  EXPECT_GE(shared.stats().hits, 4u);

  // Detaching returns the predictor to its own (empty) cache.
  second.set_shared_cache(nullptr);
  EXPECT_EQ(second.task_time_cache().size(), 0u);
}

}  // namespace
