// Placement policies: random, ADAPT (Algorithm 1), naive, and the
// Section IV-C fidelity cap.
#include <gtest/gtest.h>

#include "availability/interruption_model.h"
#include "placement/adapt_policy.h"
#include "placement/alias_sampler.h"
#include "placement/capped_policy.h"
#include "placement/naive_policy.h"
#include "placement/random_policy.h"

namespace {

using namespace adapt;
using namespace adapt::placement;
using adapt::common::Rng;

std::vector<std::size_t> draw_many(const PlacementPolicy& policy,
                                   std::size_t nodes, int draws, Rng& rng) {
  const cluster::NodeMask eligible(nodes, true);
  std::vector<std::size_t> counts(nodes, 0);
  for (int i = 0; i < draws; ++i) {
    const auto choice = policy.choose(eligible, rng);
    ++counts.at(choice.value());
  }
  return counts;
}

TEST(RandomPolicy, UniformOverNodes) {
  RandomPolicy policy(8);
  Rng rng(5);
  const auto counts = draw_many(policy, 8, 80000, rng);
  for (const std::size_t c : counts) EXPECT_NEAR(c, 10000.0, 600.0);
  for (const double share : policy.target_shares()) {
    EXPECT_NEAR(share, 0.125, 1e-12);
  }
}

TEST(RandomPolicy, HonorsEligibilityMask) {
  RandomPolicy policy(4);
  Rng rng(6);
  const auto eligible =
      cluster::NodeMask::from_vector({false, true, false, false});
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(policy.choose(eligible, rng).value(), 1u);
  }
  EXPECT_FALSE(policy.choose(cluster::NodeMask(4, false), rng));
}

TEST(AdaptPolicy, SharesProportionalToInverseExpectedTime) {
  // E[T] = {10, 20, 40}: shares should be {4/7, 2/7, 1/7}.
  const auto policy = make_adapt_policy({10.0, 20.0, 40.0}, 1000);
  const auto shares = policy->target_shares();
  EXPECT_NEAR(shares[0], 4.0 / 7.0, 1e-9);
  EXPECT_NEAR(shares[1], 2.0 / 7.0, 1e-9);
  EXPECT_NEAR(shares[2], 1.0 / 7.0, 1e-9);
}

TEST(AdaptPolicy, UnstableNodesGetNothing) {
  const double inf = std::numeric_limits<double>::infinity();
  const auto policy = make_adapt_policy({10.0, inf, 10.0}, 100);
  Rng rng(7);
  const auto counts = draw_many(*policy, 3, 5000, rng);
  EXPECT_EQ(counts[1], 0u);
}

TEST(AdaptPolicy, HomogeneousDegeneratesToUniform) {
  // "Logically equivalent to the existing data placement algorithm if
  // all the nodes share the same availability pattern."
  const auto policy = make_adapt_policy(std::vector<double>(6, 17.0), 600);
  Rng rng(8);
  const auto counts = draw_many(*policy, 6, 60000, rng);
  for (const std::size_t c : counts) EXPECT_NEAR(c, 10000.0, 700.0);
}

TEST(AdaptPolicy, EmpiricalSharesTrackTargets) {
  const auto policy =
      make_adapt_policy({8.0, 16.0, 12.0, 8.0, 100.0}, 2000);
  Rng rng(9);
  constexpr int kDraws = 100000;
  const auto counts = draw_many(*policy, 5, kDraws, rng);
  const auto shares = policy->target_shares();
  for (std::size_t i = 0; i < counts.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / kDraws, shares[i], 0.01);
  }
}

TEST(AdaptPolicy, MaskedFallbackStaysWeighted) {
  const auto policy = make_adapt_policy({8.0, 8.0, 800.0}, 300);
  Rng rng(10);
  // Mask out node 0 (the joint-heaviest): remaining draws should favor
  // node 1 over node 2 by ~100:1.
  const auto eligible = cluster::NodeMask::from_vector({false, true, true});
  std::size_t ones = 0;
  std::size_t twos = 0;
  for (int i = 0; i < 20000; ++i) {
    const auto choice = policy->choose(eligible, rng).value();
    ASSERT_NE(choice, 0u);
    (choice == 1 ? ones : twos) += 1;
  }
  EXPECT_GT(ones, twos * 20);
}

TEST(AdaptPolicy, MaskedFallbackMatchesRealizedDistribution) {
  // Heavy masked nodes + two tiny eligible nodes force nearly every draw
  // through the 32-rejection cutoff into the exact fallback. The
  // fallback must draw from the hash table's *realized* selection
  // probabilities conditioned on the mask — under kPaper chain
  // weighting these differ measurably from the raw weights, which the
  // old fallback sampled.
  const std::vector<double> weights = {2.6, 0.02, 1.4, 0.013, 2.0, 1.0};
  WeightedHashPolicy policy("test", weights, 7, ChainWeighting::kPaper);
  const auto realized = policy.table().selection_probabilities();
  const double p_realized = realized[1] / (realized[1] + realized[3]);
  const double p_raw = weights[1] / (weights[1] + weights[3]);
  // The setup only discriminates if the two conditionals differ by more
  // than the empirical tolerance below.
  ASSERT_GT(std::abs(p_realized - p_raw), 0.03);

  const auto eligible =
      cluster::NodeMask::from_vector({false, true, false, true, false, false});
  Rng rng(42);
  constexpr int kDraws = 120000;
  std::size_t ones = 0;
  for (int i = 0; i < kDraws; ++i) {
    const auto choice = policy.choose(eligible, rng).value();
    ASSERT_TRUE(choice == 1 || choice == 3);
    ones += choice == 1;
  }
  EXPECT_NEAR(static_cast<double>(ones) / kDraws, p_realized, 0.01);
}

TEST(AliasPolicy, MaskedFallbackMatchesShares) {
  // Same agreement property on the alias policy: masked draws (almost
  // all through the fallback) follow the sampler's realized shares
  // conditioned on the mask.
  AliasPolicy policy("test", {1000.0, 1000.0, 1000.0, 0.7, 0.3});
  const auto eligible =
      cluster::NodeMask::from_vector({false, false, false, true, true});
  Rng rng(43);
  constexpr int kDraws = 60000;
  std::size_t threes = 0;
  for (int i = 0; i < kDraws; ++i) {
    const auto choice = policy.choose(eligible, rng).value();
    ASSERT_TRUE(choice == 3 || choice == 4);
    threes += choice == 3;
  }
  EXPECT_NEAR(static_cast<double>(threes) / kDraws, 0.7, 0.01);
}

TEST(AdaptPolicy, AllEligibleZeroWeightFallsBackUniform) {
  const double inf = std::numeric_limits<double>::infinity();
  const auto policy = make_adapt_policy({10.0, inf, inf}, 100);
  Rng rng(11);
  const auto eligible = cluster::NodeMask::from_vector({false, true, true});
  std::size_t ones = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto choice = policy->choose(eligible, rng).value();
    ASSERT_NE(choice, 0u);
    ones += choice == 1;
  }
  EXPECT_NEAR(ones, 1000.0, 150.0);
}

TEST(AdaptPolicy, RejectsBadExpectedTimes) {
  EXPECT_THROW(make_adapt_policy({10.0, -1.0}, 100), std::invalid_argument);
  EXPECT_THROW(make_adapt_policy({0.0}, 100), std::invalid_argument);
}

TEST(NaivePolicy, WeightsAreSteadyStateAvailability) {
  const std::vector<avail::InterruptionParams> params = {
      {0.0, 0.0},    // dedicated: availability 1
      {0.1, 4.0},    // rho 0.4 -> 0.6
      {0.5, 3.0},    // unstable -> 0
  };
  const auto policy = make_naive_policy(params, 160);
  const auto shares = policy->target_shares();
  EXPECT_NEAR(shares[0], 1.0 / 1.6, 1e-9);
  EXPECT_NEAR(shares[1], 0.6 / 1.6, 1e-9);
  EXPECT_NEAR(shares[2], 0.0, 1e-12);
  EXPECT_EQ(policy->name(), "naive");
}

TEST(FidelityThreshold, MatchesFormula) {
  // ceil(m (k+1) / n).
  EXPECT_EQ(fidelity_threshold(2560, 1, 128), 40u);
  EXPECT_EQ(fidelity_threshold(2560, 2, 128), 60u);
  EXPECT_EQ(fidelity_threshold(100, 1, 3), 67u);
  EXPECT_THROW(fidelity_threshold(10, 0, 4), std::invalid_argument);
  EXPECT_THROW(fidelity_threshold(10, 1, 0), std::invalid_argument);
}

TEST(CappedPolicy, NeverExceedsCap) {
  const auto inner = make_adapt_policy({1.0, 1000.0, 1000.0}, 90);
  CappedPolicy capped(inner, 3, 30);
  Rng rng(12);
  std::vector<std::size_t> counts(3, 0);
  const cluster::NodeMask all(3, true);
  for (int i = 0; i < 90; ++i) {
    const auto node = capped.choose(all, rng);
    ASSERT_TRUE(node);
    capped.record_placement(*node);
    ++counts[*node];
  }
  // Node 0 wants everything but is capped; spill covers the others.
  EXPECT_EQ(counts[0], 30u);
  EXPECT_EQ(counts[1] + counts[2], 60u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_LE(capped.placed(static_cast<adapt::cluster::NodeIndex>(i)), 30u);
  }
  // Everything capped out -> no placement possible.
  EXPECT_FALSE(capped.choose(all, rng));
}

TEST(CappedPolicy, ZeroCapDisables) {
  const auto inner = make_random_policy(2);
  CappedPolicy capped(inner, 2, 0);
  Rng rng(13);
  const adapt::cluster::NodeMask both(2, true);
  for (int i = 0; i < 10; ++i) {
    capped.record_placement(capped.choose(both, rng).value());
  }
  EXPECT_EQ(capped.name(), "random");
}

TEST(CappedPolicy, RemovalFreesHeadroom) {
  const auto inner = make_random_policy(1);
  CappedPolicy capped(inner, 1, 1);
  Rng rng(14);
  const adapt::cluster::NodeMask one(1, true);
  capped.record_placement(0);
  EXPECT_FALSE(capped.choose(one, rng));
  capped.record_removal(0);
  EXPECT_TRUE(capped.choose(one, rng));
  EXPECT_THROW(capped.record_removal(1), std::out_of_range);
}

}  // namespace
