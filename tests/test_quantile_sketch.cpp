// QuantileSketch: exactness below the compaction threshold, bounded
// error past it, merge semantics, and the deterministic-serialization
// contract the cross-thread export byte-compare relies on.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "obs/quantile_sketch.h"

namespace {

using namespace adapt;
using obs::QuantileSketch;

TEST(QuantileSketch, EmptyAndEndpoints) {
  QuantileSketch s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.quantile(0.5), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_EQ(s.mean(), 0.0);

  s.observe(3.0);
  s.observe(1.0);
  s.observe(2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  // q is clamped; the endpoints are exact min/max.
  EXPECT_DOUBLE_EQ(s.quantile(-0.5), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 3.0);
  EXPECT_DOUBLE_EQ(s.quantile(7.0), 3.0);
}

TEST(QuantileSketch, TinyCapacityThrows) {
  EXPECT_THROW(QuantileSketch(3), std::invalid_argument);
  EXPECT_NO_THROW(QuantileSketch(4));
}

TEST(QuantileSketch, ExactBelowCapacity) {
  QuantileSketch s(64);
  for (int v = 1; v <= 5; ++v) s.observe(static_cast<double>(v));
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.sum(), 15.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  // Midpoint convention: the median of {1..5} is the middle entry.
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 3.0);
}

TEST(QuantileSketch, DuplicatesCoalesce) {
  QuantileSketch s(8);
  for (int i = 0; i < 100; ++i) s.observe(42.0);
  // 100 observations of one value never trigger compaction: they
  // coalesce into a single weighted entry.
  ASSERT_EQ(s.entries().size(), 1u);
  EXPECT_EQ(s.entries()[0].weight, 100u);
  EXPECT_EQ(s.count(), 100u);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 42.0);
}

TEST(QuantileSketch, InsertionOrderIrrelevantBelowCapacity) {
  std::vector<double> values;
  common::Rng rng(11);
  for (int i = 0; i < 50; ++i) values.push_back(rng.uniform() * 100.0);

  QuantileSketch forward(128);
  for (const double v : values) forward.observe(v);
  std::reverse(values.begin(), values.end());
  QuantileSketch backward(128);
  for (const double v : values) backward.observe(v);

  // The retained summary is a sorted set: identical whichever way the
  // stream arrived. (sum is float addition in arrival order, so only
  // near-equal — the byte-identity contract fixes the order instead.)
  ASSERT_EQ(forward.entries().size(), backward.entries().size());
  for (std::size_t i = 0; i < forward.entries().size(); ++i) {
    EXPECT_EQ(forward.entries()[i].value, backward.entries()[i].value);
    EXPECT_EQ(forward.entries()[i].weight, backward.entries()[i].weight);
  }
  for (const double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(forward.quantile(q), backward.quantile(q));
  }
  EXPECT_NEAR(forward.sum(), backward.sum(), 1e-9);
}

TEST(QuantileSketch, CountAndSumSurviveCompaction) {
  QuantileSketch s(16);
  common::Rng rng(5);
  double expected_sum = 0.0;
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.uniform() * 10.0;
    expected_sum += v;
    s.observe(v);
  }
  EXPECT_EQ(s.count(), 10'000u);
  EXPECT_DOUBLE_EQ(s.sum(), expected_sum);
  EXPECT_LE(s.entries().size(), 16u);
  std::uint64_t weight = 0;
  for (const auto& e : s.entries()) weight += e.weight;
  EXPECT_EQ(weight, 10'000u);  // compaction conserves total weight
}

TEST(QuantileSketch, QuantileAccuracyAfterCompaction) {
  // Uniform stream: sketched quantiles must stay close to the exact
  // order statistics even after many recompressions.
  QuantileSketch s(256);
  std::vector<double> all;
  common::Rng rng(7);
  for (int i = 0; i < 50'000; ++i) {
    const double v = rng.uniform();
    all.push_back(v);
    s.observe(v);
  }
  std::sort(all.begin(), all.end());
  for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double exact = common::percentile_sorted(all, q);
    EXPECT_NEAR(s.quantile(q), exact, 0.02)
        << "q=" << q;  // 2% of the value range on capacity 256
  }
  EXPECT_DOUBLE_EQ(s.quantile(0.0), all.front());
  EXPECT_DOUBLE_EQ(s.quantile(1.0), all.back());
}

TEST(QuantileSketch, MergeMatchesUnionBelowCapacity) {
  QuantileSketch a(128);
  QuantileSketch b(128);
  QuantileSketch both(128);
  common::Rng rng(3);
  for (int i = 0; i < 30; ++i) {
    const double va = rng.uniform();
    const double vb = rng.uniform() + 0.5;
    a.observe(va);
    b.observe(vb);
    both.observe(va);
    both.observe(vb);
  }
  a.merge(b);
  std::string merged;
  std::string direct;
  a.append_json(merged);
  both.append_json(direct);
  EXPECT_EQ(merged, direct);
}

TEST(QuantileSketch, MergeCapacityMismatchThrows) {
  QuantileSketch a(64);
  QuantileSketch b(128);
  a.observe(1.0);
  b.observe(2.0);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(QuantileSketch, MergeEmptySides) {
  QuantileSketch a;
  QuantileSketch b;
  b.observe(5.0);
  a.merge(b);  // empty += nonempty
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.quantile(0.5), 5.0);
  QuantileSketch c;
  a.merge(c);  // nonempty += empty
  EXPECT_EQ(a.count(), 1u);
}

TEST(QuantileSketch, MergeAccuracyAfterCompaction) {
  QuantileSketch merged(256);
  std::vector<double> all;
  common::Rng rng(13);
  for (int shard = 0; shard < 8; ++shard) {
    QuantileSketch s(256);
    for (int i = 0; i < 5'000; ++i) {
      const double v = rng.uniform() * 100.0;
      all.push_back(v);
      s.observe(v);
    }
    merged.merge(s);
  }
  EXPECT_EQ(merged.count(), all.size());
  std::sort(all.begin(), all.end());
  for (const double q : {0.5, 0.9, 0.99}) {
    EXPECT_NEAR(merged.quantile(q), common::percentile_sorted(all, q), 3.0)
        << "q=" << q;  // 3% of the value range, despite 8-way merging
  }
}

TEST(QuantileSketch, JsonShape) {
  QuantileSketch s(16);
  s.observe(1.0);
  s.observe(2.0);
  s.observe(3.0);
  s.observe(4.0);
  std::string out;
  s.append_json(out);
  EXPECT_EQ(out,
            "{\"count\": 4, \"sum\": 10, \"min\": 1, \"max\": 4, "
            "\"p50\": 2.5, \"p90\": 4, \"p95\": 4, \"p99\": 4}");
}

}  // namespace
