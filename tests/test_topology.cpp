#include <gtest/gtest.h>

#include "cluster/topology.h"
#include "trace/generator.h"

namespace {

using namespace adapt;
using namespace adapt::cluster;

TEST(Topology, Table2Groups) {
  const auto& groups = table2_groups();
  ASSERT_EQ(groups.size(), 4u);
  EXPECT_DOUBLE_EQ(groups[0].mtbi, 10.0);
  EXPECT_DOUBLE_EQ(groups[0].mean_service, 4.0);
  EXPECT_DOUBLE_EQ(groups[3].mtbi, 20.0);
  EXPECT_DOUBLE_EQ(groups[3].mean_service, 8.0);
}

TEST(Topology, EmulatedClusterRespectsRatioAndGroups) {
  EmulationConfig config;
  config.node_count = 128;
  config.interrupted_ratio = 0.5;
  const Cluster cluster = emulated_cluster(config);
  ASSERT_EQ(cluster.size(), 128u);

  std::size_t interrupted = 0;
  std::array<std::size_t, 4> per_group = {0, 0, 0, 0};
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    const NodeSpec& node = cluster.nodes[i];
    if (node.interruptible()) {
      ++interrupted;
      ASSERT_EQ(node.mode, AvailabilityMode::kModel);
      ++per_group[i % 4];
      EXPECT_EQ(node.arrival_clock, ArrivalClock::kUptime);
    }
  }
  EXPECT_EQ(interrupted, 64u);
  // "Divided evenly into four groups".
  for (const std::size_t count : per_group) EXPECT_EQ(count, 16u);
}

TEST(Topology, EmulatedClusterRatioEdges) {
  EmulationConfig config;
  config.node_count = 16;
  config.interrupted_ratio = 0.0;
  EXPECT_EQ(emulated_cluster(config).params()[0].lambda, 0.0);
  config.interrupted_ratio = 1.0;
  const Cluster all = emulated_cluster(config);
  for (const NodeSpec& node : all.nodes) EXPECT_TRUE(node.interruptible());
  config.interrupted_ratio = 1.5;
  EXPECT_THROW(emulated_cluster(config), std::invalid_argument);
  config.interrupted_ratio = 0.5;
  config.node_count = 0;
  EXPECT_THROW(emulated_cluster(config), std::invalid_argument);
}

TEST(Topology, ObservedParamsMatchModelUnderBothClocks) {
  // The uptime-exposure estimator recovers the injection-model lambda
  // under either arrival clock, so the "converged observer" params are
  // the ground truth: group 1 is MTBI 10, mu 4 -> lambda 1/10.
  EmulationConfig config;
  config.node_count = 8;
  config.interrupted_ratio = 1.0;
  const auto params = emulated_cluster(config).params();
  EXPECT_NEAR(params[0].lambda, 1.0 / 10.0, 1e-12);
  EXPECT_DOUBLE_EQ(params[0].mu, 4.0);

  config.absolute_arrival_clock = true;
  const auto absolute = emulated_cluster(config).params();
  EXPECT_NEAR(absolute[0].lambda, 1.0 / 10.0, 1e-12);
}

TEST(Topology, TraceClusterExtractsProfiles) {
  trace::Trace tr;
  tr.node_count = 2;
  tr.horizon = 1000.0;
  tr.events = {{0, 100.0, 50.0}, {0, 500.0, 50.0}};
  const Cluster cluster = trace_cluster(tr, TraceClusterConfig{});
  ASSERT_EQ(cluster.size(), 2u);
  EXPECT_EQ(cluster.nodes[0].mode, AvailabilityMode::kReplay);
  EXPECT_EQ(cluster.nodes[0].down_intervals.size(), 2u);
  EXPECT_NEAR(cluster.nodes[0].params.lambda, 2.0 / 1000.0, 1e-12);
  EXPECT_EQ(cluster.nodes[1].mode, AvailabilityMode::kAlwaysUp);
  EXPECT_DOUBLE_EQ(cluster.replay_horizon, 1000.0);
  EXPECT_FALSE(cluster.fifo_uplinks);
}

TEST(Topology, ModelClusterFromParams) {
  std::vector<avail::InterruptionParams> params = {
      {0.0, 0.0}, {0.001, 100.0}};
  const Cluster cluster = model_cluster(params, TraceClusterConfig{});
  ASSERT_EQ(cluster.size(), 2u);
  EXPECT_EQ(cluster.nodes[0].mode, AvailabilityMode::kAlwaysUp);
  EXPECT_EQ(cluster.nodes[1].mode, AvailabilityMode::kModel);
  EXPECT_EQ(cluster.nodes[1].arrival_clock, ArrivalClock::kAbsoluteTime);
  EXPECT_NEAR(cluster.nodes[1].service_time->mean(), 100.0, 1e-12);
}

TEST(Topology, DescribeNodeSpecs) {
  EmulationConfig config;
  config.node_count = 4;
  config.interrupted_ratio = 0.5;
  const Cluster cluster = emulated_cluster(config);
  EXPECT_NE(describe(cluster.nodes[0]).find("model"), std::string::npos);
  EXPECT_NE(describe(cluster.nodes[3]).find("always-up"), std::string::npos);
}

}  // namespace
