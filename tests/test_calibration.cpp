// CalibrationTracker: prediction pairing, the non-finite-quote guard,
// per-node sketches, CUSUM drift detection (warmup, latency, false
// positives, one-alarm-per-node) and snapshot draining.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "obs/calibration.h"

namespace {

using namespace adapt;
using obs::CalibrationOptions;
using obs::CalibrationSnapshot;
using obs::CalibrationTracker;
using obs::DriftAlarm;

CalibrationOptions enabled_options() {
  CalibrationOptions o;
  o.enabled = true;
  return o;
}

TEST(Calibration, PairsRealizedWithPredicted) {
  CalibrationTracker tracker(enabled_options());
  tracker.set_predictions({10.0, 20.0});
  tracker.record_completion(0, 12.0);
  tracker.record_completion(1, 18.0);
  tracker.record_completion(0, 8.0);
  EXPECT_EQ(tracker.pairs(), 3u);
  // ratio = (12 + 18 + 8) / (10 + 20 + 10)
  EXPECT_DOUBLE_EQ(tracker.cluster_ratio(), 38.0 / 40.0);
}

TEST(Calibration, UnquotedNodesFeedSketchesOnly) {
  CalibrationTracker tracker(enabled_options());
  tracker.set_predictions({10.0, 0.0,
                           std::numeric_limits<double>::infinity()});
  tracker.record_completion(0, 10.0);  // paired
  tracker.record_completion(1, 99.0);  // zero quote: unpaired
  tracker.record_completion(2, 99.0);  // inf quote (unstable): unpaired
  tracker.record_completion(9, 99.0);  // no quote at all: unpaired
  EXPECT_EQ(tracker.pairs(), 1u);
  EXPECT_DOUBLE_EQ(tracker.cluster_ratio(), 1.0);
  const CalibrationSnapshot snap = tracker.take_snapshot();
  // All four completions land in the realized sketch regardless.
  EXPECT_EQ(snap.realized.count(), 4u);
  EXPECT_EQ(snap.error.count(), 1u);
}

TEST(Calibration, PerNodeSketchesCarryTheQuote) {
  CalibrationOptions options = enabled_options();
  options.per_node = true;
  CalibrationTracker tracker(options);
  tracker.set_predictions({10.0, 20.0});
  tracker.record_completion(1, 25.0);
  tracker.record_completion(1, 15.0);
  const CalibrationSnapshot snap = tracker.take_snapshot();
  ASSERT_EQ(snap.nodes.size(), 1u);  // only nodes with completions
  EXPECT_EQ(snap.nodes[0].node, 1u);
  EXPECT_DOUBLE_EQ(snap.nodes[0].predicted, 20.0);
  EXPECT_EQ(snap.nodes[0].realized.count(), 2u);
  EXPECT_DOUBLE_EQ(snap.nodes[0].realized.mean(), 20.0);
}

TEST(Calibration, CusumSilentDuringWarmup) {
  CalibrationOptions options = enabled_options();
  options.warmup = 100.0;
  CalibrationTracker tracker(options);
  // Massive drift, but before warmup: nothing may fire or accumulate.
  const std::vector<double> truth = {0.001};
  const std::vector<double> drifted = {10.0};
  const std::vector<double> changed = {-1.0};
  EXPECT_TRUE(
      tracker.cusum_step(50.0, drifted, drifted, truth, truth, changed)
          .empty());
  EXPECT_TRUE(tracker.alarms().empty());
}

TEST(Calibration, CusumDetectsDriftWithLatency) {
  CalibrationOptions options = enabled_options();
  options.warmup = 0.0;
  options.cusum_threshold = 5.0;
  options.cusum_slack = 0.5;
  CalibrationTracker tracker(options);
  const std::vector<double> lambda_truth = {0.001, 0.001};
  const std::vector<double> mu_truth = {30.0, 30.0};
  // Node 0 departed at t = 100: its estimated outage time grows while
  // node 1 stays on truth.
  const std::vector<double> changed = {100.0, -1.0};
  std::vector<DriftAlarm> raised;
  double alarm_t = -1.0;
  for (double t = 105.0; t <= 300.0 && raised.empty(); t += 5.0) {
    const std::vector<double> mu_hat = {30.0 * (1.0 + (t - 100.0)), 30.0};
    raised = tracker.cusum_step(t, lambda_truth, mu_hat, lambda_truth,
                                mu_truth, changed);
    alarm_t = t;
  }
  ASSERT_EQ(raised.size(), 1u);
  EXPECT_EQ(raised[0].node, 0u);
  EXPECT_GT(raised[0].score, 5.0);
  EXPECT_DOUBLE_EQ(raised[0].latency, alarm_t - 100.0);

  // One alarm per node: continuing the drift never re-fires.
  const std::vector<double> mu_hat = {1e6, 30.0};
  EXPECT_TRUE(tracker
                  .cusum_step(500.0, lambda_truth, mu_hat, lambda_truth,
                              mu_truth, changed)
                  .empty());
  EXPECT_EQ(tracker.alarms().size(), 1u);
}

TEST(Calibration, CusumUnderEstimationNeverFires) {
  CalibrationOptions options = enabled_options();
  options.warmup = 0.0;
  CalibrationTracker tracker(options);
  const std::vector<double> truth = {0.01};
  const std::vector<double> mu_truth = {100.0};
  // Cold estimators: lambda-hat and mu-hat far *below* truth. One-sided
  // scoring must not accumulate.
  const std::vector<double> cold = {0.0};
  const std::vector<double> changed = {-1.0};
  for (double t = 10.0; t < 1000.0; t += 10.0) {
    EXPECT_TRUE(
        tracker.cusum_step(t, cold, cold, truth, mu_truth, changed).empty());
  }
}

TEST(Calibration, CusumFalsePositiveHasNegativeLatency) {
  CalibrationOptions options = enabled_options();
  options.warmup = 0.0;
  options.cusum_threshold = 1.0;
  CalibrationTracker tracker(options);
  const std::vector<double> truth = {0.001};
  const std::vector<double> mu_truth = {30.0};
  const std::vector<double> mu_hat = {3000.0};
  const std::vector<double> never_changed = {-1.0};
  std::vector<DriftAlarm> raised;
  for (double t = 10.0; t <= 100.0 && raised.empty(); t += 10.0) {
    raised = tracker.cusum_step(t, truth, mu_hat, truth, mu_truth,
                                never_changed);
  }
  ASSERT_EQ(raised.size(), 1u);
  EXPECT_DOUBLE_EQ(raised[0].latency, -1.0);  // no truth change to blame
}

TEST(Calibration, SnapshotDrainsAndResets) {
  CalibrationOptions options = enabled_options();
  options.warmup = 0.0;
  options.cusum_threshold = 1.0;
  CalibrationTracker tracker(options);
  tracker.set_predictions({10.0});
  tracker.record_completion(0, 12.0);
  tracker.cusum_step(50.0, {1.0}, {1000.0}, {0.001}, {30.0}, {10.0});
  const CalibrationSnapshot first = tracker.take_snapshot();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first.pairs, 1u);
  EXPECT_EQ(first.alarms.size(), 1u);

  const CalibrationSnapshot second = tracker.take_snapshot();
  EXPECT_TRUE(second.empty());
  EXPECT_EQ(second.realized.count(), 0u);
  EXPECT_TRUE(second.alarms.empty());
}

TEST(Calibration, SnapshotJsonShape) {
  CalibrationTracker tracker(enabled_options());
  tracker.set_predictions({10.0});
  tracker.record_completion(0, 20.0);
  std::string out;
  tracker.take_snapshot().append_json(out);
  EXPECT_EQ(out.find("{\"pairs\": 1, \"predicted_sum\": 10, "
                     "\"realized_sum\": 20, \"ratio\": 2, \"realized\": "),
            0u);
  EXPECT_NE(out.find(", \"error\": "), std::string::npos);
  EXPECT_NE(out.find(", \"alarms\": []}"), std::string::npos);
}

}  // namespace
