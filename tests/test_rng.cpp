#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/stats.h"

namespace {

using adapt::common::Rng;
using adapt::common::RunningStats;

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    stats.add(u);
  }
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
  EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform(-3.0, 5.0);
    ASSERT_GE(v, -3.0);
    ASSERT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIndexCoversRangeWithoutBias) {
  Rng rng(9);
  constexpr std::uint64_t n = 7;
  std::vector<int> counts(n, 0);
  constexpr int kDraws = 70000;
  for (int i = 0; i < kDraws; ++i) {
    const std::uint64_t v = rng.uniform_index(n);
    ASSERT_LT(v, n);
    ++counts[v];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, kDraws / n, kDraws / n * 0.1);
  }
}

TEST(Rng, UniformIndexOfOneIsZero) {
  Rng rng(10);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.uniform_index(1), 0u);
  }
}

TEST(Rng, ExponentialMatchesMean) {
  Rng rng(11);
  RunningStats stats;
  const double rate = 0.25;
  for (int i = 0; i < 200000; ++i) {
    const double x = rng.exponential(rate);
    ASSERT_GE(x, 0.0);
    stats.add(x);
  }
  EXPECT_NEAR(stats.mean(), 1.0 / rate, 0.05);
  EXPECT_NEAR(stats.stddev(), 1.0 / rate, 0.1);
}

TEST(Rng, NormalMatchesMoments) {
  Rng rng(12);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) {
    stats.add(rng.normal(10.0, 3.0));
  }
  EXPECT_NEAR(stats.mean(), 10.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 3.0, 0.05);
}

TEST(Rng, ForkedStreamsAreIndependentAndStable) {
  Rng parent(42);
  Rng a1 = parent.fork(1);
  Rng a2 = parent.fork(1);
  Rng b = parent.fork(2);
  // Same stream id -> identical sequence; different id -> different.
  EXPECT_EQ(a1(), a2());
  EXPECT_NE(a1(), b());
}

TEST(Rng, ForkDoesNotPerturbParent) {
  Rng a(5);
  Rng b(5);
  (void)a.fork(3);
  EXPECT_EQ(a(), b());
}

}  // namespace
