// Observability subsystem: metrics registry semantics, tracer ring
// behavior, JSONL round-trip, trace replay audited against the
// simulator's own accounting, and the byte-identical export contract
// across worker-thread counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "cluster/topology.h"
#include "core/adapt.h"
#include "obs/metrics.h"
#include "obs/replay.h"
#include "obs/trace.h"
#include "runner/runner.h"
#include "workload/terasort.h"

namespace {

using namespace adapt;

TEST(Metrics, CountersGaugesAccumulate) {
  obs::MetricsRegistry reg;
  const auto c = reg.counter("b.count");
  const auto g = reg.gauge("a.gauge");
  reg.add(c);
  reg.add(c, 2.5);
  reg.set(g, 7.0);
  reg.set(g, 3.0);  // set overwrites; merge (not set) keeps maxima
  EXPECT_EQ(reg.counter("b.count"), c);  // re-registration is idempotent
  const obs::MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.counters[0].second, 3.5);
  EXPECT_DOUBLE_EQ(snap.gauges[0].second, 3.0);
}

TEST(Metrics, HistogramBucketsObservations) {
  obs::MetricsRegistry reg;
  const auto h = reg.histogram(
      "lat", obs::MetricsRegistry::exponential_bounds(1.0, 2.0, 3));
  // bounds {1, 2, 4}: four buckets (<=1, <=2, <=4, overflow).
  reg.observe(h, 0.5);
  reg.observe(h, 1.0);  // lower_bound: lands in the <=1 bucket
  reg.observe(h, 3.0);
  reg.observe(h, 100.0);
  const obs::MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const obs::HistogramSnapshot& hist = snap.histograms[0];
  ASSERT_EQ(hist.counts.size(), 4u);
  EXPECT_EQ(hist.counts[0], 2u);
  EXPECT_EQ(hist.counts[1], 0u);
  EXPECT_EQ(hist.counts[2], 1u);
  EXPECT_EQ(hist.counts[3], 1u);
  EXPECT_EQ(hist.total, 4u);
  EXPECT_DOUBLE_EQ(hist.sum, 104.5);
}

TEST(Metrics, SnapshotSortsByName) {
  obs::MetricsRegistry reg;
  reg.add(reg.counter("z.last"));
  reg.add(reg.counter("a.first"));
  const obs::MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "a.first");
  EXPECT_EQ(snap.counters[1].first, "z.last");
}

TEST(Metrics, MergeSumsCountersMaxesGauges) {
  obs::MetricsRegistry a;
  a.add(a.counter("runs"), 1.0);
  a.set(a.gauge("elapsed"), 10.0);
  obs::MetricsRegistry b;
  b.add(b.counter("runs"), 1.0);
  b.add(b.counter("only_b"), 4.0);
  b.set(b.gauge("elapsed"), 25.0);
  obs::MetricsSnapshot merged =
      obs::merge_snapshots({a.snapshot(), b.snapshot()});
  ASSERT_EQ(merged.counters.size(), 2u);
  EXPECT_EQ(merged.counters[0].first, "only_b");
  EXPECT_DOUBLE_EQ(merged.counters[0].second, 4.0);
  EXPECT_DOUBLE_EQ(merged.counters[1].second, 2.0);
  ASSERT_EQ(merged.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(merged.gauges[0].second, 25.0);
}

TEST(Metrics, MergeRejectsMismatchedHistogramLayouts) {
  obs::MetricsRegistry a;
  a.observe(a.histogram("h", {1.0, 2.0}), 1.5);
  obs::MetricsRegistry b;
  b.observe(b.histogram("h", {1.0, 3.0}), 1.5);
  obs::MetricsSnapshot merged = a.snapshot();
  EXPECT_THROW(merged.merge(b.snapshot()), std::invalid_argument);
}

TEST(Metrics, ExponentialBoundsValidated) {
  EXPECT_THROW(obs::MetricsRegistry::exponential_bounds(0.0, 2.0, 4),
               std::invalid_argument);
  EXPECT_THROW(obs::MetricsRegistry::exponential_bounds(1.0, 1.0, 4),
               std::invalid_argument);
}

TEST(Metrics, MergeMaxesNegativeGauges) {
  // Gauge merge takes the maximum; that must hold below zero too (a
  // gauge of -2 beats -5, and merging must not treat 0 as a floor).
  obs::MetricsRegistry a;
  a.set(a.gauge("depth"), -5.0);
  obs::MetricsRegistry b;
  b.set(b.gauge("depth"), -2.0);
  obs::MetricsSnapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  ASSERT_EQ(merged.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(merged.gauges[0].second, -2.0);
}

TEST(Metrics, MergeEmptyWithNonEmpty) {
  obs::MetricsRegistry reg;
  reg.add(reg.counter("n"), 3.0);
  reg.observe(reg.histogram("h", {1.0, 2.0}), 1.5);

  obs::MetricsSnapshot empty_lhs;  // default-constructed: no series
  empty_lhs.merge(reg.snapshot());
  ASSERT_EQ(empty_lhs.counters.size(), 1u);
  EXPECT_DOUBLE_EQ(empty_lhs.counters[0].second, 3.0);
  ASSERT_EQ(empty_lhs.histograms.size(), 1u);
  EXPECT_EQ(empty_lhs.histograms[0].total, 1u);

  obs::MetricsSnapshot nonempty = reg.snapshot();
  nonempty.merge(obs::MetricsSnapshot{});  // absorbing empty is a no-op
  ASSERT_EQ(nonempty.counters.size(), 1u);
  EXPECT_DOUBLE_EQ(nonempty.counters[0].second, 3.0);
  EXPECT_EQ(nonempty.histograms[0].total, 1u);
}

TEST(Metrics, LogBoundsSpacing) {
  const std::vector<double> bounds =
      obs::MetricsRegistry::log_bounds(8.0, 8192.0, 21);
  ASSERT_EQ(bounds.size(), 21u);
  EXPECT_DOUBLE_EQ(bounds.front(), 8.0);
  EXPECT_DOUBLE_EQ(bounds.back(), 8192.0);  // endpoint exact, not pow-drift
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_GT(bounds[i], bounds[i - 1]);
    // Log-spaced: constant ratio between consecutive bounds.
    EXPECT_NEAR(bounds[i] / bounds[i - 1], std::pow(1024.0, 1.0 / 20.0),
                1e-9);
  }
  EXPECT_THROW(obs::MetricsRegistry::log_bounds(0.0, 10.0, 4),
               std::invalid_argument);
  EXPECT_THROW(obs::MetricsRegistry::log_bounds(10.0, 10.0, 4),
               std::invalid_argument);
  EXPECT_THROW(obs::MetricsRegistry::log_bounds(1.0, 10.0, 1),
               std::invalid_argument);
}

TEST(Metrics, SketchesSnapshotMergeAndJson) {
  obs::MetricsRegistry a;
  const auto sa = a.sketch("z.times", 64);
  a.sketch_observe(sa, 1.0);
  a.sketch_observe(sa, 3.0);
  obs::MetricsRegistry b;
  const auto sb = b.sketch("z.times", 64);
  b.sketch_observe(sb, 2.0);
  b.sketch_observe(b.sketch("a.other", 64), 9.0);

  obs::MetricsSnapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  ASSERT_EQ(merged.sketches.size(), 2u);  // name-sorted
  EXPECT_EQ(merged.sketches[0].name, "a.other");
  EXPECT_EQ(merged.sketches[1].name, "z.times");
  EXPECT_EQ(merged.sketches[1].sketch.count(), 3u);
  EXPECT_DOUBLE_EQ(merged.sketches[1].sketch.quantile(0.5), 2.0);

  std::string with;
  merged.append_json(with, "");
  EXPECT_NE(with.find("\"sketches\": ["), std::string::npos);
  EXPECT_NE(with.find("{\"name\": \"a.other\", \"summary\": {\"count\": 1"),
            std::string::npos);

  // No sketches -> no "sketches" key, so pre-existing exports stay
  // byte-identical.
  obs::MetricsRegistry plain;
  plain.add(plain.counter("c"));
  std::string without;
  plain.snapshot().append_json(without, "");
  EXPECT_EQ(without.find("\"sketches\""), std::string::npos);
}

TEST(Metrics, TimeSeriesAlignsLateRegisteredSeries) {
  obs::MetricsRegistry reg;
  const auto c = reg.counter("b.count");
  reg.add(c, 2.0);
  reg.sample(10.0);
  const auto g = reg.gauge("a.late");  // registered after the 1st sample
  reg.set(g, 7.0);
  reg.add(c);
  reg.sample(20.0);

  const obs::TimeSeriesSnapshot ts = reg.take_timeseries();
  ASSERT_EQ(ts.times.size(), 2u);
  EXPECT_DOUBLE_EQ(ts.times[0], 10.0);
  EXPECT_DOUBLE_EQ(ts.times[1], 20.0);
  ASSERT_EQ(ts.series.size(), 2u);  // name-sorted columns
  EXPECT_EQ(ts.series[0].first, "a.late");
  ASSERT_EQ(ts.series[0].second.size(), 2u);
  EXPECT_DOUBLE_EQ(ts.series[0].second[0], 0.0);  // padded before birth
  EXPECT_DOUBLE_EQ(ts.series[0].second[1], 7.0);
  EXPECT_EQ(ts.series[1].first, "b.count");
  EXPECT_DOUBLE_EQ(ts.series[1].second[0], 2.0);
  EXPECT_DOUBLE_EQ(ts.series[1].second[1], 3.0);

  // take_timeseries drains.
  EXPECT_TRUE(reg.take_timeseries().empty());
}

TEST(Metrics, TimeSeriesJsonlRoundsTrips) {
  obs::MetricsRegistry reg;
  reg.add(reg.counter("n"), 1.0);
  reg.sample(5.0);
  obs::RunObservations run;
  run.timeseries = reg.take_timeseries();
  const std::string jsonl = obs::timeseries_to_jsonl({run});
  EXPECT_EQ(jsonl,
            "{\"run\": 0, \"t\": 5, \"series\": {\"n\": 1}}\n");
}

TEST(Tracer, RingOverflowKeepsNewestAndCountsDrops) {
  obs::EventTracer tracer(4);
  for (std::uint32_t i = 0; i < 10; ++i) {
    obs::TraceRecord r;
    r.t = static_cast<double>(i);
    r.type = obs::EventType::kAttemptStart;
    r.task = i;
    tracer.record(r);
  }
  EXPECT_EQ(tracer.recorded(), 10u);
  EXPECT_EQ(tracer.dropped(), 6u);
  const std::vector<obs::TraceRecord> records = tracer.take_records();
  ASSERT_EQ(records.size(), 4u);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].task, 6u + i);  // oldest-to-newest survivors
  }
}

TEST(Trace, JsonlRoundTripsEveryEventType) {
  // One record per event type, with distinctive field values; the
  // parser must reproduce every serialized field bit-for-bit.
  std::vector<obs::RunObservations> runs(2);
  for (std::size_t i = 0; i < obs::kEventTypeCount; ++i) {
    obs::TraceRecord r;
    r.t = 0.125 * static_cast<double>(i) + 1.0 / 3.0;
    r.type = static_cast<obs::EventType>(i);
    r.reason = obs::TraceReason::kSourceTimeout;
    r.node = 17 + static_cast<std::uint32_t>(i);
    r.peer = (i % 2 == 0) ? cluster::kOriginEndpoint
                          : static_cast<std::uint32_t>(i);
    r.task = 1000 + static_cast<std::uint32_t>(i);
    r.aux = static_cast<std::uint32_t>(i % 3);
    r.ticket = 71 + i;
    r.v0 = -1.5 + static_cast<double>(i);
    r.v1 = 1e9 + static_cast<double>(i) / 7.0;
    runs[i % 2].records.push_back(r);
  }
  const std::string jsonl = obs::to_jsonl(runs);
  const std::vector<obs::RunObservations> parsed = obs::parse_jsonl(jsonl);
  // Round-trip must be lossless for every serialized field, which we
  // check by re-serializing: byte-identical JSONL implies field-identical
  // records for all fields each event type carries.
  EXPECT_EQ(obs::to_jsonl(parsed), jsonl);
  ASSERT_EQ(parsed.size(), runs.size());
  for (std::size_t run = 0; run < runs.size(); ++run) {
    ASSERT_EQ(parsed[run].records.size(), runs[run].records.size());
    for (std::size_t i = 0; i < runs[run].records.size(); ++i) {
      EXPECT_EQ(parsed[run].records[i].type, runs[run].records[i].type);
      EXPECT_EQ(parsed[run].records[i].t, runs[run].records[i].t);
    }
  }
}

TEST(Trace, DroppedMarkerRoundTrips) {
  std::vector<obs::RunObservations> runs(1);
  obs::TraceRecord r;
  r.type = obs::EventType::kJobStart;
  runs[0].records.push_back(r);
  runs[0].dropped = 42;
  const std::string jsonl = obs::to_jsonl(runs);
  const std::vector<obs::RunObservations> parsed = obs::parse_jsonl(jsonl);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].dropped, 42u);
  EXPECT_EQ(parsed[0].records.size(), 1u);
}

TEST(Trace, ParserRejectsMalformedLines) {
  EXPECT_THROW(obs::parse_jsonl("not json\n"), std::runtime_error);
  EXPECT_THROW(obs::parse_jsonl("{\"run\": 0, \"t\": 1.0, \"ev\": \"nope\"}\n"),
               std::runtime_error);
}

TEST(Trace, GrayFailureEventsRoundTripThroughReplay) {
  // The gray-failure record types must survive serialize → parse →
  // replay with their summary counters intact, including the
  // per-replica write-off/restore/trim detail records.
  const auto rec = [](double t, obs::EventType type, std::uint32_t task,
                      std::uint32_t node, std::uint32_t aux) {
    obs::TraceRecord r;
    r.t = t;
    r.type = type;
    r.task = task;
    r.node = node;
    r.aux = aux;
    return r;
  };
  std::vector<obs::RunObservations> runs(1);
  std::vector<obs::TraceRecord>& rs = runs[0].records;
  rs.push_back(rec(1.0, obs::EventType::kPartitionStart, 0, 0, 5));
  rs.push_back(rec(2.0, obs::EventType::kStragglerStart, 0, 3, 0));
  rs.push_back(rec(3.0, obs::EventType::kReplicaCorrupt, 9, 2, 0));
  rs.push_back(rec(4.0, obs::EventType::kCorruptRead, 9, 2, /*scan=*/2));
  rs.push_back(rec(5.0, obs::EventType::kSafeModeEnter, 0, 0, 4));
  rs.push_back(rec(6.0, obs::EventType::kReplicaWriteoff, 9, 2, 1));
  rs.push_back(rec(7.0, obs::EventType::kReplicaRestore, 9, 2, 0));
  rs.push_back(rec(7.0, obs::EventType::kReplicaTrim, 9, 4, 0));
  rs.push_back(rec(8.0, obs::EventType::kSafeModeExit, 2, 0, 0));
  rs.push_back(rec(9.0, obs::EventType::kStragglerEnd, 0, 3, 0));
  rs.push_back(rec(10.0, obs::EventType::kPartitionHeal, 0, 0, 5));

  const std::string jsonl = obs::to_jsonl(runs);
  const std::vector<obs::RunObservations> parsed = obs::parse_jsonl(jsonl);
  ASSERT_EQ(parsed.size(), 1u);
  ASSERT_EQ(parsed[0].records.size(), rs.size());
  EXPECT_EQ(obs::to_jsonl(parsed), jsonl);

  const obs::ReplaySummary summary = obs::replay(parsed[0].records);
  EXPECT_EQ(summary.partitions_started, 1u);
  EXPECT_EQ(summary.partitions_healed, 1u);
  EXPECT_EQ(summary.stragglers_started, 1u);
  EXPECT_EQ(summary.replicas_corrupted, 1u);
  EXPECT_EQ(summary.corrupt_reads, 1u);
  EXPECT_EQ(summary.corrupt_reads_scan, 1u);
  EXPECT_EQ(summary.safe_mode_entries, 1u);
  EXPECT_EQ(summary.safe_mode_exits, 1u);
  EXPECT_EQ(summary.count(obs::EventType::kReplicaWriteoff), 1u);
  EXPECT_EQ(summary.count(obs::EventType::kReplicaRestore), 1u);
  EXPECT_EQ(summary.count(obs::EventType::kReplicaTrim), 1u);

  // The parsed write-off keeps its false-positive marker bit.
  const obs::TraceRecord& writeoff = parsed[0].records[5];
  ASSERT_EQ(writeoff.type, obs::EventType::kReplicaWriteoff);
  EXPECT_EQ(writeoff.aux, 1u);
  EXPECT_EQ(writeoff.task, 9u);
  EXPECT_EQ(writeoff.node, 2u);
}

core::ExperimentConfig traced_config(const cluster::Cluster& cl,
                                     std::uint64_t seed) {
  const workload::Workload w = workload::emulation_workload();
  core::ExperimentConfig config;
  config.blocks = w.blocks_for(cl.size());
  config.job.gamma = w.gamma();
  config.policy = core::PolicyKind::kAdapt;
  config.replication = 1;
  config.seed = seed;
  config.obs.trace = true;
  config.obs.metrics = true;
  return config;
}

TEST(Obs, ExperimentCollectsTraceAndMetrics) {
  cluster::EmulationConfig emu;
  emu.node_count = 32;
  emu.interrupted_ratio = 0.5;
  const cluster::Cluster cl = cluster::emulated_cluster(emu);
  const core::ExperimentConfig config = traced_config(cl, 3);
  const core::ExperimentResult result = core::run_experiment(cl, config);

  ASSERT_FALSE(result.obs.records.empty());
  EXPECT_EQ(result.obs.dropped, 0u);
  const obs::ReplaySummary summary = obs::replay(result.obs.records);
  // Every (block, replica) yields a placement; every task finishes once.
  EXPECT_EQ(summary.count(obs::EventType::kPlacement),
            static_cast<std::uint64_t>(config.blocks));
  EXPECT_EQ(summary.count(obs::EventType::kJobStart), 1u);
  EXPECT_EQ(summary.count(obs::EventType::kJobEnd), 1u);
  EXPECT_EQ(summary.count(obs::EventType::kAttemptFinish),
            static_cast<std::uint64_t>(config.blocks));
  EXPECT_EQ(summary.count(obs::EventType::kAttemptStart),
            result.job.attempts_started);
  EXPECT_EQ(summary.count(obs::EventType::kTransferRequest),
            result.job.transfers_started);
  EXPECT_EQ(summary.count(obs::EventType::kTransferAbort),
            result.job.transfers_aborted);
  EXPECT_DOUBLE_EQ(summary.elapsed, result.job.elapsed);

  // Metrics mirror the JobResult counters.
  bool found = false;
  for (const auto& [name, value] : result.obs.metrics.counters) {
    if (name == "sim.tasks") {
      EXPECT_DOUBLE_EQ(value, static_cast<double>(result.job.tasks));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Obs, ReplayRecoveryMatchesSimulatorAccounting) {
  // The replayer re-derives the paper's recovery overhead (downtime x
  // slots while the node holds undone home tasks) from placement +
  // transition + completion events alone. It must agree with the
  // simulator's own bookkeeping — this is the audit that catches a
  // missing or mis-ordered trace record.
  cluster::EmulationConfig emu;
  emu.node_count = 48;
  emu.interrupted_ratio = 0.5;
  const cluster::Cluster cl = cluster::emulated_cluster(emu);
  for (const std::uint64_t seed : {3ull, 11ull, 2024ull}) {
    const core::ExperimentConfig config = traced_config(cl, seed);
    const core::ExperimentResult result = core::run_experiment(cl, config);
    const obs::ReplaySummary summary = obs::replay(result.obs.records);
    EXPECT_NEAR(summary.recovery_node_seconds,
                result.job.overhead.recovery,
                1e-6 * std::max(1.0, result.job.overhead.recovery))
        << "seed " << seed;
  }
}

TEST(Obs, TraceExportIsByteIdenticalAcrossThreadCounts) {
  cluster::EmulationConfig emu;
  emu.node_count = 32;
  emu.interrupted_ratio = 0.5;
  const cluster::Cluster cl = cluster::emulated_cluster(emu);
  const core::ExperimentConfig config = traced_config(cl, 5);

  runner::ExperimentRunner serial(1);
  runner::ExperimentRunner pooled(4);
  std::vector<obs::RunObservations> obs_serial;
  std::vector<obs::RunObservations> obs_pooled;
  (void)serial.run_replications(cl, config, 6, &obs_serial);
  (void)pooled.run_replications(cl, config, 6, &obs_pooled);

  ASSERT_EQ(obs_serial.size(), 6u);
  ASSERT_EQ(obs_pooled.size(), 6u);
  EXPECT_EQ(obs::to_jsonl(obs_serial), obs::to_jsonl(obs_pooled));

  // The merged metrics aggregate is order-insensitive too.
  std::vector<obs::MetricsSnapshot> ms;
  std::vector<obs::MetricsSnapshot> mp;
  for (const auto& run : obs_serial) ms.push_back(run.metrics);
  for (const auto& run : obs_pooled) mp.push_back(run.metrics);
  std::string js;
  std::string jp;
  obs::merge_snapshots(ms).append_json(js, "");
  obs::merge_snapshots(mp).append_json(jp, "");
  EXPECT_EQ(js, jp);
}

TEST(Obs, ReplayHandlesLateJoiners) {
  // A join_at node is absent at load time and comes up mid-run; its
  // trace opens with a kNodeUp transition with no preceding kNodeDown.
  // The replayer must charge the pre-join absence as downtime and keep
  // the recovery audit coherent.
  cluster::EmulationConfig emu;
  emu.node_count = 24;
  emu.interrupted_ratio = 0.5;
  const cluster::Cluster cl = cluster::emulated_cluster(emu);
  core::ExperimentConfig config = traced_config(cl, 9);
  config.job.churn.enabled = true;
  config.job.churn.join_at.assign(cl.size(), 0.0);
  config.job.churn.join_at[3] = 40.0;
  config.job.churn.join_at[7] = 80.0;
  const core::ExperimentResult result = core::run_experiment(cl, config);
  ASSERT_FALSE(result.obs.records.empty());

  const obs::ReplaySummary summary = obs::replay(result.obs.records);
  EXPECT_DOUBLE_EQ(summary.elapsed, result.job.elapsed);
  ASSERT_GT(summary.nodes.size(), 7u);
  // The joiners' absence from t=0 counts as downtime, so each accrues
  // at least its join delay (more if it also had interruptions later).
  EXPECT_GE(summary.nodes[3].downtime, 40.0 - 1e-9);
  EXPECT_GE(summary.nodes[7].downtime,
            std::min(80.0, result.job.elapsed) - 1e-9);
  EXPECT_GE(summary.nodes[3].transitions, 1u);
}

TEST(Obs, FullStackExportsAreByteIdenticalAcrossThreadCounts) {
  // The new artifacts — span streams, time-series rows and calibration
  // summaries — honor the same cross-thread byte-identity contract as
  // traces and metrics.
  cluster::EmulationConfig emu;
  emu.node_count = 32;
  emu.interrupted_ratio = 0.5;
  const cluster::Cluster cl = cluster::emulated_cluster(emu);
  core::ExperimentConfig config = traced_config(cl, 5);
  config.obs.spans = true;
  config.obs.sample_dt = 10.0;
  config.obs.calibration.enabled = true;
  config.obs.calibration.per_node = true;

  runner::ExperimentRunner serial(1);
  runner::ExperimentRunner pooled(4);
  std::vector<obs::RunObservations> obs_serial;
  std::vector<obs::RunObservations> obs_pooled;
  (void)serial.run_replications(cl, config, 4, &obs_serial);
  (void)pooled.run_replications(cl, config, 4, &obs_pooled);

  ASSERT_EQ(obs_serial.size(), 4u);
  ASSERT_EQ(obs_pooled.size(), 4u);
  EXPECT_FALSE(obs_serial[0].spans.empty());
  EXPECT_FALSE(obs_serial[0].timeseries.empty());
  EXPECT_GT(obs_serial[0].calibration.pairs, 0u);
  EXPECT_EQ(obs::spans_to_jsonl(obs_serial, false),
            obs::spans_to_jsonl(obs_pooled, false));
  EXPECT_EQ(obs::timeseries_to_jsonl(obs_serial),
            obs::timeseries_to_jsonl(obs_pooled));
  for (std::size_t i = 0; i < obs_serial.size(); ++i) {
    std::string a;
    std::string b;
    obs_serial[i].calibration.append_json(a);
    obs_pooled[i].calibration.append_json(b);
    EXPECT_EQ(a, b) << "run " << i;
  }
  // Host-clock span times are intentionally excluded from the
  // deterministic export but present in memory.
  EXPECT_GT(obs_serial[0].spans.back().dur_host_ns, 0u);
}

}  // namespace
