// Churn & recovery: dead-node declaration, the re-replication pipeline,
// structured data-loss reports and graceful termination when nodes
// depart permanently mid-job.
#include <gtest/gtest.h>

#include <stdexcept>

#include "cluster/topology.h"
#include "hdfs/namenode.h"
#include "placement/random_policy.h"
#include "sim/mapreduce_sim.h"

namespace {

using namespace adapt;
using namespace adapt::sim;
using cluster::AvailabilityMode;
using cluster::Cluster;
using cluster::NodeSpec;
using common::kMiB;
using common::mbps;

Cluster bare_cluster(std::size_t n, double bps = mbps(8)) {
  Cluster cluster;
  cluster.nodes.resize(n);
  for (NodeSpec& node : cluster.nodes) {
    node.uplink_bps = bps;
    node.downlink_bps = bps;
  }
  return cluster;
}

// Places `blocks` blocks with explicit replica lists.
hdfs::FileId plant_file(hdfs::NameNode& nn,
                        const std::vector<std::vector<cluster::NodeIndex>>&
                            replicas) {
  common::Rng rng(1);
  const hdfs::FileId id = nn.create_file(
      "f", static_cast<std::uint32_t>(replicas.size()),
      static_cast<int>(replicas[0].size()),
      placement::make_random_policy(nn.node_count()), rng);
  for (std::size_t b = 0; b < replicas.size(); ++b) {
    const hdfs::BlockId block = nn.file(id).blocks[b];
    const auto old_replicas = nn.block(block).replicas;
    for (const auto node : old_replicas) nn.remove_replica(block, node);
    for (const auto node : replicas[b]) nn.add_replica(block, node);
  }
  return id;
}

// Node 0 holds one replica of three blocks and leaves for good at t=30.
// Detection (3 s x 2 misses) + dead_timeout 20 declares it dead at ~56;
// the pipeline must restore every dropped replica on the survivors and
// the job must finish with zero loss.
TEST(Churn, DeadNodeReplicasAreReReplicated) {
  Cluster cluster = bare_cluster(4);
  cluster.block_size_bytes = 8 * kMiB;  // ~8.4 s per repair at 8 Mb/s
  cluster.nodes[0].mode = AvailabilityMode::kReplay;
  cluster.nodes[0].down_intervals = {{30.0, 9e5}};
  hdfs::NameNode nn(4);
  const auto file = plant_file(nn, {{0, 1}, {0, 2}, {0, 3}, {1, 2}});
  SimJobConfig config;
  config.gamma = 40.0;
  config.randomize_replay_offset = false;
  config.replay_horizon = 1e6;
  config.allow_origin_fetch = false;
  config.churn.enabled = true;
  config.churn.heartbeat_interval = 3.0;
  config.churn.heartbeat_miss_threshold = 2;
  config.churn.dead_timeout = 20.0;
  MapReduceSimulation sim(cluster, nn, file, config);
  const JobResult r = sim.run();

  EXPECT_FALSE(r.failed);
  EXPECT_EQ(r.failure, "");
  EXPECT_EQ(r.nodes_dead, 1u);
  EXPECT_EQ(r.replicas_dropped, 3u);
  EXPECT_EQ(r.blocks_lost, 0u);
  EXPECT_EQ(r.tasks_lost, 0u);
  EXPECT_TRUE(r.lost_blocks.empty());
  EXPECT_GE(r.rereplications, 1u);
  EXPECT_GT(r.rereplication_bytes, 0u);
  EXPECT_GE(r.max_under_replicated, 1u);
  // The dead node's replicas were written off and none came back to it.
  EXPECT_TRUE(nn.is_dead(0));
  for (const hdfs::BlockId block : nn.file(file).blocks) {
    const auto& replicas = nn.block(block).replicas;
    EXPECT_GE(replicas.size(), 1u);
    for (const auto node : replicas) EXPECT_NE(node, 0u);
  }
}

// With the pipeline off and origin fetch disabled, losing the only
// replica of a block is unrecoverable: the job must terminate with a
// structured data-loss report instead of hanging.
TEST(Churn, PipelineOffAndOriginOffReportsDataLoss) {
  Cluster cluster = bare_cluster(2);
  cluster.nodes[0].mode = AvailabilityMode::kReplay;
  cluster.nodes[0].down_intervals = {{2.0, 9e5}};
  hdfs::NameNode nn(2);
  const auto file = plant_file(nn, {{0}, {1}, {1}});
  SimJobConfig config;
  config.gamma = 10.0;
  config.randomize_replay_offset = false;
  config.replay_horizon = 1e6;
  config.allow_origin_fetch = false;
  config.speculation = false;
  config.churn.enabled = true;
  config.churn.heartbeat_interval = 1.0;
  config.churn.heartbeat_miss_threshold = 2;
  config.churn.dead_timeout = 5.0;
  config.churn.rereplication.enabled = false;
  MapReduceSimulation sim(cluster, nn, file, config);
  const JobResult r = sim.run();

  EXPECT_TRUE(r.failed);
  EXPECT_EQ(r.failure, "data_loss");
  EXPECT_EQ(r.nodes_dead, 1u);
  EXPECT_EQ(r.blocks_lost, 1u);
  EXPECT_EQ(r.tasks_lost, 1u);
  ASSERT_EQ(r.lost_blocks.size(), 1u);
  EXPECT_EQ(r.lost_blocks[0].task, 0u);
  EXPECT_EQ(r.lost_blocks[0].block, nn.file(file).blocks[0]);
  EXPECT_EQ(r.rereplications, 0u);
  // The healthy node's tasks still completed.
  EXPECT_EQ(r.local_wins, 2u);
}

// Same loss scenario, but the origin copy is reachable: the written-off
// block is recoverable, so the job degrades to an origin re-fetch
// instead of failing.
TEST(Churn, OriginFetchRescuesWrittenOffBlock) {
  Cluster cluster = bare_cluster(2);
  cluster.nodes[0].mode = AvailabilityMode::kReplay;
  cluster.nodes[0].down_intervals = {{2.0, 9e5}};
  hdfs::NameNode nn(2);
  const auto file = plant_file(nn, {{0}, {1}, {1}});
  SimJobConfig config;
  config.gamma = 10.0;
  config.randomize_replay_offset = false;
  config.replay_horizon = 1e6;
  config.allow_origin_fetch = true;
  config.churn.enabled = true;
  config.churn.heartbeat_interval = 1.0;
  config.churn.heartbeat_miss_threshold = 2;
  config.churn.dead_timeout = 5.0;
  config.churn.rereplication.enabled = false;
  MapReduceSimulation sim(cluster, nn, file, config);
  const JobResult r = sim.run();

  EXPECT_FALSE(r.failed);
  EXPECT_EQ(r.tasks_lost, 0u);
  EXPECT_EQ(r.blocks_lost, 1u);  // written off, but recoverable
  EXPECT_GE(r.origin_wins, 1u);
}

// A node declared dead that later returns is resurrected: it rejoins
// the cluster (and the re-replication destination pool) even though its
// written-off replicas stay gone.
TEST(Churn, DeadNodeThatReturnsIsResurrected) {
  Cluster cluster = bare_cluster(3);
  cluster.block_size_bytes = 8 * kMiB;
  cluster.nodes[0].mode = AvailabilityMode::kReplay;
  cluster.nodes[0].down_intervals = {{10.0, 120.0}};
  hdfs::NameNode nn(3);
  const auto file = plant_file(nn, {{0, 1}, {0, 2}, {1, 2}, {1, 2}});
  SimJobConfig config;
  config.gamma = 80.0;
  config.randomize_replay_offset = false;
  config.replay_horizon = 1e6;
  config.allow_origin_fetch = false;
  config.churn.enabled = true;
  config.churn.heartbeat_interval = 3.0;
  config.churn.heartbeat_miss_threshold = 2;
  config.churn.dead_timeout = 30.0;  // declared at ~46, back at 120
  MapReduceSimulation sim(cluster, nn, file, config);
  const JobResult r = sim.run();

  EXPECT_FALSE(r.failed);
  EXPECT_EQ(r.nodes_dead, 1u);
  EXPECT_EQ(r.nodes_resurrected, 1u);
  EXPECT_EQ(r.tasks_lost, 0u);
  EXPECT_FALSE(nn.is_dead(0));
}

// A correlated burst that takes out every node leaves no survivor to
// finish (or even re-fetch) the remaining work: the run must drain its
// event queue and report no_live_nodes rather than spin forever.
TEST(Churn, AllNodesDepartingReportsNoLiveNodes) {
  const Cluster cluster = bare_cluster(2);
  hdfs::NameNode nn(2);
  const auto file = plant_file(nn, {{0}, {1}});
  SimJobConfig config;
  config.gamma = 100.0;
  config.allow_origin_fetch = true;  // recoverable, yet nobody to fetch
  config.churn.enabled = true;
  config.churn.burst_at = 5.0;
  config.churn.burst_fraction = 1.0;
  config.churn.heartbeat_interval = 1.0;
  config.churn.heartbeat_miss_threshold = 2;
  config.churn.dead_timeout = 5.0;
  MapReduceSimulation sim(cluster, nn, file, config);
  const JobResult r = sim.run();

  EXPECT_TRUE(r.failed);
  EXPECT_EQ(r.failure, "no_live_nodes");
  EXPECT_EQ(r.nodes_departed, 2u);
  EXPECT_EQ(r.nodes_dead, 2u);
  EXPECT_EQ(r.tasks_lost, 2u);
  EXPECT_EQ(r.lost_blocks.size(), 2u);
}

// Hazard-driven departures below the pipeline's capacity: across seeds,
// every run terminates and satisfies the loss invariants; a run only
// fails when it actually lost tasks or every node left.
TEST(Churn, HazardDeparturesBelowCapacityCompleteWithoutLoss) {
  Cluster cluster = bare_cluster(12);
  cluster.block_size_bytes = 8 * kMiB;
  std::vector<std::vector<cluster::NodeIndex>> layout;
  for (cluster::NodeIndex b = 0; b < 12; ++b) {
    layout.push_back({b, static_cast<cluster::NodeIndex>((b + 1) % 12)});
  }
  int failures = 0;
  for (std::uint64_t seed : {7ull, 21ull, 1234ull}) {
    hdfs::NameNode nn(12);
    const auto file = plant_file(nn, layout);
    SimJobConfig config;
    config.gamma = 25.0;
    config.allow_origin_fetch = false;
    config.seed = seed;
    config.churn.enabled = true;
    config.churn.departure_rate = 1.0 / 600.0;  // per-node hazard
    config.churn.heartbeat_interval = 2.0;
    config.churn.heartbeat_miss_threshold = 2;
    config.churn.dead_timeout = 10.0;
    MapReduceSimulation sim(cluster, nn, file, config);
    const JobResult r = sim.run();
    if (r.failed) {
      ++failures;
      EXPECT_TRUE(r.failure == "data_loss" || r.failure == "no_live_nodes");
      EXPECT_GT(r.tasks_lost, 0u);
    } else {
      EXPECT_EQ(r.tasks_lost, 0u);
      EXPECT_TRUE(r.lost_blocks.empty());
    }
    EXPECT_EQ(r.lost_blocks.size(), r.tasks_lost);
    EXPECT_GE(r.nodes_departed, r.nodes_dead - r.nodes_resurrected);
  }
  // Replication 2 with a gentle hazard: most seeds must survive.
  EXPECT_LE(failures, 1);
}

// Same seed, same config: the full result — counters and clock — is
// reproduced exactly.
TEST(Churn, SameSeedReproducesResultExactly) {
  std::vector<std::vector<cluster::NodeIndex>> layout = {
      {0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}, {1, 3}};
  auto run_once = [&layout] {
    Cluster cluster = bare_cluster(4);
    cluster.block_size_bytes = 8 * kMiB;
    hdfs::NameNode nn(4);
    const auto file = plant_file(nn, layout);
    SimJobConfig config;
    config.gamma = 20.0;
    config.allow_origin_fetch = false;
    config.seed = 42;
    config.churn.enabled = true;
    config.churn.departure_rate = 1.0 / 300.0;
    config.churn.burst_at = 35.0;
    config.churn.burst_fraction = 0.25;
    config.churn.heartbeat_interval = 2.0;
    config.churn.heartbeat_miss_threshold = 2;
    config.churn.dead_timeout = 15.0;
    MapReduceSimulation sim(cluster, nn, file, config);
    return sim.run();
  };
  const JobResult a = run_once();
  const JobResult b = run_once();
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.failure, b.failure);
  EXPECT_EQ(a.nodes_departed, b.nodes_departed);
  EXPECT_EQ(a.nodes_dead, b.nodes_dead);
  EXPECT_EQ(a.nodes_resurrected, b.nodes_resurrected);
  EXPECT_EQ(a.replicas_dropped, b.replicas_dropped);
  EXPECT_EQ(a.blocks_lost, b.blocks_lost);
  EXPECT_EQ(a.tasks_lost, b.tasks_lost);
  EXPECT_EQ(a.rereplications, b.rereplications);
  EXPECT_EQ(a.rereplication_retries, b.rereplication_retries);
  EXPECT_EQ(a.rereplication_giveups, b.rereplication_giveups);
  EXPECT_EQ(a.rereplication_bytes, b.rereplication_bytes);
  EXPECT_EQ(a.network_bytes, b.network_bytes);
  EXPECT_EQ(a.events_processed, b.events_processed);
}

// Late joiners start absent and enter the cluster at join_at; they can
// host re-replicas once they arrive.
TEST(Churn, LateJoinerEntersCluster) {
  Cluster cluster = bare_cluster(3);
  cluster.block_size_bytes = 8 * kMiB;
  hdfs::NameNode nn(3);
  const auto file = plant_file(nn, {{0, 1}, {0, 1}, {0, 1}, {0, 1}});
  SimJobConfig config;
  config.gamma = 30.0;
  config.allow_origin_fetch = false;
  config.churn.enabled = true;
  config.churn.join_at = {0.0, 0.0, 25.0};  // node 2 joins at t=25
  config.churn.heartbeat_interval = 2.0;
  config.churn.heartbeat_miss_threshold = 2;
  config.churn.dead_timeout = 100.0;
  MapReduceSimulation sim(cluster, nn, file, config);
  const JobResult r = sim.run();
  EXPECT_FALSE(r.failed);
  EXPECT_EQ(r.tasks_lost, 0u);
}

// Config validation: churn needs the mutable-NameNode constructor and a
// positive dead timeout.
TEST(Churn, ConfigValidation) {
  const Cluster cluster = bare_cluster(2);
  hdfs::NameNode nn(2);
  const auto file = plant_file(nn, {{0}, {1}});
  SimJobConfig config;
  config.churn.enabled = true;
  const hdfs::NameNode& const_nn = nn;
  EXPECT_THROW(MapReduceSimulation(cluster, const_nn, file, config),
               std::invalid_argument);
  config.churn.dead_timeout = 0.0;
  EXPECT_THROW(MapReduceSimulation(cluster, nn, file, config),
               std::invalid_argument);
}

}  // namespace
