// End-to-end smoke: a small heterogeneous cluster, both policies, the
// whole pipeline. Deeper per-module tests live in their own files.
#include <gtest/gtest.h>

#include "core/adapt.h"
#include "workload/terasort.h"

namespace {

using namespace adapt;

TEST(Smoke, AdaptBeatsRandomOnHeterogeneousCluster) {
  cluster::EmulationConfig emu;
  emu.node_count = 32;
  emu.interrupted_ratio = 0.5;
  const cluster::Cluster cl = cluster::emulated_cluster(emu);

  const workload::Workload w = workload::emulation_workload();

  core::ExperimentConfig config;
  config.blocks = w.blocks_for(cl.size());
  config.replication = 1;
  config.job.gamma = w.gamma();
  config.seed = 7;

  config.policy = core::PolicyKind::kAdapt;
  const core::RepeatedResult adapt_result = core::run_repeated(cl, config, 3);

  config.policy = core::PolicyKind::kRandom;
  const core::RepeatedResult random_result = core::run_repeated(cl, config, 3);

  EXPECT_LT(adapt_result.elapsed.mean, random_result.elapsed.mean);
  EXPECT_GT(adapt_result.locality.mean, random_result.locality.mean);
  EXPECT_GT(adapt_result.locality.mean, 0.9);
}

}  // namespace
