#include <gtest/gtest.h>

#include "sim/overhead.h"

namespace {

using adapt::sim::OverheadBreakdown;

TEST(Overhead, FinalizeDerivesMiscFromConservation) {
  OverheadBreakdown b;
  b.base = 1000.0;
  b.rework = 50.0;
  b.recovery = 100.0;
  b.migration = 150.0;
  b.elapsed = 200.0;
  b.node_count = 10;  // wall = 2000
  b.finalize();
  EXPECT_DOUBLE_EQ(b.misc, 700.0);
  EXPECT_DOUBLE_EQ(b.total_overhead(), 1000.0);
  EXPECT_DOUBLE_EQ(b.total_ratio(), 1.0);
  EXPECT_DOUBLE_EQ(b.rework_ratio(), 0.05);
  EXPECT_DOUBLE_EQ(b.recovery_ratio(), 0.1);
  EXPECT_DOUBLE_EQ(b.migration_ratio(), 0.15);
  EXPECT_DOUBLE_EQ(b.misc_ratio(), 0.7);
}

TEST(Overhead, TinyNegativeResidueClamps) {
  OverheadBreakdown b;
  b.base = 1000.0;
  b.elapsed = 100.0;
  b.node_count = 10;
  b.rework = 1e-9;  // accounted fractionally above wall via fp noise
  b.finalize();
  EXPECT_DOUBLE_EQ(b.misc, 0.0);
}

TEST(Overhead, LargeOveraccountingThrows) {
  OverheadBreakdown b;
  b.base = 1000.0;
  b.elapsed = 100.0;
  b.node_count = 10;
  b.migration = 500.0;  // wall is only 1000
  EXPECT_THROW(b.finalize(), std::logic_error);
}

TEST(Overhead, ZeroBaseRatios) {
  OverheadBreakdown b;
  b.finalize();
  EXPECT_EQ(b.total_ratio(), 0.0);
  EXPECT_EQ(b.misc_ratio(), 0.0);
}

TEST(Overhead, DescribeMentionsComponents) {
  OverheadBreakdown b;
  b.base = 100.0;
  b.elapsed = 20.0;
  b.node_count = 10;
  b.finalize();
  const std::string s = b.describe();
  EXPECT_NE(s.find("rework"), std::string::npos);
  EXPECT_NE(s.find("migration"), std::string::npos);
}

}  // namespace
