// Algorithm 1's hash table: construction, collision chains, sampling
// proportionality, and the paper-vs-overlap chain weighting ablation.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "placement/hash_table.h"

namespace {

using namespace adapt::placement;
using adapt::common::Rng;

TEST(HashTable, UniformWeightsGiveSingletonChains) {
  // Integral widths: every cell maps to exactly one node.
  const BlockHashTable table({1.0, 1.0, 1.0, 1.0}, 100,
                             ChainWeighting::kPaper);
  const auto hist = table.chain_length_histogram();
  ASSERT_GE(hist.size(), 2u);
  EXPECT_EQ(hist[1], 100u);  // all chains length 1
  const auto probs = table.selection_probabilities();
  for (const double p : probs) EXPECT_NEAR(p, 0.25, 1e-12);
}

TEST(HashTable, SharesAreNormalizedWeights) {
  const BlockHashTable table({2.0, 6.0}, 10, ChainWeighting::kPaper);
  EXPECT_NEAR(table.shares()[0], 0.25, 1e-12);
  EXPECT_NEAR(table.shares()[1], 0.75, 1e-12);
}

TEST(HashTable, FractionalBoundariesCreateChains) {
  // Widths 2.5 and 2.5 over 5 cells: cell 2 is shared.
  const BlockHashTable table({1.0, 1.0}, 5, ChainWeighting::kOverlap);
  const auto hist = table.chain_length_histogram();
  EXPECT_EQ(hist[1], 4u);
  EXPECT_EQ(hist[2], 1u);
}

TEST(HashTable, OverlapWeightingIsExact) {
  const std::vector<double> weights = {0.3, 1.7, 2.0, 0.1, 5.9};
  const BlockHashTable table(weights, 997, ChainWeighting::kOverlap);
  const double total =
      std::accumulate(weights.begin(), weights.end(), 0.0);
  const auto probs = table.selection_probabilities();
  for (std::size_t i = 0; i < weights.size(); ++i) {
    EXPECT_NEAR(probs[i], weights[i] / total, 1e-6) << "node " << i;
  }
}

TEST(HashTable, PaperWeightingIsCloseButNotExact) {
  const std::vector<double> weights = {1.0, 2.0, 3.0, 4.0};
  const BlockHashTable table(weights, 101, ChainWeighting::kPaper);
  const auto probs = table.selection_probabilities();
  double distortion = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    distortion += std::abs(probs[i] - table.shares()[i]);
  }
  // The paper's rate_i/Omega rule distorts shares slightly; with m >>
  // n the total distortion is bounded by ~n/m.
  EXPECT_GT(distortion, 0.0);
  EXPECT_LT(distortion, 4.0 / 101.0 * 2.0);
}

class HashTableSampling
    : public ::testing::TestWithParam<ChainWeighting> {};

TEST_P(HashTableSampling, EmpiricalFrequenciesMatchProbabilities) {
  const std::vector<double> weights = {0.5, 1.0, 0.0, 2.5, 1.0};
  const BlockHashTable table(weights, 200, GetParam());
  const auto probs = table.selection_probabilities();
  Rng rng(31);
  std::vector<std::size_t> counts(weights.size(), 0);
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) ++counts[table.sample(rng)];
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double freq = static_cast<double>(counts[i]) / kDraws;
    EXPECT_NEAR(freq, probs[i], 0.01) << "node " << i;
  }
  EXPECT_EQ(counts[2], 0u);  // zero weight -> never sampled
}

INSTANTIATE_TEST_SUITE_P(BothWeightings, HashTableSampling,
                         ::testing::Values(ChainWeighting::kPaper,
                                           ChainWeighting::kOverlap),
                         [](const auto& info) {
                           return to_string(info.param);
                         });

TEST(HashTable, SingleNodeTakesEverything) {
  const BlockHashTable table({3.0}, 7, ChainWeighting::kPaper);
  Rng rng(1);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(table.sample(rng), 0u);
}

TEST(HashTable, ManyMoreNodesThanCells) {
  // n > m: every cell is a long chain; probabilities still normalized.
  const std::vector<double> weights(64, 1.0);
  const BlockHashTable table(weights, 8, ChainWeighting::kOverlap);
  const auto probs = table.selection_probabilities();
  double sum = 0.0;
  for (const double p : probs) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

// Property: a positive construction weight must never round away to a
// zero selection probability. Adversarial vectors drive the cumulative
// boundary cursor into rounding drift (tiny trailing shares at the
// clamped top end of the table, extreme dynamic range whose resolution
// weights would underflow the float chain entries).
TEST(HashTable, PositiveWeightAlwaysSelectable) {
  std::vector<std::vector<double>> vectors = {
      {1e12, 1.0, 1e12, 1e-9},
      {1e30, 1e-30, 1e30, 1e-30, 1.0},
      {0.1, 0.0, 1e-12, 7.7, 1e-40},
      {1e150, 1e-150, 1.0},
  };
  // Log-uniform random vectors sprinkle tiny segments across the whole
  // table, not just the top end.
  Rng rng(2024);
  for (int v = 0; v < 16; ++v) {
    std::vector<double> w;
    for (int i = 0; i < 64; ++i) w.push_back(std::exp(rng.uniform(-80.0, 10.0)));
    w[3] = 0.0;  // keep the zero-weight -> zero-probability leg covered
    vectors.push_back(std::move(w));
  }
  for (const auto& weights : vectors) {
    for (const auto weighting :
         {ChainWeighting::kPaper, ChainWeighting::kOverlap}) {
      for (const std::uint64_t cells : {7ull, 128ull, 1009ull}) {
        const BlockHashTable table(weights, cells, weighting);
        const auto probs = table.selection_probabilities();
        for (std::size_t i = 0; i < weights.size(); ++i) {
          if (weights[i] > 0.0) {
            EXPECT_GT(probs[i], 0.0)
                << "node " << i << " cells " << cells << " weighting "
                << to_string(weighting);
          } else {
            EXPECT_EQ(probs[i], 0.0) << "node " << i;
          }
        }
      }
    }
  }
}

TEST(HashTable, CursorDriftKeepsTopEndProportional) {
  // The cumulative boundary cursor accumulates one rounding error per
  // node; with hundreds of irrational widths it drifts either way at
  // the top end. The guard must close a downward gap below m without
  // ever widening a segment past its fair share when the cursor
  // overshoots, so the tail nodes keep proportional probabilities.
  std::vector<double> weights;
  Rng rng(7);
  for (int i = 0; i < 400; ++i) {
    weights.push_back(1.0 / 3.0 + rng.uniform() * 1e-3);
  }
  double total = 0.0;
  for (const double w : weights) total += w;
  for (const std::uint64_t cells : {401ull, 997ull, 4096ull}) {
    const BlockHashTable table(weights, cells, ChainWeighting::kOverlap);
    const auto probs = table.selection_probabilities();
    double sum = 0.0;
    for (const double p : probs) sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-9) << "cells " << cells;
    // The last node sits on the drift-prone boundary; its probability
    // must stay close to its share, not absorb or lose the drift.
    const std::size_t last = weights.size() - 1;
    EXPECT_NEAR(probs[last], weights[last] / total,
                2.0 / static_cast<double>(cells))
        << "cells " << cells;
  }
}

TEST(HashTable, Validation) {
  EXPECT_THROW(BlockHashTable({}, 10, ChainWeighting::kPaper),
               std::invalid_argument);
  EXPECT_THROW(BlockHashTable({1.0}, 0, ChainWeighting::kPaper),
               std::invalid_argument);
  EXPECT_THROW(BlockHashTable({0.0, 0.0}, 10, ChainWeighting::kPaper),
               std::invalid_argument);
  EXPECT_THROW(BlockHashTable({-1.0, 2.0}, 10, ChainWeighting::kPaper),
               std::invalid_argument);
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(BlockHashTable({inf, 1.0}, 10, ChainWeighting::kPaper),
               std::invalid_argument);
}

}  // namespace
