// Monte-Carlo validation of Eq. 5: a single simulated node processing
// tasks under injected M/G/1 interruptions should average E[T] per task.
#include <gtest/gtest.h>

#include <cmath>

#include "cluster/node.h"
#include "common/stats.h"
#include "sim/event_queue.h"
#include "sim/injector.h"

namespace {

using namespace adapt;
using namespace adapt::sim;

// A minimal single-node task runner: runs `tasks` sequential tasks of
// length gamma; an interruption kills the in-flight attempt, which
// restarts when the node returns (the model's world: no migration).
class SerialRunner : public InterruptionInjector::Listener {
 public:
  SerialRunner(EventQueue& queue, double gamma) : queue_(queue),
                                                  gamma_(gamma) {}

  void start() { begin_attempt(); }

  void on_node_down(cluster::NodeIndex) override {
    up_ = false;
    attempt_event_.cancel();
  }
  void on_node_up(cluster::NodeIndex) override {
    up_ = true;
    if (!done_) begin_attempt();
  }

  bool done() const { return done_; }
  common::Seconds finished_at() const { return finished_at_; }

 private:
  void begin_attempt() {
    if (!up_ || done_) return;
    attempt_event_ = queue_.schedule(queue_.now() + gamma_, [this] {
      done_ = true;
      finished_at_ = queue_.now();
    });
  }

  EventQueue& queue_;
  double gamma_;
  bool up_ = true;
  bool done_ = false;
  common::Seconds finished_at_ = 0.0;
  EventQueue::Handle attempt_event_;
};

struct ModelPoint {
  double lambda;
  double mu;
  double gamma;
};

class Equation5Validation : public ::testing::TestWithParam<ModelPoint> {};

TEST_P(Equation5Validation, SimulatedTaskTimeMatchesCloseForm) {
  const auto [lambda, mu, gamma] = GetParam();
  const avail::InterruptionParams params{lambda, mu};
  const double expected = avail::expected_task_time(params, gamma);

  cluster::NodeSpec spec;
  spec.mode = cluster::AvailabilityMode::kModel;
  spec.arrival_clock = cluster::ArrivalClock::kAbsoluteTime;
  spec.params = params;
  // Exponential service: the M in M/G/1 plus a concrete G.
  spec.service_time = avail::exponential(mu);
  const std::vector<cluster::NodeSpec> nodes = {spec};

  common::RunningStats times;
  common::Rng seeds(2718);
  constexpr int kTasks = 4000;
  for (int i = 0; i < kTasks; ++i) {
    EventQueue queue;
    SerialRunner runner(queue, gamma);
    InterruptionInjector injector(queue, nodes, runner,
                                  common::Rng(seeds()));
    injector.start();
    runner.start();
    queue.run_until([&] { return runner.done(); });
    times.add(runner.finished_at());
  }
  // Mean within 4 standard errors (plus a small epsilon for the tiny
  // bias of starting each task at time zero with an idle repair queue).
  const double stderr_mean =
      times.stddev() / std::sqrt(static_cast<double>(times.count()));
  EXPECT_NEAR(times.mean(), expected,
              4.0 * stderr_mean + 0.05 * expected)
      << "lambda=" << lambda << " mu=" << mu << " gamma=" << gamma;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Equation5Validation,
    ::testing::Values(ModelPoint{0.1, 4.0, 8.0},    // Table 2 group 1
                      ModelPoint{0.05, 8.0, 8.0},   // Table 2 group 4
                      ModelPoint{0.02, 10.0, 12.0},
                      ModelPoint{0.01, 20.0, 12.0}),
    [](const auto& info) {
      const ModelPoint& p = info.param;
      return "l" + std::to_string(static_cast<int>(p.lambda * 1000)) +
             "_m" + std::to_string(static_cast<int>(p.mu)) + "_g" +
             std::to_string(static_cast<int>(p.gamma));
    });

// The deterministic-service variant still satisfies Eq. 3 with mean mu,
// since E[Y] depends only on the service mean (M/G/1 busy period).
TEST(Equation5Validation, DeterministicServiceMatchesToo) {
  const avail::InterruptionParams params{0.05, 6.0};
  const double gamma = 10.0;
  const double expected = avail::expected_task_time(params, gamma);

  cluster::NodeSpec spec;
  spec.mode = cluster::AvailabilityMode::kModel;
  spec.params = params;
  spec.service_time = avail::deterministic(6.0);
  const std::vector<cluster::NodeSpec> nodes = {spec};

  common::RunningStats times;
  common::Rng seeds(3141);
  for (int i = 0; i < 4000; ++i) {
    EventQueue queue;
    SerialRunner runner(queue, gamma);
    InterruptionInjector injector(queue, nodes, runner,
                                  common::Rng(seeds()));
    injector.start();
    runner.start();
    queue.run_until([&] { return runner.done(); });
    times.add(runner.finished_at());
  }
  const double stderr_mean =
      times.stddev() / std::sqrt(static_cast<double>(times.count()));
  EXPECT_NEAR(times.mean(), expected, 4.0 * stderr_mean + 0.05 * expected);
}

}  // namespace
