#include <gtest/gtest.h>

#include <stdexcept>

#include "availability/estimator.h"
#include "common/rng.h"

namespace {

using adapt::avail::AvailabilityEstimator;
using adapt::avail::InterruptionParams;
using adapt::common::Rng;

TEST(Estimator, NoEventsMeansPerfectAvailability) {
  AvailabilityEstimator est(0.0);
  const InterruptionParams p = est.estimate(1000.0);
  EXPECT_EQ(p.lambda, 0.0);
  EXPECT_EQ(p.mu, 0.0);
}

TEST(Estimator, SingleCycle) {
  AvailabilityEstimator est(0.0);
  est.record_down(100.0);
  est.record_up(130.0);
  const InterruptionParams p = est.estimate(200.0);
  // Exposure is uptime, not wall clock: 200 s observed minus the 30 s
  // outage.
  EXPECT_DOUBLE_EQ(p.lambda, 1.0 / 170.0);
  EXPECT_DOUBLE_EQ(p.mu, 30.0);
}

TEST(Estimator, MultipleCycles) {
  AvailabilityEstimator est(0.0);
  // Three outages of 10, 20, 30 seconds.
  est.record_down(100.0);
  est.record_up(110.0);
  est.record_down(200.0);
  est.record_up(220.0);
  est.record_down(300.0);
  est.record_up(330.0);
  const InterruptionParams p = est.estimate(400.0);
  EXPECT_DOUBLE_EQ(p.lambda, 3.0 / (400.0 - 60.0));
  EXPECT_DOUBLE_EQ(p.mu, 20.0);
  EXPECT_EQ(est.interruptions_observed(), 3u);
}

TEST(Estimator, InProgressOutageCountsPartially) {
  AvailabilityEstimator est(0.0);
  est.record_down(50.0);
  est.record_up(150.0);  // 100 s
  est.record_down(200.0);
  // Still down at query time 230: the open outage (30 s so far) is
  // averaged in so a stuck host is not scored by history alone.
  const InterruptionParams p = est.estimate(230.0);
  EXPECT_TRUE(est.currently_down());
  EXPECT_DOUBLE_EQ(p.mu, (100.0 + 30.0) / 2.0);
}

TEST(Estimator, CensoredOutageFloorsMeanRepairTime) {
  AvailabilityEstimator est(0.0);
  est.record_down(50.0);
  est.record_up(60.0);  // historic repair: 10 s
  est.record_down(100.0);
  // Down for 600 s and counting. The open outage is a *censored*
  // observation — its true length is at least 600 s — so mu cannot
  // honestly be reported below that. The plain blend (10 + 600) / 2
  // would advertise a 305 s repair time for a host that is effectively
  // gone, and the predictor would keep over-weighting it.
  const InterruptionParams p = est.estimate(700.0);
  EXPECT_TRUE(est.currently_down());
  EXPECT_DOUBLE_EQ(p.mu, 600.0);
}

TEST(Estimator, FirstOutageStillOpen) {
  AvailabilityEstimator est(0.0);
  est.record_down(10.0);
  const InterruptionParams p = est.estimate(110.0);
  EXPECT_DOUBLE_EQ(p.mu, 100.0);
  // The in-progress outage is excluded from the exposure: 10 s of
  // uptime produced the one observed interruption.
  EXPECT_DOUBLE_EQ(p.lambda, 1.0 / 10.0);
}

TEST(Estimator, RejectsInvalidTransitions) {
  AvailabilityEstimator est(0.0);
  EXPECT_THROW(est.record_up(10.0), std::logic_error);
  est.record_down(10.0);
  EXPECT_THROW(est.record_down(20.0), std::logic_error);
  EXPECT_THROW(est.record_up(5.0), std::invalid_argument);
}

TEST(Estimator, NonZeroStartTime) {
  AvailabilityEstimator est(1000.0);
  est.record_down(1100.0);
  est.record_up(1110.0);
  const InterruptionParams p = est.estimate(1200.0);
  EXPECT_DOUBLE_EQ(p.lambda, 1.0 / 190.0);
  EXPECT_THROW(AvailabilityEstimator(50.0).record_down(10.0),
               std::invalid_argument);
}

// Convergence: feeding a long synthetic M/G/1 history recovers the true
// parameters.
TEST(Estimator, ConvergesToTrueParameters) {
  const double lambda = 0.01;
  const double mu = 25.0;
  Rng rng(99);
  AvailabilityEstimator est(0.0);
  double t = 0.0;
  for (int i = 0; i < 20000; ++i) {
    t += rng.exponential(lambda);
    const double down = t;
    const double up = down + rng.exponential(1.0 / mu);
    est.record_down(down);
    est.record_up(up);
    t = up;
  }
  const InterruptionParams p = est.estimate(t);
  // Uptime exposure recovers the true arrival rate itself, not the
  // wall-clock transition rate 1/(1/lambda + mu).
  EXPECT_NEAR(p.lambda, lambda, lambda * 0.05);
  EXPECT_NEAR(p.mu, mu, mu * 0.05);
}

// Regression for the wall-clock bias: on a high-utilization host
// (rho = lambda*mu close to 1) the busy-period starts per wall-clock
// second are lambda*(1-rho), so dividing by wall clock under-estimates
// lambda by the availability factor — exactly on the flaky hosts ADAPT
// must down-weight. The uptime-based estimator recovers lambda.
TEST(Estimator, UptimeExposureRemovesHighUtilizationBias) {
  const double lambda = 0.02;  // one interruption per 50 s of uptime
  const double mu = 37.5;      // rho = 0.75: host down 3/7 of wall clock
  Rng rng(1234);
  AvailabilityEstimator est(0.0);
  double t = 0.0;
  std::size_t downs = 0;
  for (int i = 0; i < 50000; ++i) {
    t += rng.exponential(lambda);
    const double down = t;
    const double up = down + rng.exponential(1.0 / mu);
    est.record_down(down);
    est.record_up(up);
    ++downs;
    t = up;
  }
  // What the old estimator computed: transitions per wall-clock second.
  const double wall_clock_estimate = static_cast<double>(downs) / t;
  // Alternating renewal: wall-clock rate is 1/(1/lambda + mu), i.e. the
  // old estimator is biased low by the up-fraction 1/(1 + lambda*mu).
  const double bias_factor = 1.0 / (1.0 + lambda * mu);  // ~0.57
  EXPECT_NEAR(wall_clock_estimate, lambda * bias_factor,
              lambda * bias_factor * 0.05);
  EXPECT_LT(wall_clock_estimate, 0.65 * lambda);  // >35% under-estimate
  // The uptime-based estimator recovers lambda within a few percent.
  const InterruptionParams p = est.estimate(t);
  EXPECT_NEAR(p.lambda, lambda, lambda * 0.03);
  EXPECT_NEAR(p.mu, mu, mu * 0.03);
}

}  // namespace
