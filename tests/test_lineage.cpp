// Causal lineage index: root-cause classification taxonomy, holder-set
// accounting, streaming (ring-independent) accumulation, the online ==
// offline rebuild contract, and byte-identical export across worker
// thread counts.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/topology.h"
#include "core/adapt.h"
#include "obs/lineage.h"
#include "obs/trace.h"
#include "runner/runner.h"
#include "workload/terasort.h"

namespace {

using namespace adapt;

obs::TraceRecord rec(double t, obs::EventType type, std::uint32_t task,
                     std::uint32_t node = 0, std::uint32_t aux = 0,
                     std::uint32_t peer = 0) {
  obs::TraceRecord r;
  r.t = t;
  r.type = type;
  r.task = task;
  r.node = node;
  r.aux = aux;
  r.peer = peer;
  return r;
}

TEST(Lineage, ClassifiesCorruptionWithoutSurvivor) {
  // The block's only copy is removed by a checksum catch, then the
  // zero-replica event lands: corruption is the most specific evidence.
  const std::vector<obs::TraceRecord> records = {
      rec(1.0, obs::EventType::kPlacement, 0, 1),
      rec(2.0, obs::EventType::kReplicaCorrupt, 0, 1),
      rec(3.0, obs::EventType::kCorruptRead, 0, 1, /*path=*/2),
      rec(3.0, obs::EventType::kReplicaLost, 0, 0, /*recoverable=*/0),
  };
  const obs::LineageSnapshot snap = obs::build_lineage(records);
  const obs::BlockLineage* b = obs::find_block(snap, 0);
  ASSERT_NE(b, nullptr);
  EXPECT_TRUE(b->lost);
  EXPECT_DOUBLE_EQ(b->lost_at, 3.0);
  EXPECT_EQ(obs::classify_loss(*b), obs::LossCause::kCorruptionNoSurvivor);
}

TEST(Lineage, ClassifiesFalsePositiveWriteoff) {
  // One holder was written off while actually up (aux = 1): the
  // partition-induced false positive outranks plain retry exhaustion.
  const std::vector<obs::TraceRecord> records = {
      rec(1.0, obs::EventType::kPlacement, 5, 1),
      rec(1.0, obs::EventType::kPlacement, 5, 2),
      rec(10.0, obs::EventType::kReplicaWriteoff, 5, 1, /*false_pos=*/1),
      rec(11.0, obs::EventType::kReplicaWriteoff, 5, 2, 0),
      rec(11.0, obs::EventType::kReplicaLost, 5, 0, 0),
  };
  const obs::LineageSnapshot snap = obs::build_lineage(records);
  const obs::BlockLineage* b = obs::find_block(snap, 5);
  ASSERT_NE(b, nullptr);
  EXPECT_TRUE(b->lost);
  EXPECT_TRUE(b->false_writeoff);
  EXPECT_EQ(obs::classify_loss(*b), obs::LossCause::kFalsePositiveWriteoff);
}

TEST(Lineage, ClassifiesRetryExhaustion) {
  // Repair ran (start, retry, give-up) but never landed a copy.
  const std::vector<obs::TraceRecord> records = {
      rec(1.0, obs::EventType::kPlacement, 2, 1),
      rec(10.0, obs::EventType::kReplicaWriteoff, 2, 1, 0),
      rec(10.0, obs::EventType::kRereplicationStart, 2, 3, /*attempt=*/1),
      rec(15.0, obs::EventType::kRereplicationRetry, 2, 0, 2),
      rec(20.0, obs::EventType::kRereplicationGiveup, 2, 0, 2),
      rec(20.0, obs::EventType::kReplicaLost, 2, 0, 0),
  };
  const obs::LineageSnapshot snap = obs::build_lineage(records);
  const obs::BlockLineage* b = obs::find_block(snap, 2);
  ASSERT_NE(b, nullptr);
  EXPECT_TRUE(b->lost);
  EXPECT_TRUE(b->repair_attempted);
  EXPECT_TRUE(b->repair_gaveup);
  EXPECT_EQ(obs::classify_loss(*b), obs::LossCause::kRetryExhaustion);
}

TEST(Lineage, ClassifiesAllHoldersDeadWithinWindow) {
  // Every holder written off with no repair ever reserved: the whole
  // replica set died inside one detection window.
  const std::vector<obs::TraceRecord> records = {
      rec(1.0, obs::EventType::kPlacement, 7, 1),
      rec(1.0, obs::EventType::kPlacement, 7, 2),
      rec(30.0, obs::EventType::kReplicaWriteoff, 7, 1, 0),
      rec(30.0, obs::EventType::kReplicaWriteoff, 7, 2, 0),
      rec(30.0, obs::EventType::kReplicaLost, 7, 0, 0),
  };
  const obs::LineageSnapshot snap = obs::build_lineage(records);
  const obs::BlockLineage* b = obs::find_block(snap, 7);
  ASSERT_NE(b, nullptr);
  EXPECT_TRUE(b->lost);
  EXPECT_EQ(obs::classify_loss(*b),
            obs::LossCause::kAllHoldersDeadWithinWindow);
  const obs::LossReport report = obs::post_mortem(snap);
  EXPECT_EQ(report.total, 1u);
  ASSERT_EQ(report.losses.size(), 1u);
  EXPECT_EQ(report.losses[0].writeoffs, 2u);
  EXPECT_EQ(report.losses[0].repair_attempts, 0u);
}

TEST(Lineage, RecoveryClearsTheLossVerdict) {
  // A landed repair voids a standing zero-replica verdict; the echoed
  // placement for the same holder must not create a duplicate hop.
  const std::vector<obs::TraceRecord> records = {
      rec(1.0, obs::EventType::kPlacement, 0, 1),
      rec(10.0, obs::EventType::kReplicaWriteoff, 0, 1, 0),
      rec(10.0, obs::EventType::kReplicaLost, 0, 0, 0),
      rec(12.0, obs::EventType::kRereplicationDone, 0, /*dst=*/3, 0,
          /*src=*/2),
      rec(12.0, obs::EventType::kPlacement, 0, 3),  // board echo
      rec(50.0, obs::EventType::kAttemptFinish, 0, 3),
      rec(60.0, obs::EventType::kJobEnd, 0),
  };
  const obs::LineageSnapshot snap = obs::build_lineage(records);
  const obs::BlockLineage* b = obs::find_block(snap, 0);
  ASSERT_NE(b, nullptr);
  EXPECT_FALSE(b->lost);
  ASSERT_EQ(b->holders.size(), 1u);
  EXPECT_EQ(b->holders[0], 3u);
  // placed(1), writeoff(1), lost, rereplicated(3) — no echoed "placed".
  ASSERT_EQ(b->steps.size(), 4u);
  EXPECT_EQ(b->steps[3].kind, obs::LineageStepKind::kRereplicated);
  EXPECT_EQ(obs::post_mortem(snap).total, 0u);
}

TEST(Lineage, EndStateVerdictCoversShutdownWithoutLossEvents) {
  // The no-live-nodes shutdown writes tasks off without a zero-replica
  // event; the snapshot's end-state pass must still call the block lost
  // because its only holder ended the run down and the task is undone.
  const std::vector<obs::TraceRecord> records = {
      rec(1.0, obs::EventType::kPlacement, 0, 1),
      rec(5.0, obs::EventType::kNodeDown, 0, 1),
      rec(9.0, obs::EventType::kJobEnd, 0),
  };
  const obs::LineageSnapshot snap = obs::build_lineage(records);
  const obs::BlockLineage* b = obs::find_block(snap, 0);
  ASSERT_NE(b, nullptr);
  EXPECT_TRUE(b->lost);
  EXPECT_DOUBLE_EQ(b->lost_at, 9.0);
  EXPECT_EQ(obs::classify_loss(*b),
            obs::LossCause::kAllHoldersDeadWithinWindow);

  // Same chain, but the task finished before the node went down: a
  // finished task cannot lose its input.
  std::vector<obs::TraceRecord> done = records;
  done.insert(done.begin() + 1,
              rec(4.0, obs::EventType::kAttemptFinish, 0, 1));
  const obs::LineageSnapshot snap2 = obs::build_lineage(done);
  const obs::BlockLineage* b2 = obs::find_block(snap2, 0);
  ASSERT_NE(b2, nullptr);
  EXPECT_FALSE(b2->lost);
}

TEST(Lineage, TracksAttemptTreeWithStallsAndKills) {
  std::vector<obs::TraceRecord> records;
  obs::TraceRecord a0 = rec(1.0, obs::EventType::kAttemptStart, 4, 2, 0, 9);
  a0.ticket = 100;
  obs::TraceRecord a1 = rec(2.0, obs::EventType::kAttemptStart, 4, 3,
                            /*dup=*/1, 9);
  a1.ticket = 101;
  obs::TraceRecord stall = rec(2.5, obs::EventType::kTransferStall, 4);
  stall.ticket = 100;
  obs::TraceRecord kill = rec(3.0, obs::EventType::kAttemptKill, 4, 2);
  kill.reason = obs::TraceReason::kSourceTimeout;
  records = {a0, a1, stall, kill,
             rec(4.0, obs::EventType::kAttemptFinish, 4, 3),
             rec(5.0, obs::EventType::kTaskPark, 4)};
  const obs::LineageSnapshot snap = obs::build_lineage(records);
  const obs::TaskLineage* t = obs::find_task(snap, 4);
  ASSERT_NE(t, nullptr);
  EXPECT_TRUE(t->done);
  EXPECT_DOUBLE_EQ(t->done_at, 4.0);
  EXPECT_EQ(t->parks, 1u);
  ASSERT_EQ(t->attempts.size(), 2u);
  EXPECT_FALSE(t->attempts[0].speculative);
  EXPECT_EQ(t->attempts[0].stalls, 1u);
  EXPECT_TRUE(t->attempts[0].killed);
  EXPECT_EQ(t->attempts[0].kill_reason, obs::TraceReason::kSourceTimeout);
  EXPECT_TRUE(t->attempts[1].speculative);
  EXPECT_TRUE(t->attempts[1].finished);
  const std::string text = obs::describe_task(*t);
  EXPECT_NE(text.find("[dup]"), std::string::npos);
  EXPECT_NE(text.find("killed"), std::string::npos);
}

TEST(Lineage, BoundedStateCountsTruncation) {
  std::vector<obs::TraceRecord> records = {
      rec(0.0, obs::EventType::kPlacement, 0, 1)};
  // Alternate restore/writeoff far past the per-block cap.
  for (std::uint32_t i = 0; i < 200; ++i) {
    const bool off = i % 2 == 0;
    records.push_back(rec(1.0 + i,
                          off ? obs::EventType::kReplicaWriteoff
                              : obs::EventType::kReplicaRestore,
                          0, 1, 0));
  }
  const obs::LineageSnapshot snap = obs::build_lineage(records);
  const obs::BlockLineage* b = obs::find_block(snap, 0);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->steps.size(), obs::LineageIndex::kMaxStepsPerBlock);
  EXPECT_GT(b->truncated_steps, 0u);
  EXPECT_NE(obs::describe_block(*b).find("truncated"), std::string::npos);
}

// --- integration: real churn runs through run_experiment -------------

core::ExperimentConfig burst_config(const cluster::Cluster& cl,
                                    std::uint64_t seed, bool rereplication) {
  const workload::Workload w = workload::emulation_workload();
  core::ExperimentConfig config;
  config.blocks = w.blocks_for(cl.size());
  config.job.gamma = w.gamma();
  config.policy = core::PolicyKind::kAdapt;
  config.replication = 2;
  config.seed = seed;
  config.job.allow_origin_fetch = false;
  config.job.churn.enabled = true;
  config.job.churn.burst_at = 5.0;
  config.job.churn.burst_fraction = 0.6;
  config.job.churn.heartbeat_interval = 3.0;
  config.job.churn.heartbeat_miss_threshold = 2;
  config.job.churn.dead_timeout = 10.0;
  config.job.churn.rereplication.enabled = rereplication;
  config.obs.lineage = true;
  return config;
}

cluster::Cluster burst_cluster() {
  cluster::EmulationConfig emu;
  emu.node_count = 32;
  return cluster::emulated_cluster(emu);
}

TEST(Lineage, ClassifiesEveryLostBlockOfABurstRun) {
  // A correlated burst with origin fetch off loses real data. Every
  // lost block must classify into the taxonomy (unclassified == 0) and
  // the post-mortem total must tie out with the job's own accounting.
  const cluster::Cluster cl = burst_cluster();
  const core::ExperimentConfig config = burst_config(cl, 11, true);
  const core::ExperimentResult result = core::run_experiment(cl, config);

  ASSERT_NE(result.obs.lineage, nullptr);
  ASSERT_FALSE(result.job.lost_blocks.empty());
  const obs::LossReport report = obs::post_mortem(*result.obs.lineage);
  EXPECT_EQ(report.total, result.job.lost_blocks.size());
  EXPECT_EQ(report.counts[static_cast<std::size_t>(
                obs::LossCause::kUnclassified)],
            0u);
  for (const sim::JobResult::LostBlock& lb : result.job.lost_blocks) {
    const obs::BlockLineage* b = obs::find_block(*result.obs.lineage,
                                                 lb.block);
    ASSERT_NE(b, nullptr) << "block " << lb.block;
    EXPECT_TRUE(b->lost) << "block " << lb.block;
  }
}

TEST(Lineage, DetectionWindowWipeoutDominatesUnderBursts) {
  // With the repair pipeline off nothing can start a repair, so every
  // burst loss is an all-holders-dead-within-window wipeout.
  const cluster::Cluster cl = burst_cluster();
  const core::ExperimentConfig config = burst_config(cl, 11, false);
  const core::ExperimentResult result = core::run_experiment(cl, config);

  ASSERT_NE(result.obs.lineage, nullptr);
  const obs::LossReport report = obs::post_mortem(*result.obs.lineage);
  ASSERT_GT(report.total, 0u);
  EXPECT_EQ(report.counts[static_cast<std::size_t>(
                obs::LossCause::kAllHoldersDeadWithinWindow)],
            report.total);
}

TEST(Lineage, OnlineIndexMatchesOfflineRebuild) {
  const cluster::Cluster cl = burst_cluster();
  core::ExperimentConfig config = burst_config(cl, 13, true);
  config.obs.trace = true;  // keep the records for the offline rebuild
  const core::ExperimentResult result = core::run_experiment(cl, config);

  ASSERT_NE(result.obs.lineage, nullptr);
  ASSERT_EQ(result.obs.dropped, 0u);
  obs::RunObservations online = result.obs;
  obs::RunObservations offline = result.obs;
  offline.lineage = nullptr;  // forces the rebuild path
  EXPECT_EQ(obs::lineage_to_jsonl({online}), obs::lineage_to_jsonl({offline}));
}

TEST(Lineage, StreamingIndexIsRingIndependent) {
  // With a 16-slot ring almost every record is overwritten, yet the
  // online lineage must match the full-ring run exactly: the sink sees
  // each record before the ring does.
  const cluster::Cluster cl = burst_cluster();
  core::ExperimentConfig big = burst_config(cl, 17, true);
  big.obs.trace = true;
  core::ExperimentConfig tiny = big;
  tiny.obs.ring_capacity = 16;

  const core::ExperimentResult full = core::run_experiment(cl, big);
  const core::ExperimentResult small = core::run_experiment(cl, tiny);
  ASSERT_NE(full.obs.lineage, nullptr);
  ASSERT_NE(small.obs.lineage, nullptr);
  EXPECT_EQ(full.obs.dropped, 0u);
  EXPECT_GT(small.obs.dropped, 0u);

  obs::RunObservations a;
  a.lineage = full.obs.lineage;
  obs::RunObservations b;
  b.lineage = small.obs.lineage;
  EXPECT_EQ(obs::lineage_to_jsonl({a}), obs::lineage_to_jsonl({b}));
}

TEST(Lineage, ExportIsByteIdenticalAcrossThreadCounts) {
  const cluster::Cluster cl = burst_cluster();
  const core::ExperimentConfig config = burst_config(cl, 19, true);

  runner::ExperimentRunner serial(1);
  runner::ExperimentRunner pooled(4);
  std::vector<obs::RunObservations> obs_serial;
  std::vector<obs::RunObservations> obs_pooled;
  (void)serial.run_replications(cl, config, 4, &obs_serial);
  (void)pooled.run_replications(cl, config, 4, &obs_pooled);

  ASSERT_EQ(obs_serial.size(), 4u);
  ASSERT_EQ(obs_pooled.size(), 4u);
  ASSERT_NE(obs_serial[0].lineage, nullptr);
  const std::string a = obs::lineage_to_jsonl(obs_serial);
  const std::string b = obs::lineage_to_jsonl(obs_pooled);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  // The deterministic post-mortem rendering honors the same contract.
  EXPECT_EQ(obs::post_mortem_text(obs::post_mortem(*obs_serial[0].lineage)),
            obs::post_mortem_text(obs::post_mortem(*obs_pooled[0].lineage)));
}

}  // namespace
