#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "cluster/fault_domains.h"
#include "cluster/node.h"
#include "cluster/node_mask.h"
#include "cluster/topology.h"
#include "common/rng.h"
#include "hdfs/namenode.h"
#include "placement/random_policy.h"

namespace {

using namespace adapt;
using namespace adapt::cluster;
using adapt::common::Rng;
using adapt::hdfs::BlockId;
using adapt::hdfs::BlockInfo;
using adapt::hdfs::FileId;
using adapt::hdfs::NameNode;

// n nodes split into sites * racks_per_site contiguous racks, the same
// way the cluster builders do it.
std::shared_ptr<const FaultDomains> layered(std::size_t n,
                                            std::uint32_t sites,
                                            std::uint32_t racks_per_site) {
  std::vector<NodeSpec> specs(n);
  assign_domains(specs, {sites, racks_per_site});
  Cluster cluster;
  cluster.nodes = std::move(specs);
  cluster.domains = {sites, racks_per_site};
  return std::make_shared<const FaultDomains>(
      FaultDomains::from_cluster(cluster));
}

TEST(AssignDomains, ContiguousEvenSplit) {
  std::vector<NodeSpec> nodes(8);
  assign_domains(nodes, {2, 2});  // 4 racks, 2 nodes each
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    EXPECT_EQ(nodes[i].rack, i / 2);
    EXPECT_EQ(nodes[i].site, i / 4);
  }
}

TEST(AssignDomains, UnevenSplitCoversEveryRack) {
  std::vector<NodeSpec> nodes(10);
  assign_domains(nodes, {1, 3});  // 3 racks over 10 nodes
  std::vector<int> per_rack(3, 0);
  std::uint32_t last = 0;
  for (const NodeSpec& node : nodes) {
    ASSERT_LT(node.rack, 3u);
    EXPECT_GE(node.rack, last);  // contiguous index ranges
    last = node.rack;
    ++per_rack[node.rack];
  }
  for (const int count : per_rack) {
    EXPECT_GE(count, 3);  // floor(10/3)
    EXPECT_LE(count, 4);  // ceil(10/3)
  }
}

TEST(AssignDomains, DisabledLayoutLeavesNodesFlat) {
  std::vector<NodeSpec> nodes(4);
  assign_domains(nodes, {0, 7});
  for (const NodeSpec& node : nodes) {
    EXPECT_EQ(node.rack, 0u);
    EXPECT_EQ(node.site, 0u);
  }
}

TEST(AssignDomains, Validation) {
  std::vector<NodeSpec> nodes(4);
  EXPECT_THROW(assign_domains(nodes, {2, 0}), std::invalid_argument);
  EXPECT_THROW(assign_domains(nodes, {5, 1}), std::invalid_argument);
}

TEST(FaultDomains, FlatHierarchyIsInert) {
  const FaultDomains flat;
  EXPECT_TRUE(flat.empty());
  NodeMask eligible(8, true);
  flat.restrict_anti_affine(eligible, {0, 1, 2});
  EXPECT_EQ(eligible.count(), 8u);  // no-op
  EXPECT_TRUE(flat.distinct_domains({0, 1, 2}));  // vacuously

  Cluster cluster;
  cluster.nodes.resize(4);
  EXPECT_TRUE(FaultDomains::from_cluster(cluster).empty());
}

TEST(FaultDomains, FromClusterMatchesNodeSpecs) {
  const auto domains = layered(8, 2, 2);
  ASSERT_FALSE(domains->empty());
  EXPECT_EQ(domains->node_count(), 8u);
  EXPECT_EQ(domains->domain_count(), 4u);
  for (NodeIndex i = 0; i < 8; ++i) {
    EXPECT_EQ(domains->domain_of(i), i / 2);
    EXPECT_TRUE(domains->domain_mask(i / 2).test(i));
  }
  EXPECT_EQ(domains->domains_of_nodes().size(), 8u);
  for (std::uint32_t d = 0; d < 4; ++d) {
    EXPECT_EQ(domains->domain_mask(d).count(), 2u);
  }
}

TEST(FaultDomains, CtorValidation) {
  EXPECT_THROW(FaultDomains({}, {}), std::invalid_argument);
  // Rack 2 exists but site_of_rack only covers racks 0..1.
  EXPECT_THROW(FaultDomains({0, 1, 2}, {0, 0}), std::invalid_argument);
  // Empty site list defaults every rack to site 0.
  const FaultDomains one_site({0, 1, 1}, {});
  EXPECT_EQ(one_site.domain_count(), 2u);
}

TEST(FaultDomains, StrictExclusionRemovesHolderDomains) {
  const auto domains = layered(8, 4, 1);  // racks {0,1},{2,3},{4,5},{6,7}
  NodeMask eligible(8, true);
  domains->restrict_anti_affine(eligible, {0});
  EXPECT_EQ(eligible.count(), 6u);
  EXPECT_FALSE(eligible.test(0));
  EXPECT_FALSE(eligible.test(1));  // rack-mate excluded too
  for (NodeIndex i = 2; i < 8; ++i) EXPECT_TRUE(eligible.test(i));
}

TEST(FaultDomains, FallbackKeepsFewestHeldDomains) {
  // 2 racks: {0,1} and {2,3}. Holders 0, 2, 3: every domain holds at
  // least one, so strict exclusion would empty the mask; the fallback
  // keeps rack 0 (one holder) over rack 1 (two holders).
  const auto domains = layered(4, 2, 1);
  NodeMask eligible(4, true);
  domains->restrict_anti_affine(eligible, {0, 2, 3});
  EXPECT_EQ(eligible.count(), 2u);
  EXPECT_TRUE(eligible.test(0));
  EXPECT_TRUE(eligible.test(1));
}

TEST(FaultDomains, FallbackNeverEmptiesNonEmptyMask) {
  // One holder in every rack; eligibility reduced to a single node that
  // is co-located with a holder. The mask must survive.
  const auto domains = layered(6, 3, 1);
  NodeMask eligible(6);
  eligible.set(5);
  domains->restrict_anti_affine(eligible, {0, 2, 4});
  EXPECT_EQ(eligible.count(), 1u);
  EXPECT_TRUE(eligible.test(5));
}

TEST(FaultDomains, FallbackIgnoresDomainsOutsideEligibility) {
  // Rack 0 holds nothing but is entirely ineligible; rack 1 holds one,
  // rack 2 holds two. The fallback must pick rack 1, not resurrect
  // rack 0.
  const FaultDomains domains({0, 0, 1, 1, 2, 2}, {});
  NodeMask eligible(6, true);
  eligible.reset(0);
  eligible.reset(1);
  domains.restrict_anti_affine(eligible, {2, 4, 5});
  EXPECT_EQ(eligible.count(), 2u);
  EXPECT_TRUE(eligible.test(2));
  EXPECT_TRUE(eligible.test(3));
}

// Domains straddling the 64-bit word boundary exercise the word-parallel
// and_not / intersects paths of NodeMask.
TEST(FaultDomains, WordBoundaryMasks) {
  const std::size_t n = 130;
  std::vector<std::uint32_t> rack_of(n);
  for (std::size_t i = 0; i < n; ++i) rack_of[i] = i < 65 ? 0 : 1;
  const FaultDomains domains(rack_of, {});
  EXPECT_EQ(domains.domain_mask(0).count(), 65u);
  EXPECT_EQ(domains.domain_mask(1).count(), 65u);

  NodeMask eligible(n, true);
  domains.restrict_anti_affine(eligible, {64});  // holder in word 1
  EXPECT_EQ(eligible.count(), 65u);
  EXPECT_FALSE(eligible.test(0));
  EXPECT_FALSE(eligible.test(63));
  EXPECT_FALSE(eligible.test(64));
  EXPECT_TRUE(eligible.test(65));
  EXPECT_TRUE(eligible.test(129));

  // Fallback across the boundary: both domains hold, eligibility is one
  // node from each, the fewest-held tie keeps both.
  NodeMask narrow(n);
  narrow.set(63);
  narrow.set(70);
  domains.restrict_anti_affine(narrow, {0, 129});
  EXPECT_EQ(narrow.count(), 2u);
}

TEST(FaultDomains, DistinctDomains) {
  const auto domains = layered(8, 2, 2);  // racks of 2
  EXPECT_TRUE(domains->distinct_domains({}));
  EXPECT_TRUE(domains->distinct_domains({0, 2, 4}));
  EXPECT_FALSE(domains->distinct_domains({0, 1}));
  EXPECT_FALSE(domains->distinct_domains({2, 6, 3}));
}

TEST(FaultDomains, DomainMajorOrderSortsBySiteThenRack) {
  // rack_of: nodes 0,1 -> rack 3; 2,3 -> rack 0; 4,5 -> rack 2;
  // 6,7 -> rack 1. Sites: racks {1,3} -> site 0, racks {0,2} -> site 1.
  const FaultDomains domains({3, 3, 0, 0, 2, 2, 1, 1}, {1, 0, 1, 0});
  const std::vector<NodeIndex> expected = {6, 7, 0, 1, 2, 3, 4, 5};
  EXPECT_EQ(domains.domain_major_order(), expected);

  const FaultDomains flat;
  // Flat hierarchy: identity (but rack_of_ is empty, so order is empty).
  EXPECT_TRUE(flat.domain_major_order().empty());

  const auto contiguous = layered(6, 3, 1);
  const std::vector<NodeIndex> identity = {0, 1, 2, 3, 4, 5};
  EXPECT_EQ(contiguous->domain_major_order(), identity);
}

// -- Anti-affinity through the NameNode ------------------------------

TEST(AntiAffinePlacement, CreateFileSpreadsAcrossDomains) {
  const auto domains = layered(16, 4, 1);  // 4 racks of 4
  for (const int replication : {2, 3, 4}) {
    NameNode nn(16);
    nn.set_fault_domains(domains, /*anti_affine=*/true);
    const auto policy = placement::make_random_policy(16);
    Rng rng(1234 + replication);
    const FileId file =
        nn.create_file("input", /*num_blocks=*/64, replication, policy, rng);
    for (const BlockId b : nn.file(file).blocks) {
      const BlockInfo& info = nn.block(b);
      ASSERT_EQ(info.replicas.size(), static_cast<std::size_t>(replication));
      EXPECT_TRUE(domains->distinct_domains(info.replicas))
          << "replication " << replication << " block " << b;
    }
  }
}

TEST(AntiAffinePlacement, FallbackWhenDomainsScarce) {
  // 2 racks but replication 3: strict anti-affinity is unsatisfiable;
  // the fallback must still place all 3 replicas, at most 2 per rack.
  const auto domains = layered(8, 2, 1);
  NameNode nn(8);
  nn.set_fault_domains(domains, true);
  const auto policy = placement::make_random_policy(8);
  Rng rng(99);
  const FileId file = nn.create_file("input", 32, 3, policy, rng);
  for (const BlockId b : nn.file(file).blocks) {
    const BlockInfo& info = nn.block(b);
    ASSERT_EQ(info.replicas.size(), 3u);
    std::vector<int> per_rack(2, 0);
    for (const NodeIndex r : info.replicas) {
      ++per_rack[domains->domain_of(r)];
    }
    EXPECT_LE(per_rack[0], 2);
    EXPECT_LE(per_rack[1], 2);
    EXPECT_GE(per_rack[0], 1);  // both domains covered
    EXPECT_GE(per_rack[1], 1);
  }
}

TEST(AntiAffinePlacement, ReReplicationInheritsAntiAffinity) {
  const auto domains = layered(12, 4, 1);  // 4 racks of 3
  NameNode nn(12);
  nn.set_fault_domains(domains, true);
  const auto policy = placement::make_random_policy(12);
  Rng rng(7);
  nn.create_file("input", 40, 2, policy, rng);

  const NodeIndex dead = 5;
  const std::vector<BlockId> affected = nn.mark_node_dead(dead);
  ASSERT_FALSE(affected.empty());
  for (const BlockId b : affected) {
    const BlockInfo& info = nn.block(b);
    ASSERT_EQ(info.replicas.size(), 1u);  // the surviving copy
    const NodeMask eligible = nn.eligibility_for_new_replica(b);
    ASSERT_TRUE(eligible.any());
    // Every eligible destination avoids the survivor's domain.
    eligible.for_each_set([&](std::uint32_t node) {
      EXPECT_NE(domains->domain_of(node),
                domains->domain_of(info.replicas[0]));
    });
    // Completing the repair through the mask keeps the spread.
    nn.add_replica(b, static_cast<NodeIndex>(eligible.nth_set(0)));
    EXPECT_TRUE(domains->distinct_domains(nn.block(b).replicas));
  }
}

TEST(AntiAffinePlacement, RebalanceKeepsDistinctDomains) {
  const auto domains = layered(16, 2, 2);  // 4 racks of 4
  NameNode nn(16);
  nn.set_fault_domains(domains, true);
  const auto policy = placement::make_random_policy(16);
  Rng rng(21);
  const FileId file = nn.create_file("input", 48, 2, policy, rng);

  Rng rebalance_rng(22);
  const std::vector<hdfs::ReplicaMove> moves =
      nn.rebalance_file(file, policy, rebalance_rng);
  for (const hdfs::ReplicaMove& move : moves) {
    nn.commit_move(move.block, move.from, move.to);
  }
  EXPECT_TRUE(nn.pending_moves().empty());
  for (const BlockId b : nn.file(file).blocks) {
    EXPECT_TRUE(domains->distinct_domains(nn.block(b).replicas));
  }
}

TEST(AntiAffinePlacement, PendingMoveTargetsCountAsHolders) {
  // Eligibility for a new replica must treat an in-flight move's
  // destination domain as occupied.
  const auto domains = layered(8, 4, 1);  // racks {0,1},{2,3},{4,5},{6,7}
  NameNode nn(8);
  nn.set_fault_domains(domains, true);
  const auto policy = placement::make_random_policy(8);
  Rng rng(3);
  // Pin the block onto nodes 0 and 2 (racks 0 and 1).
  const FileId file = nn.create_file(
      "input", 1, 2, policy, rng,
      [](NodeIndex node) { return node == 0 || node == 2; });
  const BlockId b = nn.file(file).blocks[0];
  nn.begin_move(b, 2, 4);  // replica migrating into rack 2
  const NodeMask eligible = nn.eligibility_for_new_replica(b);
  ASSERT_TRUE(eligible.any());
  eligible.for_each_set([&](std::uint32_t node) {
    EXPECT_EQ(domains->domain_of(node), 3u);  // only rack 3 is free
  });
  nn.abort_move(b, 2, 4);
}

// -- Revive-as-block-report reclaim ----------------------------------

TEST(ReviveReclaim, RestoresWrittenOffCopies) {
  const auto domains = layered(6, 3, 1);
  NameNode nn(6);
  nn.set_fault_domains(domains, false);
  const auto policy = placement::make_random_policy(6);
  Rng rng(11);
  const FileId file = nn.create_file("input", 10, 2, policy, rng);

  const NodeIndex dead = nn.block(nn.file(file).blocks[0]).replicas[0];
  const std::vector<BlockId> affected = nn.mark_node_dead(dead);
  ASSERT_FALSE(affected.empty());
  for (const BlockId b : affected) {
    EXPECT_EQ(nn.block(b).replicas.size(), 1u);
  }

  // No re-replication happened: every written-off copy is restored.
  const NameNode::ReviveReport report = nn.revive_node(dead);
  EXPECT_EQ(report.restored.size(), affected.size());
  EXPECT_TRUE(report.trimmed.empty());
  EXPECT_EQ(nn.stats().replicas_restored, affected.size());
  EXPECT_EQ(nn.stats().over_replicated_trimmed, 0u);
  for (const BlockId b : affected) {
    EXPECT_EQ(nn.block(b).replicas.size(), 2u);
    EXPECT_TRUE(nn.block(b).hosted_on(dead));
  }

  // Reviving a live node is a no-op.
  const NameNode::ReviveReport again = nn.revive_node(dead);
  EXPECT_TRUE(again.restored.empty());
  EXPECT_TRUE(again.trimmed.empty());
}

TEST(ReviveReclaim, TrimPrefersDomainDuplicateVictim) {
  // Racks {0,1}, {2,3}, {4,5}. Block lives on 0 (rack 0) and 2 (rack 1).
  // Node 2 dies; the repair lands on node 1 — rack 0 again, a domain
  // duplicate. When node 2 revives, its disk copy pushes the block over
  // target, and the reclaim must drop a rack-0 holder (improving
  // spread), not the revived copy.
  const auto domains = layered(6, 3, 1);
  NameNode nn(6);
  nn.set_fault_domains(domains, false);
  const auto policy = placement::make_random_policy(6);
  Rng rng(5);
  const FileId file = nn.create_file(
      "input", 1, 2, policy, rng,
      [](NodeIndex node) { return node == 0 || node == 2; });
  const BlockId b = nn.file(file).blocks[0];

  ASSERT_EQ(nn.mark_node_dead(2).size(), 1u);
  nn.add_replica(b, 1);  // botched repair: co-located with node 0

  const NameNode::ReviveReport report = nn.revive_node(2);
  ASSERT_EQ(report.restored.size(), 1u);
  ASSERT_EQ(report.trimmed.size(), 1u);
  EXPECT_EQ(report.trimmed[0].block, b);
  EXPECT_EQ(domains->domain_of(report.trimmed[0].node), 0u);
  EXPECT_EQ(nn.stats().over_replicated_trimmed, 1u);
  EXPECT_EQ(nn.stats().replicas_restored, 1u);

  const BlockInfo& info = nn.block(b);
  ASSERT_EQ(info.replicas.size(), 2u);
  EXPECT_TRUE(info.hosted_on(2));
  EXPECT_TRUE(domains->distinct_domains(info.replicas));
}

TEST(ReviveReclaim, TrimDropsDiskCopyWhenItIsTheDuplicate) {
  // Block on nodes 0 (rack 0) and 2 (rack 1). Node 2 dies, repair lands
  // on node 3 — also rack 1. The revived disk copy is the redundant
  // one: it must be discarded, holders stay {0, 3}.
  const auto domains = layered(6, 3, 1);
  NameNode nn(6);
  nn.set_fault_domains(domains, false);
  const auto policy = placement::make_random_policy(6);
  Rng rng(5);
  const FileId file = nn.create_file(
      "input", 1, 2, policy, rng,
      [](NodeIndex node) { return node == 0 || node == 2; });
  const BlockId b = nn.file(file).blocks[0];

  ASSERT_EQ(nn.mark_node_dead(2).size(), 1u);
  nn.add_replica(b, 3);

  const NameNode::ReviveReport report = nn.revive_node(2);
  EXPECT_TRUE(report.restored.empty());
  ASSERT_EQ(report.trimmed.size(), 1u);
  EXPECT_EQ(report.trimmed[0].node, 2u);
  EXPECT_EQ(nn.stats().over_replicated_trimmed, 1u);
  EXPECT_EQ(nn.stats().replicas_restored, 0u);

  const BlockInfo& info = nn.block(b);
  ASSERT_EQ(info.replicas.size(), 2u);
  EXPECT_FALSE(info.hosted_on(2));
  EXPECT_TRUE(info.hosted_on(0));
  EXPECT_TRUE(info.hosted_on(3));
}

TEST(ReviveReclaim, FlatClusterTrimsRevivedCopy) {
  // Without a hierarchy there is no spread to improve: the excess disk
  // copy is simply discarded.
  NameNode nn(4);
  const auto policy = placement::make_random_policy(4);
  Rng rng(2);
  const FileId file = nn.create_file(
      "input", 1, 2, policy, rng,
      [](NodeIndex node) { return node == 0 || node == 1; });
  const BlockId b = nn.file(file).blocks[0];
  ASSERT_EQ(nn.mark_node_dead(1).size(), 1u);
  nn.add_replica(b, 2);

  const NameNode::ReviveReport report = nn.revive_node(1);
  EXPECT_TRUE(report.restored.empty());
  ASSERT_EQ(report.trimmed.size(), 1u);
  EXPECT_EQ(report.trimmed[0].node, 1u);
  EXPECT_FALSE(nn.block(b).hosted_on(1));
}

}  // namespace
