#include <gtest/gtest.h>

#include <stdexcept>

#include "common/config.h"
#include "common/table.h"

namespace {

using adapt::common::Flags;
using adapt::common::format_double;
using adapt::common::format_percent;
using adapt::common::Table;

TEST(Table, RendersAlignedMarkdown) {
  Table t({"policy", "elapsed"});
  t.add_row({"random", "391"});
  t.add_row({"adapt", "234"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| policy | elapsed |"), std::string::npos);
  EXPECT_NE(s.find("| random | 391     |"), std::string::npos);
  EXPECT_NE(s.find("| adapt  | 234     |"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, PadsShortRows) {
  Table t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_NE(t.to_string().find("| x |"), std::string::npos);
}

TEST(Table, NumericRowHelper) {
  Table t({"label", "v1", "v2"});
  t.add_row("row", {1.234, 5.678}, 1);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("1.2"), std::string::npos);
  EXPECT_NE(s.find("5.7"), std::string::npos);
}

TEST(Formatting, Doubles) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(3.0, 0), "3");
  EXPECT_EQ(format_percent(0.873), "87.3%");
  EXPECT_EQ(format_percent(1.72), "172.0%");
}

std::vector<const char*> argv_of(std::initializer_list<const char*> args) {
  std::vector<const char*> v = {"prog"};
  v.insert(v.end(), args);
  return v;
}

TEST(Flags, ParsesAllForms) {
  // A bare boolean must be followed by another flag or end-of-line;
  // positionals therefore come first.
  const auto argv =
      argv_of({"positional", "--nodes=128", "--bandwidth", "8", "--full"});
  const Flags flags(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(flags.get_int("nodes", 0), 128);
  EXPECT_DOUBLE_EQ(flags.get_double("bandwidth", 0), 8.0);
  EXPECT_TRUE(flags.get_bool("full", false));
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "positional");
}

TEST(Flags, FallbacksAndHas) {
  const auto argv = argv_of({"--x=1"});
  const Flags flags(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(flags.has("x"));
  EXPECT_FALSE(flags.has("y"));
  EXPECT_EQ(flags.get_int("y", 42), 42);
  EXPECT_EQ(flags.get_string("z", "dflt"), "dflt");
}

TEST(Flags, BareBooleanBeforeAnotherFlag) {
  const auto argv = argv_of({"--verbose", "--n", "3"});
  const Flags flags(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(flags.get_bool("verbose", false));
  EXPECT_EQ(flags.get_int("n", 0), 3);
}

TEST(Flags, TypeErrorsThrow) {
  const auto argv = argv_of({"--n=abc", "--b=maybe"});
  const Flags flags(static_cast<int>(argv.size()), argv.data());
  EXPECT_THROW(flags.get_int("n", 0), std::invalid_argument);
  EXPECT_THROW(flags.get_bool("b", false), std::invalid_argument);
}

TEST(Flags, TracksUnusedFlags) {
  const auto argv = argv_of({"--used=1", "--typo=2"});
  const Flags flags(static_cast<int>(argv.size()), argv.data());
  (void)flags.get_int("used", 0);
  const auto unused = flags.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

}  // namespace
