// Mini-HDFS: NameNode metadata, DataNode accounting, client operations.
#include <gtest/gtest.h>

#include <set>

#include "common/units.h"
#include "hdfs/client.h"
#include "hdfs/namenode.h"
#include "placement/adapt_policy.h"
#include "placement/random_policy.h"

namespace {

using namespace adapt;
using namespace adapt::hdfs;
using adapt::common::Rng;

TEST(DataNodes, CapacityAccounting) {
  DataNodeDirectory dir({2, 0});  // node 0 capped at 2, node 1 unbounded
  EXPECT_TRUE(dir.has_space(0));
  dir.add_replica(0);
  dir.add_replica(0);
  EXPECT_FALSE(dir.has_space(0));
  EXPECT_THROW(dir.add_replica(0), std::logic_error);
  dir.remove_replica(0);
  EXPECT_TRUE(dir.has_space(0));
  EXPECT_EQ(dir.total_stored(), 1u);
  EXPECT_THROW(dir.remove_replica(1), std::logic_error);
}

TEST(DataNodes, SkewMetric) {
  DataNodeDirectory dir(4);
  for (int i = 0; i < 4; ++i) dir.add_replica(0);
  for (int i = 0; i < 4; ++i) dir.add_replica(1);
  EXPECT_DOUBLE_EQ(dir.skew(), 4.0 / 2.0);
}

TEST(NameNode, CreateFilePlacesDistinctReplicas) {
  NameNode nn(8);
  Rng rng(3);
  const FileId id = nn.create_file("f", 50, 3,
                                   placement::make_random_policy(8), rng);
  EXPECT_TRUE(nn.has_file("f"));
  EXPECT_EQ(nn.file(id).blocks.size(), 50u);
  for (const BlockId b : nn.file(id).blocks) {
    const BlockInfo& info = nn.block(b);
    ASSERT_EQ(info.replicas.size(), 3u);
    const std::set<cluster::NodeIndex> distinct(info.replicas.begin(),
                                                info.replicas.end());
    EXPECT_EQ(distinct.size(), 3u);
  }
  EXPECT_EQ(nn.datanodes().total_stored(), 150u);
}

TEST(NameNode, FailedCreateRollsBackAllPartialState) {
  // Replication 2 on a 2-node cluster where the filter bans node 1: the
  // second replica of block 0 has no eligible home, so the create must
  // fail — and leave the namespace exactly as it found it.
  NameNode nn(2);
  Rng rng(7);
  const auto only_node0 = [](cluster::NodeIndex n) { return n == 0; };
  EXPECT_THROW(nn.create_file("f", 4, 2, placement::make_random_policy(2),
                              rng, only_node0),
               std::runtime_error);
  EXPECT_FALSE(nn.has_file("f"));
  EXPECT_EQ(nn.block_count(), 0u);
  EXPECT_EQ(nn.datanodes().total_stored(), 0u);
  // The name and the capacity are free for a clean retry.
  const FileId id =
      nn.create_file("f", 4, 2, placement::make_random_policy(2), rng);
  EXPECT_EQ(nn.file(id).blocks.size(), 4u);
  EXPECT_EQ(nn.datanodes().total_stored(), 8u);
}

TEST(NameNode, FailedCreateUnwindsEarlierBlocksButNotEarlierFiles) {
  // Both nodes hold 3 blocks: file "a" (2 blocks x 2 replicas) fits;
  // file "b" (2 blocks x 2 replicas) runs out of space on its second
  // block after placing its first — the rollback must drop both of b's
  // blocks and every usage-counter increment, while "a" stays intact.
  NameNode nn(std::vector<std::uint64_t>{3, 3}, NameNode::Options{});
  Rng rng(11);
  const FileId a =
      nn.create_file("a", 2, 2, placement::make_random_policy(2), rng);
  EXPECT_THROW(
      nn.create_file("b", 2, 2, placement::make_random_policy(2), rng),
      std::runtime_error);
  EXPECT_FALSE(nn.has_file("b"));
  EXPECT_EQ(nn.block_count(), 2u);
  EXPECT_EQ(nn.datanodes().total_stored(), 4u);
  for (const BlockId b : nn.file(a).blocks) {
    EXPECT_EQ(nn.block(b).replicas.size(), 2u);
  }
}

TEST(NameNode, MarkNodeDeadWritesOffReplicasOnce) {
  NameNode nn(3);
  Rng rng(5);
  const FileId id =
      nn.create_file("f", 6, 2, placement::make_random_policy(3), rng);
  const auto before = nn.file_distribution(id);
  const auto affected = nn.mark_node_dead(0);
  EXPECT_TRUE(nn.is_dead(0));
  EXPECT_EQ(affected.size(), before[0]);
  EXPECT_EQ(nn.file_distribution(id)[0], 0u);
  EXPECT_EQ(nn.datanodes().total_stored(), 12u - before[0]);
  // Each affected block lost exactly its node-0 replica.
  for (const BlockId b : affected) {
    for (const auto n : nn.block(b).replicas) EXPECT_NE(n, 0u);
  }
  // Idempotent: a second declaration returns nothing.
  EXPECT_TRUE(nn.mark_node_dead(0).empty());
}

TEST(NameNode, DeadNodeIneligibleUntilRevived) {
  NameNode nn(2);
  Rng rng(9);
  nn.mark_node_dead(0);
  const FileId id =
      nn.create_file("f", 8, 1, placement::make_random_policy(2), rng);
  EXPECT_EQ(nn.file_distribution(id)[0], 0u);  // all on node 1
  nn.revive_node(0);
  EXPECT_FALSE(nn.is_dead(0));
  const FileId id2 =
      nn.create_file("g", 8, 2, placement::make_random_policy(2), rng);
  // Replication 2 on 2 nodes needs both: node 0 is placeable again.
  EXPECT_EQ(nn.file_distribution(id2)[0], 8u);
}

TEST(NameNode, FileDistributionSumsToReplicaCount) {
  NameNode nn(4);
  Rng rng(4);
  const FileId id = nn.create_file("f", 40, 2,
                                   placement::make_random_policy(4), rng);
  const auto dist = nn.file_distribution(id);
  std::uint64_t total = 0;
  for (const std::uint64_t c : dist) total += c;
  EXPECT_EQ(total, 80u);
}

TEST(NameNode, FidelityCapBoundsSkew) {
  NameNode::Options options;
  options.fidelity_cap = true;
  NameNode nn(8, options);
  Rng rng(5);
  // A wildly skewed policy: one node absorbs nearly all weight.
  std::vector<double> et(8, 1000.0);
  et[0] = 1.0;
  const FileId id = nn.create_file("f", 80, 1,
                                   placement::make_adapt_policy(et, 80), rng);
  const auto dist = nn.file_distribution(id);
  // Threshold: ceil(80 * 2 / 8) = 20.
  EXPECT_EQ(dist[0], 20u);
}

TEST(NameNode, FilterRestrictsPlacement) {
  NameNode nn(4);
  Rng rng(6);
  const FileId id = nn.create_file(
      "f", 20, 1, placement::make_random_policy(4), rng,
      [](cluster::NodeIndex node) { return node != 2; });
  EXPECT_EQ(nn.file_distribution(id)[2], 0u);
}

TEST(NameNode, Validation) {
  NameNode nn(3);
  Rng rng(7);
  const auto policy = placement::make_random_policy(3);
  EXPECT_THROW(nn.create_file("f", 0, 1, policy, rng),
               std::invalid_argument);
  EXPECT_THROW(nn.create_file("f", 5, 0, policy, rng),
               std::invalid_argument);
  EXPECT_THROW(nn.create_file("f", 5, 4, policy, rng),
               std::invalid_argument);
  nn.create_file("f", 5, 1, policy, rng);
  EXPECT_THROW(nn.create_file("f", 5, 1, policy, rng),
               std::invalid_argument);
  EXPECT_THROW(nn.file_id("missing"), std::out_of_range);
  // Impossible placement: every node filtered out.
  EXPECT_THROW(
      nn.create_file("g", 1, 1, policy, rng,
                     [](cluster::NodeIndex) { return false; }),
      std::runtime_error);
}

TEST(NameNode, ReplicaMutation) {
  NameNode nn(3);
  Rng rng(8);
  const FileId id = nn.create_file("f", 1, 1,
                                   placement::make_random_policy(3), rng);
  const BlockId block = nn.file(id).blocks[0];
  const cluster::NodeIndex holder = nn.block(block).replicas[0];
  const cluster::NodeIndex other = holder == 0 ? 1 : 0;
  nn.add_replica(block, other);
  EXPECT_EQ(nn.block(block).replicas.size(), 2u);
  // Duplicate insert dedupes (counted), never double-registers a holder.
  nn.add_replica(block, other);
  EXPECT_EQ(nn.block(block).replicas.size(), 2u);
  EXPECT_EQ(nn.stats().duplicate_replica_inserts, 1u);
  nn.remove_replica(block, holder);
  EXPECT_EQ(nn.block(block).replicas.size(), 1u);
  EXPECT_THROW(nn.remove_replica(block, holder), std::logic_error);
}

TEST(NameNode, RebalanceMovesTowardAdaptDistribution) {
  NameNode nn(6);
  Rng rng(9);
  const FileId id = nn.create_file("f", 300, 1,
                                   placement::make_random_policy(6), rng);
  // ADAPT target: node 0 is far faster than the rest.
  std::vector<double> et(6, 100.0);
  et[0] = 10.0;
  const auto adapt_policy = placement::make_adapt_policy(et, 300);
  const auto before = nn.file_distribution(id);
  const auto moves = nn.rebalance_file(id, adapt_policy, rng);
  EXPECT_FALSE(moves.empty());
  // The plan is *pending*: metadata doesn't flip until each move's
  // bytes have landed and the caller commits it.
  EXPECT_EQ(nn.file_distribution(id), before);
  EXPECT_EQ(nn.pending_moves().size(), moves.size());
  for (const ReplicaMove& move : moves) {
    EXPECT_NE(move.from, move.to);
    nn.commit_move(move.block, move.from, move.to);
  }
  const auto after = nn.file_distribution(id);
  EXPECT_GT(after[0], before[0]);
  EXPECT_TRUE(nn.pending_moves().empty());
  // Replica counts conserved.
  std::uint64_t total = 0;
  for (const std::uint64_t c : after) total += c;
  EXPECT_EQ(total, 300u);
}

TEST(NameNode, RebalanceKeepsReplicasDistinct) {
  NameNode nn(4);
  Rng rng(10);
  const FileId id = nn.create_file("f", 50, 2,
                                   placement::make_random_policy(4), rng);
  std::vector<double> et = {1.0, 1.0, 50.0, 50.0};
  const auto moves =
      nn.rebalance_file(id, placement::make_adapt_policy(et, 50), rng);
  for (const ReplicaMove& move : moves) {
    nn.commit_move(move.block, move.from, move.to);
  }
  for (const BlockId b : nn.file(id).blocks) {
    const BlockInfo& info = nn.block(b);
    const std::set<cluster::NodeIndex> distinct(info.replicas.begin(),
                                                info.replicas.end());
    EXPECT_EQ(distinct.size(), info.replicas.size());
  }
}

class ClientFixture : public ::testing::Test {
 protected:
  ClientFixture()
      : namenode_(4),
        network_(make_network()),
        client_(namenode_, placement::make_random_policy(4),
                placement::make_adapt_policy({1.0, 1.0, 10.0, 10.0}, 40),
                &network_, 64 * common::kMiB),
        rng_(17) {}

  static cluster::Network make_network() {
    cluster::Network::Config config;
    config.uplink_bps.assign(4, common::mbps(8));
    config.downlink_bps.assign(4, common::mbps(8));
    return cluster::Network(config);
  }

  NameNode namenode_;
  cluster::Network network_;
  Client client_;
  Rng rng_;
};

TEST_F(ClientFixture, CopyFromLocalChargesOriginTransfers) {
  TransferSummary summary;
  const FileId id = client_.copy_from_local("in", 10, 2, false, rng_, 0.0,
                                            &summary);
  EXPECT_EQ(summary.blocks_moved, 20u);
  EXPECT_EQ(summary.bytes_moved, 20ull * 64 * common::kMiB);
  EXPECT_GT(summary.completion_time, 0.0);
  EXPECT_EQ(namenode_.file(id).blocks.size(), 10u);
}

TEST_F(ClientFixture, AdaptFlagSelectsPolicy) {
  Rng rng_a(5);
  Rng rng_b(5);
  const FileId with = client_.copy_from_local("a", 200, 1, true, rng_a);
  const FileId without = client_.copy_from_local("b", 200, 1, false, rng_b);
  const auto da = namenode_.file_distribution(with);
  const auto db = namenode_.file_distribution(without);
  // ADAPT weights point at nodes 0/1; random spreads evenly.
  EXPECT_GT(da[0] + da[1], 150u);
  EXPECT_NEAR(static_cast<double>(db[0] + db[1]), 100.0, 35.0);
}

TEST_F(ClientFixture, CpDuplicatesFile) {
  client_.copy_from_local("src", 10, 1, false, rng_);
  TransferSummary summary;
  const FileId dst = client_.cp("src", "dst", true, rng_, 0.0, &summary);
  EXPECT_EQ(namenode_.file(dst).blocks.size(), 10u);
  EXPECT_TRUE(namenode_.has_file("dst"));
  EXPECT_LE(summary.blocks_moved, 10u);  // same-node copies are free
}

TEST_F(ClientFixture, AdaptRebalanceReportsMoves) {
  client_.copy_from_local("f", 100, 1, false, rng_);
  const TransferSummary summary = client_.adapt_rebalance("f", rng_);
  EXPECT_GT(summary.blocks_moved, 0u);
  // The fixture's ADAPT policy has E[T] = {1, 1, 10, 10}: weight flows
  // to nodes 0 and 1.
  const auto dist = namenode_.file_distribution(namenode_.file_id("f"));
  EXPECT_GT(dist[0] + dist[1], dist[2] + dist[3]);
}

}  // namespace
