// Tests for the paper's Section III model (Eq. 2-5).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "availability/interruption_model.h"

namespace {

using namespace adapt::avail;

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(Model, ParamsDerivedQuantities) {
  const InterruptionParams p{0.1, 4.0};
  EXPECT_DOUBLE_EQ(p.mtbi(), 10.0);
  EXPECT_DOUBLE_EQ(p.utilization(), 0.4);
  EXPECT_DOUBLE_EQ(p.steady_state_availability(), 0.6);
  EXPECT_TRUE(p.stable());

  const InterruptionParams dedicated{0.0, 0.0};
  EXPECT_EQ(dedicated.mtbi(), kInf);
  EXPECT_DOUBLE_EQ(dedicated.steady_state_availability(), 1.0);

  const InterruptionParams unstable{0.5, 3.0};
  EXPECT_FALSE(unstable.stable());
  EXPECT_DOUBLE_EQ(unstable.steady_state_availability(), 0.0);
}

TEST(Model, Equation3BusyPeriod) {
  // E[Y] = mu / (1 - lambda mu): group 1 of Table 2.
  const InterruptionParams p{0.1, 4.0};
  EXPECT_NEAR(expected_downtime(p), 4.0 / 0.6, 1e-12);
  EXPECT_EQ(expected_downtime({0.5, 3.0}), kInf);
  EXPECT_DOUBLE_EQ(expected_downtime({0.0, 7.0}), 7.0);
}

TEST(Model, Equation4FailedAttempts) {
  const InterruptionParams p{0.1, 4.0};
  EXPECT_NEAR(expected_failed_attempts(p, 10.0), std::exp(1.0) - 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(expected_failed_attempts({0.0, 0.0}, 10.0), 0.0);
}

TEST(Model, Equation2ReworkBounds) {
  // 0 < E[X] < gamma for lambda > 0; E[X] -> gamma/2 as lambda -> 0.
  const double gamma = 10.0;
  const InterruptionParams p{0.1, 4.0};
  const double ex = expected_rework(p, gamma);
  EXPECT_GT(ex, 0.0);
  EXPECT_LT(ex, gamma);
  const double ex_small = expected_rework({1e-9, 4.0}, gamma);
  EXPECT_NEAR(ex_small, gamma / 2.0, 1e-4);
}

TEST(Model, Equation5KnownValue) {
  // Group 1 of Table 2 at gamma = 10: (e - 1)(10 + 4/0.6).
  const InterruptionParams p{0.1, 4.0};
  const double expected = (std::exp(1.0) - 1.0) * (10.0 + 4.0 / 0.6);
  EXPECT_NEAR(expected_task_time(p, 10.0), expected, 1e-9);
}

TEST(Model, Equation5Limits) {
  EXPECT_DOUBLE_EQ(expected_task_time({0.0, 0.0}, 12.0), 12.0);
  EXPECT_EQ(expected_task_time({0.5, 3.0}, 12.0), kInf);
  // lambda -> 0 continuity.
  EXPECT_NEAR(expected_task_time({1e-12, 4.0}, 12.0), 12.0, 1e-6);
}

TEST(Model, ValidationErrors) {
  EXPECT_THROW(expected_task_time({-0.1, 4.0}, 10.0), std::invalid_argument);
  EXPECT_THROW(expected_task_time({0.1, -4.0}, 10.0), std::invalid_argument);
  EXPECT_THROW(expected_task_time({0.1, 4.0}, 0.0), std::invalid_argument);
  EXPECT_THROW(expected_rework({0.1, 4.0}, -1.0), std::invalid_argument);
}

// Property: Eq. 5 equals its recomposition gamma + E[S](E[X] + E[Y]) on a
// parameter grid (the identity the paper derives).
struct GridPoint {
  double lambda;
  double mu;
  double gamma;
};

class ModelConsistency : public ::testing::TestWithParam<GridPoint> {};

TEST_P(ModelConsistency, ClosedFormMatchesRecomposition) {
  const auto [lambda, mu, gamma] = GetParam();
  const InterruptionParams p{lambda, mu};
  const double direct = expected_task_time(p, gamma);
  const double recomposed = expected_task_time_recomposed(p, gamma);
  if (std::isinf(direct)) {
    EXPECT_TRUE(std::isinf(recomposed));
  } else {
    EXPECT_NEAR(direct, recomposed, 1e-9 * std::max(1.0, direct));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ModelConsistency,
    ::testing::Values(GridPoint{0.1, 4.0, 8.0}, GridPoint{0.1, 8.0, 8.0},
                      GridPoint{0.05, 4.0, 8.0}, GridPoint{0.05, 8.0, 8.0},
                      GridPoint{0.001, 100.0, 12.0},
                      GridPoint{1e-5, 1000.0, 12.0},
                      GridPoint{0.3, 3.0, 5.0},  // unstable: rho = 0.9 < 1
                      GridPoint{0.4, 2.6, 20.0}));

// Property: E[T] is monotone non-decreasing in lambda, mu, and gamma.
TEST(Model, Monotonicity) {
  const double base = expected_task_time({0.05, 4.0}, 10.0);
  EXPECT_GT(expected_task_time({0.10, 4.0}, 10.0), base);
  EXPECT_GT(expected_task_time({0.05, 8.0}, 10.0), base);
  EXPECT_GT(expected_task_time({0.05, 4.0}, 15.0), base);
}

// The ADAPT weight of a dedicated node always exceeds an interrupted one.
TEST(Model, DedicatedNodeIsFastest) {
  const double gamma = 8.0;
  const double dedicated = expected_task_time({0.0, 0.0}, gamma);
  for (const double lambda : {0.01, 0.05, 0.1}) {
    for (const double mu : {1.0, 4.0, 8.0}) {
      EXPECT_GT(expected_task_time({lambda, mu}, gamma), dedicated);
    }
  }
}

}  // namespace
