// NodeMask property tests against a std::vector<bool> oracle, with the
// word-boundary sizes (63/64/65) the packed representation has to get
// right, plus the tail-bits-zero invariant the word-parallel operations
// rely on.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "cluster/node_mask.h"
#include "common/rng.h"

namespace {

using adapt::cluster::NodeMask;

// The sizes that exercise empty, sub-word, exact-word, word+1 and
// multi-word layouts.
const std::size_t kSizes[] = {0, 1, 63, 64, 65, 100, 128, 200, 1024};

std::size_t oracle_count(const std::vector<bool>& bits) {
  std::size_t n = 0;
  for (const bool b : bits) n += b ? 1 : 0;
  return n;
}

// Random bit pattern of the given size and density.
std::vector<bool> random_bits(std::size_t size, double density,
                              adapt::common::Rng& rng) {
  std::vector<bool> bits(size, false);
  for (std::size_t i = 0; i < size; ++i) {
    bits[i] = rng.uniform() < density;
  }
  return bits;
}

void expect_matches_oracle(const NodeMask& mask,
                           const std::vector<bool>& bits) {
  ASSERT_EQ(mask.size(), bits.size());
  EXPECT_EQ(mask.count(), oracle_count(bits));
  EXPECT_EQ(mask.any(), oracle_count(bits) > 0);
  EXPECT_EQ(mask.none(), oracle_count(bits) == 0);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    EXPECT_EQ(mask.test(i), bits[i]) << "bit " << i;
    EXPECT_EQ(mask[i], bits[i]) << "bit " << i;
  }
  EXPECT_EQ(mask.to_vector(), bits);
}

void expect_tail_zero(const NodeMask& mask) {
  const std::size_t tail = mask.size() % NodeMask::kWordBits;
  if (tail == 0 || mask.words().empty()) return;
  const NodeMask::Word tail_mask = (NodeMask::Word{1} << tail) - 1;
  EXPECT_EQ(mask.words().back() & ~tail_mask, 0u)
      << "tail bits past size() must stay zero (size " << mask.size()
      << ")";
}

TEST(NodeMaskTest, FromVectorRoundTripsAtWordBoundaries) {
  adapt::common::Rng rng(11);
  for (const std::size_t size : kSizes) {
    for (const double density : {0.0, 0.1, 0.5, 1.0}) {
      const std::vector<bool> bits = random_bits(size, density, rng);
      const NodeMask mask = NodeMask::from_vector(bits);
      expect_matches_oracle(mask, bits);
      expect_tail_zero(mask);
    }
  }
}

TEST(NodeMaskTest, RandomMutationSequenceTracksOracle) {
  adapt::common::Rng rng(12);
  for (const std::size_t size : {std::size_t{63}, std::size_t{64},
                                 std::size_t{65}, std::size_t{200}}) {
    NodeMask mask(size);
    std::vector<bool> bits(size, false);
    for (int step = 0; step < 500; ++step) {
      const std::size_t i = rng.uniform_index(size);
      switch (rng.uniform_index(3)) {
        case 0:
          mask.set(i);
          bits[i] = true;
          break;
        case 1:
          mask.reset(i);
          bits[i] = false;
          break;
        default: {
          const bool value = rng.uniform() < 0.5;
          mask.assign(i, value);
          bits[i] = value;
          break;
        }
      }
    }
    expect_matches_oracle(mask, bits);
    expect_tail_zero(mask);
  }
}

TEST(NodeMaskTest, SetAllRespectsSizeInvariant) {
  for (const std::size_t size : kSizes) {
    NodeMask mask(size);
    mask.set_all();
    EXPECT_EQ(mask.count(), size);
    expect_tail_zero(mask);
    mask.reset_all();
    EXPECT_EQ(mask.count(), 0u);
    EXPECT_TRUE(mask.none());
  }
  // The fill constructor is set_all.
  const NodeMask filled(65, true);
  EXPECT_EQ(filled.count(), 65u);
  expect_tail_zero(filled);
}

TEST(NodeMaskTest, WordParallelCombinesMatchOracle) {
  adapt::common::Rng rng(13);
  for (const std::size_t size : {std::size_t{63}, std::size_t{64},
                                 std::size_t{65}, std::size_t{190}}) {
    const std::vector<bool> a_bits = random_bits(size, 0.5, rng);
    const std::vector<bool> b_bits = random_bits(size, 0.5, rng);
    const NodeMask a = NodeMask::from_vector(a_bits);
    const NodeMask b = NodeMask::from_vector(b_bits);

    NodeMask and_mask = a;
    and_mask &= b;
    NodeMask or_mask = a;
    or_mask |= b;
    NodeMask and_not_mask = a;
    and_not_mask.and_not(b);

    std::vector<bool> and_bits(size), or_bits(size), and_not_bits(size);
    for (std::size_t i = 0; i < size; ++i) {
      and_bits[i] = a_bits[i] && b_bits[i];
      or_bits[i] = a_bits[i] || b_bits[i];
      and_not_bits[i] = a_bits[i] && !b_bits[i];
    }
    expect_matches_oracle(and_mask, and_bits);
    expect_matches_oracle(or_mask, or_bits);
    expect_matches_oracle(and_not_mask, and_not_bits);
    expect_tail_zero(and_not_mask);
  }
}

TEST(NodeMaskTest, CombineSizeMismatchThrows) {
  NodeMask a(64);
  const NodeMask b(65);
  EXPECT_THROW(a &= b, std::invalid_argument);
  EXPECT_THROW(a |= b, std::invalid_argument);
  EXPECT_THROW(a.and_not(b), std::invalid_argument);
}

TEST(NodeMaskTest, ForEachSetVisitsAscending) {
  adapt::common::Rng rng(14);
  for (const std::size_t size : {std::size_t{65}, std::size_t{200}}) {
    const std::vector<bool> bits = random_bits(size, 0.3, rng);
    const NodeMask mask = NodeMask::from_vector(bits);
    std::vector<std::size_t> visited;
    mask.for_each_set([&](std::uint32_t i) { visited.push_back(i); });
    std::vector<std::size_t> expected;
    for (std::size_t i = 0; i < size; ++i) {
      if (bits[i]) expected.push_back(i);
    }
    EXPECT_EQ(visited, expected);
  }
}

TEST(NodeMaskTest, ForEachSetToleratesResettingTheCurrentBit) {
  // The re-replication path filters in place: it resets the bit it is
  // currently visiting. The iteration works on a local copy of each
  // word, so every originally-set bit is still visited exactly once.
  NodeMask mask(130, true);
  std::size_t visited = 0;
  mask.for_each_set([&](std::uint32_t i) {
    mask.reset(i);
    ++visited;
  });
  EXPECT_EQ(visited, 130u);
  EXPECT_TRUE(mask.none());
}

TEST(NodeMaskTest, NthSetMatchesOracle) {
  adapt::common::Rng rng(15);
  for (const std::size_t size : {std::size_t{63}, std::size_t{64},
                                 std::size_t{65}, std::size_t{300}}) {
    const std::vector<bool> bits = random_bits(size, 0.4, rng);
    const NodeMask mask = NodeMask::from_vector(bits);
    std::vector<std::size_t> set_indices;
    for (std::size_t i = 0; i < size; ++i) {
      if (bits[i]) set_indices.push_back(i);
    }
    for (std::size_t n = 0; n < set_indices.size(); ++n) {
      EXPECT_EQ(mask.nth_set(n), set_indices[n]) << "n=" << n;
    }
    // Past the population: sentinel size().
    EXPECT_EQ(mask.nth_set(set_indices.size()), size);
    EXPECT_EQ(mask.nth_set(set_indices.size() + 7), size);
  }
}

TEST(NodeMaskTest, LastSetMatchesOracle) {
  for (const std::size_t size : {std::size_t{63}, std::size_t{64},
                                 std::size_t{65}}) {
    NodeMask mask(size);
    EXPECT_EQ(mask.last_set(), size) << "empty mask sentinel";
    mask.set(0);
    EXPECT_EQ(mask.last_set(), 0u);
    mask.set(size - 1);
    EXPECT_EQ(mask.last_set(), size - 1);
    mask.reset(size - 1);
    EXPECT_EQ(mask.last_set(), 0u);
  }
}

TEST(NodeMaskTest, EqualityComparesContents) {
  const NodeMask a = NodeMask::from_vector({true, false, true});
  NodeMask b(3);
  b.set(0);
  b.set(2);
  EXPECT_EQ(a, b);
  b.reset(2);
  EXPECT_NE(a, b);
}

}  // namespace
