// End-to-end integration: the paper's headline orderings on a reduced
// emulated cluster (kept small so the suite stays fast; the full-scale
// numbers live in the bench binaries).
#include <gtest/gtest.h>

#include "core/adapt.h"
#include "workload/terasort.h"

namespace {

using namespace adapt;
using namespace adapt::core;

struct Results {
  RepeatedResult random_r1;
  RepeatedResult adapt_r1;
  RepeatedResult naive_r1;
  RepeatedResult random_r2;
  RepeatedResult adapt_r2;
};

const Results& emulation_results() {
  static const Results results = [] {
    cluster::EmulationConfig emu;
    emu.node_count = 64;
    emu.interrupted_ratio = 0.5;
    const cluster::Cluster cl = cluster::emulated_cluster(emu);
    const workload::Workload w = workload::emulation_workload();
    ExperimentConfig config;
    config.blocks = w.blocks_for(cl.size());
    config.job.gamma = w.gamma();
    config.seed = 1234;
    // Elapsed time at this reduced scale is dominated by the last few
    // tasks, so per-run variance is large; 16 replications keep the
    // headline orderings stable instead of hinging on a lucky draw.
    constexpr int kRuns = 16;
    Results out;
    config.replication = 1;
    config.policy = PolicyKind::kRandom;
    out.random_r1 = run_repeated(cl, config, kRuns);
    config.policy = PolicyKind::kAdapt;
    out.adapt_r1 = run_repeated(cl, config, kRuns);
    config.policy = PolicyKind::kNaive;
    out.naive_r1 = run_repeated(cl, config, kRuns);
    config.replication = 2;
    config.policy = PolicyKind::kRandom;
    out.random_r2 = run_repeated(cl, config, kRuns);
    config.policy = PolicyKind::kAdapt;
    out.adapt_r2 = run_repeated(cl, config, kRuns);
    return out;
  }();
  return results;
}

TEST(Integration, AdaptBeatsRandomWithOneReplica) {
  const Results& r = emulation_results();
  // The paper reports > 30% improvement; require a clear win here.
  EXPECT_LT(r.adapt_r1.elapsed.mean, r.random_r1.elapsed.mean * 0.85);
}

TEST(Integration, NaiveSitsBetweenRandomAndAdapt) {
  const Results& r = emulation_results();
  EXPECT_LT(r.naive_r1.elapsed.mean, r.random_r1.elapsed.mean);
  // ADAPT ranks at least as good as naive (ties allowed within 5%).
  EXPECT_LT(r.adapt_r1.elapsed.mean, r.naive_r1.elapsed.mean * 1.05);
}

TEST(Integration, SecondReplicaHelpsRandomMost) {
  const Results& r = emulation_results();
  EXPECT_LT(r.random_r2.elapsed.mean, r.random_r1.elapsed.mean);
  // ADAPT r1 lands in the r2 neighbourhood (the paper's storage
  // efficiency argument): within 2x of random r2.
  EXPECT_LT(r.adapt_r1.elapsed.mean, r.random_r2.elapsed.mean * 2.0);
}

TEST(Integration, AdaptKeepsHighLocality) {
  const Results& r = emulation_results();
  EXPECT_GT(r.adapt_r1.locality.mean, 0.93);
  EXPECT_GE(r.adapt_r1.locality.mean, r.random_r1.locality.mean - 0.02);
}

TEST(Integration, OverheadComponentsAreWellFormed) {
  const Results& r = emulation_results();
  for (const RepeatedResult* result :
       {&r.random_r1, &r.adapt_r1, &r.random_r2, &r.adapt_r2}) {
    EXPECT_GE(result->rework_ratio, 0.0);
    EXPECT_GE(result->recovery_ratio, 0.0);
    EXPECT_GE(result->migration_ratio, 0.0);
    EXPECT_GE(result->misc_ratio, 0.0);
    EXPECT_GT(result->total_ratio, 0.0);
  }
  // ADAPT reduces total overhead at r1.
  EXPECT_LT(r.adapt_r1.total_ratio, r.random_r1.total_ratio);
}

TEST(Integration, HigherBandwidthShrinksAdaptAdvantage) {
  cluster::EmulationConfig emu;
  emu.node_count = 64;
  const workload::Workload w = workload::emulation_workload();
  ExperimentConfig config;
  config.blocks = w.blocks_for(64);
  config.job.gamma = w.gamma();
  config.seed = 77;
  config.replication = 1;

  auto advantage = [&](double bps) {
    emu.bandwidth_bps = bps;
    const cluster::Cluster cl = cluster::emulated_cluster(emu);
    config.policy = PolicyKind::kRandom;
    const double random = run_repeated(cl, config, 8).elapsed.mean;
    config.policy = PolicyKind::kAdapt;
    const double adapt_time = run_repeated(cl, config, 8).elapsed.mean;
    return random / adapt_time;
  };
  const double at_8 = advantage(common::mbps(8));
  const double at_64 = advantage(common::mbps(64));
  EXPECT_GT(at_8, 1.0);
  // The paper: "its benefit decreases as the network bandwidth goes up".
  // At this reduced scale the trend is noisy; require it within noise.
  EXPECT_LT(at_64, at_8 * 1.15);
}

}  // namespace
