#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "cluster/network.h"
#include "common/units.h"

namespace {

using namespace adapt;
using cluster::kOriginEndpoint;
using cluster::Network;
using cluster::TransferGrant;
using common::kMiB;
using common::mbps;

Network::Config symmetric(std::size_t n, double bps,
                          double origin_bps = 0.0) {
  Network::Config config;
  config.uplink_bps.assign(n, bps);
  config.downlink_bps.assign(n, bps);
  config.origin_uplink_bps = origin_bps;
  return config;
}

constexpr std::uint64_t kBlock = 64 * kMiB;

TEST(Network, SingleTransferDuration) {
  Network net(symmetric(2, mbps(8)));
  const TransferGrant g = net.request(0, 1, kBlock, 0.0);
  EXPECT_DOUBLE_EQ(g.start, 0.0);
  EXPECT_NEAR(g.duration(), common::transfer_time(kBlock, mbps(8)), 1e-9);
}

TEST(Network, EqualLinksSerializeFifo) {
  Network net(symmetric(3, mbps(8)));
  const TransferGrant a = net.request(0, 1, kBlock, 0.0);
  const TransferGrant b = net.request(0, 2, kBlock, 0.0);
  EXPECT_DOUBLE_EQ(b.start, a.end);  // same uplink, same rate: FIFO
}

TEST(Network, FastSourceServesSlowClientsConcurrently) {
  // Source uplink 64 Mb/s, clients 8 Mb/s: admission spacing is the
  // fair-share time (1/8 of the transfer), so ~8 transfers overlap.
  Network::Config config = symmetric(3, mbps(8));
  config.uplink_bps[0] = mbps(64);
  Network net(config);
  const TransferGrant a = net.request(0, 1, kBlock, 0.0);
  const TransferGrant b = net.request(0, 2, kBlock, 0.0);
  EXPECT_NEAR(b.start, common::transfer_time(kBlock, mbps(64)), 1e-9);
  EXPECT_LT(b.start, a.end);  // overlapping
}

TEST(Network, RateIsMinOfEnds) {
  Network::Config config = symmetric(2, mbps(8));
  config.downlink_bps[1] = mbps(4);
  Network net(config);
  const TransferGrant g = net.request(0, 1, kBlock, 0.0);
  EXPECT_NEAR(g.duration(), common::transfer_time(kBlock, mbps(4)), 1e-9);
}

TEST(Network, OriginUnconstrainedByDefault) {
  Network net(symmetric(4, mbps(8)));
  EXPECT_TRUE(std::isinf(net.origin_uplink_bps()));
  // Several origin fetches all start immediately at the client rate.
  for (std::uint32_t dst = 0; dst < 4; ++dst) {
    const TransferGrant g = net.request(kOriginEndpoint, dst, kBlock, 5.0);
    EXPECT_DOUBLE_EQ(g.start, 5.0);
    EXPECT_NEAR(g.duration(), common::transfer_time(kBlock, mbps(8)), 1e-9);
  }
}

TEST(Network, ConstrainedOriginQueues) {
  Network net(symmetric(2, mbps(8), mbps(8)));
  const TransferGrant a = net.request(kOriginEndpoint, 0, kBlock, 0.0);
  const TransferGrant b = net.request(kOriginEndpoint, 1, kBlock, 0.0);
  EXPECT_DOUBLE_EQ(b.start, a.end);
}

TEST(Network, AbortNewestReleasesShare) {
  Network net(symmetric(3, mbps(8)));
  (void)net.request(0, 1, kBlock, 0.0);
  const TransferGrant b = net.request(0, 2, kBlock, 0.0);
  net.abort(b, 10.0);
  // The next request starts where b would have (its share was released).
  const TransferGrant c = net.request(0, 2, kBlock, 20.0);
  EXPECT_DOUBLE_EQ(c.start, b.start);
}

TEST(Network, AbortOldestReclaimsUnusedShare) {
  // Regression: aborting a grant that is NOT the newest used to leave
  // its whole remaining share reserved (a permanent hole in the uplink).
  Network net(symmetric(3, mbps(8)));
  const double share = common::transfer_time(kBlock, mbps(8));
  const TransferGrant a = net.request(0, 1, kBlock, 0.0);
  const TransferGrant b = net.request(0, 2, kBlock, 0.0);
  // a is partially consumed at t=1: only the unused [1, share) returns.
  const common::Seconds reclaimed = net.abort(a, 1.0);
  EXPECT_DOUBLE_EQ(reclaimed, share - 1.0);
  EXPECT_DOUBLE_EQ(net.uplink_available_at(0), b.end - reclaimed);
  const TransferGrant c = net.request(0, 1, kBlock, 1.0);
  EXPECT_DOUBLE_EQ(c.start, share + 1.0);  // right behind b's share
}

TEST(Network, AbortMidQueueReclaimsShare) {
  // Regression for the uplink-admission leak: aborting the middle of
  // three queued grants must hand back its full (unstarted) share, so a
  // re-request is admitted where the aborted grant would have run.
  Network net(symmetric(4, mbps(8)));
  (void)net.request(0, 1, kBlock, 0.0);
  const TransferGrant b = net.request(0, 2, kBlock, 0.0);
  const TransferGrant c = net.request(0, 3, kBlock, 0.0);
  const common::Seconds reclaimed = net.abort(b, 1.0);
  EXPECT_DOUBLE_EQ(reclaimed, b.end - b.start);  // nothing consumed yet
  const TransferGrant d = net.request(0, 2, kBlock, 1.0);
  EXPECT_DOUBLE_EQ(d.start, c.start);  // not c.end: no hole left behind
}

TEST(Network, AbortConsumedShareReclaimsNothing) {
  Network net(symmetric(3, mbps(8)));
  const double share = common::transfer_time(kBlock, mbps(8));
  const TransferGrant a = net.request(0, 1, kBlock, 0.0);
  const TransferGrant b = net.request(0, 2, kBlock, 0.0);
  // a's admission share [0, share) is fully consumed by t = share + 1.
  EXPECT_DOUBLE_EQ(net.abort(a, share + 1.0), 0.0);
  EXPECT_DOUBLE_EQ(net.uplink_available_at(0), b.end);
}

TEST(Network, ShiftThenAbortCompose) {
  // An outage shift followed by a mid-queue abort must stay exact: the
  // shifted spans keep their consumed prefixes, and the abort returns
  // only what is still unused at abort time.
  Network net(symmetric(3, mbps(8)));
  const double share = common::transfer_time(kBlock, mbps(8));
  const TransferGrant a = net.request(0, 1, kBlock, 0.0);
  (void)net.request(0, 2, kBlock, 0.0);
  // Source down at t=10, back at t=40: every unfinished share shifts by
  // the 30 s outage (a's span becomes [0, share + 30)).
  net.shift_uplink(0, 30.0, 40.0);
  EXPECT_DOUBLE_EQ(net.uplink_available_at(0), 2.0 * share + 30.0);
  // Abort a at t=40: it consumed [0, 10) before the outage plus nothing
  // since (it resumes at 40), so share - 10 comes back.
  const common::Seconds reclaimed = net.abort(a, 40.0);
  EXPECT_DOUBLE_EQ(reclaimed, share - 10.0);
  EXPECT_DOUBLE_EQ(net.uplink_available_at(0), share + 40.0);
  const TransferGrant c = net.request(0, 1, kBlock, 40.0);
  EXPECT_DOUBLE_EQ(c.start, share + 40.0);
}

TEST(Network, StatsCountRequestsAndReclaims) {
  Network net(symmetric(3, mbps(8)));
  const TransferGrant a = net.request(0, 1, kBlock, 0.0);
  const TransferGrant b = net.request(0, 2, kBlock, 0.0);
  net.abort(b, 0.0);
  const cluster::Network::Stats& stats = net.stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.aborts, 1u);
  EXPECT_DOUBLE_EQ(stats.admission_wait, b.start - 0.0);
  EXPECT_DOUBLE_EQ(stats.reclaimed, b.end - b.start);
  (void)a;
}

TEST(Network, ResetClearsQueue) {
  Network net(symmetric(2, mbps(8)));
  (void)net.request(0, 1, kBlock, 0.0);
  net.reset_uplink(0, 100.0);
  const TransferGrant g = net.request(0, 1, kBlock, 100.0);
  EXPECT_DOUBLE_EQ(g.start, 100.0);
}

TEST(Network, ShiftPushesPendingAdmissions) {
  Network net(symmetric(2, mbps(8)));
  const TransferGrant a = net.request(0, 1, kBlock, 0.0);
  net.shift_uplink(0, 30.0, 40.0);
  EXPECT_DOUBLE_EQ(net.uplink_available_at(0), a.end + 30.0);
}

TEST(Network, UnlimitedModeHasNoQueueing) {
  Network::Config config = symmetric(2, mbps(8));
  config.fifo_admission = false;
  Network net(config);
  const TransferGrant a = net.request(0, 1, kBlock, 0.0);
  const TransferGrant b = net.request(0, 1, kBlock, 0.0);
  EXPECT_DOUBLE_EQ(a.start, 0.0);
  EXPECT_DOUBLE_EQ(b.start, 0.0);
  EXPECT_DOUBLE_EQ(net.uplink_available_at(0), 0.0);
}

TEST(Network, TracksCompletedBytes) {
  Network net(symmetric(2, mbps(8)));
  EXPECT_EQ(net.bytes_transferred(), 0u);
  net.on_transfer_complete(kBlock);
  EXPECT_EQ(net.bytes_transferred(), kBlock);
}

TEST(Network, Validation) {
  EXPECT_THROW(Network(Network::Config{}), std::invalid_argument);
  Network::Config bad = symmetric(2, mbps(8));
  bad.uplink_bps[0] = 0.0;
  EXPECT_THROW(Network{bad}, std::invalid_argument);
  Network net(symmetric(2, mbps(8)));
  EXPECT_THROW(net.request(0, 0, kBlock, 0.0), std::invalid_argument);
}

}  // namespace
