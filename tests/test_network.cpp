#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "cluster/network.h"
#include "common/units.h"

namespace {

using namespace adapt;
using cluster::kOriginEndpoint;
using cluster::Network;
using cluster::TransferGrant;
using common::kMiB;
using common::mbps;

Network::Config symmetric(std::size_t n, double bps,
                          double origin_bps = 0.0) {
  Network::Config config;
  config.uplink_bps.assign(n, bps);
  config.downlink_bps.assign(n, bps);
  config.origin_uplink_bps = origin_bps;
  return config;
}

constexpr std::uint64_t kBlock = 64 * kMiB;

TEST(Network, SingleTransferDuration) {
  Network net(symmetric(2, mbps(8)));
  const TransferGrant g = net.request(0, 1, kBlock, 0.0);
  EXPECT_DOUBLE_EQ(g.start, 0.0);
  EXPECT_NEAR(g.duration(), common::transfer_time(kBlock, mbps(8)), 1e-9);
}

TEST(Network, EqualLinksSerializeFifo) {
  Network net(symmetric(3, mbps(8)));
  const TransferGrant a = net.request(0, 1, kBlock, 0.0);
  const TransferGrant b = net.request(0, 2, kBlock, 0.0);
  EXPECT_DOUBLE_EQ(b.start, a.end);  // same uplink, same rate: FIFO
}

TEST(Network, FastSourceServesSlowClientsConcurrently) {
  // Source uplink 64 Mb/s, clients 8 Mb/s: admission spacing is the
  // fair-share time (1/8 of the transfer), so ~8 transfers overlap.
  Network::Config config = symmetric(3, mbps(8));
  config.uplink_bps[0] = mbps(64);
  Network net(config);
  const TransferGrant a = net.request(0, 1, kBlock, 0.0);
  const TransferGrant b = net.request(0, 2, kBlock, 0.0);
  EXPECT_NEAR(b.start, common::transfer_time(kBlock, mbps(64)), 1e-9);
  EXPECT_LT(b.start, a.end);  // overlapping
}

TEST(Network, RateIsMinOfEnds) {
  Network::Config config = symmetric(2, mbps(8));
  config.downlink_bps[1] = mbps(4);
  Network net(config);
  const TransferGrant g = net.request(0, 1, kBlock, 0.0);
  EXPECT_NEAR(g.duration(), common::transfer_time(kBlock, mbps(4)), 1e-9);
}

TEST(Network, OriginUnconstrainedByDefault) {
  Network net(symmetric(4, mbps(8)));
  EXPECT_TRUE(std::isinf(net.origin_uplink_bps()));
  // Several origin fetches all start immediately at the client rate.
  for (std::uint32_t dst = 0; dst < 4; ++dst) {
    const TransferGrant g = net.request(kOriginEndpoint, dst, kBlock, 5.0);
    EXPECT_DOUBLE_EQ(g.start, 5.0);
    EXPECT_NEAR(g.duration(), common::transfer_time(kBlock, mbps(8)), 1e-9);
  }
}

TEST(Network, ConstrainedOriginQueues) {
  Network net(symmetric(2, mbps(8), mbps(8)));
  const TransferGrant a = net.request(kOriginEndpoint, 0, kBlock, 0.0);
  const TransferGrant b = net.request(kOriginEndpoint, 1, kBlock, 0.0);
  EXPECT_DOUBLE_EQ(b.start, a.end);
}

TEST(Network, AbortNewestReleasesShare) {
  Network net(symmetric(3, mbps(8)));
  (void)net.request(0, 1, kBlock, 0.0);
  const TransferGrant b = net.request(0, 2, kBlock, 0.0);
  net.abort(b, 10.0);
  // The next request starts where b would have (its share was released).
  const TransferGrant c = net.request(0, 2, kBlock, 20.0);
  EXPECT_DOUBLE_EQ(c.start, b.start);
}

TEST(Network, AbortOlderLeavesHole) {
  Network net(symmetric(3, mbps(8)));
  const TransferGrant a = net.request(0, 1, kBlock, 0.0);
  const TransferGrant b = net.request(0, 2, kBlock, 0.0);
  net.abort(a, 1.0);  // not the newest: pessimistic hole remains
  const TransferGrant c = net.request(0, 1, kBlock, 1.0);
  EXPECT_DOUBLE_EQ(c.start, b.end);
}

TEST(Network, ResetClearsQueue) {
  Network net(symmetric(2, mbps(8)));
  (void)net.request(0, 1, kBlock, 0.0);
  net.reset_uplink(0, 100.0);
  const TransferGrant g = net.request(0, 1, kBlock, 100.0);
  EXPECT_DOUBLE_EQ(g.start, 100.0);
}

TEST(Network, ShiftPushesPendingAdmissions) {
  Network net(symmetric(2, mbps(8)));
  const TransferGrant a = net.request(0, 1, kBlock, 0.0);
  net.shift_uplink(0, 30.0, 40.0);
  EXPECT_DOUBLE_EQ(net.uplink_available_at(0), a.end + 30.0);
}

TEST(Network, UnlimitedModeHasNoQueueing) {
  Network::Config config = symmetric(2, mbps(8));
  config.fifo_admission = false;
  Network net(config);
  const TransferGrant a = net.request(0, 1, kBlock, 0.0);
  const TransferGrant b = net.request(0, 1, kBlock, 0.0);
  EXPECT_DOUBLE_EQ(a.start, 0.0);
  EXPECT_DOUBLE_EQ(b.start, 0.0);
  EXPECT_DOUBLE_EQ(net.uplink_available_at(0), 0.0);
}

TEST(Network, TracksCompletedBytes) {
  Network net(symmetric(2, mbps(8)));
  EXPECT_EQ(net.bytes_transferred(), 0u);
  net.on_transfer_complete(kBlock);
  EXPECT_EQ(net.bytes_transferred(), kBlock);
}

TEST(Network, Validation) {
  EXPECT_THROW(Network(Network::Config{}), std::invalid_argument);
  Network::Config bad = symmetric(2, mbps(8));
  bad.uplink_bps[0] = 0.0;
  EXPECT_THROW(Network{bad}, std::invalid_argument);
  Network net(symmetric(2, mbps(8)));
  EXPECT_THROW(net.request(0, 0, kBlock, 0.0), std::invalid_argument);
}

}  // namespace
