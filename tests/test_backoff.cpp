// Retry-backoff clamp regression tests: exponential growth must never
// escape max_backoff — not through std::pow saturation, not through the
// jitter multiplier — and both retry drivers must reject degenerate
// backoff configs at construction.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <optional>
#include <stdexcept>

#include "cluster/network.h"
#include "hdfs/namenode.h"
#include "placement/random_policy.h"
#include "sim/backoff.h"
#include "sim/event_queue.h"
#include "sim/migration.h"
#include "sim/rereplication.h"

namespace {

using namespace adapt;
using adapt::common::Rng;
using adapt::sim::BackoffParams;
using adapt::sim::backoff_delay;
using adapt::sim::backoff_params_valid;

TEST(Backoff, GrowsExponentiallyUnderTheCap) {
  BackoffParams p;
  p.jitter = 0.0;
  Rng rng(1);
  EXPECT_DOUBLE_EQ(backoff_delay(p, 0, rng), 5.0);
  EXPECT_DOUBLE_EQ(backoff_delay(p, 1, rng), 10.0);
  EXPECT_DOUBLE_EQ(backoff_delay(p, 2, rng), 20.0);
  EXPECT_DOUBLE_EQ(backoff_delay(p, 6, rng), 320.0);
}

// Retry counts far past the cap saturate std::pow to +inf; the clamp
// must turn that into exactly max, never infinity or NaN.
TEST(Backoff, PowOverflowClampsToMax) {
  BackoffParams p;
  p.jitter = 0.0;
  Rng rng(1);
  EXPECT_DOUBLE_EQ(backoff_delay(p, 7, rng), 600.0);  // 640 pre-clamp
  EXPECT_DOUBLE_EQ(backoff_delay(p, 100, rng), 600.0);
  EXPECT_DOUBLE_EQ(backoff_delay(p, 100000, rng), 600.0);
}

// The jitter multiplier can exceed 1: the post-jitter clamp keeps the
// final delay under the cap for every draw.
TEST(Backoff, JitteredDelayNeverExceedsMax) {
  BackoffParams p;
  p.jitter = 0.5;
  Rng rng(42);
  for (int retries = 0; retries < 40; ++retries) {
    for (int draw = 0; draw < 64; ++draw) {
      const double delay = backoff_delay(p, retries, rng);
      EXPECT_TRUE(std::isfinite(delay));
      EXPECT_GT(delay, 0.0);
      EXPECT_LE(delay, p.max);
    }
  }
}

TEST(Backoff, ParamValidation) {
  EXPECT_TRUE(backoff_params_valid({}));
  BackoffParams p;
  p.max = 0.0;
  EXPECT_FALSE(backoff_params_valid(p));
  p.max = -5.0;
  EXPECT_FALSE(backoff_params_valid(p));
  p.max = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(backoff_params_valid(p));
  p = {};
  p.factor = 0.5;  // shrinking "backoff" is a config bug
  EXPECT_FALSE(backoff_params_valid(p));
  p = {};
  p.base = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(backoff_params_valid(p));
  p = {};
  p.jitter = 1.5;
  EXPECT_FALSE(backoff_params_valid(p));
}

cluster::Network make_net(std::size_t nodes) {
  cluster::Network::Config config;
  config.uplink_bps.assign(nodes, 1024.0 * 1024.0 * 8);
  config.downlink_bps.assign(nodes, 1024.0 * 1024.0 * 8);
  return cluster::Network(config);
}

// Both retry drivers reject a degenerate max_backoff at construction
// instead of scheduling unbounded (or infinite) retry delays.
TEST(Backoff, DriversRejectBadMaxBackoff) {
  sim::EventQueue queue;
  hdfs::NameNode nn(2);
  cluster::Network net = make_net(2);
  const auto up = [](cluster::NodeIndex) { return true; };

  sim::ReReplicator::Config rconfig;
  rconfig.max_backoff = 0.0;
  EXPECT_THROW(sim::ReReplicator(queue, nn, net, 1024, rconfig, Rng(1), up),
               std::invalid_argument);
  rconfig.max_backoff = std::numeric_limits<double>::infinity();
  EXPECT_THROW(sim::ReReplicator(queue, nn, net, 1024, rconfig, Rng(1), up),
               std::invalid_argument);

  sim::MigrationDriver::Config mconfig;
  mconfig.max_backoff = 0.0;
  EXPECT_THROW(sim::MigrationDriver(queue, nn, net, 1024, mconfig, Rng(1), up),
               std::invalid_argument);
  mconfig.max_backoff = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(sim::MigrationDriver(queue, nn, net, 1024, mconfig, Rng(1), up),
               std::invalid_argument);
}

}  // namespace
