// SchedulerPolicy API: policy-level decision tests against a scripted
// host (overdue boundary, attempt-cap saturation, calibrated quotes)
// and simulation-level tests for speculative cancellation racing
// completion and redundant k-launch degradation.
#include <gtest/gtest.h>

#include <limits>

#include "cluster/topology.h"
#include "hdfs/namenode.h"
#include "placement/random_policy.h"
#include "sim/mapreduce_sim.h"
#include "sim/scheduler_policy.h"

namespace {

using namespace adapt;
using namespace adapt::sim;
using cluster::AvailabilityMode;
using cluster::Cluster;
using cluster::NodeSpec;
using common::mbps;

// Scripted host: a fixed list of running attempts plus knobs for every
// query a policy may make.
class FakeHost : public SchedulerHost {
 public:
  std::vector<AttemptView> attempts;
  common::Seconds now_value = 0.0;
  double fresh_cost = 10.0;
  double calibration_ratio = 0.0;
  std::size_t attempts_per_task = 1;
  bool local = false;

  common::Seconds now() const override { return now_value; }
  std::size_t running_count() const override { return attempts.size(); }
  AttemptView running_attempt(std::size_t i) const override {
    return attempts[i];
  }
  bool task_running(std::uint32_t) const override { return true; }
  std::size_t attempt_count(std::uint32_t) const override {
    return attempts_per_task;
  }
  bool is_local_to(std::uint32_t, cluster::NodeIndex) const override {
    return local;
  }
  double estimated_cost_on(cluster::NodeIndex,
                           std::uint32_t) const override {
    return fresh_cost;
  }
  double cluster_calibration_ratio() const override {
    return calibration_ratio;
  }
};

AttemptView laggard(std::uint32_t task, cluster::NodeIndex node,
                    double slip, double remaining) {
  AttemptView a;
  a.task = task;
  a.node = node;
  a.alive = true;
  a.nominal_end = 100.0;
  a.projected_finish = 100.0 + slip;
  a.remaining = remaining;
  return a;
}

TEST(BaselinePolicy, OverdueBoundaryIsInclusive) {
  SchedulerConfig config;
  config.speculation_overdue = 30.0;
  const SchedulerPtr policy = make_scheduler(config, /*gamma=*/12.0);
  FakeHost host;
  host.fresh_cost = 10.0;  // remaining 100 > 1.2 * 10: profitable

  // Slip exactly at the threshold qualifies (the scan skips only
  // attempts strictly under it) ...
  host.attempts = {laggard(7, /*node=*/1, /*slip=*/30.0, 100.0)};
  EXPECT_EQ(policy->pick_speculative(/*node=*/0, host), 7u);

  // ... one ulp under does not.
  host.attempts = {laggard(7, 1, 30.0 - 1e-9, 100.0)};
  EXPECT_FALSE(policy->pick_speculative(0, host).has_value());
}

TEST(BaselinePolicy, AutoOverdueIsOneGamma) {
  const SchedulerPtr policy = make_scheduler(SchedulerConfig{}, 12.0);
  EXPECT_DOUBLE_EQ(policy->overdue_threshold(), 12.0);
  EXPECT_EQ(policy->name(), "baseline");
  EXPECT_EQ(policy->extra_initial_launches(), 0);
  EXPECT_TRUE(policy->speculation_enabled());
}

TEST(BaselinePolicy, SaturatedAttemptCapBlocksDuplication) {
  SchedulerConfig config;
  config.speculation_overdue = 5.0;
  config.max_concurrent_attempts = 2;
  const SchedulerPtr policy = make_scheduler(config, 12.0);
  FakeHost host;
  host.attempts = {laggard(3, 1, 50.0, 100.0)};

  host.attempts_per_task = 2;  // at the cap: no further duplicates
  EXPECT_FALSE(policy->pick_speculative(0, host).has_value());

  host.attempts_per_task = 1;  // below it: the same laggard qualifies
  EXPECT_EQ(policy->pick_speculative(0, host), 3u);

  // A wider cap re-admits the saturated task.
  config.max_concurrent_attempts = 3;
  const SchedulerPtr wider = make_scheduler(config, 12.0);
  host.attempts_per_task = 2;
  EXPECT_EQ(wider->pick_speculative(0, host), 3u);
}

TEST(BaselinePolicy, SlackGateAndOwnNodeExclusion) {
  SchedulerConfig config;
  config.speculation_overdue = 5.0;
  const SchedulerPtr policy = make_scheduler(config, 12.0);
  FakeHost host;
  host.attempts = {laggard(4, 1, 50.0, 100.0)};

  // Unprofitable: remaining <= slack * fresh cost.
  host.fresh_cost = 100.0;
  EXPECT_FALSE(policy->pick_speculative(0, host).has_value());

  // A node never duplicates an attempt it is itself running.
  host.fresh_cost = 10.0;
  EXPECT_FALSE(policy->pick_speculative(/*node=*/1, host).has_value());
}

TEST(CalibratedPolicy, QuoteOverrunTriggersWithoutSlip) {
  SchedulerConfig config;
  config.kind = SchedulerKind::kCalibrated;
  config.calibrated_margin = 1.5;
  config.node_quotes = {20.0, 10.0};
  const SchedulerPtr policy = make_scheduler(config, 12.0);
  FakeHost host;

  // No projection slip at all, but the task has been running since
  // t = 0 on node 1 (quote 10): overdue once now > 1.5 * 10.
  AttemptView a = laggard(9, 1, /*slip=*/0.0, 100.0);
  a.first_start = 0.0;
  host.attempts = {a};
  host.now_value = 15.0;
  EXPECT_FALSE(policy->pick_speculative(0, host).has_value());
  host.now_value = 15.0 + 1e-9;
  EXPECT_EQ(policy->pick_speculative(0, host), 9u);

  // A higher cluster calibration ratio widens the margin: at ratio 2
  // the same attempt is within quote until t = 30.
  host.calibration_ratio = 2.0;
  host.now_value = 29.0;
  EXPECT_FALSE(policy->pick_speculative(0, host).has_value());
  host.now_value = 31.0;
  EXPECT_EQ(policy->pick_speculative(0, host), 9u);
}

TEST(CalibratedPolicy, NoQuoteFallsBackToSlipRule) {
  SchedulerConfig config;
  config.kind = SchedulerKind::kCalibrated;
  config.speculation_overdue = 30.0;
  config.node_quotes = {};  // nothing learned
  const SchedulerPtr policy = make_scheduler(config, 12.0);
  FakeHost host;
  host.now_value = 1e6;  // irrelevant without a quote

  host.attempts = {laggard(2, 1, /*slip=*/30.0, 100.0)};
  EXPECT_EQ(policy->pick_speculative(0, host), 2u);
  host.attempts = {laggard(2, 1, 29.0, 100.0)};
  EXPECT_FALSE(policy->pick_speculative(0, host).has_value());
}

TEST(RedundantPolicy, ShapeMatchesConfig) {
  SchedulerConfig config;
  config.kind = SchedulerKind::kRedundant;
  config.redundancy = 3;
  const SchedulerPtr policy = make_scheduler(config, 12.0);
  EXPECT_EQ(policy->name(), "redundant");
  EXPECT_EQ(policy->extra_initial_launches(), 2);
  EXPECT_EQ(policy->max_attempts(), 3);  // max(cap 2, redundancy 3)
  EXPECT_FALSE(policy->speculation_enabled());
  FakeHost host;
  host.attempts = {laggard(1, 1, 1e6, 1e6)};
  EXPECT_FALSE(policy->pick_speculative(0, host).has_value());
}

// ---------------------------------------------------------------------
// Simulation-level behavior
// ---------------------------------------------------------------------

Cluster bare_cluster(std::size_t n, double bps = mbps(8)) {
  Cluster cluster;
  cluster.nodes.resize(n);
  for (NodeSpec& node : cluster.nodes) {
    node.uplink_bps = bps;
    node.downlink_bps = bps;
  }
  return cluster;
}

hdfs::FileId plant_file(hdfs::NameNode& nn,
                        const std::vector<std::vector<cluster::NodeIndex>>&
                            replicas) {
  common::Rng rng(1);
  const hdfs::FileId id = nn.create_file(
      "f", static_cast<std::uint32_t>(replicas.size()),
      static_cast<int>(replicas[0].size()),
      placement::make_random_policy(nn.node_count()), rng);
  for (std::size_t b = 0; b < replicas.size(); ++b) {
    const hdfs::BlockId block = nn.file(id).blocks[b];
    const auto old_replicas = nn.block(block).replicas;
    for (const auto node : old_replicas) nn.remove_replica(block, node);
    for (const auto node : replicas[b]) nn.add_replica(block, node);
  }
  return id;
}

TEST(SchedulerSimulation, SpeculativeCancellationRacesCompletion) {
  // Node 1 starts a remote fetch from node 0, which then dies for a long
  // time; an idle node's speculative origin rescue wins and the stalled
  // duplicate is cancelled — the race between a speculative win and the
  // racing original must keep the attempt ledger balanced.
  Cluster cluster = bare_cluster(3);
  cluster.nodes[0].mode = AvailabilityMode::kReplay;
  cluster.nodes[0].down_intervals = {{2.0, 400.0}};
  hdfs::NameNode nn(3);
  const auto file = plant_file(nn, {{0}, {0}});
  SimJobConfig config;
  config.gamma = 1.0;
  config.randomize_replay_offset = false;
  config.transfer_stall_timeout = 1e4;  // never aborts on its own
  config.origin_fetch_delay = 20.0;
  config.replay_horizon = 1e4;
  MapReduceSimulation sim(cluster, nn, file, config);
  const JobResult r = sim.run();
  EXPECT_GE(r.speculative_launches, 1u);
  EXPECT_GE(r.speculative_wins, 1u);
  EXPECT_LE(r.speculative_wins, r.speculative_launches);
  EXPECT_EQ(r.redundant_launches, 0u);  // baseline never pre-duplicates
  // Ledger: every start is a win, a failure, or a kill; the losing
  // sibling of each win was killed as redundant.
  EXPECT_EQ(r.attempts_started,
            r.tasks + r.attempts_failed + r.attempts_killed);
  EXPECT_EQ(r.local_wins + r.remote_wins + r.origin_wins, r.tasks);
}

TEST(SchedulerSimulation, RedundantLaunchesAndCancelsDuplicates) {
  // Replicated blocks on a healthy cluster: every fresh launch gets a
  // duplicate, first finish cancels the loser.
  const Cluster cluster = bare_cluster(4);
  hdfs::NameNode nn(4);
  const auto file =
      plant_file(nn, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  SimJobConfig config;
  config.gamma = 10.0;
  config.scheduler.kind = SchedulerKind::kRedundant;
  config.scheduler.redundancy = 2;
  MapReduceSimulation sim(cluster, nn, file, config);
  const JobResult r = sim.run();
  EXPECT_EQ(r.tasks, 4u);
  EXPECT_GE(r.redundant_launches, 1u);
  EXPECT_GE(r.attempts_killed, r.redundant_launches);
  EXPECT_EQ(r.attempts_started,
            r.tasks + r.attempts_failed + r.attempts_killed);
  EXPECT_EQ(r.local_wins + r.remote_wins + r.origin_wins, r.tasks);
}

TEST(SchedulerSimulation, RedundancyDegradesWhenKExceedsLiveNodes) {
  // k = 3 duplicates requested on a 2-node cluster: each task can hold
  // at most one duplicate; the run must complete without inventing
  // phantom attempts.
  const Cluster cluster = bare_cluster(2);
  hdfs::NameNode nn(2);
  const auto file = plant_file(nn, {{0}, {1}});
  SimJobConfig config;
  config.gamma = 10.0;
  config.scheduler.kind = SchedulerKind::kRedundant;
  config.scheduler.redundancy = 3;
  MapReduceSimulation sim(cluster, nn, file, config);
  const JobResult r = sim.run();
  EXPECT_EQ(r.tasks, 2u);
  EXPECT_EQ(r.local_wins + r.remote_wins + r.origin_wins, r.tasks);
  // At most one duplicate per task fits on the spare node.
  EXPECT_LE(r.redundant_launches, r.tasks);
  EXPECT_EQ(r.attempts_started,
            r.tasks + r.attempts_failed + r.attempts_killed);
}

TEST(SchedulerSimulation, BaselineKindMatchesLegacyFlatKnobs) {
  // The merged default config must reproduce the historical scheduler
  // decision-for-decision: same elapsed, same attempt counts.
  cluster::EmulationConfig emu;
  emu.node_count = 32;
  emu.interrupted_ratio = 0.5;
  const Cluster cluster = cluster::emulated_cluster(emu);
  auto run_once = [&](bool via_scheduler_struct) {
    hdfs::NameNode nn(cluster.size());
    common::Rng rng(21);
    const auto file = nn.create_file(
        "f", 320, 1, placement::make_random_policy(cluster.size()), rng);
    SimJobConfig config;
    config.gamma = 6.0;
    config.seed = 77;
    if (via_scheduler_struct) {
      config.scheduler.speculation_slack = 1.2;  // explicit defaults
      config.scheduler.max_concurrent_attempts = 2;
    } else {
      config.speculation_slack = 1.2;
      config.max_concurrent_attempts = 2;
    }
    MapReduceSimulation sim(cluster, nn, file, config);
    return sim.run();
  };
  const JobResult a = run_once(true);
  const JobResult b = run_once(false);
  EXPECT_DOUBLE_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.attempts_started, b.attempts_started);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.speculative_launches, b.speculative_launches);
}

TEST(SchedulerFactory, RejectsInvalidConfig) {
  SchedulerConfig config;
  config.redundancy = 0;
  EXPECT_THROW(make_scheduler(config, 12.0), ConfigError);
  config = SchedulerConfig{};
  config.calibrated_margin = 0.0;
  EXPECT_THROW(make_scheduler(config, 12.0), ConfigError);
  config = SchedulerConfig{};
  config.node_quotes = {10.0, -1.0};
  EXPECT_THROW(make_scheduler(config, 12.0), ConfigError);
  // +inf quotes are legal: they mark unusable nodes.
  config = SchedulerConfig{};
  config.node_quotes = {10.0, std::numeric_limits<double>::infinity()};
  EXPECT_NO_THROW(make_scheduler(config, 12.0));
}

}  // namespace
