// Migration driver: data-before-metadata discipline over the bounded
// network — commits only after the transfer lands, retries on source
// death, redraws on destination death, budget-gated FIFO starts — plus
// the closed drift→rebalance loop at the simulation and job-stream
// levels.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <optional>
#include <vector>

#include "cluster/network.h"
#include "cluster/topology.h"
#include "common/rng.h"
#include "core/job_stream.h"
#include "hdfs/namenode.h"
#include "obs/trace.h"
#include "placement/random_policy.h"
#include "sim/event_queue.h"
#include "sim/migration.h"
#include "trace/generator.h"

namespace {

using namespace adapt;
using adapt::common::Rng;

constexpr std::uint64_t kBlockBytes = 8ull * 1024 * 1024;  // 8 s @ 1 MiB/s

struct DriverHarness {
  sim::EventQueue queue;
  hdfs::NameNode nn;
  cluster::Network net;
  std::vector<bool> up;
  std::optional<sim::MigrationDriver> driver;

  explicit DriverHarness(std::size_t nodes,
                         sim::MigrationDriver::Config config = {})
      : nn(nodes), net(make_net(nodes)), up(nodes, true) {
    driver.emplace(queue, nn, net, kBlockBytes, config, Rng(99),
                   [this](cluster::NodeIndex n) { return up[n]; });
    driver->set_policy(placement::make_random_policy(nodes));
  }

  static cluster::Network make_net(std::size_t nodes) {
    cluster::Network::Config config;
    config.uplink_bps.assign(nodes, 1024.0 * 1024.0 * 8);  // 1 MiB/s
    config.downlink_bps.assign(nodes, 1024.0 * 1024.0 * 8);
    return cluster::Network(config);
  }

  // One single-replica block per entry of `holders`.
  std::vector<hdfs::BlockId> load(const std::vector<cluster::NodeIndex>&
                                      holders) {
    // Place deterministically by adding replicas to an empty file.
    Rng rng(7);
    const hdfs::FileId id = nn.create_file(
        "f", static_cast<std::uint32_t>(holders.size()), 1,
        placement::make_random_policy(nn.node_count()), rng);
    std::vector<hdfs::BlockId> blocks = nn.file(id).blocks;
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      const cluster::NodeIndex current = nn.block(blocks[i]).replicas[0];
      if (current != holders[i]) {
        nn.add_replica(blocks[i], holders[i]);
        nn.remove_replica(blocks[i], current);
      }
    }
    return blocks;
  }

  void submit(hdfs::BlockId block, cluster::NodeIndex from,
              cluster::NodeIndex to) {
    nn.begin_move(block, from, to);
    driver->submit({block, from, to});
  }

  void down_at(common::Seconds t, cluster::NodeIndex node) {
    queue.schedule(t, [this, node] {
      up[node] = false;
      driver->on_node_down(node);
    });
  }

  void up_at(common::Seconds t, cluster::NodeIndex node) {
    queue.schedule(t, [this, node] {
      up[node] = true;
      driver->on_node_up(node);
    });
  }

  void run() {
    queue.run_until([] { return false; });
  }
};

TEST(MigrationDriver, CommitsOnlyAfterTransferCompletes) {
  DriverHarness h(4);
  const auto blocks = h.load({0});
  h.submit(blocks[0], 0, 2);
  // Mid-flight probe: the destination holds reserved space but NO
  // readable replica until the bytes have landed (t = 8 s here).
  h.queue.schedule(4.0, [&] {
    EXPECT_EQ(h.nn.block(blocks[0]).replicas,
              std::vector<cluster::NodeIndex>{0});
    EXPECT_TRUE(h.nn.has_pending_move(blocks[0], 0, 2));
    EXPECT_EQ(h.nn.datanodes().stored(2), 1u);
  });
  h.run();
  EXPECT_EQ(h.nn.block(blocks[0]).replicas,
            std::vector<cluster::NodeIndex>{2});
  EXPECT_TRUE(h.nn.pending_moves().empty());
  EXPECT_EQ(h.driver->stats().committed, 1u);
  EXPECT_EQ(h.driver->stats().bytes_moved, kBlockBytes);
  EXPECT_TRUE(h.driver->idle());
}

TEST(MigrationDriver, SourceDeathMidTransferRetriesFromAnotherHolder) {
  DriverHarness h(4);
  const auto blocks = h.load({0});
  h.nn.add_replica(blocks[0], 1);  // second holder to retry from
  h.submit(blocks[0], 0, 3);
  h.down_at(2.0, 0);  // kill the byte source mid-flight
  h.run();
  // The move still committed — re-sourced from holder 1 — and the
  // vacated holder's replica is gone.
  const std::vector<cluster::NodeIndex> expect = {1, 3};
  EXPECT_EQ(h.nn.block(blocks[0]).replicas, expect);
  EXPECT_EQ(h.driver->stats().committed, 1u);
  EXPECT_GE(h.driver->stats().retries, 1u);
  EXPECT_EQ(h.driver->stats().giveups, 0u);
}

TEST(MigrationDriver, DestinationDeathMidTransferRedrawsTarget) {
  DriverHarness h(4);
  const auto blocks = h.load({0});
  h.submit(blocks[0], 0, 2);
  h.down_at(2.0, 2);  // destination departs; node 2 never returns
  h.run();
  // The driver redrew a live destination (1 or 3) and committed there.
  ASSERT_EQ(h.nn.block(blocks[0]).replicas.size(), 1u);
  const cluster::NodeIndex landed = h.nn.block(blocks[0]).replicas[0];
  EXPECT_TRUE(landed == 1u || landed == 3u);
  EXPECT_EQ(h.nn.datanodes().stored(2), 0u);  // old reservation released
  EXPECT_GE(h.driver->stats().redraws, 1u);
  EXPECT_EQ(h.driver->stats().committed, 1u);
}

TEST(MigrationDriver, BudgetGatesStartsFifoInSubmissionOrder) {
  sim::MigrationDriver::Config config;
  config.max_concurrent = 3;                  // concurrency allows all
  config.budget_bytes_per_s = kBlockBytes;    // ...budget admits 1/s
  DriverHarness h(6, config);
  obs::EventTracer tracer(256);
  h.driver->set_tracer(&tracer);
  const auto blocks = h.load({0, 1, 2});
  h.submit(blocks[0], 0, 3);
  h.submit(blocks[1], 1, 4);
  h.submit(blocks[2], 2, 5);
  h.run();
  EXPECT_EQ(h.driver->stats().committed, 3u);
  // Starts spaced by block_bytes / budget = 1 s, strictly in
  // submission order.
  std::vector<obs::TraceRecord> starts;
  for (const obs::TraceRecord& r : tracer.take_records()) {
    if (r.type == obs::EventType::kMigrationStart) starts.push_back(r);
  }
  ASSERT_EQ(starts.size(), 3u);
  for (std::size_t i = 0; i < starts.size(); ++i) {
    EXPECT_EQ(starts[i].task, blocks[i]);
    EXPECT_DOUBLE_EQ(starts[i].v0, static_cast<double>(i));  // grant start
  }
}

TEST(MigrationDriver, RetryBudgetExhaustionReleasesReservation) {
  sim::MigrationDriver::Config config;
  config.max_retries = 0;  // first in-flight failure is terminal
  DriverHarness h(4, config);
  const auto blocks = h.load({0});
  h.nn.add_replica(blocks[0], 1);
  bool aborted = false;
  h.driver->set_on_aborted(
      [&](hdfs::BlockId, cluster::NodeIndex, cluster::NodeIndex) {
        aborted = true;
      });
  h.submit(blocks[0], 0, 2);
  h.down_at(2.0, 2);
  h.run();
  EXPECT_EQ(h.driver->stats().giveups, 1u);
  EXPECT_EQ(h.driver->stats().committed, 0u);
  EXPECT_TRUE(aborted);
  // Giving up is safe: the source replicas are intact and nothing is
  // pending or reserved anymore.
  const std::vector<cluster::NodeIndex> expect = {0, 1};
  EXPECT_EQ(h.nn.block(blocks[0]).replicas, expect);
  EXPECT_TRUE(h.nn.pending_moves().empty());
  EXPECT_EQ(h.nn.datanodes().stored(2), 0u);
}

TEST(MigrationDriver, MootMoveIsDroppedWhenSourceReplicaVanished) {
  DriverHarness h(4);
  const auto blocks = h.load({0});
  h.nn.add_replica(blocks[0], 1);
  h.nn.begin_move(blocks[0], 0, 2);
  // The replica leaves node 0 before the driver ever starts the move.
  h.nn.remove_replica(blocks[0], 0);
  h.driver->submit({blocks[0], 0, 2});
  h.run();
  EXPECT_EQ(h.driver->stats().cancelled, 1u);
  EXPECT_EQ(h.driver->stats().started, 0u);
  EXPECT_TRUE(h.nn.pending_moves().empty());
  EXPECT_EQ(h.nn.datanodes().stored(2), 0u);
}

TEST(MigrationDriver, CancelAllReleasesQueuedAndInFlightReservations) {
  sim::MigrationDriver::Config config;
  config.max_concurrent = 1;
  DriverHarness h(6, config);
  const auto blocks = h.load({0, 1, 2});
  h.submit(blocks[0], 0, 3);
  h.submit(blocks[1], 1, 4);
  h.submit(blocks[2], 2, 5);
  h.queue.schedule(1.0, [&] { h.driver->cancel_all(); });
  h.run();
  EXPECT_EQ(h.driver->stats().cancelled, 3u);
  EXPECT_EQ(h.driver->stats().committed, 0u);
  EXPECT_TRUE(h.nn.pending_moves().empty());
  EXPECT_EQ(h.nn.datanodes().stored(3), 0u);
  EXPECT_EQ(h.nn.datanodes().stored(4), 0u);
  EXPECT_EQ(h.nn.datanodes().stored(5), 0u);
  // Replicas untouched: cancelling never loses data.
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    EXPECT_EQ(h.nn.block(blocks[i]).replicas.size(), 1u);
  }
}

// ---------------------------------------------------------------------
// Closed loop at the job-stream level
// ---------------------------------------------------------------------

std::vector<avail::InterruptionParams> seti_params(std::size_t nodes,
                                                   std::uint64_t seed) {
  trace::GeneratorConfig config;
  config.node_count = nodes;
  config.horizon = 7.0 * 24 * 3600;
  config.seed = seed;
  const trace::GeneratedTrace gen = trace::generate_seti_like_trace(config);
  std::vector<avail::InterruptionParams> params;
  for (const trace::HostTruth& host : gen.truth) {
    params.push_back(host.params());
  }
  return params;
}

core::JobStreamConfig stream_config(bool loop) {
  core::JobStreamConfig config;
  config.policy = core::PolicyKind::kAdapt;
  config.replication = 2;
  config.blocks = 48;
  config.jobs = 2;
  config.shift_at_job = 0;  // whole stream runs under the shifted regime
  config.seed = 33;
  // Tasks long enough that a 64 MiB migration can land inside the job;
  // shorter jobs tear down (cancel_all) before any transfer completes.
  config.job.gamma = 60.0;
  config.job.churn.enabled = true;
  config.job.rebalance.enabled = loop;
  config.job.rebalance.hysteresis = 1.2;
  config.job.rebalance.cooldown = 30.0;
  config.obs.sample_dt = 15.0;
  return config;
}

struct StreamWorld {
  cluster::Cluster initial;
  cluster::Cluster shifted;

  StreamWorld() {
    const std::size_t nodes = 24;
    const auto initial_params = seti_params(nodes, 3);
    auto shifted_params = initial_params;
    // The *reliable* half turns flaky — exactly where ADAPT put the
    // data, so the stale placement degrades relative to the median.
    std::vector<std::size_t> order(initial_params.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                const double ua = initial_params[a].utilization();
                const double ub = initial_params[b].utilization();
                return ua != ub ? ua < ub : a < b;
              });
    for (std::size_t i = 0; i < order.size() / 2; ++i) {
      avail::InterruptionParams& p = shifted_params[order[i]];
      p.lambda *= 8.0;
      p.mu *= 4.0;
      if (!p.stable()) p.mu = 0.9 / p.lambda;
    }
    cluster::TraceClusterConfig tc;
    initial = cluster::model_cluster(initial_params, tc);
    shifted = cluster::model_cluster(shifted_params, tc);
  }
};

TEST(JobStream, RegimeShiftTripsTheLoopAndMigrates) {
  StreamWorld world;
  const core::JobStreamResult result =
      core::run_job_stream(world.initial, world.shifted, stream_config(true));
  EXPECT_EQ(result.jobs.size(), 2u);
  EXPECT_GT(result.rebalance_triggers, 0u);
  EXPECT_GT(result.migrations_committed, 0u);
  EXPECT_GT(result.makespan, 0.0);
}

TEST(JobStream, DeterministicAcrossRepeats) {
  StreamWorld world;
  const core::JobStreamResult a =
      core::run_job_stream(world.initial, world.shifted, stream_config(true));
  const core::JobStreamResult b =
      core::run_job_stream(world.initial, world.shifted, stream_config(true));
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.rebalance_triggers, b.rebalance_triggers);
  EXPECT_EQ(a.migrations_committed, b.migrations_committed);
  EXPECT_EQ(a.migration_bytes, b.migration_bytes);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].elapsed, b.jobs[i].elapsed);
  }
}

TEST(JobStream, LoopOffRunsCleanWithZeroMigrationFootprint) {
  StreamWorld world;
  core::JobStreamConfig config = stream_config(false);
  config.obs.trace = true;
  config.obs.metrics = true;
  const core::JobStreamResult result =
      core::run_job_stream(world.initial, world.shifted, config);
  EXPECT_EQ(result.rebalance_triggers, 0u);
  EXPECT_EQ(result.migrations_committed, 0u);
  EXPECT_EQ(result.migration_bytes, 0u);
  // Byte-compat contract: with the loop off, no migration metric keys
  // and no migration/rebalance trace events may appear.
  for (const auto& counter : result.obs.metrics.counters) {
    EXPECT_TRUE(counter.first.rfind("migration.", 0) != 0 &&
                counter.first != "sim.rebalance_triggers")
        << counter.first;
  }
  for (const obs::TraceRecord& r : result.obs.records) {
    EXPECT_NE(r.type, obs::EventType::kRebalanceTrigger);
    EXPECT_NE(r.type, obs::EventType::kMigrationStart);
    EXPECT_NE(r.type, obs::EventType::kMigrationCommit);
    EXPECT_NE(r.type, obs::EventType::kMigrationRetry);
    EXPECT_NE(r.type, obs::EventType::kMigrationGiveup);
  }
}

}  // namespace
