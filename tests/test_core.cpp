// The public facade: policies, experiments, observation-driven
// prediction, repeated runs.
#include <gtest/gtest.h>

#include "core/adapt.h"
#include "workload/terasort.h"

namespace {

using namespace adapt;
using namespace adapt::core;

TEST(MakePolicy, AllKinds) {
  const std::vector<avail::InterruptionParams> params = {
      {0.0, 0.0}, {0.1, 4.0}, {0.05, 8.0}};
  EXPECT_EQ(make_policy(PolicyKind::kRandom, params, 8.0, 60)->name(),
            "random");
  EXPECT_EQ(make_policy(PolicyKind::kAdapt, params, 8.0, 60)->name(),
            "adapt");
  EXPECT_EQ(make_policy(PolicyKind::kNaive, params, 8.0, 60)->name(),
            "naive");
  EXPECT_EQ(to_string(PolicyKind::kAdapt), "adapt");
}

TEST(MakePolicy, AdaptFavorsDedicatedNodes) {
  const std::vector<avail::InterruptionParams> params = {
      {0.0, 0.0}, {0.1, 8.0}};
  const auto policy = make_policy(PolicyKind::kAdapt, params, 8.0, 100);
  const auto shares = policy->target_shares();
  EXPECT_GT(shares[0], shares[1] * 2.0);
}

TEST(ObserveCluster, EstimatesApproachTruth) {
  cluster::EmulationConfig emu;
  emu.node_count = 8;
  emu.interrupted_ratio = 1.0;
  const cluster::Cluster cl = cluster::emulated_cluster(emu);
  // Long window so the estimator converges; heartbeat latency small.
  cluster::HeartbeatCollector::Config hb;
  hb.interval = 0.5;
  hb.miss_threshold = 1;
  const auto estimates = observe_cluster(cl, 20000.0, 3, hb);
  const auto truth = cl.params();
  ASSERT_EQ(estimates.size(), truth.size());
  for (std::size_t i = 0; i < truth.size(); ++i) {
    EXPECT_NEAR(estimates[i].lambda, truth[i].lambda,
                0.3 * truth[i].lambda)
        << "node " << i;
    EXPECT_NEAR(estimates[i].mu, truth[i].mu, 0.3 * truth[i].mu)
        << "node " << i;
  }
}

TEST(RunExperiment, ProducesConsistentResult) {
  cluster::EmulationConfig emu;
  emu.node_count = 16;
  const cluster::Cluster cl = cluster::emulated_cluster(emu);
  ExperimentConfig config;
  config.blocks = 160;
  config.replication = 2;
  config.job.gamma = 6.0;
  config.seed = 21;
  const ExperimentResult result = run_experiment(cl, config);
  EXPECT_EQ(result.policy_name, "adapt");
  EXPECT_EQ(result.job.tasks, 160u);
  EXPECT_EQ(result.load.blocks_moved, 320u);
  std::uint64_t replicas = 0;
  for (const auto c : result.distribution) replicas += c;
  EXPECT_EQ(replicas, 320u);
  EXPECT_GE(result.placement_skew, 1.0);
  // The Section IV-C cap bounds skew at (k+1)/k of the mean... in block
  // terms: max <= ceil(m(k+1)/n) = 30+ for m=160,k=2,n=16 -> skew <= 1.5+.
  EXPECT_LE(result.placement_skew, 1.6);
}

TEST(RunExperiment, EstimatedParamsPipelineRuns) {
  cluster::EmulationConfig emu;
  emu.node_count = 16;
  const cluster::Cluster cl = cluster::emulated_cluster(emu);
  ExperimentConfig config;
  config.blocks = 160;
  config.job.gamma = 6.0;
  config.use_estimated_params = true;
  config.observation_window = 300.0;
  config.seed = 22;
  const ExperimentResult result = run_experiment(cl, config);
  EXPECT_EQ(result.job.local_wins + result.job.remote_wins +
                result.job.origin_wins,
            result.job.tasks);
}

TEST(RunExperiment, Validation) {
  const cluster::Cluster cl =
      cluster::emulated_cluster(cluster::EmulationConfig{});
  ExperimentConfig config;  // blocks unset
  EXPECT_THROW(run_experiment(cl, config), std::invalid_argument);
}

TEST(RunRepeated, AveragesAcrossSeeds) {
  cluster::EmulationConfig emu;
  emu.node_count = 16;
  const cluster::Cluster cl = cluster::emulated_cluster(emu);
  ExperimentConfig config;
  config.blocks = 160;
  config.job.gamma = 6.0;
  config.seed = 23;
  const RepeatedResult result = run_repeated(cl, config, 4);
  EXPECT_EQ(result.elapsed.count, 4u);
  EXPECT_GT(result.elapsed.mean, 0.0);
  EXPECT_GT(result.locality.mean, 0.5);
  EXPECT_NEAR(result.total_ratio,
              result.rework_ratio + result.recovery_ratio +
                  result.migration_ratio + result.misc_ratio,
              1e-9);
  EXPECT_THROW(run_repeated(cl, config, 0), std::invalid_argument);
}

TEST(RunExperiment, ReducePhaseExtension) {
  cluster::EmulationConfig emu;
  emu.node_count = 16;
  const cluster::Cluster cl = cluster::emulated_cluster(emu);
  ExperimentConfig config;
  config.blocks = 160;
  config.job.gamma = 6.0;
  config.seed = 31;
  config.run_reduce = true;
  config.reduce.output_ratio = 0.25;
  config.reduce.reducers = 16;
  const ExperimentResult result = run_experiment(cl, config);
  EXPECT_GT(result.reduce.elapsed, 0.0);
  EXPECT_EQ(result.reduce.reducers, 16u);
  EXPECT_GT(result.reduce.shuffle_bytes, 0u);

  // Availability-aware reducer placement also runs end to end.
  ExperimentConfig aware = config;
  aware.reduce_availability_aware = true;
  const ExperimentResult aware_result = run_experiment(cl, aware);
  EXPECT_GT(aware_result.reduce.elapsed, 0.0);
}

TEST(SteadyStateStart, FiltersPlacementToUpNodes) {
  // Model cluster with an always-down node (rho >> 1).
  std::vector<avail::InterruptionParams> params(8);
  params[3] = {1.0, 50.0};  // rho = 50: starts down, effectively forever
  const cluster::Cluster cl =
      cluster::model_cluster(params, cluster::TraceClusterConfig{});
  ExperimentConfig config;
  config.blocks = 80;
  config.job.gamma = 6.0;
  config.policy = PolicyKind::kRandom;
  config.steady_state_start = true;
  config.seed = 24;
  const ExperimentResult result = run_experiment(cl, config);
  EXPECT_EQ(result.distribution[3], 0u);
}

}  // namespace
