// The parallel experiment runner: seed derivation, thread pool
// mechanics, and the determinism contract (same base seed => bit-equal
// aggregates for any thread count), plus the JSON report emitter.
#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <limits>
#include <memory>
#include <set>
#include <stdexcept>

#include "cluster/topology.h"
#include "runner/report.h"
#include "runner/runner.h"
#include "runner/thread_pool.h"
#include "workload/terasort.h"

namespace {

using namespace adapt;

cluster::Cluster small_cluster() {
  cluster::EmulationConfig emu;
  emu.node_count = 16;
  return cluster::emulated_cluster(emu);
}

core::ExperimentConfig small_config() {
  core::ExperimentConfig config;
  config.blocks = 96;
  config.replication = 2;
  config.policy = core::PolicyKind::kAdapt;
  config.job.gamma = workload::emulation_workload().gamma();
  config.seed = 42;
  return config;
}

void expect_bit_equal(const core::RepeatedResult& a,
                      const core::RepeatedResult& b) {
  // EXPECT_EQ on doubles is exact comparison: the contract is
  // bit-identical, not approximately equal.
  EXPECT_EQ(a.elapsed.mean, b.elapsed.mean);
  EXPECT_EQ(a.elapsed.stddev, b.elapsed.stddev);
  EXPECT_EQ(a.elapsed.p95, b.elapsed.p95);
  EXPECT_EQ(a.elapsed.ci95_half_width, b.elapsed.ci95_half_width);
  EXPECT_EQ(a.elapsed.count, b.elapsed.count);
  EXPECT_EQ(a.locality.mean, b.locality.mean);
  EXPECT_EQ(a.rework_ratio, b.rework_ratio);
  EXPECT_EQ(a.recovery_ratio, b.recovery_ratio);
  EXPECT_EQ(a.migration_ratio, b.migration_ratio);
  EXPECT_EQ(a.misc_ratio, b.misc_ratio);
  EXPECT_EQ(a.total_ratio, b.total_ratio);
}

TEST(DeriveRunSeed, DistinctAcrossRunsAndSeeds) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t base : {0ull, 1ull, 42ull, 0xffffffffffffffffull}) {
    for (std::uint64_t run = 0; run < 64; ++run) {
      seen.insert(runner::derive_run_seed(base, run));
    }
  }
  EXPECT_EQ(seen.size(), 4u * 64u);
  // Pure function of (base, index).
  EXPECT_EQ(runner::derive_run_seed(7, 3), runner::derive_run_seed(7, 3));
}

TEST(ThreadPool, RunsEveryJobExactlyOnce) {
  runner::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> jobs;
  for (int i = 0; i < 100; ++i) {
    jobs.push_back([&counter] { counter.fetch_add(1); });
  }
  pool.run_all(jobs);
  EXPECT_EQ(counter.load(), 100);
  // The pool is reusable after a batch drains.
  pool.run_all(jobs);
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, PropagatesJobExceptions) {
  runner::ThreadPool pool(2);
  std::vector<std::function<void()>> jobs;
  jobs.push_back([] {});
  jobs.push_back([] { throw std::runtime_error("job failed"); });
  EXPECT_THROW(pool.run_all(jobs), std::runtime_error);
  // A failed batch must not poison the pool.
  std::atomic<int> counter{0};
  pool.run_all({[&counter] { counter.fetch_add(1); }});
  EXPECT_EQ(counter.load(), 1);
}

TEST(ExperimentRunner, ZeroThreadsMeansHardwareConcurrency) {
  runner::ExperimentRunner exec(0);
  EXPECT_GE(exec.threads(), 1u);
}

TEST(ExperimentRunner, AggregateIsBitIdenticalAcrossThreadCounts) {
  const cluster::Cluster cl = small_cluster();
  const core::ExperimentConfig config = small_config();
  const int runs = 6;

  runner::ExperimentRunner serial(1);
  const core::RepeatedResult reference =
      serial.run_replications(cl, config, runs);
  EXPECT_EQ(reference.elapsed.count, static_cast<std::size_t>(runs));
  EXPECT_GT(reference.elapsed.mean, 0.0);

  for (const std::size_t threads : {2u, 8u}) {
    runner::ExperimentRunner exec(threads);
    const core::RepeatedResult r = exec.run_replications(cl, config, runs);
    expect_bit_equal(reference, r);
  }
}

TEST(ExperimentRunner, ReplicationsMatchManualSeedDerivation) {
  const cluster::Cluster cl = small_cluster();
  core::ExperimentConfig config = small_config();
  const int runs = 3;

  std::vector<core::ExperimentResult> manual;
  for (int r = 0; r < runs; ++r) {
    core::ExperimentConfig per_run = config;
    per_run.seed =
        runner::derive_run_seed(config.seed, static_cast<std::uint64_t>(r));
    per_run.job.seed = per_run.seed;
    manual.push_back(core::run_experiment(cl, per_run));
  }
  const core::RepeatedResult expected = runner::merge_results(manual);

  runner::ExperimentRunner exec(2);
  expect_bit_equal(expected, exec.run_replications(cl, config, runs));
}

TEST(ExperimentRunner, SweepMatchesPerCellReplications) {
  const auto cl = std::make_shared<const cluster::Cluster>(small_cluster());
  core::ExperimentConfig config = small_config();

  std::vector<runner::ExperimentRunner::SweepCell> cells;
  for (const auto policy :
       {core::PolicyKind::kRandom, core::PolicyKind::kAdapt}) {
    config.policy = policy;
    cells.push_back({cl, config, 2});
  }

  runner::ExperimentRunner exec(4);
  const auto sweep = exec.run_sweep(cells);
  ASSERT_EQ(sweep.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto expected =
        exec.run_replications(*cl, cells[i].config, cells[i].runs);
    expect_bit_equal(expected, sweep[i]);
  }
}

TEST(ExperimentRunner, BorrowSharesWithoutOwnership) {
  const cluster::Cluster cl = small_cluster();
  const auto borrowed = runner::borrow(cl);
  EXPECT_EQ(borrowed.get(), &cl);
}

TEST(Report, JsonIsDeterministicAndWellFormed) {
  const cluster::Cluster cl = small_cluster();
  runner::ExperimentRunner exec(2);
  const auto r = exec.run_replications(cl, small_config(), 2);

  const auto build = [&r] {
    runner::Report report("unit", 42, 2);
    report.set_config("nodes", 16.0);
    report.add_result("sweep A", "point \"1\"", "adapt r2", r);
    return report.to_json();
  };
  const std::string json = build();
  EXPECT_EQ(json, build());

  EXPECT_NE(json.find("\"bench\": \"unit\""), std::string::npos);
  EXPECT_NE(json.find("\"seed\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"nodes\": 16"), std::string::npos);
  // Quotes in labels are escaped.
  EXPECT_NE(json.find("point \\\"1\\\""), std::string::npos);
  EXPECT_NE(json.find("\"elapsed_mean\""), std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);
}

TEST(Report, NonFiniteMetricsSerializeAsNull) {
  core::RepeatedResult r;
  r.elapsed.mean = std::numeric_limits<double>::quiet_NaN();
  runner::Report report("unit", 1, 1);
  report.add_result("s", "p", "series", r);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"elapsed_mean\": null"), std::string::npos);
}

}  // namespace
