#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/stats.h"

namespace {

using adapt::common::percentile;
using adapt::common::percentile_sorted;
using adapt::common::percentiles;
using adapt::common::relative_error;
using adapt::common::RunningStats;
using adapt::common::Summary;
using adapt::common::summarize;

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyIsZero) {
  const RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.coefficient_of_variation(), 0.0);
}

TEST(RunningStats, SingleValueHasZeroVariance) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats all;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10 + i * 0.1;
    all.add(x);
    (i < 37 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a;
  RunningStats b;
  b.add(1.0);
  b.add(3.0);
  a.merge(b);  // empty <- full
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  RunningStats c;
  a.merge(c);  // full <- empty
  EXPECT_EQ(a.count(), 2u);
}

TEST(RunningStats, CoefficientOfVariation) {
  RunningStats s;
  s.add(5.0);
  s.add(15.0);
  EXPECT_NEAR(s.coefficient_of_variation(),
              s.stddev() / 10.0, 1e-12);
}

TEST(Percentile, InterpolatesLinearly) {
  const std::vector<double> v = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(percentile({42.0}, 0.9), 42.0);
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
}

TEST(Percentile, ClampsOutOfRangeQ) {
  const std::vector<double> v = {10, 20, 30, 40};
  // q outside [0, 1] used to index out of bounds; it must clamp.
  EXPECT_DOUBLE_EQ(percentile(v, -0.5), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.5), 40.0);
}

TEST(Percentile, SortedVariantMatchesSortingCopy) {
  const std::vector<double> unsorted = {30, 10, 40, 20};
  std::vector<double> sorted = unsorted;
  std::sort(sorted.begin(), sorted.end());
  for (const double q : {0.0, 0.25, 0.5, 0.9, 1.0}) {
    EXPECT_DOUBLE_EQ(percentile_sorted(sorted, q), percentile(unsorted, q));
  }
  EXPECT_DOUBLE_EQ(percentile_sorted({}, 0.5), 0.0);
}

TEST(Percentile, MultiQuantileSortsOnce) {
  const std::vector<double> v = {30, 10, 40, 20};
  const std::vector<double> qs = {0.0, 0.5, 1.0};
  const std::vector<double> out = percentiles(v, qs);
  ASSERT_EQ(out.size(), qs.size());
  EXPECT_DOUBLE_EQ(out[0], 10.0);
  EXPECT_DOUBLE_EQ(out[1], 25.0);
  EXPECT_DOUBLE_EQ(out[2], 40.0);
  EXPECT_TRUE(percentiles({}, {0.5}).size() == 1);
  EXPECT_TRUE(percentiles(v, {}).empty());
}

TEST(Summarize, FullSummary) {
  const Summary s = summarize({1, 2, 3, 4, 5});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
  EXPECT_NEAR(s.cov, std::sqrt(2.5) / 3.0, 1e-12);
  EXPECT_GT(s.ci95_half_width, 0.0);
  EXPECT_DOUBLE_EQ(s.p95, percentile({1, 2, 3, 4, 5}, 0.95));
  EXPECT_DOUBLE_EQ(s.p99, percentile({1, 2, 3, 4, 5}, 0.99));
}

TEST(Summarize, EmptyInput) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(RelativeError, Basics) {
  EXPECT_DOUBLE_EQ(relative_error(100.0, 100.0), 0.0);
  EXPECT_NEAR(relative_error(90.0, 100.0), 0.1, 1e-12);
  EXPECT_NEAR(relative_error(0.0, 0.0), 0.0, 1e-12);
}

}  // namespace
