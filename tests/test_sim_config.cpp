// SimJobConfig validation and the checked Builder: every range check
// throws a ConfigError naming the offending field, at the setter that
// supplied the bad value.
#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/sim_config.h"

namespace {

using adapt::sim::ConfigError;
using adapt::sim::SimJobConfig;

// The field() a call reports, or "" when it does not throw.
template <typename Fn>
std::string thrown_field(Fn&& fn) {
  try {
    fn();
  } catch (const ConfigError& e) {
    return e.field();
  }
  return "";
}

TEST(SimConfigTest, DefaultConfigValidates) {
  EXPECT_NO_THROW(SimJobConfig{}.validate());
}

TEST(SimConfigTest, ConfigErrorNamesFieldAndDerivesInvalidArgument) {
  try {
    SimJobConfig config;
    config.gamma = -1.0;
    config.validate();
    FAIL() << "expected ConfigError";
  } catch (const std::invalid_argument& e) {
    // Legacy catch sites on std::invalid_argument keep working, and the
    // message carries the structured field name.
    EXPECT_NE(std::string(e.what()).find("config.gamma"),
              std::string::npos)
        << e.what();
  }
}

TEST(SimConfigTest, ValidateChecksHandFilledAggregates) {
  SimJobConfig config;
  config.max_concurrent_attempts = 3;
  EXPECT_EQ(thrown_field([&] { config.validate(); }),
            "max_concurrent_attempts");

  config = SimJobConfig{};
  config.transfer_stall_timeout = -1.0;
  EXPECT_EQ(thrown_field([&] { config.validate(); }),
            "transfer_stall_timeout");

  config = SimJobConfig{};
  config.speculation = false;
  config.speculation_slack = -1.0;  // irrelevant while speculation is off
  EXPECT_NO_THROW(config.validate());
  config.speculation = true;
  EXPECT_EQ(thrown_field([&] { config.validate(); }), "speculation_slack");
}

TEST(SimConfigTest, ChurnChecksAreGatedOnEnabled) {
  SimJobConfig config;
  config.churn.departure_rate = -5.0;
  config.churn.dead_timeout = 0.0;
  // Inert while churn is off: nothing reads these fields.
  EXPECT_NO_THROW(config.validate());
  config.churn.enabled = true;
  EXPECT_EQ(thrown_field([&] { config.validate(); }),
            "churn.departure_rate");
  config.churn.departure_rate = 0.001;
  EXPECT_EQ(thrown_field([&] { config.validate(); }), "churn.dead_timeout");

  // The per-node rate vector is checked element-wise.
  config.churn.dead_timeout = 60.0;
  config.churn.departure_rates = {0.001, -0.001};
  EXPECT_EQ(thrown_field([&] { config.validate(); }),
            "churn.departure_rate");
}

TEST(SimConfigBuilderTest, BuildsValidatedConfig) {
  const SimJobConfig config = SimJobConfig::Builder()
                                  .gamma(8.0)
                                  .speculation(true, 1.5, 30.0)
                                  .max_concurrent_attempts(1)
                                  .origin_fetch(false)
                                  .transfer_stall_timeout(45.0)
                                  .seed(99)
                                  .churn(true)
                                  .departure_rate(1.0 / 3600.0)
                                  .burst(100.0, 0.25)
                                  .heartbeat(5.0, 3)
                                  .dead_timeout(120.0)
                                  .build();
  EXPECT_EQ(config.gamma, 8.0);
  EXPECT_TRUE(config.speculation);
  EXPECT_EQ(config.speculation_slack, 1.5);
  EXPECT_EQ(config.speculation_overdue, 30.0);
  EXPECT_EQ(config.max_concurrent_attempts, 1);
  EXPECT_FALSE(config.allow_origin_fetch);
  EXPECT_EQ(config.transfer_stall_timeout, 45.0);
  EXPECT_EQ(config.seed, 99u);
  EXPECT_TRUE(config.churn.enabled);
  EXPECT_EQ(config.churn.departure_rate, 1.0 / 3600.0);
  EXPECT_EQ(config.churn.burst_at, 100.0);
  EXPECT_EQ(config.churn.burst_fraction, 0.25);
  EXPECT_EQ(config.churn.heartbeat_interval, 5.0);
  EXPECT_EQ(config.churn.heartbeat_miss_threshold, 3);
  EXPECT_EQ(config.churn.dead_timeout, 120.0);
}

TEST(SimConfigBuilderTest, SettersFailEagerlyNamingTheField) {
  using B = SimJobConfig::Builder;
  EXPECT_EQ(thrown_field([] { B().gamma(0.0); }), "gamma");
  EXPECT_EQ(thrown_field([] { B().gamma(-3.0); }), "gamma");
  EXPECT_EQ(thrown_field([] { B().speculation(true, 0.0); }),
            "speculation_slack");
  EXPECT_EQ(thrown_field([] { B().max_concurrent_attempts(0); }),
            "max_concurrent_attempts");
  EXPECT_EQ(thrown_field([] { B().max_concurrent_attempts(3); }),
            "max_concurrent_attempts");
  EXPECT_EQ(thrown_field([] { B().transfer_stall_timeout(-0.5); }),
            "transfer_stall_timeout");
  EXPECT_EQ(thrown_field([] { B().departure_rate(-1.0); }),
            "churn.departure_rate");
  EXPECT_EQ(thrown_field([] { B().burst(0.0, 1.5); }),
            "churn.burst_fraction");
  EXPECT_EQ(thrown_field([] { B().heartbeat(0.0, 2); }),
            "churn.heartbeat_interval");
  EXPECT_EQ(thrown_field([] { B().heartbeat(3.0, 0); }),
            "churn.heartbeat_miss_threshold");
  EXPECT_EQ(thrown_field([] { B().dead_timeout(0.0); }),
            "churn.dead_timeout");

  // A disabled feature's knobs are not checked by the gated setters.
  EXPECT_NO_THROW(B().speculation(false, -1.0));
}

TEST(SimConfigTest, SchedulerChecksNameStructuredFields) {
  SimJobConfig config;
  config.scheduler.max_concurrent_attempts = 9;
  EXPECT_EQ(thrown_field([&] { config.validate(); }),
            "scheduler.max_concurrent_attempts");
  // The scheduler struct admits a wider cap than the legacy flat knob.
  config.scheduler.max_concurrent_attempts = 3;
  EXPECT_NO_THROW(config.validate());

  config = SimJobConfig{};
  config.scheduler.redundancy = 0;
  EXPECT_EQ(thrown_field([&] { config.validate(); }),
            "scheduler.redundancy");

  config = SimJobConfig{};
  config.scheduler.calibrated_margin = -2.0;
  EXPECT_EQ(thrown_field([&] { config.validate(); }),
            "scheduler.calibrated_margin");

  config = SimJobConfig{};
  config.scheduler.node_quotes = {5.0, -0.5};
  EXPECT_EQ(thrown_field([&] { config.validate(); }),
            "scheduler.node_quotes");

  config = SimJobConfig{};
  config.scheduler.speculation = false;
  config.scheduler.speculation_slack = -1.0;  // inert while off
  EXPECT_NO_THROW(config.scheduler.validate());
}

TEST(SimConfigTest, EffectiveSchedulerMergesFlatOverrides) {
  // A flat knob moved off its default wins over the sub-struct (the
  // one-release deprecation shim) ...
  SimJobConfig config;
  config.speculation_slack = 2.0;
  config.scheduler.speculation_slack = 1.5;
  EXPECT_EQ(config.effective_scheduler().speculation_slack, 2.0);

  // ... while a flat knob left at its default defers to it.
  config = SimJobConfig{};
  config.scheduler.speculation_slack = 1.5;
  config.scheduler.speculation = false;
  config.scheduler.max_concurrent_attempts = 4;
  const auto merged = config.effective_scheduler();
  EXPECT_EQ(merged.speculation_slack, 1.5);
  EXPECT_FALSE(merged.speculation);
  EXPECT_EQ(merged.max_concurrent_attempts, 4);

  // Kind and the per-kind knobs have no flat counterpart: always taken
  // from the sub-struct.
  config = SimJobConfig{};
  config.scheduler.kind = adapt::sim::SchedulerKind::kRedundant;
  config.scheduler.redundancy = 3;
  EXPECT_EQ(config.effective_scheduler().kind,
            adapt::sim::SchedulerKind::kRedundant);
  EXPECT_EQ(config.effective_scheduler().redundancy, 3);
}

TEST(SimConfigBuilderTest, SchedulerSettersWriteBothViews) {
  using adapt::sim::SchedulerKind;
  const SimJobConfig config = SimJobConfig::Builder()
                                  .speculation(true, 1.4, 25.0)
                                  .max_concurrent_attempts(1)
                                  .scheduler_kind(SchedulerKind::kCalibrated)
                                  .calibrated_margin(2.5)
                                  .redundancy(4)
                                  .build();
  EXPECT_EQ(config.speculation_slack, 1.4);
  EXPECT_EQ(config.scheduler.speculation_slack, 1.4);
  EXPECT_EQ(config.scheduler.speculation_overdue, 25.0);
  EXPECT_EQ(config.max_concurrent_attempts, 1);
  EXPECT_EQ(config.scheduler.max_concurrent_attempts, 1);
  EXPECT_EQ(config.scheduler.kind, SchedulerKind::kCalibrated);
  EXPECT_EQ(config.scheduler.calibrated_margin, 2.5);
  EXPECT_EQ(config.scheduler.redundancy, 4);

  using B = SimJobConfig::Builder;
  EXPECT_EQ(thrown_field([] { B().calibrated_margin(0.0); }),
            "scheduler.calibrated_margin");
  EXPECT_EQ(thrown_field([] { B().redundancy(9); }),
            "scheduler.redundancy");
}

TEST(SimConfigBuilderTest, BuilderFromBaseRechecksOnBuild) {
  SimJobConfig base;
  base.gamma = -1.0;  // hand-corrupted aggregate
  EXPECT_EQ(thrown_field([&] { SimJobConfig::Builder(base).build(); }),
            "gamma");
  // Fixing the field through the builder makes build() pass.
  EXPECT_NO_THROW(SimJobConfig::Builder(base).gamma(10.0).build());
}

}  // namespace
